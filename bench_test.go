// Package bench holds the testing.B counterparts of the paper's tables
// and figures. cmd/p3pbench prints the formatted report; these benchmarks
// expose the same cells to `go test -bench`:
//
//	Figure 19   BenchmarkGenerateWorkload (the suite itself is static data;
//	            workload_test.go asserts its Figure 19 statistics)
//	§6.3.1      BenchmarkShredPolicy
//	Figure 20   BenchmarkMatch/<engine>
//	Figure 21   BenchmarkMatchPerLevel/<level>/<engine>
//	§6.3.2      BenchmarkAugmentation/<mode> (the profiling claim)
//	Ablations   BenchmarkSchema/<variant>, BenchmarkIndexes/<variant>,
//	            BenchmarkConversion/<variant>
package bench

import (
	"fmt"
	"strings"
	"sync/atomic"
	"testing"

	"p3pdb/internal/appel"
	"p3pdb/internal/appelengine"
	"p3pdb/internal/benchkit"
	"p3pdb/internal/core"
	"p3pdb/internal/reldb"
	"p3pdb/internal/shred"
	"p3pdb/internal/sqlgen"
	"p3pdb/internal/workload"
)

const benchSeed = 42

// sharedSite lazily builds one installed site for all matching benchmarks.
var (
	sharedSite *core.Site
	sharedData *workload.Dataset
)

func site(b *testing.B) (*core.Site, *workload.Dataset) {
	b.Helper()
	if sharedSite == nil {
		s, d, err := benchkit.Setup(benchkit.Config{Seed: benchSeed})
		if err != nil {
			b.Fatal(err)
		}
		sharedSite = s
		sharedData = d
	}
	return sharedSite, sharedData
}

// BenchmarkGenerateWorkload measures synthesizing the Section 6.2 data
// set (29 policies + 5 preferences).
func BenchmarkGenerateWorkload(b *testing.B) {
	for i := 0; i < b.N; i++ {
		d := workload.Generate(benchSeed)
		if len(d.Policies) != 29 {
			b.Fatal("bad corpus")
		}
	}
}

// BenchmarkShredPolicy is the §6.3.1 shredding experiment: installing one
// policy into every backend (both relational schemas plus the XML store).
func BenchmarkShredPolicy(b *testing.B) {
	d := workload.Generate(benchSeed)
	b.ReportAllocs()
	b.ResetTimer()
	for i := 0; i < b.N; i++ {
		b.StopTimer()
		s, err := core.NewSite()
		if err != nil {
			b.Fatal(err)
		}
		pol := d.Policies[i%len(d.Policies)]
		b.StartTimer()
		if err := s.InstallPolicy(pol); err != nil {
			b.Fatal(err)
		}
	}
}

// matchAll matches one preference level against every policy in the
// corpus with one engine; used by the Figure 20/21 benchmarks.
func matchAll(b *testing.B, engine core.Engine, level string) {
	s, d := site(b)
	pref, ok := workload.PreferenceByLevel(level)
	if !ok {
		b.Fatalf("no level %s", level)
	}
	// Warm up (the paper discards the first, cold match).
	if _, err := s.MatchPolicy(pref.XML, d.Policies[0].Name, engine); err != nil {
		b.Fatal(err)
	}
	b.ResetTimer()
	for i := 0; i < b.N; i++ {
		pol := d.Policies[i%len(d.Policies)]
		if _, err := s.MatchPolicy(pref.XML, pol.Name, engine); err != nil {
			b.Fatal(err)
		}
	}
}

// BenchmarkMatch is Figure 20: matching averaged over the preference
// suite (here represented by the High level, the suite's workhorse) per
// engine.
func BenchmarkMatch(b *testing.B) {
	for _, engine := range core.Engines {
		b.Run(engineSlug(engine), func(b *testing.B) {
			matchAll(b, engine, "High")
		})
	}
}

// BenchmarkMatchParallel is the Figure 20 workload driven from many
// goroutines at once (b.RunParallel): the server-side scenario where
// concurrent visitors match against the installed corpus. Dividing this
// benchmark's matches/sec by BenchmarkMatch's measures how far the read
// path scales with GOMAXPROCS.
func BenchmarkMatchParallel(b *testing.B) {
	for _, engine := range core.Engines {
		b.Run(engineSlug(engine), func(b *testing.B) {
			s, d := site(b)
			pref, ok := workload.PreferenceByLevel("High")
			if !ok {
				b.Fatal("no High level")
			}
			// Warm up so conversion caching and view fills are excluded,
			// matching BenchmarkMatch's discarded cold match.
			if _, err := s.MatchPolicy(pref.XML, d.Policies[0].Name, engine); err != nil {
				b.Fatal(err)
			}
			var next atomic.Int64
			b.ResetTimer()
			b.RunParallel(func(pb *testing.PB) {
				for pb.Next() {
					i := next.Add(1) - 1
					pol := d.Policies[int(i)%len(d.Policies)]
					if _, err := s.MatchPolicy(pref.XML, pol.Name, engine); err != nil {
						b.Fatal(err)
					}
				}
			})
		})
	}
}

// BenchmarkMatchPerLevel is Figure 21: every preference level on every
// engine. The Medium/XQuery cell is expected to fail translation, so it
// is skipped — the figure's blank cell.
func BenchmarkMatchPerLevel(b *testing.B) {
	for _, level := range workload.Levels {
		for _, engine := range core.Engines {
			if engine == core.EngineXTable && level == "Medium" {
				continue // Figure 21's blank cell
			}
			name := strings.ReplaceAll(level, " ", "") + "/" + engineSlug(engine)
			b.Run(name, func(b *testing.B) {
				matchAll(b, engine, level)
			})
		}
	}
}

// BenchmarkAugmentation is the §6.3.2 profiling claim: the native
// engine's cost with the faithful document-consulting augmentation, with
// indexed augmentation, and with augmentation disabled.
func BenchmarkAugmentation(b *testing.B) {
	d := workload.Generate(benchSeed)
	pref, _ := workload.PreferenceByLevel("High")
	rs, err := appel.Parse(pref.XML)
	if err != nil {
		b.Fatal(err)
	}
	modes := []struct {
		name string
		opts appelengine.Options
	}{
		{"document", appelengine.Options{}},
		{"indexed", appelengine.Options{IndexedAugmentation: true}},
		{"off", appelengine.Options{SkipAugmentation: true}},
	}
	for _, mode := range modes {
		b.Run(mode.name, func(b *testing.B) {
			engine := appelengine.NewWithOptions(mode.opts)
			b.ResetTimer()
			for i := 0; i < b.N; i++ {
				pol := d.Policies[i%len(d.Policies)]
				if _, err := engine.Match(rs, d.PolicyXML[pol.Name]); err != nil {
					b.Fatal(err)
				}
			}
		})
	}
}

// benchStores builds the relational fixtures the schema ablations need.
func benchStores(b *testing.B, opts reldb.Options) (*reldb.DB, map[string]int, *reldb.DB, map[string]int) {
	b.Helper()
	d := workload.Generate(benchSeed)
	optDB := reldb.NewWithOptions(opts)
	optStore, err := shred.NewOptimized(optDB)
	if err != nil {
		b.Fatal(err)
	}
	genDB := reldb.NewWithOptions(opts)
	genStore, err := shred.NewGeneric(genDB)
	if err != nil {
		b.Fatal(err)
	}
	optIDs := map[string]int{}
	genIDs := map[string]int{}
	for _, pol := range d.Policies {
		id, err := optStore.InstallPolicy(pol)
		if err != nil {
			b.Fatal(err)
		}
		optIDs[pol.Name] = id
		gid, err := genStore.InstallPolicy(pol)
		if err != nil {
			b.Fatal(err)
		}
		genIDs[pol.Name] = gid
	}
	return optDB, optIDs, genDB, genIDs
}

// BenchmarkSchema is the generic-vs-optimized schema ablation (the
// Figure 14 optimizations): the same preference translated and executed
// against both schemas, plus the XML-view variant.
func BenchmarkSchema(b *testing.B) {
	d := workload.Generate(benchSeed)
	pref, _ := workload.PreferenceByLevel("High")
	rs, err := appel.Parse(pref.XML)
	if err != nil {
		b.Fatal(err)
	}
	optDB, optIDs, genDB, genIDs := benchStores(b, reldb.Options{})
	run := func(b *testing.B, db *reldb.DB, translate func(string) ([]sqlgen.RuleQuery, error)) {
		b.ResetTimer()
		for i := 0; i < b.N; i++ {
			pol := d.Policies[i%len(d.Policies)]
			qs, err := translate(pol.Name)
			if err != nil {
				b.Fatal(err)
			}
			if _, err := sqlgen.Match(db, qs); err != nil {
				b.Fatal(err)
			}
		}
	}
	b.Run("optimized", func(b *testing.B) {
		run(b, optDB, func(name string) ([]sqlgen.RuleQuery, error) {
			return sqlgen.TranslateRulesetOptimized(rs, sqlgen.FixedPolicySubquery(optIDs[name]))
		})
	})
	b.Run("generic", func(b *testing.B) {
		run(b, genDB, func(name string) ([]sqlgen.RuleQuery, error) {
			return sqlgen.TranslateRulesetGeneric(rs, sqlgen.FixedPolicySubquery(genIDs[name]), sqlgen.GenericOptions{})
		})
	})
	b.Run("generic-view", func(b *testing.B) {
		run(b, genDB, func(name string) ([]sqlgen.RuleQuery, error) {
			return sqlgen.TranslateRulesetGeneric(rs, sqlgen.FixedPolicySubquery(genIDs[name]), sqlgen.GenericOptions{ViewReconstruction: true})
		})
	})
}

// BenchmarkIndexes is the reldb access-path ablation: the optimized-schema
// matching workload with hash indexes enabled versus full scans.
func BenchmarkIndexes(b *testing.B) {
	d := workload.Generate(benchSeed)
	pref, _ := workload.PreferenceByLevel("High")
	rs, err := appel.Parse(pref.XML)
	if err != nil {
		b.Fatal(err)
	}
	for _, variant := range []struct {
		name string
		opts reldb.Options
	}{
		{"hash", reldb.Options{}},
		{"scan", reldb.Options{DisableIndexes: true}},
	} {
		b.Run(variant.name, func(b *testing.B) {
			optDB, optIDs, _, _ := benchStores(b, variant.opts)
			b.ResetTimer()
			for i := 0; i < b.N; i++ {
				pol := d.Policies[i%len(d.Policies)]
				qs, err := sqlgen.TranslateRulesetOptimized(rs, sqlgen.FixedPolicySubquery(optIDs[pol.Name]))
				if err != nil {
					b.Fatal(err)
				}
				if _, err := sqlgen.Match(optDB, qs); err != nil {
					b.Fatal(err)
				}
			}
		})
	}
}

// BenchmarkConversion is the conversion-cache ablation: the full
// translate-and-parse pipeline per match versus reusing prepared
// statements (the paper's "preference generation GUI tool produces
// preferences as a set of SQL statements" deployment).
func BenchmarkConversion(b *testing.B) {
	d := workload.Generate(benchSeed)
	pref, _ := workload.PreferenceByLevel("High")
	rs, err := appel.Parse(pref.XML)
	if err != nil {
		b.Fatal(err)
	}
	optDB, optIDs, _, _ := benchStores(b, reldb.Options{})

	b.Run("full", func(b *testing.B) {
		for i := 0; i < b.N; i++ {
			pol := d.Policies[i%len(d.Policies)]
			qs, err := sqlgen.TranslateRulesetOptimized(rs, sqlgen.FixedPolicySubquery(optIDs[pol.Name]))
			if err != nil {
				b.Fatal(err)
			}
			if _, err := sqlgen.Match(optDB, qs); err != nil {
				b.Fatal(err)
			}
		}
	})
	b.Run("prepared", func(b *testing.B) {
		prepared := map[string][]reldb.Statement{}
		for _, pol := range d.Policies {
			qs, err := sqlgen.TranslateRulesetOptimized(rs, sqlgen.FixedPolicySubquery(optIDs[pol.Name]))
			if err != nil {
				b.Fatal(err)
			}
			var stmts []reldb.Statement
			for _, q := range qs {
				stmt, err := optDB.Prepare(q.SQL)
				if err != nil {
					b.Fatal(err)
				}
				stmts = append(stmts, stmt)
			}
			prepared[pol.Name] = stmts
		}
		b.ResetTimer()
		for i := 0; i < b.N; i++ {
			pol := d.Policies[i%len(d.Policies)]
			for _, stmt := range prepared[pol.Name] {
				ok, err := optDB.QueryExistsStmt(stmt)
				if err != nil {
					b.Fatal(err)
				}
				if ok {
					break
				}
			}
		}
	})
}

func engineSlug(e core.Engine) string {
	switch e {
	case core.EngineNative:
		return "APPELEngine"
	case core.EngineSQL:
		return "SQL"
	case core.EngineXTable:
		return "XQuery"
	case core.EngineXQuery:
		return "XQueryNativeStore"
	}
	return fmt.Sprintf("engine%d", int(e))
}
