module p3pdb

go 1.22
