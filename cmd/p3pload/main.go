// Command p3pload is the closed-loop user-agent driver for the protocol
// loop: a population of simulated visitors hitting a multi-tenant
// matching server over HTTP, each page visit (and a fraction of cookie
// presentations) resolved through the site's reference file, pre-decided
// by the compact-policy fast path where the visitor's preference level
// admits it, and fully matched otherwise.
//
//	p3pload                           # self-host and drive the loop
//	p3pload -workers=32 -requests=500 # heavier population
//	p3pload -addr=http://localhost:8733 -setup
//	                                  # seed tenants on a running p3pserver
//	                                  # -multi instance, then drive it
//	p3pload -out=BENCH_e2e.json -min-fastpath=0.70
//	                                  # write the artifact and gate on the
//	                                  # fast-path hit rate
//
// The traffic model is fixed: Zipf-skewed page popularity per tenant and
// a 60/25/15 apathetic/mild/paranoid attitude mix (see
// internal/benchkit/e2e.go for why).
package main

import (
	"flag"
	"fmt"
	"os"

	"p3pdb/internal/benchkit"
	"p3pdb/internal/core"
)

func main() {
	addr := flag.String("addr", "", "base URL of a running multi-tenant server; empty self-hosts in process")
	setup := flag.Bool("setup", false, "create and seed the e2e tenants on the target server before driving (requires -addr)")
	seed := flag.Int64("seed", 42, "workload and traffic seed")
	tenants := flag.Int("tenants", 4, "number of hosted sites")
	workers := flag.Int("workers", 8, "concurrent user agents")
	requests := flag.Int("requests", 300, "requests per agent")
	cookies := flag.Float64("cookies", 0.25, "fraction of checks presenting a cookie")
	zipfS := flag.Float64("zipf", 1.1, "Zipf skew of page popularity (> 1)")
	engine := flag.String("engine", "sql", "fallback matching engine")
	out := flag.String("out", "", "write the results as a JSON artifact")
	minFastpath := flag.Float64("min-fastpath", 0, "fail unless the fast-path hit rate reaches this floor")
	flag.Parse()

	eng, err := core.ParseEngine(*engine)
	if err != nil {
		fatal(err)
	}
	if *setup {
		if *addr == "" {
			fatal(fmt.Errorf("-setup requires -addr (self-hosted runs seed themselves)"))
		}
		if err := benchkit.E2ESeedRemote(*addr, *seed, *tenants); err != nil {
			fatal(err)
		}
		fmt.Printf("seeded %d tenants on %s\n", *tenants, *addr)
	}

	r, err := benchkit.RunE2E(benchkit.E2EConfig{
		Seed:              *seed,
		Tenants:           *tenants,
		Workers:           *workers,
		RequestsPerWorker: *requests,
		CookieFraction:    *cookies,
		ZipfS:             *zipfS,
		Engine:            eng,
		Addr:              *addr,
	})
	if err != nil {
		fatal(err)
	}
	fmt.Print(r.Render())
	if *out != "" {
		if err := r.WriteJSON(*out); err != nil {
			fatal(err)
		}
		fmt.Println("wrote", *out)
	}
	if *minFastpath > 0 {
		if r.FastPathHitRate < *minFastpath {
			fatal(fmt.Errorf("fast-path gate: hit rate %.1f%%, floor %.1f%%",
				r.FastPathHitRate*100, *minFastpath*100))
		}
		fmt.Printf("fast-path gate passed: %.1f%% (floor %.1f%%)\n",
			r.FastPathHitRate*100, *minFastpath*100)
	}
}

func fatal(err error) {
	fmt.Fprintln(os.Stderr, "p3pload:", err)
	os.Exit(1)
}
