// Command p3ppolicy authors a P3P policy from declarative flags — the
// role the paper's Section 3.3 tools (P3PEdit, IBM Tivoli Privacy Wizard)
// played: site owners answer "what do you collect, why, for whom, how
// long" and get valid policy XML out.
//
//	p3ppolicy -name=shop -entity="Example Shop" -email=privacy@shop.example.com \
//	  -statement "purposes=current; recipients=ours; retention=stated-purpose; data=#user.name,#user.home-info.postal" \
//	  -statement "purposes=contact:opt-in; recipients=ours; retention=business-practices; data=#user.home-info.online.email; consequence=We email offers with your consent."
//
// Each -statement flag takes semicolon-separated fields; purposes and
// recipients accept value[:required] items. -compact additionally prints
// the CP-header form; -check only validates.
package main

import (
	"flag"
	"fmt"
	"os"
	"strings"

	"p3pdb/internal/compact"
	"p3pdb/internal/p3p"
)

// statementFlags collects repeated -statement values.
type statementFlags []string

func (s *statementFlags) String() string { return strings.Join(*s, " | ") }

func (s *statementFlags) Set(v string) error {
	*s = append(*s, v)
	return nil
}

func main() {
	name := flag.String("name", "", "policy name (required)")
	discuri := flag.String("discuri", "", "human-readable privacy statement URI")
	opturi := flag.String("opturi", "", "opt-in/opt-out instructions URI")
	entity := flag.String("entity", "", "legal entity name")
	email := flag.String("email", "", "privacy contact email")
	access := flag.String("access", "none", "ACCESS disclosure: "+strings.Join(p3p.AccessValues, ", "))
	test := flag.Bool("test", false, "mark the policy TEST-only")
	emitCompact := flag.Bool("compact", false, "also print the compact (CP header) form")
	check := flag.Bool("check", false, "validate only; print nothing on success")
	var statements statementFlags
	flag.Var(&statements, "statement", "one statement: 'purposes=...; recipients=...; retention=...; data=...; [consequence=...]' (repeatable)")
	flag.Parse()

	if *name == "" {
		fatal(fmt.Errorf("-name is required"))
	}
	if len(statements) == 0 {
		fatal(fmt.Errorf("at least one -statement is required"))
	}

	pol := &p3p.Policy{
		Name:     *name,
		Discuri:  *discuri,
		Opturi:   *opturi,
		Access:   *access,
		TestOnly: *test,
	}
	if *entity != "" || *email != "" {
		pol.Entity = &p3p.Entity{Name: *entity, Email: *email}
	}
	for i, spec := range statements {
		st, err := parseStatement(spec)
		if err != nil {
			fatal(fmt.Errorf("statement %d: %w", i+1, err))
		}
		pol.Statements = append(pol.Statements, st)
	}

	if err := pol.MustValid(); err != nil {
		fatal(err)
	}
	if *check {
		fmt.Fprintln(os.Stderr, "policy is valid")
		return
	}
	fmt.Print(pol.String())
	if *emitCompact {
		cp, err := compact.FromPolicy(pol, nil)
		if err != nil {
			fatal(err)
		}
		fmt.Printf("\nCP: %s\n", cp)
	}
}

// parseStatement decodes one -statement specification.
func parseStatement(spec string) (*p3p.Statement, error) {
	st := &p3p.Statement{}
	dg := &p3p.DataGroup{}
	for _, field := range strings.Split(spec, ";") {
		field = strings.TrimSpace(field)
		if field == "" {
			continue
		}
		key, value, found := strings.Cut(field, "=")
		if !found {
			return nil, fmt.Errorf("field %q is not key=value", field)
		}
		key = strings.TrimSpace(key)
		value = strings.TrimSpace(value)
		switch key {
		case "purposes":
			for _, item := range splitList(value) {
				v, req := cutRequired(item)
				st.Purposes = append(st.Purposes, p3p.PurposeValue{Value: v, Required: req})
			}
		case "recipients":
			for _, item := range splitList(value) {
				v, req := cutRequired(item)
				st.Recipients = append(st.Recipients, p3p.RecipientValue{Value: v, Required: req})
			}
		case "retention":
			st.Retention = value
		case "consequence":
			st.Consequence = value
		case "non-identifiable":
			st.NonIdentifiable = value == "yes" || value == "true"
		case "data":
			for _, item := range splitList(value) {
				ref, cats := item, ""
				if i := strings.IndexByte(item, '['); i >= 0 && strings.HasSuffix(item, "]") {
					ref, cats = item[:i], item[i+1:len(item)-1]
				}
				d := &p3p.Data{Ref: ref}
				for _, c := range strings.Split(cats, "+") {
					if c = strings.TrimSpace(c); c != "" {
						d.Categories = append(d.Categories, c)
					}
				}
				dg.Data = append(dg.Data, d)
			}
		default:
			return nil, fmt.Errorf("unknown field %q", key)
		}
	}
	if len(dg.Data) > 0 {
		st.DataGroups = append(st.DataGroups, dg)
	}
	return st, nil
}

func splitList(value string) []string {
	var out []string
	for _, item := range strings.Split(value, ",") {
		if item = strings.TrimSpace(item); item != "" {
			out = append(out, item)
		}
	}
	return out
}

// cutRequired splits "contact:opt-in" into value and required attribute.
func cutRequired(item string) (value, required string) {
	if v, r, found := strings.Cut(item, ":"); found {
		return strings.TrimSpace(v), strings.TrimSpace(r)
	}
	return item, ""
}

func fatal(err error) {
	fmt.Fprintln(os.Stderr, "p3ppolicy:", err)
	os.Exit(1)
}
