// Command p3pbench regenerates every table and figure of the paper's
// evaluation (Section 6) against the synthesized workload:
//
//	p3pbench                      # the full report
//	p3pbench -table=fig20         # one table: fig19, shred, fig20, fig21,
//	                              # warmcold, xquery-native, ablate,
//	                              # throughput
//	p3pbench -seed=7 -repeats=5   # workload seed and per-cell repetitions
//	p3pbench -table=throughput -engine=sql -out=BENCH_throughput.json
//
// Absolute times are from this machine; the paper's Section 6 numbers are
// from a 2002 dual-600MHz server. EXPERIMENTS.md records the side-by-side
// comparison and which qualitative findings must hold.
package main

import (
	"flag"
	"fmt"
	"os"
	"runtime"

	"p3pdb/internal/benchkit"
	"p3pdb/internal/core"
)

func main() {
	table := flag.String("table", "all", "table to print: all, fig19, shred, fig20, fig21, warmcold, xquery-native, ablate, throughput, decisioncache, tenancy, obs, durability, e2e, replication, prefindex")
	seed := flag.Int64("seed", 42, "workload generation seed")
	repeats := flag.Int("repeats", 3, "measurements per matrix cell")
	level := flag.String("ablate-level", "High", "preference level for the ablation, throughput, decisioncache, and obs tables")
	engine := flag.String("engine", "sql", "matching engine for the throughput, decisioncache, and tenancy tables")
	out := flag.String("out", "", "artifact path for the throughput/decisioncache/tenancy/obs/durability tables (default BENCH_<table>.json; \"none\" to skip)")
	matches := flag.Int("matches", 0, "matches per worker (throughput, tenancy), requests per agent (e2e), or total matches per row (decisioncache); 0 = default")
	mutations := flag.Int("mutations", 0, "install/remove pairs per phase in the durability table (0 = default)")
	budget := flag.Int64("budget", 0, "per-match evaluator step budget (0 = unlimited); measures governed-deployment overhead")
	noDecisionCache := flag.Bool("no-decision-cache", false, "disable the decision cache in the throughput table (measures the engine pipeline)")
	zipfS := flag.Float64("zipf", 1.1, "Zipf skew for the decisioncache table (must be > 1)")
	distinct := flag.Int("distinct", 0, "largest distinct-preference universe in the decisioncache table (0 = default 10/100/1000 sweep)")
	minSpeedup4 := flag.Float64("min-speedup4", 0, "throughput gate: fail unless speedupVs1 at 4 workers reaches this floor (enforced only when the machine has >= 4 CPUs)")
	minHitRate := flag.Float64("min-hitrate", 0, "decisioncache gate: fail unless the largest universe's hit rate reaches this floor")
	minFastpath := flag.Float64("min-fastpath", 0, "e2e gate: fail unless the protocol loop's fast-path hit rate reaches this floor")
	minNodeSpeedup2 := flag.Float64("min-node-speedup2", 0, "replication gate: fail unless speedupVs1 at 2 nodes reaches this floor (enforced only when the machine has >= 2 CPUs)")
	maxLagP99 := flag.Float64("max-lag-p99", 0, "replication gate: fail if the write-to-applied lag p99 exceeds this many milliseconds")
	maxRecovery10k := flag.Float64("max-recovery-10k-ms", 0, "durability gate: fail if replaying a 10000-record log exceeds this many milliseconds")
	maxDurableP50 := flag.Float64("max-durable-p50-ratio", 0, "durability gate: fail if the fsync=interval mutation p50 exceeds this multiple of the in-memory p50")
	minWarmHit := flag.Float64("min-warm-hit", 0, "prefindex gate: fail unless the 1000-resident row's post-swap warm hit rate reaches this floor")
	maxWarmP99Ratio := flag.Float64("max-warm-p99-ratio", 0, "prefindex gate: fail if the 1000-resident row's warm/cold post-swap p99 ratio exceeds this ceiling")
	flag.Parse()

	outPath := *out
	if outPath == "" {
		switch *table {
		case "throughput":
			outPath = "BENCH_throughput.json"
		case "decisioncache":
			outPath = "BENCH_decisioncache.json"
		case "tenancy":
			outPath = "BENCH_tenancy.json"
		case "obs":
			outPath = "BENCH_obs.json"
		case "durability":
			outPath = "BENCH_durability.json"
		case "e2e":
			outPath = "BENCH_e2e.json"
		case "replication":
			outPath = "BENCH_replication.json"
		case "prefindex":
			outPath = "BENCH_prefindex.json"
		}
	} else if outPath == "none" {
		outPath = ""
	}

	if *table == "obs" {
		r, err := benchkit.RunObs(benchkit.ObsConfig{
			Seed:    *seed,
			Level:   *level,
			Repeats: *repeats,
			Budget:  *budget,
		})
		if err != nil {
			fatal(err)
		}
		fmt.Print(r.Render())
		if outPath != "" {
			if err := r.WriteJSON(outPath); err != nil {
				fatal(err)
			}
			fmt.Println("wrote", outPath)
		}
		return
	}

	if *table == "durability" {
		r, err := benchkit.RunDurability(benchkit.DurabilityConfig{
			Seed:      *seed,
			Mutations: *mutations,
		})
		if err != nil {
			fatal(err)
		}
		fmt.Print(r.Render())
		if outPath != "" {
			if err := r.WriteJSON(outPath); err != nil {
				fatal(err)
			}
			fmt.Println("wrote", outPath)
		}
		if *maxRecovery10k > 0 {
			gateRecovery(r, *maxRecovery10k)
		}
		if *maxDurableP50 > 0 {
			gateDurableP50(r, *maxDurableP50)
		}
		return
	}

	if *table == "throughput" {
		eng, err := core.ParseEngine(*engine)
		if err != nil {
			fatal(err)
		}
		r, err := benchkit.RunThroughput(benchkit.ThroughputConfig{
			Seed:                 *seed,
			Level:                *level,
			Engine:               eng,
			MatchesPerWorker:     *matches,
			Budget:               *budget,
			DisableDecisionCache: *noDecisionCache,
		})
		if err != nil {
			fatal(err)
		}
		fmt.Print(r.Render())
		if outPath != "" {
			if err := r.WriteJSON(outPath); err != nil {
				fatal(err)
			}
			fmt.Println("wrote", outPath)
		}
		if *minSpeedup4 > 0 {
			gateThroughput(r, *minSpeedup4)
		}
		return
	}

	if *table == "decisioncache" {
		eng, err := core.ParseEngine(*engine)
		if err != nil {
			fatal(err)
		}
		cfg := benchkit.DecisionCacheConfig{
			Seed:    *seed,
			Level:   *level,
			Engine:  eng,
			ZipfS:   *zipfS,
			Matches: *matches,
		}
		if *distinct > 0 {
			cfg.DistinctPrefs = []int{*distinct}
		}
		r, err := benchkit.RunDecisionCache(cfg)
		if err != nil {
			fatal(err)
		}
		fmt.Print(r.Render())
		if outPath != "" {
			if err := r.WriteJSON(outPath); err != nil {
				fatal(err)
			}
			fmt.Println("wrote", outPath)
		}
		if *minHitRate > 0 {
			gateDecisionCache(r, *minHitRate)
		}
		return
	}

	if *table == "e2e" {
		eng, err := core.ParseEngine(*engine)
		if err != nil {
			fatal(err)
		}
		r, err := benchkit.RunE2E(benchkit.E2EConfig{
			Seed:              *seed,
			Engine:            eng,
			RequestsPerWorker: *matches,
		})
		if err != nil {
			fatal(err)
		}
		fmt.Print(r.Render())
		if outPath != "" {
			if err := r.WriteJSON(outPath); err != nil {
				fatal(err)
			}
			fmt.Println("wrote", outPath)
		}
		if *minFastpath > 0 {
			gateE2E(r, *minFastpath)
		}
		return
	}

	if *table == "replication" {
		eng, err := core.ParseEngine(*engine)
		if err != nil {
			fatal(err)
		}
		r, err := benchkit.RunReplication(benchkit.ReplicationConfig{
			Seed:              *seed,
			Engine:            eng,
			RequestsPerWorker: *matches,
		})
		if err != nil {
			fatal(err)
		}
		fmt.Print(r.Render())
		if outPath != "" {
			if err := r.WriteJSON(outPath); err != nil {
				fatal(err)
			}
			fmt.Println("wrote", outPath)
		}
		if *minNodeSpeedup2 > 0 {
			gateReplicationSpeedup(r, *minNodeSpeedup2)
		}
		if *maxLagP99 > 0 {
			gateReplicationLag(r, *maxLagP99)
		}
		return
	}

	if *table == "prefindex" {
		cfg := benchkit.PrefindexConfig{
			Seed:    *seed,
			Level:   *level,
			ZipfS:   *zipfS,
			Matches: *matches,
		}
		if *distinct > 0 {
			cfg.ResidentPrefs = []int{*distinct}
		}
		r, err := benchkit.RunPrefindex(cfg)
		if err != nil {
			fatal(err)
		}
		fmt.Print(r.Render())
		if outPath != "" {
			if err := r.WriteJSON(outPath); err != nil {
				fatal(err)
			}
			fmt.Println("wrote", outPath)
		}
		if *minWarmHit > 0 {
			gatePrefindexWarmHit(r, *minWarmHit)
		}
		if *maxWarmP99Ratio > 0 {
			gatePrefindexP99(r, *maxWarmP99Ratio)
		}
		return
	}

	if *table == "tenancy" {
		eng, err := core.ParseEngine(*engine)
		if err != nil {
			fatal(err)
		}
		r, err := benchkit.RunTenancy(benchkit.TenancyConfig{
			Seed:             *seed,
			Level:            *level,
			Engine:           eng,
			MatchesPerWorker: *matches,
		})
		if err != nil {
			fatal(err)
		}
		fmt.Print(r.Render())
		if outPath != "" {
			if err := r.WriteJSON(outPath); err != nil {
				fatal(err)
			}
			fmt.Println("wrote", outPath)
		}
		return
	}

	if *table == "ablate" {
		a, err := benchkit.RunAblations(*seed, *level)
		if err != nil {
			fatal(err)
		}
		fmt.Print(a.Render())
		return
	}

	r, err := benchkit.Run(benchkit.Config{Seed: *seed, Repeats: *repeats})
	if err != nil {
		fatal(err)
	}
	switch *table {
	case "all":
		fmt.Print(r.Report())
		a, err := benchkit.RunAblations(*seed, *level)
		if err != nil {
			fatal(err)
		}
		fmt.Println()
		fmt.Print(a.Render())
	case "fig19":
		fmt.Print(r.Figure19())
	case "shred":
		fmt.Print(r.ShredTable())
	case "fig20":
		fmt.Print(r.Figure20())
	case "fig21":
		fmt.Print(r.Figure21())
	case "warmcold":
		fmt.Print(r.WarmCold())
	case "xquery-native":
		fmt.Print(r.XQueryNativeTable())
	default:
		fatal(fmt.Errorf("unknown table %q", *table))
	}
}

// gateThroughput enforces the 4-worker scale-out floor. Parallel speedup
// only exists where parallel hardware does: on machines with fewer than
// 4 CPUs the gate reports itself skipped instead of failing on physics
// (the artifact still records numCpu so the skip is auditable).
func gateThroughput(r *benchkit.ThroughputResults, floor float64) {
	if runtime.NumCPU() < 4 {
		fmt.Printf("speedup gate skipped: numCpu=%d < 4, no parallel speedup is measurable\n", runtime.NumCPU())
		return
	}
	for _, row := range r.Rows {
		if row.Workers == 4 {
			if row.SpeedupVs1 < floor {
				fatal(fmt.Errorf("throughput gate: speedupVs1 at 4 workers = %.2fx, floor %.2fx (numCpu=%d)", row.SpeedupVs1, floor, r.NumCPU))
			}
			fmt.Printf("speedup gate passed: %.2fx at 4 workers (floor %.2fx, numCpu=%d)\n", row.SpeedupVs1, floor, r.NumCPU)
			return
		}
	}
	fatal(fmt.Errorf("throughput gate: no 4-worker row measured (GOMAXPROCS=%d)", r.GOMAXPROCS))
}

// gateDecisionCache enforces the hit-rate floor on the largest
// distinct-preference universe measured.
func gateDecisionCache(r *benchkit.DecisionCacheResults, floor float64) {
	if len(r.Rows) == 0 {
		fatal(fmt.Errorf("decisioncache gate: no rows measured"))
	}
	largest := r.Rows[0]
	for _, row := range r.Rows[1:] {
		if row.DistinctPrefs > largest.DistinctPrefs {
			largest = row
		}
	}
	if largest.HitRate < floor {
		fatal(fmt.Errorf("decisioncache gate: hit rate at %d distinct = %.1f%%, floor %.1f%%",
			largest.DistinctPrefs, largest.HitRate*100, floor*100))
	}
	fmt.Printf("hit-rate gate passed: %.1f%% at %d distinct (floor %.1f%%)\n",
		largest.HitRate*100, largest.DistinctPrefs, floor*100)
}

// gateE2E enforces the fast-path hit-rate floor: the compact summary
// must keep deciding the bulk of the mixed-attitude population without
// the full engine, or the protocol loop has regressed.
func gateE2E(r *benchkit.E2EResults, floor float64) {
	if r.FastPathHitRate < floor {
		fatal(fmt.Errorf("e2e gate: fast-path hit rate %.1f%%, floor %.1f%%",
			r.FastPathHitRate*100, floor*100))
	}
	fmt.Printf("fast-path gate passed: %.1f%% (floor %.1f%%)\n",
		r.FastPathHitRate*100, floor*100)
}

// gateReplicationSpeedup enforces the 2-node scale-out floor. Like the
// 4-worker throughput gate, it reports itself skipped on machines
// without parallel hardware (the artifact records numCpu so the skip
// stays auditable).
func gateReplicationSpeedup(r *benchkit.ReplicationResults, floor float64) {
	if runtime.NumCPU() < 2 {
		fmt.Printf("node-speedup gate skipped: numCpu=%d < 2, no parallel speedup is measurable\n", runtime.NumCPU())
		return
	}
	for _, row := range r.Rows {
		if row.Nodes == 2 {
			if row.SpeedupVs1 < floor {
				fatal(fmt.Errorf("replication gate: speedupVs1 at 2 nodes = %.2fx, floor %.2fx (numCpu=%d)",
					row.SpeedupVs1, floor, r.NumCPU))
			}
			fmt.Printf("node-speedup gate passed: %.2fx at 2 nodes (floor %.2fx, numCpu=%d)\n",
				row.SpeedupVs1, floor, r.NumCPU)
			return
		}
	}
	fatal(fmt.Errorf("replication gate: no 2-node row measured"))
}

// gateReplicationLag bounds the write-to-applied p99: a follower that
// falls whole checkpoints behind would fail here long before users
// noticed stale decisions.
func gateReplicationLag(r *benchkit.ReplicationResults, ceilingMs float64) {
	if r.LagP99Ms > ceilingMs {
		fatal(fmt.Errorf("replication gate: lag p99 %.2f ms exceeds ceiling %.2f ms", r.LagP99Ms, ceilingMs))
	}
	fmt.Printf("lag gate passed: p99 %.2f ms (ceiling %.2f ms)\n", r.LagP99Ms, ceilingMs)
}

// gateRecovery bounds cold recovery of a 10k-record log — the batched
// replay's headline number: one ApplyBatch over the whole tail instead
// of one snapshot rebuild per record.
func gateRecovery(r *benchkit.DurabilityResults, ceilingMs float64) {
	for _, rp := range r.Recovery {
		if rp.Mutations == 10000 {
			if rp.RecoverMillis > ceilingMs {
				fatal(fmt.Errorf("durability gate: 10k-record recovery %.1f ms exceeds ceiling %.1f ms", rp.RecoverMillis, ceilingMs))
			}
			fmt.Printf("recovery gate passed: 10k records in %.1f ms (ceiling %.1f ms)\n", rp.RecoverMillis, ceilingMs)
			return
		}
	}
	fatal(fmt.Errorf("durability gate: no 10000-record recovery row measured"))
}

// gateDurableP50 bounds the group-commit tax at the median: a durable
// mutation under fsync=interval should coalesce its fsync with its
// neighbors and stay within the ceiling multiple of the in-memory path.
func gateDurableP50(r *benchkit.DurabilityResults, ceiling float64) {
	if r.P50RatioInterval == 0 {
		fatal(fmt.Errorf("durability gate: no fsync=interval p50 ratio measured"))
	}
	if r.P50RatioInterval > ceiling {
		fatal(fmt.Errorf("durability gate: fsync=interval p50 is %.2fx in-memory, ceiling %.2fx", r.P50RatioInterval, ceiling))
	}
	fmt.Printf("durable-p50 gate passed: %.2fx in-memory (ceiling %.2fx)\n", r.P50RatioInterval, ceiling)
}

// prefindexGateRow picks the row the prefindex gates judge: the largest
// universe measured (1000 resident preferences in the default sweep).
func prefindexGateRow(r *benchkit.PrefindexResults) benchkit.PrefindexRow {
	if len(r.Rows) == 0 {
		fatal(fmt.Errorf("prefindex gate: no rows measured"))
	}
	largest := r.Rows[0]
	for _, row := range r.Rows[1:] {
		if row.ResidentPrefs > largest.ResidentPrefs {
			largest = row
		}
	}
	return largest
}

// gatePrefindexWarmHit enforces the post-swap warm hit-rate floor: the
// pre-warm must have the decision cache already answering the Zipf mix
// when the snapshot publishes.
func gatePrefindexWarmHit(r *benchkit.PrefindexResults, floor float64) {
	row := prefindexGateRow(r)
	if row.WarmHitRate < floor {
		fatal(fmt.Errorf("prefindex gate: warm hit rate at %d resident = %.1f%%, floor %.1f%%",
			row.ResidentPrefs, row.WarmHitRate*100, floor*100))
	}
	fmt.Printf("warm-hit gate passed: %.1f%% at %d resident (floor %.1f%%)\n",
		row.WarmHitRate*100, row.ResidentPrefs, floor*100)
}

// gatePrefindexP99 bounds the post-swap warm p99 against the cold p99 —
// the acceptance bar that pre-warming actually removes the post-publish
// latency cliff.
func gatePrefindexP99(r *benchkit.PrefindexResults, ceiling float64) {
	row := prefindexGateRow(r)
	if row.WarmColdP99Ratio > ceiling {
		fatal(fmt.Errorf("prefindex gate: warm/cold p99 ratio at %d resident = %.2fx, ceiling %.2fx",
			row.ResidentPrefs, row.WarmColdP99Ratio, ceiling))
	}
	fmt.Printf("warm-p99 gate passed: %.2fx at %d resident (ceiling %.2fx)\n",
		row.WarmColdP99Ratio, row.ResidentPrefs, ceiling)
}

func fatal(err error) {
	fmt.Fprintln(os.Stderr, "p3pbench:", err)
	os.Exit(1)
}
