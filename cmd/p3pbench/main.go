// Command p3pbench regenerates every table and figure of the paper's
// evaluation (Section 6) against the synthesized workload:
//
//	p3pbench                      # the full report
//	p3pbench -table=fig20         # one table: fig19, shred, fig20, fig21,
//	                              # warmcold, xquery-native, ablate,
//	                              # throughput
//	p3pbench -seed=7 -repeats=5   # workload seed and per-cell repetitions
//	p3pbench -table=throughput -engine=sql -out=BENCH_throughput.json
//
// Absolute times are from this machine; the paper's Section 6 numbers are
// from a 2002 dual-600MHz server. EXPERIMENTS.md records the side-by-side
// comparison and which qualitative findings must hold.
package main

import (
	"flag"
	"fmt"
	"os"

	"p3pdb/internal/benchkit"
	"p3pdb/internal/core"
)

func main() {
	table := flag.String("table", "all", "table to print: all, fig19, shred, fig20, fig21, warmcold, xquery-native, ablate, throughput, tenancy, obs, durability")
	seed := flag.Int64("seed", 42, "workload generation seed")
	repeats := flag.Int("repeats", 3, "measurements per matrix cell")
	level := flag.String("ablate-level", "High", "preference level for the ablation, throughput, and obs tables")
	engine := flag.String("engine", "sql", "matching engine for the throughput and tenancy tables")
	out := flag.String("out", "", "artifact path for the throughput/tenancy/obs/durability tables (default BENCH_<table>.json; \"none\" to skip)")
	matches := flag.Int("matches", 0, "matches per worker in the throughput and tenancy tables (0 = default)")
	mutations := flag.Int("mutations", 0, "install/remove pairs per phase in the durability table (0 = default)")
	budget := flag.Int64("budget", 0, "per-match evaluator step budget (0 = unlimited); measures governed-deployment overhead")
	flag.Parse()

	outPath := *out
	if outPath == "" {
		switch *table {
		case "throughput":
			outPath = "BENCH_throughput.json"
		case "tenancy":
			outPath = "BENCH_tenancy.json"
		case "obs":
			outPath = "BENCH_obs.json"
		case "durability":
			outPath = "BENCH_durability.json"
		}
	} else if outPath == "none" {
		outPath = ""
	}

	if *table == "obs" {
		r, err := benchkit.RunObs(benchkit.ObsConfig{
			Seed:    *seed,
			Level:   *level,
			Repeats: *repeats,
			Budget:  *budget,
		})
		if err != nil {
			fatal(err)
		}
		fmt.Print(r.Render())
		if outPath != "" {
			if err := r.WriteJSON(outPath); err != nil {
				fatal(err)
			}
			fmt.Println("wrote", outPath)
		}
		return
	}

	if *table == "durability" {
		r, err := benchkit.RunDurability(benchkit.DurabilityConfig{
			Seed:      *seed,
			Mutations: *mutations,
		})
		if err != nil {
			fatal(err)
		}
		fmt.Print(r.Render())
		if outPath != "" {
			if err := r.WriteJSON(outPath); err != nil {
				fatal(err)
			}
			fmt.Println("wrote", outPath)
		}
		return
	}

	if *table == "throughput" {
		eng, err := core.ParseEngine(*engine)
		if err != nil {
			fatal(err)
		}
		r, err := benchkit.RunThroughput(benchkit.ThroughputConfig{
			Seed:             *seed,
			Level:            *level,
			Engine:           eng,
			MatchesPerWorker: *matches,
			Budget:           *budget,
		})
		if err != nil {
			fatal(err)
		}
		fmt.Print(r.Render())
		if outPath != "" {
			if err := r.WriteJSON(outPath); err != nil {
				fatal(err)
			}
			fmt.Println("wrote", outPath)
		}
		return
	}

	if *table == "tenancy" {
		eng, err := core.ParseEngine(*engine)
		if err != nil {
			fatal(err)
		}
		r, err := benchkit.RunTenancy(benchkit.TenancyConfig{
			Seed:             *seed,
			Level:            *level,
			Engine:           eng,
			MatchesPerWorker: *matches,
		})
		if err != nil {
			fatal(err)
		}
		fmt.Print(r.Render())
		if outPath != "" {
			if err := r.WriteJSON(outPath); err != nil {
				fatal(err)
			}
			fmt.Println("wrote", outPath)
		}
		return
	}

	if *table == "ablate" {
		a, err := benchkit.RunAblations(*seed, *level)
		if err != nil {
			fatal(err)
		}
		fmt.Print(a.Render())
		return
	}

	r, err := benchkit.Run(benchkit.Config{Seed: *seed, Repeats: *repeats})
	if err != nil {
		fatal(err)
	}
	switch *table {
	case "all":
		fmt.Print(r.Report())
		a, err := benchkit.RunAblations(*seed, *level)
		if err != nil {
			fatal(err)
		}
		fmt.Println()
		fmt.Print(a.Render())
	case "fig19":
		fmt.Print(r.Figure19())
	case "shred":
		fmt.Print(r.ShredTable())
	case "fig20":
		fmt.Print(r.Figure20())
	case "fig21":
		fmt.Print(r.Figure21())
	case "warmcold":
		fmt.Print(r.WarmCold())
	case "xquery-native":
		fmt.Print(r.XQueryNativeTable())
	default:
		fatal(fmt.Errorf("unknown table %q", *table))
	}
}

func fatal(err error) {
	fmt.Fprintln(os.Stderr, "p3pbench:", err)
	os.Exit(1)
}
