// Command p3pmatch matches an APPEL preference against a P3P policy with
// a selectable engine:
//
//	p3pmatch -policy=policy.xml -pref=pref.xml [-engine=sql] [-all]
//
// With -all, every engine runs and the decisions (which must agree) are
// printed side by side with their conversion/query times. Without file
// arguments it demonstrates the paper's worked example: Volga's policy
// against Jane's preference.
package main

import (
	"flag"
	"fmt"
	"os"

	"p3pdb/internal/appel"
	"p3pdb/internal/core"
	"p3pdb/internal/p3p"
)

func main() {
	policyPath := flag.String("policy", "", "P3P policy file (default: the paper's Volga example)")
	prefPath := flag.String("pref", "", "APPEL preference file (default: the paper's Jane example)")
	engineName := flag.String("engine", "sql", "matching engine: native, sql, xtable, xquery")
	all := flag.Bool("all", false, "run every engine")
	flag.Parse()

	policyXML := p3p.VolgaPolicyXML
	if *policyPath != "" {
		data, err := os.ReadFile(*policyPath)
		if err != nil {
			fatal(err)
		}
		policyXML = string(data)
	}
	prefXML := appel.JanePreferenceXML
	if *prefPath != "" {
		data, err := os.ReadFile(*prefPath)
		if err != nil {
			fatal(err)
		}
		prefXML = string(data)
	}

	site, err := core.NewSite()
	if err != nil {
		fatal(err)
	}
	names, err := site.InstallPolicyXML(policyXML)
	if err != nil {
		fatal(fmt.Errorf("installing policy: %w", err))
	}

	engines := []core.Engine{}
	if *all {
		engines = core.Engines
	} else {
		e, err := core.ParseEngine(*engineName)
		if err != nil {
			fatal(err)
		}
		engines = append(engines, e)
	}

	for _, name := range names {
		for _, engine := range engines {
			d, err := site.MatchPolicy(prefXML, name, engine)
			if err != nil {
				fmt.Printf("%-22s policy=%-12s ERROR: %v\n", engine, name, err)
				continue
			}
			desc := d.RuleDescription
			if desc == "" {
				desc = fmt.Sprintf("rule %d", d.RuleIndex+1)
			}
			fmt.Printf("%-22s policy=%-12s decision=%-8s via %-40s convert=%-10s query=%s\n",
				engine, name, d.Behavior, desc, d.Convert, d.Query)
		}
	}
}

func fatal(err error) {
	fmt.Fprintln(os.Stderr, "p3pmatch:", err)
	os.Exit(1)
}
