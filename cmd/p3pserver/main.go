// Command p3pserver runs the server-centric P3P matching service
// (Figures 5 and 6 of the paper) over HTTP:
//
//	p3pserver [-addr=:8733] [-demo]
//
// With -demo the server starts preloaded with the synthesized 29-policy
// corpus and its reference file, so clients can match immediately. The
// API:
//
//	POST /policies           install a POLICY/POLICIES document
//	GET  /policies           list installed policy names
//	GET  /policies/{name}    fetch a policy document
//	DELETE /policies/{name}  remove a policy (versioning)
//	POST /reference          install the META reference file
//	POST /match?uri=&engine= match the APPEL body; engines: native, sql,
//	                         xtable, xquery
//	GET  /analytics          site-owner conflict statistics
package main

import (
	"flag"
	"fmt"
	"log"
	"net/http"
	"os"

	"p3pdb/internal/core"
	"p3pdb/internal/server"
	"p3pdb/internal/workload"
)

func main() {
	addr := flag.String("addr", ":8733", "listen address")
	demo := flag.Bool("demo", false, "preload the synthesized Fortune-1000-style corpus")
	seed := flag.Int64("seed", 42, "corpus seed for -demo")
	flag.Parse()

	site, err := core.NewSite()
	if err != nil {
		fatal(err)
	}
	if *demo {
		d := workload.Generate(*seed)
		for _, pol := range d.Policies {
			if err := site.InstallPolicy(pol); err != nil {
				fatal(err)
			}
		}
		if err := site.InstallReferenceFile(d.RefFile); err != nil {
			fatal(err)
		}
		log.Printf("preloaded %d policies; try: curl -X POST --data-binary @pref.xml 'http://localhost%s/match?uri=%s'",
			len(d.Policies), *addr, d.URIFor(d.Policies[0].Name))
	}
	log.Printf("p3pserver listening on %s", *addr)
	if err := http.ListenAndServe(*addr, server.New(site)); err != nil {
		fatal(err)
	}
}

func fatal(err error) {
	fmt.Fprintln(os.Stderr, "p3pserver:", err)
	os.Exit(1)
}
