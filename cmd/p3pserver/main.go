// Command p3pserver runs the server-centric P3P matching service
// (Figures 5 and 6 of the paper) over HTTP:
//
//	p3pserver [-addr=:8733] [-demo] [-budget=N] [-timeout=D]
//
// With -demo the server starts preloaded with the synthesized 29-policy
// corpus and its reference file, so clients can match immediately. The
// API:
//
//	POST /policies           install a POLICY/POLICIES document
//	GET  /policies           list installed policy names
//	GET  /policies/{name}    fetch a policy document
//	DELETE /policies/{name}  remove a policy (versioning)
//	POST /reference          install the META reference file
//	POST /match?uri=&engine= match the APPEL body; engines: native, sql,
//	                         xtable, xquery
//	GET  /analytics          site-owner conflict statistics
//
// Resource governance: -budget caps evaluator steps per match (503
// budget-exceeded past it), -timeout bounds each matching request's
// wall clock (504 past it), and the P3P_FAULTS environment variable (or
// -faults) arms deterministic fault injection for failure drills, e.g.
// P3P_FAULTS=reldb.query:error:after=3. The server shuts down
// gracefully on SIGINT/SIGTERM, draining in-flight requests.
//
// Caching: repeat matches are served from a per-site lock-free decision
// cache keyed by (preference, policy, engine, snapshot generation);
// policy writes invalidate it wholesale by publishing a new generation.
// -decision-cache sizes it in slots (0 = the 4096 default, -1 disables);
// responses served from it carry "cached": true and zero convert/query
// times. The conversion cache below it is always on.
//
// Multi-tenant mode: -sites-dir points at a directory with one
// subdirectory per tenant (each holding *.xml policy documents and an
// optional reference.xml META file). Tenants load lazily, are reachable
// under /sites/{name}/... or by Host header, and -max-sites bounds how
// many stay resident (LRU eviction past it). SIGHUP re-reads every
// resident tenant's directory and swaps its policy set atomically —
// matches in flight keep their snapshot, so reload never blocks reads.
//
// Durability: -durable points at a state directory and turns admin
// mutations into write-ahead-logged operations — every policy install,
// removal, and reference-file change is on disk before its 2xx, and a
// killed server recovers the exact acknowledged state on restart from
// its snapshot checkpoint plus log tail. -fsync picks the sync policy
// (always, interval, never) and -checkpoint-every how many logged
// records trigger an automatic snapshot. With -durable, SIGHUP
// checkpoints every resident tenant instead of re-reading directories
// (the log, not the sites-dir, is the source of truth), and GET
// /durability (or /sites/{name}/durability) reports the log position.
package main

import (
	"context"
	"errors"
	"expvar"
	"flag"
	"fmt"
	"log"
	"net/http"
	"net/http/pprof"
	"os"
	"os/signal"
	"strings"
	"syscall"
	"time"

	"p3pdb/internal/core"
	"p3pdb/internal/durable"
	"p3pdb/internal/faultkit"
	"p3pdb/internal/obs"
	"p3pdb/internal/registry"
	"p3pdb/internal/replica"
	"p3pdb/internal/server"
	"p3pdb/internal/workload"
)

func main() {
	addr := flag.String("addr", ":8733", "listen address")
	demo := flag.Bool("demo", false, "preload the synthesized Fortune-1000-style corpus")
	seed := flag.Int64("seed", 42, "corpus seed for -demo")
	budget := flag.Int64("budget", 0, "per-match evaluator step budget (0 = unlimited)")
	timeout := flag.Duration("timeout", 0, "per-request matching deadline (0 = none)")
	policyTimeout := flag.Duration("policy-timeout", 0, "per-policy deadline inside /matchall (0 = none)")
	faults := flag.String("faults", "", "fault-injection spec (overrides P3P_FAULTS)")
	debugAddr := flag.String("debug-addr", "", "separate listener for net/http/pprof, /debug/vars, and /metrics (empty = off)")
	traceLog := flag.String("trace-log", "", `request-trace destination: a file path, or "-" for stderr (empty = tracing off)`)
	sitesDir := flag.String("sites-dir", "", "multi-tenant mode: directory of per-site policy directories")
	maxSites := flag.Int("max-sites", 0, "resident-tenant bound for -sites-dir (0 = unbounded)")
	durableDir := flag.String("durable", "", "durable state directory: write-ahead-log every admin mutation and recover on restart (empty = in-memory only)")
	fsyncMode := flag.String("fsync", "always", "WAL sync policy with -durable: always, interval, or never")
	fsyncInterval := flag.Duration("fsync-interval", 100*time.Millisecond, "group-commit period for -fsync=interval")
	checkpointEvery := flag.Int("checkpoint-every", 256, "logged records between automatic snapshot checkpoints (-1 disables)")
	decisionCache := flag.Int("decision-cache", 0, "decision-cache slots per site, rounded up to a power of two (0 = default 4096, -1 = disabled)")
	recoveryParallel := flag.Int("recovery-parallel", 0, "tenant-recovery workers for -sites-dir startup and SIGHUP reload (0 = one per CPU, 1 = serial)")
	recoveryWarm := flag.Bool("recovery-warm", true, "with -sites-dir, load every known tenant before serving instead of lazily on first request")
	follow := flag.String("follow", "", "follower mode: tail this leader URL's WAL and serve read-only matches (excludes -demo, -sites-dir, -durable)")
	followTenants := flag.String("follow-tenants", "", "comma-separated tenants to replicate with -follow (empty = discover from leader)")
	followMaxLag := flag.Uint64("follow-max-lag", 0, "records a follower may lag and still report ready with -follow")
	flag.Parse()

	if *traceLog != "" {
		w := os.Stderr
		if *traceLog != "-" {
			f, err := os.OpenFile(*traceLog, os.O_CREATE|os.O_WRONLY|os.O_APPEND, 0o644)
			if err != nil {
				fatal(err)
			}
			defer f.Close()
			w = f
		}
		obs.SetTraceWriter(w)
		log.Printf("request tracing on: one JSON line per request to %s", *traceLog)
	}

	if *debugAddr != "" {
		obs.PublishExpvar()
		dmux := http.NewServeMux()
		dmux.HandleFunc("/debug/pprof/", pprof.Index)
		dmux.HandleFunc("/debug/pprof/cmdline", pprof.Cmdline)
		dmux.HandleFunc("/debug/pprof/profile", pprof.Profile)
		dmux.HandleFunc("/debug/pprof/symbol", pprof.Symbol)
		dmux.HandleFunc("/debug/pprof/trace", pprof.Trace)
		dmux.Handle("/debug/vars", expvar.Handler())
		dmux.Handle("/metrics", obs.Handler(obs.Default))
		go func() {
			log.Printf("debug listener (pprof, expvar, metrics) on %s", *debugAddr)
			dsrv := &http.Server{Addr: *debugAddr, Handler: dmux, ReadHeaderTimeout: 5 * time.Second}
			if err := dsrv.ListenAndServe(); err != nil && !errors.Is(err, http.ErrServerClosed) {
				log.Printf("debug listener: %v", err)
			}
		}()
	}

	spec := *faults
	if spec == "" {
		spec = os.Getenv("P3P_FAULTS")
	}
	if spec != "" {
		if err := faultkit.EnableFromEnv(spec); err != nil {
			fatal(err)
		}
		log.Printf("fault injection armed: %s", spec)
	}

	siteOpts := core.Options{
		MatchBudget:      *budget,
		PerPolicyTimeout: *policyTimeout,
	}
	switch {
	case *decisionCache < 0:
		siteOpts.DisableDecisionCache = true
	case *decisionCache > 0:
		siteOpts.DecisionCacheSize = *decisionCache
	}
	srvOpts := server.Options{RequestTimeout: *timeout}

	if *follow != "" {
		if *demo || *sitesDir != "" || *durableDir != "" {
			fatal(errors.New("-follow runs a read-only replica; it excludes -demo, -sites-dir, and -durable"))
		}
		runFollower(*addr, *follow, *followTenants, *followMaxLag, siteOpts)
		return
	}

	var store *durable.Store
	if *durableDir != "" {
		policy, err := durable.ParseFsyncPolicy(*fsyncMode)
		if err != nil {
			fatal(err)
		}
		store, err = durable.Open(*durableDir, durable.Options{
			Fsync:           policy,
			FsyncInterval:   *fsyncInterval,
			CheckpointEvery: *checkpointEvery,
		})
		if err != nil {
			fatal(err)
		}
		log.Printf("durable mode: WAL + checkpoints under %s (fsync=%s, checkpoint-every=%d)",
			*durableDir, policy, *checkpointEvery)
	}

	// onShutdown collects the final durability work (checkpoint + close)
	// run after the listener drains.
	var onShutdown func()

	var srv *http.Server
	if *sitesDir != "" {
		if *demo {
			fatal(errors.New("-demo applies to single-site mode; populate -sites-dir directories instead"))
		}
		reg, err := registry.New(registry.Options{
			Dir:                 *sitesDir,
			Site:                siteOpts,
			MaxSites:            *maxSites,
			Durable:             store,
			RecoveryParallelism: *recoveryParallel,
		})
		if err != nil {
			fatal(err)
		}
		if *recoveryWarm {
			start := time.Now()
			if err := reg.LoadAll(); err != nil {
				log.Printf("tenant warm-up: %v", err)
			}
			log.Printf("warmed %d tenants in %s", reg.Len(), time.Since(start).Round(time.Millisecond))
		}
		// SIGHUP: with durability on, checkpoint every resident tenant
		// (the log is the source of truth; a snapshot bounds recovery
		// time). Without it, hot-reload every tenant from disk; each
		// swap is atomic, so requests in flight finish on their old
		// snapshot.
		hup := make(chan os.Signal, 1)
		signal.Notify(hup, syscall.SIGHUP)
		go func() {
			for range hup {
				if store != nil {
					log.Printf("SIGHUP: checkpointing %d resident tenants", reg.Len())
					if err := reg.CheckpointAll(); err != nil {
						log.Printf("checkpoint: %v", err)
					}
					continue
				}
				log.Printf("SIGHUP: reloading %d resident tenants", reg.Len())
				if err := reg.ReloadAll(); err != nil {
					log.Printf("reload: %v", err)
				}
			}
		}()
		if store != nil {
			onShutdown = func() {
				if err := reg.Close(); err != nil {
					log.Printf("durable close: %v", err)
				}
			}
		}
		log.Printf("multi-tenant mode: %d tenants under %s", len(reg.Names()), *sitesDir)
		srv = server.NewMultiWithOptions(reg, srvOpts).HTTPServer(*addr)
	} else {
		site, err := core.NewSiteWithOptions(siteOpts)
		if err != nil {
			fatal(err)
		}
		if store != nil {
			journal, err := store.OpenTenant("default")
			if err != nil {
				fatal(err)
			}
			if err := journal.ReplayInto(site); err != nil {
				fatal(err)
			}
			if n := len(site.PolicyNames()); n > 0 {
				log.Printf("recovered %d policies from %s (LSN %d)", n, *durableDir, journal.Status().LSN)
			}
			srvOpts.Journal = journal
			// SIGHUP checkpoints the single site, mirroring multi-tenant
			// mode.
			hup := make(chan os.Signal, 1)
			signal.Notify(hup, syscall.SIGHUP)
			go func() {
				for range hup {
					log.Printf("SIGHUP: checkpointing")
					if err := journal.Checkpoint(site); err != nil {
						log.Printf("checkpoint: %v", err)
					}
				}
			}()
			onShutdown = func() {
				if err := journal.Checkpoint(site); err != nil && !errors.Is(err, durable.ErrClosed) {
					log.Printf("durable checkpoint: %v", err)
				}
				if err := journal.Close(); err != nil {
					log.Printf("durable close: %v", err)
				}
			}
		}
		if *demo && len(site.PolicyNames()) == 0 {
			d := workload.Generate(*seed)
			for _, pol := range d.Policies {
				if err := site.InstallPolicy(pol); err != nil {
					fatal(err)
				}
			}
			if err := site.InstallReferenceFile(d.RefFile); err != nil {
				fatal(err)
			}
			if srvOpts.Journal != nil {
				// The preload rode outside the journal; checkpoint so it
				// is durable as one snapshot.
				if err := srvOpts.Journal.Checkpoint(site); err != nil {
					fatal(err)
				}
			}
			log.Printf("preloaded %d policies; try: curl -X POST --data-binary @pref.xml 'http://localhost%s/match?uri=%s'",
				len(d.Policies), *addr, d.URIFor(d.Policies[0].Name))
		}
		srv = server.NewWithOptions(site, srvOpts).HTTPServer(*addr)
	}

	// Serve until SIGINT/SIGTERM, then drain: stop accepting, let
	// in-flight matches finish (their request contexts are canceled by
	// the drain deadline if they overstay).
	ctx, stop := signal.NotifyContext(context.Background(), os.Interrupt, syscall.SIGTERM)
	defer stop()
	errc := make(chan error, 1)
	go func() {
		log.Printf("p3pserver listening on %s", *addr)
		errc <- srv.ListenAndServe()
	}()
	select {
	case err := <-errc:
		fatal(err)
	case <-ctx.Done():
		stop()
		log.Printf("p3pserver shutting down")
		shutdownCtx, cancel := context.WithTimeout(context.Background(), 10*time.Second)
		defer cancel()
		if err := srv.Shutdown(shutdownCtx); err != nil && !errors.Is(err, context.DeadlineExceeded) {
			fatal(err)
		}
		if onShutdown != nil {
			onShutdown()
		}
	}
}

// runFollower runs the read-only replica face (DESIGN.md §12): tail the
// leader's WAL per tenant, serve matches from local snapshots, reject
// writes with a 403 pointing back at the leader.
func runFollower(addr, leader, tenants string, maxLag uint64, siteOpts core.Options) {
	opts := replica.Options{Leader: leader, MaxReadyLag: maxLag, Site: siteOpts}
	if tenants != "" {
		for _, name := range strings.Split(tenants, ",") {
			if name = strings.TrimSpace(name); name != "" {
				opts.Tenants = append(opts.Tenants, name)
			}
		}
	}
	node, err := replica.New(opts)
	if err != nil {
		fatal(err)
	}
	if err := node.Start(); err != nil {
		fatal(err)
	}
	srv := node.HTTPServer(addr)
	ctx, stop := signal.NotifyContext(context.Background(), os.Interrupt, syscall.SIGTERM)
	defer stop()
	errc := make(chan error, 1)
	go func() {
		log.Printf("p3pserver follower listening on %s (leader %s)", addr, leader)
		errc <- srv.ListenAndServe()
	}()
	select {
	case err := <-errc:
		fatal(err)
	case <-ctx.Done():
		stop()
		log.Printf("p3pserver follower shutting down")
		shutdownCtx, cancel := context.WithTimeout(context.Background(), 10*time.Second)
		defer cancel()
		if err := srv.Shutdown(shutdownCtx); err != nil && !errors.Is(err, context.DeadlineExceeded) {
			fatal(err)
		}
		node.Stop()
	}
}

func fatal(err error) {
	fmt.Fprintln(os.Stderr, "p3pserver:", err)
	os.Exit(1)
}
