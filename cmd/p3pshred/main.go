// Command p3pshred shreds a P3P policy into relational tables and dumps
// them, showing what the Section 5 algorithms produce:
//
//	p3pshred [-schema=optimized|generic|dynamic] [-policy=policy.xml] [-tables=Purpose,Data]
//
// Without a policy file it shreds the paper's Volga example. The generic
// schema is the Figure 8 one-table-per-element decomposition; optimized is
// the Figure 14 schema the implementation uses; dynamic runs the literal
// Figure 8/10 algorithms, discovering the schema from the document itself.
package main

import (
	"flag"
	"fmt"
	"os"
	"strings"

	"p3pdb/internal/appelengine"
	"p3pdb/internal/p3p"
	"p3pdb/internal/reldb"
	"p3pdb/internal/shred"
	"p3pdb/internal/xmldom"
)

func main() {
	schema := flag.String("schema", "optimized", "target schema: optimized, generic, or dynamic")
	policyPath := flag.String("policy", "", "P3P policy file (default: the paper's Volga example)")
	tables := flag.String("tables", "", "comma-separated tables to dump (default: all non-empty)")
	flag.Parse()

	policyXML := p3p.VolgaPolicyXML
	if *policyPath != "" {
		data, err := os.ReadFile(*policyPath)
		if err != nil {
			fatal(err)
		}
		policyXML = string(data)
	}
	pols, err := p3p.ParsePolicies(policyXML)
	if err != nil {
		fatal(err)
	}

	db := reldb.New()
	switch *schema {
	case "optimized":
		store, err := shred.NewOptimized(db)
		if err != nil {
			fatal(err)
		}
		for _, pol := range pols {
			id, err := store.InstallPolicy(pol)
			if err != nil {
				fatal(err)
			}
			fmt.Printf("installed policy %q as id %d\n", pol.Name, id)
		}
	case "generic":
		store, err := shred.NewGeneric(db)
		if err != nil {
			fatal(err)
		}
		for _, pol := range pols {
			id, err := store.InstallPolicy(pol)
			if err != nil {
				fatal(err)
			}
			fmt.Printf("installed policy %q as id %d\n", pol.Name, id)
		}
	case "dynamic":
		store := shred.NewDynamic(db)
		engine := appelengine.NewWithOptions(appelengine.Options{IndexedAugmentation: true})
		for _, pol := range pols {
			doc, err := xmldom.ParseString(pol.String())
			if err != nil {
				fatal(err)
			}
			id, err := store.Install(engine.Augment(doc))
			if err != nil {
				fatal(err)
			}
			fmt.Printf("installed policy %q as id %d (schema discovered from the document)\n", pol.Name, id)
		}
	default:
		fatal(fmt.Errorf("unknown schema %q", *schema))
	}

	want := map[string]bool{}
	if *tables != "" {
		for _, t := range strings.Split(*tables, ",") {
			want[strings.ToLower(strings.TrimSpace(t))] = true
		}
	}
	for _, name := range db.TableNames() {
		if len(want) > 0 && !want[strings.ToLower(name)] {
			continue
		}
		rows, err := db.Query("SELECT * FROM " + name)
		if err != nil {
			fatal(err)
		}
		if len(rows.Data) == 0 && len(want) == 0 {
			continue
		}
		fmt.Printf("\n%s (%d rows)\n", name, len(rows.Data))
		fmt.Println("  " + strings.Join(rows.Columns, " | "))
		for _, row := range rows.Data {
			cells := make([]string, len(row))
			for i, v := range row {
				cells[i] = v.String()
			}
			fmt.Println("  " + strings.Join(cells, " | "))
		}
	}
}

func fatal(err error) {
	fmt.Fprintln(os.Stderr, "p3pshred:", err)
	os.Exit(1)
}
