// Command p3pgen emits the synthesized experimental data set (Section 6.2
// of the paper: 29 Fortune-1000-style P3P policies, the site reference
// file, and the 5 JRC-style APPEL preferences) into a directory:
//
//	p3pgen -out=dataset [-seed=42]
//
// The same seed reproduces the same bytes. The directory layout:
//
//	dataset/policies/<name>.xml
//	dataset/reference.xml
//	dataset/preferences/<level>.xml
//	dataset/MANIFEST.txt
package main

import (
	"flag"
	"fmt"
	"os"
	"path/filepath"
	"strings"

	"p3pdb/internal/workload"
)

func main() {
	out := flag.String("out", "dataset", "output directory")
	seed := flag.Int64("seed", 42, "generation seed")
	flag.Parse()

	d := workload.Generate(*seed)
	policiesDir := filepath.Join(*out, "policies")
	prefsDir := filepath.Join(*out, "preferences")
	for _, dir := range []string{policiesDir, prefsDir} {
		if err := os.MkdirAll(dir, 0o755); err != nil {
			fatal(err)
		}
	}

	var manifest strings.Builder
	fmt.Fprintf(&manifest, "seed: %d\npolicies: %d\n", *seed, len(d.Policies))
	for _, pol := range d.Policies {
		xml := d.PolicyXML[pol.Name]
		path := filepath.Join(policiesDir, pol.Name+".xml")
		if err := os.WriteFile(path, []byte(xml), 0o644); err != nil {
			fatal(err)
		}
		fmt.Fprintf(&manifest, "  %-32s %6d bytes  %d statements\n",
			pol.Name+".xml", len(xml), len(pol.Statements))
	}
	if err := os.WriteFile(filepath.Join(*out, "reference.xml"),
		[]byte(d.RefFile.String()), 0o644); err != nil {
		fatal(err)
	}
	fmt.Fprintf(&manifest, "preferences: %d\n", len(d.Preferences))
	for _, pref := range d.Preferences {
		name := strings.ToLower(strings.ReplaceAll(pref.Level, " ", "-")) + ".xml"
		if err := os.WriteFile(filepath.Join(prefsDir, name), []byte(pref.XML), 0o644); err != nil {
			fatal(err)
		}
		fmt.Fprintf(&manifest, "  %-32s %6d bytes  %d rules\n",
			name, len(pref.XML), len(pref.Ruleset.Rules))
	}
	if err := os.WriteFile(filepath.Join(*out, "MANIFEST.txt"),
		[]byte(manifest.String()), 0o644); err != nil {
		fatal(err)
	}
	fmt.Printf("wrote data set to %s\n", *out)
}

func fatal(err error) {
	fmt.Fprintln(os.Stderr, "p3pgen:", err)
	os.Exit(1)
}
