// Command p3prouter fronts a replicated p3pdb deployment: one write
// leader plus read-only followers tailing its WAL (DESIGN.md §12).
//
//	p3prouter -leader=http://leader:8733 \
//	          -replica=http://r1:8734 -replica=http://r2:8735 \
//	          [-addr=:8732] [-max-lag=0] [-probe=500ms]
//
// Writes (policy installs, reference-file changes, tenant admin) always
// go to the leader; reads spread across caught-up backends by
// rendezvous-hashing the tenant name with a bounded-load cap. Backends
// are health-checked on /readyz and lag-checked on /replication/status;
// when the leader stops answering, reads drain onto followers that had
// caught up to its last reported LSN, and writes return 503 until the
// leader returns. The router's own endpoints live under /router/
// (healthz, readyz, status) so they never shadow tenant paths.
package main

import (
	"context"
	"errors"
	"flag"
	"fmt"
	"log"
	"os"
	"os/signal"
	"strings"
	"syscall"
	"time"

	"p3pdb/internal/router"
)

type listFlag []string

func (l *listFlag) String() string { return strings.Join(*l, ",") }
func (l *listFlag) Set(v string) error {
	*l = append(*l, v)
	return nil
}

func main() {
	addr := flag.String("addr", ":8732", "listen address")
	leader := flag.String("leader", "", "base URL of the write leader (required)")
	var replicas listFlag
	flag.Var(&replicas, "replica", "base URL of a read-only follower (repeatable)")
	maxLag := flag.Uint64("max-lag", 0, "records a follower may lag the leader's last known LSN and still serve reads")
	probe := flag.Duration("probe", 500*time.Millisecond, "backend health/lag probe interval")
	bound := flag.Float64("bound", 1.25, "bounded-load factor: per-backend in-flight cap relative to the mean")
	flag.Parse()

	if *leader == "" {
		fatal(errors.New("-leader is required"))
	}
	rt, err := router.New(router.Options{
		Leader:        *leader,
		Replicas:      replicas,
		ProbeInterval: *probe,
		MaxLag:        *maxLag,
		BoundFactor:   *bound,
	})
	if err != nil {
		fatal(err)
	}
	rt.Start()
	defer rt.Stop()

	srv := rt.HTTPServer(*addr)
	ctx, stop := signal.NotifyContext(context.Background(), os.Interrupt, syscall.SIGTERM)
	defer stop()
	errc := make(chan error, 1)
	go func() {
		log.Printf("p3prouter listening on %s (leader %s, %d replicas)", *addr, *leader, len(replicas))
		errc <- srv.ListenAndServe()
	}()
	select {
	case err := <-errc:
		fatal(err)
	case <-ctx.Done():
		stop()
		log.Printf("p3prouter shutting down")
		shutdownCtx, cancel := context.WithTimeout(context.Background(), 10*time.Second)
		defer cancel()
		if err := srv.Shutdown(shutdownCtx); err != nil && !errors.Is(err, context.DeadlineExceeded) {
			fatal(err)
		}
	}
}

func fatal(err error) {
	fmt.Fprintln(os.Stderr, "p3prouter:", err)
	os.Exit(1)
}
