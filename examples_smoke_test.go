package bench

import (
	"os/exec"
	"strings"
	"testing"
)

// TestExamplesRun executes every example binary end to end and checks the
// load-bearing line of its output, so the examples cannot rot. Skipped in
// -short mode (each example builds and runs a full Site).
func TestExamplesRun(t *testing.T) {
	if testing.Short() {
		t.Skip("examples are slow to build and run")
	}
	if _, err := exec.LookPath("go"); err != nil {
		t.Skip("go toolchain not on PATH")
	}
	cases := []struct {
		dir  string
		want []string
	}{
		{"./examples/quickstart", []string{
			"installed policies: [volga]",
			"request",
			"without the opt-in attribute: block",
		}},
		{"./examples/bookstore", []string{
			"site owner installed policies [checkout catalog]",
			"STOP /books/dune",
			"OK   /checkout/pay",
			"site-owner analytics",
		}},
		{"./examples/thinclient", []string{
			"client-centric session over 29 pages",
			"decision bytes shipped to device",
			"no APPEL engine on the device",
		}},
		{"./examples/analytics", []string{
			"policy v1:",
			"conflict analytics",
			"policy v2:",
		}},
		{"./examples/cookiewall", []string{
			`cookie "cart_7f3a"`,
			"CP header:",
			"server-centric: block",
		}},
	}
	for _, c := range cases {
		c := c
		t.Run(strings.TrimPrefix(c.dir, "./examples/"), func(t *testing.T) {
			t.Parallel()
			out, err := exec.Command("go", "run", c.dir).CombinedOutput()
			if err != nil {
				t.Fatalf("go run %s: %v\n%s", c.dir, err, out)
			}
			for _, want := range c.want {
				if !strings.Contains(string(out), want) {
					t.Errorf("%s output missing %q:\n%s", c.dir, want, out)
				}
			}
		})
	}
}
