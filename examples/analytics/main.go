// Analytics: the site-owner feedback loop the server-centric architecture
// enables (Section 4.2: "Site owners can refine their policies if they
// know what policies have a conflict with the privacy preferences of
// their users. The current architecture does not allow the site owners to
// obtain this information.").
//
// The example simulates a user population with mixed preference levels
// visiting a site, inspects the conflict analytics, rewrites the policy to
// remove its worst-offending practice, installs the new version (policy
// versioning in the database), and measures the block rate again.
//
// Run with: go run ./examples/analytics
package main

import (
	"fmt"
	"log"

	"p3pdb/internal/core"
	"p3pdb/internal/p3p"
	"p3pdb/internal/workload"
)

const policyV1 = `<POLICY xmlns="http://www.w3.org/2002/01/P3Pv1"
    name="shop" discuri="http://shop.example.com/privacy">
  <ENTITY><DATA-GROUP><DATA ref="#business.name">Example Shop</DATA></DATA-GROUP></ENTITY>
  <ACCESS><contact-and-other/></ACCESS>
  <STATEMENT>
    <CONSEQUENCE>We fulfil your order.</CONSEQUENCE>
    <PURPOSE><current/></PURPOSE>
    <RECIPIENT><ours/></RECIPIENT>
    <RETENTION><stated-purpose/></RETENTION>
    <DATA-GROUP>
      <DATA ref="#user.name"/><DATA ref="#user.home-info.postal"/>
    </DATA-GROUP>
  </STATEMENT>
  <STATEMENT>
    <CONSEQUENCE>We call customers with offers and share lists with partners.</CONSEQUENCE>
    <PURPOSE><telemarketing/><contact/></PURPOSE>
    <RECIPIENT><ours/><unrelated/></RECIPIENT>
    <RETENTION><indefinitely/></RETENTION>
    <DATA-GROUP>
      <DATA ref="#user.home-info.telecom.telephone"/>
      <DATA ref="#user.home-info.online.email"/>
    </DATA-GROUP>
  </STATEMENT>
</POLICY>`

func main() {
	site, err := core.NewSite()
	if err != nil {
		log.Fatal(err)
	}
	if _, err := site.InstallPolicyXML(policyV1); err != nil {
		log.Fatal(err)
	}

	// A user population: one visit per preference level, weighted the
	// way privacy surveys of the era bucketed users (most in the
	// middle).
	population := []struct {
		level  string
		visits int
	}{
		{"Very High", 10}, {"High", 25}, {"Medium", 40}, {"Low", 20}, {"Very Low", 5},
	}
	visit := func() (blocks, total int) {
		for _, group := range population {
			pref, ok := workload.PreferenceByLevel(group.level)
			if !ok {
				log.Fatalf("no preference %s", group.level)
			}
			for i := 0; i < group.visits; i++ {
				d, err := site.MatchPolicy(pref.XML, "shop", core.EngineSQL)
				if err != nil {
					log.Fatal(err)
				}
				total++
				if d.Blocked() {
					blocks++
				}
			}
		}
		return blocks, total
	}

	blocks, total := visit()
	fmt.Printf("policy v1: %d of %d visits blocked (%.0f%%)\n\n", blocks, total,
		100*float64(blocks)/float64(total))

	fmt.Println("conflict analytics (what the client-centric architecture cannot tell the owner):")
	for _, s := range site.Analytics() {
		fmt.Printf("  %3dx  %s\n", s.Count, s.RuleDescription)
	}
	fmt.Println()

	// The owner reads the analytics: telemarketing, third-party sharing,
	// and indefinite retention drive the blocks. Version 2 drops the
	// telemarketing statement and keeps contact as opt-in.
	v2, err := p3p.ParsePolicy(policyV1)
	if err != nil {
		log.Fatal(err)
	}
	v2.Statements = v2.Statements[:1]
	v2.Statements = append(v2.Statements, &p3p.Statement{
		Consequence: "With your consent we email occasional offers.",
		Purposes:    []p3p.PurposeValue{{Value: "contact", Required: "opt-in"}},
		Recipients:  []p3p.RecipientValue{{Value: "ours"}},
		Retention:   "business-practices",
		DataGroups: []*p3p.DataGroup{{
			Data: []*p3p.Data{{Ref: "#user.home-info.online.email"}},
		}},
	})
	if err := site.RemovePolicy("shop"); err != nil {
		log.Fatal(err)
	}
	if err := site.InstallPolicy(v2); err != nil {
		log.Fatal(err)
	}
	site.ResetAnalytics()
	fmt.Println("owner removes telemarketing/sharing statement, installs policy v2")

	blocks, total = visit()
	fmt.Printf("policy v2: %d of %d visits blocked (%.0f%%)\n", blocks, total,
		100*float64(blocks)/float64(total))
	if remaining := site.Analytics(); len(remaining) > 0 {
		fmt.Println("\nremaining conflicts:")
		for _, s := range remaining {
			fmt.Printf("  %3dx  %s\n", s.Count, s.RuleDescription)
		}
	}
}
