// Quickstart: the paper's worked example end to end.
//
// Volga is a bookseller whose P3P policy (Figure 1) collects name, postal
// address, and purchase data to fulfil orders, and offers opt-in email
// recommendations. Jane's APPEL preference (Figure 2) blocks marketing
// purposes and data sharing, but tolerates opt-in offers. The example
// installs Volga's policy into a Site — shredding it into relational
// tables and the XML store — and matches Jane's preference with all four
// engines, which must agree: Volga's policy conforms.
//
// Run with: go run ./examples/quickstart
package main

import (
	"fmt"
	"log"
	"strings"

	"p3pdb/internal/appel"
	"p3pdb/internal/core"
	"p3pdb/internal/p3p"
)

func main() {
	site, err := core.NewSite()
	if err != nil {
		log.Fatal(err)
	}

	// Install Volga's policy (Figure 1): one call shreds it into the
	// optimized and generic relational schemas and stores the augmented
	// XML for the native engines.
	names, err := site.InstallPolicyXML(p3p.VolgaPolicyXML)
	if err != nil {
		log.Fatal(err)
	}
	fmt.Printf("installed policies: %v\n\n", names)

	// Peek at the shredded form: the Purpose table of the Figure 14
	// schema, with the required attribute defaulted at shred time.
	rows, err := site.DB().Query(
		`SELECT statement_id, purpose, required FROM Purpose ORDER BY statement_id, purpose`)
	if err != nil {
		log.Fatal(err)
	}
	fmt.Println("Purpose table (optimized schema):")
	for _, row := range rows.Data {
		fmt.Printf("  statement %s: %-20s required=%s\n",
			row[0].AsString(), row[1].AsString(), row[2].AsString())
	}
	fmt.Println()

	// Match Jane's preference (Figure 2) with every engine.
	fmt.Println("Jane's preference against Volga's policy:")
	for _, engine := range core.Engines {
		d, err := site.MatchPolicy(appel.JanePreferenceXML, "volga", engine)
		if err != nil {
			log.Fatalf("%v: %v", engine, err)
		}
		fmt.Printf("  %-22s -> %-8s (rule %d, convert %v, query %v)\n",
			engine, d.Behavior, d.RuleIndex+1, d.Convert, d.Query)
	}
	fmt.Println()

	// The paper's counterfactual: drop the opt-in from
	// individual-decision and the P3P default (required="always")
	// applies, so Jane's first rule fires and the site is blocked.
	modified := strings.Replace(p3p.VolgaPolicyXML,
		`<individual-decision required="opt-in"/>`, `<individual-decision/>`, 1)
	modified = strings.Replace(modified, `name="volga"`, `name="volga-no-optin"`, 1)
	if _, err := site.InstallPolicyXML(modified); err != nil {
		log.Fatal(err)
	}
	d, err := site.MatchPolicy(appel.JanePreferenceXML, "volga-no-optin", core.EngineSQL)
	if err != nil {
		log.Fatal(err)
	}
	fmt.Printf("without the opt-in attribute: %s (via %q)\n",
		d.Behavior, ruleSummary(d))
}

func ruleSummary(d core.Decision) string {
	if d.RuleDescription != "" {
		return d.RuleDescription
	}
	return fmt.Sprintf("rule %d", d.RuleIndex+1)
}
