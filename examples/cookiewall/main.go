// Cookiewall: cookie decisions, two ways.
//
// Section 3.2 of the paper describes IE6's client-centric mechanism: a
// site ships a *compact policy* (the CP header's token summary) and the
// browser evaluates it locally before accepting a cookie. The
// server-centric architecture replaces that with a reference-file lookup
// (COOKIE-INCLUDE patterns) plus database matching of the full policy.
//
// This example runs both for the same site: a session cookie governed by
// a minimal policy and a tracking cookie governed by a marketing policy.
// The compact path reconstructs a synthetic policy from the tokens and
// evaluates the preference against it client-side; the server-centric
// path asks the site. The decisions agree, but the compact form is lossy
// (statement boundaries collapse), which is why it can only ever be a
// conservative approximation.
//
// Run with: go run ./examples/cookiewall
package main

import (
	"fmt"
	"log"

	"p3pdb/internal/appel"
	"p3pdb/internal/appelengine"
	"p3pdb/internal/compact"
	"p3pdb/internal/core"
)

const policies = `<POLICIES xmlns="http://www.w3.org/2002/01/P3Pv1">
  <POLICY name="session"><STATEMENT>
    <CONSEQUENCE>Session state for your cart.</CONSEQUENCE>
    <PURPOSE><current/></PURPOSE>
    <RECIPIENT><ours/></RECIPIENT>
    <RETENTION><no-retention/></RETENTION>
    <DATA-GROUP><DATA ref="#dynamic.cookies"><CATEGORIES><state/></CATEGORIES></DATA></DATA-GROUP>
  </STATEMENT></POLICY>
  <POLICY name="tracking"><STATEMENT>
    <CONSEQUENCE>Cross-visit interest profiles for ad partners.</CONSEQUENCE>
    <PURPOSE><individual-analysis/><telemarketing/></PURPOSE>
    <RECIPIENT><ours/><unrelated/></RECIPIENT>
    <RETENTION><indefinitely/></RETENTION>
    <DATA-GROUP>
      <DATA ref="#dynamic.cookies"><CATEGORIES><uniqueid/><preference/></CATEGORIES></DATA>
      <DATA ref="#dynamic.clickstream"/>
    </DATA-GROUP>
  </STATEMENT></POLICY>
</POLICIES>`

const referenceFile = `<META xmlns="http://www.w3.org/2002/01/P3Pv1">
  <POLICY-REFERENCES>
    <POLICY-REF about="#session"><INCLUDE>/*</INCLUDE><COOKIE-INCLUDE name="cart*"/></POLICY-REF>
    <POLICY-REF about="#tracking"><INCLUDE>/ads/*</INCLUDE><COOKIE-INCLUDE name="uid*"/></POLICY-REF>
  </POLICY-REFERENCES>
</META>`

func main() {
	site, err := core.NewSite()
	if err != nil {
		log.Fatal(err)
	}
	if _, err := site.InstallPolicyXML(policies); err != nil {
		log.Fatal(err)
	}
	if err := site.InstallReferenceFileXML(referenceFile); err != nil {
		log.Fatal(err)
	}

	cookies := []string{"cart_7f3a", "uid_928312"}
	pref := appel.JanePreferenceXML
	rs, err := appel.Parse(pref)
	if err != nil {
		log.Fatal(err)
	}
	engine := appelengine.New()

	for _, cookie := range cookies {
		fmt.Printf("cookie %q:\n", cookie)

		// --- Client-centric, IE6-style: fetch the compact policy for
		// the governing full policy and evaluate it locally.
		name, err := site.PolicyForCookie(cookie)
		if err != nil {
			log.Fatal(err)
		}
		cp, err := site.CompactPolicy(name)
		if err != nil {
			log.Fatal(err)
		}
		fmt.Printf("  CP header:      %s\n", cp)
		summary, err := compact.Parse(cp)
		if err != nil {
			log.Fatal(err)
		}
		synthetic := summary.ToPolicy(name + "-compact")
		clientDec, err := engine.Match(rs, synthetic.String())
		if err != nil {
			log.Fatal(err)
		}
		fmt.Printf("  client-centric: %-8s (compact policy evaluated in the browser)\n",
			clientDec.Behavior)

		// --- Server-centric: one call, full policy, database matching.
		serverDec, err := site.MatchCookie(pref, cookie, core.EngineSQL)
		if err != nil {
			log.Fatal(err)
		}
		fmt.Printf("  server-centric: %-8s (policy %q via SQL, %v)\n\n",
			serverDec.Behavior, serverDec.PolicyName, serverDec.Convert+serverDec.Query)
	}
}
