// Thin client: why the server-centric architecture suits mobile devices
// (Section 4.2 of the paper).
//
// The example contrasts the two deployments for the same browsing session:
//
//   - Client-centric: the device downloads every policy document, parses
//     it, augments it with the base data schema, and evaluates APPEL
//     locally (the JRC-engine pipeline). We count the bytes shipped to the
//     device and the device-side compute.
//
//   - Server-centric: the device sends its preference once per request and
//     receives a one-word decision; parsing, augmentation, and matching
//     stay on the server (here: the SQL engine over pre-shredded tables).
//
// Run with: go run ./examples/thinclient
package main

import (
	"fmt"
	"log"
	"net"
	"net/http"
	"time"

	"p3pdb/internal/appel"
	"p3pdb/internal/appelengine"
	"p3pdb/internal/core"
	"p3pdb/internal/server"
	"p3pdb/internal/workload"
)

func main() {
	// The site hosts the synthesized 29-policy corpus.
	d := workload.Generate(42)
	site, err := core.NewSite()
	if err != nil {
		log.Fatal(err)
	}
	for _, pol := range d.Policies {
		if err := site.InstallPolicy(pol); err != nil {
			log.Fatal(err)
		}
	}
	if err := site.InstallReferenceFile(d.RefFile); err != nil {
		log.Fatal(err)
	}
	ln, err := net.Listen("tcp", "127.0.0.1:0")
	if err != nil {
		log.Fatal(err)
	}
	srv := &http.Server{Handler: server.New(site)}
	go func() { _ = srv.Serve(ln) }()
	defer srv.Close()
	base := "http://" + ln.Addr().String()

	pref, _ := workload.PreferenceByLevel("High")
	pages := make([]string, 0, len(d.Policies))
	for _, pol := range d.Policies {
		pages = append(pages, d.URIFor(pol.Name))
	}

	// --- Client-centric session: fetch + parse + augment + match on the
	// device for every page.
	client := server.NewClient(base)
	engine := appelengine.New()
	rs, err := appel.Parse(pref.XML)
	if err != nil {
		log.Fatal(err)
	}
	var bytesToDevice int
	var deviceCompute time.Duration
	blocked := 0
	for _, pol := range d.Policies {
		policyXML, err := client.FetchPolicy(pol.Name)
		if err != nil {
			log.Fatal(err)
		}
		bytesToDevice += len(policyXML)
		start := time.Now()
		dec, err := engine.Match(rs, policyXML)
		if err != nil {
			log.Fatal(err)
		}
		deviceCompute += time.Since(start)
		if dec.Behavior == "block" {
			blocked++
		}
	}
	fmt.Printf("client-centric session over %d pages:\n", len(pages))
	fmt.Printf("  policy bytes shipped to device: %d\n", bytesToDevice)
	fmt.Printf("  device-side matching compute:   %v\n", deviceCompute)
	fmt.Printf("  blocked pages:                  %d\n\n", blocked)

	// --- Server-centric session: one small decision per page.
	thin := server.NewClient(base)
	thin.Preference = pref.XML
	thin.Engine = "sql"
	var decisionBytes int
	var serverReported time.Duration
	blocked = 0
	for _, page := range pages {
		dec, err := thin.CanVisit(page)
		if err != nil {
			log.Fatal(err)
		}
		decisionBytes += len(dec.Behavior)
		serverReported += time.Duration(dec.ConvertMicros+dec.QueryMicros) * time.Microsecond
		if dec.Behavior == "block" {
			blocked++
		}
	}
	fmt.Printf("server-centric session over %d pages:\n", len(pages))
	fmt.Printf("  decision bytes shipped to device: %d\n", decisionBytes)
	fmt.Printf("  device-side matching compute:     0 (no APPEL engine on the device)\n")
	fmt.Printf("  server-side matching time:        %v\n", serverReported)
	fmt.Printf("  blocked pages:                    %d\n\n", blocked)

	fmt.Printf("the device sheds %d KB of policy downloads and all matching compute;\n", bytesToDevice/1024)
	fmt.Println("upgrading the matcher now means upgrading one server, not every handset.")
}
