// Bookstore: the full server-centric deployment over HTTP (Figures 5-6).
//
// The example plays both roles. The site owner installs two policies — a
// strict one for checkout, a looser one (with marketing) for the catalog —
// and a reference file mapping URI spaces to them. Then two users browse:
// privacy-conscious Jane and easygoing Pat. Each client holds only its
// APPEL preference; parsing, shredding, and matching all happen on the
// server, which is the architecture's point.
//
// Run with: go run ./examples/bookstore
package main

import (
	"fmt"
	"log"
	"net"
	"net/http"

	"p3pdb/internal/appel"
	"p3pdb/internal/core"
	"p3pdb/internal/server"
)

const policies = `<POLICIES xmlns="http://www.w3.org/2002/01/P3Pv1">
  <POLICY name="checkout" discuri="http://books.example.com/privacy#checkout">
    <ENTITY><DATA-GROUP>
      <DATA ref="#business.name">Example Books</DATA>
    </DATA-GROUP></ENTITY>
    <ACCESS><contact-and-other/></ACCESS>
    <STATEMENT>
      <CONSEQUENCE>We need your address and payment data to ship your order.</CONSEQUENCE>
      <PURPOSE><current/></PURPOSE>
      <RECIPIENT><ours/><same/></RECIPIENT>
      <RETENTION><stated-purpose/></RETENTION>
      <DATA-GROUP>
        <DATA ref="#user.name"/>
        <DATA ref="#user.home-info.postal"/>
        <DATA ref="#dynamic.miscdata"><CATEGORIES><purchase/></CATEGORIES></DATA>
      </DATA-GROUP>
    </STATEMENT>
  </POLICY>
  <POLICY name="catalog" discuri="http://books.example.com/privacy#catalog">
    <ENTITY><DATA-GROUP>
      <DATA ref="#business.name">Example Books</DATA>
    </DATA-GROUP></ENTITY>
    <ACCESS><none/></ACCESS>
    <STATEMENT>
      <CONSEQUENCE>We profile browsing to recommend and advertise books.</CONSEQUENCE>
      <PURPOSE><admin/><individual-analysis/><telemarketing/></PURPOSE>
      <RECIPIENT><ours/><unrelated/></RECIPIENT>
      <RETENTION><indefinitely/></RETENTION>
      <DATA-GROUP>
        <DATA ref="#dynamic.clickstream"/>
        <DATA ref="#user.home-info.online.email"/>
      </DATA-GROUP>
    </STATEMENT>
  </POLICY>
</POLICIES>`

const referenceFile = `<META xmlns="http://www.w3.org/2002/01/P3Pv1">
  <POLICY-REFERENCES>
    <POLICY-REF about="/P3P/Policies.xml#checkout">
      <INCLUDE>/checkout/*</INCLUDE>
      <INCLUDE>/cart*</INCLUDE>
    </POLICY-REF>
    <POLICY-REF about="/P3P/Policies.xml#catalog">
      <INCLUDE>/*</INCLUDE>
      <EXCLUDE>/private/*</EXCLUDE>
    </POLICY-REF>
  </POLICY-REFERENCES>
</META>`

// patPreference tolerates marketing but not indefinite retention of data
// shared with unrelated parties... actually Pat tolerates everything.
const patPreference = `<appel:RULESET xmlns:appel="http://www.w3.org/2002/01/APPELv1">
  <appel:OTHERWISE behavior="request" description="Pat accepts any policy"/>
</appel:RULESET>`

func main() {
	// --- Site owner: bring up the service and install privacy metadata.
	site, err := core.NewSite()
	if err != nil {
		log.Fatal(err)
	}
	ln, err := net.Listen("tcp", "127.0.0.1:0")
	if err != nil {
		log.Fatal(err)
	}
	srv := &http.Server{Handler: server.New(site)}
	go func() { _ = srv.Serve(ln) }()
	defer srv.Close()
	base := "http://" + ln.Addr().String()
	fmt.Printf("bookstore privacy service at %s\n\n", base)

	owner := server.NewClient(base)
	installed, err := owner.InstallPolicies(policies)
	if err != nil {
		log.Fatal(err)
	}
	if err := owner.InstallReferenceFile(referenceFile); err != nil {
		log.Fatal(err)
	}
	fmt.Printf("site owner installed policies %v and the reference file\n\n", installed)

	// --- Two thin clients browse.
	jane := server.NewClient(base)
	jane.Preference = appel.JanePreferenceXML
	pat := server.NewClient(base)
	pat.Preference = patPreference

	pages := []string{"/books/dune", "/cart", "/checkout/pay", "/books/emma"}
	for name, client := range map[string]*server.Client{"Jane": jane, "Pat": pat} {
		fmt.Printf("%s browses:\n", name)
		for _, page := range pages {
			d, err := client.CanVisit(page)
			if err != nil {
				log.Fatal(err)
			}
			verdict := "OK  "
			if d.Behavior == "block" {
				verdict = "STOP"
			}
			fmt.Printf("  %s %-14s policy=%-9s %s\n", verdict, page, d.PolicyName, blockReason(d))
		}
		fmt.Println()
	}

	// --- The site owner checks what is driving users away (Section 4.2).
	stats, err := owner.Analytics()
	if err != nil {
		log.Fatal(err)
	}
	fmt.Println("site-owner analytics (which policies conflict with user preferences):")
	for _, s := range stats {
		fmt.Printf("  policy %-9s blocked %d time(s) by rule %q\n", s.Policy, s.Blocks, s.Rule)
	}
}

func blockReason(d server.MatchResponse) string {
	if d.Behavior != "block" {
		return ""
	}
	return fmt.Sprintf("(blocked by rule %d)", d.RuleIndex+1)
}
