#!/bin/sh
# Coverage ratchet: fail if total statement coverage drops more than a
# point below the committed baseline (coverage_baseline.txt). When
# coverage rises, raise the baseline in the same PR so the floor follows.
set -eu

baseline=$(cat coverage_baseline.txt)
go test -count=1 -coverprofile=coverage.out ./... > /dev/null
total=$(go tool cover -func=coverage.out | awk '/^total:/ {gsub(/%/, "", $NF); print $NF}')
echo "total coverage: ${total}% (baseline ${baseline}%)"
ok=$(awk -v t="$total" -v b="$baseline" 'BEGIN { print (t >= b - 1.0) ? "yes" : "no" }')
if [ "$ok" != "yes" ]; then
    echo "coverage dropped more than 1pt below the ${baseline}% baseline" >&2
    exit 1
fi
