#!/bin/sh
# Scale-out bench gates: regenerate the throughput and decision-cache
# artifacts and fail the build when either regresses below its floor.
#
#   - throughput: speedupVs1 at 4 workers must reach MIN_SPEEDUP4.
#     p3pbench enforces this only on machines with >= 4 CPUs (parallel
#     speedup does not exist on fewer); the artifact records numCpu so a
#     skipped gate is auditable.
#   - decisioncache: the Zipf hit rate at the largest distinct-preference
#     universe (1000) must reach MIN_HITRATE.
#   - e2e: the protocol loop's compact fast path must decide at least
#     MIN_FASTPATH of the mixed-attitude population over real HTTP.
#   - replication: 2-node matches/sec must reach MIN_NODE_SPEEDUP2 x the
#     1-node rate (again only where >= 2 CPUs exist), and replication lag
#     p99 must stay under MAX_LAG_P99 milliseconds. The lag gate runs on
#     every machine: lag measures apply cost, not parallelism. The 50ms
#     ceiling prices the batched follower drain; pre-batching lag ran to
#     ~226ms p99.
#   - durability: recovering a 10k-record log must finish inside
#     MAX_RECOVERY_10K_MS (the batched-replay bound), and the median
#     fsync=interval mutation must cost at most MAX_DURABLE_P50_RATIO x
#     the in-memory median (the group-commit bound). Both run on every
#     machine: they measure replay and coalescing, not parallelism.
#   - prefindex: with 1000 resident preference rulesets (Zipf keys), the
#     post-swap warm hit rate must reach MIN_WARM_HIT and the pre-warmed
#     post-swap p99 must stay under MAX_WARM_P99_RATIO x the cold p99.
#
# Mirrors scripts/coverage_ratchet.sh: floors only move in the same PR
# that justifies moving them.
set -eu

MIN_SPEEDUP4=${MIN_SPEEDUP4:-2.5}
MIN_HITRATE=${MIN_HITRATE:-0.90}
MIN_FASTPATH=${MIN_FASTPATH:-0.70}
MIN_NODE_SPEEDUP2=${MIN_NODE_SPEEDUP2:-1.6}
MAX_LAG_P99=${MAX_LAG_P99:-50}
MAX_RECOVERY_10K_MS=${MAX_RECOVERY_10K_MS:-1000}
MAX_DURABLE_P50_RATIO=${MAX_DURABLE_P50_RATIO:-2.0}
MIN_WARM_HIT=${MIN_WARM_HIT:-0.80}
MAX_WARM_P99_RATIO=${MAX_WARM_P99_RATIO:-0.5}

# Surface the CPU budget once before any gate runs so self-skipped
# speedup gates are visible in the build log, not just in the JSON
# artifacts. The skips are collected into a single note instead of one
# repeated numCpu line per gate.
NUM_CPU=$(getconf _NPROCESSORS_ONLN 2>/dev/null || nproc 2>/dev/null || echo unknown)
echo "== bench gates on numCpu=${NUM_CPU} =="
SELF_SKIPS=""
# note_self_skip <min-cpus> <gate description (artifact)>
note_self_skip() {
	if [ "${NUM_CPU}" != "unknown" ] && [ "${NUM_CPU}" -lt "$1" ]; then
		SELF_SKIPS="${SELF_SKIPS}${SELF_SKIPS:+; }$2"
	fi
}
note_self_skip 4 "the 4-worker speedup gate (BENCH_throughput.json)"
note_self_skip 2 "the 2-node replication speedup gate (BENCH_replication.json)"
if [ -n "${SELF_SKIPS}" ]; then
	echo "note: will self-skip on this machine: ${SELF_SKIPS}"
fi

echo "== throughput gate (floor ${MIN_SPEEDUP4}x at 4 workers) =="
go run ./cmd/p3pbench -table=throughput -min-speedup4="$MIN_SPEEDUP4"

echo "== decision-cache gate (floor ${MIN_HITRATE} hit rate at 1000 distinct) =="
go run ./cmd/p3pbench -table=decisioncache -min-hitrate="$MIN_HITRATE"

echo "== e2e fast-path gate (floor ${MIN_FASTPATH} hit rate) =="
go run ./cmd/p3pbench -table=e2e -min-fastpath="$MIN_FASTPATH"

echo "== replication gate (floor ${MIN_NODE_SPEEDUP2}x at 2 nodes, lag p99 ceiling ${MAX_LAG_P99}ms) =="
go run ./cmd/p3pbench -table=replication -min-node-speedup2="$MIN_NODE_SPEEDUP2" -max-lag-p99="$MAX_LAG_P99"

echo "== durability gate (10k recovery ceiling ${MAX_RECOVERY_10K_MS}ms, durable p50 ceiling ${MAX_DURABLE_P50_RATIO}x in-memory) =="
go run ./cmd/p3pbench -table=durability -max-recovery-10k-ms="$MAX_RECOVERY_10K_MS" -max-durable-p50-ratio="$MAX_DURABLE_P50_RATIO"

echo "== prefindex gate (floor ${MIN_WARM_HIT} warm hits, warm/cold p99 ceiling ${MAX_WARM_P99_RATIO}x, at 1000 resident) =="
go run ./cmd/p3pbench -table=prefindex -min-warm-hit="$MIN_WARM_HIT" -max-warm-p99-ratio="$MAX_WARM_P99_RATIO"
