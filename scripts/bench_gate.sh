#!/bin/sh
# Scale-out bench gates: regenerate the throughput and decision-cache
# artifacts and fail the build when either regresses below its floor.
#
#   - throughput: speedupVs1 at 4 workers must reach MIN_SPEEDUP4.
#     p3pbench enforces this only on machines with >= 4 CPUs (parallel
#     speedup does not exist on fewer); the artifact records numCpu so a
#     skipped gate is auditable.
#   - decisioncache: the Zipf hit rate at the largest distinct-preference
#     universe (1000) must reach MIN_HITRATE.
#   - e2e: the protocol loop's compact fast path must decide at least
#     MIN_FASTPATH of the mixed-attitude population over real HTTP.
#   - replication: 2-node matches/sec must reach MIN_NODE_SPEEDUP2 x the
#     1-node rate (again only where >= 2 CPUs exist), and replication lag
#     p99 must stay under MAX_LAG_P99 milliseconds. The lag gate runs on
#     every machine: lag measures apply cost, not parallelism.
#
# Mirrors scripts/coverage_ratchet.sh: floors only move in the same PR
# that justifies moving them.
set -eu

MIN_SPEEDUP4=${MIN_SPEEDUP4:-2.5}
MIN_HITRATE=${MIN_HITRATE:-0.90}
MIN_FASTPATH=${MIN_FASTPATH:-0.70}
MIN_NODE_SPEEDUP2=${MIN_NODE_SPEEDUP2:-1.6}
MAX_LAG_P99=${MAX_LAG_P99:-2000}

# Surface the CPU budget before any gate runs so a self-skipped speedup
# gate is visible in the build log, not just in the JSON artifact.
NUM_CPU=$(getconf _NPROCESSORS_ONLN 2>/dev/null || nproc 2>/dev/null || echo unknown)
echo "== bench gates on numCpu=${NUM_CPU} =="
if [ "${NUM_CPU}" != "unknown" ] && [ "${NUM_CPU}" -lt 4 ]; then
	echo "note: numCpu=${NUM_CPU} < 4 -- the 4-worker speedup gate will self-skip (recorded in BENCH_throughput.json)"
fi
if [ "${NUM_CPU}" != "unknown" ] && [ "${NUM_CPU}" -lt 2 ]; then
	echo "note: numCpu=${NUM_CPU} < 2 -- the 2-node replication speedup gate will self-skip (recorded in BENCH_replication.json)"
fi

echo "== throughput gate (floor ${MIN_SPEEDUP4}x at 4 workers) =="
go run ./cmd/p3pbench -table=throughput -min-speedup4="$MIN_SPEEDUP4"

echo "== decision-cache gate (floor ${MIN_HITRATE} hit rate at 1000 distinct) =="
go run ./cmd/p3pbench -table=decisioncache -min-hitrate="$MIN_HITRATE"

echo "== e2e fast-path gate (floor ${MIN_FASTPATH} hit rate) =="
go run ./cmd/p3pbench -table=e2e -min-fastpath="$MIN_FASTPATH"

echo "== replication gate (floor ${MIN_NODE_SPEEDUP2}x at 2 nodes, lag p99 ceiling ${MAX_LAG_P99}ms) =="
go run ./cmd/p3pbench -table=replication -min-node-speedup2="$MIN_NODE_SPEEDUP2" -max-lag-p99="$MAX_LAG_P99"
