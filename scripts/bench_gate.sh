#!/bin/sh
# Scale-out bench gates: regenerate the throughput and decision-cache
# artifacts and fail the build when either regresses below its floor.
#
#   - throughput: speedupVs1 at 4 workers must reach MIN_SPEEDUP4.
#     p3pbench enforces this only on machines with >= 4 CPUs (parallel
#     speedup does not exist on fewer); the artifact records numCpu so a
#     skipped gate is auditable.
#   - decisioncache: the Zipf hit rate at the largest distinct-preference
#     universe (1000) must reach MIN_HITRATE.
#   - e2e: the protocol loop's compact fast path must decide at least
#     MIN_FASTPATH of the mixed-attitude population over real HTTP.
#
# Mirrors scripts/coverage_ratchet.sh: floors only move in the same PR
# that justifies moving them.
set -eu

MIN_SPEEDUP4=${MIN_SPEEDUP4:-2.5}
MIN_HITRATE=${MIN_HITRATE:-0.90}
MIN_FASTPATH=${MIN_FASTPATH:-0.70}

echo "== throughput gate (floor ${MIN_SPEEDUP4}x at 4 workers) =="
go run ./cmd/p3pbench -table=throughput -min-speedup4="$MIN_SPEEDUP4"

echo "== decision-cache gate (floor ${MIN_HITRATE} hit rate at 1000 distinct) =="
go run ./cmd/p3pbench -table=decisioncache -min-hitrate="$MIN_HITRATE"

echo "== e2e fast-path gate (floor ${MIN_FASTPATH} hit rate) =="
go run ./cmd/p3pbench -table=e2e -min-fastpath="$MIN_FASTPATH"
