package registry

import (
	"errors"
	"os"
	"path/filepath"
	"sync"
	"testing"

	"p3pdb/internal/appel"
	"p3pdb/internal/core"
	"p3pdb/internal/p3p"
	"p3pdb/internal/workload"
)

// writeSiteDir materializes one tenant directory: the volga paper policy
// plus a reference file covering the whole URI space.
func writeSiteDir(t *testing.T, root, name string) {
	t.Helper()
	dir := filepath.Join(root, name)
	if err := os.MkdirAll(dir, 0o755); err != nil {
		t.Fatal(err)
	}
	writeFile(t, filepath.Join(dir, "policies.xml"), p3p.VolgaPolicyXML)
	writeFile(t, filepath.Join(dir, "reference.xml"),
		`<META xmlns="http://www.w3.org/2002/01/P3Pv1">
		  <POLICY-REFERENCES>
		    <POLICY-REF about="/P3P/Policies.xml#volga"><INCLUDE>/*</INCLUDE></POLICY-REF>
		  </POLICY-REFERENCES></META>`)
}

func writeFile(t *testing.T, path, data string) {
	t.Helper()
	if err := os.WriteFile(path, []byte(data), 0o644); err != nil {
		t.Fatal(err)
	}
}

func newDirRegistry(t *testing.T, root string, maxSites int) *Registry {
	t.Helper()
	r, err := New(Options{Dir: root, MaxSites: maxSites})
	if err != nil {
		t.Fatal(err)
	}
	return r
}

func TestLazyLoadAndMatch(t *testing.T) {
	root := t.TempDir()
	writeSiteDir(t, root, "example.com")
	r := newDirRegistry(t, root, 0)
	if !r.Ready() {
		t.Fatal("registry not ready")
	}

	site, err := r.Get("example.com")
	if err != nil {
		t.Fatal(err)
	}
	if names := site.PolicyNames(); len(names) != 1 || names[0] != "volga" {
		t.Fatalf("policies = %v", names)
	}
	d, err := site.MatchURI(appel.JanePreferenceXML, "/books/1", core.EngineSQL)
	if err != nil || d.Behavior != "request" {
		t.Fatalf("match through lazily loaded site: %+v %v", d, err)
	}

	again, err := r.Get("example.com")
	if err != nil {
		t.Fatal(err)
	}
	if again != site {
		t.Error("second Get returned a different site instance")
	}
	if r.Len() != 1 {
		t.Errorf("Len = %d, want 1", r.Len())
	}
}

func TestGetNormalizesHostNames(t *testing.T) {
	root := t.TempDir()
	writeSiteDir(t, root, "example.com")
	r := newDirRegistry(t, root, 0)

	site, err := r.Get("example.com")
	if err != nil {
		t.Fatal(err)
	}
	// A raw Host header — upper case, with port — reaches the same tenant.
	viaHost, err := r.Get("EXAMPLE.COM:8080")
	if err != nil {
		t.Fatal(err)
	}
	if viaHost != site {
		t.Error("host-header form resolved to a different site")
	}
}

func TestUnknownSite(t *testing.T) {
	r := newDirRegistry(t, t.TempDir(), 0)
	if _, err := r.Get("nobody.example"); !errors.Is(err, ErrUnknownSite) {
		t.Errorf("err = %v, want ErrUnknownSite", err)
	}
	// No backing dir at all: every name is unknown rather than an IO error.
	bare, err := New(Options{})
	if err != nil {
		t.Fatal(err)
	}
	if _, err := bare.Get("anything"); !errors.Is(err, ErrUnknownSite) {
		t.Errorf("bare registry err = %v, want ErrUnknownSite", err)
	}
}

func TestNameValidationBlocksTraversal(t *testing.T) {
	root := t.TempDir()
	// A directory outside the layout that a traversal would reach.
	outside := filepath.Join(root, "outside")
	sites := filepath.Join(root, "sites")
	if err := os.MkdirAll(outside, 0o755); err != nil {
		t.Fatal(err)
	}
	writeSiteDir(t, root, "sites/good.example")
	r := newDirRegistry(t, sites, 0)

	for _, name := range []string{"", ".", "..", "../outside", "a/b", "a..b", ".hidden", "bad name", "semi;colon"} {
		if _, err := r.Get(name); err == nil {
			t.Errorf("Get(%q) should be rejected", name)
		}
		if ValidName(name) {
			t.Errorf("ValidName(%q) = true", name)
		}
	}
	if !ValidName("good.example") || !ValidName("a-b_c.d2") {
		t.Error("legitimate names rejected")
	}
	if _, err := r.Get("good.example"); err != nil {
		t.Errorf("valid tenant: %v", err)
	}
}

func TestLRUEviction(t *testing.T) {
	root := t.TempDir()
	writeSiteDir(t, root, "a.example")
	writeSiteDir(t, root, "b.example")
	r := newDirRegistry(t, root, 1)

	siteA, err := r.Get("a.example")
	if err != nil {
		t.Fatal(err)
	}
	if _, err := r.Get("b.example"); err != nil {
		t.Fatal(err)
	}
	if _, ok := r.Lookup("a.example"); ok {
		t.Error("a.example should have been evicted (MaxSites=1)")
	}
	if _, ok := r.Lookup("b.example"); !ok {
		t.Error("b.example should be resident")
	}
	if r.Len() != 1 {
		t.Errorf("Len = %d, want 1", r.Len())
	}

	// An evicted tenant is not gone: the next Get reloads it from disk
	// as a fresh site.
	reloaded, err := r.Get("a.example")
	if err != nil {
		t.Fatal(err)
	}
	if reloaded == siteA {
		t.Error("reload after eviction returned the evicted instance")
	}
	if names := reloaded.PolicyNames(); len(names) != 1 || names[0] != "volga" {
		t.Errorf("reloaded policies = %v", names)
	}
}

func TestReloadSwapsPoliciesInPlace(t *testing.T) {
	root := t.TempDir()
	writeSiteDir(t, root, "example.com")
	r := newDirRegistry(t, root, 0)
	site, err := r.Get("example.com")
	if err != nil {
		t.Fatal(err)
	}

	// Rewrite the tenant directory with a different policy set.
	ds := workload.Generate(7)
	pol := ds.Policies[0]
	writeFile(t, filepath.Join(root, "example.com", "policies.xml"), pol.String())
	if err := os.Remove(filepath.Join(root, "example.com", "reference.xml")); err != nil {
		t.Fatal(err)
	}
	if err := r.Reload("example.com"); err != nil {
		t.Fatal(err)
	}

	// Same site instance, new policy set: in-flight handles stay valid.
	after, ok := r.Lookup("example.com")
	if !ok || after != site {
		t.Fatal("Reload must keep the same *Site")
	}
	if names := site.PolicyNames(); len(names) != 1 || names[0] != pol.Name {
		t.Errorf("policies after reload = %v, want [%s]", names, pol.Name)
	}
}

func TestReloadFailureKeepsServing(t *testing.T) {
	root := t.TempDir()
	writeSiteDir(t, root, "example.com")
	r := newDirRegistry(t, root, 0)
	site, err := r.Get("example.com")
	if err != nil {
		t.Fatal(err)
	}
	writeFile(t, filepath.Join(root, "example.com", "policies.xml"), "<POLICY not xml")
	if err := r.Reload("example.com"); err == nil {
		t.Fatal("reload of a broken directory must fail")
	}
	// The tenant still serves its previous snapshot.
	if names := site.PolicyNames(); len(names) != 1 || names[0] != "volga" {
		t.Errorf("policies after failed reload = %v", names)
	}
	if _, err := site.MatchPolicy(appel.JanePreferenceXML, "volga", core.EngineSQL); err != nil {
		t.Errorf("match after failed reload: %v", err)
	}
}

func TestReloadAllDropsVanishedTenants(t *testing.T) {
	root := t.TempDir()
	writeSiteDir(t, root, "stay.example")
	writeSiteDir(t, root, "gone.example")
	r := newDirRegistry(t, root, 0)
	if _, err := r.Get("stay.example"); err != nil {
		t.Fatal(err)
	}
	if _, err := r.Get("gone.example"); err != nil {
		t.Fatal(err)
	}
	if err := os.RemoveAll(filepath.Join(root, "gone.example")); err != nil {
		t.Fatal(err)
	}
	if err := r.ReloadAll(); err != nil {
		t.Fatal(err)
	}
	if _, ok := r.Lookup("gone.example"); ok {
		t.Error("vanished tenant should be dropped by ReloadAll")
	}
	if _, ok := r.Lookup("stay.example"); !ok {
		t.Error("surviving tenant should stay resident")
	}
}

func TestCreateAndRemoveDynamicTenant(t *testing.T) {
	r, err := New(Options{})
	if err != nil {
		t.Fatal(err)
	}
	site, err := r.Create("dyn.example")
	if err != nil {
		t.Fatal(err)
	}
	if _, err := site.InstallPolicyXML(p3p.VolgaPolicyXML); err != nil {
		t.Fatal(err)
	}
	got, err := r.Get("dyn.example")
	if err != nil || got != site {
		t.Fatalf("Get after Create: %v", err)
	}
	if _, err := r.Create("dyn.example"); err == nil {
		t.Error("duplicate Create should fail")
	}
	if err := r.Remove("dyn.example"); err != nil {
		t.Fatal(err)
	}
	if _, err := r.Get("dyn.example"); !errors.Is(err, ErrUnknownSite) {
		t.Errorf("after Remove: %v, want ErrUnknownSite", err)
	}
	if err := r.Remove("dyn.example"); !errors.Is(err, ErrUnknownSite) {
		t.Errorf("double Remove: %v, want ErrUnknownSite", err)
	}
}

func TestNamesUnionsDiskAndResident(t *testing.T) {
	root := t.TempDir()
	writeSiteDir(t, root, "disk.example")
	r := newDirRegistry(t, root, 0)
	if _, err := r.Create("dyn.example"); err != nil {
		t.Fatal(err)
	}
	names := r.Names()
	want := []string{"disk.example", "dyn.example"}
	if len(names) != 2 || names[0] != want[0] || names[1] != want[1] {
		t.Errorf("Names = %v, want %v", names, want)
	}
}

func TestConcurrentGetLoadsOnce(t *testing.T) {
	root := t.TempDir()
	writeSiteDir(t, root, "example.com")
	r := newDirRegistry(t, root, 0)

	const n = 16
	sites := make([]*core.Site, n)
	var wg sync.WaitGroup
	for i := 0; i < n; i++ {
		wg.Add(1)
		go func(i int) {
			defer wg.Done()
			s, err := r.Get("example.com")
			if err != nil {
				t.Error(err)
				return
			}
			sites[i] = s
		}(i)
	}
	wg.Wait()
	for i := 1; i < n; i++ {
		if sites[i] != sites[0] {
			t.Fatal("concurrent Gets observed different site instances")
		}
	}
	if r.Len() != 1 {
		t.Errorf("Len = %d, want 1", r.Len())
	}
}
