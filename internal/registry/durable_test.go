package registry

import (
	"errors"
	"reflect"
	"testing"

	"p3pdb/internal/core"
	"p3pdb/internal/durable"
	"p3pdb/internal/p3p"
)

// newDurableRegistry builds a registry over a sites dir and a durable
// store, returning both so tests can simulate restarts by constructing a
// second registry over the same store.
func newDurableRegistry(t *testing.T, root, stateDir string, maxSites int) (*Registry, *durable.Store) {
	t.Helper()
	store, err := durable.Open(stateDir, durable.Options{Fsync: durable.FsyncNever, CheckpointEvery: -1})
	if err != nil {
		t.Fatal(err)
	}
	r, err := New(Options{Dir: root, MaxSites: maxSites, Durable: store})
	if err != nil {
		t.Fatal(err)
	}
	t.Cleanup(func() { r.Close() })
	return r, store
}

// TestRestartDoesNotResurrectDeletedPolicies is the regression test for
// the pre-durability bug: admin mutations only touched the in-memory
// snapshot, so a restart (or Reload) silently resurrected deleted
// policies from the sites directory. With a durable store the log
// outranks the directory.
func TestRestartDoesNotResurrectDeletedPolicies(t *testing.T) {
	root, stateDir := t.TempDir(), t.TempDir()
	writeSiteDir(t, root, "example.com")

	r1, store := newDurableRegistry(t, root, stateDir, 0)
	site, journal, err := r1.GetWithJournal("example.com")
	if err != nil {
		t.Fatal(err)
	}
	if journal == nil {
		t.Fatal("durable registry loaded a tenant without a journal")
	}
	// The admin deletion, routed durably.
	if err := journal.RemovePolicy(site, "volga"); err != nil {
		t.Fatal(err)
	}
	if err := r1.Close(); err != nil {
		t.Fatal(err)
	}

	// Restart: a fresh registry over the same durable store and the
	// unchanged sites directory, which still holds policies.xml.
	r2, err := New(Options{Dir: root, Durable: store})
	if err != nil {
		t.Fatal(err)
	}
	defer r2.Close()
	site2, err := r2.Get("example.com")
	if err != nil {
		t.Fatal(err)
	}
	if names := site2.PolicyNames(); len(names) != 0 {
		t.Fatalf("deleted policy resurrected from sites dir after restart: %v", names)
	}
}

// TestDynamicTenantSurvivesRestart: a tenant created through the admin
// API (no backing directory) exists again after a restart.
func TestDynamicTenantSurvivesRestart(t *testing.T) {
	root, stateDir := t.TempDir(), t.TempDir()
	r1, store := newDurableRegistry(t, root, stateDir, 0)
	site, err := r1.Create("dyn.example")
	if err != nil {
		t.Fatal(err)
	}
	doc := `<POLICY name="p"><STATEMENT><NON-IDENTIFIABLE/></STATEMENT></POLICY>`
	if _, err := r1.Journal("dyn.example").InstallPolicyXML(site, doc); err != nil {
		t.Fatal(err)
	}
	if err := r1.Close(); err != nil {
		t.Fatal(err)
	}

	r2, err := New(Options{Dir: root, Durable: store})
	if err != nil {
		t.Fatal(err)
	}
	defer r2.Close()
	names := r2.Names()
	if len(names) != 1 || names[0] != "dyn.example" {
		t.Fatalf("Names after restart = %v", names)
	}
	site2, err := r2.Get("dyn.example")
	if err != nil {
		t.Fatal(err)
	}
	if pn := site2.PolicyNames(); len(pn) != 1 || pn[0] != "p" {
		t.Fatalf("recovered dynamic tenant policies = %v", pn)
	}
}

// TestRemoveErasesDurableState: removing a dynamic tenant is durable —
// it does not come back after a restart.
func TestRemoveErasesDurableState(t *testing.T) {
	root, stateDir := t.TempDir(), t.TempDir()
	r1, store := newDurableRegistry(t, root, stateDir, 0)
	if _, err := r1.Create("dyn.example"); err != nil {
		t.Fatal(err)
	}
	if err := r1.Remove("dyn.example"); err != nil {
		t.Fatal(err)
	}

	r2, err := New(Options{Dir: root, Durable: store})
	if err != nil {
		t.Fatal(err)
	}
	defer r2.Close()
	if _, err := r2.Get("dyn.example"); !errors.Is(err, ErrUnknownSite) {
		t.Fatalf("removed tenant still loads: %v", err)
	}
	if n := len(r2.Names()); n != 0 {
		t.Fatalf("removed tenant still listed: %v", r2.Names())
	}
}

// TestEvictionCheckpoints: LRU eviction checkpoints the tenant, so the
// next load replays a snapshot, not a log tail, and loses nothing.
func TestEvictionCheckpoints(t *testing.T) {
	root, stateDir := t.TempDir(), t.TempDir()
	writeSiteDir(t, root, "a.example")
	writeSiteDir(t, root, "b.example")
	r, _ := newDurableRegistry(t, root, stateDir, 1)

	site, journal, err := r.GetWithJournal("a.example")
	if err != nil {
		t.Fatal(err)
	}
	if err := journal.RemovePolicy(site, "volga"); err != nil {
		t.Fatal(err)
	}
	// Loading b evicts a (MaxSites=1), checkpointing and closing its
	// journal on the way out.
	if _, err := r.Get("b.example"); err != nil {
		t.Fatal(err)
	}
	if r.Len() != 1 {
		t.Fatalf("Len after eviction = %d", r.Len())
	}
	// A durable mutation through the stale journal is refused, not lost.
	if err := journal.RemovePolicy(site, "ghost"); !errors.Is(err, durable.ErrClosed) {
		t.Fatalf("mutation on evicted journal: %v", err)
	}

	// Reloading a recovers from the eviction checkpoint: no volga, and
	// no log tail to replay.
	site2, journal2, err := r.GetWithJournal("a.example")
	if err != nil {
		t.Fatal(err)
	}
	if names := site2.PolicyNames(); len(names) != 0 {
		t.Fatalf("eviction lost the deletion: %v", names)
	}
	if st := journal2.Status(); st.RecordsSinceCheckpoint != 0 || st.LogBytes != 0 {
		t.Fatalf("eviction checkpoint did not truncate the log: %+v", st)
	}
}

// TestReloadLogsDirAsReplace: an explicit dir reload is the one
// operation where the directory outranks the log — and it lands in the
// log, so the re-read state survives the next restart too.
func TestReloadLogsDirAsReplace(t *testing.T) {
	root, stateDir := t.TempDir(), t.TempDir()
	writeSiteDir(t, root, "example.com")
	r1, store := newDurableRegistry(t, root, stateDir, 0)
	site, journal, err := r1.GetWithJournal("example.com")
	if err != nil {
		t.Fatal(err)
	}
	if err := journal.RemovePolicy(site, "volga"); err != nil {
		t.Fatal(err)
	}
	if err := r1.Reload("example.com"); err != nil {
		t.Fatal(err)
	}
	if names := site.PolicyNames(); len(names) != 1 || names[0] != "volga" {
		t.Fatalf("reload did not re-read the directory: %v", names)
	}
	if err := r1.Close(); err != nil {
		t.Fatal(err)
	}

	r2, err := New(Options{Dir: root, Durable: store})
	if err != nil {
		t.Fatal(err)
	}
	defer r2.Close()
	site2, err := r2.Get("example.com")
	if err != nil {
		t.Fatal(err)
	}
	if names := site2.PolicyNames(); len(names) != 1 || names[0] != "volga" {
		t.Fatalf("logged replace lost across restart: %v", names)
	}
}

// TestReloadAllKeepsDurableDynamicTenants: the SIGHUP sweep must not
// drop (and durably erase) log-backed tenants that have no directory.
func TestReloadAllKeepsDurableDynamicTenants(t *testing.T) {
	root, stateDir := t.TempDir(), t.TempDir()
	r, _ := newDurableRegistry(t, root, stateDir, 0)
	if _, err := r.Create("dyn.example"); err != nil {
		t.Fatal(err)
	}
	if err := r.ReloadAll(); err != nil {
		t.Fatal(err)
	}
	if _, err := r.Get("dyn.example"); err != nil {
		t.Fatalf("ReloadAll dropped a durable dynamic tenant: %v", err)
	}
}

// TestCheckpointAllTruncatesLogs covers the SIGHUP checkpoint sweep.
func TestCheckpointAllTruncatesLogs(t *testing.T) {
	root, stateDir := t.TempDir(), t.TempDir()
	writeSiteDir(t, root, "example.com")
	r, _ := newDurableRegistry(t, root, stateDir, 0)
	site, journal, err := r.GetWithJournal("example.com")
	if err != nil {
		t.Fatal(err)
	}
	if err := journal.RemovePolicy(site, "volga"); err != nil {
		t.Fatal(err)
	}
	if journal.Status().LogBytes == 0 {
		t.Fatal("mutation did not reach the log")
	}
	if err := r.CheckpointAll(); err != nil {
		t.Fatal(err)
	}
	if st := journal.Status(); st.LogBytes != 0 || st.RecordsSinceCheckpoint != 0 {
		t.Fatalf("CheckpointAll left the log unswept: %+v", st)
	}
}

// TestParallelRestartMatchesSerial restarts a fleet of durable tenants
// twice over the same store — once with a serial recovery pool, once
// with a wide one (plus LoadAll's eager warm-up) — and asserts every
// tenant recovers byte-identical state: parallelism must only overlap
// distinct tenants' work, never change any tenant's outcome.
func TestParallelRestartMatchesSerial(t *testing.T) {
	root, stateDir := t.TempDir(), t.TempDir()
	tenants := []string{"a.example", "b.example", "c.example", "d.example", "e.example"}
	for _, name := range tenants {
		writeSiteDir(t, root, name)
	}
	r1, store := newDurableRegistry(t, root, stateDir, 0)
	// Give each tenant a distinct durable history past its bootstrap
	// checkpoint, so recovery replays a real log tail.
	for i, name := range tenants {
		site, journal, err := r1.GetWithJournal(name)
		if err != nil {
			t.Fatal(err)
		}
		if err := journal.RemovePolicy(site, "volga"); err != nil {
			t.Fatal(err)
		}
		if i%2 == 0 {
			if _, err := journal.InstallPolicyXML(site, p3p.VolgaPolicyXML); err != nil {
				t.Fatal(err)
			}
		}
	}
	if err := r1.Close(); err != nil {
		t.Fatal(err)
	}

	recover := func(parallelism int) map[string]core.StateExport {
		r, err := New(Options{Dir: root, Durable: store, RecoveryParallelism: parallelism})
		if err != nil {
			t.Fatal(err)
		}
		defer r.Close()
		if err := r.LoadAll(); err != nil {
			t.Fatal(err)
		}
		if got := r.Len(); got != len(tenants) {
			t.Fatalf("LoadAll(%d workers) left %d of %d tenants resident", parallelism, got, len(tenants))
		}
		out := map[string]core.StateExport{}
		for _, name := range tenants {
			site, ok := r.Lookup(name)
			if !ok {
				t.Fatalf("tenant %s not resident after LoadAll", name)
			}
			out[name] = site.ExportState()
		}
		return out
	}

	serial := recover(1)
	parallel := recover(8)
	for _, name := range tenants {
		s, p := serial[name], parallel[name]
		if !reflect.DeepEqual(s.Order, p.Order) {
			t.Fatalf("tenant %s: order diverged: serial %v, parallel %v", name, s.Order, p.Order)
		}
		if !reflect.DeepEqual(s.PolicyXML, p.PolicyXML) {
			t.Fatalf("tenant %s: policy XML diverged", name)
		}
		if s.ReferenceXML != p.ReferenceXML {
			t.Fatalf("tenant %s: reference file diverged", name)
		}
	}
}
