// Package registry hosts many tenant Sites in one process: the
// multi-tenant face of the server-centric architecture. A hosting
// provider serves policies for thousands of sites whose policy sets
// churn while matching traffic never stops; the registry gives each
// tenant name its own core.Site (whose snapshot-swapped interior makes
// per-tenant hot reload non-blocking), loads tenants lazily from a
// per-site directory layout, and evicts cold tenants under an LRU cap.
//
// The on-disk layout under Options.Dir is one directory per tenant:
//
//	sites/
//	  example.com/
//	    policies.xml      any *.xml: a POLICY or POLICIES document
//	    reference.xml     optional: the META reference file
//	  other.example/
//	    ...
//
// Every .xml file except reference.xml is installed as a policy
// document; reference.xml, when present, becomes the tenant's reference
// file. Loading and reloading go through Site.ReplacePolicies, so a
// reload is one atomic snapshot swap: requests in flight finish against
// the old policy set, and a broken directory leaves the tenant serving
// its previous state.
package registry

import (
	"errors"
	"fmt"
	"os"
	"path/filepath"
	"sort"
	"strings"
	"sync"
	"sync/atomic"

	"p3pdb/internal/core"
	"p3pdb/internal/obs"
	"p3pdb/internal/p3p"
	"p3pdb/internal/reffile"
)

// ErrUnknownSite reports a tenant name with no loaded site and no
// directory to load it from. Servers map it to a JSON 404.
var ErrUnknownSite = errors.New("registry: unknown site")

// Registry-level observability: tenant loads from disk, LRU evictions,
// and the resident-site gauge.
var (
	obsLoads     = obs.GetCounter("registry.loads")
	obsEvictions = obs.GetCounter("registry.evictions")
	obsSites     = obs.GetGauge("registry.sites")
)

// Options configure a Registry.
type Options struct {
	// Dir is the root of the per-site directory layout; empty disables
	// lazy loading (tenants exist only via Create).
	Dir string
	// Site passes options (budgets, cache sizes, DB ablations) to every
	// site the registry constructs.
	Site core.Options
	// MaxSites bounds resident tenants; past it the least-recently-used
	// tenant is evicted. Zero means unbounded. Eviction only drops the
	// registry's reference: requests already holding the site finish
	// normally, and the next Get reloads it from disk.
	MaxSites int
}

// entry is one resident tenant. Entries are stored fully loaded, so the
// lookup fast path never observes a half-constructed site.
type entry struct {
	site     *core.Site
	lastUsed atomic.Int64
	reqs     *obs.Counter // per-tenant request label
}

// flight is one in-progress tenant load; concurrent Gets for the same
// name wait on it instead of loading twice.
type flight struct {
	done chan struct{}
	site *core.Site
	err  error
}

// Registry is a concurrent named-tenant map. Lookups of resident
// tenants touch only a sync.Map and atomics; the mutex guards loads,
// creates, removes, and eviction.
type Registry struct {
	opts Options

	entries sync.Map // name -> *entry
	clock   atomic.Int64
	ready   atomic.Bool

	mu       sync.Mutex
	count    int
	inflight map[string]*flight
}

// New returns a registry. With Options.Dir set, the directory must
// exist; tenants inside it load lazily on first Get.
func New(opts Options) (*Registry, error) {
	if opts.Dir != "" {
		fi, err := os.Stat(opts.Dir)
		if err != nil {
			return nil, fmt.Errorf("registry: sites dir: %w", err)
		}
		if !fi.IsDir() {
			return nil, fmt.Errorf("registry: sites dir %s is not a directory", opts.Dir)
		}
	}
	r := &Registry{opts: opts, inflight: map[string]*flight{}}
	r.ready.Store(true)
	return r, nil
}

// Ready reports whether the registry finished its initial setup; the
// server's /readyz endpoint exposes it.
func (r *Registry) Ready() bool { return r.ready.Load() }

// ValidName reports whether a tenant name is acceptable: host-shaped
// (letters, digits, dot, dash, underscore), with no path traversal.
func ValidName(name string) bool {
	if name == "" || len(name) > 128 || name[0] == '.' {
		return false
	}
	for i := 0; i < len(name); i++ {
		c := name[i]
		switch {
		case c >= 'a' && c <= 'z', c >= 'A' && c <= 'Z', c >= '0' && c <= '9':
		case c == '.', c == '-', c == '_':
		default:
			return false
		}
	}
	return !strings.Contains(name, "..")
}

// Normalize canonicalizes a tenant name (lower-cased, port stripped, so
// a Host header can be used directly) and validates it.
func Normalize(name string) (string, error) {
	name = strings.ToLower(name)
	if i := strings.LastIndexByte(name, ':'); i >= 0 {
		name = name[:i]
	}
	if !ValidName(name) {
		return "", fmt.Errorf("registry: invalid site name %q", name)
	}
	return name, nil
}

// Get returns the named tenant's site, loading it from the directory
// layout on first use. Resident lookups are the hot path: one sync.Map
// read plus two atomics.
func (r *Registry) Get(name string) (*core.Site, error) {
	name, err := Normalize(name)
	if err != nil {
		return nil, err
	}
	if v, ok := r.entries.Load(name); ok {
		e := v.(*entry)
		e.lastUsed.Store(r.clock.Add(1))
		e.reqs.Inc()
		return e.site, nil
	}
	return r.loadSlow(name)
}

// Lookup returns the named tenant's site only if it is already
// resident; it never loads and never counts as a use.
func (r *Registry) Lookup(name string) (*core.Site, bool) {
	name, err := Normalize(name)
	if err != nil {
		return nil, false
	}
	v, ok := r.entries.Load(name)
	if !ok {
		return nil, false
	}
	return v.(*entry).site, true
}

// loadSlow loads a tenant from disk, collapsing concurrent loads of the
// same name into one.
func (r *Registry) loadSlow(name string) (*core.Site, error) {
	r.mu.Lock()
	if v, ok := r.entries.Load(name); ok { // raced with another load
		r.mu.Unlock()
		e := v.(*entry)
		e.lastUsed.Store(r.clock.Add(1))
		e.reqs.Inc()
		return e.site, nil
	}
	if fl, ok := r.inflight[name]; ok {
		r.mu.Unlock()
		<-fl.done
		return fl.site, fl.err
	}
	fl := &flight{done: make(chan struct{})}
	r.inflight[name] = fl
	r.mu.Unlock()

	site, err := r.loadFromDir(name)

	r.mu.Lock()
	delete(r.inflight, name)
	if err == nil {
		r.storeLocked(name, site)
		obsLoads.Inc()
	}
	r.mu.Unlock()

	fl.site, fl.err = site, err
	close(fl.done)
	return site, err
}

// storeLocked publishes a loaded tenant and evicts past the LRU cap.
// Caller holds r.mu.
func (r *Registry) storeLocked(name string, site *core.Site) {
	e := &entry{
		site: site,
		reqs: obs.GetCounter("registry.tenant." + name + ".requests"),
	}
	e.lastUsed.Store(r.clock.Add(1))
	if _, loaded := r.entries.Swap(name, e); !loaded {
		r.count++
		obsSites.Add(1)
	}
	for r.opts.MaxSites > 0 && r.count > r.opts.MaxSites {
		coldName, ok := r.coldest(name)
		if !ok {
			break
		}
		r.entries.Delete(coldName)
		r.count--
		obsSites.Add(-1)
		obsEvictions.Inc()
	}
}

// coldest finds the least-recently-used resident tenant other than keep.
func (r *Registry) coldest(keep string) (string, bool) {
	var (
		name  string
		min   int64
		found bool
	)
	r.entries.Range(func(k, v any) bool {
		if k.(string) == keep {
			return true
		}
		used := v.(*entry).lastUsed.Load()
		if !found || used < min {
			name, min, found = k.(string), used, true
		}
		return true
	})
	return name, found
}

// loadFromDir builds a fresh site from the tenant's directory.
func (r *Registry) loadFromDir(name string) (*core.Site, error) {
	if r.opts.Dir == "" {
		return nil, fmt.Errorf("%w: %s", ErrUnknownSite, name)
	}
	dir := filepath.Join(r.opts.Dir, name)
	fi, err := os.Stat(dir)
	if err != nil || !fi.IsDir() {
		return nil, fmt.Errorf("%w: %s", ErrUnknownSite, name)
	}
	site, err := core.NewSiteWithOptions(r.opts.Site)
	if err != nil {
		return nil, err
	}
	if err := loadInto(site, dir); err != nil {
		return nil, fmt.Errorf("registry: site %s: %w", name, err)
	}
	return site, nil
}

// loadInto reads a tenant directory and replaces the site's policy set
// with its contents in one snapshot swap.
func loadInto(site *core.Site, dir string) error {
	names, err := filepath.Glob(filepath.Join(dir, "*.xml"))
	if err != nil {
		return err
	}
	sort.Strings(names)
	var pols []*p3p.Policy
	var rf *reffile.RefFile
	for _, path := range names {
		data, err := os.ReadFile(path)
		if err != nil {
			return err
		}
		if filepath.Base(path) == "reference.xml" {
			rf, err = reffile.Parse(string(data))
			if err != nil {
				return fmt.Errorf("%s: %w", filepath.Base(path), err)
			}
			continue
		}
		ps, err := p3p.ParsePolicies(string(data))
		if err != nil {
			return fmt.Errorf("%s: %w", filepath.Base(path), err)
		}
		pols = append(pols, ps...)
	}
	return site.ReplacePolicies(pols, rf)
}

// Create registers an empty dynamic tenant (one with no backing
// directory), for the admin API. It fails if the name is already
// resident.
func (r *Registry) Create(name string) (*core.Site, error) {
	name, err := Normalize(name)
	if err != nil {
		return nil, err
	}
	site, err := core.NewSiteWithOptions(r.opts.Site)
	if err != nil {
		return nil, err
	}
	r.mu.Lock()
	defer r.mu.Unlock()
	if _, ok := r.entries.Load(name); ok {
		return nil, fmt.Errorf("registry: site %q already exists", name)
	}
	r.storeLocked(name, site)
	return site, nil
}

// Remove drops a tenant from the registry. Requests already holding the
// site finish against it; a dir-backed tenant reloads on next Get.
func (r *Registry) Remove(name string) error {
	name, err := Normalize(name)
	if err != nil {
		return err
	}
	r.mu.Lock()
	defer r.mu.Unlock()
	if _, ok := r.entries.Load(name); !ok {
		return fmt.Errorf("%w: %s", ErrUnknownSite, name)
	}
	r.entries.Delete(name)
	r.count--
	obsSites.Add(-1)
	return nil
}

// Reload re-reads a resident dir-backed tenant's directory and swaps
// its policy set in place — the same *Site keeps serving, so matches in
// flight are untouched and the swap is atomic. Tenants that are not
// resident reload lazily on their next Get anyway.
func (r *Registry) Reload(name string) error {
	name, err := Normalize(name)
	if err != nil {
		return err
	}
	v, ok := r.entries.Load(name)
	if !ok {
		return fmt.Errorf("%w: %s", ErrUnknownSite, name)
	}
	if r.opts.Dir == "" {
		return fmt.Errorf("registry: site %s has no backing directory", name)
	}
	dir := filepath.Join(r.opts.Dir, name)
	if fi, err := os.Stat(dir); err != nil || !fi.IsDir() {
		return fmt.Errorf("%w: %s", ErrUnknownSite, name)
	}
	return loadInto(v.(*entry).site, dir)
}

// ReloadAll reloads every resident dir-backed tenant (the SIGHUP path),
// joining per-tenant failures; a tenant whose directory vanished is
// dropped. Tenants keep serving their previous snapshot when their
// reload fails.
func (r *Registry) ReloadAll() error {
	if r.opts.Dir == "" {
		return nil
	}
	var errs []error
	for _, name := range r.residentNames() {
		dir := filepath.Join(r.opts.Dir, name)
		if fi, err := os.Stat(dir); err != nil || !fi.IsDir() {
			_ = r.Remove(name)
			continue
		}
		if err := r.Reload(name); err != nil {
			errs = append(errs, err)
		}
	}
	return errors.Join(errs...)
}

func (r *Registry) residentNames() []string {
	var names []string
	r.entries.Range(func(k, _ any) bool {
		names = append(names, k.(string))
		return true
	})
	sort.Strings(names)
	return names
}

// Names lists every known tenant: resident ones plus directories in the
// layout not yet loaded, sorted.
func (r *Registry) Names() []string {
	seen := map[string]bool{}
	for _, n := range r.residentNames() {
		seen[n] = true
	}
	if r.opts.Dir != "" {
		if des, err := os.ReadDir(r.opts.Dir); err == nil {
			for _, de := range des {
				if de.IsDir() && ValidName(de.Name()) {
					seen[strings.ToLower(de.Name())] = true
				}
			}
		}
	}
	names := make([]string, 0, len(seen))
	for n := range seen {
		names = append(names, n)
	}
	sort.Strings(names)
	return names
}

// Len reports the number of resident tenants.
func (r *Registry) Len() int {
	r.mu.Lock()
	defer r.mu.Unlock()
	return r.count
}
