// Package registry hosts many tenant Sites in one process: the
// multi-tenant face of the server-centric architecture. A hosting
// provider serves policies for thousands of sites whose policy sets
// churn while matching traffic never stops; the registry gives each
// tenant name its own core.Site (whose snapshot-swapped interior makes
// per-tenant hot reload non-blocking), loads tenants lazily from a
// per-site directory layout, and evicts cold tenants under an LRU cap.
//
// The on-disk layout under Options.Dir is one directory per tenant:
//
//	sites/
//	  example.com/
//	    policies.xml      any *.xml: a POLICY or POLICIES document
//	    reference.xml     optional: the META reference file
//	  other.example/
//	    ...
//
// Every .xml file except reference.xml is installed as a policy
// document; reference.xml, when present, becomes the tenant's reference
// file. Loading and reloading go through Site.ReplacePolicies, so a
// reload is one atomic snapshot swap: requests in flight finish against
// the old policy set, and a broken directory leaves the tenant serving
// its previous state.
package registry

import (
	"errors"
	"fmt"
	"os"
	"path/filepath"
	"runtime"
	"sort"
	"strings"
	"sync"
	"sync/atomic"

	"p3pdb/internal/core"
	"p3pdb/internal/durable"
	"p3pdb/internal/obs"
	"p3pdb/internal/p3p"
	"p3pdb/internal/reffile"
)

// ErrUnknownSite reports a tenant name with no loaded site and no
// directory to load it from. Servers map it to a JSON 404.
var ErrUnknownSite = errors.New("registry: unknown site")

// ErrReadOnly reports a write against a read-only (replica) registry:
// tenants materialize only through Install — the replication apply path
// — never through admin mutations. Servers map it to a typed 403
// pointing at the leader.
var ErrReadOnly = errors.New("registry: read-only replica")

// Registry-level observability: tenant loads from disk, LRU evictions,
// and the resident-site gauge.
var (
	obsLoads          = obs.GetCounter("registry.loads")
	obsEvictions      = obs.GetCounter("registry.evictions")
	obsSites          = obs.GetGauge("registry.sites")
	obsRecoveries     = obs.GetCounter("registry.durable_recoveries")
	obsCheckpointErrs = obs.GetCounter("registry.checkpoint_errors")
)

// Options configure a Registry.
type Options struct {
	// Dir is the root of the per-site directory layout; empty disables
	// lazy loading (tenants exist only via Create).
	Dir string
	// Site passes options (budgets, cache sizes, DB ablations) to every
	// site the registry constructs.
	Site core.Options
	// MaxSites bounds resident tenants; past it the least-recently-used
	// tenant is evicted. Zero means unbounded. Eviction only drops the
	// registry's reference: requests already holding the site finish
	// normally, and the next Get reloads it from disk.
	MaxSites int
	// Durable, when set, makes every tenant's mutations survive a
	// restart: tenants with durable state recover from their snapshot
	// and write-ahead log (which then outranks the sites directory as
	// the source of truth), tenants first seen in the sites directory
	// are bootstrapped with an initial checkpoint, and eviction
	// checkpoints the tenant before dropping it.
	Durable *durable.Store
	// ReadOnly makes the registry a replica: Create, Remove, and Reload
	// fail with ErrReadOnly, and tenants appear only via Install (the
	// replication apply path).
	ReadOnly bool
	// RecoveryParallelism bounds the worker pool LoadAll and ReloadAll
	// use to recover or reload tenants concurrently. Zero means one
	// worker per CPU; 1 recovers serially.
	RecoveryParallelism int
}

// entry is one resident tenant. Entries are stored fully loaded, so the
// lookup fast path never observes a half-constructed site.
type entry struct {
	site     *core.Site
	journal  *durable.Tenant // nil without Options.Durable
	lastUsed atomic.Int64
	reqs     *obs.Counter // per-tenant request label
}

// flight is one in-progress tenant load; concurrent Gets for the same
// name wait on it instead of loading twice.
type flight struct {
	done chan struct{}
	site *core.Site
	err  error
}

// Registry is a concurrent named-tenant map. Lookups of resident
// tenants touch only a sync.Map and atomics; the mutex guards loads,
// creates, removes, and eviction.
type Registry struct {
	opts Options

	entries sync.Map // name -> *entry
	clock   atomic.Int64
	ready   atomic.Bool

	mu       sync.Mutex
	count    int
	inflight map[string]*flight
}

// New returns a registry. With Options.Dir set, the directory must
// exist; tenants inside it load lazily on first Get.
func New(opts Options) (*Registry, error) {
	if opts.Dir != "" {
		fi, err := os.Stat(opts.Dir)
		if err != nil {
			return nil, fmt.Errorf("registry: sites dir: %w", err)
		}
		if !fi.IsDir() {
			return nil, fmt.Errorf("registry: sites dir %s is not a directory", opts.Dir)
		}
	}
	r := &Registry{opts: opts, inflight: map[string]*flight{}}
	r.ready.Store(true)
	return r, nil
}

// Ready reports whether the registry finished its initial setup; the
// server's /readyz endpoint exposes it.
func (r *Registry) Ready() bool { return r.ready.Load() }

// ValidName reports whether a tenant name is acceptable: host-shaped
// (letters, digits, dot, dash, underscore), with no path traversal.
func ValidName(name string) bool {
	if name == "" || len(name) > 128 || name[0] == '.' {
		return false
	}
	for i := 0; i < len(name); i++ {
		c := name[i]
		switch {
		case c >= 'a' && c <= 'z', c >= 'A' && c <= 'Z', c >= '0' && c <= '9':
		case c == '.', c == '-', c == '_':
		default:
			return false
		}
	}
	return !strings.Contains(name, "..")
}

// Normalize canonicalizes a tenant name (lower-cased, port stripped, so
// a Host header can be used directly) and validates it.
func Normalize(name string) (string, error) {
	name = strings.ToLower(name)
	if i := strings.LastIndexByte(name, ':'); i >= 0 {
		name = name[:i]
	}
	if !ValidName(name) {
		return "", fmt.Errorf("registry: invalid site name %q", name)
	}
	return name, nil
}

// Get returns the named tenant's site, loading it from the directory
// layout on first use. Resident lookups are the hot path: one sync.Map
// read plus two atomics.
func (r *Registry) Get(name string) (*core.Site, error) {
	name, err := Normalize(name)
	if err != nil {
		return nil, err
	}
	if v, ok := r.entries.Load(name); ok {
		e := v.(*entry)
		e.lastUsed.Store(r.clock.Add(1))
		e.reqs.Inc()
		return e.site, nil
	}
	return r.loadSlow(name)
}

// Lookup returns the named tenant's site only if it is already
// resident; it never loads and never counts as a use.
func (r *Registry) Lookup(name string) (*core.Site, bool) {
	name, err := Normalize(name)
	if err != nil {
		return nil, false
	}
	v, ok := r.entries.Load(name)
	if !ok {
		return nil, false
	}
	return v.(*entry).site, true
}

// loadSlow loads a tenant from disk, collapsing concurrent loads of the
// same name into one.
func (r *Registry) loadSlow(name string) (*core.Site, error) {
	r.mu.Lock()
	if v, ok := r.entries.Load(name); ok { // raced with another load
		r.mu.Unlock()
		e := v.(*entry)
		e.lastUsed.Store(r.clock.Add(1))
		e.reqs.Inc()
		return e.site, nil
	}
	if fl, ok := r.inflight[name]; ok {
		r.mu.Unlock()
		<-fl.done
		return fl.site, fl.err
	}
	fl := &flight{done: make(chan struct{})}
	r.inflight[name] = fl
	r.mu.Unlock()

	site, journal, err := r.loadTenant(name)

	r.mu.Lock()
	delete(r.inflight, name)
	if err == nil {
		r.storeLocked(name, site, journal)
		obsLoads.Inc()
	}
	r.mu.Unlock()

	fl.site, fl.err = site, err
	close(fl.done)
	return site, err
}

// storeLocked publishes a loaded tenant and evicts past the LRU cap.
// An evicted tenant is checkpointed first (its whole state lands in one
// snapshot file), so re-loading it later replays no log at all. Caller
// holds r.mu.
func (r *Registry) storeLocked(name string, site *core.Site, journal *durable.Tenant) {
	e := &entry{
		site:    site,
		journal: journal,
		reqs:    obs.GetCounter("registry.tenant." + name + ".requests"),
	}
	e.lastUsed.Store(r.clock.Add(1))
	if _, loaded := r.entries.Swap(name, e); !loaded {
		r.count++
		obsSites.Add(1)
	}
	for r.opts.MaxSites > 0 && r.count > r.opts.MaxSites {
		coldName, ok := r.coldest(name)
		if !ok {
			break
		}
		if v, ok := r.entries.Load(coldName); ok {
			r.retireLocked(v.(*entry))
		}
		r.entries.Delete(coldName)
		r.count--
		obsSites.Add(-1)
		obsEvictions.Inc()
	}
}

// retireLocked checkpoints and closes a tenant's journal as it leaves
// the registry. Requests still holding the site keep matching against
// it; only new durable mutations are refused (ErrClosed) until the
// tenant is re-loaded.
func (r *Registry) retireLocked(e *entry) {
	if e.journal == nil {
		return
	}
	if err := e.journal.Checkpoint(e.site); err != nil && !errors.Is(err, durable.ErrClosed) {
		obsCheckpointErrs.Inc()
	}
	_ = e.journal.Close()
}

// coldest finds the least-recently-used resident tenant other than keep.
func (r *Registry) coldest(keep string) (string, bool) {
	var (
		name  string
		min   int64
		found bool
	)
	r.entries.Range(func(k, v any) bool {
		if k.(string) == keep {
			return true
		}
		used := v.(*entry).lastUsed.Load()
		if !found || used < min {
			name, min, found = k.(string), used, true
		}
		return true
	})
	return name, found
}

// loadTenant builds a fresh site for a tenant, preferring durable state
// over the sites directory: a tenant that has ever checkpointed or
// logged a mutation recovers from its snapshot + log tail, so admin
// deletions survive restarts even while the original XML files still
// sit in the sites directory. A tenant first seen in the directory is
// bootstrapped into the durable store with an initial checkpoint.
func (r *Registry) loadTenant(name string) (*core.Site, *durable.Tenant, error) {
	if r.opts.Durable != nil && r.opts.Durable.HasTenant(name) {
		journal, err := r.opts.Durable.OpenTenant(name)
		if err != nil {
			return nil, nil, fmt.Errorf("registry: site %s: %w", name, err)
		}
		site, err := core.NewSiteWithOptions(r.opts.Site)
		if err != nil {
			journal.Close()
			return nil, nil, err
		}
		if err := journal.ReplayInto(site); err != nil {
			journal.Close()
			return nil, nil, fmt.Errorf("registry: site %s: %w", name, err)
		}
		obsRecoveries.Inc()
		return site, journal, nil
	}

	if r.opts.Dir == "" {
		return nil, nil, fmt.Errorf("%w: %s", ErrUnknownSite, name)
	}
	dir := filepath.Join(r.opts.Dir, name)
	fi, err := os.Stat(dir)
	if err != nil || !fi.IsDir() {
		return nil, nil, fmt.Errorf("%w: %s", ErrUnknownSite, name)
	}
	site, err := core.NewSiteWithOptions(r.opts.Site)
	if err != nil {
		return nil, nil, err
	}
	if err := loadInto(site, dir); err != nil {
		return nil, nil, fmt.Errorf("registry: site %s: %w", name, err)
	}
	var journal *durable.Tenant
	if r.opts.Durable != nil {
		journal, err = r.opts.Durable.OpenTenant(name)
		if err != nil {
			return nil, nil, fmt.Errorf("registry: site %s: %w", name, err)
		}
		if err := journal.Checkpoint(site); err != nil {
			journal.Close()
			return nil, nil, fmt.Errorf("registry: site %s: bootstrap checkpoint: %w", name, err)
		}
	}
	return site, journal, nil
}

// readSiteDir reads a tenant directory's raw documents: every *.xml as
// a policy document except reference.xml, which is returned separately.
// files names each returned doc for error reporting.
func readSiteDir(dir string) (docs, files []string, ref string, err error) {
	names, err := filepath.Glob(filepath.Join(dir, "*.xml"))
	if err != nil {
		return nil, nil, "", err
	}
	sort.Strings(names)
	for _, path := range names {
		data, err := os.ReadFile(path)
		if err != nil {
			return nil, nil, "", err
		}
		if filepath.Base(path) == "reference.xml" {
			ref = string(data)
			continue
		}
		docs = append(docs, string(data))
		files = append(files, filepath.Base(path))
	}
	return docs, files, ref, nil
}

// parseSiteDocs parses raw dir documents into installable policies and
// the reference file.
func parseSiteDocs(docs, files []string, ref string) ([]*p3p.Policy, *reffile.RefFile, error) {
	var pols []*p3p.Policy
	for i, doc := range docs {
		ps, err := p3p.ParsePolicies(doc)
		if err != nil {
			return nil, nil, fmt.Errorf("%s: %w", files[i], err)
		}
		pols = append(pols, ps...)
	}
	var rf *reffile.RefFile
	if ref != "" {
		var err error
		rf, err = reffile.Parse(ref)
		if err != nil {
			return nil, nil, fmt.Errorf("reference.xml: %w", err)
		}
	}
	return pols, rf, nil
}

// loadInto reads a tenant directory and replaces the site's policy set
// with its contents in one snapshot swap.
func loadInto(site *core.Site, dir string) error {
	docs, files, ref, err := readSiteDir(dir)
	if err != nil {
		return err
	}
	pols, rf, err := parseSiteDocs(docs, files, ref)
	if err != nil {
		return err
	}
	return site.ReplacePolicies(pols, rf)
}

// Create registers an empty dynamic tenant (one with no backing
// directory), for the admin API. With a durable store the tenant's
// journal is opened immediately, so the tenant exists again after a
// restart even before its first policy install. It fails if the name is
// already resident.
func (r *Registry) Create(name string) (*core.Site, error) {
	if r.opts.ReadOnly {
		return nil, ErrReadOnly
	}
	name, err := Normalize(name)
	if err != nil {
		return nil, err
	}
	site, err := core.NewSiteWithOptions(r.opts.Site)
	if err != nil {
		return nil, err
	}
	r.mu.Lock()
	defer r.mu.Unlock()
	if _, ok := r.entries.Load(name); ok {
		return nil, fmt.Errorf("registry: site %q already exists", name)
	}
	var journal *durable.Tenant
	if r.opts.Durable != nil {
		if r.opts.Durable.HasTenant(name) {
			return nil, fmt.Errorf("registry: site %q already exists durably", name)
		}
		journal, err = r.opts.Durable.OpenTenant(name)
		if err != nil {
			return nil, err
		}
		// An empty checkpoint marks the tenant as existing: HasTenant
		// answers true on the next restart.
		if err := journal.Checkpoint(site); err != nil {
			journal.Close()
			return nil, err
		}
	}
	r.storeLocked(name, site, journal)
	return site, nil
}

// Remove drops a tenant from the registry — and, with a durable store,
// deletes its durable state: a dynamic tenant is durably gone, while a
// dir-backed tenant re-bootstraps from its directory on the next Get
// (the documented pre-durability semantics). Requests already holding
// the site finish against it.
func (r *Registry) Remove(name string) error {
	if r.opts.ReadOnly {
		return ErrReadOnly
	}
	name, err := Normalize(name)
	if err != nil {
		return err
	}
	r.mu.Lock()
	defer r.mu.Unlock()
	v, ok := r.entries.Load(name)
	if !ok {
		// Not resident, but possibly durable (e.g. evicted): removing it
		// must still erase the durable state, or it would resurrect.
		if r.opts.Durable != nil && r.opts.Durable.HasTenant(name) {
			return r.opts.Durable.RemoveTenant(name)
		}
		return fmt.Errorf("%w: %s", ErrUnknownSite, name)
	}
	e := v.(*entry)
	if e.journal != nil {
		_ = e.journal.Close()
	}
	r.entries.Delete(name)
	r.count--
	obsSites.Add(-1)
	if r.opts.Durable != nil {
		return r.opts.Durable.RemoveTenant(name)
	}
	return nil
}

// Reload re-reads a resident dir-backed tenant's directory and swaps
// its policy set in place — the same *Site keeps serving, so matches in
// flight are untouched and the swap is atomic. Tenants that are not
// resident reload lazily on their next Get anyway.
func (r *Registry) Reload(name string) error {
	if r.opts.ReadOnly {
		return ErrReadOnly
	}
	name, err := Normalize(name)
	if err != nil {
		return err
	}
	v, ok := r.entries.Load(name)
	if !ok {
		return fmt.Errorf("%w: %s", ErrUnknownSite, name)
	}
	if r.opts.Dir == "" {
		return fmt.Errorf("registry: site %s has no backing directory", name)
	}
	dir := filepath.Join(r.opts.Dir, name)
	if fi, err := os.Stat(dir); err != nil || !fi.IsDir() {
		return fmt.Errorf("%w: %s", ErrUnknownSite, name)
	}
	e := v.(*entry)
	if e.journal != nil {
		// A dir re-read is the one operation where the directory
		// explicitly outranks the log; the resulting set is logged as a
		// replace record so the log stays the recovery truth afterwards.
		docs, files, ref, err := readSiteDir(dir)
		if err != nil {
			return err
		}
		if _, _, err := parseSiteDocs(docs, files, ref); err != nil {
			return err
		}
		return e.journal.Replace(e.site, docs, ref)
	}
	return loadInto(e.site, dir)
}

// Install returns the named tenant's site, creating an empty in-memory
// one (no journal, no backing directory) if absent. It is the
// replication apply path: followers materialize tenants from the
// leader's WAL stream rather than from disk, which is why — unlike
// Create — it works on a ReadOnly registry and is idempotent.
func (r *Registry) Install(name string) (*core.Site, error) {
	name, err := Normalize(name)
	if err != nil {
		return nil, err
	}
	if v, ok := r.entries.Load(name); ok {
		return v.(*entry).site, nil
	}
	site, err := core.NewSiteWithOptions(r.opts.Site)
	if err != nil {
		return nil, err
	}
	r.mu.Lock()
	defer r.mu.Unlock()
	if v, ok := r.entries.Load(name); ok { // raced with another Install
		return v.(*entry).site, nil
	}
	r.storeLocked(name, site, nil)
	return site, nil
}

// Journal returns a resident tenant's durable journal, nil when the
// tenant is not resident or durability is off.
func (r *Registry) Journal(name string) *durable.Tenant {
	name, err := Normalize(name)
	if err != nil {
		return nil
	}
	v, ok := r.entries.Load(name)
	if !ok {
		return nil
	}
	return v.(*entry).journal
}

// GetWithJournal returns the named tenant's site and its journal from
// one entry read, so a caller building a handler can never pair one
// load's site with a different load's journal.
func (r *Registry) GetWithJournal(name string) (*core.Site, *durable.Tenant, error) {
	name, err := Normalize(name)
	if err != nil {
		return nil, nil, err
	}
	if v, ok := r.entries.Load(name); ok {
		e := v.(*entry)
		e.lastUsed.Store(r.clock.Add(1))
		e.reqs.Inc()
		return e.site, e.journal, nil
	}
	// Load and re-read the published entry. A concurrent evict can drop
	// it between the two steps; retry a few times before giving up.
	for attempt := 0; attempt < 3; attempt++ {
		if _, err := r.loadSlow(name); err != nil {
			return nil, nil, err
		}
		if v, ok := r.entries.Load(name); ok {
			e := v.(*entry)
			return e.site, e.journal, nil
		}
	}
	return nil, nil, fmt.Errorf("registry: site %s evicted during load", name)
}

// CheckpointAll snapshots every resident tenant's durable state (the
// SIGHUP and shutdown path), joining per-tenant failures. Without a
// durable store it is a no-op.
func (r *Registry) CheckpointAll() error {
	var errs []error
	r.entries.Range(func(k, v any) bool {
		e := v.(*entry)
		if e.journal != nil {
			if err := e.journal.Checkpoint(e.site); err != nil && !errors.Is(err, durable.ErrClosed) {
				obsCheckpointErrs.Inc()
				errs = append(errs, fmt.Errorf("registry: checkpoint %s: %w", k.(string), err))
			}
		}
		return true
	})
	return errors.Join(errs...)
}

// Close checkpoints and closes every resident tenant's journal. The
// registry stays usable for reads; further durable mutations fail with
// durable.ErrClosed.
func (r *Registry) Close() error {
	var errs []error
	r.entries.Range(func(k, v any) bool {
		e := v.(*entry)
		if e.journal != nil {
			if err := e.journal.Checkpoint(e.site); err != nil && !errors.Is(err, durable.ErrClosed) {
				errs = append(errs, err)
			}
			if err := e.journal.Close(); err != nil {
				errs = append(errs, err)
			}
		}
		return true
	})
	return errors.Join(errs...)
}

// workers returns the recovery pool width: RecoveryParallelism, or one
// worker per CPU when unset, never more than the work items.
func (r *Registry) workers(items int) int {
	n := r.opts.RecoveryParallelism
	if n <= 0 {
		n = runtime.GOMAXPROCS(0)
	}
	if n > items {
		n = items
	}
	if n < 1 {
		n = 1
	}
	return n
}

// forEachTenant runs fn over names under the bounded recovery pool and
// joins the per-tenant errors in name order (deterministic regardless of
// scheduling).
func (r *Registry) forEachTenant(names []string, fn func(name string) error) error {
	if len(names) == 0 {
		return nil
	}
	errs := make([]error, len(names))
	sem := make(chan struct{}, r.workers(len(names)))
	var wg sync.WaitGroup
	for i, name := range names {
		wg.Add(1)
		sem <- struct{}{}
		go func(i int, name string) {
			defer wg.Done()
			defer func() { <-sem }()
			errs[i] = fn(name)
		}(i, name)
	}
	wg.Wait()
	return errors.Join(errs...)
}

// LoadAll eagerly loads every known tenant — durable recoveries and
// directory bootstraps — under the recovery pool, so a restarted host
// pays its tenants' recovery cost concurrently at startup instead of
// serially on first request. Per-tenant failures are joined; the
// registry stays usable (a failed tenant just isn't resident).
func (r *Registry) LoadAll() error {
	return r.forEachTenant(r.Names(), func(name string) error {
		_, err := r.loadSlow(name)
		return err
	})
}

// ReloadAll reloads every resident dir-backed tenant (the SIGHUP path)
// under the recovery pool, joining per-tenant failures; a tenant whose
// directory vanished is dropped. Tenants keep serving their previous
// snapshot when their reload fails, and each tenant's swap stays atomic
// — parallelism only overlaps distinct tenants' parse/shred work.
func (r *Registry) ReloadAll() error {
	if r.opts.Dir == "" {
		return nil
	}
	return r.forEachTenant(r.residentNames(), func(name string) error {
		dir := filepath.Join(r.opts.Dir, name)
		if fi, err := os.Stat(dir); err != nil || !fi.IsDir() {
			// No directory to reload from. A journaled tenant is
			// log-backed (a dynamic create, or its dir was retired):
			// leave it serving its durable state rather than erasing it.
			if r.Journal(name) == nil {
				_ = r.Remove(name)
			}
			return nil
		}
		return r.Reload(name)
	})
}

func (r *Registry) residentNames() []string {
	var names []string
	r.entries.Range(func(k, _ any) bool {
		names = append(names, k.(string))
		return true
	})
	sort.Strings(names)
	return names
}

// Names lists every known tenant: resident ones, directories in the
// layout not yet loaded, and tenants with durable state, sorted.
func (r *Registry) Names() []string {
	seen := map[string]bool{}
	for _, n := range r.residentNames() {
		seen[n] = true
	}
	if r.opts.Dir != "" {
		if des, err := os.ReadDir(r.opts.Dir); err == nil {
			for _, de := range des {
				if de.IsDir() && ValidName(de.Name()) {
					seen[strings.ToLower(de.Name())] = true
				}
			}
		}
	}
	if r.opts.Durable != nil {
		for _, n := range r.opts.Durable.TenantNames() {
			if ValidName(n) {
				seen[strings.ToLower(n)] = true
			}
		}
	}
	names := make([]string, 0, len(seen))
	for n := range seen {
		names = append(names, n)
	}
	sort.Strings(names)
	return names
}

// Len reports the number of resident tenants.
func (r *Registry) Len() int {
	r.mu.Lock()
	defer r.mu.Unlock()
	return r.count
}
