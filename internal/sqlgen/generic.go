package sqlgen

import (
	"fmt"
	"strings"

	"p3pdb/internal/appel"
	"p3pdb/internal/shred"
)

// GenericOptions configure translation against the generic (Figure 8)
// schema.
type GenericOptions struct {
	// ViewReconstruction wraps every element table access in a derived
	// table, emulating the XML-view reconstruction layer the XTABLE
	// prototype interposed when translating XQuery over an XML view of
	// the relational tables. The wrapper defeats index-driven access
	// paths and inflates the statement's subquery count — the "untapped
	// optimizations" the paper blames for XTABLE's slower and sometimes
	// unexecutable SQL (Figure 21's missing Medium entry).
	ViewReconstruction bool
}

// TranslateRulesetGeneric translates every rule of a preference against
// the generic schema.
func TranslateRulesetGeneric(rs *appel.Ruleset, applicable string, opts GenericOptions) ([]RuleQuery, error) {
	out := make([]RuleQuery, 0, len(rs.Rules))
	for i, r := range rs.Rules {
		q, err := TranslateRuleGeneric(r, applicable, opts)
		if err != nil {
			return nil, fmt.Errorf("sqlgen: rule %d: %w", i+1, err)
		}
		out = append(out, q)
	}
	return out, nil
}

// TranslateRuleGeneric translates one APPEL rule into SQL over the generic
// one-table-per-element schema. This is the Figure 11 algorithm: main()
// emits the behavior SELECT over the applicable policy, and match()
// recursively emits one EXISTS subquery per APPEL expression, joining each
// element table to its parent through the foreign key that the Figure 8
// decomposition gave it.
func TranslateRuleGeneric(r *appel.Rule, applicable string, opts GenericOptions) (RuleQuery, error) {
	g := &genTranslator{reg: shred.GenericRegistry(), opts: opts}
	sql := "SELECT " + sqlString(r.Behavior) + " FROM (" + applicable + ") AS ApplicablePolicy"
	if len(r.Body) > 0 {
		conds := make([]string, 0, len(r.Body))
		for _, e := range r.Body {
			if e.Name != "POLICY" {
				return RuleQuery{}, fmt.Errorf("rule body must pattern over POLICY, got %s", e.Name)
			}
			cond, err := g.match(e, parentRef{alias: "ApplicablePolicy", pkCols: []string{"policy_id"}})
			if err != nil {
				return RuleQuery{}, err
			}
			conds = append(conds, cond)
		}
		body, err := combineConditions(r.EffectiveConnective(), conds)
		if err != nil {
			return RuleQuery{}, err
		}
		sql += " WHERE " + body
	}
	return RuleQuery{Behavior: r.Behavior, SQL: sql, Prompt: r.Prompt}, nil
}

// parentRef tells match() how to join a child table to its parent row: the
// alias of the parent's row and the parent's primary-key columns, ordered
// to correspond with the child's foreign-key columns.
type parentRef struct {
	alias  string
	pkCols []string
}

type genTranslator struct {
	reg  map[string]shred.GenericTable
	opts GenericOptions
	n    int
}

func (g *genTranslator) alias() string {
	g.n++
	return fmt.Sprintf("t%d", g.n)
}

// fromClause renders the FROM item for an element table, optionally
// wrapped in the XML-view reconstruction derived table.
func (g *genTranslator) fromClause(table, alias string) string {
	if g.opts.ViewReconstruction {
		return "(SELECT * FROM " + table + ") AS " + alias
	}
	return table + " " + alias
}

// match translates one APPEL expression into an EXISTS subquery: Figure 11
// lines 10-23.
func (g *genTranslator) match(e *appel.Expr, parent parentRef) (string, error) {
	t, ok := g.reg[e.Name]
	if !ok {
		return "", fmt.Errorf("no generic table for element %s", e.Name)
	}
	a := g.alias()
	join, err := g.joinCond(t, a, parent)
	if err != nil {
		return "", err
	}
	body, err := g.matchCond(e, t, a)
	if err != nil {
		return "", err
	}
	where := join
	if body != "" {
		where += " AND " + body
	}
	return "EXISTS (SELECT * FROM " + g.fromClause(t.TableName(), a) + " WHERE " + where + ")", nil
}

// joinCond generates the path connecting the element with its parent
// element (Figure 11 line 15): the child's foreign key equals the parent's
// primary key.
func (g *genTranslator) joinCond(t shred.GenericTable, a string, parent parentRef) (string, error) {
	fks := t.FKColumns()
	if len(fks) == 0 {
		// The root element (POLICY) has no foreign key; it is selected by
		// its own id matching the applicable policy.
		return a + "." + t.IDColumn() + " = " + parent.alias + "." + parent.pkCols[0], nil
	}
	if len(fks) != len(parent.pkCols) {
		return "", fmt.Errorf("element %s cannot appear under %s: key arity %d vs %d",
			t.Element(), parent.alias, len(fks), len(parent.pkCols))
	}
	parts := make([]string, len(fks))
	for i := range fks {
		parts[i] = a + "." + fks[i] + " = " + parent.alias + "." + parent.pkCols[i]
	}
	return strings.Join(parts, " AND "), nil
}

// matchCond generates the attribute and subexpression conditions for a row
// of element e bound to alias a (Figure 11 lines 16-21), without the
// enclosing EXISTS.
func (g *genTranslator) matchCond(e *appel.Expr, t shred.GenericTable, a string) (string, error) {
	var conds []string
	known := map[string]bool{}
	for _, attr := range t.Attrs() {
		known[attr] = true
	}
	for _, attr := range e.Attrs {
		if !known[attr.Name] {
			return "", fmt.Errorf("element %s has no attribute %q", e.Name, attr.Name)
		}
		if attr.Value == "*" {
			continue
		}
		if e.Name == "DATA" && attr.Name == "ref" {
			conds = append(conds, refCondition(a+"."+shred.Ident(attr.Name), attr.Value))
			continue
		}
		conds = append(conds, a+"."+shred.Ident(attr.Name)+" = "+sqlString(attr.Value))
	}
	if len(e.Children) > 0 {
		sub, err := g.combineChildren(e, t, a)
		if err != nil {
			return "", err
		}
		conds = append(conds, sub)
	}
	return strings.Join(conds, " AND "), nil
}

// combineChildren applies e's connective over its subexpressions, each
// translated to an EXISTS against the row bound to alias a. The exact
// connectives additionally require that the policy element contains only
// listed subelements, which in the generic schema expands to a NOT EXISTS
// over every possible child table — the combinatorial growth that makes
// the view-reconstructed Medium preference exceed the engine's statement
// complexity limit.
func (g *genTranslator) combineChildren(e *appel.Expr, t shred.GenericTable, a string) (string, error) {
	self := parentRef{alias: a, pkCols: append([]string{t.IDColumn()}, t.FKColumns()...)}
	conds := make([]string, 0, len(e.Children))
	for _, kid := range e.Children {
		c, err := g.match(kid, self)
		if err != nil {
			return "", err
		}
		conds = append(conds, c)
	}
	conn := e.EffectiveConnective()
	switch conn {
	case appel.ConnAnd, appel.ConnOr, appel.ConnNonAnd, appel.ConnNonOr:
		return combineConditions(conn, conds)
	case appel.ConnAndExact, appel.ConnOrExact:
		var base string
		var err error
		if conn == appel.ConnAndExact {
			base, err = combineConditions(appel.ConnAnd, conds)
		} else {
			base, err = combineConditions(appel.ConnOr, conds)
		}
		if err != nil {
			return "", err
		}
		exact, err := g.exactCond(e, t, self)
		if err != nil {
			return "", err
		}
		return "(" + base + " AND " + exact + ")", nil
	}
	return "", fmt.Errorf("unknown connective %q", e.Connective)
}

// exactCond generates the "policy contains only elements listed in the
// rule" half of the exact connectives: for every element that can occur as
// a child of e's element, either it is absent, or every row of it matches
// one of the listed subexpressions of that name.
func (g *genTranslator) exactCond(e *appel.Expr, t shred.GenericTable, self parentRef) (string, error) {
	// Group listed subexpressions by element name.
	listed := map[string][]*appel.Expr{}
	for _, kid := range e.Children {
		listed[kid.Name] = append(listed[kid.Name], kid)
	}
	var conds []string
	for _, child := range g.childrenOf(t.Element()) {
		a := g.alias()
		join, err := g.joinCond(child, a, self)
		if err != nil {
			return "", err
		}
		exprs := listed[child.Element()]
		if len(exprs) == 0 {
			// Unlisted element type: must be absent.
			conds = append(conds,
				"NOT EXISTS (SELECT * FROM "+g.fromClause(child.TableName(), a)+" WHERE "+join+")")
			continue
		}
		// Listed: no row may fail all the listed patterns of its name.
		var rowMatches []string
		for _, ex := range exprs {
			mc, err := g.matchCond(ex, child, a)
			if err != nil {
				return "", err
			}
			if mc == "" {
				mc = "1 = 1"
			}
			rowMatches = append(rowMatches, "("+mc+")")
		}
		conds = append(conds,
			"NOT EXISTS (SELECT * FROM "+g.fromClause(child.TableName(), a)+" WHERE "+join+
				" AND NOT ("+strings.Join(rowMatches, " OR ")+"))")
	}
	if len(conds) == 0 {
		return "1 = 1", nil
	}
	return "(" + strings.Join(conds, " AND ") + ")", nil
}

// childrenOf returns the registry entries whose immediate parent is the
// given element, in registry order.
func (g *genTranslator) childrenOf(element string) []shred.GenericTable {
	var out []shred.GenericTable
	for _, name := range genericOrder {
		t := g.reg[name]
		if p := t.Parents(); len(p) > 0 && p[0] == element {
			out = append(out, t)
		}
	}
	return out
}

// genericOrder fixes a deterministic iteration order over the registry.
var genericOrder = func() []string {
	var names []string
	for name := range shred.GenericRegistry() {
		names = append(names, name)
	}
	// Sort without importing sort at init time complexity: simple
	// insertion sort keeps this dependency-free and runs once.
	for i := 1; i < len(names); i++ {
		for j := i; j > 0 && names[j] < names[j-1]; j-- {
			names[j], names[j-1] = names[j-1], names[j]
		}
	}
	return names
}()
