package sqlgen

import (
	"strings"
	"testing"

	"p3pdb/internal/appel"
	"p3pdb/internal/p3p"
	"p3pdb/internal/reldb"
	"p3pdb/internal/shred"
)

// optFixture shreds Volga into an optimized-schema DB.
func optFixture(t testing.TB, policyXML string) (*reldb.DB, int) {
	t.Helper()
	db := reldb.New()
	st, err := shred.NewOptimized(db)
	if err != nil {
		t.Fatal(err)
	}
	pol, err := p3p.ParsePolicy(policyXML)
	if err != nil {
		t.Fatal(err)
	}
	id, err := st.InstallPolicy(pol)
	if err != nil {
		t.Fatal(err)
	}
	return db, id
}

// genFixture shreds Volga into a generic-schema DB.
func genFixture(t testing.TB, policyXML string) (*reldb.DB, int) {
	t.Helper()
	db := reldb.New()
	st, err := shred.NewGeneric(db)
	if err != nil {
		t.Fatal(err)
	}
	pol, err := p3p.ParsePolicy(policyXML)
	if err != nil {
		t.Fatal(err)
	}
	id, err := st.InstallPolicy(pol)
	if err != nil {
		t.Fatal(err)
	}
	return db, id
}

func mustRuleset(t testing.TB, src string) *appel.Ruleset {
	t.Helper()
	rs, err := appel.Parse(src)
	if err != nil {
		t.Fatal(err)
	}
	return rs
}

func TestTranslateJaneSimplifiedShape(t *testing.T) {
	// The simplified first rule (Figure 12) should translate to the
	// merged-subquery shape of Figure 15: one Purpose subquery holding
	// the disjunction, not one subquery per purpose value.
	rs := mustRuleset(t, appel.JaneSimplifiedRuleXML)
	q, err := TranslateRuleOptimized(rs.Rules[0], FixedPolicySubquery(1))
	if err != nil {
		t.Fatal(err)
	}
	if q.Behavior != "block" {
		t.Errorf("behavior = %q", q.Behavior)
	}
	if got := strings.Count(q.SQL, "FROM Purpose"); got != 1 {
		t.Errorf("Purpose subqueries = %d, want 1 (merged as in Figure 15):\n%s", got, q.SQL)
	}
	for _, want := range []string{
		"SELECT 'block'",
		"FROM Policy",
		"FROM Statement",
		".purpose = 'admin'",
		".purpose = 'contact'",
		".required = 'always'",
		" OR ",
	} {
		if !strings.Contains(q.SQL, want) {
			t.Errorf("SQL missing %q:\n%s", want, q.SQL)
		}
	}
}

func TestJaneAgainstVolgaOptimized(t *testing.T) {
	// The paper's worked example on the SQL path: Volga conforms.
	db, id := optFixture(t, p3p.VolgaPolicyXML)
	rs := mustRuleset(t, appel.JanePreferenceXML)
	qs, err := TranslateRulesetOptimized(rs, FixedPolicySubquery(id))
	if err != nil {
		t.Fatal(err)
	}
	res, err := Match(db, qs)
	if err != nil {
		t.Fatal(err)
	}
	if res.Behavior != "request" || res.RuleIndex != 2 {
		t.Errorf("result = %+v, want request via rule 3", res)
	}
}

func TestJaneAgainstVolgaGeneric(t *testing.T) {
	db, id := genFixture(t, p3p.VolgaPolicyXML)
	rs := mustRuleset(t, appel.JanePreferenceXML)
	qs, err := TranslateRulesetGeneric(rs, FixedPolicySubquery(id), GenericOptions{})
	if err != nil {
		t.Fatal(err)
	}
	res, err := Match(db, qs)
	if err != nil {
		t.Fatal(err)
	}
	if res.Behavior != "request" || res.RuleIndex != 2 {
		t.Errorf("result = %+v, want request via rule 3", res)
	}
}

func TestCounterfactualFiresBothSchemas(t *testing.T) {
	// Removing the opt-in flips the default to always and rule 1 fires
	// (the paper's counterfactual).
	modified := strings.Replace(p3p.VolgaPolicyXML,
		`<individual-decision required="opt-in"/>`, `<individual-decision/>`, 1)
	rs := mustRuleset(t, appel.JanePreferenceXML)

	db, id := optFixture(t, modified)
	qs, err := TranslateRulesetOptimized(rs, FixedPolicySubquery(id))
	if err != nil {
		t.Fatal(err)
	}
	res, err := Match(db, qs)
	if err != nil {
		t.Fatal(err)
	}
	if res.Behavior != "block" || res.RuleIndex != 0 {
		t.Errorf("optimized result = %+v", res)
	}

	gdb, gid := genFixture(t, modified)
	gqs, err := TranslateRulesetGeneric(rs, FixedPolicySubquery(gid), GenericOptions{})
	if err != nil {
		t.Fatal(err)
	}
	gres, err := Match(gdb, gqs)
	if err != nil {
		t.Fatal(err)
	}
	if gres.Behavior != "block" || gres.RuleIndex != 0 {
		t.Errorf("generic result = %+v", gres)
	}
}

// matchBoth translates and runs a single-block-rule preference against a
// policy on both schemas and checks they agree, returning whether it fired.
func matchBoth(t *testing.T, ruleBody, policyXML string) bool {
	t.Helper()
	rsDoc := `<appel:RULESET xmlns:appel="http://www.w3.org/2002/01/APPELv1">
		<appel:RULE behavior="block">` + ruleBody + `</appel:RULE>
		<appel:OTHERWISE behavior="request"/>
	</appel:RULESET>`
	rs := mustRuleset(t, rsDoc)

	db, id := optFixture(t, policyXML)
	qs, err := TranslateRulesetOptimized(rs, FixedPolicySubquery(id))
	if err != nil {
		t.Fatalf("optimized translate: %v", err)
	}
	res, err := Match(db, qs)
	if err != nil {
		t.Fatalf("optimized match: %v", err)
	}

	gdb, gid := genFixture(t, policyXML)
	gqs, err := TranslateRulesetGeneric(rs, FixedPolicySubquery(gid), GenericOptions{})
	if err != nil {
		t.Fatalf("generic translate: %v", err)
	}
	gres, err := Match(gdb, gqs)
	if err != nil {
		t.Fatalf("generic match: %v", err)
	}

	if res.Behavior != gres.Behavior {
		t.Fatalf("schema disagreement: optimized=%s generic=%s\nrule: %s",
			res.Behavior, gres.Behavior, ruleBody)
	}
	return res.Behavior == "block"
}

const tinyPolicy = `<POLICY xmlns="http://www.w3.org/2002/01/P3Pv1" name="t">
  <STATEMENT>
    <PURPOSE><current/><admin required="opt-in"/></PURPOSE>
    <RECIPIENT><ours/></RECIPIENT>
    <RETENTION><stated-purpose/></RETENTION>
    <DATA-GROUP>
      <DATA ref="#user.home-info.online.email"/>
      <DATA ref="#dynamic.miscdata"><CATEGORIES><purchase/><financial/></CATEGORIES></DATA>
    </DATA-GROUP>
  </STATEMENT>
</POLICY>`

func TestConnectivesOnBothSchemas(t *testing.T) {
	cases := []struct {
		name string
		rule string
		want bool
	}{
		{"or bare element matches any required", `<POLICY><STATEMENT><PURPOSE appel:connective="or"><admin/><telemarketing/></PURPOSE></STATEMENT></POLICY>`, true},
		{"or all absent", `<POLICY><STATEMENT><PURPOSE appel:connective="or"><develop/><telemarketing/></PURPOSE></STATEMENT></POLICY>`, false},
		{"or attr mismatch", `<POLICY><STATEMENT><PURPOSE appel:connective="or"><admin required="always"/><telemarketing/></PURPOSE></STATEMENT></POLICY>`, false},
		{"or hit with wildcard required", `<POLICY><STATEMENT><PURPOSE appel:connective="or"><admin required="*"/><telemarketing/></PURPOSE></STATEMENT></POLICY>`, true},
		{"or attr match", `<POLICY><STATEMENT><PURPOSE appel:connective="or"><admin required="opt-in"/></PURPOSE></STATEMENT></POLICY>`, true},
		{"and hit", `<POLICY><STATEMENT><PURPOSE appel:connective="and"><current/><admin required="opt-in"/></PURPOSE></STATEMENT></POLICY>`, true},
		{"and miss", `<POLICY><STATEMENT><PURPOSE appel:connective="and"><current/><telemarketing/></PURPOSE></STATEMENT></POLICY>`, false},
		{"non-or clean", `<POLICY><STATEMENT><PURPOSE appel:connective="non-or"><telemarketing/><contact/></PURPOSE></STATEMENT></POLICY>`, true},
		{"non-or dirty", `<POLICY><STATEMENT><PURPOSE appel:connective="non-or"><current/></PURPOSE></STATEMENT></POLICY>`, false},
		{"non-and", `<POLICY><STATEMENT><PURPOSE appel:connective="non-and"><current/><telemarketing/></PURPOSE></STATEMENT></POLICY>`, true},
		{"and-exact exact", `<POLICY><STATEMENT><PURPOSE appel:connective="and-exact"><current/><admin required="opt-in"/></PURPOSE></STATEMENT></POLICY>`, true},
		{"and-exact wrong attr", `<POLICY><STATEMENT><PURPOSE appel:connective="and-exact"><current/><admin required="always"/></PURPOSE></STATEMENT></POLICY>`, false},
		{"and-exact missing", `<POLICY><STATEMENT><PURPOSE appel:connective="and-exact"><current/></PURPOSE></STATEMENT></POLICY>`, false},
		{"or-exact subset", `<POLICY><STATEMENT><PURPOSE appel:connective="or-exact"><current/><admin required="*"/><contact/></PURPOSE></STATEMENT></POLICY>`, true},
		{"or-exact unlisted present", `<POLICY><STATEMENT><PURPOSE appel:connective="or-exact"><current/></PURPOSE></STATEMENT></POLICY>`, false},
		{"recipient non-or", `<POLICY><STATEMENT><RECIPIENT appel:connective="non-or"><public/><unrelated/></RECIPIENT></STATEMENT></POLICY>`, true},
		{"retention or", `<POLICY><STATEMENT><RETENTION appel:connective="or"><stated-purpose/><no-retention/></RETENTION></STATEMENT></POLICY>`, true},
		{"retention non-or", `<POLICY><STATEMENT><RETENTION appel:connective="non-or"><indefinitely/></RETENTION></STATEMENT></POLICY>`, true},
		{"retention miss", `<POLICY><STATEMENT><RETENTION appel:connective="or"><indefinitely/></RETENTION></STATEMENT></POLICY>`, false},
		{"data ref broad", `<POLICY><STATEMENT><DATA-GROUP><DATA ref="#user.home-info"/></DATA-GROUP></STATEMENT></POLICY>`, true},
		{"data ref exact leaf", `<POLICY><STATEMENT><DATA-GROUP><DATA ref="#user.home-info.online.email"/></DATA-GROUP></STATEMENT></POLICY>`, true},
		{"data ref miss", `<POLICY><STATEMENT><DATA-GROUP><DATA ref="#user.bdate"/></DATA-GROUP></STATEMENT></POLICY>`, false},
		{"category or", `<POLICY><STATEMENT><DATA-GROUP><DATA ref="*"><CATEGORIES appel:connective="or"><purchase/><health/></CATEGORIES></DATA></DATA-GROUP></STATEMENT></POLICY>`, true},
		{"category and same element", `<POLICY><STATEMENT><DATA-GROUP><DATA ref="*"><CATEGORIES><purchase/><financial/></CATEGORIES></DATA></DATA-GROUP></STATEMENT></POLICY>`, true},
		{"category and split elements", `<POLICY><STATEMENT><DATA-GROUP><DATA ref="*"><CATEGORIES><purchase/><online/></CATEGORIES></DATA></DATA-GROUP></STATEMENT></POLICY>`, false},
		{"category non-or", `<POLICY><STATEMENT><DATA-GROUP><DATA ref="#user.home-info.online.email"><CATEGORIES appel:connective="non-or"><health/></CATEGORIES></DATA></DATA-GROUP></STATEMENT></POLICY>`, true},
		{"consequence present", `<POLICY><STATEMENT><CONSEQUENCE/></STATEMENT></POLICY>`, false},
		{"empty purpose expr", `<POLICY><STATEMENT><PURPOSE/></STATEMENT></POLICY>`, true},
		{"statement or split", `<POLICY appel:connective="or"><STATEMENT><PURPOSE appel:connective="or"><telemarketing/></PURPOSE></STATEMENT><STATEMENT><RECIPIENT appel:connective="or"><ours/></RECIPIENT></STATEMENT></POLICY>`, true},
	}
	for _, c := range cases {
		t.Run(c.name, func(t *testing.T) {
			if got := matchBoth(t, c.rule, tinyPolicy); got != c.want {
				t.Errorf("fired = %v, want %v", got, c.want)
			}
		})
	}
}

func TestGenericShapeFollowsFigure13(t *testing.T) {
	// The generic translation mirrors Figure 13: one subquery per
	// element, including one per purpose value table.
	rs := mustRuleset(t, appel.JaneSimplifiedRuleXML)
	q, err := TranslateRuleGeneric(rs.Rules[0], FixedPolicySubquery(1), GenericOptions{})
	if err != nil {
		t.Fatal(err)
	}
	for _, want := range []string{
		"FROM policy", "FROM statement", "FROM purpose", "FROM admin", "FROM contact",
		"required = 'always'",
	} {
		if !strings.Contains(q.SQL, want) {
			t.Errorf("generic SQL missing %q:\n%s", want, q.SQL)
		}
	}
	// Separate subqueries for admin and contact, joined by OR.
	if !strings.Contains(q.SQL, ") OR EXISTS (") && !strings.Contains(q.SQL, ") OR  EXISTS (") {
		t.Errorf("generic SQL should OR the value subqueries:\n%s", q.SQL)
	}
}

func TestViewReconstructionWrapping(t *testing.T) {
	rs := mustRuleset(t, appel.JaneSimplifiedRuleXML)
	plain, err := TranslateRuleGeneric(rs.Rules[0], FixedPolicySubquery(1), GenericOptions{})
	if err != nil {
		t.Fatal(err)
	}
	wrapped, err := TranslateRuleGeneric(rs.Rules[0], FixedPolicySubquery(1), GenericOptions{ViewReconstruction: true})
	if err != nil {
		t.Fatal(err)
	}
	if !strings.Contains(wrapped.SQL, "(SELECT * FROM purpose) AS") {
		t.Errorf("view reconstruction should wrap table access:\n%s", wrapped.SQL)
	}
	if strings.Count(wrapped.SQL, "SELECT") <= strings.Count(plain.SQL, "SELECT") {
		t.Error("view reconstruction should inflate the query-block count")
	}
	// Results agree despite the wrapping.
	db, id := genFixture(t, tinyPolicy)
	_ = id
	ok1, err := db.QueryExists(plain.SQL)
	if err != nil {
		t.Fatal(err)
	}
	ok2, err := db.QueryExists(wrapped.SQL)
	if err != nil {
		t.Fatal(err)
	}
	if ok1 != ok2 {
		t.Errorf("plain=%v wrapped=%v", ok1, ok2)
	}
}

func TestEmptyBodyRule(t *testing.T) {
	r := &appel.Rule{Behavior: "request"}
	q, err := TranslateRuleOptimized(r, FixedPolicySubquery(7))
	if err != nil {
		t.Fatal(err)
	}
	if strings.Contains(q.SQL, "WHERE") {
		t.Errorf("catch-all should have no WHERE:\n%s", q.SQL)
	}
	db, _ := optFixture(t, p3p.VolgaPolicyXML)
	ok, err := db.QueryExists(q.SQL)
	if err != nil || !ok {
		t.Errorf("catch-all should fire: %v %v", ok, err)
	}
}

func TestTranslateErrors(t *testing.T) {
	cases := []string{
		// Rule body not POLICY.
		`<appel:RULESET xmlns:appel="http://www.w3.org/2002/01/APPELv1">
		 <appel:RULE behavior="block"><STATEMENT/></appel:RULE></appel:RULESET>`,
		// Unknown element under STATEMENT.
		`<appel:RULESET xmlns:appel="http://www.w3.org/2002/01/APPELv1">
		 <appel:RULE behavior="block"><POLICY><STATEMENT><BOGUS/></STATEMENT></POLICY></appel:RULE></appel:RULESET>`,
		// Unsupported attribute.
		`<appel:RULESET xmlns:appel="http://www.w3.org/2002/01/APPELv1">
		 <appel:RULE behavior="block"><POLICY><STATEMENT><PURPOSE><current zap="1"/></PURPOSE></STATEMENT></POLICY></appel:RULE></appel:RULESET>`,
		// Exact connective at general level.
		`<appel:RULESET xmlns:appel="http://www.w3.org/2002/01/APPELv1">
		 <appel:RULE behavior="block"><POLICY><STATEMENT appel:connective="and-exact"><PURPOSE/><RECIPIENT/></STATEMENT></POLICY></appel:RULE></appel:RULESET>`,
	}
	for i, src := range cases {
		rs := mustRuleset(t, src)
		if _, err := TranslateRulesetOptimized(rs, FixedPolicySubquery(1)); err == nil {
			t.Errorf("case %d: optimized translation should fail", i)
		}
	}
}

func TestGenericExactTranslates(t *testing.T) {
	// The generic translator CAN express exact connectives at the general
	// level, by enumerating sibling tables — at great query-size cost.
	src := `<appel:RULESET xmlns:appel="http://www.w3.org/2002/01/APPELv1">
		<appel:RULE behavior="block"><POLICY><STATEMENT>
		<PURPOSE appel:connective="or-exact"><current/><admin required="*"/></PURPOSE>
		</STATEMENT></POLICY></appel:RULE>
		<appel:OTHERWISE behavior="request"/></appel:RULESET>`
	rs := mustRuleset(t, src)
	qs, err := TranslateRulesetGeneric(rs, FixedPolicySubquery(1), GenericOptions{})
	if err != nil {
		t.Fatal(err)
	}
	// Exactness over purposes enumerates all 12 purpose tables.
	if got := strings.Count(qs[0].SQL, "NOT EXISTS"); got < 10 {
		t.Errorf("exactness should enumerate purpose tables, NOT EXISTS count = %d:\n%s", got, qs[0].SQL)
	}
	db, _ := genFixture(t, tinyPolicy)
	res, err := Match(db, qs)
	if err != nil {
		t.Fatal(err)
	}
	// tinyPolicy has exactly {current, admin}: or-exact fires.
	if res.Behavior != "block" {
		t.Errorf("or-exact should fire on exact-subset policy, got %+v", res)
	}
}

func TestSQLInjectionSafeBehavior(t *testing.T) {
	// A hostile behavior string must be quoted, not spliced.
	r := &appel.Rule{Behavior: "x'; DROP TABLE Policy; --"}
	q, err := TranslateRuleOptimized(r, FixedPolicySubquery(1))
	if err != nil {
		t.Fatal(err)
	}
	db, _ := optFixture(t, p3p.VolgaPolicyXML)
	if _, err := db.Query(q.SQL); err != nil {
		t.Errorf("quoted behavior should parse: %v\n%s", err, q.SQL)
	}
	if !db.HasTable("Policy") {
		t.Fatal("injection executed")
	}
}
