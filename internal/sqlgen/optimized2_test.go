package sqlgen

import (
	"strings"
	"testing"

	"p3pdb/internal/appel"
	"p3pdb/internal/p3p"
)

// matchOptimized runs a single-block-rule preference against a policy on
// the optimized schema only (for expressions the generic schema does not
// model, such as ACCESS and TEST).
func matchOptimized(t *testing.T, ruleBody, policyXML string) bool {
	t.Helper()
	rsDoc := `<appel:RULESET xmlns:appel="http://www.w3.org/2002/01/APPELv1">
		<appel:RULE behavior="block">` + ruleBody + `</appel:RULE>
		<appel:OTHERWISE behavior="request"/>
	</appel:RULESET>`
	rs := mustRuleset(t, rsDoc)
	db, id := optFixture(t, policyXML)
	qs, err := TranslateRulesetOptimized(rs, FixedPolicySubquery(id))
	if err != nil {
		t.Fatalf("translate: %v", err)
	}
	res, err := Match(db, qs)
	if err != nil {
		t.Fatalf("match: %v", err)
	}
	return res.Behavior == "block"
}

func TestAccessExpression(t *testing.T) {
	// Volga declares <ACCESS><contact-and-other/></ACCESS>.
	if !matchOptimized(t, `<POLICY><ACCESS appel:connective="or"><contact-and-other/><all/></ACCESS></POLICY>`, p3p.VolgaPolicyXML) {
		t.Error("ACCESS or should match")
	}
	if matchOptimized(t, `<POLICY><ACCESS appel:connective="or"><none/></ACCESS></POLICY>`, p3p.VolgaPolicyXML) {
		t.Error("ACCESS none should not match")
	}
	if !matchOptimized(t, `<POLICY><ACCESS appel:connective="non-or"><none/><nonident/></ACCESS></POLICY>`, p3p.VolgaPolicyXML) {
		t.Error("ACCESS non-or should match")
	}
	// Bare ACCESS asserts existence.
	if !matchOptimized(t, `<POLICY><ACCESS/></POLICY>`, p3p.VolgaPolicyXML) {
		t.Error("bare ACCESS should match a policy that declares access")
	}
}

func TestTestExpression(t *testing.T) {
	testPolicy := strings.Replace(p3p.VolgaPolicyXML, `</POLICY>`, `<TEST/></POLICY>`, 1)
	if !matchOptimized(t, `<POLICY><TEST/></POLICY>`, testPolicy) {
		t.Error("TEST should match a test policy")
	}
	if matchOptimized(t, `<POLICY><TEST/></POLICY>`, p3p.VolgaPolicyXML) {
		t.Error("TEST should not match a production policy")
	}
}

func TestPolicyAttributePatterns(t *testing.T) {
	if !matchOptimized(t, `<POLICY name="volga"/>`, p3p.VolgaPolicyXML) {
		t.Error("name pattern should match")
	}
	if matchOptimized(t, `<POLICY name="other"/>`, p3p.VolgaPolicyXML) {
		t.Error("wrong name should not match")
	}
	if !matchOptimized(t, `<POLICY discuri="*"/>`, p3p.VolgaPolicyXML) {
		t.Error("wildcard discuri should match")
	}
}

func TestNonIdentifiableExpression(t *testing.T) {
	anon := `<POLICY xmlns="http://www.w3.org/2002/01/P3Pv1" name="anon">
	  <STATEMENT><NON-IDENTIFIABLE/></STATEMENT>
	</POLICY>`
	if !matchOptimized(t, `<POLICY><STATEMENT><NON-IDENTIFIABLE/></STATEMENT></POLICY>`, anon) {
		t.Error("NON-IDENTIFIABLE should match")
	}
	if matchOptimized(t, `<POLICY><STATEMENT><NON-IDENTIFIABLE/></STATEMENT></POLICY>`, p3p.VolgaPolicyXML) {
		t.Error("NON-IDENTIFIABLE should not match Volga")
	}
}

func TestDataGroupBaseAndOptional(t *testing.T) {
	pol := `<POLICY xmlns="http://www.w3.org/2002/01/P3Pv1" name="b">
	  <STATEMENT>
	    <PURPOSE><current/></PURPOSE><RECIPIENT><ours/></RECIPIENT>
	    <RETENTION><no-retention/></RETENTION>
	    <DATA-GROUP>
	      <DATA ref="#user.gender" optional="yes"/>
	      <DATA ref="#user.jobtitle"/>
	    </DATA-GROUP>
	  </STATEMENT>
	</POLICY>`
	if !matchOptimized(t, `<POLICY><STATEMENT><DATA-GROUP><DATA ref="#user.gender" optional="yes"/></DATA-GROUP></STATEMENT></POLICY>`, pol) {
		t.Error("optional=yes should match")
	}
	if matchOptimized(t, `<POLICY><STATEMENT><DATA-GROUP><DATA ref="#user.jobtitle" optional="yes"/></DATA-GROUP></STATEMENT></POLICY>`, pol) {
		t.Error("optional=yes should not match a required item")
	}
	if !matchOptimized(t, `<POLICY><STATEMENT><DATA-GROUP><DATA ref="#user.jobtitle" optional="no"/></DATA-GROUP></STATEMENT></POLICY>`, pol) {
		t.Error("optional defaulting to no should match")
	}
}

func TestOptimizedTranslateErrorPaths(t *testing.T) {
	cases := []string{
		`<POLICY zap="1"/>`,
		`<POLICY><BOGUS/></POLICY>`,
		`<POLICY><ACCESS><all x="1"/></ACCESS></POLICY>`,
		`<POLICY><STATEMENT><RETENTION><indefinitely x="1"/></RETENTION></STATEMENT></POLICY>`,
		`<POLICY><STATEMENT><PURPOSE><current><nested/></current></PURPOSE></STATEMENT></POLICY>`,
		`<POLICY><STATEMENT><DATA-GROUP zap="1"/></STATEMENT></POLICY>`,
		`<POLICY><STATEMENT><DATA-GROUP><BOGUS/></DATA-GROUP></STATEMENT></POLICY>`,
		`<POLICY><STATEMENT><DATA-GROUP><DATA zap="1"/></DATA-GROUP></STATEMENT></POLICY>`,
		`<POLICY><STATEMENT><DATA-GROUP><DATA ref="*"><BOGUS/></DATA></DATA-GROUP></STATEMENT></POLICY>`,
		`<POLICY><STATEMENT><DATA-GROUP><DATA ref="*"><CATEGORIES><purchase x="1"/></CATEGORIES></DATA></DATA-GROUP></STATEMENT></POLICY>`,
	}
	for _, body := range cases {
		rsDoc := `<appel:RULESET xmlns:appel="http://www.w3.org/2002/01/APPELv1">
			<appel:RULE behavior="block">` + body + `</appel:RULE></appel:RULESET>`
		rs := mustRuleset(t, rsDoc)
		if _, err := TranslateRulesetOptimized(rs, FixedPolicySubquery(1)); err == nil {
			t.Errorf("TranslateRulesetOptimized(%s): expected error", body)
		}
	}
}

func TestNativeAgreesOnAccessAndTest(t *testing.T) {
	// The optimized-SQL decisions above must agree with the native
	// engine, which matches ACCESS/TEST structurally.
	rsDoc := `<appel:RULESET xmlns:appel="http://www.w3.org/2002/01/APPELv1">
		<appel:RULE behavior="block"><POLICY><ACCESS appel:connective="or"><contact-and-other/></ACCESS></POLICY></appel:RULE>
		<appel:OTHERWISE behavior="request"/></appel:RULESET>`
	_ = rsDoc // the cross-check lives in appelengine's own tests; here we
	// assert only that translation is possible for both directions.
	rs := mustRuleset(t, rsDoc)
	if _, err := TranslateRulesetOptimized(rs, FixedPolicySubquery(1)); err != nil {
		t.Errorf("optimized: %v", err)
	}
	// The generic schema does not model ACCESS (a documented deviation);
	// translation must fail loudly rather than silently mis-match.
	if _, err := TranslateRulesetGeneric(rs, FixedPolicySubquery(1), GenericOptions{}); err == nil {
		t.Error("generic translation of ACCESS should fail (no table)")
	}
}

func TestJaneFullPreferenceShape(t *testing.T) {
	rs := mustRuleset(t, appel.JanePreferenceXML)
	qs, err := TranslateRulesetOptimized(rs, FixedPolicySubquery(3))
	if err != nil {
		t.Fatal(err)
	}
	if len(qs) != 3 {
		t.Fatalf("queries = %d", len(qs))
	}
	if !strings.Contains(qs[1].SQL, "FROM Recipient") {
		t.Errorf("rule 2 should pattern recipients:\n%s", qs[1].SQL)
	}
	if strings.Contains(qs[2].SQL, "WHERE") {
		t.Errorf("catch-all should be unconditional:\n%s", qs[2].SQL)
	}
}
