package sqlgen

import (
	"fmt"

	"p3pdb/internal/reldb"
)

// Match executes translated rule queries in order and returns the outcome
// of the first query that yields a row, mirroring APPEL's ordered-rule
// semantics on the database side.
type MatchResult struct {
	Behavior  string
	RuleIndex int
	Prompt    bool
}

// ErrNoRuleFired is returned when no translated rule query produced a row.
var ErrNoRuleFired = fmt.Errorf("sqlgen: no rule fired; ruleset lacks a catch-all")

// Match runs the queries against db in rule order.
func Match(db *reldb.DB, queries []RuleQuery) (MatchResult, error) {
	for i, q := range queries {
		ok, err := db.QueryExists(q.SQL)
		if err != nil {
			return MatchResult{}, fmt.Errorf("sqlgen: rule %d: %w", i+1, err)
		}
		if ok {
			return MatchResult{Behavior: q.Behavior, RuleIndex: i, Prompt: q.Prompt}, nil
		}
	}
	return MatchResult{}, ErrNoRuleFired
}
