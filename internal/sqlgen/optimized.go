// Package sqlgen translates APPEL preferences into SQL queries: the
// paper's Section 5.3 (generic schema, Figure 11) and Section 5.4
// (optimized schema, Figure 15, with per-element subqueries for PURPOSE /
// RECIPIENT / CATEGORIES values merged into single subqueries over their
// parent's table).
//
// Each APPEL rule becomes one SELECT returning the rule's behavior; the
// FROM clause is the applicablePolicy() derived table produced by the
// reffile package, and the WHERE clause mirrors the rule body as nested
// correlated EXISTS subqueries. Rules are executed in order; the first
// query to return a row decides the outcome (package core drives that
// loop).
package sqlgen

import (
	"fmt"
	"strings"

	"p3pdb/internal/appel"
	"p3pdb/internal/reldb"
)

// RuleQuery is the translation of one APPEL rule.
type RuleQuery struct {
	// Behavior is the rule's behavior, returned when the query yields a
	// row.
	Behavior string
	// SQL is the translated query. For an empty-body (catch-all) rule it
	// selects the behavior for any applicable policy.
	SQL string
	// Prompt mirrors the rule's prompt attribute.
	Prompt bool
}

// FixedPolicySubquery returns an applicablePolicy() replacement that names
// a specific policy id directly, used when the caller has already resolved
// the reference file (the hybrid architecture of §4.2) or matches a policy
// by name.
func FixedPolicySubquery(policyID int) string {
	return fmt.Sprintf("SELECT %d AS policy_id", policyID)
}

// TranslateRulesetOptimized translates every rule of a preference against
// the optimized (Figure 14) schema. applicable is the applicablePolicy()
// subquery (reffile.ApplicablePolicySubquery or FixedPolicySubquery).
func TranslateRulesetOptimized(rs *appel.Ruleset, applicable string) ([]RuleQuery, error) {
	out := make([]RuleQuery, 0, len(rs.Rules))
	for i, r := range rs.Rules {
		q, err := TranslateRuleOptimized(r, applicable)
		if err != nil {
			return nil, fmt.Errorf("sqlgen: rule %d: %w", i+1, err)
		}
		out = append(out, q)
	}
	return out, nil
}

// TranslateRuleOptimized translates one APPEL rule into a SQL query over
// the optimized schema. This is the paper's main() function (Figure 11)
// adapted to the Figure 14 tables.
func TranslateRuleOptimized(r *appel.Rule, applicable string) (RuleQuery, error) {
	c := &optTranslator{}
	sql := "SELECT " + sqlString(r.Behavior) + " FROM (" + applicable + ") AS ApplicablePolicy"
	if len(r.Body) > 0 {
		conds := make([]string, 0, len(r.Body))
		for _, e := range r.Body {
			if e.Name != "POLICY" {
				return RuleQuery{}, fmt.Errorf("rule body must pattern over POLICY, got %s", e.Name)
			}
			cond, err := c.matchPolicy(e)
			if err != nil {
				return RuleQuery{}, err
			}
			conds = append(conds, cond)
		}
		body, err := combineConditions(r.EffectiveConnective(), conds)
		if err != nil {
			return RuleQuery{}, err
		}
		sql += " WHERE " + body
	}
	return RuleQuery{Behavior: r.Behavior, SQL: sql, Prompt: r.Prompt}, nil
}

// optTranslator carries the alias counter for one rule translation.
type optTranslator struct {
	n int
}

func (c *optTranslator) alias(prefix string) string {
	c.n++
	return fmt.Sprintf("%s%d", prefix, c.n)
}

// combineConditions joins already-built boolean conditions with an APPEL
// connective. Exact connectives cannot be expressed at this level (they
// constrain the policy's elements, not conditions) and are handled by the
// per-element translators; reaching here with one is an authoring error.
func combineConditions(connective string, conds []string) (string, error) {
	wrap := func(sep string) string {
		if len(conds) == 1 {
			return conds[0]
		}
		return "(" + strings.Join(conds, sep) + ")"
	}
	switch connective {
	case appel.ConnAnd:
		return wrap(" AND "), nil
	case appel.ConnOr:
		return wrap(" OR "), nil
	case appel.ConnNonAnd:
		return "NOT " + forceParens(wrap(" AND ")), nil
	case appel.ConnNonOr:
		return "NOT " + forceParens(wrap(" OR ")), nil
	case appel.ConnAndExact, appel.ConnOrExact:
		return "", fmt.Errorf("connective %s is only supported on value-list elements (PURPOSE, RECIPIENT, CATEGORIES, RETENTION)", connective)
	}
	return "", fmt.Errorf("unknown connective %q", connective)
}

func forceParens(s string) string {
	if strings.HasPrefix(s, "(") && strings.HasSuffix(s, ")") {
		return s
	}
	return "(" + s + ")"
}

func sqlString(s string) string {
	return "'" + strings.ReplaceAll(s, "'", "''") + "'"
}

// matchPolicy translates a POLICY expression: Figure 13 lines 5-8.
func (c *optTranslator) matchPolicy(e *appel.Expr) (string, error) {
	a := c.alias("p")
	var conds []string
	for _, attr := range e.Attrs {
		col, ok := map[string]string{"name": "name", "discuri": "discuri", "opturi": "opturi"}[attr.Name]
		if !ok {
			return "", fmt.Errorf("unsupported POLICY attribute %q", attr.Name)
		}
		if attr.Value != "*" {
			conds = append(conds, a+"."+col+" = "+sqlString(attr.Value))
		}
	}
	var kidConds []string
	for _, kid := range e.Children {
		switch kid.Name {
		case "STATEMENT":
			cond, err := c.matchStatement(kid, a)
			if err != nil {
				return "", err
			}
			kidConds = append(kidConds, cond)
		case "ACCESS":
			cond, err := c.valueColumnCond(kid, a+".access", "ACCESS")
			if err != nil {
				return "", err
			}
			kidConds = append(kidConds, cond)
		case "TEST":
			kidConds = append(kidConds, a+".test = 1")
		default:
			return "", fmt.Errorf("unsupported expression %s under POLICY", kid.Name)
		}
	}
	if len(kidConds) > 0 {
		combined, err := combineConditions(e.EffectiveConnective(), kidConds)
		if err != nil {
			return "", err
		}
		conds = append(conds, combined)
	}
	where := a + ".policy_id = ApplicablePolicy.policy_id"
	if len(conds) > 0 {
		where += " AND " + strings.Join(conds, " AND ")
	}
	return "EXISTS (SELECT * FROM Policy " + a + " WHERE " + where + ")", nil
}

// matchStatement translates a STATEMENT expression: Figure 13 lines 9-12.
func (c *optTranslator) matchStatement(e *appel.Expr, polAlias string) (string, error) {
	a := c.alias("s")
	var kidConds []string
	for _, kid := range e.Children {
		var cond string
		var err error
		switch kid.Name {
		case "PURPOSE":
			cond, err = c.valueListCond(kid, "Purpose", "purpose", a)
		case "RECIPIENT":
			cond, err = c.valueListCond(kid, "Recipient", "recipient", a)
		case "RETENTION":
			cond, err = c.retentionCond(kid, a)
		case "DATA-GROUP":
			cond, err = c.matchDataGroup(kid, a)
		case "CONSEQUENCE":
			cond = a + ".consequence IS NOT NULL"
		case "NON-IDENTIFIABLE":
			cond = a + ".non_identifiable = 1"
		default:
			err = fmt.Errorf("unsupported expression %s under STATEMENT", kid.Name)
		}
		if err != nil {
			return "", err
		}
		kidConds = append(kidConds, cond)
	}
	where := a + ".policy_id = " + polAlias + ".policy_id"
	if len(kidConds) > 0 {
		combined, err := combineConditions(e.EffectiveConnective(), kidConds)
		if err != nil {
			return "", err
		}
		where += " AND " + combined
	}
	return "EXISTS (SELECT * FROM Statement " + a + " WHERE " + where + ")", nil
}

// valueListCond translates PURPOSE and RECIPIENT expressions against the
// folded value tables of the optimized schema. This is where Figure 13's
// per-value subqueries merge into the single subquery of Figure 15, for
// every connective including the exact forms.
func (c *optTranslator) valueListCond(e *appel.Expr, table, valueCol, stmtAlias string) (string, error) {
	a := c.alias("u")
	join := a + ".policy_id = " + stmtAlias + ".policy_id AND " +
		a + ".statement_id = " + stmtAlias + ".statement_id"
	existsWhere := func(extra string) string {
		w := join
		if extra != "" {
			w += " AND " + extra
		}
		return "EXISTS (SELECT * FROM " + table + " " + a + " WHERE " + w + ")"
	}

	// Row predicate for each listed value subexpression.
	preds := make([]string, 0, len(e.Children))
	for _, kid := range e.Children {
		if len(kid.Children) > 0 {
			return "", fmt.Errorf("value element %s must not have subelements", kid.Name)
		}
		pred := a + "." + valueCol + " = " + sqlString(kid.Name)
		for _, attr := range kid.Attrs {
			if attr.Name != "required" {
				return "", fmt.Errorf("unsupported attribute %q on %s", attr.Name, kid.Name)
			}
			if attr.Value == "*" {
				continue
			}
			pred += " AND " + a + ".required = " + sqlString(attr.Value)
		}
		preds = append(preds, "("+pred+")")
	}
	disj := strings.Join(preds, " OR ")

	// An expression with no listed values just asserts the element's
	// existence.
	if len(preds) == 0 {
		return existsWhere(""), nil
	}

	switch e.EffectiveConnective() {
	case appel.ConnOr:
		return existsWhere("(" + disj + ")"), nil
	case appel.ConnAnd:
		all := make([]string, len(preds))
		for i, p := range preds {
			all[i] = existsWhere(p)
		}
		return "(" + strings.Join(all, " AND ") + ")", nil
	case appel.ConnNonOr:
		return "(" + existsWhere("") + " AND NOT " + existsWhere("("+disj+")") + ")", nil
	case appel.ConnNonAnd:
		all := make([]string, len(preds))
		for i, p := range preds {
			all[i] = existsWhere(p)
		}
		return "(" + existsWhere("") + " AND NOT (" + strings.Join(all, " AND ") + "))", nil
	case appel.ConnAndExact:
		all := make([]string, len(preds))
		for i, p := range preds {
			all[i] = existsWhere(p)
		}
		return "(" + strings.Join(all, " AND ") + " AND NOT " + existsWhere("NOT ("+disj+")") + ")", nil
	case appel.ConnOrExact:
		return "(" + existsWhere("("+disj+")") + " AND NOT " + existsWhere("NOT ("+disj+")") + ")", nil
	}
	return "", fmt.Errorf("unknown connective %q", e.Connective)
}

// retentionCond translates a RETENTION expression against the retention
// column folded into Statement (the second Figure 14 optimization). The
// single-valued column makes the exact connectives collapse: a statement
// has exactly one retention, so or-exact equals or and and-exact over more
// than one value is unsatisfiable.
func (c *optTranslator) retentionCond(e *appel.Expr, stmtAlias string) (string, error) {
	return c.valueColumnCond(e, stmtAlias+".retention", "RETENTION")
}

// valueColumnCond matches a value-list expression against a single-valued
// column (Statement.retention, Policy.access).
func (c *optTranslator) valueColumnCond(e *appel.Expr, col, what string) (string, error) {
	preds := make([]string, 0, len(e.Children))
	for _, kid := range e.Children {
		if len(kid.Children) > 0 || len(kid.Attrs) > 0 {
			return "", fmt.Errorf("%s value element %s must be empty", what, kid.Name)
		}
		preds = append(preds, col+" = "+sqlString(kid.Name))
	}
	if len(preds) == 0 {
		return col + " IS NOT NULL", nil
	}
	disj := "(" + strings.Join(preds, " OR ") + ")"
	conj := "(" + strings.Join(preds, " AND ") + ")"
	switch e.EffectiveConnective() {
	case appel.ConnOr, appel.ConnOrExact:
		return disj, nil
	case appel.ConnAnd, appel.ConnAndExact:
		return conj, nil
	case appel.ConnNonOr:
		return "(" + col + " IS NOT NULL AND NOT " + disj + ")", nil
	case appel.ConnNonAnd:
		return "(" + col + " IS NOT NULL AND NOT " + conj + ")", nil
	}
	return "", fmt.Errorf("unknown connective %q", e.Connective)
}

// matchDataGroup translates a DATA-GROUP expression.
func (c *optTranslator) matchDataGroup(e *appel.Expr, stmtAlias string) (string, error) {
	a := c.alias("g")
	var conds []string
	for _, attr := range e.Attrs {
		if attr.Name != "base" {
			return "", fmt.Errorf("unsupported DATA-GROUP attribute %q", attr.Name)
		}
		if attr.Value != "*" {
			conds = append(conds, a+".base = "+sqlString(attr.Value))
		}
	}
	var kidConds []string
	for _, kid := range e.Children {
		if kid.Name != "DATA" {
			return "", fmt.Errorf("unsupported expression %s under DATA-GROUP", kid.Name)
		}
		cond, err := c.matchData(kid, a)
		if err != nil {
			return "", err
		}
		kidConds = append(kidConds, cond)
	}
	if len(kidConds) > 0 {
		combined, err := combineConditions(e.EffectiveConnective(), kidConds)
		if err != nil {
			return "", err
		}
		conds = append(conds, combined)
	}
	where := a + ".policy_id = " + stmtAlias + ".policy_id AND " +
		a + ".statement_id = " + stmtAlias + ".statement_id"
	if len(conds) > 0 {
		where += " AND " + strings.Join(conds, " AND ")
	}
	return "EXISTS (SELECT * FROM Datagroup " + a + " WHERE " + where + ")", nil
}

// refCondition builds the hierarchical data-reference predicate: the
// pattern matches a stored (leaf-expanded) reference when they are equal
// or one is a dotted prefix of the other.
func refCondition(col, ref string) string {
	if ref == "*" {
		return ""
	}
	r := ref
	if !strings.HasPrefix(r, "#") {
		r = "#" + r
	}
	lit := sqlString(r)
	below := sqlString(reldb.EscapeLike(r) + ".%")
	return "(" + col + " = " + lit +
		" OR " + col + " LIKE " + below +
		" OR " + lit + " LIKE " + col + " || '.%')"
}

// matchData translates a DATA expression, including CATEGORIES
// subexpressions against the category rows folded into the Data table (the
// third Figure 14 optimization).
func (c *optTranslator) matchData(e *appel.Expr, dgAlias string) (string, error) {
	a := c.alias("d")
	var conds []string
	for _, attr := range e.Attrs {
		switch attr.Name {
		case "ref":
			if cond := refCondition(a+".ref", attr.Value); cond != "" {
				conds = append(conds, cond)
			}
		case "optional":
			if attr.Value == "*" {
				continue
			}
			v := "0"
			if strings.EqualFold(attr.Value, "yes") {
				v = "1"
			}
			conds = append(conds, a+".optional = "+v)
		default:
			return "", fmt.Errorf("unsupported DATA attribute %q", attr.Name)
		}
	}
	var kidConds []string
	for _, kid := range e.Children {
		if kid.Name != "CATEGORIES" {
			return "", fmt.Errorf("unsupported expression %s under DATA", kid.Name)
		}
		cond, err := c.categoriesCond(kid, a)
		if err != nil {
			return "", err
		}
		kidConds = append(kidConds, cond)
	}
	if len(kidConds) > 0 {
		combined, err := combineConditions(e.EffectiveConnective(), kidConds)
		if err != nil {
			return "", err
		}
		conds = append(conds, combined)
	}
	where := a + ".policy_id = " + dgAlias + ".policy_id AND " +
		a + ".statement_id = " + dgAlias + ".statement_id AND " +
		a + ".datagroup_id = " + dgAlias + ".datagroup_id"
	if len(conds) > 0 {
		where += " AND " + strings.Join(conds, " AND ")
	}
	return "EXISTS (SELECT * FROM Data " + a + " WHERE " + where + ")", nil
}

// categoriesCond translates a CATEGORIES expression against the category
// rows that share the parent DATA element's id.
func (c *optTranslator) categoriesCond(e *appel.Expr, dataAlias string) (string, error) {
	a := c.alias("c")
	join := a + ".policy_id = " + dataAlias + ".policy_id AND " +
		a + ".statement_id = " + dataAlias + ".statement_id AND " +
		a + ".datagroup_id = " + dataAlias + ".datagroup_id AND " +
		a + ".data_id = " + dataAlias + ".data_id"
	existsWhere := func(extra string) string {
		w := join
		if extra != "" {
			w += " AND " + extra
		}
		return "EXISTS (SELECT * FROM Data " + a + " WHERE " + w + ")"
	}
	preds := make([]string, 0, len(e.Children))
	for _, kid := range e.Children {
		if len(kid.Children) > 0 || len(kid.Attrs) > 0 {
			return "", fmt.Errorf("category value element %s must be empty", kid.Name)
		}
		preds = append(preds, "("+a+".category = "+sqlString(kid.Name)+")")
	}
	if len(preds) == 0 {
		return existsWhere(a + ".category <> ''"), nil
	}
	disj := strings.Join(preds, " OR ")
	switch e.EffectiveConnective() {
	case appel.ConnOr:
		return existsWhere("(" + disj + ")"), nil
	case appel.ConnAnd:
		all := make([]string, len(preds))
		for i, p := range preds {
			all[i] = existsWhere(p)
		}
		return "(" + strings.Join(all, " AND ") + ")", nil
	case appel.ConnNonOr:
		return "(" + existsWhere(a+".category <> ''") + " AND NOT " + existsWhere("("+disj+")") + ")", nil
	case appel.ConnNonAnd:
		all := make([]string, len(preds))
		for i, p := range preds {
			all[i] = existsWhere(p)
		}
		return "(" + existsWhere(a+".category <> ''") + " AND NOT (" + strings.Join(all, " AND ") + "))", nil
	case appel.ConnAndExact:
		all := make([]string, len(preds))
		for i, p := range preds {
			all[i] = existsWhere(p)
		}
		return "(" + strings.Join(all, " AND ") +
			" AND NOT " + existsWhere("NOT ("+disj+") AND "+a+".category <> ''") + ")", nil
	case appel.ConnOrExact:
		return "(" + existsWhere("("+disj+")") +
			" AND NOT " + existsWhere("NOT ("+disj+") AND "+a+".category <> ''") + ")", nil
	}
	return "", fmt.Errorf("unknown connective %q", e.Connective)
}
