package reffile

import "testing"

// FuzzParse checks the reference-file parser never panics and accepted
// files round-trip and resolve without panicking.
func FuzzParse(f *testing.F) {
	f.Add(metaXML)
	f.Add(`<META><POLICY-REFERENCES><POLICY-REF about="#p"><INCLUDE>/*</INCLUDE></POLICY-REF></POLICY-REFERENCES></META>`)
	f.Add(`<META/>`)
	f.Fuzz(func(t *testing.T, src string) {
		rf, err := Parse(src)
		if err != nil {
			return
		}
		back, err := Parse(rf.String())
		if err != nil {
			t.Fatalf("accepted file did not round trip: %v\n%s", err, rf.String())
		}
		if len(back.PolicyRefs) != len(rf.PolicyRefs) {
			t.Fatal("policy-ref count changed")
		}
		_ = rf.PolicyForURI("/some/path")
		_ = rf.PolicyForCookie("cookie")
	})
}
