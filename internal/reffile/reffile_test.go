package reffile

import (
	"testing"

	"p3pdb/internal/p3p"
	"p3pdb/internal/reldb"
	"p3pdb/internal/shred"
)

const metaXML = `<META xmlns="http://www.w3.org/2002/01/P3Pv1">
  <POLICY-REFERENCES>
    <POLICY-REF about="/P3P/Policies.xml#checkout">
      <INCLUDE>/checkout/*</INCLUDE>
      <INCLUDE>/cart*</INCLUDE>
      <COOKIE-INCLUDE name="session*"/>
    </POLICY-REF>
    <POLICY-REF about="/P3P/Policies.xml#general">
      <INCLUDE>/*</INCLUDE>
      <EXCLUDE>/private/*</EXCLUDE>
    </POLICY-REF>
  </POLICY-REFERENCES>
</META>`

func TestParse(t *testing.T) {
	rf, err := Parse(metaXML)
	if err != nil {
		t.Fatal(err)
	}
	if len(rf.PolicyRefs) != 2 {
		t.Fatalf("refs = %d", len(rf.PolicyRefs))
	}
	pr := rf.PolicyRefs[0]
	if pr.PolicyName() != "checkout" {
		t.Errorf("policy name = %q", pr.PolicyName())
	}
	if len(pr.Includes) != 2 || pr.Includes[1] != "/cart*" {
		t.Errorf("includes: %v", pr.Includes)
	}
	if len(pr.CookieIncludes) != 1 || pr.CookieIncludes[0] != "session*" {
		t.Errorf("cookie includes: %v", pr.CookieIncludes)
	}
}

func TestParseErrors(t *testing.T) {
	cases := []string{
		`<NOTMETA/>`,
		`<META/>`,
		`<META><POLICY-REFERENCES/></META>`,
		`<META><POLICY-REFERENCES><POLICY-REF><INCLUDE>/*</INCLUDE></POLICY-REF></POLICY-REFERENCES></META>`,
		`<META><POLICY-REFERENCES><POLICY-REF about="#a"/></POLICY-REFERENCES></META>`,
		`<META><POLICY-REFERENCES><POLICY-REF about="#a"><BOGUS/></POLICY-REF></POLICY-REFERENCES></META>`,
	}
	for _, c := range cases {
		if _, err := Parse(c); err == nil {
			t.Errorf("Parse(%.50q): expected error", c)
		}
	}
}

func TestRoundTrip(t *testing.T) {
	rf, err := Parse(metaXML)
	if err != nil {
		t.Fatal(err)
	}
	rf2, err := Parse(rf.String())
	if err != nil {
		t.Fatalf("reparse: %v\n%s", err, rf.String())
	}
	if len(rf2.PolicyRefs) != 2 || rf2.PolicyRefs[0].About != rf.PolicyRefs[0].About {
		t.Errorf("round trip: %+v", rf2.PolicyRefs)
	}
}

func TestPolicyForURI(t *testing.T) {
	rf, _ := Parse(metaXML)
	cases := []struct {
		uri  string
		want string // policy name or "" for none
	}{
		{"/checkout/pay", "checkout"},
		{"/cart", "checkout"},
		{"/cart/items", "checkout"},
		{"/index.html", "general"},
		{"/private/admin.html", ""},
		{"/books/123", "general"},
	}
	for _, c := range cases {
		pr := rf.PolicyForURI(c.uri)
		got := ""
		if pr != nil {
			got = pr.PolicyName()
		}
		if got != c.want {
			t.Errorf("PolicyForURI(%q) = %q, want %q", c.uri, got, c.want)
		}
	}
}

func TestPolicyForCookie(t *testing.T) {
	rf, _ := Parse(metaXML)
	if pr := rf.PolicyForCookie("session_abc"); pr == nil || pr.PolicyName() != "checkout" {
		t.Errorf("cookie session_abc: %v", pr)
	}
	if pr := rf.PolicyForCookie("tracking"); pr != nil {
		t.Errorf("cookie tracking should be uncovered, got %v", pr)
	}
}

func TestWildcardToLike(t *testing.T) {
	cases := map[string]string{
		"/checkout/*": "/checkout/%",
		"/a_b*":       "/a\\_b%",
		"/100%*":      "/100\\%%",
		`/back\slash`: `/back\\slash`,
	}
	for in, want := range cases {
		if got := WildcardToLike(in); got != want {
			t.Errorf("WildcardToLike(%q) = %q, want %q", in, got, want)
		}
	}
}

func TestWildcardLiteralUnderscore(t *testing.T) {
	rf := &RefFile{PolicyRefs: []*PolicyRef{{
		About:    "#p",
		Includes: []string{"/a_b/*"},
	}}}
	if rf.PolicyForURI("/a_b/x") == nil {
		t.Error("literal underscore should match itself")
	}
	if rf.PolicyForURI("/aXb/x") != nil {
		t.Error("underscore must not act as a wildcard")
	}
}

// storeFixture installs Volga-derived policies and the reference file into
// one database.
func storeFixture(t *testing.T) (*reldb.DB, *Store) {
	t.Helper()
	db := reldb.New()
	ps, err := shred.NewOptimized(db)
	if err != nil {
		t.Fatal(err)
	}
	for _, name := range []string{"checkout", "general"} {
		pol, err := p3p.ParsePolicy(p3p.VolgaPolicyXML)
		if err != nil {
			t.Fatal(err)
		}
		pol.Name = name
		if _, err := ps.InstallPolicy(pol); err != nil {
			t.Fatal(err)
		}
	}
	st, err := NewStore(db)
	if err != nil {
		t.Fatal(err)
	}
	rf, err := Parse(metaXML)
	if err != nil {
		t.Fatal(err)
	}
	if _, err := st.Install(rf, ps); err != nil {
		t.Fatal(err)
	}
	return db, st
}

func TestStoreResolveURI(t *testing.T) {
	_, st := storeFixture(t)
	cases := []struct {
		uri    string
		wantID int
		ok     bool
	}{
		{"/checkout/pay", 1, true},
		{"/index.html", 2, true},
		{"/private/x", 0, false},
	}
	for _, c := range cases {
		id, ok, err := st.ResolveURI(c.uri)
		if err != nil {
			t.Fatalf("ResolveURI(%q): %v", c.uri, err)
		}
		if ok != c.ok || id != c.wantID {
			t.Errorf("ResolveURI(%q) = %d, %v; want %d, %v", c.uri, id, ok, c.wantID, c.ok)
		}
	}
}

func TestStoreResolveCookie(t *testing.T) {
	_, st := storeFixture(t)
	id, ok, err := st.ResolveCookie("session_99")
	if err != nil || !ok || id != 1 {
		t.Errorf("ResolveCookie = %d %v %v", id, ok, err)
	}
	_, ok, err = st.ResolveCookie("tracker")
	if err != nil || ok {
		t.Errorf("uncovered cookie: %v %v", ok, err)
	}
}

func TestStoreFirstMatchWins(t *testing.T) {
	// Both refs include "/cart"; document order must decide.
	_, st := storeFixture(t)
	id, ok, err := st.ResolveURI("/cart")
	if err != nil || !ok || id != 1 {
		t.Errorf("first POLICY-REF should win: %d %v %v", id, ok, err)
	}
}

func TestInstallUnknownPolicy(t *testing.T) {
	db := reldb.New()
	ps, _ := shred.NewOptimized(db)
	st, _ := NewStore(db)
	rf, _ := Parse(metaXML)
	if _, err := st.Install(rf, ps); err == nil {
		t.Error("installing refs to missing policies should fail")
	}
}

func TestSubqueryText(t *testing.T) {
	q := ApplicablePolicySubquery("/a'b")
	if !contains(q, "'/a''b'") {
		t.Errorf("URI not escaped: %s", q)
	}
}

func contains(s, sub string) bool {
	return len(s) >= len(sub) && (func() bool {
		for i := 0; i+len(sub) <= len(s); i++ {
			if s[i:i+len(sub)] == sub {
				return true
			}
		}
		return false
	})()
}
