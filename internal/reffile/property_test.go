package reffile

import (
	"fmt"
	"math/rand"
	"testing"

	"p3pdb/internal/p3p"
	"p3pdb/internal/reldb"
	"p3pdb/internal/shred"
)

// TestStoreAgreesWithMemory cross-checks the two resolution paths — the
// in-memory wildcard matcher (the hybrid client's path) and the SQL
// applicablePolicy() subquery (the server path) — over randomized
// reference files and URIs.
func TestStoreAgreesWithMemory(t *testing.T) {
	r := rand.New(rand.NewSource(31))
	segments := []string{"shop", "cart", "account", "ads", "a_b", "img", "x"}
	randomPattern := func() string {
		n := 1 + r.Intn(3)
		p := ""
		for i := 0; i < n; i++ {
			p += "/" + segments[r.Intn(len(segments))]
		}
		switch r.Intn(3) {
		case 0:
			return p + "/*"
		case 1:
			return p + "*"
		default:
			return p
		}
	}
	randomURI := func() string {
		n := 1 + r.Intn(4)
		u := ""
		for i := 0; i < n; i++ {
			u += "/" + segments[r.Intn(len(segments))]
		}
		if r.Intn(2) == 0 {
			u += "/page.html"
		}
		return u
	}

	for round := 0; round < 20; round++ {
		// Build a random reference file over 3 policies.
		rf := &RefFile{}
		for p := 0; p < 3; p++ {
			pr := &PolicyRef{About: fmt.Sprintf("/P3P/Policies.xml#pol%d", p+1)}
			for i := 0; i <= r.Intn(3); i++ {
				pr.Includes = append(pr.Includes, randomPattern())
			}
			for i := 0; i < r.Intn(2); i++ {
				pr.Excludes = append(pr.Excludes, randomPattern())
			}
			rf.PolicyRefs = append(rf.PolicyRefs, pr)
		}

		db := reldb.New()
		ps, err := shred.NewOptimized(db)
		if err != nil {
			t.Fatal(err)
		}
		for p := 0; p < 3; p++ {
			pol, err := p3p.ParsePolicy(p3p.VolgaPolicyXML)
			if err != nil {
				t.Fatal(err)
			}
			pol.Name = fmt.Sprintf("pol%d", p+1)
			if _, err := ps.InstallPolicy(pol); err != nil {
				t.Fatal(err)
			}
		}
		store, err := NewStore(db)
		if err != nil {
			t.Fatal(err)
		}
		if _, err := store.Install(rf, ps); err != nil {
			t.Fatal(err)
		}

		for i := 0; i < 40; i++ {
			uri := randomURI()
			memRef := rf.PolicyForURI(uri)
			id, ok, err := store.ResolveURI(uri)
			if err != nil {
				t.Fatalf("round %d: ResolveURI(%q): %v", round, uri, err)
			}
			if (memRef != nil) != ok {
				t.Fatalf("round %d uri %q: memory=%v store-ok=%v\nref file:\n%s",
					round, uri, memRef, ok, rf.String())
			}
			if memRef != nil {
				wantID, err := ps.PolicyID(memRef.PolicyName())
				if err != nil {
					t.Fatal(err)
				}
				if id != wantID {
					t.Fatalf("round %d uri %q: memory picked %s(%d), store picked %d\nref file:\n%s",
						round, uri, memRef.PolicyName(), wantID, id, rf.String())
				}
			}
		}
	}
}
