// Package reffile implements the P3P reference file (Section 2.3 of the
// paper): the META document through which a site associates subsets of its
// URIs with specific privacy policies, via INCLUDE/EXCLUDE (and
// COOKIE-INCLUDE/COOKIE-EXCLUDE) wildcard patterns.
//
// The package provides parsing, direct in-memory URI resolution (used by
// the client side of the hybrid architecture the paper sketches in §4.2),
// relational storage per Figure 16, and generation of the
// applicablePolicy() subquery that the APPEL-to-SQL translation embeds.
package reffile

import (
	"fmt"
	"strings"

	"p3pdb/internal/reldb"
	"p3pdb/internal/xmldom"
)

// PolicyRef is one POLICY-REF element: a policy and the URI patterns it
// covers.
type PolicyRef struct {
	// About references the policy, e.g. "/P3P/Policies.xml#volga".
	About string
	// Includes and Excludes are local-URI wildcard patterns ('*' matches
	// any run of characters).
	Includes []string
	Excludes []string
	// CookieIncludes and CookieExcludes are cookie-name patterns.
	CookieIncludes []string
	CookieExcludes []string
}

// PolicyName returns the fragment of the About reference, which names the
// policy inside the site's policy file.
func (pr *PolicyRef) PolicyName() string {
	if i := strings.IndexByte(pr.About, '#'); i >= 0 {
		return pr.About[i+1:]
	}
	return pr.About
}

// RefFile is a parsed META document.
type RefFile struct {
	PolicyRefs []*PolicyRef
}

// Parse parses a reference file document.
func Parse(src string) (*RefFile, error) {
	root, err := xmldom.ParseString(src)
	if err != nil {
		return nil, err
	}
	return FromDOM(root)
}

// FromDOM converts a parsed META element into a RefFile.
func FromDOM(root *xmldom.Node) (*RefFile, error) {
	if root.Name != "META" {
		return nil, fmt.Errorf("reffile: expected META root, got %s", root.Name)
	}
	prs := root.Child("POLICY-REFERENCES")
	if prs == nil {
		return nil, fmt.Errorf("reffile: META without POLICY-REFERENCES")
	}
	rf := &RefFile{}
	for _, el := range prs.ChildrenNamed("POLICY-REF") {
		about, ok := el.Attr("about")
		if !ok || about == "" {
			return nil, fmt.Errorf("reffile: POLICY-REF without about attribute")
		}
		pr := &PolicyRef{About: about}
		for _, c := range el.Children {
			switch c.Name {
			case "INCLUDE":
				pr.Includes = append(pr.Includes, c.Text)
			case "EXCLUDE":
				pr.Excludes = append(pr.Excludes, c.Text)
			case "COOKIE-INCLUDE":
				pr.CookieIncludes = append(pr.CookieIncludes, c.AttrDefault("name", c.Text))
			case "COOKIE-EXCLUDE":
				pr.CookieExcludes = append(pr.CookieExcludes, c.AttrDefault("name", c.Text))
			default:
				return nil, fmt.Errorf("reffile: unexpected element %s in POLICY-REF", c.Name)
			}
		}
		if len(pr.Includes) == 0 && len(pr.CookieIncludes) == 0 {
			return nil, fmt.Errorf("reffile: POLICY-REF %s has no INCLUDE", about)
		}
		rf.PolicyRefs = append(rf.PolicyRefs, pr)
	}
	if len(rf.PolicyRefs) == 0 {
		return nil, fmt.Errorf("reffile: no POLICY-REF elements")
	}
	return rf, nil
}

// ToDOM renders the reference file back to a META element.
func (rf *RefFile) ToDOM() *xmldom.Node {
	const ns = "http://www.w3.org/2002/01/P3Pv1"
	prs := xmldom.NewNS(ns, "POLICY-REFERENCES")
	for _, pr := range rf.PolicyRefs {
		el := xmldom.NewNS(ns, "POLICY-REF").SetAttr("about", pr.About)
		for _, p := range pr.Includes {
			el.Add(xmldom.NewNS(ns, "INCLUDE").SetText(p))
		}
		for _, p := range pr.Excludes {
			el.Add(xmldom.NewNS(ns, "EXCLUDE").SetText(p))
		}
		for _, p := range pr.CookieIncludes {
			el.Add(xmldom.NewNS(ns, "COOKIE-INCLUDE").SetAttr("name", p))
		}
		for _, p := range pr.CookieExcludes {
			el.Add(xmldom.NewNS(ns, "COOKIE-EXCLUDE").SetAttr("name", p))
		}
		prs.Add(el)
	}
	return xmldom.NewNS(ns, "META").Add(prs)
}

// String renders the reference file as an XML document.
func (rf *RefFile) String() string { return rf.ToDOM().String() }

// wildcardMatch matches a URI against a '*' wildcard pattern.
func wildcardMatch(pattern, uri string) bool {
	// Reuse LIKE semantics by translating the pattern.
	return likeViaPattern(WildcardToLike(pattern), uri)
}

// WildcardToLike translates a P3P '*' wildcard pattern into a SQL LIKE
// pattern, escaping LIKE metacharacters in the literal parts.
func WildcardToLike(pattern string) string {
	var b strings.Builder
	for i := 0; i < len(pattern); i++ {
		c := pattern[i]
		switch c {
		case '*':
			b.WriteByte('%')
		case '%', '_', '\\':
			b.WriteByte('\\')
			b.WriteByte(c)
		default:
			b.WriteByte(c)
		}
	}
	return b.String()
}

// likeViaPattern applies a LIKE pattern outside the database (for the
// in-memory resolution path). Semantics match reldb's LIKE operator.
func likeViaPattern(pattern, s string) bool {
	// Minimal recursive matcher over %/_/escape, consistent with reldb.
	if pattern == "" {
		return s == ""
	}
	switch pattern[0] {
	case '%':
		for i := 0; i <= len(s); i++ {
			if likeViaPattern(pattern[1:], s[i:]) {
				return true
			}
		}
		return false
	case '_':
		return s != "" && likeViaPattern(pattern[1:], s[1:])
	case '\\':
		if len(pattern) >= 2 {
			return s != "" && s[0] == pattern[1] && likeViaPattern(pattern[2:], s[1:])
		}
		return s == "\\"
	default:
		return s != "" && s[0] == pattern[0] && likeViaPattern(pattern[1:], s[1:])
	}
}

// PolicyForURI resolves the policy covering a local URI: the first
// POLICY-REF (in document order) with a matching INCLUDE and no matching
// EXCLUDE wins. It returns the PolicyRef, or nil when no policy covers the
// URI.
func (rf *RefFile) PolicyForURI(uri string) *PolicyRef {
	for _, pr := range rf.PolicyRefs {
		included := false
		for _, p := range pr.Includes {
			if wildcardMatch(p, uri) {
				included = true
				break
			}
		}
		if !included {
			continue
		}
		excluded := false
		for _, p := range pr.Excludes {
			if wildcardMatch(p, uri) {
				excluded = true
				break
			}
		}
		if !excluded {
			return pr
		}
	}
	return nil
}

// PolicyForCookie resolves the policy covering a cookie by name.
func (rf *RefFile) PolicyForCookie(name string) *PolicyRef {
	for _, pr := range rf.PolicyRefs {
		included := false
		for _, p := range pr.CookieIncludes {
			if wildcardMatch(p, name) {
				included = true
				break
			}
		}
		if !included {
			continue
		}
		excluded := false
		for _, p := range pr.CookieExcludes {
			if wildcardMatch(p, name) {
				excluded = true
				break
			}
		}
		if !excluded {
			return pr
		}
	}
	return nil
}

// refDDL creates the Figure 16 tables. The Policyref table references the
// policy both by its about URI and by the policy_id resolved at install
// time against the policy store.
var refDDL = []string{
	`CREATE TABLE Meta (
		meta_id INTEGER NOT NULL,
		PRIMARY KEY (meta_id))`,
	`CREATE TABLE Policyref (
		meta_id INTEGER NOT NULL,
		policyref_id INTEGER NOT NULL,
		about VARCHAR(255) NOT NULL,
		policy_id INTEGER NOT NULL,
		PRIMARY KEY (meta_id, policyref_id))`,
	`CREATE TABLE Include (
		meta_id INTEGER NOT NULL,
		policyref_id INTEGER NOT NULL,
		include_id INTEGER NOT NULL,
		pattern VARCHAR(255) NOT NULL,
		PRIMARY KEY (meta_id, policyref_id, include_id))`,
	`CREATE INDEX ix_include_ref ON Include (meta_id, policyref_id)`,
	`CREATE TABLE Exclude (
		meta_id INTEGER NOT NULL,
		policyref_id INTEGER NOT NULL,
		exclude_id INTEGER NOT NULL,
		pattern VARCHAR(255) NOT NULL,
		PRIMARY KEY (meta_id, policyref_id, exclude_id))`,
	`CREATE INDEX ix_exclude_ref ON Exclude (meta_id, policyref_id)`,
	`CREATE TABLE Cookie_include (
		meta_id INTEGER NOT NULL,
		policyref_id INTEGER NOT NULL,
		cookie_include_id INTEGER NOT NULL,
		pattern VARCHAR(255) NOT NULL,
		PRIMARY KEY (meta_id, policyref_id, cookie_include_id))`,
	`CREATE TABLE Cookie_exclude (
		meta_id INTEGER NOT NULL,
		policyref_id INTEGER NOT NULL,
		cookie_exclude_id INTEGER NOT NULL,
		pattern VARCHAR(255) NOT NULL,
		PRIMARY KEY (meta_id, policyref_id, cookie_exclude_id))`,
}

// PolicyResolver maps a policy name (the fragment of a POLICY-REF's about
// URI) to its policy id in the policy store. Both shred stores implement
// it.
type PolicyResolver interface {
	PolicyID(name string) (int, error)
}

// Store holds reference files in the Figure 16 relational schema.
type Store struct {
	db     *reldb.DB
	nextID int
}

// NewStore creates the reference-file tables in db.
func NewStore(db *reldb.DB) (*Store, error) {
	for _, ddl := range refDDL {
		if _, err := db.Exec(ddl); err != nil {
			return nil, fmt.Errorf("reffile: creating schema: %w", err)
		}
	}
	return &Store{db: db, nextID: 1}, nil
}

// Install stores a reference file, resolving each POLICY-REF's policy name
// against the given resolver, and returns the meta id.
func (s *Store) Install(rf *RefFile, resolver PolicyResolver) (int, error) {
	metaID := s.nextID
	s.nextID++
	if _, err := s.db.Exec(`INSERT INTO Meta VALUES (?)`, reldb.Int(int64(metaID))); err != nil {
		return 0, err
	}
	for i, pr := range rf.PolicyRefs {
		policyID, err := resolver.PolicyID(pr.PolicyName())
		if err != nil {
			return 0, fmt.Errorf("reffile: POLICY-REF %s: %w", pr.About, err)
		}
		if _, err := s.db.Exec(`INSERT INTO Policyref VALUES (?, ?, ?, ?)`,
			reldb.Int(int64(metaID)), reldb.Int(int64(i+1)),
			reldb.Str(pr.About), reldb.Int(int64(policyID))); err != nil {
			return 0, err
		}
		insertPatterns := func(table string, patterns []string) error {
			for j, p := range patterns {
				if _, err := s.db.Exec(
					fmt.Sprintf(`INSERT INTO %s VALUES (?, ?, ?, ?)`, table),
					reldb.Int(int64(metaID)), reldb.Int(int64(i+1)),
					reldb.Int(int64(j+1)), reldb.Str(WildcardToLike(p))); err != nil {
					return err
				}
			}
			return nil
		}
		if err := insertPatterns("Include", pr.Includes); err != nil {
			return 0, err
		}
		if err := insertPatterns("Exclude", pr.Excludes); err != nil {
			return 0, err
		}
		if err := insertPatterns("Cookie_include", pr.CookieIncludes); err != nil {
			return 0, err
		}
		if err := insertPatterns("Cookie_exclude", pr.CookieExcludes); err != nil {
			return 0, err
		}
	}
	return metaID, nil
}

// sqlString quotes a string as a SQL literal.
func sqlString(s string) string {
	return "'" + strings.ReplaceAll(s, "'", "''") + "'"
}

// ApplicablePolicySubquery generates the applicablePolicy() subquery of the
// paper's translation algorithm (Figure 11, line 3): a SELECT over the
// reference-file tables returning the policy_id of the first POLICY-REF
// whose INCLUDE patterns cover the URI and whose EXCLUDE patterns do not.
// The caller embeds it as a derived table named ApplicablePolicy.
func ApplicablePolicySubquery(uri string) string {
	u := sqlString(uri)
	return `SELECT pr.policy_id AS policy_id FROM Policyref pr WHERE pr.policyref_id = (` +
		`SELECT MIN(pr2.policyref_id) FROM Policyref pr2 WHERE pr2.meta_id = pr.meta_id` +
		` AND EXISTS (SELECT * FROM Include i WHERE i.meta_id = pr2.meta_id AND i.policyref_id = pr2.policyref_id AND ` + u + ` LIKE i.pattern)` +
		` AND NOT EXISTS (SELECT * FROM Exclude e WHERE e.meta_id = pr2.meta_id AND e.policyref_id = pr2.policyref_id AND ` + u + ` LIKE e.pattern))`
}

// ApplicableCookiePolicySubquery is the cookie-policy variant, driven by
// COOKIE-INCLUDE/COOKIE-EXCLUDE patterns, used when checking compact-policy
// style cookie decisions server-side.
func ApplicableCookiePolicySubquery(cookieName string) string {
	u := sqlString(cookieName)
	return `SELECT pr.policy_id AS policy_id FROM Policyref pr WHERE pr.policyref_id = (` +
		`SELECT MIN(pr2.policyref_id) FROM Policyref pr2 WHERE pr2.meta_id = pr.meta_id` +
		` AND EXISTS (SELECT * FROM Cookie_include i WHERE i.meta_id = pr2.meta_id AND i.policyref_id = pr2.policyref_id AND ` + u + ` LIKE i.pattern)` +
		` AND NOT EXISTS (SELECT * FROM Cookie_exclude e WHERE e.meta_id = pr2.meta_id AND e.policyref_id = pr2.policyref_id AND ` + u + ` LIKE e.pattern))`
}

// ResolveURI runs the applicable-policy subquery against the store and
// returns the covering policy id, or (0, false) when no policy covers the
// URI.
func (s *Store) ResolveURI(uri string) (int, bool, error) {
	rows, err := s.db.Query(ApplicablePolicySubquery(uri))
	if err != nil {
		return 0, false, err
	}
	if len(rows.Data) == 0 {
		return 0, false, nil
	}
	n, _ := rows.Data[0][0].AsInt()
	return int(n), true, nil
}

// ResolveCookie is the cookie-name variant of ResolveURI.
func (s *Store) ResolveCookie(name string) (int, bool, error) {
	rows, err := s.db.Query(ApplicableCookiePolicySubquery(name))
	if err != nil {
		return 0, false, err
	}
	if len(rows.Data) == 0 {
		return 0, false, nil
	}
	n, _ := rows.Data[0][0].AsInt()
	return int(n), true, nil
}
