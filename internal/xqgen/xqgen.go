// Package xqgen translates APPEL preferences into XQuery: the paper's
// Section 5.6 (Figure 17). Each rule becomes
//
//	if (document("applicable-policy")[POLICY[...]]) then <behavior/> else ()
//
// where the condition mirrors the rule body: element names become child
// steps, attribute patterns become @attr comparisons inside predicates,
// and the APPEL connectives become and/or/not combinations (the exact
// connectives add a not(*[...]) test asserting the policy element contains
// only listed subelements).
package xqgen

import (
	"fmt"
	"strings"

	"p3pdb/internal/appel"
)

// ApplicableDocument is the document() name the generated queries
// reference; the matcher resolves it to the policy the reference file
// selected (see xmlstore.Resolver).
const ApplicableDocument = "applicable-policy"

// RuleQuery is the translation of one APPEL rule.
type RuleQuery struct {
	Behavior string
	XQuery   string
	Prompt   bool
}

// TranslateRuleset translates every rule of a preference.
func TranslateRuleset(rs *appel.Ruleset) ([]RuleQuery, error) {
	out := make([]RuleQuery, 0, len(rs.Rules))
	for i, r := range rs.Rules {
		q, err := TranslateRule(r)
		if err != nil {
			return nil, fmt.Errorf("xqgen: rule %d: %w", i+1, err)
		}
		out = append(out, q)
	}
	return out, nil
}

// TranslateRule translates one APPEL rule: the main() function of
// Figure 17.
func TranslateRule(r *appel.Rule) (RuleQuery, error) {
	cond := `document("` + ApplicableDocument + `")`
	if len(r.Body) > 0 {
		tests := make([]string, 0, len(r.Body))
		for _, e := range r.Body {
			t, err := match(e)
			if err != nil {
				return RuleQuery{}, err
			}
			tests = append(tests, t)
		}
		combined, err := combine(r.EffectiveConnective(), tests, nil)
		if err != nil {
			return RuleQuery{}, err
		}
		cond += "[" + combined + "]"
	}
	xq := "if (" + cond + ") then <" + r.Behavior + "/> else ()"
	return RuleQuery{Behavior: r.Behavior, XQuery: xq, Prompt: r.Prompt}, nil
}

// match translates one expression into a relative path test whose
// existence signals a match: Figure 17's match() function.
func match(e *appel.Expr) (string, error) {
	cond, err := condFor(e)
	if err != nil {
		return "", err
	}
	if cond == "" {
		return e.Name, nil
	}
	return e.Name + "[" + cond + "]", nil
}

// condFor builds the predicate for an expression: attribute comparisons
// conjoined with the connective combination of its subexpressions. The
// same form serves inside a name step and inside an exactness self-test.
func condFor(e *appel.Expr) (string, error) {
	var conds []string
	for _, a := range e.Attrs {
		if a.Value == "*" {
			// Wildcard values constrain nothing (required/optional have
			// defaults, so presence is guaranteed), matching the SQL
			// translators.
			continue
		}
		if e.Name == "DATA" && a.Name == "ref" {
			conds = append(conds, refTest(a.Value))
			continue
		}
		conds = append(conds, `@`+a.Name+` = "`+a.Value+`"`)
	}
	if len(e.Children) > 0 {
		tests := make([]string, 0, len(e.Children))
		for _, kid := range e.Children {
			t, err := match(kid)
			if err != nil {
				return "", err
			}
			tests = append(tests, t)
		}
		combined, err := combine(e.EffectiveConnective(), tests, e.Children)
		if err != nil {
			return "", err
		}
		conds = append(conds, combined)
	}
	return strings.Join(conds, " and "), nil
}

// refTest builds the hierarchical data-reference test over @ref.
func refTest(ref string) string {
	r := ref
	if !strings.HasPrefix(r, "#") {
		r = "#" + r
	}
	return `(@ref = "` + r + `" or starts-with(@ref, "` + r + `.") or starts-with("` + r + `", concat(@ref, ".")))`
}

// combine applies an APPEL connective to the element tests. For the exact
// forms, kids supplies the subexpressions so the not(*[...]) exactness
// test can be built from self:: checks.
func combine(connective string, tests []string, kids []*appel.Expr) (string, error) {
	paren := func(sep string) string {
		if len(tests) == 1 {
			return tests[0]
		}
		return "(" + strings.Join(tests, sep) + ")"
	}
	switch connective {
	case appel.ConnAnd:
		return paren(" and "), nil
	case appel.ConnOr:
		return paren(" or "), nil
	case appel.ConnNonAnd:
		return "not(" + strings.Join(tests, " and ") + ")", nil
	case appel.ConnNonOr:
		return "not(" + strings.Join(tests, " or ") + ")", nil
	case appel.ConnAndExact, appel.ConnOrExact:
		if kids == nil {
			return "", fmt.Errorf("connective %s not supported at the rule level", connective)
		}
		ex, err := exactTest(kids)
		if err != nil {
			return "", err
		}
		if connective == appel.ConnAndExact {
			return "(" + strings.Join(tests, " and ") + " and " + ex + ")", nil
		}
		return "(" + paren(" or ") + " and " + ex + ")", nil
	}
	return "", fmt.Errorf("unknown connective %q", connective)
}

// exactTest asserts that every child of the policy element matches one of
// the listed subexpressions: not(*[not(s1) and not(s2) ...]).
func exactTest(kids []*appel.Expr) (string, error) {
	neg := make([]string, 0, len(kids))
	for _, kid := range kids {
		st, err := selfTest(kid)
		if err != nil {
			return "", err
		}
		neg = append(neg, "not("+st+")")
	}
	return "not(*[" + strings.Join(neg, " and ") + "])", nil
}

// selfTest renders an expression as a test on the context element itself:
// self::name plus the expression's predicate.
func selfTest(e *appel.Expr) (string, error) {
	cond, err := condFor(e)
	if err != nil {
		return "", err
	}
	t := "self::" + e.Name
	if cond != "" {
		t = "(" + t + " and " + cond + ")"
	}
	return t, nil
}
