package xqgen

import (
	"strings"
	"testing"

	"p3pdb/internal/appel"
	"p3pdb/internal/appelengine"
	"p3pdb/internal/p3p"
	"p3pdb/internal/xmldom"
	"p3pdb/internal/xmlstore"
	"p3pdb/internal/xquery"
)

func mustRuleset(t testing.TB, src string) *appel.Ruleset {
	t.Helper()
	rs, err := appel.Parse(src)
	if err != nil {
		t.Fatal(err)
	}
	return rs
}

// augmentedStore stores the augmented policy under the applicable name,
// the way the server-side XML store is populated at install time.
func augmentedStore(t testing.TB, policyXML string) *xmlstore.Store {
	t.Helper()
	doc, err := xmldom.ParseString(policyXML)
	if err != nil {
		t.Fatal(err)
	}
	aug := appelengine.New().Augment(doc)
	s := xmlstore.New()
	s.Put(ApplicableDocument, aug)
	return s
}

// evalRules evaluates translated queries in order, returning the first
// fired behavior.
func evalRules(t testing.TB, store *xmlstore.Store, qs []RuleQuery) (string, int) {
	t.Helper()
	ev := xquery.NewEvaluator(store.Resolver(nil))
	for i, q := range qs {
		parsed, err := xquery.Parse(q.XQuery)
		if err != nil {
			t.Fatalf("generated query does not parse: %v\n%s", err, q.XQuery)
		}
		out, err := ev.Run(parsed)
		if err != nil {
			t.Fatalf("eval: %v\n%s", err, q.XQuery)
		}
		if out != "" {
			return out, i
		}
	}
	return "", -1
}

func TestFigure18Shape(t *testing.T) {
	rs := mustRuleset(t, appel.JaneSimplifiedRuleXML)
	q, err := TranslateRule(rs.Rules[0])
	if err != nil {
		t.Fatal(err)
	}
	for _, want := range []string{
		`if (document("applicable-policy")`,
		`POLICY[`,
		`STATEMENT[`,
		`PURPOSE[`,
		`admin`,
		`contact[@required = "always"]`,
		` or `,
		`then <block/>`,
	} {
		if !strings.Contains(q.XQuery, want) {
			t.Errorf("XQuery missing %q:\n%s", want, q.XQuery)
		}
	}
	if _, err := xquery.Parse(q.XQuery); err != nil {
		t.Errorf("generated query does not parse: %v\n%s", err, q.XQuery)
	}
}

func TestJaneAgainstVolga(t *testing.T) {
	rs := mustRuleset(t, appel.JanePreferenceXML)
	qs, err := TranslateRuleset(rs)
	if err != nil {
		t.Fatal(err)
	}
	store := augmentedStore(t, p3p.VolgaPolicyXML)
	behavior, idx := evalRules(t, store, qs)
	if behavior != "request" || idx != 2 {
		t.Errorf("got %q via rule %d, want request via rule 3", behavior, idx+1)
	}
}

func TestCounterfactual(t *testing.T) {
	modified := strings.Replace(p3p.VolgaPolicyXML,
		`<individual-decision required="opt-in"/>`, `<individual-decision/>`, 1)
	rs := mustRuleset(t, appel.JanePreferenceXML)
	qs, err := TranslateRuleset(rs)
	if err != nil {
		t.Fatal(err)
	}
	store := augmentedStore(t, modified)
	behavior, idx := evalRules(t, store, qs)
	if behavior != "block" || idx != 0 {
		t.Errorf("got %q via rule %d, want block via rule 1", behavior, idx+1)
	}
}

// agreeWithNative checks that the XQuery pipeline and the native APPEL
// engine reach the same decision for a given rule body and policy.
func agreeWithNative(t *testing.T, ruleBody, policyXML string) {
	t.Helper()
	rsDoc := `<appel:RULESET xmlns:appel="http://www.w3.org/2002/01/APPELv1">
		<appel:RULE behavior="block">` + ruleBody + `</appel:RULE>
		<appel:OTHERWISE behavior="request"/>
	</appel:RULESET>`
	rs := mustRuleset(t, rsDoc)

	native, err := appelengine.New().Match(rs, policyXML)
	if err != nil {
		t.Fatalf("native: %v", err)
	}
	qs, err := TranslateRuleset(rs)
	if err != nil {
		t.Fatalf("translate: %v", err)
	}
	store := augmentedStore(t, policyXML)
	behavior, _ := evalRules(t, store, qs)
	if behavior != native.Behavior {
		t.Errorf("disagreement: native=%s xquery=%s\nrule: %s", native.Behavior, behavior, ruleBody)
	}
}

const tinyPolicy = `<POLICY xmlns="http://www.w3.org/2002/01/P3Pv1" name="t">
  <STATEMENT>
    <PURPOSE><current/><admin required="opt-in"/></PURPOSE>
    <RECIPIENT><ours/></RECIPIENT>
    <RETENTION><stated-purpose/></RETENTION>
    <DATA-GROUP>
      <DATA ref="#user.home-info.online.email"/>
      <DATA ref="#dynamic.miscdata"><CATEGORIES><purchase/><financial/></CATEGORIES></DATA>
    </DATA-GROUP>
  </STATEMENT>
</POLICY>`

func TestConnectivesAgreeWithNative(t *testing.T) {
	rules := []string{
		`<POLICY><STATEMENT><PURPOSE appel:connective="or"><admin/><telemarketing/></PURPOSE></STATEMENT></POLICY>`,
		`<POLICY><STATEMENT><PURPOSE appel:connective="or"><admin required="always"/></PURPOSE></STATEMENT></POLICY>`,
		`<POLICY><STATEMENT><PURPOSE appel:connective="and"><current/><admin required="opt-in"/></PURPOSE></STATEMENT></POLICY>`,
		`<POLICY><STATEMENT><PURPOSE appel:connective="non-or"><telemarketing/></PURPOSE></STATEMENT></POLICY>`,
		`<POLICY><STATEMENT><PURPOSE appel:connective="non-and"><current/><telemarketing/></PURPOSE></STATEMENT></POLICY>`,
		`<POLICY><STATEMENT><PURPOSE appel:connective="and-exact"><current/><admin required="opt-in"/></PURPOSE></STATEMENT></POLICY>`,
		`<POLICY><STATEMENT><PURPOSE appel:connective="and-exact"><current/></PURPOSE></STATEMENT></POLICY>`,
		`<POLICY><STATEMENT><PURPOSE appel:connective="or-exact"><current/><admin required="*"/><contact/></PURPOSE></STATEMENT></POLICY>`,
		`<POLICY><STATEMENT><PURPOSE appel:connective="or-exact"><current/></PURPOSE></STATEMENT></POLICY>`,
		`<POLICY><STATEMENT><RECIPIENT appel:connective="non-or"><public/><unrelated/></RECIPIENT></STATEMENT></POLICY>`,
		`<POLICY><STATEMENT><RETENTION appel:connective="or"><stated-purpose/></RETENTION></STATEMENT></POLICY>`,
		`<POLICY><STATEMENT><RETENTION appel:connective="non-or"><indefinitely/></RETENTION></STATEMENT></POLICY>`,
		`<POLICY><STATEMENT><DATA-GROUP><DATA ref="#user.home-info"/></DATA-GROUP></STATEMENT></POLICY>`,
		`<POLICY><STATEMENT><DATA-GROUP><DATA ref="#user.bdate"/></DATA-GROUP></STATEMENT></POLICY>`,
		`<POLICY><STATEMENT><DATA-GROUP><DATA ref="*"><CATEGORIES appel:connective="or"><purchase/><health/></CATEGORIES></DATA></DATA-GROUP></STATEMENT></POLICY>`,
		`<POLICY><STATEMENT><DATA-GROUP><DATA ref="*"><CATEGORIES><purchase/><financial/></CATEGORIES></DATA></DATA-GROUP></STATEMENT></POLICY>`,
		`<POLICY><STATEMENT><DATA-GROUP><DATA ref="*"><CATEGORIES><purchase/><online/></CATEGORIES></DATA></DATA-GROUP></STATEMENT></POLICY>`,
		`<POLICY appel:connective="or"><STATEMENT><PURPOSE appel:connective="or"><telemarketing/></PURPOSE></STATEMENT><STATEMENT><RECIPIENT appel:connective="or"><ours/></RECIPIENT></STATEMENT></POLICY>`,
	}
	for i, rule := range rules {
		t.Run(strings.ReplaceAll(rule[:40], "/", "_"), func(t *testing.T) {
			agreeWithNative(t, rule, tinyPolicy)
			_ = i
		})
	}
}

func TestEmptyBodyRule(t *testing.T) {
	q, err := TranslateRule(&appel.Rule{Behavior: "request"})
	if err != nil {
		t.Fatal(err)
	}
	if !strings.Contains(q.XQuery, `if (document("applicable-policy")) then <request/>`) {
		t.Errorf("catch-all shape:\n%s", q.XQuery)
	}
	store := augmentedStore(t, tinyPolicy)
	behavior, _ := evalRules(t, store, []RuleQuery{q})
	if behavior != "request" {
		t.Errorf("catch-all should fire, got %q", behavior)
	}
}

func TestRuleLevelExactRejected(t *testing.T) {
	r := &appel.Rule{
		Behavior:   "block",
		Connective: appel.ConnAndExact,
		Body:       []*appel.Expr{{Name: "POLICY"}},
	}
	if _, err := TranslateRule(r); err == nil {
		t.Error("rule-level exact connective should be rejected")
	}
}
