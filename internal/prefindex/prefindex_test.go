package prefindex

import (
	"fmt"
	"testing"

	"p3pdb/internal/appelengine"
	"p3pdb/internal/faultkit"
	"p3pdb/internal/workload"
	"p3pdb/internal/xmldom"
)

const prefHeader = `<appel:RULESET xmlns:appel="http://www.w3.org/2002/04/APPELv1" xmlns:p3p="http://www.w3.org/2002/01/P3Pv1">`

func compileOne(t *testing.T, body string) *Pref {
	t.Helper()
	p, err := Compile("t", prefHeader+body+`</appel:RULESET>`, nil)
	if err != nil {
		t.Fatalf("Compile: %v", err)
	}
	return p
}

func TestCompileClassification(t *testing.T) {
	// Empty body: trivial (fires unconditionally).
	p := compileOne(t, `<appel:RULE behavior="request"></appel:RULE>`)
	if in, tr, re := p.RuleClasses(); in != 0 || tr != 1 || re != 0 {
		t.Fatalf("empty body: got indexed=%d trivial=%d residual=%d", in, tr, re)
	}
	// Negated rule-level connective: residual.
	p = compileOne(t, `<appel:RULE behavior="block" appel:connective="non-and"><p3p:POLICY><p3p:TELEMARKETING/></p3p:POLICY></appel:RULE>`)
	if in, tr, re := p.RuleClasses(); in != 0 || tr != 0 || re != 1 {
		t.Fatalf("non-and rule: got indexed=%d trivial=%d residual=%d", in, tr, re)
	}
	// Plain and rule: indexed.
	p = compileOne(t, `<appel:RULE behavior="block"><p3p:POLICY><p3p:STATEMENT><p3p:PURPOSE><p3p:telemarketing/></p3p:PURPOSE></p3p:STATEMENT></p3p:POLICY></appel:RULE>`)
	if in, tr, re := p.RuleClasses(); in != 1 || tr != 0 || re != 0 {
		t.Fatalf("and rule: got indexed=%d trivial=%d residual=%d", in, tr, re)
	}
}

func TestWitnessDescendsThroughAnd(t *testing.T) {
	// The and-chain should surface the selective leaf (telemarketing),
	// not the generic POLICY wrapper.
	p := compileOne(t, `<appel:RULE behavior="block"><p3p:POLICY><p3p:STATEMENT><p3p:PURPOSE><p3p:telemarketing/></p3p:PURPOSE></p3p:STATEMENT></p3p:POLICY></appel:RULE>`)
	terms := p.RuleTerms(0)
	if len(terms) != 1 || terms[0] != "n:telemarketing" {
		t.Fatalf("want [n:telemarketing], got %v", terms)
	}
}

func TestWitnessOrUnions(t *testing.T) {
	p := compileOne(t, `<appel:RULE behavior="block"><p3p:POLICY><p3p:STATEMENT><p3p:PURPOSE appel:connective="or"><p3p:telemarketing/><p3p:contact/></p3p:PURPOSE></p3p:STATEMENT></p3p:POLICY></appel:RULE>`)
	terms := p.RuleTerms(0)
	want := map[string]bool{"n:telemarketing": true, "n:contact": true}
	if len(terms) != 2 || !want[terms[0]] || !want[terms[1]] {
		t.Fatalf("want union of telemarketing+contact, got %v", terms)
	}
}

func TestWitnessNegatedConnectiveStopsDescent(t *testing.T) {
	// non-or children can be satisfied by absence; descent must stop at
	// the expression's own name.
	p := compileOne(t, `<appel:RULE behavior="block"><p3p:POLICY><p3p:STATEMENT appel:connective="non-or"><p3p:PURPOSE><p3p:telemarketing/></p3p:PURPOSE></p3p:STATEMENT></p3p:POLICY></appel:RULE>`)
	terms := p.RuleTerms(0)
	if len(terms) != 1 || (terms[0] != "n:STATEMENT" && terms[0] != "n:POLICY") {
		t.Fatalf("want a single generic wrapper term, got %v", terms)
	}
	for _, tm := range terms {
		if tm == "n:telemarketing" || tm == "n:PURPOSE" {
			t.Fatalf("descent crossed a negated connective: %v", terms)
		}
	}
}

func TestWitnessDataRefPrefixes(t *testing.T) {
	p := compileOne(t, `<appel:RULE behavior="block"><p3p:POLICY><p3p:STATEMENT><p3p:DATA-GROUP><p3p:DATA ref="#user.home-info.telecom"/></p3p:DATA-GROUP></p3p:STATEMENT></p3p:POLICY></appel:RULE>`)
	terms := p.RuleTerms(0)
	want := []string{"r:user", "r:user.home-info", "r:user.home-info.telecom"}
	if len(terms) != len(want) {
		t.Fatalf("want %v, got %v", want, terms)
	}
	for i, w := range want {
		if terms[i] != w {
			t.Fatalf("want %v, got %v", want, terms)
		}
	}
}

func TestSetWithReplacesInPlace(t *testing.T) {
	a1, _ := Compile("a", prefHeader+`<appel:RULE behavior="request"/></appel:RULESET>`, []string{"sql"})
	b, _ := Compile("b", prefHeader+`<appel:RULE behavior="request"/></appel:RULESET>`, []string{"sql"})
	a2, _ := Compile("a", prefHeader+`<appel:RULE behavior="block"/></appel:RULESET>`, []string{"native"})
	s := NewSet().With(a1).With(b)
	s2 := s.With(a2)
	if s2.Len() != 2 {
		t.Fatalf("replace grew set: len=%d", s2.Len())
	}
	prefs := s2.Prefs()
	if prefs[0].Name != "a" || prefs[1].Name != "b" {
		t.Fatalf("replacement lost registration order: %v, %v", prefs[0].Name, prefs[1].Name)
	}
	if got, _ := s2.Get("a"); got != a2 {
		t.Fatal("Get returned the stale pref after replacement")
	}
	// Immutability: the original set still holds a1.
	if got, _ := s.Get("a"); got != a1 {
		t.Fatal("With mutated its receiver")
	}
}

func TestSelectStaticAndNoRule(t *testing.T) {
	// Pref 1: only an OTHERWISE rule — static everywhere.
	// Pref 2: one indexed rule on an element no policy has — NoRule.
	p1, _ := Compile("otherwise", prefHeader+`<appel:RULE behavior="request"/></appel:RULESET>`, nil)
	p2, _ := Compile("miss", prefHeader+`<appel:RULE behavior="block"><p3p:POLICY><p3p:no-such-element/></p3p:POLICY></appel:RULE></appel:RULESET>`, nil)
	s := NewSet().With(p1).With(p2)
	sels := s.Select(map[string]struct{}{"n:POLICY": {}})
	if len(sels) != 2 {
		t.Fatalf("want 2 selections, got %d", len(sels))
	}
	if !sels[0].Static || sels[0].StaticIndex != 0 {
		t.Fatalf("otherwise pref not static: %+v", sels[0])
	}
	if !sels[1].NoRule {
		t.Fatalf("unmatchable pref not NoRule: %+v", sels[1])
	}
}

func TestSelectFaultForcesResidual(t *testing.T) {
	faultkit.Reset()
	defer faultkit.Reset()
	if err := faultkit.Enable(faultkit.PointPrefindexSelect + ":error"); err != nil {
		t.Fatalf("Enable: %v", err)
	}
	p, _ := Compile("miss", prefHeader+`<appel:RULE behavior="block"><p3p:POLICY><p3p:no-such-element/></p3p:POLICY></appel:RULE></appel:RULESET>`, nil)
	sels := NewSet().With(p).Select(map[string]struct{}{})
	if !sels[0].Residual || sels[0].Selected != 1 || sels[0].NoRule || sels[0].Static {
		t.Fatalf("armed prefindex.select did not force residual mode: %+v", sels[0])
	}
}

// TestSelectionSoundness is the core invariant: for every workload
// preference against every workload policy, the rule the exhaustive
// APPEL engine fires must be selected by the index (over-selection is
// fine, under-selection never), and NoRule must imply ErrNoRuleFired.
func TestSelectionSoundness(t *testing.T) {
	ds := workload.Generate(1)
	eng := appelengine.New()
	set := NewSet()
	var prefs []workload.Preference
	prefs = append(prefs, ds.Preferences...)
	for i, wp := range prefs {
		p, err := Compile(fmt.Sprintf("p%d", i), wp.XML, nil)
		if err != nil {
			t.Fatalf("Compile %s: %v", wp.Level, err)
		}
		set = set.With(p)
	}
	for name, xml := range ds.PolicyXML {
		root, err := xmldom.ParseString(xml)
		if err != nil {
			t.Fatalf("parse %s: %v", name, err)
		}
		terms := PolicyTerms(eng.Augment(root))
		sels := set.Select(terms)
		for i, sel := range sels {
			dec, err := eng.Match(sel.Pref.Rules, xml)
			if err != nil {
				if err == appelengine.ErrNoRuleFired {
					continue // NoRule or not, nothing fires: nothing to check
				}
				t.Fatalf("engine %s vs %s: %v", prefs[i].Level, name, err)
			}
			if sel.NoRule {
				t.Fatalf("under-selection: %s vs %s fired rule %d but index said NoRule",
					prefs[i].Level, name, dec.RuleIndex)
			}
			if !sel.Mask[dec.RuleIndex] {
				t.Fatalf("under-selection: %s vs %s fired rule %d, unselected (mask %v)",
					prefs[i].Level, name, dec.RuleIndex, sel.Mask)
			}
			// A static decision must agree with the engine exactly.
			if sel.Static {
				r := sel.Pref.Rules.Rules[sel.StaticIndex]
				if dec.RuleIndex != sel.StaticIndex || dec.Behavior != r.Behavior {
					t.Fatalf("static mismatch: %s vs %s static=%d/%s engine=%d/%s",
						prefs[i].Level, name, sel.StaticIndex, r.Behavior, dec.RuleIndex, dec.Behavior)
				}
			}
		}
	}
}

// TestSelectionSoundnessMaskedEval goes one step further: evaluating
// only the selected rules (as the pre-warm pass does) must reproduce the
// exhaustive decision byte for byte.
func TestSelectionSoundnessMaskedEval(t *testing.T) {
	ds := workload.Generate(2)
	eng := appelengine.New()
	for pi, wp := range ds.Preferences {
		p, err := Compile(fmt.Sprintf("p%d", pi), wp.XML, nil)
		if err != nil {
			t.Fatalf("Compile: %v", err)
		}
		set := NewSet().With(p)
		for name, xml := range ds.PolicyXML {
			root, err := xmldom.ParseString(xml)
			if err != nil {
				t.Fatalf("parse %s: %v", name, err)
			}
			sel := set.Select(PolicyTerms(eng.Augment(root)))[0]
			fullDec, fullErr := eng.Match(p.Rules, xml)
			if sel.NoRule {
				if fullErr != appelengine.ErrNoRuleFired {
					t.Fatalf("%s vs %s: NoRule but engine said %v %v", wp.Level, name, fullDec, fullErr)
				}
				continue
			}
			// Build the masked sub-ruleset and remap indices.
			sub := *p.Rules
			sub.Rules = nil
			var remap []int
			for ri, on := range sel.Mask {
				if on {
					sub.Rules = append(sub.Rules, p.Rules.Rules[ri])
					remap = append(remap, ri)
				}
			}
			maskDec, maskErr := eng.Match(&sub, xml)
			if (fullErr == nil) != (maskErr == nil) {
				t.Fatalf("%s vs %s: full err=%v masked err=%v", wp.Level, name, fullErr, maskErr)
			}
			if fullErr != nil {
				continue
			}
			if remap[maskDec.RuleIndex] != fullDec.RuleIndex ||
				maskDec.Behavior != fullDec.Behavior || maskDec.Prompt != fullDec.Prompt {
				t.Fatalf("%s vs %s: masked decision %+v (remapped %d) != full %+v",
					wp.Level, name, maskDec, remap[maskDec.RuleIndex], fullDec)
			}
		}
	}
}
