// Package prefindex maintains a predicate index over registered APPEL
// preference rulesets: the inverse of the paper's per-request matching.
// At millions of resident users the scalable direction is pub/sub-style
// enforcement (the FGAC observation): index the *preferences*, so one
// policy write selects the few rulesets it can possibly affect and
// evaluates only those, instead of every visitor re-faulting through the
// full engine after the snapshot swap.
//
// The index is built on *witness terms*: normalized predicates extracted
// from each rule that are necessary conditions for the rule to fire.
// Two term kinds exist:
//
//	n:<element>  some policy element with this name must exist
//	r:<prefix>   some DATA ref with this dotted prefix must exist
//
// Soundness rests on the APPEL evaluation order (appelengine): an
// expression matches a policy element only if the element names are
// equal, before any attribute or connective is consulted. Element-name
// presence is therefore a sound necessary condition for every
// expression, whatever its children do. Terms are refined by descending
// through the connectives that preserve necessity:
//
//   - and / and-exact: every child must be found, so any single child's
//     witness is necessary — the most selective one is chosen.
//   - or / or-exact: some child must be found, so the union of the
//     children's witnesses is necessary.
//   - non-and / non-or: a child's absence can satisfy the pattern, so
//     descent stops at the expression's own name term (still necessary:
//     the expression itself must match an element of that name).
//
// Rules outside the indexable fragment fall into conservative buckets:
// a rule whose *rule-level* connective is negated (non-and/non-or) can
// fire against a policy containing none of its terms, so it lands in the
// always-evaluate residual bucket; a rule with an empty body (the
// OTHERWISE shape) fires unconditionally and is classified trivial,
// which lets selection decide it statically. Over-selection is allowed
// and harmless — a selected rule that cannot fire just evaluates to
// false — under-selection never happens, which the differential tests
// assert against the exhaustive evaluator.
package prefindex

import (
	"fmt"
	"strings"

	"p3pdb/internal/appel"
	"p3pdb/internal/faultkit"
	"p3pdb/internal/xmldom"
)

// ruleClass classifies one rule for selection.
type ruleClass int

const (
	// classIndexed rules carry witness terms and are selected only when
	// a policy term hits one of them.
	classIndexed ruleClass = iota
	// classTrivial rules have empty bodies and fire unconditionally.
	classTrivial
	// classResidual rules sit outside the indexable fragment (negated
	// rule-level connective) and are always evaluated.
	classResidual
)

// compiledRule is one rule's index material.
type compiledRule struct {
	class ruleClass
	terms []string
}

// Pref is one registered preference ruleset with its compiled index
// material. Prefs are immutable after Compile; Set shares them across
// copies.
type Pref struct {
	// Name is the registration name (unique per site).
	Name string
	// XML is the registered APPEL document, verbatim — it is the
	// decision-cache key text, so it is never re-rendered.
	XML string
	// Rules is the parsed ruleset.
	Rules *appel.Ruleset
	// Engines lists the engine short names ("sql", "native", ...) the
	// pre-warm pass evaluates this preference under.
	Engines []string

	compiled []compiledRule
}

// Compile parses, validates, and indexes one preference ruleset.
// Engine names are recorded verbatim; the caller validates them against
// its engine registry (prefindex has no engine dependency by design).
func Compile(name, xml string, engines []string) (*Pref, error) {
	if name == "" {
		return nil, fmt.Errorf("prefindex: preference name must not be empty")
	}
	rs, err := appel.Parse(xml)
	if err != nil {
		return nil, err
	}
	if err := rs.Validate(); err != nil {
		return nil, err
	}
	p := &Pref{Name: name, XML: xml, Rules: rs, Engines: engines, compiled: make([]compiledRule, len(rs.Rules))}
	for i, r := range rs.Rules {
		p.compiled[i] = compileRule(r)
	}
	return p, nil
}

// RuleClasses reports, for tests and metrics, how many rules fell into
// each bucket: indexed, trivial, residual.
func (p *Pref) RuleClasses() (indexed, trivial, residual int) {
	for _, c := range p.compiled {
		switch c.class {
		case classIndexed:
			indexed++
		case classTrivial:
			trivial++
		case classResidual:
			residual++
		}
	}
	return
}

// RuleTerms exposes one rule's witness terms, for tests.
func (p *Pref) RuleTerms(i int) []string { return p.compiled[i].terms }

// compileRule extracts one rule's class and witness terms.
func compileRule(r *appel.Rule) compiledRule {
	if len(r.Body) == 0 {
		return compiledRule{class: classTrivial}
	}
	switch r.EffectiveConnective() {
	case appel.ConnNonAnd, appel.ConnNonOr:
		// The rule can fire against a policy containing none of its
		// elements (absence satisfies it): residual bucket.
		return compiledRule{class: classResidual}
	case appel.ConnOr, appel.ConnOrExact:
		// Some body expression must match: the union of their witnesses
		// is necessary.
		var union []string
		for _, e := range r.Body {
			w, _ := witness(e)
			union = append(union, w...)
		}
		return compiledRule{class: classIndexed, terms: dedupe(union)}
	default: // and, and-exact
		// Every body expression must match: any single one's witness is
		// necessary; take the most selective.
		best, bestScore := []string(nil), -1
		for _, e := range r.Body {
			w, score := witness(e)
			if score > bestScore || (score == bestScore && len(w) < len(best)) {
				best, bestScore = w, score
			}
		}
		return compiledRule{class: classIndexed, terms: dedupe(best)}
	}
}

// genericNames are element names that appear in essentially every P3P
// policy; a witness consisting of one is valid but unselective, so the
// descent prefers deeper terms when the connectives allow it.
var genericNames = map[string]bool{
	"POLICY": true, "STATEMENT": true, "ENTITY": true, "ACCESS": true,
	"PURPOSE": true, "RECIPIENT": true, "RETENTION": true,
	"DATA-GROUP": true, "DATA": true, "CATEGORIES": true,
	"CONSEQUENCE": true, "DISPUTES-GROUP": true, "DISPUTES": true,
}

// witness returns a sound witness-term set for one expression and its
// selectivity score (higher is more selective; a set is only as
// selective as its weakest term, since selection fires on any hit).
func witness(e *appel.Expr) ([]string, int) {
	own, ownScore := ownTerms(e)
	if len(e.Children) == 0 {
		return own, ownScore
	}
	switch e.EffectiveConnective() {
	case appel.ConnAnd, appel.ConnAndExact:
		// All children must be found; the best single witness among the
		// expression's own terms and each child's wins.
		best, bestScore := own, ownScore
		for _, c := range e.Children {
			w, score := witness(c)
			if score > bestScore || (score == bestScore && len(w) < len(best)) {
				best, bestScore = w, score
			}
		}
		return best, bestScore
	case appel.ConnOr, appel.ConnOrExact:
		// Some child must be found: the union of child witnesses is
		// necessary. Use it only if it beats the expression's own name.
		var union []string
		unionScore := -1
		for _, c := range e.Children {
			w, score := witness(c)
			union = append(union, w...)
			if unionScore < 0 || score < unionScore {
				unionScore = score
			}
		}
		if unionScore > ownScore {
			return union, unionScore
		}
		return own, ownScore
	default: // non-and, non-or: children's absence can satisfy the pattern
		return own, ownScore
	}
}

// ownTerms is the expression's own witness: its element name, refined to
// dotted-prefix ref terms for concrete DATA references.
func ownTerms(e *appel.Expr) ([]string, int) {
	if e.Name == "DATA" {
		if ref, ok := e.Attr("ref"); ok && ref != "" && ref != "*" {
			return refTerms(ref), 3
		}
	}
	if genericNames[e.Name] {
		return []string{"n:" + e.Name}, 1
	}
	return []string{"n:" + e.Name}, 2
}

// refTerms expands a data reference into every dotted prefix, matching
// the bidirectional prefix semantics of APPEL's hierarchical ref match:
// pattern and policy refs match iff they share their full shorter chain,
// so emitting all prefixes on both sides guarantees an index hit
// whenever refMatches would succeed.
func refTerms(ref string) []string {
	bare := strings.TrimPrefix(ref, "#")
	var out []string
	for i := 0; i < len(bare); i++ {
		if bare[i] == '.' {
			out = append(out, "r:"+bare[:i])
		}
	}
	return append(out, "r:"+bare)
}

func dedupe(terms []string) []string {
	if len(terms) < 2 {
		return terms
	}
	seen := make(map[string]bool, len(terms))
	out := terms[:0]
	for _, t := range terms {
		if !seen[t] {
			seen[t] = true
			out = append(out, t)
		}
	}
	return out
}

// ruleRef addresses one rule of one preference in the postings lists.
type ruleRef struct {
	pref int // index into Set.order
	rule int
}

// Set is an immutable collection of registered preferences plus the
// inverted term index over them. Copy-on-write: With returns a new Set
// sharing every untouched Pref, so a published site snapshot can hold a
// Set the way it holds any other immutable backend.
type Set struct {
	prefs map[string]*Pref
	order []string
	// postings maps each witness term to the (pref, rule) pairs it
	// selects; alwaysOn holds every trivial and residual rule.
	postings map[string][]ruleRef
	alwaysOn []ruleRef
}

// NewSet returns an empty set.
func NewSet() *Set {
	return &Set{prefs: map[string]*Pref{}, postings: map[string][]ruleRef{}}
}

// Len reports the number of registered preferences.
func (s *Set) Len() int {
	if s == nil {
		return 0
	}
	return len(s.order)
}

// Get returns the named preference.
func (s *Set) Get(name string) (*Pref, bool) {
	if s == nil {
		return nil, false
	}
	p, ok := s.prefs[name]
	return p, ok
}

// Prefs lists the registered preferences in registration order.
func (s *Set) Prefs() []*Pref {
	if s == nil {
		return nil
	}
	out := make([]*Pref, len(s.order))
	for i, name := range s.order {
		out[i] = s.prefs[name]
	}
	return out
}

// With returns a new Set with p registered, replacing any previous
// registration under the same name (which keeps its position in the
// registration order). The receiver is never mutated.
func (s *Set) With(p *Pref) *Set {
	next := &Set{prefs: make(map[string]*Pref, len(s.prefs)+1)}
	for n, old := range s.prefs {
		next.prefs[n] = old
	}
	if _, exists := next.prefs[p.Name]; exists {
		next.order = append([]string(nil), s.order...)
	} else {
		next.order = append(append([]string(nil), s.order...), p.Name)
	}
	next.prefs[p.Name] = p
	next.reindex()
	return next
}

// reindex rebuilds the postings lists. Registration is the cold
// administrative path; O(total rules) per registration is fine.
func (s *Set) reindex() {
	s.postings = map[string][]ruleRef{}
	s.alwaysOn = nil
	for pi, name := range s.order {
		p := s.prefs[name]
		for ri, c := range p.compiled {
			if c.class == classIndexed {
				for _, t := range c.terms {
					s.postings[t] = append(s.postings[t], ruleRef{pref: pi, rule: ri})
				}
				continue
			}
			s.alwaysOn = append(s.alwaysOn, ruleRef{pref: pi, rule: ri})
		}
	}
}

// Selection is one preference's evaluation plan against one policy.
type Selection struct {
	// Pref is the preference this plan covers.
	Pref *Pref
	// Mask marks the rules that must be evaluated, aligned with
	// Pref.Rules.Rules. Unmasked rules provably cannot fire.
	Mask []bool
	// Selected counts the masked rules.
	Selected int
	// Static reports that the first masked rule is trivial (fires
	// unconditionally): since every earlier rule provably cannot fire,
	// the decision is known without running an engine. StaticIndex is
	// that rule's index.
	Static      bool
	StaticIndex int
	// NoRule reports that no rule was selected at all: every rule
	// provably cannot fire, so evaluation would return the engines'
	// no-rule-fired error — there is nothing to warm.
	NoRule bool
	// Residual reports the selection was forced exhaustive (the armed
	// prefindex.select fault): every rule is masked, so evaluation
	// degenerates to the full re-match it replaces.
	Residual bool
}

// Select builds one evaluation plan per registered preference (in
// registration order) against a policy described by its term set. An
// armed prefindex.select fault does not fail the publish: it forces
// residual-bucket mode — every rule of every preference selected — the
// drill that proves index bypass changes cost, never decisions.
func (s *Set) Select(policyTerms map[string]struct{}) []Selection {
	if s == nil || len(s.order) == 0 {
		return nil
	}
	out := make([]Selection, len(s.order))
	for i, name := range s.order {
		p := s.prefs[name]
		out[i] = Selection{Pref: p, Mask: make([]bool, len(p.compiled))}
	}
	if faultkit.Inject(faultkit.PointPrefindexSelect) != nil {
		for i := range out {
			for ri := range out[i].Mask {
				out[i].Mask[ri] = true
			}
			out[i].Selected = len(out[i].Mask)
			out[i].Residual = true
		}
		return out
	}
	mark := func(ref ruleRef) {
		sel := &out[ref.pref]
		if !sel.Mask[ref.rule] {
			sel.Mask[ref.rule] = true
			sel.Selected++
		}
	}
	for _, ref := range s.alwaysOn {
		mark(ref)
	}
	for t := range policyTerms {
		for _, ref := range s.postings[t] {
			mark(ref)
		}
	}
	for i := range out {
		sel := &out[i]
		first := -1
		for ri, on := range sel.Mask {
			if on {
				first = ri
				break
			}
		}
		if first < 0 {
			sel.NoRule = true
			continue
		}
		if sel.Pref.compiled[first].class == classTrivial {
			sel.Static, sel.StaticIndex = true, first
		}
	}
	return out
}

// PolicyTerms extracts the witness-term universe of one policy from its
// augmented DOM (the document APPEL matching is defined over, P3P 1.0
// §5.4.6 — category elements only exist post-augmentation): every
// element name, plus every dotted prefix of every DATA ref.
func PolicyTerms(augmented *xmldom.Node) map[string]struct{} {
	terms := map[string]struct{}{}
	augmented.Walk(func(n *xmldom.Node) bool {
		terms["n:"+n.Name] = struct{}{}
		if n.Name == "DATA" {
			if ref, ok := n.Attr("ref"); ok {
				for _, t := range refTerms(ref) {
					terms[t] = struct{}{}
				}
			}
		}
		return true
	})
	return terms
}
