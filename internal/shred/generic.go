package shred

import (
	"fmt"
	"strings"

	"p3pdb/internal/p3p"
	"p3pdb/internal/p3p/basedata"
	"p3pdb/internal/reldb"
)

// GenericTable describes one table of the generic (Figure 8) schema: one
// table per element defined in the P3P policy vocabulary, whose columns are
// an id, the primary-key columns of the parent chain (the foreign key), and
// one column per attribute. The primary key is the id concatenated with
// the foreign key, exactly as the decomposition algorithm prescribes.
type GenericTable struct {
	element string   // XML element name, e.g. "individual-decision"
	parents []string // element names, immediate parent first
	attrs   []string // attribute names
	hasText bool     // element carries character data (CONSEQUENCE)
}

// Ident converts an XML element or attribute name into a SQL identifier.
func Ident(name string) string {
	return strings.ToLower(strings.ReplaceAll(name, "-", "_"))
}

// idCol returns the id column name for an element.
func idCol(element string) string { return Ident(element) + "_id" }

// genericRegistry enumerates the matching-relevant subset of the P3P
// vocabulary: the POLICY attributes plus the full STATEMENT subtree. The
// ENTITY/ACCESS/DISPUTES branches are not patterned over by any preference
// in the JRC suite the paper uses, and the Figure 8 algorithm assumes
// tree-unique element names, which DATA-GROUP under ENTITY would violate;
// see DESIGN.md "Known deviations".
func genericRegistry() []GenericTable {
	reg := []GenericTable{
		{element: "POLICY", attrs: []string{"name", "discuri", "opturi"}},
		{element: "STATEMENT", parents: []string{"POLICY"}},
		{element: "CONSEQUENCE", parents: []string{"STATEMENT", "POLICY"}, hasText: true},
		{element: "NON-IDENTIFIABLE", parents: []string{"STATEMENT", "POLICY"}},
		{element: "PURPOSE", parents: []string{"STATEMENT", "POLICY"}},
		{element: "RECIPIENT", parents: []string{"STATEMENT", "POLICY"}},
		{element: "RETENTION", parents: []string{"STATEMENT", "POLICY"}},
		{element: "DATA-GROUP", parents: []string{"STATEMENT", "POLICY"}, attrs: []string{"base"}},
		{element: "DATA", parents: []string{"DATA-GROUP", "STATEMENT", "POLICY"}, attrs: []string{"ref", "optional"}},
		{element: "CATEGORIES", parents: []string{"DATA", "DATA-GROUP", "STATEMENT", "POLICY"}},
	}
	for _, v := range p3p.Purposes {
		reg = append(reg, GenericTable{element: v, parents: []string{"PURPOSE", "STATEMENT", "POLICY"}, attrs: []string{"required"}})
	}
	for _, v := range p3p.Recipients {
		reg = append(reg, GenericTable{element: v, parents: []string{"RECIPIENT", "STATEMENT", "POLICY"}, attrs: []string{"required"}})
	}
	for _, v := range p3p.Retentions {
		reg = append(reg, GenericTable{element: v, parents: []string{"RETENTION", "STATEMENT", "POLICY"}})
	}
	for _, v := range p3p.Categories {
		reg = append(reg, GenericTable{element: v, parents: []string{"CATEGORIES", "DATA", "DATA-GROUP", "STATEMENT", "POLICY"}})
	}
	return reg
}

// GenericStore shreds policies into the generic one-table-per-element
// schema produced by the Figure 8 decomposition algorithm.
type GenericStore struct {
	db     *reldb.DB
	schema *basedata.Schema
	tables map[string]GenericTable // by element name
	nextID int
}

// GenericRegistry exposes the table registry (element name, parent chain,
// attributes) for the translators that target the generic schema.
func GenericRegistry() map[string]GenericTable {
	out := map[string]GenericTable{}
	for _, t := range genericRegistry() {
		out[t.element] = t
	}
	return out
}

// Element returns the XML element name of the table.
func (t GenericTable) Element() string { return t.element }

// Parents returns the parent chain (immediate parent first).
func (t GenericTable) Parents() []string { return t.parents }

// Attrs returns the attribute column names.
func (t GenericTable) Attrs() []string { return t.attrs }

// TableName returns the SQL table name for an element of the generic
// schema.
func (t GenericTable) TableName() string { return Ident(t.element) }

// IDColumn returns the table's id column name.
func (t GenericTable) IDColumn() string { return idCol(t.element) }

// FKColumns returns the foreign-key column names (immediate parent first).
func (t GenericTable) FKColumns() []string {
	out := make([]string, len(t.parents))
	for i, p := range t.parents {
		out[i] = idCol(p)
	}
	return out
}

// NewGeneric creates the generic-schema tables in db and returns a store.
func NewGeneric(db *reldb.DB) (*GenericStore, error) {
	g := &GenericStore{db: db, schema: basedata.Default(), tables: map[string]GenericTable{}, nextID: 1}
	for _, t := range genericRegistry() {
		g.tables[t.element] = t
		var cols []string
		cols = append(cols, t.IDColumn()+" INTEGER NOT NULL")
		for _, fk := range t.FKColumns() {
			cols = append(cols, fk+" INTEGER NOT NULL")
		}
		for _, a := range t.attrs {
			cols = append(cols, Ident(a)+" VARCHAR(255)")
		}
		if t.hasText {
			cols = append(cols, "text_value VARCHAR(4096)")
		}
		pk := append([]string{t.IDColumn()}, t.FKColumns()...)
		ddl := fmt.Sprintf("CREATE TABLE %s (%s, PRIMARY KEY (%s))",
			t.TableName(), strings.Join(cols, ", "), strings.Join(pk, ", "))
		if _, err := db.Exec(ddl); err != nil {
			return nil, fmt.Errorf("shred: creating generic schema: %w", err)
		}
		if len(t.parents) > 0 {
			ix := fmt.Sprintf("CREATE INDEX ix_%s_fk ON %s (%s)",
				t.TableName(), t.TableName(), strings.Join(t.FKColumns(), ", "))
			if _, err := db.Exec(ix); err != nil {
				return nil, err
			}
		}
	}
	return g, nil
}

// DB exposes the underlying database.
func (g *GenericStore) DB() *reldb.DB { return g.db }

// InstallPolicy augments and shreds one policy into the generic schema,
// returning its policy id. This is the Figure 10 population algorithm
// specialized to the P3P vocabulary: ids are assigned per parent scope and
// the foreign key of each row is the concatenated primary key of its
// parent's row.
func (g *GenericStore) InstallPolicy(pol *p3p.Policy) (int, error) {
	return g.InstallPolicyAt(pol, g.nextID)
}

// InstallPolicyAt is InstallPolicy with the policy id chosen by the
// caller, used by snapshot rebuilds to preserve ids across state swaps
// (see OptimizedStore.InstallPolicyAt). The id must be unused; the
// store's auto-assign sequence continues past it.
func (g *GenericStore) InstallPolicyAt(pol *p3p.Policy, policyID int) (int, error) {
	frag, err := BuildGenericFragment(g.schema, pol, policyID)
	if err != nil {
		return 0, err
	}
	return g.InstallFragment(frag)
}

// InstallFragment bulk-appends a prebuilt generic-schema fragment (see
// OptimizedStore.InstallFragment).
func (g *GenericStore) InstallFragment(frag *Fragment) (int, error) {
	if frag.id >= g.nextID {
		g.nextID = frag.id + 1
	}
	if err := frag.installInto(g.db); err != nil {
		return 0, err
	}
	return frag.id, nil
}

// RemovePolicy deletes every row belonging to a policy from all element
// tables.
func (g *GenericStore) RemovePolicy(policyID int) error {
	for _, t := range g.tables {
		if _, err := g.db.Exec(
			fmt.Sprintf(`DELETE FROM %s WHERE policy_id = ?`, t.TableName()),
			reldb.Int(int64(policyID))); err != nil {
			return err
		}
	}
	return nil
}

// PolicyID looks up the id assigned to a named policy in the generic
// schema.
func (g *GenericStore) PolicyID(name string) (int, error) {
	rows, err := g.db.Query(`SELECT policy_id FROM policy WHERE policy.name = ?`, reldb.Str(name))
	if err != nil {
		return 0, err
	}
	if len(rows.Data) == 0 {
		return 0, fmt.Errorf("shred: policy %q not installed", name)
	}
	n, _ := rows.Data[0][0].AsInt()
	return int(n), nil
}
