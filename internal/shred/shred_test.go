package shred

import (
	"strings"
	"testing"

	"p3pdb/internal/p3p"
	"p3pdb/internal/p3p/basedata"
	"p3pdb/internal/reldb"
)

func volga(t testing.TB) *p3p.Policy {
	t.Helper()
	pol, err := p3p.ParsePolicy(p3p.VolgaPolicyXML)
	if err != nil {
		t.Fatal(err)
	}
	return pol
}

func count(t *testing.T, db *reldb.DB, sql string, params ...reldb.Value) int {
	t.Helper()
	rows, err := db.Query(sql, params...)
	if err != nil {
		t.Fatalf("Query(%s): %v", sql, err)
	}
	n, _ := rows.Data[0][0].AsInt()
	return int(n)
}

func TestOptimizedInstall(t *testing.T) {
	db := reldb.New()
	st, err := NewOptimized(db)
	if err != nil {
		t.Fatal(err)
	}
	id, err := st.InstallPolicy(volga(t))
	if err != nil {
		t.Fatal(err)
	}
	if id != 1 {
		t.Errorf("id = %d", id)
	}
	if n := count(t, db, `SELECT COUNT(*) FROM Policy`); n != 1 {
		t.Errorf("Policy rows = %d", n)
	}
	if n := count(t, db, `SELECT COUNT(*) FROM Statement WHERE policy_id = 1`); n != 2 {
		t.Errorf("Statement rows = %d", n)
	}
	if n := count(t, db, `SELECT COUNT(*) FROM Purpose WHERE policy_id = 1 AND statement_id = 2`); n != 2 {
		t.Errorf("Purpose rows for stmt 2 = %d", n)
	}
	// Defaulting applied at shred time.
	rows, err := db.Query(`SELECT required FROM Purpose WHERE policy_id = 1 AND statement_id = 1 AND purpose = 'current'`)
	if err != nil || len(rows.Data) != 1 {
		t.Fatalf("purpose current: %v %v", rows, err)
	}
	if got := rows.Data[0][0].AsString(); got != "always" {
		t.Errorf("required defaulted to %q", got)
	}
	// Retention folded into the Statement table (Figure 14 optimization).
	rows, err = db.Query(`SELECT retention, consequence FROM Statement WHERE policy_id = 1 AND statement_id = 1`)
	if err != nil {
		t.Fatal(err)
	}
	if rows.Data[0][0].AsString() != "stated-purpose" {
		t.Errorf("retention = %v", rows.Data[0][0])
	}
	if rows.Data[0][1].IsNull() {
		t.Error("consequence should be stored")
	}
}

func TestOptimizedAugmentation(t *testing.T) {
	db := reldb.New()
	st, err := NewOptimized(db)
	if err != nil {
		t.Fatal(err)
	}
	if _, err := st.InstallPolicy(volga(t)); err != nil {
		t.Fatal(err)
	}
	// #user.name expands to its 6 personname leaves.
	if n := count(t, db, `SELECT COUNT(DISTINCT ref) FROM Data WHERE orig_ref = '#user.name'`); n != 6 {
		t.Errorf("user.name leaves = %d, want 6", n)
	}
	// Every expanded user.name leaf carries physical and demographic.
	if n := count(t, db, `SELECT COUNT(*) FROM Data WHERE orig_ref = '#user.name' AND category = 'physical'`); n != 6 {
		t.Errorf("physical rows = %d", n)
	}
	// miscdata keeps its declared category.
	if n := count(t, db, `SELECT COUNT(*) FROM Data WHERE ref = '#dynamic.miscdata' AND category = 'purchase'`); n != 2 {
		t.Errorf("miscdata purchase rows = %d (statement 1 and 2)", n)
	}
	// email leaf resolves to the online category.
	if n := count(t, db, `SELECT COUNT(*) FROM Data WHERE ref = '#user.home-info.online.email' AND category = 'online'`); n != 1 {
		t.Errorf("email online rows = %d", n)
	}
}

func TestOptimizedDuplicateAndLookup(t *testing.T) {
	db := reldb.New()
	st, _ := NewOptimized(db)
	if _, err := st.InstallPolicy(volga(t)); err != nil {
		t.Fatal(err)
	}
	if _, err := st.InstallPolicy(volga(t)); err == nil {
		t.Error("duplicate install should fail")
	}
	id, err := st.PolicyID("volga")
	if err != nil || id != 1 {
		t.Errorf("PolicyID: %d %v", id, err)
	}
	if _, err := st.PolicyID("nope"); err == nil {
		t.Error("missing policy should error")
	}
}

func TestOptimizedRemove(t *testing.T) {
	db := reldb.New()
	st, _ := NewOptimized(db)
	id, err := st.InstallPolicy(volga(t))
	if err != nil {
		t.Fatal(err)
	}
	if err := st.RemovePolicy(id); err != nil {
		t.Fatal(err)
	}
	for _, table := range []string{"Policy", "Statement", "Purpose", "Recipient", "Datagroup", "Data"} {
		if n := count(t, db, `SELECT COUNT(*) FROM `+table); n != 0 {
			t.Errorf("%s rows after remove = %d", table, n)
		}
	}
	// Reinstall under a fresh id works (versioning).
	id2, err := st.InstallPolicy(volga(t))
	if err != nil {
		t.Fatal(err)
	}
	if id2 == id {
		t.Errorf("new version should get a fresh id, got %d again", id2)
	}
}

func TestOptimizedRejectsInvalid(t *testing.T) {
	db := reldb.New()
	st, _ := NewOptimized(db)
	bad := &p3p.Policy{Name: "bad", Statements: []*p3p.Statement{{
		Purposes: []p3p.PurposeValue{{Value: "nonsense"}},
	}}}
	if _, err := st.InstallPolicy(bad); err == nil {
		t.Error("invalid policy should be rejected")
	}
}

func TestExpandData(t *testing.T) {
	schema := basedata.Default()
	// Struct ref expands to leaves with schema categories.
	leaves := ExpandData(schema, &p3p.Data{Ref: "#user.name"})
	if len(leaves) != 6 {
		t.Fatalf("user.name leaves = %d", len(leaves))
	}
	for _, l := range leaves {
		if !strings.HasPrefix(l.Ref, "#user.name.") {
			t.Errorf("leaf ref %q", l.Ref)
		}
		if len(l.Categories) != 2 {
			t.Errorf("leaf cats %v", l.Categories)
		}
	}
	// Variable ref keeps declared categories.
	leaves = ExpandData(schema, &p3p.Data{Ref: "#dynamic.miscdata", Categories: []string{"purchase"}})
	if len(leaves) != 1 || leaves[0].Ref != "#dynamic.miscdata" || leaves[0].Categories[0] != "purchase" {
		t.Errorf("miscdata: %+v", leaves)
	}
	// Unknown ref survives as itself.
	leaves = ExpandData(schema, &p3p.Data{Ref: "custom.thing", Categories: []string{"health"}})
	if len(leaves) != 1 || leaves[0].Ref != "#custom.thing" {
		t.Errorf("unknown: %+v", leaves)
	}
}

func TestGenericInstall(t *testing.T) {
	db := reldb.New()
	g, err := NewGeneric(db)
	if err != nil {
		t.Fatal(err)
	}
	id, err := g.InstallPolicy(volga(t))
	if err != nil {
		t.Fatal(err)
	}
	if id != 1 {
		t.Errorf("id = %d", id)
	}
	// One table per element of the vocabulary subset.
	names := db.TableNames()
	if len(names) < 45 {
		t.Errorf("generic schema has %d tables, want ~49", len(names))
	}
	if n := count(t, db, `SELECT COUNT(*) FROM statement WHERE policy_id = 1`); n != 2 {
		t.Errorf("statement rows = %d", n)
	}
	// Purpose value tables: current in stmt 1; individual_decision and
	// contact in stmt 2 with required=opt-in.
	if n := count(t, db, `SELECT COUNT(*) FROM current WHERE policy_id = 1 AND statement_id = 1`); n != 1 {
		t.Errorf("current rows = %d", n)
	}
	rows, err := db.Query(`SELECT required FROM individual_decision WHERE policy_id = 1`)
	if err != nil || len(rows.Data) != 1 {
		t.Fatalf("individual_decision: %v %v", rows, err)
	}
	if rows.Data[0][0].AsString() != "opt-in" {
		t.Errorf("required = %v", rows.Data[0][0])
	}
	// Retention value tables.
	if n := count(t, db, `SELECT COUNT(*) FROM stated_purpose WHERE policy_id = 1`); n != 1 {
		t.Errorf("stated_purpose rows = %d", n)
	}
	if n := count(t, db, `SELECT COUNT(*) FROM business_practices WHERE policy_id = 1`); n != 1 {
		t.Errorf("business_practices rows = %d", n)
	}
	// Category value tables populated via augmentation.
	if n := count(t, db, `SELECT COUNT(*) FROM purchase WHERE policy_id = 1`); n != 2 {
		t.Errorf("purchase rows = %d", n)
	}
	if n := count(t, db, `SELECT COUNT(*) FROM physical WHERE policy_id = 1`); n == 0 {
		t.Error("no physical category rows; augmentation missing")
	}
	// DATA rows carry leaf refs after augmentation.
	if n := count(t, db, `SELECT COUNT(*) FROM data WHERE ref = '#user.name.given'`); n != 1 {
		t.Errorf("user.name.given rows = %d", n)
	}
	// The join chain data -> categories -> physical holds together.
	joined := count(t, db, `SELECT COUNT(*) FROM data d WHERE EXISTS (
		SELECT * FROM categories c WHERE c.policy_id = d.policy_id AND c.statement_id = d.statement_id
			AND c.data_group_id = d.data_group_id AND c.data_id = d.data_id AND EXISTS (
			SELECT * FROM physical p WHERE p.policy_id = c.policy_id AND p.statement_id = c.statement_id
				AND p.data_group_id = c.data_group_id AND p.data_id = c.data_id AND p.categories_id = c.categories_id))`)
	if joined == 0 {
		t.Error("category join chain broken")
	}
}

func TestGenericPolicyID(t *testing.T) {
	db := reldb.New()
	g, _ := NewGeneric(db)
	if _, err := g.InstallPolicy(volga(t)); err != nil {
		t.Fatal(err)
	}
	id, err := g.PolicyID("volga")
	if err != nil || id != 1 {
		t.Errorf("PolicyID: %d %v", id, err)
	}
}

func TestGenericRegistryShape(t *testing.T) {
	reg := GenericRegistry()
	if len(reg) != 50 {
		t.Errorf("registry size = %d, want 50", len(reg))
	}
	data := reg["DATA"]
	if data.TableName() != "data" || data.IDColumn() != "data_id" {
		t.Errorf("DATA table: %s %s", data.TableName(), data.IDColumn())
	}
	if got := strings.Join(data.FKColumns(), ","); got != "data_group_id,statement_id,policy_id" {
		t.Errorf("DATA fks = %s", got)
	}
	idv := reg["individual-decision"]
	if idv.TableName() != "individual_decision" {
		t.Errorf("sanitized name = %s", idv.TableName())
	}
	if got := strings.Join(idv.FKColumns(), ","); got != "purpose_id,statement_id,policy_id" {
		t.Errorf("purpose value fks = %s", got)
	}
}

func TestIdent(t *testing.T) {
	cases := map[string]string{
		"DATA-GROUP":          "data_group",
		"individual-decision": "individual_decision",
		"POLICY":              "policy",
		"stated-purpose":      "stated_purpose",
	}
	for in, want := range cases {
		if got := Ident(in); got != want {
			t.Errorf("Ident(%q) = %q, want %q", in, got, want)
		}
	}
}
