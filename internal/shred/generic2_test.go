package shred

import (
	"testing"

	"p3pdb/internal/reldb"
)

func TestGenericRemovePolicy(t *testing.T) {
	db := reldb.New()
	g, err := NewGeneric(db)
	if err != nil {
		t.Fatal(err)
	}
	id1, err := g.InstallPolicy(volga(t))
	if err != nil {
		t.Fatal(err)
	}
	v2 := volga(t)
	v2.Name = "volga2"
	id2, err := g.InstallPolicy(v2)
	if err != nil {
		t.Fatal(err)
	}
	if err := g.RemovePolicy(id1); err != nil {
		t.Fatal(err)
	}
	// Every table is clean of policy 1 but keeps policy 2.
	for _, table := range []string{"policy", "statement", "purpose", "data", "purchase"} {
		if n := count(t, db, `SELECT COUNT(*) FROM `+table+` WHERE policy_id = ?`, reldb.Int(int64(id1))); n != 0 {
			t.Errorf("%s rows for removed policy = %d", table, n)
		}
	}
	if n := count(t, db, `SELECT COUNT(*) FROM statement WHERE policy_id = ?`, reldb.Int(int64(id2))); n != 2 {
		t.Errorf("surviving policy statements = %d", n)
	}
	if _, err := g.PolicyID("volga"); err == nil {
		t.Error("removed policy still resolvable")
	}
	if got, err := g.PolicyID("volga2"); err != nil || got != id2 {
		t.Errorf("PolicyID(volga2) = %d, %v", got, err)
	}
}

func TestStoreAccessors(t *testing.T) {
	db := reldb.New()
	g, err := NewGeneric(db)
	if err != nil {
		t.Fatal(err)
	}
	if g.DB() != db {
		t.Error("GenericStore.DB mismatch")
	}
	db2 := reldb.New()
	o, err := NewOptimized(db2)
	if err != nil {
		t.Fatal(err)
	}
	if o.DB() != db2 {
		t.Error("OptimizedStore.DB mismatch")
	}
}

func TestGenericTableAccessors(t *testing.T) {
	reg := GenericRegistry()
	d := reg["DATA"]
	if d.Element() != "DATA" {
		t.Errorf("Element = %q", d.Element())
	}
	if got := d.Parents(); len(got) != 3 || got[0] != "DATA-GROUP" {
		t.Errorf("Parents = %v", got)
	}
	if got := d.Attrs(); len(got) != 2 || got[0] != "ref" {
		t.Errorf("Attrs = %v", got)
	}
}

func TestDuplicateGenericSchemaRejected(t *testing.T) {
	db := reldb.New()
	if _, err := NewGeneric(db); err != nil {
		t.Fatal(err)
	}
	if _, err := NewGeneric(db); err == nil {
		t.Error("second generic schema in one DB should fail")
	}
	db2 := reldb.New()
	if _, err := NewOptimized(db2); err != nil {
		t.Fatal(err)
	}
	if _, err := NewOptimized(db2); err == nil {
		t.Error("second optimized schema in one DB should fail")
	}
}
