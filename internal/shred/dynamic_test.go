package shred

import (
	"fmt"
	"testing"

	"p3pdb/internal/appelengine"
	"p3pdb/internal/p3p"
	"p3pdb/internal/reldb"
	"p3pdb/internal/xmldom"
)

// augmentedVolga is the DOM the server installs: Volga with category
// augmentation already applied.
func augmentedVolga(t testing.TB) *xmldom.Node {
	t.Helper()
	doc, err := xmldom.ParseString(p3p.VolgaPolicyXML)
	if err != nil {
		t.Fatal(err)
	}
	return appelengine.NewWithOptions(appelengine.Options{IndexedAugmentation: true}).Augment(doc)
}

func TestDynamicInstall(t *testing.T) {
	db := reldb.New()
	s := NewDynamic(db)
	id, err := s.Install(augmentedVolga(t))
	if err != nil {
		t.Fatal(err)
	}
	if id != 1 {
		t.Errorf("id = %d", id)
	}
	// The discovered tables carry the Figure 9 shape: id + parent-chain
	// foreign key + attribute columns.
	dataTable := db.Table("data")
	if dataTable == nil {
		t.Fatal("no data table discovered")
	}
	var colNames []string
	for _, c := range dataTable.Schema().Columns {
		colNames = append(colNames, c.Name)
	}
	want := []string{"data_id", "data_group_id", "statement_id", "policy_id", "attr_ref"}
	for i, w := range want {
		if colNames[i] != w {
			t.Fatalf("data columns = %v, want prefix %v", colNames, want)
		}
	}
	// Population: statement ids are sibling counters.
	got := count(t, db, `SELECT COUNT(*) FROM statement WHERE policy_id = 1`)
	if got != 2 {
		t.Errorf("statements = %d", got)
	}
	if n := count(t, db, `SELECT COUNT(*) FROM statement WHERE statement_id = 1`); n != 1 {
		t.Errorf("statement_id 1 rows = %d", n)
	}
	// CONSEQUENCE text landed in text_value.
	rows, err := db.Query(`SELECT text_value FROM consequence WHERE statement_id = 1 AND policy_id = 1`)
	if err != nil || len(rows.Data) != 1 {
		t.Fatalf("consequence: %v %v", rows, err)
	}
	if rows.Data[0][0].IsNull() {
		t.Error("consequence text missing")
	}
}

// TestDynamicMatchesGenericCounts cross-checks the published algorithm
// against the vocabulary-driven generic shredder: for every table both
// define, row counts must agree on the same corpus.
func TestDynamicMatchesGenericCounts(t *testing.T) {
	gdb := reldb.New()
	g, err := NewGeneric(gdb)
	if err != nil {
		t.Fatal(err)
	}
	ddb := reldb.New()
	dyn := NewDynamic(ddb)

	for i := 0; i < 3; i++ {
		pol := volga(t)
		pol.Name = fmt.Sprintf("volga%d", i)
		if _, err := g.InstallPolicy(pol); err != nil {
			t.Fatal(err)
		}
		doc, err := xmldom.ParseString(pol.String())
		if err != nil {
			t.Fatal(err)
		}
		aug := appelengine.NewWithOptions(appelengine.Options{IndexedAugmentation: true}).Augment(doc)
		if _, err := dyn.Install(aug); err != nil {
			t.Fatal(err)
		}
	}

	compared := 0
	for _, table := range ddb.TableNames() {
		if !gdb.HasTable(table) {
			// The dynamic store discovers the WHOLE document, so it
			// also defines tables the vocabulary registry deliberately
			// omits (the ACCESS subtree); those must be the only extras.
			if table != "access" && table != "contact_and_other" {
				t.Errorf("unexpected dynamic-only table %s", table)
			}
			continue
		}
		gn := count(t, gdb, `SELECT COUNT(*) FROM `+table)
		dn := count(t, ddb, `SELECT COUNT(*) FROM `+table)
		if gn != dn {
			t.Errorf("%s: generic %d rows, dynamic %d rows", table, gn, dn)
		}
		compared++
	}
	if compared < 10 {
		t.Errorf("only %d tables compared; the stores diverged structurally", compared)
	}
}

func TestDynamicRejectsInconsistentChains(t *testing.T) {
	db := reldb.New()
	s := NewDynamic(db)
	// B first appears under A...
	doc1, _ := xmldom.ParseString(`<POLICY><A><B/></A></POLICY>`)
	if _, err := s.Install(doc1); err != nil {
		t.Fatal(err)
	}
	// ...and then under C: the tree-unique-names assumption breaks.
	doc2, _ := xmldom.ParseString(`<POLICY><C><B/></C></POLICY>`)
	if _, err := s.Install(doc2); err == nil {
		t.Error("inconsistent parent chain should be rejected")
	}
}

func TestDynamicRejectsLateAttributes(t *testing.T) {
	db := reldb.New()
	s := NewDynamic(db)
	doc1, _ := xmldom.ParseString(`<POLICY><A/></POLICY>`)
	if _, err := s.Install(doc1); err != nil {
		t.Fatal(err)
	}
	doc2, _ := xmldom.ParseString(`<POLICY><A novel="1"/></POLICY>`)
	if _, err := s.Install(doc2); err == nil {
		t.Error("late attribute should be rejected")
	}
}

func TestDynamicRequiresPolicyRoot(t *testing.T) {
	db := reldb.New()
	s := NewDynamic(db)
	doc, _ := xmldom.ParseString(`<POLICIES/>`)
	if _, err := s.Install(doc); err == nil {
		t.Error("non-POLICY root should be rejected")
	}
}
