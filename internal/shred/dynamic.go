package shred

import (
	"fmt"
	"sort"
	"strings"

	"p3pdb/internal/reldb"
	"p3pdb/internal/xmldom"
)

// DynamicStore is the literal rendition of the paper's Figures 8 and 10:
// the schema is *discovered from the documents being shredded* — "for
// each element e defined in the P3P policy do create a table such that
// (a) the name of the table is e.name() (b) the columns of the table
// consist of (i) an id column ... (ii) foreign key comprising of the
// primary key of the table corresponding to the parent element (iii) one
// column for each attribute of e" — and population follows the recursive
// add(e, f) of Figure 10: create a unique id, insert (id, foreign key,
// attributes), recurse into subelements with the id prepended to the key.
//
// GenericStore produces the same tables from the fixed P3P vocabulary;
// DynamicStore exists to demonstrate the published algorithm verbatim and
// is cross-checked against GenericStore in the tests. Install expects an
// already augmented policy element (the server augments at install time;
// see core.Site) and skips the ENTITY subtree, whose DATA-GROUP reuses
// element names with a different parent chain — the one place the P3P
// vocabulary violates the algorithm's tree-unique-names assumption (see
// DESIGN.md).
type DynamicStore struct {
	db     *reldb.DB
	tables map[string]*dynTable
	nextID int
}

// dynTable records one discovered element table.
type dynTable struct {
	element string
	name    string   // SQL table name
	fkCols  []string // immediate parent id first
	attrs   []string // attribute column order
	hasText bool
}

// NewDynamic returns a store that will create tables on demand in db.
func NewDynamic(db *reldb.DB) *DynamicStore {
	return &DynamicStore{db: db, tables: map[string]*dynTable{}, nextID: 1}
}

// DB exposes the underlying database.
func (s *DynamicStore) DB() *reldb.DB { return s.db }

// Install shreds one policy element, returning its policy id. The two
// passes mirror the paper's presentation: Figure 8 first (discover and
// create tables), Figure 10 second (populate).
func (s *DynamicStore) Install(policy *xmldom.Node) (int, error) {
	if policy.Name != "POLICY" {
		return 0, fmt.Errorf("shred: dynamic store expects a POLICY element, got %s", policy.Name)
	}
	if err := s.discover(policy, nil); err != nil {
		return 0, err
	}
	policyID := s.nextID
	s.nextID++
	if err := s.add(policy, nil, policyID); err != nil {
		return 0, err
	}
	return policyID, nil
}

// discover is the Figure 8 pass: walk the tree, defining (or checking)
// one table per element name.
func (s *DynamicStore) discover(e *xmldom.Node, parentChain []string) error {
	if skipDynamic(e) {
		return nil
	}
	def, seen := s.tables[e.Name]
	if !seen {
		def = &dynTable{
			element: e.Name,
			name:    Ident(e.Name),
			fkCols:  chainCols(parentChain),
			hasText: e.Text != "",
		}
		for _, a := range e.Attrs {
			def.attrs = append(def.attrs, a.Name)
		}
		sort.Strings(def.attrs)
		if err := s.createTable(def); err != nil {
			return err
		}
		s.tables[e.Name] = def
	} else {
		if got := strings.Join(chainCols(parentChain), ","); got != strings.Join(def.fkCols, ",") {
			return fmt.Errorf("shred: element %s appears under two parent chains (%s vs %s); the Figure 8 algorithm requires tree-unique element names",
				e.Name, got, strings.Join(def.fkCols, ","))
		}
		for _, a := range e.Attrs {
			if !containsString(def.attrs, a.Name) {
				return fmt.Errorf("shred: element %s introduces attribute %q after its table was created; shred all documents in one batch", e.Name, a.Name)
			}
		}
	}
	childChain := append([]string{e.Name}, parentChain...)
	for _, c := range e.Children {
		if err := s.discover(c, childChain); err != nil {
			return err
		}
	}
	return nil
}

// add is the Figure 10 pass: "create a unique id; create a record
// consisting of (a) id, (b) foreign key f, and (c) all attributes of
// element e; insert the record into the table e.name(); for each
// subelement se of e do add(se, id concatenated with f)."
//
// Ids are unique within the parent scope (sibling counters), which keeps
// the concatenated key a primary key exactly as the algorithm requires.
func (s *DynamicStore) add(e *xmldom.Node, fk []int, id int) error {
	def := s.tables[e.Name]
	cols := []string{def.name + "_id"}
	vals := []reldb.Value{reldb.Int(int64(id))}
	for i, fkc := range def.fkCols {
		cols = append(cols, fkc)
		vals = append(vals, reldb.Int(int64(fk[i])))
	}
	for _, a := range def.attrs {
		cols = append(cols, "attr_"+Ident(a))
		if v, ok := e.Attr(a); ok {
			vals = append(vals, reldb.Str(v))
		} else {
			vals = append(vals, reldb.Null)
		}
	}
	if def.hasText {
		cols = append(cols, "text_value")
		if e.Text != "" {
			vals = append(vals, reldb.Str(e.Text))
		} else {
			vals = append(vals, reldb.Null)
		}
	}
	marks := make([]string, len(vals))
	for i := range marks {
		marks[i] = "?"
	}
	if _, err := s.db.Exec(
		fmt.Sprintf("INSERT INTO %s (%s) VALUES (%s)", def.name, strings.Join(cols, ", "), strings.Join(marks, ", ")),
		vals...); err != nil {
		return err
	}
	childFK := append([]int{id}, fk...)
	counters := map[string]int{}
	for _, c := range e.Children {
		if skipDynamic(c) {
			continue
		}
		counters[c.Name]++
		if err := s.add(c, childFK, counters[c.Name]); err != nil {
			return err
		}
	}
	return nil
}

func (s *DynamicStore) createTable(def *dynTable) error {
	var cols []string
	cols = append(cols, def.name+"_id INTEGER NOT NULL")
	for _, fkc := range def.fkCols {
		cols = append(cols, fkc+" INTEGER NOT NULL")
	}
	for _, a := range def.attrs {
		cols = append(cols, "attr_"+Ident(a)+" VARCHAR(4096)")
	}
	if def.hasText {
		cols = append(cols, "text_value VARCHAR(4096)")
	}
	pk := append([]string{def.name + "_id"}, def.fkCols...)
	ddl := fmt.Sprintf("CREATE TABLE %s (%s, PRIMARY KEY (%s))",
		def.name, strings.Join(cols, ", "), strings.Join(pk, ", "))
	if _, err := s.db.Exec(ddl); err != nil {
		return err
	}
	if len(def.fkCols) > 0 {
		if _, err := s.db.Exec(fmt.Sprintf("CREATE INDEX ix_%s_fk ON %s (%s)",
			def.name, def.name, strings.Join(def.fkCols, ", "))); err != nil {
			return err
		}
	}
	return nil
}

// skipDynamic prunes the ENTITY subtree; see the type comment.
func skipDynamic(e *xmldom.Node) bool { return e.Name == "ENTITY" }

// chainCols renders a parent chain as foreign-key column names.
func chainCols(parentChain []string) []string {
	out := make([]string, len(parentChain))
	for i, p := range parentChain {
		out[i] = Ident(p) + "_id"
	}
	return out
}

func containsString(ss []string, want string) bool {
	for _, s := range ss {
		if s == want {
			return true
		}
	}
	return false
}
