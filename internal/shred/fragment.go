package shred

import (
	"fmt"

	"p3pdb/internal/p3p"
	"p3pdb/internal/p3p/basedata"
	"p3pdb/internal/reldb"
)

// Fragment is the precomputed shred output for one (policy, id) pair:
// full-width rows per table, in schema column order, ready for bulk
// insertion. A fragment is immutable once built — reldb copies rows on
// insert — so core's snapshot rebuilds cache one fragment per resident
// policy and replay it into every rebuilt database without re-running
// augmentation, leaf expansion, or SQL parsing. The batched-recovery and
// follower-apply paths lean on this: rebuild cost becomes a bulk append
// instead of thousands of parsed INSERT statements.
type Fragment struct {
	id     int
	name   string
	tables []fragmentTable
}

type fragmentTable struct {
	name string
	rows [][]reldb.Value
}

// PolicyID returns the policy id the fragment was shredded at.
func (f *Fragment) PolicyID() int { return f.id }

// Name returns the policy name.
func (f *Fragment) Name() string { return f.name }

// installInto bulk-appends every table's rows into db.
func (f *Fragment) installInto(db *reldb.DB) error {
	for _, t := range f.tables {
		if len(t.rows) == 0 {
			continue
		}
		if _, err := db.InsertRows(t.name, t.rows); err != nil {
			return fmt.Errorf("shred: installing %s rows for policy %q: %w", t.name, f.name, err)
		}
	}
	return nil
}

// BuildOptimizedFragment shreds one policy into optimized-schema (Figure
// 14) rows at the given policy id. The output depends only on (schema,
// pol, id), so callers may cache it for as long as those stay fixed.
func BuildOptimizedFragment(schema *basedata.Schema, pol *p3p.Policy, id int) (*Fragment, error) {
	if err := pol.MustValid(); err != nil {
		return nil, fmt.Errorf("shred: invalid policy: %w", err)
	}
	entityName := ""
	if pol.Entity != nil {
		entityName = pol.Entity.Name
	}
	pid := reldb.Int(int64(id))
	policyRows := [][]reldb.Value{{
		pid, reldb.Str(pol.Name), nullable(pol.Discuri), nullable(pol.Opturi),
		nullable(entityName), nullable(pol.Access), boolInt(pol.TestOnly),
	}}
	var stmtRows, purposeRows, recipientRows, dgRows, dataRows [][]reldb.Value
	for si, st := range pol.Statements {
		sid := reldb.Int(int64(si + 1))
		stmtRows = append(stmtRows, []reldb.Value{
			pid, sid, nullable(st.Consequence), nullable(st.Retention), boolInt(st.NonIdentifiable),
		})
		for _, pv := range st.Purposes {
			purposeRows = append(purposeRows, []reldb.Value{pid, sid, reldb.Str(pv.Value), reldb.Str(pv.EffectiveRequired())})
		}
		for _, rv := range st.Recipients {
			recipientRows = append(recipientRows, []reldb.Value{pid, sid, reldb.Str(rv.Value), reldb.Str(rv.EffectiveRequired())})
		}
		for gi, dg := range st.DataGroups {
			dgid := reldb.Int(int64(gi + 1))
			dgRows = append(dgRows, []reldb.Value{pid, sid, dgid, nullable(dg.Base)})
			dataID := 0
			for _, d := range dg.Data {
				for _, leaf := range ExpandData(schema, d) {
					dataID++
					cats := leaf.Categories
					if len(cats) == 0 {
						cats = []string{""}
					}
					for _, cat := range cats {
						dataRows = append(dataRows, []reldb.Value{
							pid, sid, dgid, reldb.Int(int64(dataID)),
							reldb.Str(leaf.Ref), reldb.Str(d.Ref),
							boolInt(d.Optional), reldb.Str(cat),
						})
					}
				}
			}
		}
	}
	return &Fragment{id: id, name: pol.Name, tables: []fragmentTable{
		{"Policy", policyRows},
		{"Statement", stmtRows},
		{"Purpose", purposeRows},
		{"Recipient", recipientRows},
		{"Datagroup", dgRows},
		{"Data", dataRows},
	}}, nil
}

// genericFragmentTables is the shared registry for generic fragment
// builds; GenericRegistry copies per call, so build it once.
var genericFragmentTables = GenericRegistry()

// genericRow builds one full-width generic-schema row: id, fk chain, attr
// columns in registry order (Null when absent), then text_value if the
// element carries character data. This is insertRow's column order with
// the SQL layer skipped.
func genericRow(t GenericTable, id int, fks []int, attrs map[string]string, text string) []reldb.Value {
	vals := make([]reldb.Value, 0, 1+len(t.parents)+len(t.attrs)+1)
	vals = append(vals, reldb.Int(int64(id)))
	for _, fk := range fks {
		vals = append(vals, reldb.Int(int64(fk)))
	}
	for _, a := range t.attrs {
		if v, ok := attrs[a]; ok {
			vals = append(vals, reldb.Str(v))
		} else {
			vals = append(vals, reldb.Null)
		}
	}
	if t.hasText {
		vals = append(vals, nullable(text))
	}
	return vals
}

// BuildGenericFragment shreds one policy into generic-schema (Figure 8 /
// Figure 10) rows at the given policy id.
func BuildGenericFragment(schema *basedata.Schema, pol *p3p.Policy, policyID int) (*Fragment, error) {
	if err := pol.MustValid(); err != nil {
		return nil, fmt.Errorf("shred: invalid policy: %w", err)
	}
	rows := map[string][][]reldb.Value{}
	add := func(element string, id int, fks []int, attrs map[string]string, text string) error {
		t, ok := genericFragmentTables[element]
		if !ok {
			return fmt.Errorf("shred: no generic table for element %q", element)
		}
		rows[element] = append(rows[element], genericRow(t, id, fks, attrs, text))
		return nil
	}

	if err := add("POLICY", policyID, nil, map[string]string{
		"name": pol.Name, "discuri": pol.Discuri, "opturi": pol.Opturi,
	}, ""); err != nil {
		return nil, err
	}
	for si, st := range pol.Statements {
		stmtID := si + 1
		if err := add("STATEMENT", stmtID, []int{policyID}, nil, ""); err != nil {
			return nil, err
		}
		under := []int{stmtID, policyID}
		if st.Consequence != "" {
			if err := add("CONSEQUENCE", 1, under, nil, st.Consequence); err != nil {
				return nil, err
			}
		}
		if st.NonIdentifiable {
			if err := add("NON-IDENTIFIABLE", 1, under, nil, ""); err != nil {
				return nil, err
			}
		}
		if len(st.Purposes) > 0 {
			if err := add("PURPOSE", 1, under, nil, ""); err != nil {
				return nil, err
			}
			for vi, pv := range st.Purposes {
				if err := add(pv.Value, vi+1, append([]int{1}, under...),
					map[string]string{"required": pv.EffectiveRequired()}, ""); err != nil {
					return nil, fmt.Errorf("shred: no generic table for purpose %q", pv.Value)
				}
			}
		}
		if len(st.Recipients) > 0 {
			if err := add("RECIPIENT", 1, under, nil, ""); err != nil {
				return nil, err
			}
			for vi, rv := range st.Recipients {
				if err := add(rv.Value, vi+1, append([]int{1}, under...),
					map[string]string{"required": rv.EffectiveRequired()}, ""); err != nil {
					return nil, fmt.Errorf("shred: no generic table for recipient %q", rv.Value)
				}
			}
		}
		if st.Retention != "" {
			if err := add("RETENTION", 1, under, nil, ""); err != nil {
				return nil, err
			}
			if err := add(st.Retention, 1, append([]int{1}, under...), nil, ""); err != nil {
				return nil, fmt.Errorf("shred: no generic table for retention %q", st.Retention)
			}
		}
		for gi, dg := range st.DataGroups {
			dgID := gi + 1
			attrs := map[string]string{}
			if dg.Base != "" {
				attrs["base"] = dg.Base
			}
			if err := add("DATA-GROUP", dgID, under, attrs, ""); err != nil {
				return nil, err
			}
			underDG := append([]int{dgID}, under...)
			dataID := 0
			for _, d := range dg.Data {
				for _, leaf := range ExpandData(schema, d) {
					dataID++
					dattrs := map[string]string{"ref": leaf.Ref, "optional": "no"}
					if d.Optional {
						dattrs["optional"] = "yes"
					}
					if err := add("DATA", dataID, underDG, dattrs, ""); err != nil {
						return nil, err
					}
					if len(leaf.Categories) == 0 {
						continue
					}
					underData := append([]int{dataID}, underDG...)
					if err := add("CATEGORIES", 1, underData, nil, ""); err != nil {
						return nil, err
					}
					underCats := append([]int{1}, underData...)
					for ci, cat := range leaf.Categories {
						if err := add(cat, ci+1, underCats, nil, ""); err != nil {
							return nil, fmt.Errorf("shred: no generic table for category %q", cat)
						}
					}
				}
			}
		}
	}

	// Deterministic table order: follow the registry's declaration order
	// so installs touch tables in a stable sequence.
	var tables []fragmentTable
	for _, t := range genericRegistry() {
		if rs := rows[t.element]; len(rs) > 0 {
			tables = append(tables, fragmentTable{name: t.TableName(), rows: rs})
		}
	}
	return &Fragment{id: policyID, name: pol.Name, tables: tables}, nil
}
