// Package shred stores P3P policies in relational tables: the paper's
// Section 5. It implements both the pedagogical generic schema produced by
// the Figure 8 decomposition algorithm (one table per element, used by the
// XTABLE translation path) and the hand-optimized schema of Figure 14
// (value subelements folded into columns of their parent's table), plus the
// data-population algorithm of Figure 10.
//
// Shredding performs category augmentation once, at install time: every
// DATA element is expanded to the leaf data elements it covers, each with
// the categories the base data schema assigns. The matching queries then
// never pay for augmentation — the asymmetry the paper's §6.3.2 profiling
// highlights.
package shred

import (
	"fmt"
	"strings"
	"sync"

	"p3pdb/internal/p3p"
	"p3pdb/internal/p3p/basedata"
	"p3pdb/internal/reldb"
)

// optimizedDDL creates the Figure 14 schema. Purpose and Recipient carry
// their value subelements as rows (purpose/recipient + required columns);
// RETENTION and CONSEQUENCE are folded into Statement; categories are
// folded into the Data table (one row per data leaf and category, with an
// empty-string category for augmented leaves that resolve to none).
var optimizedDDL = []string{
	`CREATE TABLE Policy (
		policy_id INTEGER NOT NULL,
		name VARCHAR(128) NOT NULL,
		discuri VARCHAR(255),
		opturi VARCHAR(255),
		entity_name VARCHAR(255),
		access VARCHAR(32),
		test INTEGER NOT NULL,
		PRIMARY KEY (policy_id))`,
	`CREATE UNIQUE INDEX ix_policy_name ON Policy (name)`,
	`CREATE TABLE Statement (
		policy_id INTEGER NOT NULL,
		statement_id INTEGER NOT NULL,
		consequence VARCHAR(4096),
		retention VARCHAR(32),
		non_identifiable INTEGER NOT NULL,
		PRIMARY KEY (policy_id, statement_id))`,
	`CREATE INDEX ix_statement_policy ON Statement (policy_id)`,
	`CREATE TABLE Purpose (
		policy_id INTEGER NOT NULL,
		statement_id INTEGER NOT NULL,
		purpose VARCHAR(32) NOT NULL,
		required VARCHAR(16) NOT NULL,
		PRIMARY KEY (policy_id, statement_id, purpose))`,
	`CREATE INDEX ix_purpose_stmt ON Purpose (policy_id, statement_id)`,
	`CREATE INDEX ix_purpose_policy ON Purpose (policy_id)`,
	`CREATE TABLE Recipient (
		policy_id INTEGER NOT NULL,
		statement_id INTEGER NOT NULL,
		recipient VARCHAR(32) NOT NULL,
		required VARCHAR(16) NOT NULL,
		PRIMARY KEY (policy_id, statement_id, recipient))`,
	`CREATE INDEX ix_recipient_stmt ON Recipient (policy_id, statement_id)`,
	`CREATE INDEX ix_recipient_policy ON Recipient (policy_id)`,
	`CREATE TABLE Datagroup (
		policy_id INTEGER NOT NULL,
		statement_id INTEGER NOT NULL,
		datagroup_id INTEGER NOT NULL,
		base VARCHAR(255),
		PRIMARY KEY (policy_id, statement_id, datagroup_id))`,
	`CREATE INDEX ix_datagroup_stmt ON Datagroup (policy_id, statement_id)`,
	`CREATE TABLE Data (
		policy_id INTEGER NOT NULL,
		statement_id INTEGER NOT NULL,
		datagroup_id INTEGER NOT NULL,
		data_id INTEGER NOT NULL,
		ref VARCHAR(255) NOT NULL,
		orig_ref VARCHAR(255) NOT NULL,
		optional INTEGER NOT NULL,
		category VARCHAR(32) NOT NULL,
		PRIMARY KEY (policy_id, statement_id, datagroup_id, data_id, category))`,
	`CREATE INDEX ix_data_group ON Data (policy_id, statement_id, datagroup_id)`,
	`CREATE INDEX ix_data_elem ON Data (policy_id, statement_id, datagroup_id, data_id)`,
	`CREATE INDEX ix_data_policy ON Data (policy_id)`,
}

// OptimizedStore shreds policies into the optimized (Figure 14) schema.
type OptimizedStore struct {
	db     *reldb.DB
	schema *basedata.Schema
	nextID int
}

// NewOptimized creates the optimized tables in db (which must not already
// contain them) and returns a store.
func NewOptimized(db *reldb.DB) (*OptimizedStore, error) {
	for _, ddl := range optimizedDDL {
		if _, err := db.Exec(ddl); err != nil {
			return nil, fmt.Errorf("shred: creating optimized schema: %w", err)
		}
	}
	return &OptimizedStore{db: db, schema: basedata.Default(), nextID: 1}, nil
}

// DB exposes the underlying database (for translated queries and dumps).
func (s *OptimizedStore) DB() *reldb.DB { return s.db }

// InstallPolicy validates, augments, and shreds one policy, returning its
// assigned policy id.
func (s *OptimizedStore) InstallPolicy(pol *p3p.Policy) (int, error) {
	return s.InstallPolicyAt(pol, s.nextID)
}

// InstallPolicyAt is InstallPolicy with the policy id chosen by the
// caller. Snapshot rebuilds (core's copy-on-write state swap) use it to
// give each policy the same id it held in the previous snapshot, so that
// id-bound artifacts — cached XTABLE translations, in-flight compiled
// preferences — stay valid across swaps. The id must be unused; the
// store's auto-assign sequence continues past it.
func (s *OptimizedStore) InstallPolicyAt(pol *p3p.Policy, id int) (int, error) {
	frag, err := BuildOptimizedFragment(s.schema, pol, id)
	if err != nil {
		return 0, err
	}
	return s.InstallFragment(frag)
}

// InstallFragment bulk-appends a prebuilt shred fragment. Snapshot
// rebuilds pass fragments cached from the previous snapshot, turning the
// per-rebuild shred cost into a validated bulk append.
func (s *OptimizedStore) InstallFragment(frag *Fragment) (int, error) {
	if prev, err := s.PolicyID(frag.name); err == nil {
		return 0, fmt.Errorf("shred: policy %q already installed as id %d", frag.name, prev)
	}
	if frag.id >= s.nextID {
		s.nextID = frag.id + 1
	}
	if err := frag.installInto(s.db); err != nil {
		return 0, err
	}
	return frag.id, nil
}

// policyIDStmt is the parsed PolicyID lookup, shared across stores:
// statements are immutable ASTs, and parsing per lookup would dominate
// the bulk-install fast path.
var policyIDStmt = sync.OnceValue(func() reldb.Statement {
	stmt, err := reldb.Parse(`SELECT policy_id FROM Policy WHERE Policy.name = ?`)
	if err != nil {
		panic(err)
	}
	return stmt
})

// PolicyID looks up the id assigned to a named policy.
func (s *OptimizedStore) PolicyID(name string) (int, error) {
	rows, err := s.db.QueryStmt(policyIDStmt(), reldb.Str(name))
	if err != nil {
		return 0, err
	}
	if len(rows.Data) == 0 {
		return 0, fmt.Errorf("shred: policy %q not installed", name)
	}
	n, _ := rows.Data[0][0].AsInt()
	return int(n), nil
}

// RemovePolicy deletes every row belonging to a policy, enabling policy
// versioning (install new version, remove old).
func (s *OptimizedStore) RemovePolicy(policyID int) error {
	for _, table := range []string{"Data", "Datagroup", "Recipient", "Purpose", "Statement", "Policy"} {
		if _, err := s.db.Exec(
			fmt.Sprintf(`DELETE FROM %s WHERE policy_id = ?`, table),
			reldb.Int(int64(policyID))); err != nil {
			return err
		}
	}
	return nil
}

// ExpandedLeaf is one augmented data leaf produced from a DATA element.
type ExpandedLeaf struct {
	Ref        string // leaf reference including leading '#'
	Categories []string
}

// ExpandData performs the augmentation of one DATA element: leaf expansion
// over the base data schema plus category resolution. Unknown references
// stay as a single leaf with their declared categories.
func ExpandData(schema *basedata.Schema, d *p3p.Data) []ExpandedLeaf {
	leaves := schema.Leaves(d.Ref)
	if len(leaves) == 0 {
		return []ExpandedLeaf{{
			Ref:        normalizeHash(d.Ref),
			Categories: schema.CategoriesFor(d.Ref, d.Categories),
		}}
	}
	out := make([]ExpandedLeaf, len(leaves))
	for i, leaf := range leaves {
		out[i] = ExpandedLeaf{
			Ref:        "#" + leaf.Ref,
			Categories: schema.CategoriesFor(leaf.Ref, d.Categories),
		}
	}
	return out
}

func normalizeHash(ref string) string {
	if strings.HasPrefix(ref, "#") {
		return ref
	}
	return "#" + ref
}

func nullable(s string) reldb.Value {
	if s == "" {
		return reldb.Null
	}
	return reldb.Str(s)
}

func boolInt(b bool) reldb.Value {
	if b {
		return reldb.Int(1)
	}
	return reldb.Int(0)
}
