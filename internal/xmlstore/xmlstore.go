// Package xmlstore is a native XML store: named, immutable XML documents
// served to the XQuery engine's document() function. It realizes the
// paper's third architectural variation (policies stored natively as XML
// and queried with XQuery), which the authors could not benchmark for lack
// of a public-domain native XML store — so we built one.
package xmlstore

import (
	"fmt"
	"sort"
	"sync"

	"p3pdb/internal/xmldom"
)

// Store holds named XML documents. It is safe for concurrent use.
type Store struct {
	mu   sync.RWMutex
	docs map[string]*xmldom.Node
}

// New returns an empty store.
func New() *Store {
	return &Store{docs: map[string]*xmldom.Node{}}
}

// Put stores a document under a name, replacing any previous document. The
// store clones the tree so later mutations by the caller cannot corrupt
// stored documents.
func (s *Store) Put(name string, doc *xmldom.Node) {
	s.mu.Lock()
	defer s.mu.Unlock()
	s.docs[name] = doc.Clone()
}

// PutXML parses and stores an XML document.
func (s *Store) PutXML(name, src string) error {
	doc, err := xmldom.ParseString(src)
	if err != nil {
		return fmt.Errorf("xmlstore: %w", err)
	}
	s.mu.Lock()
	defer s.mu.Unlock()
	s.docs[name] = doc
	return nil
}

// Get returns the named document's root element.
func (s *Store) Get(name string) (*xmldom.Node, error) {
	s.mu.RLock()
	defer s.mu.RUnlock()
	doc, ok := s.docs[name]
	if !ok {
		return nil, fmt.Errorf("xmlstore: no document %q", name)
	}
	return doc, nil
}

// Delete removes a document; deleting a missing document is a no-op.
func (s *Store) Delete(name string) {
	s.mu.Lock()
	defer s.mu.Unlock()
	delete(s.docs, name)
}

// Names returns the stored document names, sorted.
func (s *Store) Names() []string {
	s.mu.RLock()
	defer s.mu.RUnlock()
	out := make([]string, 0, len(s.docs))
	for n := range s.docs {
		out = append(out, n)
	}
	sort.Strings(out)
	return out
}

// Len reports the number of stored documents.
func (s *Store) Len() int {
	s.mu.RLock()
	defer s.mu.RUnlock()
	return len(s.docs)
}

// Resolver returns a document-resolution function for the XQuery engine,
// with zero or more aliases overlaid: alias lookups hit the aliased name.
// The paper's generated queries reference document("applicable-policy");
// the matcher aliases that to the policy selected by the reference file.
func (s *Store) Resolver(aliases map[string]string) func(string) (*xmldom.Node, error) {
	return func(name string) (*xmldom.Node, error) {
		if target, ok := aliases[name]; ok {
			name = target
		}
		return s.Get(name)
	}
}
