package xmlstore

import (
	"reflect"
	"testing"

	"p3pdb/internal/xmldom"
)

func TestPutGetDelete(t *testing.T) {
	s := New()
	if err := s.PutXML("a", `<A x="1"/>`); err != nil {
		t.Fatal(err)
	}
	doc, err := s.Get("a")
	if err != nil || doc.Name != "A" {
		t.Fatalf("Get: %v %v", doc, err)
	}
	if _, err := s.Get("missing"); err == nil {
		t.Error("missing doc should error")
	}
	s.Delete("a")
	if _, err := s.Get("a"); err == nil {
		t.Error("deleted doc should be gone")
	}
	s.Delete("a") // no-op
}

func TestPutClones(t *testing.T) {
	s := New()
	n := xmldom.New("ROOT")
	s.Put("d", n)
	n.SetAttr("mutated", "yes")
	got, err := s.Get("d")
	if err != nil {
		t.Fatal(err)
	}
	if _, ok := got.Attr("mutated"); ok {
		t.Error("store shares storage with caller")
	}
}

func TestPutXMLRejectsBadInput(t *testing.T) {
	s := New()
	if err := s.PutXML("bad", "<unclosed"); err == nil {
		t.Error("bad XML should be rejected")
	}
	if s.Len() != 0 {
		t.Error("failed put should not store")
	}
}

func TestNamesAndLen(t *testing.T) {
	s := New()
	_ = s.PutXML("b", `<B/>`)
	_ = s.PutXML("a", `<A/>`)
	if got := s.Names(); !reflect.DeepEqual(got, []string{"a", "b"}) {
		t.Errorf("Names = %v", got)
	}
	if s.Len() != 2 {
		t.Errorf("Len = %d", s.Len())
	}
}

func TestResolver(t *testing.T) {
	s := New()
	_ = s.PutXML("policy:x", `<POLICY/>`)
	r := s.Resolver(map[string]string{"applicable-policy": "policy:x"})
	doc, err := r("applicable-policy")
	if err != nil || doc.Name != "POLICY" {
		t.Errorf("alias: %v %v", doc, err)
	}
	doc, err = r("policy:x")
	if err != nil || doc.Name != "POLICY" {
		t.Errorf("direct: %v %v", doc, err)
	}
	if _, err := r("nope"); err == nil {
		t.Error("unknown name should error")
	}
}

func TestConcurrentAccess(t *testing.T) {
	s := New()
	done := make(chan bool, 8)
	for i := 0; i < 8; i++ {
		go func(i int) {
			for j := 0; j < 50; j++ {
				name := string(rune('a' + i))
				_ = s.PutXML(name, `<D/>`)
				_, _ = s.Get(name)
				_ = s.Names()
			}
			done <- true
		}(i)
	}
	for i := 0; i < 8; i++ {
		<-done
	}
}
