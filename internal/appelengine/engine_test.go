package appelengine

import (
	"strings"
	"testing"

	"p3pdb/internal/appel"
	"p3pdb/internal/p3p"
	"p3pdb/internal/xmldom"
)

func mustRuleset(t testing.TB, src string) *appel.Ruleset {
	t.Helper()
	rs, err := appel.Parse(src)
	if err != nil {
		t.Fatalf("parse ruleset: %v", err)
	}
	return rs
}

// TestVolgaConformsToJane reproduces the paper's worked example (§2.2):
// Volga's policy conforms to Jane's preferences — neither block rule fires
// and the catch-all requests the page.
func TestVolgaConformsToJane(t *testing.T) {
	e := New()
	rs := mustRuleset(t, appel.JanePreferenceXML)
	d, err := e.Match(rs, p3p.VolgaPolicyXML)
	if err != nil {
		t.Fatal(err)
	}
	if d.Behavior != "request" || d.RuleIndex != 2 {
		t.Errorf("decision = %+v, want request via rule 3", d)
	}
}

// TestAlwaysRequiredFiresRule reproduces the paper's counterfactual: if
// individual-decision were not declared opt-in, the default (always) would
// apply and Jane's first rule would fire.
func TestAlwaysRequiredFiresRule(t *testing.T) {
	modified := strings.Replace(p3p.VolgaPolicyXML,
		`<individual-decision required="opt-in"/>`, `<individual-decision/>`, 1)
	e := New()
	rs := mustRuleset(t, appel.JanePreferenceXML)
	d, err := e.Match(rs, modified)
	if err != nil {
		t.Fatal(err)
	}
	if d.Behavior != "block" || d.RuleIndex != 0 {
		t.Errorf("decision = %+v, want block via rule 1", d)
	}
}

// TestRecipientRuleFires checks Jane's second rule: a policy sharing data
// with unrelated parties is blocked.
func TestRecipientRuleFires(t *testing.T) {
	modified := strings.Replace(p3p.VolgaPolicyXML,
		`<RECIPIENT><ours/><same/></RECIPIENT>`, `<RECIPIENT><ours/><unrelated/></RECIPIENT>`, 1)
	e := New()
	rs := mustRuleset(t, appel.JanePreferenceXML)
	d, err := e.Match(rs, modified)
	if err != nil {
		t.Fatal(err)
	}
	if d.Behavior != "block" || d.RuleIndex != 1 {
		t.Errorf("decision = %+v, want block via rule 2", d)
	}
}

func matchSnippet(t *testing.T, ruleBody, policyBody string) bool {
	t.Helper()
	rsDoc := `<appel:RULESET xmlns:appel="http://www.w3.org/2002/01/APPELv1">
		<appel:RULE behavior="block">` + ruleBody + `</appel:RULE>
		<appel:OTHERWISE behavior="request"/>
	</appel:RULESET>`
	rs := mustRuleset(t, rsDoc)
	d, err := New().Match(rs, policyBody)
	if err != nil {
		t.Fatalf("match: %v", err)
	}
	return d.Behavior == "block"
}

func TestConnectiveOr(t *testing.T) {
	rule := `<POLICY><STATEMENT><PURPOSE appel:connective="or"><admin/><telemarketing/></PURPOSE></STATEMENT></POLICY>`
	yes := `<POLICY><STATEMENT><PURPOSE><current/><telemarketing/></PURPOSE></STATEMENT></POLICY>`
	no := `<POLICY><STATEMENT><PURPOSE><current/></PURPOSE></STATEMENT></POLICY>`
	if !matchSnippet(t, rule, yes) {
		t.Error("or: should match when one disjunct present")
	}
	if matchSnippet(t, rule, no) {
		t.Error("or: should not match when no disjunct present")
	}
}

func TestConnectiveAnd(t *testing.T) {
	rule := `<POLICY><STATEMENT><PURPOSE appel:connective="and"><admin/><telemarketing/></PURPOSE></STATEMENT></POLICY>`
	yes := `<POLICY><STATEMENT><PURPOSE><admin/><telemarketing/><current/></PURPOSE></STATEMENT></POLICY>`
	no := `<POLICY><STATEMENT><PURPOSE><admin/><current/></PURPOSE></STATEMENT></POLICY>`
	if !matchSnippet(t, rule, yes) {
		t.Error("and: should match when all present (extras allowed)")
	}
	if matchSnippet(t, rule, no) {
		t.Error("and: should not match when one missing")
	}
}

func TestConnectiveAndExact(t *testing.T) {
	rule := `<POLICY><STATEMENT><PURPOSE appel:connective="and-exact"><admin/><telemarketing/></PURPOSE></STATEMENT></POLICY>`
	yes := `<POLICY><STATEMENT><PURPOSE><admin/><telemarketing/></PURPOSE></STATEMENT></POLICY>`
	extra := `<POLICY><STATEMENT><PURPOSE><admin/><telemarketing/><current/></PURPOSE></STATEMENT></POLICY>`
	missing := `<POLICY><STATEMENT><PURPOSE><admin/></PURPOSE></STATEMENT></POLICY>`
	if !matchSnippet(t, rule, yes) {
		t.Error("and-exact: exact set should match")
	}
	if matchSnippet(t, rule, extra) {
		t.Error("and-exact: extra element should defeat the match")
	}
	if matchSnippet(t, rule, missing) {
		t.Error("and-exact: missing element should defeat the match")
	}
}

func TestConnectiveOrExact(t *testing.T) {
	rule := `<POLICY><STATEMENT><PURPOSE appel:connective="or-exact"><admin/><telemarketing/></PURPOSE></STATEMENT></POLICY>`
	subset := `<POLICY><STATEMENT><PURPOSE><admin/></PURPOSE></STATEMENT></POLICY>`
	extra := `<POLICY><STATEMENT><PURPOSE><admin/><current/></PURPOSE></STATEMENT></POLICY>`
	none := `<POLICY><STATEMENT><PURPOSE><current/></PURPOSE></STATEMENT></POLICY>`
	if !matchSnippet(t, rule, subset) {
		t.Error("or-exact: subset should match")
	}
	if matchSnippet(t, rule, extra) {
		t.Error("or-exact: unlisted element should defeat the match")
	}
	if matchSnippet(t, rule, none) {
		t.Error("or-exact: no listed element present should not match")
	}
}

func TestConnectiveNonOr(t *testing.T) {
	rule := `<POLICY><STATEMENT><RECIPIENT appel:connective="non-or"><unrelated/><public/></RECIPIENT></STATEMENT></POLICY>`
	clean := `<POLICY><STATEMENT><RECIPIENT><ours/></RECIPIENT></STATEMENT></POLICY>`
	dirty := `<POLICY><STATEMENT><RECIPIENT><ours/><public/></RECIPIENT></STATEMENT></POLICY>`
	if !matchSnippet(t, rule, clean) {
		t.Error("non-or: should match when none of the listed elements present")
	}
	if matchSnippet(t, rule, dirty) {
		t.Error("non-or: should not match when a listed element is present")
	}
}

func TestConnectiveNonAnd(t *testing.T) {
	rule := `<POLICY><STATEMENT><PURPOSE appel:connective="non-and"><admin/><telemarketing/></PURPOSE></STATEMENT></POLICY>`
	both := `<POLICY><STATEMENT><PURPOSE><admin/><telemarketing/></PURPOSE></STATEMENT></POLICY>`
	one := `<POLICY><STATEMENT><PURPOSE><admin/></PURPOSE></STATEMENT></POLICY>`
	if matchSnippet(t, rule, both) {
		t.Error("non-and: should not match when all listed present")
	}
	if !matchSnippet(t, rule, one) {
		t.Error("non-and: should match when not all present")
	}
}

func TestAttributeDefaulting(t *testing.T) {
	// Pattern requires required="always"; policy omits the attribute, so
	// the P3P default (always) applies and the pattern matches.
	rule := `<POLICY><STATEMENT><PURPOSE><contact required="always"/></PURPOSE></STATEMENT></POLICY>`
	implicit := `<POLICY><STATEMENT><PURPOSE><contact/></PURPOSE></STATEMENT></POLICY>`
	optIn := `<POLICY><STATEMENT><PURPOSE><contact required="opt-in"/></PURPOSE></STATEMENT></POLICY>`
	if !matchSnippet(t, rule, implicit) {
		t.Error("absent required should default to always")
	}
	if matchSnippet(t, rule, optIn) {
		t.Error("opt-in should not match always")
	}
}

func TestAttributeWildcard(t *testing.T) {
	rule := `<POLICY><STATEMENT><PURPOSE><contact required="*"/></PURPOSE></STATEMENT></POLICY>`
	optIn := `<POLICY><STATEMENT><PURPOSE><contact required="opt-in"/></PURPOSE></STATEMENT></POLICY>`
	if !matchSnippet(t, rule, optIn) {
		t.Error("wildcard should match any value")
	}
}

func TestAttributeMissingNoDefault(t *testing.T) {
	rule := `<POLICY><STATEMENT x="1"><PURPOSE><current/></PURPOSE></STATEMENT></POLICY>`
	pol := `<POLICY><STATEMENT><PURPOSE><current/></PURPOSE></STATEMENT></POLICY>`
	if matchSnippet(t, rule, pol) {
		t.Error("attribute with no default must be present to match")
	}
}

func TestDataRefHierarchy(t *testing.T) {
	// Preference blocks collection of postal address; policy collects the
	// whole home-info struct (augmentation expands it to leaves).
	rule := `<POLICY><STATEMENT><DATA-GROUP><DATA ref="#user.home-info.postal"/></DATA-GROUP></STATEMENT></POLICY>`
	broad := `<POLICY><STATEMENT><DATA-GROUP><DATA ref="#user.home-info"/></DATA-GROUP></STATEMENT></POLICY>`
	narrow := `<POLICY><STATEMENT><DATA-GROUP><DATA ref="#user.home-info.postal.street"/></DATA-GROUP></STATEMENT></POLICY>`
	unrelated := `<POLICY><STATEMENT><DATA-GROUP><DATA ref="#user.bdate"/></DATA-GROUP></STATEMENT></POLICY>`
	if !matchSnippet(t, rule, broad) {
		t.Error("pattern under a broader policy ref should match")
	}
	if !matchSnippet(t, rule, narrow) {
		t.Error("pattern above a narrower policy ref should match")
	}
	if matchSnippet(t, rule, unrelated) {
		t.Error("unrelated ref should not match")
	}
}

func TestCategoryMatchingViaAugmentation(t *testing.T) {
	// The preference blocks any data in the physical category. The policy
	// collects #user.name, whose category comes from the base data
	// schema, not the policy text: only augmentation makes this match.
	rule := `<POLICY><STATEMENT><DATA-GROUP><DATA ref="*"><CATEGORIES><physical/></CATEGORIES></DATA></DATA-GROUP></STATEMENT></POLICY>`
	pol := `<POLICY><STATEMENT><DATA-GROUP><DATA ref="#user.name"/></DATA-GROUP></STATEMENT></POLICY>`
	if !matchSnippet(t, rule, pol) {
		t.Error("augmentation should attach physical category to user.name")
	}

	// With augmentation disabled the same rule cannot fire.
	rs := mustRuleset(t, `<appel:RULESET xmlns:appel="http://www.w3.org/2002/01/APPELv1">
		<appel:RULE behavior="block"><POLICY><STATEMENT><DATA-GROUP><DATA ref="*"><CATEGORIES><physical/></CATEGORIES></DATA></DATA-GROUP></STATEMENT></POLICY></appel:RULE>
		<appel:OTHERWISE behavior="request"/>
	</appel:RULESET>`)
	e := NewWithOptions(Options{SkipAugmentation: true})
	d, err := e.Match(rs, pol)
	if err != nil {
		t.Fatal(err)
	}
	if d.Behavior != "request" {
		t.Errorf("without augmentation expected request, got %+v", d)
	}
}

func TestDeclaredCategoriesOnVariableData(t *testing.T) {
	// dynamic.miscdata takes its categories from the policy declaration.
	rule := `<POLICY><STATEMENT><DATA-GROUP><DATA ref="#dynamic.miscdata"><CATEGORIES><purchase/></CATEGORIES></DATA></DATA-GROUP></STATEMENT></POLICY>`
	declared := `<POLICY><STATEMENT><DATA-GROUP><DATA ref="#dynamic.miscdata"><CATEGORIES><purchase/></CATEGORIES></DATA></DATA-GROUP></STATEMENT></POLICY>`
	other := `<POLICY><STATEMENT><DATA-GROUP><DATA ref="#dynamic.miscdata"><CATEGORIES><health/></CATEGORIES></DATA></DATA-GROUP></STATEMENT></POLICY>`
	if !matchSnippet(t, rule, declared) {
		t.Error("declared purchase category should match")
	}
	if matchSnippet(t, rule, other) {
		t.Error("health-only declaration should not match purchase pattern")
	}
}

func TestNoRuleFired(t *testing.T) {
	rs := mustRuleset(t, `<appel:RULESET xmlns:appel="http://www.w3.org/2002/01/APPELv1">
		<appel:RULE behavior="block"><POLICY><STATEMENT><PURPOSE><telemarketing/></PURPOSE></STATEMENT></POLICY></appel:RULE>
	</appel:RULESET>`)
	_, err := New().Match(rs, `<POLICY><STATEMENT><PURPOSE><current/></PURPOSE></STATEMENT></POLICY>`)
	if err != ErrNoRuleFired {
		t.Errorf("expected ErrNoRuleFired, got %v", err)
	}
}

func TestBadPolicyDocument(t *testing.T) {
	rs := mustRuleset(t, appel.JanePreferenceXML)
	if _, err := New().Match(rs, "<not-closed"); err == nil {
		t.Error("expected parse error")
	}
	if _, err := New().Match(rs, `<POLICIES><POLICY/></POLICIES>`); err == nil {
		t.Error("POLICIES evidence should be rejected")
	}
}

func TestAugmentStructure(t *testing.T) {
	e := New()
	doc, err := xmldom.ParseString(p3p.VolgaPolicyXML)
	if err != nil {
		t.Fatal(err)
	}
	aug := e.Augment(doc)
	// The original must be untouched.
	var origData int
	doc.Walk(func(n *xmldom.Node) bool {
		if n.Name == "DATA" {
			origData++
		}
		return true
	})
	if origData != 7 { // 2 entity + 5 statement data
		t.Errorf("original DATA count changed: %d", origData)
	}
	// The augmented document expands statement data to leaves with
	// categories, and leaves the ENTITY data group alone.
	var augData, withCats int
	aug.Walk(func(n *xmldom.Node) bool {
		if n.Name == "DATA" && n.Parent.Parent.Name == "STATEMENT" {
			augData++
			if n.Child("CATEGORIES") != nil {
				withCats++
			}
		}
		return true
	})
	// user.name has 6 leaves, user.home-info.postal has 12 (incl. its
	// name structure), miscdata 1, email 1, miscdata 1.
	if augData < 15 {
		t.Errorf("expected leaf expansion, got %d statement DATA elements", augData)
	}
	if withCats != augData {
		t.Errorf("every augmented DATA should carry categories: %d of %d", withCats, augData)
	}
	entityDG := aug.Child("ENTITY").Child("DATA-GROUP")
	if len(entityDG.Children) != 2 {
		t.Errorf("ENTITY data group should be untouched, has %d children", len(entityDG.Children))
	}
}

func TestNestedStatementScoping(t *testing.T) {
	// The purpose and the recipient pattern must hold within the SAME
	// statement (they are children of one STATEMENT expression).
	rule := `<POLICY><STATEMENT><PURPOSE><telemarketing/></PURPOSE><RECIPIENT><public/></RECIPIENT></STATEMENT></POLICY>`
	sameStmt := `<POLICY><STATEMENT><PURPOSE><telemarketing/></PURPOSE><RECIPIENT><public/></RECIPIENT></STATEMENT></POLICY>`
	splitStmt := `<POLICY>
		<STATEMENT><PURPOSE><telemarketing/></PURPOSE><RECIPIENT><ours/></RECIPIENT></STATEMENT>
		<STATEMENT><PURPOSE><current/></PURPOSE><RECIPIENT><public/></RECIPIENT></STATEMENT>
	</POLICY>`
	if !matchSnippet(t, rule, sameStmt) {
		t.Error("co-located purpose and recipient should match")
	}
	if matchSnippet(t, rule, splitStmt) {
		t.Error("purpose and recipient in different statements must not match a single STATEMENT pattern")
	}
}

func TestEmptyRuleBodyFiresImmediately(t *testing.T) {
	rs := &appel.Ruleset{Rules: []*appel.Rule{{Behavior: "limited"}}}
	d, err := New().Match(rs, `<POLICY/>`)
	if err != nil {
		t.Fatal(err)
	}
	if d.Behavior != "limited" || d.RuleIndex != 0 {
		t.Errorf("decision: %+v", d)
	}
}

func TestRefMatches(t *testing.T) {
	cases := []struct {
		pat, pol string
		want     bool
	}{
		{"#user.name", "#user.name", true},
		{"#user.name", "#user.name.given", true},
		{"#user.name.given", "#user.name", true},
		{"#user.name", "#user.namey", false},
		{"#user.name", "#user.bdate", false},
		{"user.name", "#user.name", true},
	}
	for _, c := range cases {
		if got := refMatches(c.pat, c.pol); got != c.want {
			t.Errorf("refMatches(%q,%q) = %v, want %v", c.pat, c.pol, got, c.want)
		}
	}
}
