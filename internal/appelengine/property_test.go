package appelengine

import (
	"fmt"
	"math/rand"
	"strings"
	"testing"

	"p3pdb/internal/appel"
	"p3pdb/internal/xmldom"
)

// randomPolicy builds a small random policy DOM over the purpose and
// recipient vocabulary.
func randomPolicy(r *rand.Rand) string {
	purposes := []string{"current", "admin", "contact", "telemarketing", "develop"}
	recipients := []string{"ours", "same", "unrelated"}
	var b strings.Builder
	b.WriteString("<POLICY>")
	for i, n := 0, 1+r.Intn(2); i < n; i++ {
		b.WriteString("<STATEMENT><PURPOSE>")
		seen := map[string]bool{}
		for j, m := 0, 1+r.Intn(3); j < m; j++ {
			v := purposes[r.Intn(len(purposes))]
			if seen[v] {
				continue
			}
			seen[v] = true
			switch r.Intn(3) {
			case 0:
				fmt.Fprintf(&b, "<%s/>", v)
			case 1:
				fmt.Fprintf(&b, `<%s required="opt-in"/>`, v)
			case 2:
				fmt.Fprintf(&b, `<%s required="opt-out"/>`, v)
			}
		}
		b.WriteString("</PURPOSE><RECIPIENT>")
		fmt.Fprintf(&b, "<%s/>", recipients[r.Intn(len(recipients))])
		b.WriteString("</RECIPIENT><RETENTION><stated-purpose/></RETENTION>")
		b.WriteString("</STATEMENT>")
	}
	b.WriteString("</POLICY>")
	return b.String()
}

// ruleWithConnective builds a one-rule ruleset patterning PURPOSE values
// under the given connective.
func ruleWithConnective(connective string, values []string) string {
	var kids strings.Builder
	for _, v := range values {
		kids.WriteString("<" + v + "/>")
	}
	return `<appel:RULESET xmlns:appel="http://www.w3.org/2002/01/APPELv1">
	  <appel:RULE behavior="block">
	    <POLICY><STATEMENT><PURPOSE appel:connective="` + connective + `">` +
		kids.String() + `</PURPOSE></STATEMENT></POLICY>
	  </appel:RULE>
	  <appel:OTHERWISE behavior="request"/>
	</appel:RULESET>`
}

// fires evaluates a one-block-rule ruleset against a policy.
func fires(t *testing.T, e *Engine, ruleset, policy string) bool {
	t.Helper()
	rs, err := appel.Parse(ruleset)
	if err != nil {
		t.Fatal(err)
	}
	d, err := e.Match(rs, policy)
	if err != nil {
		t.Fatalf("match: %v\npolicy: %s", err, policy)
	}
	return d.Behavior == "block"
}

// TestMetamorphicConnectives checks algebraic relations between the
// connectives that must hold on any single-statement policy:
//
//	or-exact  => or         and-exact => and
//	and       => or         (for the same non-empty value list)
//	non-or    =  !or        (when a PURPOSE element exists)
//	non-and   =  !and       (when a PURPOSE element exists)
func TestMetamorphicConnectives(t *testing.T) {
	e := New()
	r := rand.New(rand.NewSource(4))
	values := []string{"current", "admin", "contact", "telemarketing"}
	for round := 0; round < 150; round++ {
		policy := randomPolicy(r)
		// Draw a random non-empty subset of values.
		var subset []string
		for _, v := range values {
			if r.Intn(2) == 0 {
				subset = append(subset, v)
			}
		}
		if len(subset) == 0 {
			subset = []string{values[r.Intn(len(values))]}
		}

		or := fires(t, e, ruleWithConnective("or", subset), policy)
		and := fires(t, e, ruleWithConnective("and", subset), policy)
		nonOr := fires(t, e, ruleWithConnective("non-or", subset), policy)
		nonAnd := fires(t, e, ruleWithConnective("non-and", subset), policy)
		orExact := fires(t, e, ruleWithConnective("or-exact", subset), policy)
		andExact := fires(t, e, ruleWithConnective("and-exact", subset), policy)

		ctx := fmt.Sprintf("subset %v policy %s", subset, policy)
		if orExact && !or {
			t.Fatalf("or-exact implies or violated: %s", ctx)
		}
		if andExact && !and {
			t.Fatalf("and-exact implies and violated: %s", ctx)
		}
		if and && !or {
			t.Fatalf("and implies or violated: %s", ctx)
		}
		if andExact && !orExact {
			t.Fatalf("and-exact implies or-exact violated: %s", ctx)
		}
		// Every generated policy has statements with PURPOSE elements,
		// so the negated connectives are pure negations per statement;
		// at the rule level (exists-a-statement semantics) the relation
		// weakens to: non-or fires iff some statement has no listed
		// value, which with a single statement is !or.
		if strings.Count(policy, "<STATEMENT>") == 1 {
			if nonOr != !or {
				t.Fatalf("single-statement non-or != !or: %s", ctx)
			}
			if nonAnd != !and {
				t.Fatalf("single-statement non-and != !and: %s", ctx)
			}
		}
	}
}

// TestAugmentationIdempotent checks that augmenting an already augmented
// policy does not change matching decisions: leaf refs expand to
// themselves and categories resolve identically.
func TestAugmentationIdempotent(t *testing.T) {
	e := New()
	r := rand.New(rand.NewSource(11))
	ruleset := `<appel:RULESET xmlns:appel="http://www.w3.org/2002/01/APPELv1">
	  <appel:RULE behavior="block">
	    <POLICY><STATEMENT><DATA-GROUP><DATA ref="*">
	      <CATEGORIES appel:connective="or"><physical/><online/><demographic/></CATEGORIES>
	    </DATA></DATA-GROUP></STATEMENT></POLICY>
	  </appel:RULE>
	  <appel:OTHERWISE behavior="request"/>
	</appel:RULESET>`
	rs, err := appel.Parse(ruleset)
	if err != nil {
		t.Fatal(err)
	}
	refs := []string{"#user.name", "#user.home-info", "#user.bdate", "#dynamic.searchtext"}
	for i := 0; i < 20; i++ {
		ref := refs[r.Intn(len(refs))]
		policy := `<POLICY><STATEMENT><PURPOSE><current/></PURPOSE>` +
			`<RECIPIENT><ours/></RECIPIENT><RETENTION><no-retention/></RETENTION>` +
			`<DATA-GROUP><DATA ref="` + ref + `"/></DATA-GROUP></STATEMENT></POLICY>`
		doc, err := xmldom.ParseString(policy)
		if err != nil {
			t.Fatal(err)
		}
		once := e.Augment(doc)
		twice := e.Augment(once)

		d1, err := e.MatchDOM(rs, once)
		if err != nil {
			t.Fatal(err)
		}
		// MatchDOM augments again internally; passing the pre-augmented
		// document exercises double augmentation.
		d2, err := e.MatchDOM(rs, twice)
		if err != nil {
			t.Fatal(err)
		}
		if d1.Behavior != d2.Behavior {
			t.Fatalf("augmentation not idempotent for %s: %s vs %s", ref, d1.Behavior, d2.Behavior)
		}
	}
}

// TestIndexedAugmentationAgrees cross-checks the naive document-consulting
// augmentation against the indexed one on the full decision level.
func TestIndexedAugmentationAgrees(t *testing.T) {
	naive := New()
	indexed := NewWithOptions(Options{IndexedAugmentation: true})
	r := rand.New(rand.NewSource(21))
	ruleset := `<appel:RULESET xmlns:appel="http://www.w3.org/2002/01/APPELv1">
	  <appel:RULE behavior="block">
	    <POLICY><STATEMENT><DATA-GROUP><DATA ref="*">
	      <CATEGORIES appel:connective="or"><uniqueid/><physical/></CATEGORIES>
	    </DATA></DATA-GROUP></STATEMENT></POLICY>
	  </appel:RULE>
	  <appel:RULE behavior="limited">
	    <POLICY><STATEMENT><DATA-GROUP><DATA ref="#user.home-info.online"/></DATA-GROUP></STATEMENT></POLICY>
	  </appel:RULE>
	  <appel:OTHERWISE behavior="request"/>
	</appel:RULESET>`
	rs, err := appel.Parse(ruleset)
	if err != nil {
		t.Fatal(err)
	}
	refs := []string{
		"#user.name", "#user.login", "#user.home-info", "#user.home-info.online.email",
		"#user.bdate.ymd.year", "#dynamic.miscdata", "#dynamic.http", "#custom.unknown",
	}
	for i := 0; i < 40; i++ {
		ref := refs[r.Intn(len(refs))]
		policy := `<POLICY><STATEMENT><PURPOSE><current/></PURPOSE>` +
			`<RECIPIENT><ours/></RECIPIENT><RETENTION><no-retention/></RETENTION>` +
			`<DATA-GROUP><DATA ref="` + ref + `"><CATEGORIES><purchase/></CATEGORIES></DATA></DATA-GROUP>` +
			`</STATEMENT></POLICY>`
		d1, err := naive.Match(rs, policy)
		if err != nil {
			t.Fatal(err)
		}
		d2, err := indexed.Match(rs, policy)
		if err != nil {
			t.Fatal(err)
		}
		if d1.Behavior != d2.Behavior || d1.RuleIndex != d2.RuleIndex {
			t.Fatalf("augmentation paths disagree on %s: %+v vs %+v", ref, d1, d2)
		}
	}
}
