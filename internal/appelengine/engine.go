// Package appelengine implements the APPEL 1.0 rule evaluation algorithm
// over P3P policy documents: the native, client-centric baseline the paper
// measures against (the JRC engine in their experiments).
//
// Faithful to the client-centric deployment, Engine.Match takes the policy
// as XML text — the form a browsing client receives it in — and performs,
// per match:
//
//  1. parsing of the policy document,
//  2. category augmentation: every DATA element is expanded into the leaf
//     data elements it covers and annotated with the categories the P3P
//     base data schema assigns them (APPEL matching is defined over this
//     augmented policy, see P3P 1.0 §5.4.6), and
//  3. ordered rule evaluation with the six APPEL connectives.
//
// The paper's profiling found step 2 dominates the native engine's cost;
// the server-centric SQL implementation performs it once at shredding time
// instead. The augmentation here mirrors the JRC engine's implementation
// strategy — walking the base data schema per DATA element — rather than
// using an inverted index, because reproducing that cost profile is the
// point of the baseline. Options provide ablation switches used by the
// benchmarks.
package appelengine

import (
	"fmt"
	"strings"

	"p3pdb/internal/appel"
	"p3pdb/internal/faultkit"
	"p3pdb/internal/obs"
	"p3pdb/internal/p3p/basedata"
	"p3pdb/internal/resource"
	"p3pdb/internal/xmldom"
)

// Options configure the engine, mostly for ablation benchmarks.
type Options struct {
	// SkipAugmentation evaluates rules against the raw policy without
	// category augmentation. Matching of category-based preferences is
	// then incomplete; the option exists to measure augmentation's share
	// of the cost (the paper's §6.3.2 profiling claim).
	SkipAugmentation bool
	// IndexedAugmentation resolves data references through the schema's
	// indexed lookup tables instead of the faithful document-consulting
	// path (see Augment). An ablation switch: the paper's baseline did
	// not have this optimization.
	IndexedAugmentation bool
	// Schema overrides the base data schema; nil means the default.
	Schema *basedata.Schema
}

// Engine evaluates APPEL rulesets against P3P policies.
type Engine struct {
	opts   Options
	schema *basedata.Schema
	// schemaXML is the base data schema in document form; the faithful
	// augmentation path re-parses and walks it per match, reproducing
	// the cost profile the paper measured in the JRC engine.
	schemaXML string
}

// New returns an engine with default options.
func New() *Engine { return NewWithOptions(Options{}) }

// NewWithOptions returns an engine with the given options.
func NewWithOptions(opts Options) *Engine {
	s := opts.Schema
	if s == nil {
		s = basedata.Default()
	}
	return &Engine{opts: opts, schema: s, schemaXML: s.ToDOM().String()}
}

// Decision is the outcome of evaluating a ruleset against a policy.
type Decision struct {
	// Behavior is the fired rule's behavior (request, limited, block).
	Behavior string
	// RuleIndex is the zero-based index of the rule that fired.
	RuleIndex int
	// Prompt is the fired rule's prompt attribute.
	Prompt bool
}

// ErrNoRuleFired is returned when no rule in the ruleset matches the
// policy. Well-formed rulesets end with a catch-all (OTHERWISE) rule, so
// this signals a preference authoring error.
var ErrNoRuleFired = fmt.Errorf("appelengine: no rule fired; ruleset lacks a catch-all")

// Match evaluates the ruleset against a policy given as XML text,
// performing the full client-side pipeline (parse, augment, evaluate).
func (e *Engine) Match(rs *appel.Ruleset, policyXML string) (Decision, error) {
	return e.MatchMeter(rs, policyXML, nil)
}

// MatchMeter is Match governed by a resource meter: rule evaluation
// charges one step per element comparison and aborts with the meter's
// typed error (budget exhaustion or cancellation) instead of returning a
// partial decision. A nil meter means ungoverned.
func (e *Engine) MatchMeter(rs *appel.Ruleset, policyXML string, m *resource.Meter) (Decision, error) {
	doc, err := xmldom.ParseString(policyXML)
	if err != nil {
		return Decision{}, fmt.Errorf("appelengine: bad policy document: %w", err)
	}
	return e.MatchDOMMeter(rs, doc, m)
}

// MatchDOM evaluates the ruleset against an already parsed policy element.
// The document is augmented (unless disabled) and evaluated.
func (e *Engine) MatchDOM(rs *appel.Ruleset, policy *xmldom.Node) (Decision, error) {
	return e.MatchDOMMeter(rs, policy, nil)
}

// Observability counters for the native engine (obs registry,
// DESIGN.md §8): matches attempted, element comparisons performed (the
// engine's unit of work), and per-match policy augmentations. The
// comparison count accumulates locally in the matcher (one goroutine
// per match) and flushes once per match.
var (
	obsMatches       = obs.GetCounter("appel.matches")
	obsMatchErrors   = obs.GetCounter("appel.match_errors")
	obsComparisons   = obs.GetCounter("appel.comparisons")
	obsAugmentations = obs.GetCounter("appel.augmentations")
)

// MatchDOMMeter is MatchDOM governed by a resource meter.
func (e *Engine) MatchDOMMeter(rs *appel.Ruleset, policy *xmldom.Node, m *resource.Meter) (Decision, error) {
	if policy.Name == "POLICIES" {
		// A policy file; evaluation needs a specific policy.
		return Decision{}, fmt.Errorf("appelengine: evidence must be a single POLICY, got POLICIES")
	}
	if err := faultkit.Inject(faultkit.PointAppelMatch); err != nil {
		return Decision{}, err
	}
	obsMatches.Inc()
	evidence := policy
	if !e.opts.SkipAugmentation {
		obsAugmentations.Inc()
		evidence = e.Augment(policy)
	}
	mt := &matcher{e: e, m: m}
	defer func() { obsComparisons.Add(mt.comparisons) }()
	for i, r := range rs.Rules {
		fired, err := mt.ruleMatches(r, evidence)
		if err != nil {
			obsMatchErrors.Inc()
			return Decision{}, err
		}
		if fired {
			return Decision{Behavior: r.Behavior, RuleIndex: i, Prompt: r.Prompt}, nil
		}
	}
	obsMatchErrors.Inc()
	return Decision{}, ErrNoRuleFired
}

// Augment returns a copy of the policy in which every DATA element has
// been replaced by the leaf data elements it covers, each annotated with a
// CATEGORIES element holding the categories the base data schema assigns
// (plus any categories the policy declares, for variable-category data).
//
// By default the engine takes the faithful client-centric path: it parses
// the base data schema *document* and resolves every DATA reference by
// scanning it (basedata.DocumentLookup), the implementation strategy whose
// cost the paper's profiling found to dominate the JRC engine's matching
// time. Options.IndexedAugmentation switches to the schema's hash-indexed
// lookup, the optimization the server-centric architecture gets for free
// by augmenting once at shred time.
func (e *Engine) Augment(policy *xmldom.Node) *xmldom.Node {
	doc := policy.Clone()
	doc.Walk(func(n *xmldom.Node) bool {
		if n.Name != "DATA-GROUP" {
			return true
		}
		// ENTITY also holds a DATA-GROUP but its data describes the
		// site, not collection practices; the JRC engine augmented only
		// statement data. Keep that behavior.
		if n.Parent != nil && n.Parent.Name == "ENTITY" {
			return false
		}
		var newChildren []*xmldom.Node
		for _, child := range n.Children {
			if child.Name != "DATA" {
				newChildren = append(newChildren, child)
				continue
			}
			newChildren = append(newChildren, e.augmentData(child)...)
		}
		for _, c := range newChildren {
			c.Parent = n
		}
		n.Children = newChildren
		return false
	})
	return doc
}

// augmentData expands one DATA element into its augmented leaf elements.
func (e *Engine) augmentData(data *xmldom.Node) []*xmldom.Node {
	ref, ok := data.Attr("ref")
	if !ok {
		return []*xmldom.Node{data}
	}
	declared := declaredCategories(data)

	var leaves []basedata.ExpandedRef
	if !e.opts.IndexedAugmentation {
		// The faithful client-centric resolution: every data-reference
		// lookup loads the base data schema document and scans it —
		// the JRC engine consulted the schema this way, which is why
		// the paper's profiling found augmentation dominating matching
		// time. IndexedAugmentation is the ablation that removes it.
		schemaDoc, err := xmldom.ParseString(e.schemaXML)
		if err != nil {
			// The document is generated from the schema; it always parses.
			panic("appelengine: base data schema document: " + err.Error())
		}
		leaves = basedata.DocumentLookup(schemaDoc, ref, declared)
	} else {
		bare := strings.TrimPrefix(ref, "#")
		els := e.schema.Leaves(bare)
		if len(els) == 0 {
			leaves = []basedata.ExpandedRef{{Ref: bare, Categories: e.schema.CategoriesFor(bare, declared)}}
		} else {
			for _, el := range els {
				leaves = append(leaves, basedata.ExpandedRef{
					Ref:        el.Ref,
					Categories: e.schema.CategoriesFor(el.Ref, declared),
				})
			}
		}
	}

	out := make([]*xmldom.Node, 0, len(leaves))
	for _, leaf := range leaves {
		d := xmldom.NewNS(data.Space, "DATA").SetAttr("ref", "#"+leaf.Ref)
		for _, a := range data.Attrs {
			if a.Name != "ref" {
				d.SetAttrNS(a.Space, a.Name, a.Value)
			}
		}
		if len(leaf.Categories) > 0 {
			ce := xmldom.NewNS(data.Space, "CATEGORIES")
			for _, c := range leaf.Categories {
				ce.Add(xmldom.NewNS(data.Space, c))
			}
			d.Add(ce)
		}
		out = append(out, d)
	}
	return out
}

func declaredCategories(data *xmldom.Node) []string {
	var out []string
	if ce := data.Child("CATEGORIES"); ce != nil {
		for _, c := range ce.Children {
			out = append(out, c.Name)
		}
	}
	return out
}

// matcher is one rule evaluation: the engine plus the resource meter the
// recursion charges. The meter forces the boolean recursion to return
// errors, so an exhausted budget aborts the match instead of truncating
// it into a wrong decision.
type matcher struct {
	e *Engine
	m *resource.Meter
	// comparisons counts element-against-element comparisons locally;
	// MatchDOMMeter flushes it to the obs registry once per match.
	comparisons int64
}

// ruleMatches applies the rule's body to the evidence root. An empty body
// matches unconditionally (the OTHERWISE shape).
func (mt *matcher) ruleMatches(r *appel.Rule, evidence *xmldom.Node) (bool, error) {
	if len(r.Body) == 0 {
		return true, nil
	}
	// The rule behaves as an expression whose children are matched
	// against the evidence root element.
	return mt.combine(r.EffectiveConnective(), r.Body, []*xmldom.Node{evidence})
}

// exprMatches reports whether expression ex matches policy element el:
// names equal, every attribute pattern satisfied, and the connective over
// the subexpressions satisfied against el's children. Each call charges
// one step: an element-against-element comparison is the engine's unit
// of work, the analogue of a visited row in the relational engines.
func (mt *matcher) exprMatches(ex *appel.Expr, el *xmldom.Node) (bool, error) {
	mt.comparisons++
	if err := mt.m.Step(1); err != nil {
		return false, err
	}
	if ex.Name != el.Name {
		return false, nil
	}
	for _, a := range ex.Attrs {
		if !attrMatches(a, el) {
			return false, nil
		}
	}
	if len(ex.Children) == 0 {
		return true, nil
	}
	return mt.combine(ex.EffectiveConnective(), ex.Children, el.Children)
}

// combine evaluates an APPEL connective: which of the subexpressions can
// be found among the candidate elements, and — for the -exact forms —
// whether every candidate element is matched by some subexpression.
func (mt *matcher) combine(connective string, subs []*appel.Expr, candidates []*xmldom.Node) (bool, error) {
	found := func(ex *appel.Expr) (bool, error) {
		for _, c := range candidates {
			ok, err := mt.exprMatches(ex, c)
			if err != nil || ok {
				return ok, err
			}
		}
		return false, nil
	}
	all := func() (bool, error) {
		for _, s := range subs {
			ok, err := found(s)
			if err != nil {
				return false, err
			}
			if !ok {
				return false, nil
			}
		}
		return true, nil
	}
	any := func() (bool, error) {
		for _, s := range subs {
			ok, err := found(s)
			if err != nil || ok {
				return ok, err
			}
		}
		return false, nil
	}
	// exact: every candidate element matches at least one subexpression,
	// i.e. the policy contains only elements listed in the rule.
	exact := func() (bool, error) {
		for _, c := range candidates {
			matched := false
			for _, s := range subs {
				ok, err := mt.exprMatches(s, c)
				if err != nil {
					return false, err
				}
				if ok {
					matched = true
					break
				}
			}
			if !matched {
				return false, nil
			}
		}
		return true, nil
	}
	not := func(v bool, err error) (bool, error) {
		if err != nil {
			return false, err
		}
		return !v, nil
	}
	both := func(f, g func() (bool, error)) (bool, error) {
		ok, err := f()
		if err != nil || !ok {
			return false, err
		}
		return g()
	}
	switch connective {
	case appel.ConnAnd:
		return all()
	case appel.ConnOr:
		return any()
	case appel.ConnNonAnd:
		return not(all())
	case appel.ConnNonOr:
		return not(any())
	case appel.ConnAndExact:
		return both(all, exact)
	case appel.ConnOrExact:
		return both(any, exact)
	}
	// Unknown connectives were rejected at parse time; treat defensively
	// as "and".
	return all()
}

// attrMatches checks one attribute pattern against a policy element,
// applying P3P defaulting ("required" defaults to always, "optional" to
// no) and the APPEL "*" wildcard. DATA ref attributes match
// hierarchically: a pattern ref matches any policy ref at, above, or below
// it in the data schema (the policy side is leaf-expanded by augmentation,
// but raw policies must still match when augmentation is disabled).
func attrMatches(a appel.Attr, el *xmldom.Node) bool {
	v, ok := el.Attr(a.Name)
	if !ok {
		switch a.Name {
		case "required":
			v = "always"
		case "optional":
			v = "no"
		default:
			return false
		}
	}
	if a.Value == "*" {
		return true
	}
	if el.Name == "DATA" && a.Name == "ref" {
		return refMatches(a.Value, v)
	}
	return v == a.Value
}

// refMatches implements the hierarchical data-reference match: the pattern
// and policy refs match if they are equal or one is a dotted prefix of the
// other.
func refMatches(pattern, policy string) bool {
	p := strings.TrimPrefix(pattern, "#")
	q := strings.TrimPrefix(policy, "#")
	if p == q {
		return true
	}
	if strings.HasPrefix(q, p+".") || strings.HasPrefix(p, q+".") {
		return true
	}
	return false
}
