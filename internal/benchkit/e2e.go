package benchkit

import (
	"encoding/json"
	"fmt"
	"math/rand"
	"net/http/httptest"
	"os"
	"sort"
	"strings"
	"sync"
	"time"

	"p3pdb/internal/core"
	"p3pdb/internal/registry"
	"p3pdb/internal/server"
	"p3pdb/internal/workload"
)

// The e2e experiment closes the protocol loop the paper's architecture
// implies but its evaluation never measures: a population of user agents
// hitting a multi-tenant server over real HTTP, each page visit and
// cookie resolved through the reference file, pre-decided by the compact
// summary when the visitor's preference admits it, and fully matched
// otherwise. The table reports what the in-process tables cannot — wire
// latency, the fast-path hit rate under a realistic attitude mix, and
// how both split by preference level.

// e2eLevels is the visitor attitude mix: most of the population runs an
// apathetic agent, a quarter the mild default, a tail paranoid — the
// distribution IE6-era telemetry reported for cookie-prompt settings.
var e2eLevels = []struct {
	Name string
	Frac float64
}{
	{"apathetic", 0.60},
	{"mild", 0.25},
	{"paranoid", 0.15},
}

// E2ERow is one preference level's slice of the run.
type E2ERow struct {
	Level        string  `json:"level"`
	Requests     int     `json:"requests"`
	FastPathHits int     `json:"fastPathHits"`
	HitRate      float64 `json:"hitRate"`
	Allowed      int     `json:"allowed"`
	P50Micros    float64 `json:"p50Micros"`
	P99Micros    float64 `json:"p99Micros"`
}

// E2EResults is the closed-loop table plus run parameters, shaped for
// rendering and the BENCH_e2e.json artifact CI gates on.
type E2EResults struct {
	Seed              int64   `json:"seed"`
	Tenants           int     `json:"tenants"`
	Workers           int     `json:"workers"`
	RequestsPerWorker int     `json:"requestsPerWorker"`
	CookieFraction    float64 `json:"cookieFraction"`
	ZipfS             float64 `json:"zipfS"`
	Engine            string  `json:"engine"`
	Requests          int     `json:"requests"`
	RequestsPerSec    float64 `json:"requestsPerSec"`
	ElapsedMS         float64 `json:"elapsedMs"`
	// FastPathHitRate is the fraction of all checks the compact summary
	// decided without running a full engine — the number the fast path
	// exists to maximize, gated in CI.
	FastPathHitRate float64  `json:"fastPathHitRate"`
	Rows            []E2ERow `json:"rows"`
}

// E2EConfig parameterizes a closed-loop run.
type E2EConfig struct {
	// Seed generates tenant workloads and traffic (default 42).
	Seed int64
	// Tenants is the number of hosted sites (default 4).
	Tenants int
	// Workers is the number of concurrent user agents (default 8).
	Workers int
	// RequestsPerWorker is each agent's closed-loop request count
	// (default 300).
	RequestsPerWorker int
	// CookieFraction is the share of checks that present a cookie
	// alongside the page URL (default 0.25).
	CookieFraction float64
	// ZipfS skews page popularity across each tenant's URI space; must
	// be > 1 (default 1.1).
	ZipfS float64
	// Engine is the fallback matching engine; the zero value is native.
	Engine core.Engine
	// Addr, when non-empty, targets an already-running server (e.g.
	// "http://localhost:8733") instead of self-hosting; its tenants must
	// be named e2e-0.example ... e2e-N.example and seeded with the
	// workload (p3pload -setup does this).
	Addr string
}

func (c E2EConfig) withDefaults() E2EConfig {
	if c.Seed == 0 {
		c.Seed = 42
	}
	if c.Tenants == 0 {
		c.Tenants = 4
	}
	if c.Workers == 0 {
		c.Workers = 8
	}
	if c.RequestsPerWorker == 0 {
		c.RequestsPerWorker = 300
	}
	if c.CookieFraction == 0 {
		c.CookieFraction = 0.25
	}
	if c.ZipfS <= 1 {
		c.ZipfS = 1.1
	}
	return c
}

// E2ETenantName names the i-th hosted tenant; p3pload and the bench use
// the same scheme so an external server can be pre-seeded.
func E2ETenantName(i int) string {
	return fmt.Sprintf("e2e-%d.example", i)
}

// E2ESetupTenants creates and seeds the closed-loop tenants on a
// registry: tenant i carries the workload generated from seed+i.
func E2ESetupTenants(reg *registry.Registry, seed int64, tenants int) error {
	for i := 0; i < tenants; i++ {
		site, err := reg.Create(E2ETenantName(i))
		if err != nil {
			return err
		}
		d := workload.Generate(seed + int64(i))
		if err := site.ReplacePolicies(d.Policies, d.RefFile); err != nil {
			return fmt.Errorf("benchkit: seeding %s: %w", E2ETenantName(i), err)
		}
	}
	return nil
}

// E2ESeedRemote provisions the closed-loop tenants on an external
// server through the admin API: PUT /sites/{name}, then the tenant's
// own /policies and /reference endpoints — the HTTP face of
// E2ESetupTenants, used by p3pload -setup.
func E2ESeedRemote(base string, seed int64, tenants int) error {
	admin := server.NewClient(base)
	for i := 0; i < tenants; i++ {
		name := E2ETenantName(i)
		if err := admin.CreateSite(name); err != nil {
			return fmt.Errorf("benchkit: creating %s: %w", name, err)
		}
		c := server.NewClient(base + "/sites/" + name)
		d := workload.Generate(seed + int64(i))
		for _, pol := range d.Policies {
			if _, err := c.InstallPolicies(d.PolicyXML[pol.Name]); err != nil {
				return fmt.Errorf("benchkit: seeding %s with %s: %w", name, pol.Name, err)
			}
		}
		if err := c.InstallReferenceFile(d.RefFile.String()); err != nil {
			return fmt.Errorf("benchkit: seeding %s reference file: %w", name, err)
		}
	}
	return nil
}

// e2eSample is one request's outcome, recorded worker-locally.
type e2eSample struct {
	level   int
	fast    bool
	allowed bool
	micros  float64
}

// RunE2E drives the closed loop and aggregates the table.
func RunE2E(cfg E2EConfig) (*E2EResults, error) {
	cfg = cfg.withDefaults()
	base := cfg.Addr
	if base == "" {
		reg, err := registry.New(registry.Options{})
		if err != nil {
			return nil, err
		}
		if err := E2ESetupTenants(reg, cfg.Seed, cfg.Tenants); err != nil {
			return nil, err
		}
		ts := httptest.NewServer(server.NewMulti(reg))
		defer ts.Close()
		base = ts.URL
	}

	// Per-tenant datasets name the URIs and cookies; per-tenant clients
	// carry the /sites/{name} prefix.
	clients := make([]*server.Client, cfg.Tenants)
	datasets := make([]*workload.Dataset, cfg.Tenants)
	for i := 0; i < cfg.Tenants; i++ {
		clients[i] = server.NewClient(base + "/sites/" + E2ETenantName(i))
		datasets[i] = workload.Generate(cfg.Seed + int64(i))
	}
	engine := cfg.Engine.ShortName()

	// Warm up: one check per (tenant, level) pays conversion caching.
	for i, c := range clients {
		for _, lv := range e2eLevels {
			uri := datasets[i].URIFor(datasets[i].Policies[0].Name)
			if _, _, err := c.Check(server.CheckRequest{URL: uri, Level: lv.Name, Engine: engine}); err != nil {
				return nil, fmt.Errorf("benchkit: e2e warmup %s/%s: %w", E2ETenantName(i), lv.Name, err)
			}
		}
	}

	samples := make([][]e2eSample, cfg.Workers)
	errs := make([]error, cfg.Workers)
	var wg sync.WaitGroup
	start := time.Now()
	for w := 0; w < cfg.Workers; w++ {
		wg.Add(1)
		go func(w int) {
			defer wg.Done()
			rng := rand.New(rand.NewSource(cfg.Seed + 1000 + int64(w)))
			npol := len(datasets[0].Policies)
			zipf := rand.NewZipf(rng, cfg.ZipfS, 1, uint64(npol-1))
			local := make([]e2eSample, 0, cfg.RequestsPerWorker)
			for i := 0; i < cfg.RequestsPerWorker; i++ {
				tenant := rng.Intn(cfg.Tenants)
				d := datasets[tenant]
				pol := d.Policies[int(zipf.Uint64())].Name
				level := pickLevel(rng.Float64())
				req := server.CheckRequest{
					URL:    d.URIFor(pol),
					Level:  e2eLevels[level].Name,
					Engine: engine,
				}
				if rng.Float64() < cfg.CookieFraction {
					req.Cookie = d.CookieFor(pol)
				}
				t0 := time.Now()
				res, _, err := clients[tenant].Check(req)
				if err != nil {
					errs[w] = fmt.Errorf("benchkit: e2e %s %s/%s: %w", e2eLevels[level].Name, E2ETenantName(tenant), pol, err)
					return
				}
				fast := res.URL.FastPath && (res.Cookie == nil || res.Cookie.FastPath)
				local = append(local, e2eSample{
					level:   level,
					fast:    fast,
					allowed: res.Allowed,
					micros:  float64(time.Since(t0).Nanoseconds()) / 1000,
				})
			}
			samples[w] = local
		}(w)
	}
	wg.Wait()
	elapsed := time.Since(start)
	for _, err := range errs {
		if err != nil {
			return nil, err
		}
	}

	res := &E2EResults{
		Seed:              cfg.Seed,
		Tenants:           cfg.Tenants,
		Workers:           cfg.Workers,
		RequestsPerWorker: cfg.RequestsPerWorker,
		CookieFraction:    cfg.CookieFraction,
		ZipfS:             cfg.ZipfS,
		Engine:            engine,
		ElapsedMS:         float64(elapsed.Microseconds()) / 1000,
	}
	perLevel := make([][]float64, len(e2eLevels))
	rows := make([]E2ERow, len(e2eLevels))
	for i, lv := range e2eLevels {
		rows[i].Level = lv.Name
	}
	totalFast := 0
	for _, local := range samples {
		for _, s := range local {
			rows[s.level].Requests++
			if s.fast {
				rows[s.level].FastPathHits++
				totalFast++
			}
			if s.allowed {
				rows[s.level].Allowed++
			}
			perLevel[s.level] = append(perLevel[s.level], s.micros)
			res.Requests++
		}
	}
	for i := range rows {
		if rows[i].Requests > 0 {
			rows[i].HitRate = float64(rows[i].FastPathHits) / float64(rows[i].Requests)
		}
		rows[i].P50Micros = percentile(perLevel[i], 0.50)
		rows[i].P99Micros = percentile(perLevel[i], 0.99)
	}
	res.Rows = rows
	if res.Requests > 0 {
		res.FastPathHitRate = float64(totalFast) / float64(res.Requests)
		res.RequestsPerSec = float64(res.Requests) / elapsed.Seconds()
	}
	return res, nil
}

func pickLevel(u float64) int {
	acc := 0.0
	for i, lv := range e2eLevels {
		acc += lv.Frac
		if u < acc {
			return i
		}
	}
	return len(e2eLevels) - 1
}

// percentile returns the p-quantile of micros (nearest-rank); 0 when
// empty.
func percentile(vals []float64, p float64) float64 {
	if len(vals) == 0 {
		return 0
	}
	sorted := append([]float64(nil), vals...)
	sort.Float64s(sorted)
	idx := int(p * float64(len(sorted)-1))
	return sorted[idx]
}

// Render formats the e2e table.
func (r *E2EResults) Render() string {
	var b strings.Builder
	fmt.Fprintf(&b, "Protocol loop e2e (%d tenants, %d workers x %d requests, %.0f%% cookies, zipf %.2f, %s fallback)\n",
		r.Tenants, r.Workers, r.RequestsPerWorker, r.CookieFraction*100, r.ZipfS, r.Engine)
	fmt.Fprintf(&b, "%d requests in %.1f ms = %.0f req/sec, fast-path hit rate %.1f%%\n",
		r.Requests, r.ElapsedMS, r.RequestsPerSec, r.FastPathHitRate*100)
	fmt.Fprintf(&b, "%10s %10s %10s %9s %9s %12s %12s\n",
		"level", "requests", "fast hits", "hit rate", "allowed", "p50 micros", "p99 micros")
	for _, row := range r.Rows {
		fmt.Fprintf(&b, "%10s %10d %10d %8.1f%% %9d %12.0f %12.0f\n",
			row.Level, row.Requests, row.FastPathHits, row.HitRate*100, row.Allowed,
			row.P50Micros, row.P99Micros)
	}
	return b.String()
}

// WriteJSON writes the machine-readable artifact (BENCH_e2e.json).
func (r *E2EResults) WriteJSON(path string) error {
	data, err := json.MarshalIndent(r, "", "  ")
	if err != nil {
		return err
	}
	return os.WriteFile(path, append(data, '\n'), 0o644)
}
