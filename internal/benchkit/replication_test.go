package benchkit

import (
	"encoding/json"
	"os"
	"path/filepath"
	"strings"
	"testing"

	"p3pdb/internal/core"
)

// TestReplicationSmoke runs a shrunken replication table — 2 tenants,
// 1 worker, 1/2-node fleets, a couple of lag samples — end to end
// through leader, WAL stream, follower apply, and router, and checks
// the result shape plus render/artifact paths.
func TestReplicationSmoke(t *testing.T) {
	if testing.Short() {
		t.Skip("full in-process fleet in -short mode")
	}
	res, err := RunReplication(ReplicationConfig{
		Tenants:           2,
		Workers:           1,
		RequestsPerWorker: 4,
		Nodes:             []int{1, 2},
		Engine:            core.EngineSQL,
		LagSamples:        2,
	})
	if err != nil {
		t.Fatal(err)
	}
	if len(res.Rows) != 2 {
		t.Fatalf("rows: %+v", res.Rows)
	}
	for i, row := range res.Rows {
		if row.Requests != 1*4 || row.MatchesPerSec <= 0 {
			t.Fatalf("row %d wrong: %+v", i, row)
		}
	}
	if res.Rows[0].Nodes != 1 || res.Rows[0].SpeedupVs1 != 1 {
		t.Fatalf("baseline row wrong: %+v", res.Rows[0])
	}
	if res.Rows[1].RouterFanout != 2 || res.Rows[1].ReplicaRecords == 0 {
		t.Fatalf("2-node row never touched the follower: %+v", res.Rows[1])
	}
	if res.LagSamples != 2 || res.LagP50Ms <= 0 || res.LagP99Ms < res.LagP50Ms {
		t.Fatalf("lag distribution wrong: %d samples, p50=%v p99=%v",
			res.LagSamples, res.LagP50Ms, res.LagP99Ms)
	}

	rendered := res.Render()
	for _, want := range []string{"Replication", "nodes", "lag"} {
		if !strings.Contains(rendered, want) {
			t.Fatalf("rendered table missing %q:\n%s", want, rendered)
		}
	}

	path := filepath.Join(t.TempDir(), "BENCH_replication.json")
	if err := res.WriteJSON(path); err != nil {
		t.Fatal(err)
	}
	data, err := os.ReadFile(path)
	if err != nil {
		t.Fatal(err)
	}
	var back ReplicationResults
	if err := json.Unmarshal(data, &back); err != nil {
		t.Fatal(err)
	}
	if len(back.Rows) != 2 || back.LagSamples != 2 {
		t.Fatalf("artifact round trip wrong: %+v", back)
	}
}
