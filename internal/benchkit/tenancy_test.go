package benchkit

import (
	"encoding/json"
	"os"
	"path/filepath"
	"strings"
	"testing"
)

// TestTenancySmoke runs a miniature tenancy experiment end to end: both
// phases complete, the churn phase really swapped policy sets, and the
// artifact round-trips. The 2x acceptance ratio is asserted loosely here
// (correctness, not performance — CI machines are noisy); the committed
// BENCH_tenancy.json records the measured ratio.
func TestTenancySmoke(t *testing.T) {
	if testing.Short() {
		t.Skip("tenancy experiment in -short mode")
	}
	r, err := RunTenancy(TenancyConfig{MatchesPerWorker: 40, Workers: 2})
	if err != nil {
		t.Fatal(err)
	}
	if r.ReadOnly.Matches != 80 || r.Churn.Matches != 80 {
		t.Errorf("phase matches = %d/%d, want 80/80", r.ReadOnly.Matches, r.Churn.Matches)
	}
	if r.ReadOnly.P50Micros <= 0 || r.Churn.P99Micros <= 0 {
		t.Errorf("quantiles not measured: %+v", r)
	}
	if r.ReadOnly.P50Micros > r.ReadOnly.P99Micros || r.Churn.P50Micros > r.Churn.P99Micros {
		t.Errorf("p50 above p99: %+v", r)
	}
	if r.ReadOnly.Swaps != 0 {
		t.Errorf("read-only phase saw %d swaps", r.ReadOnly.Swaps)
	}
	if r.Churn.Swaps < 1 {
		t.Error("churn phase completed no policy-set swaps")
	}
	if r.P99Ratio <= 0 {
		t.Errorf("ratio = %v", r.P99Ratio)
	}

	out := r.Render()
	for _, want := range []string{"read-only", "churn", "p99"} {
		if !strings.Contains(out, want) {
			t.Errorf("render missing %q:\n%s", want, out)
		}
	}

	path := filepath.Join(t.TempDir(), "BENCH_tenancy.json")
	if err := r.WriteJSON(path); err != nil {
		t.Fatal(err)
	}
	data, err := os.ReadFile(path)
	if err != nil {
		t.Fatal(err)
	}
	var back TenancyResults
	if err := json.Unmarshal(data, &back); err != nil {
		t.Fatal(err)
	}
	if back.Churn.Swaps != r.Churn.Swaps || back.Engine != r.Engine {
		t.Errorf("artifact round-trip mismatch: %+v vs %+v", back, *r)
	}
}

func TestTenancyRejectsUnknownLevel(t *testing.T) {
	if _, err := RunTenancy(TenancyConfig{Level: "Nonexistent"}); err == nil {
		t.Error("unknown preference level must fail")
	}
}

func TestQuantile(t *testing.T) {
	if q := quantile(nil, 0.5); q != 0 {
		t.Errorf("empty quantile = %v", q)
	}
}
