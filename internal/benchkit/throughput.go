package benchkit

import (
	"encoding/json"
	"fmt"
	"os"
	"runtime"
	"strings"
	"sync"
	"sync/atomic"
	"time"

	"p3pdb/internal/core"
	"p3pdb/internal/workload"
)

// The throughput experiment goes beyond the paper's per-match latency
// figures (20/21): the server-centric claim is that a site can evaluate
// preference matches for *many* visitors at page-access time, which is a
// concurrency question, not a latency one. This table measures sustained
// matches/sec against the installed corpus as the number of concurrent
// clients grows, establishing the repo's throughput trajectory.

// ThroughputRow is one parallelism point of the throughput experiment.
type ThroughputRow struct {
	Workers       int     `json:"workers"`
	Matches       int     `json:"matches"`
	ElapsedMS     float64 `json:"elapsedMs"`
	MatchesPerSec float64 `json:"matchesPerSec"`
	// SpeedupVs1 is this row's matches/sec over the single-worker row's.
	SpeedupVs1 float64 `json:"speedupVs1"`
	// AllocsPerOp and BytesPerOp are heap allocations and bytes per match
	// (runtime.MemStats deltas over the row), the per-match churn that
	// turns into GC pauses shared by every worker at scale-out.
	AllocsPerOp float64 `json:"allocsPerOp"`
	BytesPerOp  float64 `json:"bytesPerOp"`
}

// ThroughputResults is the full table plus the run's parameters, shaped
// for both rendering and the BENCH_throughput.json artifact future PRs
// diff against.
type ThroughputResults struct {
	Seed       int64  `json:"seed"`
	Level      string `json:"level"`
	Engine     string `json:"engine"`
	GOMAXPROCS int    `json:"gomaxprocs"`
	// NumCPU records the machine's core count: a speedup table measured
	// on fewer cores than GOMAXPROCS cannot show parallel speedup, and
	// the CI gate reads this field to know whether to enforce one.
	NumCPU        int             `json:"numCpu"`
	DecisionCache bool            `json:"decisionCache"`
	Rows          []ThroughputRow `json:"rows"`
}

// ThroughputConfig parameterizes a throughput run.
type ThroughputConfig struct {
	// Seed generates the workload (default 42).
	Seed int64
	// Level is the preference level matched (default "High").
	Level string
	// Engine is the matching engine; the zero value is the native engine.
	Engine core.Engine
	// MatchesPerWorker is the fixed work each concurrent client performs
	// per measurement point (default 200), so elapsed time reflects
	// contention rather than shrinking slices of a fixed total.
	MatchesPerWorker int
	// Budget caps evaluator steps per match; zero means ungoverned.
	Budget int64
	// DisableDecisionCache measures the engine pipeline instead of the
	// decision cache's steady state. The default (cache on) reflects a
	// deployed server: a fixed preference repeated across visits is
	// exactly the repeat traffic the cache absorbs.
	DisableDecisionCache bool
}

func (c ThroughputConfig) withDefaults() ThroughputConfig {
	if c.Seed == 0 {
		c.Seed = 42
	}
	if c.Level == "" {
		c.Level = "High"
	}
	if c.MatchesPerWorker == 0 {
		c.MatchesPerWorker = 200
	}
	return c
}

// workerCounts returns 1, 2, 4, ... up to GOMAXPROCS, always including
// GOMAXPROCS itself.
func workerCounts(max int) []int {
	var out []int
	for w := 1; w < max; w *= 2 {
		out = append(out, w)
	}
	if len(out) == 0 || out[len(out)-1] != max {
		out = append(out, max)
	}
	return out
}

// RunThroughput measures sustained matches/sec at increasing concurrency
// against a site loaded with the generated corpus.
func RunThroughput(cfg ThroughputConfig) (*ThroughputResults, error) {
	cfg = cfg.withDefaults()
	site, d, err := Setup(Config{
		Seed:                 cfg.Seed,
		Budget:               cfg.Budget,
		DisableDecisionCache: cfg.DisableDecisionCache,
	})
	if err != nil {
		return nil, err
	}
	pref, ok := workload.PreferenceByLevel(cfg.Level)
	if !ok {
		return nil, fmt.Errorf("benchkit: no preference level %q", cfg.Level)
	}
	// Warm up: first matches pay conversion and cache fills.
	for _, pol := range d.Policies {
		if _, err := site.MatchPolicy(pref.XML, pol.Name, cfg.Engine); err != nil {
			return nil, fmt.Errorf("benchkit: warmup %s: %w", pol.Name, err)
		}
	}

	res := &ThroughputResults{
		Seed:          cfg.Seed,
		Level:         cfg.Level,
		Engine:        cfg.Engine.ShortName(),
		GOMAXPROCS:    runtime.GOMAXPROCS(0),
		NumCPU:        runtime.NumCPU(),
		DecisionCache: !cfg.DisableDecisionCache,
	}
	for _, workers := range workerCounts(res.GOMAXPROCS) {
		total := workers * cfg.MatchesPerWorker
		var firstErr atomic.Value
		var wg sync.WaitGroup
		var memBefore runtime.MemStats
		runtime.ReadMemStats(&memBefore)
		start := time.Now()
		for w := 0; w < workers; w++ {
			wg.Add(1)
			go func(w int) {
				defer wg.Done()
				for i := 0; i < cfg.MatchesPerWorker; i++ {
					pol := d.Policies[(w*cfg.MatchesPerWorker+i)%len(d.Policies)]
					if _, err := site.MatchPolicy(pref.XML, pol.Name, cfg.Engine); err != nil {
						firstErr.CompareAndSwap(nil, err)
						return
					}
				}
			}(w)
		}
		wg.Wait()
		elapsed := time.Since(start)
		var memAfter runtime.MemStats
		runtime.ReadMemStats(&memAfter)
		if err, ok := firstErr.Load().(error); ok {
			return nil, fmt.Errorf("benchkit: throughput at %d workers: %w", workers, err)
		}
		row := ThroughputRow{
			Workers:       workers,
			Matches:       total,
			ElapsedMS:     float64(elapsed.Microseconds()) / 1000,
			MatchesPerSec: float64(total) / elapsed.Seconds(),
			AllocsPerOp:   float64(memAfter.Mallocs-memBefore.Mallocs) / float64(total),
			BytesPerOp:    float64(memAfter.TotalAlloc-memBefore.TotalAlloc) / float64(total),
		}
		if len(res.Rows) > 0 {
			row.SpeedupVs1 = row.MatchesPerSec / res.Rows[0].MatchesPerSec
		} else {
			row.SpeedupVs1 = 1
		}
		res.Rows = append(res.Rows, row)
	}
	return res, nil
}

// Render formats the throughput table.
func (r *ThroughputResults) Render() string {
	var b strings.Builder
	cache := "decision cache on"
	if !r.DecisionCache {
		cache = "decision cache off"
	}
	fmt.Fprintf(&b, "Throughput (%s preference, %s engine, GOMAXPROCS=%d, NumCPU=%d, %s)\n",
		r.Level, r.Engine, r.GOMAXPROCS, r.NumCPU, cache)
	fmt.Fprintf(&b, "%8s %10s %12s %14s %10s %11s %11s\n",
		"workers", "matches", "elapsed ms", "matches/sec", "speedup", "allocs/op", "bytes/op")
	for _, row := range r.Rows {
		fmt.Fprintf(&b, "%8d %10d %12.1f %14.0f %9.2fx %11.0f %11.0f\n",
			row.Workers, row.Matches, row.ElapsedMS, row.MatchesPerSec, row.SpeedupVs1,
			row.AllocsPerOp, row.BytesPerOp)
	}
	return b.String()
}

// WriteJSON writes the results as the machine-readable artifact
// (BENCH_throughput.json) that later PRs track for regressions.
func (r *ThroughputResults) WriteJSON(path string) error {
	data, err := json.MarshalIndent(r, "", "  ")
	if err != nil {
		return err
	}
	return os.WriteFile(path, append(data, '\n'), 0o644)
}
