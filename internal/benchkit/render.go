package benchkit

import (
	"fmt"
	"strings"
	"time"

	"p3pdb/internal/core"
)

// ms renders a duration in milliseconds with three decimals, the scale at
// which the reproduced experiments land (the paper's 2002 hardware
// reported seconds).
func ms(d time.Duration) string {
	return fmt.Sprintf("%.3f", float64(d.Microseconds())/1000.0)
}

// Figure19 renders the preference-suite table.
func (r *Results) Figure19() string {
	var b strings.Builder
	b.WriteString("Figure 19: JRC APPEL Preferences\n")
	fmt.Fprintf(&b, "%-12s %8s %10s\n", "Preference", "#Rules", "Size (KB)")
	totalRules, totalBytes := 0, 0
	for _, p := range r.Dataset.Preferences {
		size := len(p.XML)
		fmt.Fprintf(&b, "%-12s %8d %10.1f\n", p.Level, len(p.Ruleset.Rules), float64(size)/1024)
		totalRules += len(p.Ruleset.Rules)
		totalBytes += size
	}
	fmt.Fprintf(&b, "%-12s %8.1f %10.1f\n", "Average",
		float64(totalRules)/float64(len(r.Dataset.Preferences)),
		float64(totalBytes)/float64(len(r.Dataset.Preferences))/1024)
	return b.String()
}

// ShredTable renders the §6.3.1 shredding measurements.
func (r *Results) ShredTable() string {
	s := r.ShredSummary()
	var b strings.Builder
	b.WriteString("Shredding (Section 6.3.1): time to shred one policy into the privacy tables (ms)\n")
	fmt.Fprintf(&b, "%-10s %10s\n", "Average", ms(s.Avg))
	fmt.Fprintf(&b, "%-10s %10s\n", "Max", ms(s.Max))
	fmt.Fprintf(&b, "%-10s %10s\n", "Min", ms(s.Min))
	fmt.Fprintf(&b, "(%d policies; paper: avg 3.19 s, max 11.94 s, min 1.17 s on 2002 hardware)\n", s.N)
	return b.String()
}

// Figure20 renders the overall matching-time table.
func (r *Results) Figure20() string {
	native := r.TotalSummary(core.EngineNative)
	conv := r.ConvertSummary(core.EngineSQL)
	query := r.QuerySummary(core.EngineSQL)
	total := r.TotalSummary(core.EngineSQL)
	xq := r.TotalSummary(core.EngineXTable)

	var b strings.Builder
	b.WriteString("Figure 20: Execution time for matching a preference against a policy (ms)\n")
	fmt.Fprintf(&b, "%-9s %14s | %10s %10s %10s | %10s\n",
		"", "APPEL Engine", "Convert", "Query", "Total", "XQuery")
	fmt.Fprintf(&b, "%-9s %14s | %10s %10s %10s | %10s\n",
		"Average", ms(native.Avg), ms(conv.Avg), ms(query.Avg), ms(total.Avg), ms(xq.Avg))
	fmt.Fprintf(&b, "%-9s %14s | %10s %10s %10s | %10s\n",
		"Max", ms(native.Max), ms(conv.Max), ms(query.Max), ms(total.Max), ms(xq.Max))
	fmt.Fprintf(&b, "%-9s %14s | %10s %10s %10s | %10s\n",
		"Min", ms(native.Min), ms(conv.Min), ms(query.Min), ms(total.Min), ms(xq.Min))
	spTotal, spQuery := r.Speedup()
	fmt.Fprintf(&b, "SQL speedup over APPEL engine: %.1fx total, %.1fx query-only (paper: >15x, ~30x)\n",
		spTotal, spQuery)
	return b.String()
}

// Figure21 renders the per-preference-level table, with the blank
// XQuery/Medium cell.
func (r *Results) Figure21() string {
	var b strings.Builder
	b.WriteString("Figure 21: Per-preference-type execution times (ms)\n")
	fmt.Fprintf(&b, "%-12s %14s | %10s %10s %10s | %10s\n",
		"Preference", "APPEL Engine", "Convert", "Query", "Total", "XQuery")
	for _, p := range r.Dataset.Preferences {
		level := p.Level
		_, _, nt, _ := r.LevelSummary(core.EngineNative, level)
		sc, sq, stot, _ := r.LevelSummary(core.EngineSQL, level)
		_, _, xt, xok := r.LevelSummary(core.EngineXTable, level)
		xcell := ms(xt.Avg)
		if !xok {
			xcell = "-" // too complex for the engine, as in the paper
		}
		fmt.Fprintf(&b, "%-12s %14s | %10s %10s %10s | %10s\n",
			level, ms(nt.Avg), ms(sc.Avg), ms(sq.Avg), ms(stot.Avg), xcell)
	}
	b.WriteString("('-' : XTABLE translation exceeded the engine's statement-complexity limit)\n")
	return b.String()
}

// WarmCold renders the §6.3.2 warm-vs-cold comparison.
func (r *Results) WarmCold() string {
	var b strings.Builder
	b.WriteString("Warm vs cold (Section 6.3.2): first match after startup vs warm average (ms)\n")
	fmt.Fprintf(&b, "%-22s %12s %12s %12s\n", "Engine", "Cold first", "Warm avg", "Delta")
	for _, e := range core.Engines {
		cold := r.ColdFirst[e]
		warm := r.WarmAvg[e]
		fmt.Fprintf(&b, "%-22s %12s %12s %12s\n", e.String(), ms(cold), ms(warm), ms(cold-warm))
	}
	return b.String()
}

// XQueryNativeTable reports the variation the paper could not benchmark:
// XQuery evaluated against the native XML store.
func (r *Results) XQueryNativeTable() string {
	s := r.TotalSummary(core.EngineXQuery)
	var b strings.Builder
	b.WriteString("Extension: XQuery on the native XML store (the variation the paper could not test) (ms)\n")
	fmt.Fprintf(&b, "%-10s %10s\n", "Average", ms(s.Avg))
	fmt.Fprintf(&b, "%-10s %10s\n", "Max", ms(s.Max))
	fmt.Fprintf(&b, "%-10s %10s\n", "Min", ms(s.Min))
	return b.String()
}

// Report renders every table in order.
func (r *Results) Report() string {
	sections := []string{
		r.Figure19(),
		r.ShredTable(),
		r.Figure20(),
		r.Figure21(),
		r.WarmCold(),
		r.XQueryNativeTable(),
	}
	return strings.Join(sections, "\n")
}
