package benchkit

import (
	"encoding/json"
	"os"
	"path/filepath"
	"strings"
	"testing"
)

// TestPrefindexSmoke runs a miniature prefindex experiment end to end:
// the swap pre-warm evaluates pairs, the index stays selective, the
// pre-warmed site answers the whole post-swap Zipf mix from cache, and
// the artifact round-trips. Latency ratios are asserted only loosely
// (correctness, not performance — CI machines are noisy); the committed
// BENCH_prefindex.json records the measured numbers.
func TestPrefindexSmoke(t *testing.T) {
	if testing.Short() {
		t.Skip("prefindex experiment in -short mode")
	}
	r, err := RunPrefindex(PrefindexConfig{
		Matches:       300,
		ResidentPrefs: []int{5, 20},
	})
	if err != nil {
		t.Fatal(err)
	}
	if len(r.Rows) != 2 {
		t.Fatalf("rows = %d, want 2", len(r.Rows))
	}
	for _, row := range r.Rows {
		if row.Evaluated == 0 || row.Policies == 0 {
			t.Errorf("%d resident: swap pre-warm evaluated nothing: %+v", row.ResidentPrefs, row)
		}
		if row.Selectivity <= 0 || row.Selectivity >= 1 {
			t.Errorf("%d resident: selectivity = %v, want in (0, 1)", row.ResidentPrefs, row.Selectivity)
		}
		// Every (resident preference, policy) SQL pair was pre-seeded
		// before the swap published, so the post-swap mix misses nothing.
		if row.WarmHitRate != 1 {
			t.Errorf("%d resident: warm hit rate = %v, want 1.0", row.ResidentPrefs, row.WarmHitRate)
		}
		if row.SwapWarmMicros <= 0 || row.SwapColdMicros <= 0 || row.FullRematchMicros <= 0 {
			t.Errorf("%d resident: unmeasured swap costs: %+v", row.ResidentPrefs, row)
		}
		if row.WarmP99Micros <= 0 || row.ColdP99Micros <= 0 {
			t.Errorf("%d resident: unmeasured latencies: %+v", row.ResidentPrefs, row)
		}
		// Warm requests are cache hits, cold ones include engine runs: the
		// ratio must at least be favorable, even on a noisy machine.
		if row.WarmColdP99Ratio >= 1 {
			t.Errorf("%d resident: warm p99 not below cold p99: %+v", row.ResidentPrefs, row)
		}
	}
	if hr, ok := r.WarmHitAt(20); !ok || hr != r.Rows[1].WarmHitRate {
		t.Errorf("WarmHitAt(20) = %v, %v", hr, ok)
	}
	if _, ok := r.WarmHitAt(999); ok {
		t.Error("WarmHitAt(999) found a row")
	}
	if ratio, ok := r.P99RatioAt(5); !ok || ratio != r.Rows[0].WarmColdP99Ratio {
		t.Errorf("P99RatioAt(5) = %v, %v", ratio, ok)
	}

	out := r.Render()
	for _, want := range []string{"resident", "selectivity", "warm hit", "ratio"} {
		if !strings.Contains(out, want) {
			t.Errorf("render missing %q:\n%s", want, out)
		}
	}

	path := filepath.Join(t.TempDir(), "BENCH_prefindex.json")
	if err := r.WriteJSON(path); err != nil {
		t.Fatal(err)
	}
	data, err := os.ReadFile(path)
	if err != nil {
		t.Fatal(err)
	}
	var back PrefindexResults
	if err := json.Unmarshal(data, &back); err != nil {
		t.Fatal(err)
	}
	if back.NumCPU != r.NumCPU || len(back.Rows) != len(r.Rows) || back.ZipfS != r.ZipfS {
		t.Errorf("artifact round-trip mismatch: %+v vs %+v", back, r)
	}

	if _, err := RunPrefindex(PrefindexConfig{ResidentPrefs: []int{1}}); err == nil {
		t.Error("universe of 1 accepted")
	}
}
