package benchkit

import (
	"encoding/json"
	"fmt"
	"math/rand"
	"os"
	"runtime"
	"sort"
	"strings"
	"time"

	"p3pdb/internal/core"
	"p3pdb/internal/workload"
)

// The prefindex experiment measures the preference index + pre-warm
// subsystem end to end: with n preference rulesets resident, a full
// policy-set swap (same names, new content — the worst case: nothing
// carries forward) pre-warms the decision cache before the snapshot
// publishes. The table reports, per universe size, what the pre-warm
// selected versus the exhaustive rule count, what the publish cost
// versus an unindexed full re-match, and what the first post-swap
// requests cost on the pre-warmed site versus an identical site without
// resident preferences (Zipf-distributed keys, the decision-cache
// experiment's request mix).

// PrefindexConfig parameterizes a prefindex run.
type PrefindexConfig struct {
	// Seed generates the two policy universes (swap is Seed -> Seed+1)
	// and the Zipf draw (default 42).
	Seed int64
	// Level is the preference level the resident variants are derived
	// from (default "High").
	Level string
	// ZipfS is the Zipf skew parameter, > 1 (default 1.1).
	ZipfS float64
	// Matches is how many post-swap matches each row measures (default
	// 2000).
	Matches int
	// ResidentPrefs lists the universe sizes measured, one row each
	// (default 10, 100, 1000).
	ResidentPrefs []int
}

func (c PrefindexConfig) withDefaults() PrefindexConfig {
	if c.Seed == 0 {
		c.Seed = 42
	}
	if c.Level == "" {
		c.Level = "High"
	}
	if c.ZipfS <= 1 {
		c.ZipfS = 1.1
	}
	if c.Matches == 0 {
		c.Matches = 2000
	}
	if len(c.ResidentPrefs) == 0 {
		c.ResidentPrefs = []int{10, 100, 1000}
	}
	return c
}

// PrefindexRow is one universe-size point of the experiment.
type PrefindexRow struct {
	ResidentPrefs int `json:"residentPrefs"`
	Policies      int `json:"policies"`
	Matches       int `json:"matches"`
	// Selectivity is selected rules over total resident rules during the
	// swap's pre-warm — the index's whole point. 1.0 means the index
	// degenerated to exhaustive evaluation.
	Selectivity float64 `json:"selectivity"`
	// Evaluated / NoRule / Skipped are the swap pre-warm's pair counts.
	Evaluated int64 `json:"evaluated"`
	NoRule    int64 `json:"noRule"`
	Skipped   int64 `json:"skipped"`
	// SwapWarmMicros is the wall time of the policy swap on the site with
	// resident preferences (includes the pre-warm); SwapColdMicros the
	// same swap with none. The difference is what pre-warming costs.
	SwapWarmMicros float64 `json:"swapWarmMicros"`
	SwapColdMicros float64 `json:"swapColdMicros"`
	// FullRematchMicros is the unindexed alternative: every resident
	// preference exhaustively matched against every policy after the
	// swap, on an identical uncached site.
	FullRematchMicros float64 `json:"fullRematchMicros"`
	// WarmHitRate is the decision-cache hit rate of the post-swap request
	// sequence on the pre-warmed site.
	WarmHitRate float64 `json:"warmHitRate"`
	// Warm/Cold p50 and p99 of the identical post-swap Zipf sequence.
	WarmP50Micros float64 `json:"warmP50Micros"`
	WarmP99Micros float64 `json:"warmP99Micros"`
	ColdP50Micros float64 `json:"coldP50Micros"`
	ColdP99Micros float64 `json:"coldP99Micros"`
	// WarmColdP99Ratio is warm p99 over cold p99 — the acceptance bar
	// (<= 0.5 at 1000 resident preferences).
	WarmColdP99Ratio float64 `json:"warmColdP99Ratio"`
}

// PrefindexResults is the full table plus the run's parameters, shaped
// for rendering and the BENCH_prefindex.json artifact.
type PrefindexResults struct {
	Seed       int64          `json:"seed"`
	Level      string         `json:"level"`
	Engine     string         `json:"engine"`
	ZipfS      float64        `json:"zipfS"`
	GOMAXPROCS int            `json:"gomaxprocs"`
	NumCPU     int            `json:"numCpu"`
	Rows       []PrefindexRow `json:"rows"`
}

// WarmHitAt returns the post-swap warm hit rate of the row with the
// given universe size, for the CI gate. ok is false when the run had no
// such row.
func (r *PrefindexResults) WarmHitAt(resident int) (float64, bool) {
	for _, row := range r.Rows {
		if row.ResidentPrefs == resident {
			return row.WarmHitRate, true
		}
	}
	return 0, false
}

// P99RatioAt returns the warm/cold p99 ratio of the row with the given
// universe size.
func (r *PrefindexResults) P99RatioAt(resident int) (float64, bool) {
	for _, row := range r.Rows {
		if row.ResidentPrefs == resident {
			return row.WarmColdP99Ratio, true
		}
	}
	return 0, false
}

// prefindexSite builds a site with the two caches sized for the largest
// universe and the first policy universe installed.
func prefindexSite(d *workload.Dataset, disableDecisions bool) (*core.Site, error) {
	site, err := core.NewSiteWithOptions(core.Options{
		DecisionCacheSize:    16384,
		ConversionCacheSize:  4096,
		DisableDecisionCache: disableDecisions,
	})
	if err != nil {
		return nil, err
	}
	if err := site.ReplacePolicies(d.Policies, d.RefFile); err != nil {
		return nil, err
	}
	return site, nil
}

// registerAll registers the resident preferences as one batch, so the
// registration publish runs a single pre-warm pass.
func registerAll(site *core.Site, prefs []workload.Preference) error {
	muts := make([]core.Mutation, 0, len(prefs))
	for i, p := range prefs {
		m, err := core.RegisterPreferenceMutation(fmt.Sprintf("resident-%d", i), p.XML, []string{"sql"})
		if err != nil {
			return err
		}
		muts = append(muts, m)
	}
	return site.ApplyBatch(muts)
}

// zipfLatencies replays the Zipf-distributed post-swap sequence and
// returns the ascending per-match latencies. Both sites replay the
// byte-identical sequence: the rng is rebuilt from the same seed.
func zipfLatencies(site *core.Site, prefs []workload.Preference, policy string,
	matches int, seed int64, zipfS float64) ([]time.Duration, error) {
	rng := rand.New(rand.NewSource(seed))
	zipf := rand.NewZipf(rng, zipfS, 1, uint64(len(prefs)-1))
	lats := make([]time.Duration, 0, matches)
	for i := 0; i < matches; i++ {
		pref := prefs[zipf.Uint64()]
		start := time.Now()
		if _, err := site.MatchPolicy(pref.XML, policy, core.EngineSQL); err != nil {
			return nil, fmt.Errorf("benchkit: prefindex match %d: %w", i, err)
		}
		lats = append(lats, time.Since(start))
	}
	sort.Slice(lats, func(i, j int) bool { return lats[i] < lats[j] })
	return lats, nil
}

// RunPrefindex measures the preference index + pre-warm subsystem.
func RunPrefindex(cfg PrefindexConfig) (*PrefindexResults, error) {
	cfg = cfg.withDefaults()
	res := &PrefindexResults{
		Seed:       cfg.Seed,
		Level:      cfg.Level,
		Engine:     "sql",
		ZipfS:      cfg.ZipfS,
		GOMAXPROCS: runtime.GOMAXPROCS(0),
		NumCPU:     runtime.NumCPU(),
	}
	d1 := workload.Generate(cfg.Seed)
	d2 := workload.Generate(cfg.Seed + 1)
	for _, resident := range cfg.ResidentPrefs {
		if resident < 2 {
			return nil, fmt.Errorf("benchkit: prefindex universe must have >= 2 preferences, got %d", resident)
		}
		prefs := workload.PreferenceVariants(cfg.Level, resident)

		warm, err := prefindexSite(d1, false)
		if err != nil {
			return nil, err
		}
		if err := registerAll(warm, prefs); err != nil {
			return nil, err
		}
		cold, err := prefindexSite(d1, false)
		if err != nil {
			return nil, err
		}
		rematch, err := prefindexSite(d1, true)
		if err != nil {
			return nil, err
		}

		// The swap: same policy names, new content, so nothing carries
		// forward and every warm decision comes from index-selected
		// evaluation.
		start := time.Now()
		if err := warm.ReplacePolicies(d2.Policies, d2.RefFile); err != nil {
			return nil, err
		}
		swapWarm := time.Since(start)
		start = time.Now()
		if err := cold.ReplacePolicies(d2.Policies, d2.RefFile); err != nil {
			return nil, err
		}
		swapCold := time.Since(start)
		if err := rematch.ReplacePolicies(d2.Policies, d2.RefFile); err != nil {
			return nil, err
		}

		// The unindexed alternative: exhaustively re-match every resident
		// preference against every policy.
		start = time.Now()
		for _, p := range prefs {
			for _, pol := range d2.Policies {
				if _, err := rematch.MatchPolicy(p.XML, pol.Name, core.EngineSQL); err != nil {
					return nil, fmt.Errorf("benchkit: prefindex re-match: %w", err)
				}
			}
		}
		fullRematch := time.Since(start)

		_, last := warm.PrewarmStats()
		row := PrefindexRow{
			ResidentPrefs:     resident,
			Policies:          len(d2.Policies),
			Matches:           cfg.Matches,
			Evaluated:         last.Evaluated,
			NoRule:            last.NoRule,
			Skipped:           last.Skipped,
			SwapWarmMicros:    float64(swapWarm.Microseconds()),
			SwapColdMicros:    float64(swapCold.Microseconds()),
			FullRematchMicros: float64(fullRematch.Microseconds()),
		}
		if last.TotalRules > 0 {
			row.Selectivity = float64(last.SelectedRules) / float64(last.TotalRules)
		}

		// Post-swap request mix: the identical Zipf sequence against the
		// pre-warmed and the cold site.
		policy := d2.Policies[0].Name
		before := warm.DecisionCacheDetail()
		warmLats, err := zipfLatencies(warm, prefs, policy, cfg.Matches, cfg.Seed, cfg.ZipfS)
		if err != nil {
			return nil, err
		}
		after := warm.DecisionCacheDetail()
		coldLats, err := zipfLatencies(cold, prefs, policy, cfg.Matches, cfg.Seed, cfg.ZipfS)
		if err != nil {
			return nil, err
		}
		if cfg.Matches > 0 {
			row.WarmHitRate = float64(after.Hits-before.Hits) / float64(cfg.Matches)
		}
		row.WarmP50Micros = quantile(warmLats, 0.50)
		row.WarmP99Micros = quantile(warmLats, 0.99)
		row.ColdP50Micros = quantile(coldLats, 0.50)
		row.ColdP99Micros = quantile(coldLats, 0.99)
		if row.ColdP99Micros > 0 {
			row.WarmColdP99Ratio = row.WarmP99Micros / row.ColdP99Micros
		}
		res.Rows = append(res.Rows, row)
	}
	return res, nil
}

// Render formats the prefindex table.
func (r *PrefindexResults) Render() string {
	var b strings.Builder
	fmt.Fprintf(&b, "Preference index + pre-warm (%s preference, %s engine, Zipf s=%.2f, full-content swap)\n",
		r.Level, r.Engine, r.ZipfS)
	fmt.Fprintf(&b, "%9s %6s %11s %10s %10s %12s %9s %9s %9s %7s\n",
		"resident", "eval", "selectivity", "swap warm", "swap cold", "full rematch", "warm hit", "warm p99", "cold p99", "ratio")
	for _, row := range r.Rows {
		fmt.Fprintf(&b, "%9d %6d %10.1f%% %8.1fms %8.1fms %10.1fms %8.1f%% %7.0fus %7.0fus %6.2fx\n",
			row.ResidentPrefs, row.Evaluated, row.Selectivity*100,
			row.SwapWarmMicros/1000, row.SwapColdMicros/1000, row.FullRematchMicros/1000,
			row.WarmHitRate*100, row.WarmP99Micros, row.ColdP99Micros, row.WarmColdP99Ratio)
	}
	return b.String()
}

// WriteJSON writes the results as the machine-readable artifact
// (BENCH_prefindex.json) that CI gates and later PRs track.
func (r *PrefindexResults) WriteJSON(path string) error {
	data, err := json.MarshalIndent(r, "", "  ")
	if err != nil {
		return err
	}
	return os.WriteFile(path, append(data, '\n'), 0o644)
}
