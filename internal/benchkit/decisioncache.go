package benchkit

import (
	"encoding/json"
	"fmt"
	"math/rand"
	"os"
	"runtime"
	"strings"
	"time"

	"p3pdb/internal/core"
	"p3pdb/internal/workload"
)

// The decision-cache experiment measures the cache the way a deployed
// site would feel it: visitor preferences are not uniform — a handful of
// canned browser defaults dominate, with a long tail of hand-edited
// rulesets — so requests are drawn Zipf-distributed over a universe of
// distinct preference texts. The table reports, per universe size, the
// hit rate the cache reaches and the throughput against a cache-disabled
// site running the identical request sequence.

// DecisionCacheConfig parameterizes a decision-cache run.
type DecisionCacheConfig struct {
	// Seed generates the workload and the Zipf draw (default 42).
	Seed int64
	// Level is the preference level the variants are derived from
	// (default "High").
	Level string
	// Engine is the matching engine; the zero value is the native engine.
	Engine core.Engine
	// ZipfS is the Zipf skew parameter, > 1 (default 1.1).
	ZipfS float64
	// Matches is how many matches each row performs (default 20000).
	Matches int
	// DistinctPrefs lists the universe sizes measured, one row each
	// (default 10, 100, 1000).
	DistinctPrefs []int
}

func (c DecisionCacheConfig) withDefaults() DecisionCacheConfig {
	if c.Seed == 0 {
		c.Seed = 42
	}
	if c.Level == "" {
		c.Level = "High"
	}
	if c.ZipfS <= 1 {
		c.ZipfS = 1.1
	}
	if c.Matches == 0 {
		c.Matches = 20000
	}
	if len(c.DistinctPrefs) == 0 {
		c.DistinctPrefs = []int{10, 100, 1000}
	}
	return c
}

// DecisionCacheRow is one universe-size point of the experiment.
type DecisionCacheRow struct {
	DistinctPrefs int     `json:"distinctPrefs"`
	Matches       int     `json:"matches"`
	// HitRate counts from a cold cache, so it includes the compulsory
	// miss per distinct preference: the steady-state rate is higher.
	HitRate       float64 `json:"hitRate"`
	MatchesPerSec float64 `json:"matchesPerSec"`
	// UncachedMatchesPerSec runs the identical Zipf sequence against a
	// site with the decision cache disabled (conversion cache still on,
	// as deployed); SpeedupVsUncached is the ratio.
	UncachedMatchesPerSec float64 `json:"uncachedMatchesPerSec"`
	SpeedupVsUncached     float64 `json:"speedupVsUncached"`
}

// DecisionCacheResults is the full table plus the run's parameters,
// shaped for rendering and the BENCH_decisioncache.json artifact.
type DecisionCacheResults struct {
	Seed       int64              `json:"seed"`
	Level      string             `json:"level"`
	Engine     string             `json:"engine"`
	ZipfS      float64            `json:"zipfS"`
	GOMAXPROCS int                `json:"gomaxprocs"`
	NumCPU     int                `json:"numCpu"`
	Rows       []DecisionCacheRow `json:"rows"`
}

// HitRateAt returns the hit rate of the row with the given universe
// size, for the CI gate. ok is false when the run had no such row.
func (r *DecisionCacheResults) HitRateAt(distinct int) (float64, bool) {
	for _, row := range r.Rows {
		if row.DistinctPrefs == distinct {
			return row.HitRate, true
		}
	}
	return 0, false
}

// runZipfSequence replays the Zipf-distributed request sequence against
// a site and reports elapsed time. The rng is rebuilt by each caller
// from the same seed, so the cached and uncached sites see the
// byte-identical sequence of (preference, policy) requests.
func runZipfSequence(site *core.Site, prefs []workload.Preference, policy string,
	engine core.Engine, matches int, seed int64, zipfS float64) (time.Duration, error) {
	rng := rand.New(rand.NewSource(seed))
	zipf := rand.NewZipf(rng, zipfS, 1, uint64(len(prefs)-1))
	start := time.Now()
	for i := 0; i < matches; i++ {
		pref := prefs[zipf.Uint64()]
		if _, err := site.MatchPolicy(pref.XML, policy, engine); err != nil {
			return 0, fmt.Errorf("benchkit: decision-cache match %d: %w", i, err)
		}
	}
	return time.Since(start), nil
}

// RunDecisionCache measures decision-cache hit rates and speedups over
// Zipf-distributed preference universes of increasing size.
func RunDecisionCache(cfg DecisionCacheConfig) (*DecisionCacheResults, error) {
	cfg = cfg.withDefaults()
	res := &DecisionCacheResults{
		Seed:       cfg.Seed,
		Level:      cfg.Level,
		Engine:     cfg.Engine.ShortName(),
		ZipfS:      cfg.ZipfS,
		GOMAXPROCS: runtime.GOMAXPROCS(0),
		NumCPU:     runtime.NumCPU(),
	}
	for _, distinct := range cfg.DistinctPrefs {
		if distinct < 2 {
			return nil, fmt.Errorf("benchkit: decision-cache universe must have >= 2 preferences, got %d", distinct)
		}
		prefs := workload.PreferenceVariants(cfg.Level, distinct)

		// Fresh sites per row: hit rates count from a cold cache, and the
		// uncached site replays the byte-identical sequence.
		cached, d, err := Setup(Config{Seed: cfg.Seed})
		if err != nil {
			return nil, err
		}
		uncached, _, err := Setup(Config{Seed: cfg.Seed, DisableDecisionCache: true})
		if err != nil {
			return nil, err
		}
		policy := d.Policies[0].Name

		cachedElapsed, err := runZipfSequence(cached, prefs, policy, cfg.Engine, cfg.Matches, cfg.Seed, cfg.ZipfS)
		if err != nil {
			return nil, err
		}
		uncachedElapsed, err := runZipfSequence(uncached, prefs, policy, cfg.Engine, cfg.Matches, cfg.Seed, cfg.ZipfS)
		if err != nil {
			return nil, err
		}

		hits, misses, _, _ := cached.DecisionCacheStats()
		row := DecisionCacheRow{
			DistinctPrefs:         distinct,
			Matches:               cfg.Matches,
			MatchesPerSec:         float64(cfg.Matches) / cachedElapsed.Seconds(),
			UncachedMatchesPerSec: float64(cfg.Matches) / uncachedElapsed.Seconds(),
		}
		if total := hits + misses; total > 0 {
			row.HitRate = float64(hits) / float64(total)
		}
		if row.UncachedMatchesPerSec > 0 {
			row.SpeedupVsUncached = row.MatchesPerSec / row.UncachedMatchesPerSec
		}
		res.Rows = append(res.Rows, row)
	}
	return res, nil
}

// Render formats the decision-cache table.
func (r *DecisionCacheResults) Render() string {
	var b strings.Builder
	fmt.Fprintf(&b, "Decision cache (%s preference, %s engine, Zipf s=%.2f, cold start)\n",
		r.Level, r.Engine, r.ZipfS)
	fmt.Fprintf(&b, "%10s %10s %9s %14s %16s %9s\n",
		"distinct", "matches", "hit rate", "matches/sec", "uncached m/sec", "speedup")
	for _, row := range r.Rows {
		fmt.Fprintf(&b, "%10d %10d %8.1f%% %14.0f %16.0f %8.2fx\n",
			row.DistinctPrefs, row.Matches, row.HitRate*100,
			row.MatchesPerSec, row.UncachedMatchesPerSec, row.SpeedupVsUncached)
	}
	return b.String()
}

// WriteJSON writes the results as the machine-readable artifact
// (BENCH_decisioncache.json) that CI gates and later PRs track.
func (r *DecisionCacheResults) WriteJSON(path string) error {
	data, err := json.MarshalIndent(r, "", "  ")
	if err != nil {
		return err
	}
	return os.WriteFile(path, append(data, '\n'), 0o644)
}
