package benchkit

import (
	"encoding/json"
	"os"
	"path/filepath"
	"strings"
	"testing"
)

func TestWorkerCounts(t *testing.T) {
	for _, tc := range []struct {
		max  int
		want []int
	}{
		{1, []int{1}},
		{2, []int{1, 2}},
		{4, []int{1, 2, 4}},
		{6, []int{1, 2, 4, 6}},
		{8, []int{1, 2, 4, 8}},
	} {
		got := workerCounts(tc.max)
		if len(got) != len(tc.want) {
			t.Errorf("workerCounts(%d) = %v, want %v", tc.max, got, tc.want)
			continue
		}
		for i := range got {
			if got[i] != tc.want[i] {
				t.Errorf("workerCounts(%d) = %v, want %v", tc.max, got, tc.want)
				break
			}
		}
	}
}

// TestThroughputSmoke runs a miniature throughput experiment end to end:
// every worker count yields a row with sane fields (including the
// allocations-per-match columns), the machine facts the CI gate reads
// are recorded, and the artifact round-trips. Speedups are asserted only
// for sign — the committed BENCH_throughput.json records the measured
// scaling and scripts/bench_gate.sh enforces the floor where the
// hardware can express it.
func TestThroughputSmoke(t *testing.T) {
	if testing.Short() {
		t.Skip("throughput experiment in -short mode")
	}
	r, err := RunThroughput(ThroughputConfig{MatchesPerWorker: 30})
	if err != nil {
		t.Fatal(err)
	}
	if len(r.Rows) == 0 {
		t.Fatal("no rows measured")
	}
	if r.GOMAXPROCS < 1 || r.NumCPU < 1 {
		t.Errorf("machine facts unrecorded: GOMAXPROCS=%d NumCPU=%d", r.GOMAXPROCS, r.NumCPU)
	}
	if !r.DecisionCache {
		t.Error("default run reports decision cache off")
	}
	if r.Rows[0].Workers != 1 || r.Rows[0].SpeedupVs1 != 1 {
		t.Errorf("first row must be the 1-worker baseline: %+v", r.Rows[0])
	}
	for _, row := range r.Rows {
		if row.Matches != row.Workers*30 {
			t.Errorf("%d workers: matches = %d, want %d", row.Workers, row.Matches, row.Workers*30)
		}
		if row.MatchesPerSec <= 0 || row.ElapsedMS <= 0 || row.SpeedupVs1 <= 0 {
			t.Errorf("%d workers: unmeasured row: %+v", row.Workers, row)
		}
		if row.AllocsPerOp < 0 || row.BytesPerOp < 0 {
			t.Errorf("%d workers: negative allocation columns: %+v", row.Workers, row)
		}
	}

	// The cache-off variant must report itself so artifacts are
	// distinguishable.
	off, err := RunThroughput(ThroughputConfig{MatchesPerWorker: 5, DisableDecisionCache: true})
	if err != nil {
		t.Fatal(err)
	}
	if off.DecisionCache {
		t.Error("cache-off run reports decision cache on")
	}

	out := r.Render()
	for _, want := range []string{"workers", "matches/sec", "allocs/op", "decision cache on"} {
		if !strings.Contains(out, want) {
			t.Errorf("render missing %q:\n%s", want, out)
		}
	}
	if !strings.Contains(off.Render(), "decision cache off") {
		t.Error("cache-off render missing its label")
	}

	path := filepath.Join(t.TempDir(), "BENCH_throughput.json")
	if err := r.WriteJSON(path); err != nil {
		t.Fatal(err)
	}
	data, err := os.ReadFile(path)
	if err != nil {
		t.Fatal(err)
	}
	var back ThroughputResults
	if err := json.Unmarshal(data, &back); err != nil {
		t.Fatal(err)
	}
	if back.NumCPU != r.NumCPU || len(back.Rows) != len(r.Rows) || !back.DecisionCache {
		t.Errorf("artifact round-trip mismatch: %+v vs %+v", back, r)
	}
}
