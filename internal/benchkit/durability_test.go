package benchkit

import (
	"encoding/json"
	"os"
	"path/filepath"
	"strings"
	"testing"
)

// TestDurabilitySmoke runs a miniature durability experiment end to end:
// every fsync phase completes, the WAL really grew, recovery replays,
// and the artifact round-trips. The 2x acceptance ratio is asserted
// loosely here (correctness, not performance — CI machines are noisy);
// the committed BENCH_durability.json records the measured ratio.
func TestDurabilitySmoke(t *testing.T) {
	if testing.Short() {
		t.Skip("durability experiment in -short mode")
	}
	r, err := RunDurability(DurabilityConfig{
		Mutations:      3,
		RecoveryCounts: []int{10},
		Dir:            t.TempDir(),
	})
	if err != nil {
		t.Fatal(err)
	}
	if len(r.Phases) != 4 {
		t.Fatalf("phases = %d, want in-memory + 3 fsync policies", len(r.Phases))
	}
	// 3 install/remove pairs per writer, default 4 writers.
	for _, ph := range r.Phases {
		if ph.Mutations != 6*r.Writers {
			t.Errorf("%s mutations = %d, want %d", ph.Name, ph.Mutations, 6*r.Writers)
		}
		if ph.P50Micros <= 0 || ph.P50Micros > ph.P99Micros {
			t.Errorf("%s quantiles broken: %+v", ph.Name, ph)
		}
		if journaled := ph.Name != "in-memory"; journaled != (ph.LogBytes > 0) {
			t.Errorf("%s log bytes = %d", ph.Name, ph.LogBytes)
		}
		if ph.Name != "in-memory" && ph.WriteAmp <= 1 {
			t.Errorf("%s write amp = %v, framing cannot shrink the payload", ph.Name, ph.WriteAmp)
		}
	}
	if r.P99RatioInterval <= 0 {
		t.Errorf("interval ratio = %v", r.P99RatioInterval)
	}
	if len(r.Recovery) != 1 || r.Recovery[0].Mutations != 10 ||
		r.Recovery[0].LogBytes <= 0 || r.Recovery[0].RecoverMillis <= 0 {
		t.Errorf("recovery point = %+v", r.Recovery)
	}

	out := r.Render()
	for _, want := range []string{"in-memory", "fsync=always", "recover ms", "p99"} {
		if !strings.Contains(out, want) {
			t.Errorf("render missing %q:\n%s", want, out)
		}
	}

	path := filepath.Join(t.TempDir(), "BENCH_durability.json")
	if err := r.WriteJSON(path); err != nil {
		t.Fatal(err)
	}
	data, err := os.ReadFile(path)
	if err != nil {
		t.Fatal(err)
	}
	var back DurabilityResults
	if err := json.Unmarshal(data, &back); err != nil {
		t.Fatal(err)
	}
	if back.P99RatioInterval != r.P99RatioInterval || len(back.Recovery) != len(r.Recovery) {
		t.Errorf("artifact round-trip mismatch: %+v vs %+v", back, *r)
	}
}
