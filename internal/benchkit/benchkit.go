// Package benchkit is the experiment harness: it regenerates every table
// and figure of the paper's Section 6 against the synthesized workload —
// Figure 19 (the preference suite), the shredding measurements of §6.3.1,
// Figures 20 and 21 (matching times per engine and per preference level,
// including the blank Medium/XQuery cell), the warm-vs-cold deltas, and
// the ablations behind the §6.3.2 profiling claim.
//
// cmd/p3pbench drives it from the command line; bench_test.go exposes the
// same cells as testing.B benchmarks.
package benchkit

import (
	"errors"
	"fmt"
	"time"

	"p3pdb/internal/core"
	"p3pdb/internal/reldb"
	"p3pdb/internal/workload"
)

// Config controls a harness run.
type Config struct {
	// Seed generates the workload; the default 42 reproduces the checked
	// numbers in EXPERIMENTS.md.
	Seed int64
	// Repeats is how many times each (preference, policy, engine) cell
	// is measured; the mean is recorded. Default 3.
	Repeats int
	// Budget caps evaluator steps per match (core.Options.MatchBudget);
	// zero leaves matching ungoverned. Lets the bench suites measure the
	// metering overhead of a governed deployment.
	Budget int64
	// DisableDecisionCache turns off the decision cache on the site under
	// test, so benches can measure the full engine pipeline (and the
	// cache's own benefit, by difference).
	DisableDecisionCache bool
	// DecisionCacheSize overrides the decision cache's slot count; zero
	// keeps the default.
	DecisionCacheSize int
}

func (c Config) withDefaults() Config {
	if c.Seed == 0 {
		c.Seed = 42
	}
	if c.Repeats == 0 {
		c.Repeats = 3
	}
	return c
}

// Sample is one measured preference-against-policy match.
type Sample struct {
	Level   string
	Policy  string
	Convert time.Duration
	Query   time.Duration
}

// Total is the end-to-end time of the sample.
func (s Sample) Total() time.Duration { return s.Convert + s.Query }

// Summary aggregates a series of durations.
type Summary struct {
	N             int
	Avg, Max, Min time.Duration
}

func summarize(ds []time.Duration) Summary {
	if len(ds) == 0 {
		return Summary{}
	}
	s := Summary{N: len(ds), Min: ds[0], Max: ds[0]}
	var total time.Duration
	for _, d := range ds {
		total += d
		if d > s.Max {
			s.Max = d
		}
		if d < s.Min {
			s.Min = d
		}
	}
	s.Avg = total / time.Duration(len(ds))
	return s
}

// Results holds everything a run measured.
type Results struct {
	Config  Config
	Dataset *workload.Dataset

	// ShredTimes holds per-policy shredding durations, in policy order.
	ShredTimes []time.Duration

	// Samples maps engine -> samples over the full matrix. The XTable
	// engine has no Medium samples; TooComplexLevels records the levels
	// it rejected.
	Samples          map[core.Engine][]Sample
	TooComplexLevels map[core.Engine]map[string]bool

	// ColdFirst and WarmAvg record the warm-vs-cold comparison of
	// §6.3.2: the first match on a freshly started site versus the warm
	// average.
	ColdFirst map[core.Engine]time.Duration
	WarmAvg   map[core.Engine]time.Duration
}

// Setup installs the generated corpus into a fresh site.
func Setup(cfg Config) (*core.Site, *workload.Dataset, error) {
	cfg = cfg.withDefaults()
	d := workload.Generate(cfg.Seed)
	site, err := core.NewSiteWithOptions(core.Options{
		MatchBudget:          cfg.Budget,
		DisableDecisionCache: cfg.DisableDecisionCache,
		DecisionCacheSize:    cfg.DecisionCacheSize,
	})
	if err != nil {
		return nil, nil, err
	}
	for _, pol := range d.Policies {
		if err := site.InstallPolicy(pol); err != nil {
			return nil, nil, fmt.Errorf("benchkit: installing %s: %w", pol.Name, err)
		}
	}
	if err := site.InstallReferenceFile(d.RefFile); err != nil {
		return nil, nil, err
	}
	return site, d, nil
}

// Run executes the full experiment suite.
func Run(cfg Config) (*Results, error) {
	cfg = cfg.withDefaults()
	r := &Results{
		Config:           cfg,
		Samples:          map[core.Engine][]Sample{},
		TooComplexLevels: map[core.Engine]map[string]bool{},
		ColdFirst:        map[core.Engine]time.Duration{},
		WarmAvg:          map[core.Engine]time.Duration{},
	}
	d := workload.Generate(cfg.Seed)
	r.Dataset = d

	// --- Shredding (§6.3.1): time to install each policy. ---
	site, err := core.NewSite()
	if err != nil {
		return nil, err
	}
	for _, pol := range d.Policies {
		start := time.Now()
		if err := site.InstallPolicy(pol); err != nil {
			return nil, fmt.Errorf("benchkit: installing %s: %w", pol.Name, err)
		}
		r.ShredTimes = append(r.ShredTimes, time.Since(start))
	}
	if err := site.InstallReferenceFile(d.RefFile); err != nil {
		return nil, err
	}

	// --- Matching (Figures 20 and 21). ---
	// Warm the system by matching an artificial preference first and
	// discarding the time, as the paper does.
	coldDone := map[core.Engine]bool{}
	for _, engine := range core.Engines {
		start := time.Now()
		if _, err := site.MatchPolicy(d.Preferences[0].XML, d.Policies[0].Name, engine); err != nil {
			return nil, fmt.Errorf("benchkit: warmup %v: %w", engine, err)
		}
		r.ColdFirst[engine] = time.Since(start)
		coldDone[engine] = true
	}

	for _, engine := range core.Engines {
		for _, pref := range d.Preferences {
			for _, pol := range d.Policies {
				var convert, query time.Duration
				failed := false
				for i := 0; i < cfg.Repeats; i++ {
					dec, err := site.MatchPolicy(pref.XML, pol.Name, engine)
					if err != nil {
						if errors.Is(err, reldb.ErrTooComplex) {
							if r.TooComplexLevels[engine] == nil {
								r.TooComplexLevels[engine] = map[string]bool{}
							}
							r.TooComplexLevels[engine][pref.Level] = true
							failed = true
							break
						}
						return nil, fmt.Errorf("benchkit: %v %s vs %s: %w", engine, pref.Level, pol.Name, err)
					}
					convert += dec.Convert
					query += dec.Query
				}
				if failed {
					break // no samples for this level on this engine
				}
				r.Samples[engine] = append(r.Samples[engine], Sample{
					Level:   pref.Level,
					Policy:  pol.Name,
					Convert: convert / time.Duration(cfg.Repeats),
					Query:   query / time.Duration(cfg.Repeats),
				})
			}
		}
	}

	// Warm averages for the warm-vs-cold comparison: the same cell the
	// cold measurement used (first preference against first policy), so
	// the delta isolates first-use costs rather than workload mix.
	coldLevel := d.Preferences[0].Level
	coldPolicy := d.Policies[0].Name
	for _, engine := range core.Engines {
		var totals []time.Duration
		for _, s := range r.Samples[engine] {
			if s.Level == coldLevel && s.Policy == coldPolicy {
				totals = append(totals, s.Total())
			}
		}
		r.WarmAvg[engine] = summarize(totals).Avg
	}
	return r, nil
}

// TotalSummary aggregates total match time for an engine across levels.
func (r *Results) TotalSummary(engine core.Engine) Summary {
	var ds []time.Duration
	for _, s := range r.Samples[engine] {
		ds = append(ds, s.Total())
	}
	return summarize(ds)
}

// ConvertSummary aggregates conversion time.
func (r *Results) ConvertSummary(engine core.Engine) Summary {
	var ds []time.Duration
	for _, s := range r.Samples[engine] {
		ds = append(ds, s.Convert)
	}
	return summarize(ds)
}

// QuerySummary aggregates query time.
func (r *Results) QuerySummary(engine core.Engine) Summary {
	var ds []time.Duration
	for _, s := range r.Samples[engine] {
		ds = append(ds, s.Query)
	}
	return summarize(ds)
}

// LevelSummary aggregates one preference level. ok is false when the
// engine could not execute the level (the blank Figure 21 cell).
func (r *Results) LevelSummary(engine core.Engine, level string) (convert, query, total Summary, ok bool) {
	if r.TooComplexLevels[engine][level] {
		return Summary{}, Summary{}, Summary{}, false
	}
	var cs, qs, ts []time.Duration
	for _, s := range r.Samples[engine] {
		if s.Level != level {
			continue
		}
		cs = append(cs, s.Convert)
		qs = append(qs, s.Query)
		ts = append(ts, s.Total())
	}
	if len(ts) == 0 {
		return Summary{}, Summary{}, Summary{}, false
	}
	return summarize(cs), summarize(qs), summarize(ts), true
}

// ShredSummary aggregates the shredding measurements.
func (r *Results) ShredSummary() Summary { return summarize(r.ShredTimes) }

// Speedup returns how many times faster SQL total matching is than the
// native APPEL engine (the paper reports >15x), and the query-only
// speedup (the paper reports ~30x).
func (r *Results) Speedup() (total, queryOnly float64) {
	native := r.TotalSummary(core.EngineNative).Avg
	sqlTotal := r.TotalSummary(core.EngineSQL).Avg
	sqlQuery := r.QuerySummary(core.EngineSQL).Avg
	if sqlTotal > 0 {
		total = float64(native) / float64(sqlTotal)
	}
	if sqlQuery > 0 {
		queryOnly = float64(native) / float64(sqlQuery)
	}
	return total, queryOnly
}
