package benchkit

import (
	"encoding/json"
	"fmt"
	"os"
	"runtime"
	"sort"
	"strings"
	"sync"
	"sync/atomic"
	"time"

	"p3pdb/internal/core"
	"p3pdb/internal/workload"
)

// The tenancy experiment quantifies the snapshot-isolation claim behind
// the multi-tenant server: policy reloads must not stall matching. It
// measures per-match latency twice — once against a quiet site, once
// while a background writer continuously replaces the whole policy set
// (the registry's hot-reload path) — and reports the p50/p99 of each
// phase plus their ratio. Under the old site-level lock every swap
// would have blocked every reader for the full rebuild; with
// copy-on-write snapshots the churn tail should stay within a small
// factor of the quiet tail.

// TenancyPhase is one measured phase of the experiment.
type TenancyPhase struct {
	Name      string  `json:"name"`
	Matches   int     `json:"matches"`
	P50Micros float64 `json:"p50Micros"`
	P99Micros float64 `json:"p99Micros"`
	// Swaps counts full policy-set replacements the background writer
	// completed during the phase (zero in the read-only phase).
	Swaps int64 `json:"swaps"`
}

// TenancyResults is the full experiment plus parameters, shaped for
// rendering and the BENCH_tenancy.json artifact.
type TenancyResults struct {
	Seed       int64        `json:"seed"`
	Level      string       `json:"level"`
	Engine     string       `json:"engine"`
	GOMAXPROCS int          `json:"gomaxprocs"`
	Workers    int          `json:"workers"`
	ReadOnly   TenancyPhase `json:"readOnly"`
	Churn      TenancyPhase `json:"churn"`
	// P99Ratio is churn p99 over read-only p99 — the cost of concurrent
	// policy replacement on the matching tail.
	P99Ratio float64 `json:"p99Ratio"`
}

// TenancyConfig parameterizes a tenancy run.
type TenancyConfig struct {
	// Seed generates the workload (default 42).
	Seed int64
	// Level is the preference level matched (default "High").
	Level string
	// Engine is the matching engine; the zero value is the native engine.
	Engine core.Engine
	// MatchesPerWorker is each reader's match count per phase (default 300).
	MatchesPerWorker int
	// Workers is the reader concurrency (default GOMAXPROCS).
	Workers int
}

func (c TenancyConfig) withDefaults() TenancyConfig {
	if c.Seed == 0 {
		c.Seed = 42
	}
	if c.Level == "" {
		c.Level = "High"
	}
	if c.MatchesPerWorker == 0 {
		c.MatchesPerWorker = 300
	}
	if c.Workers == 0 {
		c.Workers = runtime.GOMAXPROCS(0)
	}
	return c
}

// quantile reads the q-quantile from an ascending slice of durations.
func quantile(sorted []time.Duration, q float64) float64 {
	if len(sorted) == 0 {
		return 0
	}
	i := int(q * float64(len(sorted)-1))
	return float64(sorted[i].Nanoseconds()) / 1000
}

// RunTenancy measures match latency with and without concurrent
// policy-set churn.
func RunTenancy(cfg TenancyConfig) (*TenancyResults, error) {
	cfg = cfg.withDefaults()
	site, d, err := Setup(Config{Seed: cfg.Seed})
	if err != nil {
		return nil, err
	}
	pref, ok := workload.PreferenceByLevel(cfg.Level)
	if !ok {
		return nil, fmt.Errorf("benchkit: no preference level %q", cfg.Level)
	}
	// Warm up conversion caches so both phases measure query execution.
	for _, pol := range d.Policies {
		if _, err := site.MatchPolicy(pref.XML, pol.Name, cfg.Engine); err != nil {
			return nil, fmt.Errorf("benchkit: warmup %s: %w", pol.Name, err)
		}
	}

	res := &TenancyResults{
		Seed:       cfg.Seed,
		Level:      cfg.Level,
		Engine:     cfg.Engine.ShortName(),
		GOMAXPROCS: runtime.GOMAXPROCS(0),
		Workers:    cfg.Workers,
	}

	runPhase := func(name string, churn bool) (TenancyPhase, error) {
		var swaps atomic.Int64
		stop := make(chan struct{})
		var writerWG sync.WaitGroup
		var writerErr atomic.Value
		if churn {
			writerWG.Add(1)
			go func() {
				defer writerWG.Done()
				for {
					select {
					case <-stop:
						return
					default:
					}
					// The registry's hot-reload path: rebuild the whole
					// policy set aside and publish it in one swap.
					if err := site.ReplacePolicies(d.Policies, d.RefFile); err != nil {
						writerErr.CompareAndSwap(nil, err)
						return
					}
					swaps.Add(1)
				}
			}()
		}

		lats := make([][]time.Duration, cfg.Workers)
		var firstErr atomic.Value
		var wg sync.WaitGroup
		for w := 0; w < cfg.Workers; w++ {
			wg.Add(1)
			go func(w int) {
				defer wg.Done()
				lats[w] = make([]time.Duration, 0, cfg.MatchesPerWorker)
				for i := 0; i < cfg.MatchesPerWorker; i++ {
					pol := d.Policies[(w*cfg.MatchesPerWorker+i)%len(d.Policies)]
					start := time.Now()
					if _, err := site.MatchPolicy(pref.XML, pol.Name, cfg.Engine); err != nil {
						firstErr.CompareAndSwap(nil, err)
						return
					}
					lats[w] = append(lats[w], time.Since(start))
				}
			}(w)
		}
		wg.Wait()
		close(stop)
		writerWG.Wait()
		if err, ok := firstErr.Load().(error); ok {
			return TenancyPhase{}, fmt.Errorf("benchkit: tenancy %s phase: %w", name, err)
		}
		if err, ok := writerErr.Load().(error); ok {
			return TenancyPhase{}, fmt.Errorf("benchkit: tenancy writer: %w", err)
		}
		var all []time.Duration
		for _, l := range lats {
			all = append(all, l...)
		}
		sort.Slice(all, func(i, j int) bool { return all[i] < all[j] })
		return TenancyPhase{
			Name:      name,
			Matches:   len(all),
			P50Micros: quantile(all, 0.50),
			P99Micros: quantile(all, 0.99),
			Swaps:     swaps.Load(),
		}, nil
	}

	if res.ReadOnly, err = runPhase("read-only", false); err != nil {
		return nil, err
	}
	if res.Churn, err = runPhase("churn", true); err != nil {
		return nil, err
	}
	if res.ReadOnly.P99Micros > 0 {
		res.P99Ratio = res.Churn.P99Micros / res.ReadOnly.P99Micros
	}
	return res, nil
}

// Render formats the tenancy table.
func (r *TenancyResults) Render() string {
	var b strings.Builder
	fmt.Fprintf(&b, "Tenancy churn (%s preference, %s engine, %d readers, GOMAXPROCS=%d)\n",
		r.Level, r.Engine, r.Workers, r.GOMAXPROCS)
	fmt.Fprintf(&b, "%10s %9s %12s %12s %7s\n", "phase", "matches", "p50 us", "p99 us", "swaps")
	for _, ph := range []TenancyPhase{r.ReadOnly, r.Churn} {
		fmt.Fprintf(&b, "%10s %9d %12.1f %12.1f %7d\n",
			ph.Name, ph.Matches, ph.P50Micros, ph.P99Micros, ph.Swaps)
	}
	fmt.Fprintf(&b, "churn p99 / read-only p99 = %.2fx\n", r.P99Ratio)
	return b.String()
}

// WriteJSON writes the results as the machine-readable artifact
// (BENCH_tenancy.json) that later PRs track for regressions.
func (r *TenancyResults) WriteJSON(path string) error {
	data, err := json.MarshalIndent(r, "", "  ")
	if err != nil {
		return err
	}
	return os.WriteFile(path, append(data, '\n'), 0o644)
}
