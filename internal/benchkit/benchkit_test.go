package benchkit

import (
	"strings"
	"testing"
	"time"

	"p3pdb/internal/core"
)

// run executes one harness run for the whole test file.
var cached *Results

func results(t *testing.T) *Results {
	t.Helper()
	if testing.Short() {
		t.Skip("harness run is slow")
	}
	if cached == nil {
		r, err := Run(Config{Seed: 42, Repeats: 1})
		if err != nil {
			t.Fatal(err)
		}
		cached = r
	}
	return cached
}

func TestRunProducesFullMatrix(t *testing.T) {
	r := results(t)
	if len(r.ShredTimes) != 29 {
		t.Errorf("shred times = %d", len(r.ShredTimes))
	}
	// Native, SQL and XQuery-native cover all 5 levels x 29 policies.
	for _, e := range []core.Engine{core.EngineNative, core.EngineSQL, core.EngineXQuery} {
		if got := len(r.Samples[e]); got != 5*29 {
			t.Errorf("%v samples = %d, want 145", e, got)
		}
	}
	// XTable skips Medium.
	if got := len(r.Samples[core.EngineXTable]); got != 4*29 {
		t.Errorf("xtable samples = %d, want 116", got)
	}
	if !r.TooComplexLevels[core.EngineXTable]["Medium"] {
		t.Error("Medium should be recorded as too complex for XTable")
	}
}

// TestPaperShapeHolds asserts the qualitative findings of Section 6.3:
// SQL beats the native engine by a wide margin, XQuery lands in between,
// and the Medium XQuery cell is blank.
func TestPaperShapeHolds(t *testing.T) {
	r := results(t)
	native := r.TotalSummary(core.EngineNative).Avg
	sqlTotal := r.TotalSummary(core.EngineSQL).Avg
	xq := r.TotalSummary(core.EngineXTable).Avg

	if sqlTotal >= native {
		t.Errorf("SQL (%v) should beat the native engine (%v)", sqlTotal, native)
	}
	spTotal, spQuery := r.Speedup()
	if spTotal < 2 {
		t.Errorf("SQL total speedup = %.1fx; the paper's effect has vanished", spTotal)
	}
	if spQuery < spTotal {
		t.Errorf("query-only speedup (%.1fx) should exceed total speedup (%.1fx)", spQuery, spTotal)
	}
	if xq <= sqlTotal {
		t.Errorf("XQuery-via-XTABLE (%v) should be slower than optimized SQL (%v)", xq, sqlTotal)
	}
	if xq >= native {
		t.Errorf("XQuery-via-XTABLE (%v) should be faster than the native engine (%v)", xq, native)
	}
	// The Figure 21 blank cell.
	if _, _, _, ok := r.LevelSummary(core.EngineXTable, "Medium"); ok {
		t.Error("Medium via XTable should have no summary")
	}
	if _, _, _, ok := r.LevelSummary(core.EngineSQL, "Medium"); !ok {
		t.Error("Medium via SQL should have a summary")
	}
}

func TestRenderedTables(t *testing.T) {
	r := results(t)
	f19 := r.Figure19()
	for _, want := range []string{"Very High", "10", "Very Low", "Average"} {
		if !strings.Contains(f19, want) {
			t.Errorf("Figure19 missing %q:\n%s", want, f19)
		}
	}
	f20 := r.Figure20()
	for _, want := range []string{"APPEL Engine", "Convert", "Query", "Total", "XQuery", "speedup"} {
		if !strings.Contains(f20, want) {
			t.Errorf("Figure20 missing %q:\n%s", want, f20)
		}
	}
	f21 := r.Figure21()
	if !strings.Contains(f21, "Medium") {
		t.Errorf("Figure21 missing Medium:\n%s", f21)
	}
	// The blank cell renders as '-'.
	for _, line := range strings.Split(f21, "\n") {
		if strings.HasPrefix(line, "Medium") && !strings.Contains(line, "-") {
			t.Errorf("Medium row should have a blank XQuery cell: %s", line)
		}
	}
	report := r.Report()
	for _, want := range []string{"Figure 19", "Figure 20", "Figure 21", "Shredding", "Warm vs cold", "native XML store"} {
		if !strings.Contains(report, want) {
			t.Errorf("Report missing %q", want)
		}
	}
}

func TestSummarize(t *testing.T) {
	s := summarize([]time.Duration{3 * time.Millisecond, time.Millisecond, 2 * time.Millisecond})
	if s.N != 3 || s.Min != time.Millisecond || s.Max != 3*time.Millisecond || s.Avg != 2*time.Millisecond {
		t.Errorf("summary = %+v", s)
	}
	if z := summarize(nil); z.N != 0 {
		t.Errorf("empty summary = %+v", z)
	}
}

func TestAblations(t *testing.T) {
	if testing.Short() {
		t.Skip("ablations are slow")
	}
	a, err := RunAblations(42, "High")
	if err != nil {
		t.Fatal(err)
	}
	if a.AugmentationOn <= a.AugmentationOff {
		t.Errorf("augmentation should dominate native cost: on=%v off=%v",
			a.AugmentationOn, a.AugmentationOff)
	}
	if a.SchemaGeneric <= a.SchemaOptimized {
		t.Errorf("generic schema should be slower: generic=%v optimized=%v",
			a.SchemaGeneric, a.SchemaOptimized)
	}
	if a.SchemaGenericView <= a.SchemaGeneric {
		t.Errorf("view reconstruction (uncached) should add cost: view=%v direct=%v",
			a.SchemaGenericView, a.SchemaGeneric)
	}
	if a.SchemaGenericViewCached >= a.SchemaGenericView {
		t.Errorf("the materialized-view cache should recover view cost: cached=%v uncached=%v",
			a.SchemaGenericViewCached, a.SchemaGenericView)
	}
	if a.IndexOff <= a.IndexOn {
		t.Errorf("disabling indexes should cost: off=%v on=%v", a.IndexOff, a.IndexOn)
	}
	if a.ConvertCached >= a.ConvertEachTime {
		t.Errorf("prepared statements should be faster: cached=%v full=%v",
			a.ConvertCached, a.ConvertEachTime)
	}
	out := a.Render()
	for _, want := range []string{"augmentation", "schema", "indexes", "prepared"} {
		if !strings.Contains(out, want) {
			t.Errorf("ablation table missing %q:\n%s", want, out)
		}
	}
}

func TestSetup(t *testing.T) {
	site, d, err := Setup(Config{Seed: 42})
	if err != nil {
		t.Fatal(err)
	}
	if len(site.PolicyNames()) != 29 || len(d.Policies) != 29 {
		t.Errorf("setup installed %d policies", len(site.PolicyNames()))
	}
	// Reference file resolution works end to end.
	if _, err := site.MatchURI(d.Preferences[4].XML, d.URIFor(d.Policies[0].Name), core.EngineSQL); err != nil {
		t.Errorf("MatchURI: %v", err)
	}
}
