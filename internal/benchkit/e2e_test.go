package benchkit

import (
	"encoding/json"
	"net/http/httptest"
	"os"
	"path/filepath"
	"strings"
	"sync"
	"testing"
	"time"

	"p3pdb/internal/core"
	"p3pdb/internal/p3p"
	"p3pdb/internal/reffile"
	"p3pdb/internal/registry"
	"p3pdb/internal/server"
)

// TestE2ESmoke runs a miniature closed loop end to end: real HTTP
// against self-hosted tenants, every row measured, the apathetic slice
// fully fast-pathed (its preference has no block rules), and the
// artifact round-tripping.
func TestE2ESmoke(t *testing.T) {
	if testing.Short() {
		t.Skip("e2e experiment in -short mode")
	}
	r, err := RunE2E(E2EConfig{Tenants: 2, Workers: 4, RequestsPerWorker: 40})
	if err != nil {
		t.Fatal(err)
	}
	if r.Requests != 4*40 {
		t.Errorf("requests = %d, want %d", r.Requests, 4*40)
	}
	if r.RequestsPerSec <= 0 || r.ElapsedMS <= 0 {
		t.Errorf("unmeasured run: %+v", r)
	}
	if len(r.Rows) != 3 {
		t.Fatalf("rows = %d, want 3", len(r.Rows))
	}
	sum := 0
	for _, row := range r.Rows {
		sum += row.Requests
		if row.Requests == 0 {
			t.Errorf("%s: no traffic; the mix must cover every level", row.Level)
			continue
		}
		if row.P50Micros <= 0 || row.P99Micros < row.P50Micros {
			t.Errorf("%s: bad percentiles: %+v", row.Level, row)
		}
		if row.HitRate < 0 || row.HitRate > 1 {
			t.Errorf("%s: hit rate %f", row.Level, row.HitRate)
		}
		if row.Level == "apathetic" && row.HitRate != 1 {
			// Very Low has zero block rules: every check must fast-path.
			t.Errorf("apathetic hit rate = %f, want 1", row.HitRate)
		}
	}
	if sum != r.Requests {
		t.Errorf("row requests sum %d != total %d", sum, r.Requests)
	}
	if r.FastPathHitRate <= 0 {
		t.Error("no fast-path hits in the mixed population")
	}

	out := r.Render()
	for _, want := range []string{"req/sec", "hit rate", "apathetic", "paranoid", "p99 micros"} {
		if !strings.Contains(out, want) {
			t.Errorf("render missing %q:\n%s", want, out)
		}
	}

	path := filepath.Join(t.TempDir(), "BENCH_e2e.json")
	if err := r.WriteJSON(path); err != nil {
		t.Fatal(err)
	}
	data, err := os.ReadFile(path)
	if err != nil {
		t.Fatal(err)
	}
	var back E2EResults
	if err := json.Unmarshal(data, &back); err != nil {
		t.Fatal(err)
	}
	if back.Requests != r.Requests || len(back.Rows) != len(r.Rows) {
		t.Errorf("artifact round-trip mismatch: %+v vs %+v", back, r)
	}
}

// TestE2EHelpers pins the run's plumbing: default resolution, the
// attitude-mix sampler's boundaries, percentile edge cases, and the
// artifact writer's failure mode.
func TestE2EHelpers(t *testing.T) {
	def := E2EConfig{}.withDefaults()
	if def.Seed != 42 || def.Tenants != 4 || def.Workers != 8 ||
		def.RequestsPerWorker != 300 || def.CookieFraction != 0.25 || def.ZipfS != 1.1 {
		t.Errorf("defaults: %+v", def)
	}
	if got := (E2EConfig{ZipfS: 0.5}).withDefaults().ZipfS; got != 1.1 {
		t.Errorf("zipf <= 1 must fall back to the default, got %f", got)
	}
	if E2ETenantName(3) != "e2e-3.example" {
		t.Errorf("tenant name: %s", E2ETenantName(3))
	}
	if pickLevel(0) != 0 || pickLevel(0.7) != 1 || pickLevel(0.99) != 2 || pickLevel(1.5) != 2 {
		t.Error("attitude sampler boundaries moved")
	}
	if percentile(nil, 0.5) != 0 {
		t.Error("empty percentile must be 0")
	}
	if got := percentile([]float64{3, 1, 2}, 0.5); got != 2 {
		t.Errorf("p50 of {1,2,3} = %f", got)
	}
	r := &E2EResults{}
	if err := r.WriteJSON(filepath.Join(t.TempDir(), "missing", "x.json")); err == nil {
		t.Error("unwritable artifact path: want error")
	}
}

// TestE2ERemoteSeeding drives the external-server path p3pload -setup
// uses: provision tenants over the admin API, then point the bench at
// the already-running server instead of self-hosting.
func TestE2ERemoteSeeding(t *testing.T) {
	if testing.Short() {
		t.Skip("e2e experiment in -short mode")
	}
	reg, err := registry.New(registry.Options{})
	if err != nil {
		t.Fatal(err)
	}
	ts := httptest.NewServer(server.NewMulti(reg))
	t.Cleanup(ts.Close)
	if err := E2ESeedRemote(ts.URL, 42, 2); err != nil {
		t.Fatal(err)
	}
	// Provisioning an already-created tenant is not an error (the admin
	// PUT tolerates the conflict), so a crashed setup can be re-driven.
	if err := server.NewClient(ts.URL).CreateSite(E2ETenantName(0)); err != nil {
		t.Fatalf("re-creating tenant: %v", err)
	}
	r, err := RunE2E(E2EConfig{Addr: ts.URL, Tenants: 2, Workers: 2, RequestsPerWorker: 20})
	if err != nil {
		t.Fatal(err)
	}
	if r.Requests != 2*20 || r.FastPathHitRate <= 0 {
		t.Errorf("remote run unmeasured: %+v", r)
	}
}

// churnPolicy builds the two variants the churn test flips between:
// first-party-only (the mild preference's fast path proves it safe) and
// public-sharing (the compact summary discloses PUB, the fast path
// declines, and the full engine blocks).
func churnPolicy(public bool) *p3p.Policy {
	st := &p3p.Statement{
		Purposes:   []p3p.PurposeValue{{Value: "current"}},
		Recipients: []p3p.RecipientValue{{Value: "ours"}},
		Retention:  "stated-purpose",
		DataGroups: []*p3p.DataGroup{{Data: []*p3p.Data{
			{Ref: "#dynamic.clickstream"},
		}}},
	}
	if public {
		st.Recipients = append(st.Recipients, p3p.RecipientValue{Value: "public"})
	}
	return &p3p.Policy{
		Name:       "acme",
		Discuri:    "http://www.acme.example.com/privacy.html",
		Entity:     &p3p.Entity{Name: "Acme", City: "Armonk", Country: "USA", Email: "privacy@acme.example.com"},
		Access:     "none",
		Statements: []*p3p.Statement{st},
	}
}

var churnRefFile = &reffile.RefFile{PolicyRefs: []*reffile.PolicyRef{{
	About:    "/P3P/Policies.xml#acme",
	Includes: []string{"/acme/*"},
}}}

// TestE2EChurnUnderRace serves checks while a writer republishes the
// site's policy, flipping it between a variant the fast path proves
// safe and one it must decline. Run under -race this is the
// write-while-serving drill; the assertions prove the protocol loop's
// outputs — CP header, fast-path verdict, generation — move together
// with the snapshot, and that a generation never shows two headers.
func TestE2EChurnUnderRace(t *testing.T) {
	site, err := core.NewSite()
	if err != nil {
		t.Fatal(err)
	}
	if err := site.ReplacePolicies([]*p3p.Policy{churnPolicy(false)}, churnRefFile); err != nil {
		t.Fatal(err)
	}
	ts := httptest.NewServer(server.New(site))
	t.Cleanup(ts.Close)

	stop := make(chan struct{})
	writerErr := make(chan error, 1)
	go func() {
		defer close(writerErr)
		for i := 1; ; i++ {
			select {
			case <-stop:
				return
			default:
			}
			if err := site.ReplacePolicies([]*p3p.Policy{churnPolicy(i%2 == 1)}, churnRefFile); err != nil {
				writerErr <- err
				return
			}
			time.Sleep(2 * time.Millisecond)
		}
	}()

	type obs struct {
		gen     uint64
		cp      string
		fast    bool
		allowed bool
	}
	const readers, checks = 4, 120
	seen := make([][]obs, readers)
	var wg sync.WaitGroup
	for w := 0; w < readers; w++ {
		wg.Add(1)
		go func(w int) {
			defer wg.Done()
			c := server.NewClient(ts.URL)
			for i := 0; i < checks; i++ {
				res, cp, err := c.Check(server.CheckRequest{URL: "/acme/index.html", Level: "mild"})
				if err != nil {
					t.Errorf("reader %d: %v", w, err)
					return
				}
				seen[w] = append(seen[w], obs{res.Generation, cp, res.URL.FastPath, res.Allowed})
			}
		}(w)
	}
	wg.Wait()
	close(stop)
	if err := <-writerErr; err != nil {
		t.Fatal(err)
	}

	gens := map[uint64]string{}
	outcomes := map[[2]bool]int{}
	for _, col := range seen {
		for _, o := range col {
			if prev, ok := gens[o.gen]; ok && prev != o.cp {
				t.Fatalf("generation %d served two CP headers: %q and %q", o.gen, prev, o.cp)
			}
			gens[o.gen] = o.cp
			outcomes[[2]bool{o.fast, o.allowed}]++
			if o.fast && !o.allowed {
				t.Fatalf("fast path returned a non-allow: %+v", o)
			}
		}
	}
	if len(gens) < 2 {
		t.Fatalf("checks observed %d generation(s); the writer never flipped mid-run", len(gens))
	}
	cps := map[string]bool{}
	for _, cp := range gens {
		cps[cp] = true
	}
	if len(cps) < 2 {
		t.Errorf("CP header never changed across %d generations", len(gens))
	}
	if outcomes[[2]bool{true, true}] == 0 {
		t.Error("no fast-path allows: the first-party variant never got the fast path")
	}
	if outcomes[[2]bool{false, false}] == 0 {
		t.Error("no full-engine blocks: the public variant never fell back and blocked")
	}
}
