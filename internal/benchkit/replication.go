package benchkit

import (
	"context"
	"encoding/json"
	"fmt"
	"math/rand"
	"net/http"
	"net/http/httptest"
	"os"
	"runtime"
	"strings"
	"sync"
	"time"

	"p3pdb/internal/core"
	"p3pdb/internal/durable"
	"p3pdb/internal/obs"
	"p3pdb/internal/registry"
	"p3pdb/internal/replica"
	"p3pdb/internal/router"
	"p3pdb/internal/server"
	"p3pdb/internal/workload"
)

// The replication experiment measures what DESIGN.md §12 buys: read
// throughput that scales with node count. Each row stands up a leader
// plus n-1 caught-up followers (all in-process, real HTTP via
// httptest), fronts them with the router, and drives a closed-loop
// /check workload across the fleet. A second phase measures replication
// lag: the wall time from a policy write acknowledged by the leader to
// the follower having applied it, tailing with long-polls.

// ReplicationRow is one node count's measurement.
type ReplicationRow struct {
	Nodes          int     `json:"nodes"`
	Requests       int     `json:"requests"`
	MatchesPerSec  float64 `json:"matchesPerSec"`
	SpeedupVs1     float64 `json:"speedupVs1"`
	ElapsedMS      float64 `json:"elapsedMs"`
	RouterFanout   int     `json:"routerFanout"`
	ReplicaRecords uint64  `json:"replicaRecords"`
}

// ReplicationResults is the scaling table plus the lag distribution,
// shaped for rendering and the BENCH_replication.json artifact.
type ReplicationResults struct {
	Seed              int64            `json:"seed"`
	Tenants           int              `json:"tenants"`
	Workers           int              `json:"workers"`
	RequestsPerWorker int              `json:"requestsPerWorker"`
	Engine            string           `json:"engine"`
	NumCPU            int              `json:"numCpu"`
	GOMAXPROCS        int              `json:"gomaxprocs"`
	Rows              []ReplicationRow `json:"rows"`
	LagSamples        int              `json:"lagSamples"`
	LagP50Ms          float64          `json:"lagP50Ms"`
	LagP99Ms          float64          `json:"lagP99Ms"`
	// Follower batch-apply shape over the whole experiment: how many
	// batch applies landed, how many records they carried, and the mean
	// records per batch — the coalescing the batched drain buys.
	ApplyBatches      int64   `json:"applyBatches"`
	ApplyBatchRecords int64   `json:"applyBatchRecords"`
	MeanApplyBatch    float64 `json:"meanApplyBatch"`
}

// ReplicationConfig parameterizes the experiment.
type ReplicationConfig struct {
	// Seed generates tenant workloads and traffic (default 42).
	Seed int64
	// Tenants is the number of hosted sites (default 4).
	Tenants int
	// Workers is the number of concurrent closed-loop clients
	// (default 4).
	Workers int
	// RequestsPerWorker is each client's request count (default 150).
	RequestsPerWorker int
	// Nodes are the fleet sizes measured (default 1, 2, 4).
	Nodes []int
	// Engine is the fallback matching engine; zero value is native.
	Engine core.Engine
	// LagSamples is how many timed write→applied round trips the lag
	// phase records (default 40).
	LagSamples int
}

func (c ReplicationConfig) withDefaults() ReplicationConfig {
	if c.Seed == 0 {
		c.Seed = 42
	}
	if c.Tenants == 0 {
		c.Tenants = 4
	}
	if c.Workers == 0 {
		c.Workers = 4
	}
	if c.RequestsPerWorker == 0 {
		c.RequestsPerWorker = 150
	}
	if len(c.Nodes) == 0 {
		c.Nodes = []int{1, 2, 4}
	}
	if c.LagSamples == 0 {
		c.LagSamples = 40
	}
	return c
}

// replCluster is one leader + followers + router, all in-process.
type replCluster struct {
	reg       *registry.Registry
	leader    *httptest.Server
	followers []*replica.Node
	servers   []*httptest.Server
	rt        *router.Router
	front     *httptest.Server
}

func (cl *replCluster) close() {
	if cl.front != nil {
		cl.front.Close()
	}
	if cl.rt != nil {
		cl.rt.Stop()
	}
	for _, n := range cl.followers {
		n.Stop()
	}
	for _, ts := range cl.servers {
		ts.Close()
	}
	if cl.leader != nil {
		cl.leader.Close()
	}
	if cl.reg != nil {
		_ = cl.reg.Close()
	}
}

// startCluster builds an n-node fleet: a durable leader seeded over the
// admin API (so every install rides the journal the followers tail),
// n-1 followers synced to the head, and the router probed once.
func startCluster(cfg ReplicationConfig, nodes int, dir string) (*replCluster, error) {
	cl := &replCluster{}
	store, err := durable.Open(dir, durable.Options{Fsync: durable.FsyncNever, CheckpointEvery: -1})
	if err != nil {
		return nil, err
	}
	cl.reg, err = registry.New(registry.Options{Durable: store})
	if err != nil {
		return nil, err
	}
	cl.leader = httptest.NewServer(server.NewMulti(cl.reg))
	if err := E2ESeedRemote(cl.leader.URL, cfg.Seed, cfg.Tenants); err != nil {
		cl.close()
		return nil, err
	}
	names := make([]string, cfg.Tenants)
	for i := range names {
		names[i] = E2ETenantName(i)
	}

	replicaURLs := make([]string, 0, nodes-1)
	for i := 1; i < nodes; i++ {
		node, err := replica.New(replica.Options{
			Leader:  cl.leader.URL,
			Tenants: names,
			Site:    core.Options{},
		})
		if err != nil {
			cl.close()
			return nil, err
		}
		ctx, cancel := context.WithTimeout(context.Background(), 30*time.Second)
		err = node.Sync(ctx)
		cancel()
		if err != nil {
			cl.close()
			return nil, fmt.Errorf("benchkit: follower %d catch-up: %w", i, err)
		}
		cl.followers = append(cl.followers, node)
		ts := httptest.NewServer(node)
		cl.servers = append(cl.servers, ts)
		replicaURLs = append(replicaURLs, ts.URL)
	}

	cl.rt, err = router.New(router.Options{Leader: cl.leader.URL, Replicas: replicaURLs})
	if err != nil {
		cl.close()
		return nil, err
	}
	cl.rt.Probe()
	cl.front = httptest.NewServer(cl.rt)
	return cl, nil
}

// RunReplication drives the scaling table and the lag phase.
func RunReplication(cfg ReplicationConfig) (*ReplicationResults, error) {
	cfg = cfg.withDefaults()
	res := &ReplicationResults{
		Seed:              cfg.Seed,
		Tenants:           cfg.Tenants,
		Workers:           cfg.Workers,
		RequestsPerWorker: cfg.RequestsPerWorker,
		Engine:            cfg.Engine.ShortName(),
		NumCPU:            runtime.NumCPU(),
		GOMAXPROCS:        runtime.GOMAXPROCS(0),
		LagSamples:        cfg.LagSamples,
	}

	batchesStart := obs.GetCounter("replica.apply_batches").Value()
	recordsStart := obs.GetCounter("replica.apply_batch_records").Value()

	var base float64
	for _, nodes := range cfg.Nodes {
		dir, err := os.MkdirTemp("", "p3p-repl-")
		if err != nil {
			return nil, err
		}
		row, err := runReplicationRow(cfg, nodes, dir)
		os.RemoveAll(dir)
		if err != nil {
			return nil, err
		}
		if base == 0 {
			base = row.MatchesPerSec
		}
		if base > 0 {
			row.SpeedupVs1 = row.MatchesPerSec / base
		}
		res.Rows = append(res.Rows, *row)
	}

	lags, err := runReplicationLag(cfg)
	if err != nil {
		return nil, err
	}
	res.LagP50Ms = percentile(lags, 0.50)
	res.LagP99Ms = percentile(lags, 0.99)
	res.ApplyBatches = obs.GetCounter("replica.apply_batches").Value() - batchesStart
	res.ApplyBatchRecords = obs.GetCounter("replica.apply_batch_records").Value() - recordsStart
	if res.ApplyBatches > 0 {
		res.MeanApplyBatch = float64(res.ApplyBatchRecords) / float64(res.ApplyBatches)
	}
	return res, nil
}

func runReplicationRow(cfg ReplicationConfig, nodes int, dir string) (*ReplicationRow, error) {
	cl, err := startCluster(cfg, nodes, dir)
	if err != nil {
		return nil, err
	}
	defer cl.close()

	engine := cfg.Engine.ShortName()
	clients := make([]*server.Client, cfg.Tenants)
	datasets := make([]*dataset, cfg.Tenants)
	for i := 0; i < cfg.Tenants; i++ {
		clients[i] = server.NewClient(cl.front.URL + "/sites/" + E2ETenantName(i))
		d := workloadFor(cfg.Seed + int64(i))
		datasets[i] = d
		// Warm every backend's conversion caches for this tenant before
		// the timed window.
		for _, lv := range []string{"apathetic", "mild", "paranoid"} {
			if _, _, err := clients[i].Check(server.CheckRequest{URL: d.uris[0], Level: lv, Engine: engine}); err != nil {
				return nil, fmt.Errorf("benchkit: replication warmup %s: %w", E2ETenantName(i), err)
			}
		}
	}

	errs := make([]error, cfg.Workers)
	var total int64
	var wg sync.WaitGroup
	start := time.Now()
	for w := 0; w < cfg.Workers; w++ {
		wg.Add(1)
		go func(w int) {
			defer wg.Done()
			rng := rand.New(rand.NewSource(cfg.Seed + 2000 + int64(w)))
			for i := 0; i < cfg.RequestsPerWorker; i++ {
				tenant := rng.Intn(cfg.Tenants)
				d := datasets[tenant]
				uri := d.uris[rng.Intn(len(d.uris))]
				level := []string{"apathetic", "mild", "paranoid"}[rng.Intn(3)]
				if _, _, err := clients[tenant].Check(server.CheckRequest{URL: uri, Level: level, Engine: engine}); err != nil {
					errs[w] = fmt.Errorf("benchkit: replication check %s: %w", E2ETenantName(tenant), err)
					return
				}
			}
		}(w)
	}
	wg.Wait()
	elapsed := time.Since(start)
	for _, err := range errs {
		if err != nil {
			return nil, err
		}
	}
	total = int64(cfg.Workers * cfg.RequestsPerWorker)

	var applied uint64
	for _, n := range cl.followers {
		for _, ts := range n.Status() {
			applied += ts.AppliedLSN
		}
	}
	return &ReplicationRow{
		Nodes:          nodes,
		Requests:       int(total),
		MatchesPerSec:  float64(total) / elapsed.Seconds(),
		ElapsedMS:      float64(elapsed.Microseconds()) / 1000,
		RouterFanout:   nodes,
		ReplicaRecords: applied,
	}, nil
}

// runReplicationLag times write→applied round trips on a 2-node fleet
// with the follower tailing via long-poll, the deployment's steady
// state.
func runReplicationLag(cfg ReplicationConfig) ([]float64, error) {
	dir, err := os.MkdirTemp("", "p3p-repl-lag-")
	if err != nil {
		return nil, err
	}
	defer os.RemoveAll(dir)
	cl, err := startCluster(cfg, 2, dir)
	if err != nil {
		return nil, err
	}
	defer cl.close()
	node := cl.followers[0]
	if err := node.Start(); err != nil {
		return nil, err
	}

	name := E2ETenantName(0)
	leaderClient := server.NewClient(cl.leader.URL + "/sites/" + name)
	d := workloadFor(cfg.Seed)
	journal := cl.reg.Journal(name)
	if journal == nil {
		return nil, fmt.Errorf("benchkit: leader tenant %s has no journal", name)
	}

	// Policy installs are create-only, so the timed writes alternate
	// remove/install of the same policy — both ride the journal and each
	// bumps the LSN the follower must chase.
	httpc := &http.Client{Timeout: 10 * time.Second}
	lags := make([]float64, 0, cfg.LagSamples)
	for i := 0; i < cfg.LagSamples; i++ {
		if i%2 == 0 {
			req, err := http.NewRequest(http.MethodDelete,
				cl.leader.URL+"/sites/"+name+"/policies/"+d.names[0], nil)
			if err != nil {
				return nil, err
			}
			resp, err := httpc.Do(req)
			if err != nil {
				return nil, fmt.Errorf("benchkit: lag-phase remove: %w", err)
			}
			resp.Body.Close()
			if resp.StatusCode >= 300 {
				return nil, fmt.Errorf("benchkit: lag-phase remove: status %s", resp.Status)
			}
		} else if _, err := leaderClient.InstallPolicies(d.policyXML[0]); err != nil {
			return nil, fmt.Errorf("benchkit: lag-phase install: %w", err)
		}
		target := journal.Status().LSN
		t0 := time.Now()
		for {
			caught := false
			for _, ts := range node.Status() {
				if ts.Tenant == name && ts.AppliedLSN >= target {
					caught = true
					break
				}
			}
			if caught {
				break
			}
			if time.Since(t0) > 10*time.Second {
				return nil, fmt.Errorf("benchkit: follower never applied LSN %d", target)
			}
			time.Sleep(200 * time.Microsecond)
		}
		lags = append(lags, float64(time.Since(t0).Nanoseconds())/1e6)
	}
	return lags, nil
}

// dataset is the slim slice of a workload the replication loop needs.
type dataset struct {
	uris      []string
	names     []string
	policyXML []string
}

func workloadFor(seed int64) *dataset {
	d := workload.Generate(seed)
	ds := &dataset{}
	for _, pol := range d.Policies {
		ds.uris = append(ds.uris, d.URIFor(pol.Name))
		ds.names = append(ds.names, pol.Name)
		ds.policyXML = append(ds.policyXML, d.PolicyXML[pol.Name])
	}
	return ds
}

// Render formats the replication table.
func (r *ReplicationResults) Render() string {
	var b strings.Builder
	fmt.Fprintf(&b, "Replication scale-out (%d tenants, %d workers x %d requests, %s fallback, %d CPUs)\n",
		r.Tenants, r.Workers, r.RequestsPerWorker, r.Engine, r.NumCPU)
	fmt.Fprintf(&b, "%7s %10s %14s %10s %12s %14s\n",
		"nodes", "requests", "matches/sec", "speedup", "elapsed ms", "records")
	for _, row := range r.Rows {
		fmt.Fprintf(&b, "%7d %10d %14.0f %9.2fx %12.1f %14d\n",
			row.Nodes, row.Requests, row.MatchesPerSec, row.SpeedupVs1, row.ElapsedMS, row.ReplicaRecords)
	}
	fmt.Fprintf(&b, "replication lag over %d writes: p50 %.2f ms, p99 %.2f ms\n",
		r.LagSamples, r.LagP50Ms, r.LagP99Ms)
	fmt.Fprintf(&b, "follower batch applies: %d batches, %d records (mean %.1f records/batch)\n",
		r.ApplyBatches, r.ApplyBatchRecords, r.MeanApplyBatch)
	return b.String()
}

// WriteJSON writes the machine-readable artifact (BENCH_replication.json).
func (r *ReplicationResults) WriteJSON(path string) error {
	data, err := json.MarshalIndent(r, "", "  ")
	if err != nil {
		return err
	}
	return os.WriteFile(path, append(data, '\n'), 0o644)
}
