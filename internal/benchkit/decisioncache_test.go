package benchkit

import (
	"encoding/json"
	"os"
	"path/filepath"
	"strings"
	"testing"
)

// TestDecisionCacheSmoke runs a miniature decision-cache experiment end
// to end: rows come back for every universe size, the Zipf draw over a
// small skewed universe produces a high hit rate, and the artifact
// round-trips. Speedups are asserted only for sign (correctness, not
// performance — CI machines are noisy); the committed
// BENCH_decisioncache.json records the measured ratios.
func TestDecisionCacheSmoke(t *testing.T) {
	if testing.Short() {
		t.Skip("decision-cache experiment in -short mode")
	}
	r, err := RunDecisionCache(DecisionCacheConfig{
		Matches:       400,
		DistinctPrefs: []int{5, 20},
	})
	if err != nil {
		t.Fatal(err)
	}
	if len(r.Rows) != 2 {
		t.Fatalf("rows = %d, want 2", len(r.Rows))
	}
	for _, row := range r.Rows {
		if row.Matches != 400 {
			t.Errorf("%d distinct: matches = %d, want 400", row.DistinctPrefs, row.Matches)
		}
		if row.MatchesPerSec <= 0 || row.UncachedMatchesPerSec <= 0 || row.SpeedupVsUncached <= 0 {
			t.Errorf("%d distinct: unmeasured throughput: %+v", row.DistinctPrefs, row)
		}
		// 400 Zipf-skewed draws over <= 20 distinct preferences revisit
		// constantly; only the compulsory cold misses hold the rate down.
		if row.HitRate < 0.5 || row.HitRate > 1 {
			t.Errorf("%d distinct: hit rate = %v, want in [0.5, 1]", row.DistinctPrefs, row.HitRate)
		}
	}
	// The smaller universe cannot hit less often than the larger one by
	// more than noise allows; with identical sequences it is >= exactly.
	if r.Rows[0].HitRate < r.Rows[1].HitRate {
		t.Errorf("hit rate grew with universe size: %v < %v", r.Rows[0].HitRate, r.Rows[1].HitRate)
	}
	if hr, ok := r.HitRateAt(20); !ok || hr != r.Rows[1].HitRate {
		t.Errorf("HitRateAt(20) = %v, %v", hr, ok)
	}
	if _, ok := r.HitRateAt(999); ok {
		t.Error("HitRateAt(999) found a row")
	}

	out := r.Render()
	for _, want := range []string{"distinct", "hit rate", "speedup"} {
		if !strings.Contains(out, want) {
			t.Errorf("render missing %q:\n%s", want, out)
		}
	}

	path := filepath.Join(t.TempDir(), "BENCH_decisioncache.json")
	if err := r.WriteJSON(path); err != nil {
		t.Fatal(err)
	}
	data, err := os.ReadFile(path)
	if err != nil {
		t.Fatal(err)
	}
	var back DecisionCacheResults
	if err := json.Unmarshal(data, &back); err != nil {
		t.Fatal(err)
	}
	if back.NumCPU != r.NumCPU || len(back.Rows) != len(r.Rows) || back.ZipfS != r.ZipfS {
		t.Errorf("artifact round-trip mismatch: %+v vs %+v", back, r)
	}

	if _, err := RunDecisionCache(DecisionCacheConfig{DistinctPrefs: []int{1}}); err == nil {
		t.Error("universe of 1 accepted")
	}
}
