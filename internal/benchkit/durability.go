package benchkit

import (
	"encoding/json"
	"fmt"
	"os"
	"runtime"
	"sort"
	"strings"
	"sync"
	"time"

	"p3pdb/internal/core"
	"p3pdb/internal/durable"
	"p3pdb/internal/workload"
)

// The durability experiment prices the write-ahead log: what one admin
// mutation costs under each fsync policy versus the in-memory path, how
// long crash recovery takes as the log grows, and the log's write
// amplification (physical WAL bytes per logical document byte). This is
// the cost side of PR 5's durability claim; the acceptance bars are
// fsync=interval mutation p99 AND p50 within 2x of in-memory.
//
// Every phase runs Writers concurrent admin writers in a closed loop,
// not one serial writer. That is the honest shape for group commit: a
// lone fsync=interval writer necessarily pays one real fsync per
// acknowledged mutation (that is what "a 2xx means the record was
// synced" costs), so its ratio to in-memory is fixed at roughly
// fsync/apply regardless of batching. Coalescing only pays when
// concurrent writers share the fsync — exactly the multi-admin /
// multi-tenant-proxy load the interval policy exists for — and the
// in-memory baseline uses the same writer pool, so the ratio isolates
// the durability cost rather than the queueing.

// DurabilityPhase is one measured mutation-latency configuration.
type DurabilityPhase struct {
	Name      string  `json:"name"` // in-memory, fsync=never, fsync=interval, fsync=always
	Mutations int     `json:"mutations"`
	P50Micros float64 `json:"p50Micros"`
	P99Micros float64 `json:"p99Micros"`
	// LogBytes is the WAL growth over the phase (0 for in-memory).
	LogBytes int64 `json:"logBytes"`
	// WriteAmp is LogBytes over the logical bytes mutated (0 for
	// in-memory).
	WriteAmp float64 `json:"writeAmp,omitempty"`
}

// RecoveryPoint is one measured crash-recovery replay.
type RecoveryPoint struct {
	// Mutations is the number of logged records replayed.
	Mutations int `json:"mutations"`
	// LogBytes is the log size the replay scanned.
	LogBytes int64 `json:"logBytes"`
	// RecoverMillis is open + scan + replay into a fresh site. The
	// replay is the batched path: every tail record lands through one
	// ApplyBatch (one snapshot rebuild), so this prices scan + parse +
	// bulk re-shred rather than per-record rebuilds.
	RecoverMillis float64 `json:"recoverMillis"`
	// MillisPerRecord is RecoverMillis over the records replayed — the
	// per-record cost of the batched replay.
	MillisPerRecord float64 `json:"millisPerRecord"`
}

// DurabilityResults is the full experiment, shaped for rendering and the
// BENCH_durability.json artifact.
type DurabilityResults struct {
	Seed       int64 `json:"seed"`
	GOMAXPROCS int   `json:"gomaxprocs"`
	// Writers is the concurrent admin writers per phase (the group-commit
	// coalescing population).
	Writers int               `json:"writers"`
	Phases  []DurabilityPhase `json:"phases"`
	Recovery   []RecoveryPoint   `json:"recovery"`
	// P99RatioInterval is fsync=interval mutation p99 over the in-memory
	// p99 — the acceptance-criterion number.
	P99RatioInterval float64 `json:"p99RatioInterval"`
	// P50RatioInterval is the same ratio at the median: with true group
	// commit the typical durable mutation should cost within 2x of the
	// in-memory path (the MAX_DURABLE_P50_RATIO gate).
	P50RatioInterval float64 `json:"p50RatioInterval"`
}

// DurabilityConfig parameterizes a durability run.
type DurabilityConfig struct {
	// Seed generates the workload (default 42).
	Seed int64
	// Mutations is the install/remove pairs measured per writer per
	// phase (default 50, i.e. 100 logged records per writer).
	Mutations int
	// Writers is the concurrent admin writers per phase (default 4).
	Writers int
	// RecoveryCounts are the log lengths (in records) to measure
	// recovery at (default 1000 and 10000).
	RecoveryCounts []int
	// Dir is the scratch directory for logs; empty uses a temp dir.
	Dir string
}

func (c DurabilityConfig) withDefaults() DurabilityConfig {
	if c.Seed == 0 {
		c.Seed = 42
	}
	if c.Mutations == 0 {
		c.Mutations = 50
	}
	if c.Writers == 0 {
		c.Writers = 4
	}
	if len(c.RecoveryCounts) == 0 {
		c.RecoveryCounts = []int{1000, 10000}
	}
	return c
}

// baseSite builds a site preloaded with a few corpus policies — enough
// that every mutation pays a realistic snapshot rebuild, small enough
// that 10k replayed mutations stay tractable.
func baseSite(d *workload.Dataset, n int) (*core.Site, error) {
	site, err := core.NewSite()
	if err != nil {
		return nil, err
	}
	for _, pol := range d.Policies[:n] {
		if err := site.InstallPolicy(pol); err != nil {
			return nil, err
		}
	}
	return site, nil
}

// RunDurability measures mutation latency per fsync policy, recovery
// time versus log length, and write amplification.
func RunDurability(cfg DurabilityConfig) (*DurabilityResults, error) {
	cfg = cfg.withDefaults()
	d := workload.Generate(cfg.Seed)
	dir := cfg.Dir
	if dir == "" {
		var err error
		dir, err = os.MkdirTemp("", "p3pdurbench")
		if err != nil {
			return nil, err
		}
		defer os.RemoveAll(dir)
	}

	res := &DurabilityResults{Seed: cfg.Seed, GOMAXPROCS: runtime.GOMAXPROCS(0), Writers: cfg.Writers}

	// The mutation under test: install one extra corpus policy, then
	// remove it — the canonical admin churn pair. One pair's logical
	// payload is the installed document (the remove carries no document),
	// so write amplification prices the framing, JSON escaping, and the
	// remove record against the XML the admin actually shipped. Each
	// writer churns its own renamed copy of the document so the
	// concurrent install/remove pairs never collide on a policy name.
	churnPol := d.Policies[len(d.Policies)-1]
	churnDoc := d.PolicyXML[churnPol.Name]
	nameAttr := fmt.Sprintf("name=%q", churnPol.Name)
	if !strings.Contains(churnDoc, nameAttr) {
		return nil, fmt.Errorf("benchkit: churn document does not carry %s", nameAttr)
	}
	workerName := func(w int) string { return fmt.Sprintf("%s-w%d", churnPol.Name, w) }
	var logicalBytes int64
	workerDocs := make([]string, cfg.Writers)
	for w := range workerDocs {
		workerDocs[w] = strings.Replace(churnDoc, nameAttr, fmt.Sprintf("name=%q", workerName(w)), 1)
		logicalBytes += int64(len(workerDocs[w]))
	}

	measure := func(name string, journal *durable.Tenant, site *core.Site) (DurabilityPhase, error) {
		var startBytes int64
		if journal != nil {
			startBytes = journal.Status().LogBytes
		}
		workerLats := make([][]time.Duration, cfg.Writers)
		errs := make([]error, cfg.Writers)
		var wg sync.WaitGroup
		for w := 0; w < cfg.Writers; w++ {
			wg.Add(1)
			go func(w int) {
				defer wg.Done()
				doc, pol := workerDocs[w], workerName(w)
				lats := make([]time.Duration, 0, 2*cfg.Mutations)
				for i := 0; i < cfg.Mutations; i++ {
					start := time.Now()
					var err error
					if journal != nil {
						_, err = journal.InstallPolicyXML(site, doc)
					} else {
						_, err = site.InstallPolicyXML(doc)
					}
					if err != nil {
						errs[w] = fmt.Errorf("benchkit: %s install: %w", name, err)
						return
					}
					lats = append(lats, time.Since(start))
					start = time.Now()
					if journal != nil {
						err = journal.RemovePolicy(site, pol)
					} else {
						err = site.RemovePolicy(pol)
					}
					if err != nil {
						errs[w] = fmt.Errorf("benchkit: %s remove: %w", name, err)
						return
					}
					lats = append(lats, time.Since(start))
				}
				workerLats[w] = lats
			}(w)
		}
		wg.Wait()
		var lats []time.Duration
		for w := range workerLats {
			if errs[w] != nil {
				return DurabilityPhase{}, errs[w]
			}
			lats = append(lats, workerLats[w]...)
		}
		sort.Slice(lats, func(i, j int) bool { return lats[i] < lats[j] })
		ph := DurabilityPhase{
			Name:      name,
			Mutations: len(lats),
			P50Micros: quantile(lats, 0.50),
			P99Micros: quantile(lats, 0.99),
		}
		if journal != nil {
			ph.LogBytes = journal.Status().LogBytes - startBytes
			if phaseLogical := logicalBytes * int64(cfg.Mutations); phaseLogical > 0 {
				ph.WriteAmp = float64(ph.LogBytes) / float64(phaseLogical)
			}
		}
		return ph, nil
	}

	// In-memory baseline. Two resident policies: every mutation pays the
	// full snapshot rebuild (the repo's write-path cost model) without
	// the rebuild swamping the WAL deltas under measurement.
	site, err := baseSite(d, 2)
	if err != nil {
		return nil, err
	}
	mem, err := measure("in-memory", nil, site)
	if err != nil {
		return nil, err
	}
	res.Phases = append(res.Phases, mem)

	// One phase per fsync policy; auto-checkpointing is disabled so the
	// log bytes measure pure WAL cost.
	for _, policy := range []durable.FsyncPolicy{durable.FsyncNever, durable.FsyncInterval, durable.FsyncAlways} {
		store, err := durable.Open(fmt.Sprintf("%s/%s", dir, policy), durable.Options{
			Fsync:           policy,
			CheckpointEvery: -1,
		})
		if err != nil {
			return nil, err
		}
		site, err := baseSite(d, 2)
		if err != nil {
			return nil, err
		}
		journal, err := store.OpenTenant("bench")
		if err != nil {
			return nil, err
		}
		if err := journal.ReplayInto(site); err != nil {
			journal.Close()
			return nil, err
		}
		ph, err := measure("fsync="+policy.String(), journal, site)
		cerr := journal.Close()
		if err != nil {
			return nil, err
		}
		if cerr != nil {
			return nil, cerr
		}
		res.Phases = append(res.Phases, ph)
		if policy == durable.FsyncInterval {
			if mem.P99Micros > 0 {
				res.P99RatioInterval = ph.P99Micros / mem.P99Micros
			}
			if mem.P50Micros > 0 {
				res.P50RatioInterval = ph.P50Micros / mem.P50Micros
			}
		}
	}

	// Recovery time versus log length: append N records (fsync=never,
	// so setup is write-bound, not sync-bound), close, then time a cold
	// open + replay into a fresh site. Replay applies every record
	// through the site's snapshot-rebuild write path, so its cost is
	// O(records x rebuild); a minimal policy keeps each rebuild cheap
	// and makes the measured slope the replay machinery itself. This is
	// exactly the cost the checkpoint bound (-checkpoint-every) exists
	// to cap.
	const tinyDoc = `<POLICY name="churn"><STATEMENT><NON-IDENTIFIABLE/></STATEMENT></POLICY>`
	for _, n := range cfg.RecoveryCounts {
		store, err := durable.Open(fmt.Sprintf("%s/recover-%d", dir, n), durable.Options{
			Fsync:           durable.FsyncNever,
			CheckpointEvery: -1,
		})
		if err != nil {
			return nil, err
		}
		site, err := core.NewSite()
		if err != nil {
			return nil, err
		}
		journal, err := store.OpenTenant("bench")
		if err != nil {
			return nil, err
		}
		if err := journal.ReplayInto(site); err != nil {
			journal.Close()
			return nil, err
		}
		for i := 0; i < n/2; i++ {
			if _, err := journal.InstallPolicyXML(site, tinyDoc); err != nil {
				journal.Close()
				return nil, err
			}
			if err := journal.RemovePolicy(site, "churn"); err != nil {
				journal.Close()
				return nil, err
			}
		}
		logBytes := journal.Status().LogBytes
		if err := journal.Close(); err != nil {
			return nil, err
		}

		start := time.Now()
		journal, err = store.OpenTenant("bench")
		if err != nil {
			return nil, err
		}
		fresh, err := core.NewSite()
		if err != nil {
			journal.Close()
			return nil, err
		}
		if err := journal.ReplayInto(fresh); err != nil {
			journal.Close()
			return nil, err
		}
		elapsed := time.Since(start)
		if err := journal.Close(); err != nil {
			return nil, err
		}
		rp := RecoveryPoint{
			Mutations:     (n / 2) * 2,
			LogBytes:      logBytes,
			RecoverMillis: float64(elapsed.Microseconds()) / 1000,
		}
		if rp.Mutations > 0 {
			rp.MillisPerRecord = rp.RecoverMillis / float64(rp.Mutations)
		}
		res.Recovery = append(res.Recovery, rp)
	}

	return res, nil
}

// Render formats the durability table.
func (r *DurabilityResults) Render() string {
	var b strings.Builder
	fmt.Fprintf(&b, "Durability cost (admin mutation latency, %d concurrent writers, GOMAXPROCS=%d)\n", r.Writers, r.GOMAXPROCS)
	fmt.Fprintf(&b, "%16s %10s %12s %12s %12s %9s\n", "phase", "mutations", "p50 us", "p99 us", "log bytes", "amp")
	for _, ph := range r.Phases {
		amp := "-"
		if ph.WriteAmp > 0 {
			amp = fmt.Sprintf("%.2fx", ph.WriteAmp)
		}
		fmt.Fprintf(&b, "%16s %10d %12.1f %12.1f %12d %9s\n",
			ph.Name, ph.Mutations, ph.P50Micros, ph.P99Micros, ph.LogBytes, amp)
	}
	fmt.Fprintf(&b, "fsync=interval p99 / in-memory p99 = %.2fx\n", r.P99RatioInterval)
	fmt.Fprintf(&b, "fsync=interval p50 / in-memory p50 = %.2fx\n\n", r.P50RatioInterval)
	fmt.Fprintf(&b, "Crash recovery (cold open + batched snapshot/log replay into a fresh site)\n")
	fmt.Fprintf(&b, "%10s %12s %14s %14s\n", "mutations", "log bytes", "recover ms", "ms/record")
	for _, rp := range r.Recovery {
		fmt.Fprintf(&b, "%10d %12d %14.1f %14.3f\n", rp.Mutations, rp.LogBytes, rp.RecoverMillis, rp.MillisPerRecord)
	}
	return b.String()
}

// WriteJSON writes the results as the machine-readable artifact
// (BENCH_durability.json) that CI uploads and later PRs track.
func (r *DurabilityResults) WriteJSON(path string) error {
	data, err := json.MarshalIndent(r, "", "  ")
	if err != nil {
		return err
	}
	return os.WriteFile(path, append(data, '\n'), 0o644)
}
