package benchkit

import (
	"fmt"
	"strings"
	"time"

	"p3pdb/internal/appel"
	"p3pdb/internal/appelengine"
	"p3pdb/internal/reldb"
	"p3pdb/internal/shred"
	"p3pdb/internal/sqlgen"
	"p3pdb/internal/workload"
)

// AblationResults captures the design-choice experiments DESIGN.md calls
// out. Every number is a per-match average over one preference level
// matched against the whole corpus.
type AblationResults struct {
	// Level names the preference level the ablations use.
	Level string

	// AugmentationOn/Off: the native engine with and without per-match
	// category augmentation (the §6.3.2 profiling claim).
	AugmentationOn, AugmentationOff time.Duration

	// SchemaOptimized/Generic/GenericView: the same preference run as
	// SQL over the Figure 14 schema, the Figure 8 schema, and the
	// Figure 8 schema through the XML-view wrapper with the engine's
	// materialized-view cache disabled (the raw cost of the layer).
	// SchemaGenericViewCached re-enables the cache, showing how much of
	// the layer's cost a smarter engine recovers — the "untapped
	// optimizations" the paper points at XTABLE.
	SchemaOptimized, SchemaGeneric, SchemaGenericView, SchemaGenericViewCached time.Duration

	// IndexOn/Off: optimized-schema SQL with and without hash indexes.
	IndexOn, IndexOff time.Duration

	// ConvertEachTime/Cached: full translate+parse per match versus
	// reusing prepared statements (the "GUI tools generate SQL
	// directly" deployment the paper sketches).
	ConvertEachTime, ConvertCached time.Duration
}

// ablationRounds is how many passes over the corpus each ablation cell
// averages; single passes are too noisy to order close cells reliably.
const ablationRounds = 5

// RunAblations measures the ablations using the given workload seed and
// preference level ("High" exercises every subsystem without the
// exact-connective complexity cliff).
func RunAblations(seed int64, level string) (*AblationResults, error) {
	d := workload.Generate(seed)
	pref, ok := workload.PreferenceByLevel(level)
	if !ok {
		return nil, fmt.Errorf("benchkit: no preference level %q", level)
	}
	res := &AblationResults{Level: level}

	// --- Native engine augmentation on/off. ---
	rs, err := appel.Parse(pref.XML)
	if err != nil {
		return nil, err
	}
	for _, skip := range []bool{false, true} {
		engine := appelengine.NewWithOptions(appelengine.Options{SkipAugmentation: skip})
		// Warm up.
		if _, err := engine.Match(rs, d.PolicyXML[d.Policies[0].Name]); err != nil {
			return nil, err
		}
		start := time.Now()
		for round := 0; round < ablationRounds; round++ {
			for _, pol := range d.Policies {
				if _, err := engine.Match(rs, d.PolicyXML[pol.Name]); err != nil {
					return nil, err
				}
			}
		}
		avg := time.Since(start) / time.Duration(ablationRounds*len(d.Policies))
		if skip {
			res.AugmentationOff = avg
		} else {
			res.AugmentationOn = avg
		}
	}

	// --- Schema and index ablations share shredded stores. ---
	optDB := reldb.New()
	optStore, err := shred.NewOptimized(optDB)
	if err != nil {
		return nil, err
	}
	optNoIxDB := reldb.NewWithOptions(reldb.Options{DisableIndexes: true})
	optNoIxStore, err := shred.NewOptimized(optNoIxDB)
	if err != nil {
		return nil, err
	}
	genDB := reldb.New()
	genStore, err := shred.NewGeneric(genDB)
	if err != nil {
		return nil, err
	}
	genNoCacheDB := reldb.NewWithOptions(reldb.Options{DisableViewCache: true})
	genNoCacheStore, err := shred.NewGeneric(genNoCacheDB)
	if err != nil {
		return nil, err
	}
	optIDs := map[string]int{}
	genIDs := map[string]int{}
	for _, pol := range d.Policies {
		id, err := optStore.InstallPolicy(pol)
		if err != nil {
			return nil, err
		}
		optIDs[pol.Name] = id
		if _, err := optNoIxStore.InstallPolicy(pol); err != nil {
			return nil, err
		}
		gid, err := genStore.InstallPolicy(pol)
		if err != nil {
			return nil, err
		}
		genIDs[pol.Name] = gid
		if _, err := genNoCacheStore.InstallPolicy(pol); err != nil {
			return nil, err
		}
	}

	timeSQL := func(db *reldb.DB, translate func(polName string) ([]sqlgen.RuleQuery, error)) (time.Duration, error) {
		// Warm up on the first policy.
		qs, err := translate(d.Policies[0].Name)
		if err != nil {
			return 0, err
		}
		if _, err := sqlgen.Match(db, qs); err != nil {
			return 0, err
		}
		start := time.Now()
		for round := 0; round < ablationRounds; round++ {
			for _, pol := range d.Policies {
				qs, err := translate(pol.Name)
				if err != nil {
					return 0, err
				}
				if _, err := sqlgen.Match(db, qs); err != nil {
					return 0, err
				}
			}
		}
		return time.Since(start) / time.Duration(ablationRounds*len(d.Policies)), nil
	}

	res.SchemaOptimized, err = timeSQL(optDB, func(name string) ([]sqlgen.RuleQuery, error) {
		return sqlgen.TranslateRulesetOptimized(rs, sqlgen.FixedPolicySubquery(optIDs[name]))
	})
	if err != nil {
		return nil, err
	}
	res.SchemaGeneric, err = timeSQL(genDB, func(name string) ([]sqlgen.RuleQuery, error) {
		return sqlgen.TranslateRulesetGeneric(rs, sqlgen.FixedPolicySubquery(genIDs[name]), sqlgen.GenericOptions{})
	})
	if err != nil {
		return nil, err
	}
	res.SchemaGenericView, err = timeSQL(genNoCacheDB, func(name string) ([]sqlgen.RuleQuery, error) {
		return sqlgen.TranslateRulesetGeneric(rs, sqlgen.FixedPolicySubquery(genIDs[name]), sqlgen.GenericOptions{ViewReconstruction: true})
	})
	if err != nil {
		return nil, err
	}
	res.SchemaGenericViewCached, err = timeSQL(genDB, func(name string) ([]sqlgen.RuleQuery, error) {
		return sqlgen.TranslateRulesetGeneric(rs, sqlgen.FixedPolicySubquery(genIDs[name]), sqlgen.GenericOptions{ViewReconstruction: true})
	})
	if err != nil {
		return nil, err
	}

	res.IndexOn = res.SchemaOptimized
	res.IndexOff, err = timeSQL(optNoIxDB, func(name string) ([]sqlgen.RuleQuery, error) {
		return sqlgen.TranslateRulesetOptimized(rs, sqlgen.FixedPolicySubquery(optIDs[name]))
	})
	if err != nil {
		return nil, err
	}

	// --- Conversion cache: full pipeline vs prepared statements. ---
	res.ConvertEachTime = res.SchemaOptimized
	type preparedRule struct {
		stmt reldb.Statement
	}
	prepared := map[string][]preparedRule{}
	for _, pol := range d.Policies {
		qs, err := sqlgen.TranslateRulesetOptimized(rs, sqlgen.FixedPolicySubquery(optIDs[pol.Name]))
		if err != nil {
			return nil, err
		}
		var ps []preparedRule
		for _, q := range qs {
			stmt, err := optDB.Prepare(q.SQL)
			if err != nil {
				return nil, err
			}
			ps = append(ps, preparedRule{stmt: stmt})
		}
		prepared[pol.Name] = ps
	}
	start := time.Now()
	for round := 0; round < ablationRounds; round++ {
		for _, pol := range d.Policies {
			for _, p := range prepared[pol.Name] {
				ok, err := optDB.QueryExistsStmt(p.stmt)
				if err != nil {
					return nil, err
				}
				if ok {
					break
				}
			}
		}
	}
	res.ConvertCached = time.Since(start) / time.Duration(ablationRounds*len(d.Policies))
	return res, nil
}

// Render formats the ablation table.
func (a *AblationResults) Render() string {
	var b strings.Builder
	fmt.Fprintf(&b, "Ablations (per-match averages, %s preference, ms)\n", a.Level)
	row := func(name string, on, off time.Duration, onLabel, offLabel string) {
		ratio := float64(0)
		if off > 0 {
			ratio = float64(on) / float64(off)
		}
		fmt.Fprintf(&b, "%-34s %10s (%s) %10s (%s)  ratio %.1fx\n",
			name, ms(on), onLabel, ms(off), offLabel, ratio)
	}
	row("Native: category augmentation", a.AugmentationOn, a.AugmentationOff, "on", "off")
	row("SQL: schema", a.SchemaGeneric, a.SchemaOptimized, "generic", "optimized")
	row("SQL: XML-view reconstruction", a.SchemaGenericView, a.SchemaGeneric, "view", "direct")
	row("SQL: view + materialized cache", a.SchemaGenericViewCached, a.SchemaGenericView, "cached", "uncached")
	row("SQL: hash indexes", a.IndexOff, a.IndexOn, "disabled", "enabled")
	row("SQL: conversion+parse per match", a.ConvertEachTime, a.ConvertCached, "full", "prepared")
	return b.String()
}
