package benchkit

import (
	"encoding/json"
	"fmt"
	"os"
	"sort"
	"strings"
	"time"

	"p3pdb/internal/core"
	"p3pdb/internal/obs"
	"p3pdb/internal/workload"
)

// The obs table closes the loop between the bench harness and the live
// observability layer (DESIGN.md §8): it snapshots the obs registry
// before and after a fixed matching workload and reports the counter
// deltas next to wall-clock, per engine. If the deltas do not reconcile
// with the number of matches the harness issued, the instrumentation is
// lying — the Reconciled column makes that a checked invariant, and the
// BENCH_obs.json artifact lets CI diff the accounting across PRs.

// ObsConfig parameterizes an observability bench run.
type ObsConfig struct {
	// Seed generates the workload (default 42).
	Seed int64
	// Level is the preference level matched (default "High").
	Level string
	// Repeats is how many passes over the full policy corpus each engine
	// performs (default 3).
	Repeats int
	// Budget caps evaluator steps per match; zero means ungoverned.
	Budget int64
}

func (c ObsConfig) withDefaults() ObsConfig {
	if c.Seed == 0 {
		c.Seed = 42
	}
	if c.Level == "" {
		c.Level = "High"
	}
	if c.Repeats == 0 {
		c.Repeats = 3
	}
	return c
}

// ObsEngineRow is one engine's slice of the run: what the harness did
// (Matches, ElapsedMS) against what the registry recorded during it.
type ObsEngineRow struct {
	Engine    string  `json:"engine"`
	Matches   int64   `json:"matches"`
	ElapsedMS float64 `json:"elapsedMs"`
	// MatchTotal is the core.match.<engine>.total counter delta; it must
	// equal Matches (Reconciled) or the instrumentation dropped events.
	MatchTotal int64 `json:"matchTotal"`
	Reconciled bool  `json:"reconciled"`
	// Steps is the evaluator-step delta, the figure the paper's cost
	// model counts (rows visited / nodes walked / comparisons).
	Steps        int64 `json:"steps"`
	LatencyP50US int64 `json:"latencyP50Us"`
	LatencyP99US int64 `json:"latencyP99Us"`
	// Counters holds every non-zero counter delta observed while this
	// engine ran — cache hits, rows scanned, statements, and so on.
	Counters map[string]int64 `json:"counters"`
}

// ObsResults is the full run, shaped for rendering and for the
// BENCH_obs.json artifact.
type ObsResults struct {
	Seed     int64          `json:"seed"`
	Level    string         `json:"level"`
	Repeats  int            `json:"repeats"`
	Policies int            `json:"policies"`
	Rows     []ObsEngineRow `json:"rows"`
	// Totals are the whole-run counter deltas (all engines plus warmup),
	// the numbers GET /metrics would show after the same workload.
	Totals map[string]int64 `json:"totals"`
}

func nonZeroCounters(s obs.Snapshot) map[string]int64 {
	out := make(map[string]int64)
	for name, v := range s.Counters {
		if v != 0 {
			out[name] = v
		}
	}
	return out
}

// RunObs matches one preference against the whole corpus with every
// engine, bracketing each engine's pass with registry snapshots.
func RunObs(cfg ObsConfig) (*ObsResults, error) {
	cfg = cfg.withDefaults()
	site, d, err := Setup(Config{Seed: cfg.Seed, Budget: cfg.Budget})
	if err != nil {
		return nil, err
	}
	pref, ok := workload.PreferenceByLevel(cfg.Level)
	if !ok {
		return nil, fmt.Errorf("benchkit: no preference level %q", cfg.Level)
	}
	res := &ObsResults{
		Seed:     cfg.Seed,
		Level:    cfg.Level,
		Repeats:  cfg.Repeats,
		Policies: len(d.Policies),
	}
	runStart := obs.Default.Snapshot()
	for _, engine := range core.Engines {
		// Warm up outside the measured bracket so the per-engine deltas
		// reflect steady-state matching, not first-touch cache fills.
		for _, pol := range d.Policies {
			if _, err := site.MatchPolicy(pref.XML, pol.Name, engine); err != nil {
				return nil, fmt.Errorf("benchkit: warmup %s/%s: %w", engine.ShortName(), pol.Name, err)
			}
		}
		before := obs.Default.Snapshot()
		start := time.Now()
		var matches int64
		for rep := 0; rep < cfg.Repeats; rep++ {
			for _, pol := range d.Policies {
				if _, err := site.MatchPolicy(pref.XML, pol.Name, engine); err != nil {
					return nil, fmt.Errorf("benchkit: obs %s/%s: %w", engine.ShortName(), pol.Name, err)
				}
				matches++
			}
		}
		elapsed := time.Since(start)
		delta := obs.Default.Snapshot().Delta(before)
		short := engine.ShortName()
		lat := delta.Histograms["core.match."+short+".latency_us"]
		row := ObsEngineRow{
			Engine:       short,
			Matches:      matches,
			ElapsedMS:    float64(elapsed.Microseconds()) / 1000,
			MatchTotal:   delta.Counters["core.match."+short+".total"],
			Steps:        delta.Counters["core.match."+short+".steps"],
			LatencyP50US: lat.Quantile(0.50),
			LatencyP99US: lat.Quantile(0.99),
			Counters:     nonZeroCounters(delta),
		}
		row.Reconciled = row.MatchTotal == row.Matches
		res.Rows = append(res.Rows, row)
	}
	res.Totals = nonZeroCounters(obs.Default.Snapshot().Delta(runStart))
	return res, nil
}

// Render formats the obs table: the per-engine reconciliation block,
// then the whole-run counter totals.
func (r *ObsResults) Render() string {
	var b strings.Builder
	fmt.Fprintf(&b, "Observability deltas (%s preference, %d policies x %d repeats)\n",
		r.Level, r.Policies, r.Repeats)
	fmt.Fprintf(&b, "%8s %8s %11s %12s %12s %8s %8s %11s\n",
		"engine", "matches", "elapsed ms", "match.total", "steps", "p50 us", "p99 us", "reconciled")
	for _, row := range r.Rows {
		rec := "yes"
		if !row.Reconciled {
			rec = "NO"
		}
		fmt.Fprintf(&b, "%8s %8d %11.1f %12d %12d %8d %8d %11s\n",
			row.Engine, row.Matches, row.ElapsedMS, row.MatchTotal, row.Steps,
			row.LatencyP50US, row.LatencyP99US, rec)
	}
	fmt.Fprintf(&b, "\nRun totals (counter deltas across warmup + all engines):\n")
	names := make([]string, 0, len(r.Totals))
	for name := range r.Totals {
		names = append(names, name)
	}
	sort.Strings(names)
	for _, name := range names {
		fmt.Fprintf(&b, "  %-40s %d\n", name, r.Totals[name])
	}
	return b.String()
}

// WriteJSON writes the results as the machine-readable BENCH_obs.json
// artifact CI uploads.
func (r *ObsResults) WriteJSON(path string) error {
	data, err := json.MarshalIndent(r, "", "  ")
	if err != nil {
		return err
	}
	return os.WriteFile(path, append(data, '\n'), 0o644)
}
