package resource

import (
	"context"
	"errors"
	"testing"
	"time"
)

func TestNilMeterChargesNothing(t *testing.T) {
	var m *Meter
	if err := m.Step(1 << 30); err != nil {
		t.Fatalf("nil meter Step: %v", err)
	}
	if err := m.Check(); err != nil {
		t.Fatalf("nil meter Check: %v", err)
	}
	if m.Steps() != 0 || m.Budget() != 0 {
		t.Fatalf("nil meter reports steps=%d budget=%d", m.Steps(), m.Budget())
	}
}

func TestNewMeterReturnsNilWhenNothingToGovern(t *testing.T) {
	if m := NewMeter(context.Background(), 0); m != nil {
		t.Fatalf("NewMeter(Background, 0) = %v, want nil", m)
	}
	if m := NewMeter(nil, 0); m != nil {
		t.Fatalf("NewMeter(nil, 0) = %v, want nil", m)
	}
	if m := NewMeter(nil, 10); m == nil {
		t.Fatal("NewMeter(nil, 10) = nil, want meter")
	}
}

func TestBudgetExceeded(t *testing.T) {
	m := NewMeter(nil, 10)
	for i := 0; i < 10; i++ {
		if err := m.Step(1); err != nil {
			t.Fatalf("step %d within budget: %v", i, err)
		}
	}
	err := m.Step(1)
	if !errors.Is(err, ErrBudgetExceeded) {
		t.Fatalf("11th step: got %v, want ErrBudgetExceeded", err)
	}
	if m.Steps() != 11 {
		t.Fatalf("steps = %d, want 11", m.Steps())
	}
}

func TestCancellationSurfacesPromptly(t *testing.T) {
	ctx, cancel := context.WithCancel(context.Background())
	m := NewMeter(ctx, 0)
	cancel()
	err := m.Step(1) // first charge polls the context immediately
	if !errors.Is(err, ErrCanceled) {
		t.Fatalf("got %v, want ErrCanceled", err)
	}
	if !errors.Is(err, context.Canceled) {
		t.Fatalf("error %v should wrap context.Canceled", err)
	}
}

func TestDeadlineDistinguishableFromCancel(t *testing.T) {
	ctx, cancel := context.WithCancel(context.Background())
	defer cancel()
	deadCtx, dcancel := context.WithDeadline(ctx, time.Now().Add(-time.Second))
	defer dcancel()
	m := NewMeter(deadCtx, 0)
	err := m.Check()
	if !errors.Is(err, ErrCanceled) || !errors.Is(err, context.DeadlineExceeded) {
		t.Fatalf("got %v, want ErrCanceled wrapping DeadlineExceeded", err)
	}
}

func TestContextRoundTrip(t *testing.T) {
	m := NewMeter(nil, 5)
	ctx := WithMeter(context.Background(), m)
	if got := FromContext(ctx); got != m {
		t.Fatalf("FromContext = %v, want %v", got, m)
	}
	if got := FromContext(context.Background()); got != nil {
		t.Fatalf("FromContext(bare) = %v, want nil", got)
	}
	if got := WithMeter(context.Background(), nil); FromContext(got) != nil {
		t.Fatal("WithMeter(nil) should carry no meter")
	}
}
