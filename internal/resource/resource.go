// Package resource governs the cost of a preference match. The paper's
// server-centric architecture puts matching on the page-access hot path,
// where an adversarial (or merely deep) APPEL rule translates into a
// nested-EXISTS query whose evaluation cost is unbounded. A Meter bounds
// it: evaluators charge a step per unit of work (a row visited, a node
// walked, an element compared) and the meter aborts the evaluation with a
// typed error once a configured budget is exhausted or the governing
// context is done. Every engine shares the same meter type, so the typed
// errors surface uniformly at the server layer regardless of which
// evaluator hit the limit.
package resource

import (
	"context"
	"errors"
	"fmt"
)

// ErrBudgetExceeded reports that an evaluation charged more steps than
// its budget allows. It is a permanent property of the (preference,
// budget) pair, not a transient failure: retrying without raising the
// budget will fail the same way. Servers map it to 503.
var ErrBudgetExceeded = errors.New("resource: step budget exceeded")

// ErrCanceled reports that the governing context ended mid-evaluation.
// Errors returned for it wrap the context's cause, so
// errors.Is(err, context.DeadlineExceeded) distinguishes a deadline from
// an explicit cancellation. Servers map deadlines to 504.
var ErrCanceled = errors.New("resource: evaluation canceled")

// ctxCheckInterval is how many steps pass between context polls. Polling
// a context costs an atomic load plus a channel select; charging steps
// must stay cheap enough to sit inside a row-scan loop.
const ctxCheckInterval = 256

// Meter is a per-evaluation step counter with an optional budget and an
// optional governing context. A nil *Meter is valid and charges nothing,
// so unmetered call paths stay zero-cost. A Meter is used by one
// goroutine at a time (each match builds its own); it is not for sharing
// across concurrent evaluations.
type Meter struct {
	ctx        context.Context // nil means no cancellation source
	budget     int64           // 0 means unlimited
	steps      int64
	sinceCheck int64
}

// NewMeter returns a meter charging against budget (0 = unlimited) and
// honoring ctx cancellation (nil ctx = none). A nil meter is returned
// when there is nothing to govern, keeping the charge path free.
func NewMeter(ctx context.Context, budget int64) *Meter {
	if budget <= 0 && (ctx == nil || ctx.Done() == nil) {
		return nil
	}
	return &Meter{ctx: ctx, budget: budget}
}

// Step charges n units of work. It returns ErrBudgetExceeded once the
// cumulative charge passes the budget, or an ErrCanceled-wrapping error
// when the governing context has ended (polled every ctxCheckInterval
// steps, and once immediately on the first charge so canceled contexts
// surface promptly).
func (m *Meter) Step(n int64) error {
	if m == nil {
		return nil
	}
	first := m.steps == 0
	m.steps += n
	if m.budget > 0 && m.steps > m.budget {
		return fmt.Errorf("%w (budget %d)", ErrBudgetExceeded, m.budget)
	}
	if m.ctx != nil {
		m.sinceCheck += n
		if first || m.sinceCheck >= ctxCheckInterval {
			m.sinceCheck = 0
			if err := m.ctx.Err(); err != nil {
				return fmt.Errorf("%w: %w", ErrCanceled, err)
			}
		}
	}
	return nil
}

// Check polls only the governing context, for call sites that want
// prompt cancellation without charging work (e.g. between statements).
func (m *Meter) Check() error {
	if m == nil || m.ctx == nil {
		return nil
	}
	if err := m.ctx.Err(); err != nil {
		return fmt.Errorf("%w: %w", ErrCanceled, err)
	}
	return nil
}

// Steps reports the work charged so far.
func (m *Meter) Steps() int64 {
	if m == nil {
		return 0
	}
	return m.steps
}

// Budget reports the meter's budget (0 = unlimited).
func (m *Meter) Budget() int64 {
	if m == nil {
		return 0
	}
	return m.budget
}

// meterKey carries a Meter through a context.Context.
type meterKey struct{}

// WithMeter returns a context carrying m. Callers that meter a whole
// multi-statement operation (one preference match runs one statement per
// rule) install a shared meter this way; context-accepting entry points
// then charge against it instead of creating their own.
func WithMeter(ctx context.Context, m *Meter) context.Context {
	if m == nil {
		return ctx
	}
	return context.WithValue(ctx, meterKey{}, m)
}

// FromContext returns the meter carried by ctx, or nil.
func FromContext(ctx context.Context) *Meter {
	if ctx == nil {
		return nil
	}
	m, _ := ctx.Value(meterKey{}).(*Meter)
	return m
}
