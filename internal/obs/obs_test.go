package obs

import (
	"encoding/json"
	"net/http/httptest"
	"strings"
	"sync"
	"testing"
	"time"
)

func TestCounterGaugeBasics(t *testing.T) {
	r := NewRegistry()
	c := r.Counter("a.total")
	c.Inc()
	c.Add(4)
	if got := c.Value(); got != 5 {
		t.Fatalf("counter = %d, want 5", got)
	}
	if r.Counter("a.total") != c {
		t.Fatal("second lookup returned a different counter")
	}
	g := r.Gauge("a.size")
	g.Set(10)
	g.Add(-3)
	if got := g.Value(); got != 7 {
		t.Fatalf("gauge = %d, want 7", got)
	}
}

func TestHistogramBuckets(t *testing.T) {
	cases := []struct {
		v    int64
		want int
	}{
		{-5, 0}, {0, 0}, {1, 0}, {2, 1}, {3, 2}, {4, 2}, {5, 3},
		{8, 3}, {9, 4}, {1024, 10}, {1025, 11}, {1 << 40, histBuckets - 1},
	}
	for _, c := range cases {
		if got := bucketFor(c.v); got != c.want {
			t.Errorf("bucketFor(%d) = %d, want %d", c.v, got, c.want)
		}
	}
	// Every value must land in a bucket whose bound is >= the value
	// (the bucket invariant quantile estimation relies on).
	for v := int64(1); v < 1<<20; v = v*3 + 1 {
		if b := BucketBound(bucketFor(v)); b < v {
			t.Fatalf("value %d landed in bucket with bound %d", v, b)
		}
	}
}

func TestHistogramSnapshotAndQuantile(t *testing.T) {
	r := NewRegistry()
	h := r.Histogram("lat")
	for v := int64(1); v <= 100; v++ {
		h.Observe(v)
	}
	s := r.Snapshot().Histograms["lat"]
	if s.Count != 100 || s.Sum != 5050 {
		t.Fatalf("count/sum = %d/%d, want 100/5050", s.Count, s.Sum)
	}
	if m := s.Mean(); m != 50.5 {
		t.Fatalf("mean = %v, want 50.5", m)
	}
	// p50 of 1..100 falls in the bucket bounded by 64; p99 in 128.
	if q := s.Quantile(0.5); q != 64 {
		t.Fatalf("p50 = %d, want 64", q)
	}
	if q := s.Quantile(0.99); q != 128 {
		t.Fatalf("p99 = %d, want 128", q)
	}
	h.ObserveDuration(3 * time.Millisecond)
	if got := h.Sum(); got != 5050+3000 {
		t.Fatalf("sum after ObserveDuration = %d, want %d", got, 5050+3000)
	}
}

// TestConcurrentHammering is the metrics invariant test: many goroutines
// hammer the same instruments (including racing get-or-create lookups)
// and the totals must be exact. Run under -race in CI.
func TestConcurrentHammering(t *testing.T) {
	r := NewRegistry()
	const workers = 16
	const perWorker = 2000
	var wg sync.WaitGroup
	for w := 0; w < workers; w++ {
		wg.Add(1)
		go func(w int) {
			defer wg.Done()
			for i := 0; i < perWorker; i++ {
				// Resolve through the registry every time to race the
				// get-or-create path too.
				r.Counter("hammer.total").Inc()
				r.Gauge("hammer.gauge").Add(1)
				r.Histogram("hammer.hist").Observe(int64(i%1024 + 1))
			}
		}(w)
	}
	wg.Wait()
	const want = workers * perWorker
	if got := r.Counter("hammer.total").Value(); got != want {
		t.Fatalf("counter = %d, want %d", got, want)
	}
	if got := r.Gauge("hammer.gauge").Value(); got != want {
		t.Fatalf("gauge = %d, want %d", got, want)
	}
	h := r.Snapshot().Histograms["hammer.hist"]
	if h.Count != want {
		t.Fatalf("histogram count = %d, want %d", h.Count, want)
	}
	var bucketTotal int64
	for _, b := range h.Buckets {
		bucketTotal += b.Count
	}
	if bucketTotal != want {
		t.Fatalf("bucket total = %d, want %d (observations lost between buckets)", bucketTotal, want)
	}
}

// TestSnapshotWhileWriting asserts snapshots taken mid-write see
// monotonically non-decreasing counters (no torn or negative reads).
func TestSnapshotWhileWriting(t *testing.T) {
	r := NewRegistry()
	c := r.Counter("mono")
	done := make(chan struct{})
	go func() {
		defer close(done)
		for i := 0; i < 50000; i++ {
			c.Inc()
		}
	}()
	var last int64
	for i := 0; i < 100; i++ {
		v := r.Snapshot().Counters["mono"]
		if v < last {
			t.Fatalf("counter went backwards: %d after %d", v, last)
		}
		last = v
	}
	<-done
}

func TestSnapshotDelta(t *testing.T) {
	r := NewRegistry()
	c := r.Counter("d.total")
	h := r.Histogram("d.lat")
	c.Add(3)
	h.Observe(10)
	before := r.Snapshot()
	c.Add(7)
	h.Observe(20)
	h.Observe(30)
	d := r.Snapshot().Delta(before)
	if d.Counters["d.total"] != 7 {
		t.Fatalf("counter delta = %d, want 7", d.Counters["d.total"])
	}
	if hd := d.Histograms["d.lat"]; hd.Count != 2 || hd.Sum != 50 {
		t.Fatalf("histogram delta = %+v, want count 2 sum 50", hd)
	}
}

func TestTextRendering(t *testing.T) {
	r := NewRegistry()
	r.Counter("b.total").Add(2)
	r.Gauge("a.size").Set(9)
	r.Histogram("c.lat").Observe(5)
	text := r.Snapshot().Text()
	for _, want := range []string{"a.size 9\n", "b.total 2\n", "c.lat.count 1\n", "c.lat.sum 5\n", "c.lat.p50 8\n"} {
		if !strings.Contains(text, want) {
			t.Errorf("text output missing %q:\n%s", want, text)
		}
	}
	lines := strings.Split(strings.TrimSpace(text), "\n")
	if !sortedLines(lines) {
		t.Fatalf("text output not sorted:\n%s", text)
	}
}

func sortedLines(lines []string) bool {
	for i := 1; i < len(lines); i++ {
		if lines[i] < lines[i-1] {
			return false
		}
	}
	return true
}

func TestHandlerTextAndJSON(t *testing.T) {
	r := NewRegistry()
	r.Counter("h.total").Add(4)
	r.Histogram("h.lat").Observe(100)
	h := Handler(r)

	rec := httptest.NewRecorder()
	h.ServeHTTP(rec, httptest.NewRequest("GET", "/metrics", nil))
	if rec.Code != 200 || !strings.Contains(rec.Body.String(), "h.total 4") {
		t.Fatalf("text response: %d %q", rec.Code, rec.Body.String())
	}

	rec = httptest.NewRecorder()
	h.ServeHTTP(rec, httptest.NewRequest("GET", "/metrics?format=json", nil))
	var snap Snapshot
	if err := json.Unmarshal(rec.Body.Bytes(), &snap); err != nil {
		t.Fatalf("bad JSON: %v", err)
	}
	if snap.Counters["h.total"] != 4 || snap.Histograms["h.lat"].Count != 1 {
		t.Fatalf("JSON snapshot wrong: %+v", snap)
	}

	rec = httptest.NewRecorder()
	h.ServeHTTP(rec, httptest.NewRequest("POST", "/metrics", nil))
	if rec.Code != 405 {
		t.Fatalf("POST /metrics = %d, want 405", rec.Code)
	}
}
