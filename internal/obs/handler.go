package obs

import (
	"encoding/json"
	"net/http"
	"strings"
)

// Handler serves a registry's snapshot over HTTP: plain "name value"
// text by default, the full JSON snapshot (histogram buckets included)
// with ?format=json or an Accept header preferring application/json.
// Mounted at GET /metrics by the server.
func Handler(r *Registry) http.Handler {
	return http.HandlerFunc(func(w http.ResponseWriter, req *http.Request) {
		if req.Method != http.MethodGet {
			http.Error(w, "method not allowed", http.StatusMethodNotAllowed)
			return
		}
		snap := r.Snapshot()
		if wantsJSON(req) {
			w.Header().Set("Content-Type", "application/json")
			enc := json.NewEncoder(w)
			enc.SetIndent("", "  ")
			_ = enc.Encode(snap)
			return
		}
		w.Header().Set("Content-Type", "text/plain; charset=utf-8")
		_, _ = w.Write([]byte(snap.Text()))
	})
}

func wantsJSON(req *http.Request) bool {
	if req.URL.Query().Get("format") == "json" {
		return true
	}
	return strings.Contains(req.Header.Get("Accept"), "application/json")
}
