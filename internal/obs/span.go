package obs

import (
	"context"
	"encoding/json"
	"io"
	"sync"
	"sync/atomic"
	"time"
)

// A Span is one timed stage of a request: name, start, duration, step
// count, and outcome, plus small string attributes (engine, policy,
// abort reason). Spans ride the context.Context the same way
// resource.Meter does, so any pipeline stage can annotate the request
// it is serving without threading a tracer through every signature.
//
// Spans form a tree: StartSpan under a context that already carries a
// span attaches a child. When a *root* span ends and a trace writer is
// installed (SetTraceWriter / the server's -trace-log flag), the whole
// tree is emitted as one JSON line. With no writer installed the only
// cost of an un-annotated span is a clock reading and one small
// allocation; pipeline stages therefore annotate unconditionally.
//
// A Span's setters are safe for concurrent use (MatchAll workers
// annotate children of one request span in parallel), but End must
// happen-after every annotation of that span.
type Span struct {
	name  string
	start time.Time

	mu       sync.Mutex
	dur      time.Duration
	steps    int64
	outcome  string
	attrs    []spanAttr
	children []*Span
	parent   *Span
	ended    bool
}

type spanAttr struct{ k, v string }

// spanKey carries the active span through a context.
type spanKey struct{}

// StartSpan begins a span named name and returns a context carrying it.
// If ctx already carries a span the new one is attached as its child;
// otherwise it is a root span, and its End emits a trace line when
// tracing is enabled.
func StartSpan(ctx context.Context, name string) (context.Context, *Span) {
	s := &Span{name: name, start: time.Now(), parent: SpanFromContext(ctx)}
	if s.parent != nil {
		s.parent.mu.Lock()
		s.parent.children = append(s.parent.children, s)
		s.parent.mu.Unlock()
	}
	return context.WithValue(ctx, spanKey{}, s), s
}

// SpanFromContext returns the span carried by ctx, or nil. All Span
// methods are nil-safe, so callers annotate without checking.
func SpanFromContext(ctx context.Context) *Span {
	if ctx == nil {
		return nil
	}
	s, _ := ctx.Value(spanKey{}).(*Span)
	return s
}

// SetOutcome records how the span ended ("ok", "budget-exceeded",
// "deadline-exceeded", "error", ...). The last call wins.
func (s *Span) SetOutcome(outcome string) {
	if s == nil {
		return
	}
	s.mu.Lock()
	s.outcome = outcome
	s.mu.Unlock()
}

// AddSteps adds evaluator work (resource.Meter steps) to the span.
func (s *Span) AddSteps(n int64) {
	if s == nil || n == 0 {
		return
	}
	s.mu.Lock()
	s.steps += n
	s.mu.Unlock()
}

// Annotate attaches one string attribute (engine, policy, uri, ...).
func (s *Span) Annotate(key, value string) {
	if s == nil {
		return
	}
	s.mu.Lock()
	s.attrs = append(s.attrs, spanAttr{key, value})
	s.mu.Unlock()
}

// End closes the span, fixing its duration. Ending a root span emits
// the trace line if tracing is enabled; ending twice is a no-op.
func (s *Span) End() {
	if s == nil {
		return
	}
	s.mu.Lock()
	if s.ended {
		s.mu.Unlock()
		return
	}
	s.ended = true
	s.dur = time.Since(s.start)
	isRoot := s.parent == nil
	s.mu.Unlock()
	if isRoot {
		emitTrace(s)
	}
}

// Duration reports the span's duration (zero until End).
func (s *Span) Duration() time.Duration {
	if s == nil {
		return 0
	}
	s.mu.Lock()
	defer s.mu.Unlock()
	return s.dur
}

// Steps reports the work recorded on the span so far.
func (s *Span) Steps() int64 {
	if s == nil {
		return 0
	}
	s.mu.Lock()
	defer s.mu.Unlock()
	return s.steps
}

// Outcome reports the recorded outcome.
func (s *Span) Outcome() string {
	if s == nil {
		return ""
	}
	s.mu.Lock()
	defer s.mu.Unlock()
	return s.outcome
}

// TraceLine is the JSON shape of one emitted span (and, recursively,
// its children). One request = one root TraceLine = one output line.
type TraceLine struct {
	Span    string            `json:"span"`
	StartUS int64             `json:"startUs"` // µs since Unix epoch
	DurUS   int64             `json:"durUs"`
	Steps   int64             `json:"steps,omitempty"`
	Outcome string            `json:"outcome,omitempty"`
	Attrs   map[string]string `json:"attrs,omitempty"`
	Spans   []TraceLine       `json:"spans,omitempty"`
}

// traceLine converts the span tree to its JSON shape.
func (s *Span) traceLine() TraceLine {
	s.mu.Lock()
	defer s.mu.Unlock()
	tl := TraceLine{
		Span:    s.name,
		StartUS: s.start.UnixMicro(),
		DurUS:   s.dur.Microseconds(),
		Steps:   s.steps,
		Outcome: s.outcome,
	}
	if len(s.attrs) > 0 {
		tl.Attrs = make(map[string]string, len(s.attrs))
		for _, a := range s.attrs {
			tl.Attrs[a.k] = a.v
		}
	}
	for _, c := range s.children {
		tl.Spans = append(tl.Spans, c.traceLine())
	}
	return tl
}

// traceSink is the installed trace writer. An atomic pointer keeps the
// disabled check (the common case) to one load; the mutex serializes
// actual line writes so concurrent requests do not interleave bytes.
var traceSink atomic.Pointer[lockedWriter]

type lockedWriter struct {
	mu sync.Mutex
	w  io.Writer
}

// SetTraceWriter installs w as the destination for per-request trace
// lines (one JSON object per line). A nil w disables tracing.
func SetTraceWriter(w io.Writer) {
	if w == nil {
		traceSink.Store(nil)
		return
	}
	traceSink.Store(&lockedWriter{w: w})
}

// TracingEnabled reports whether a trace writer is installed.
func TracingEnabled() bool { return traceSink.Load() != nil }

func emitTrace(s *Span) {
	lw := traceSink.Load()
	if lw == nil {
		return
	}
	line, err := json.Marshal(s.traceLine())
	if err != nil {
		return
	}
	line = append(line, '\n')
	lw.mu.Lock()
	_, _ = lw.w.Write(line)
	lw.mu.Unlock()
}
