// Package obs is the matching pipeline's always-on observability layer:
// lock-cheap counters, gauges, and fixed-bucket histograms, plus the
// per-request trace spans of span.go. The paper's evaluation (Sections
// 6–7) is quantitative — where time and steps go inside a match — and
// this package makes the same accounting visible in a live server, not
// just in the offline bench harness.
//
// Design constraints, in order:
//
//  1. The hot path (a row scanned, a node walked, a cache probed) must
//     pay one atomic add and allocate nothing. Metrics are therefore
//     plain atomics behind stable pointers: packages resolve their
//     instruments once, at init, and only touch atomics afterwards.
//  2. Reads must not stall writers: Snapshot loads each atomic without
//     any registry-wide stop-the-world, so totals are per-metric exact
//     but only approximately simultaneous — fine for monitoring, and
//     tests that need exact reconciliation quiesce the workload first.
//  3. Everything is stdlib. /metrics renders the same snapshot as text
//     ("name value" lines) and JSON; /debug/vars exposes it via expvar.
//
// Metric names are dotted paths, subsystem first: "reldb.rows_scanned",
// "core.match.sql.total", "server.match.latency_us". The registry is
// flat; dots are convention, not structure. DESIGN.md §8 is the name
// taxonomy.
package obs

import (
	"expvar"
	"fmt"
	"math/bits"
	"sort"
	"sync"
	"sync/atomic"
	"time"
	"unsafe"
)

// stripes spreads each hot instrument across this many cache-line-padded
// slots. A single shared atomic becomes a contended cache line once many
// cores write it per match (the parallel benchmarks do exactly that);
// striping trades 8x memory for near-linear write scalability, and reads
// sum the stripes.
const stripes = 8

// stripedInt64 is one padded slot: the counter value plus enough padding
// to keep neighbouring slots on distinct 64-byte cache lines.
type stripedInt64 struct {
	v atomic.Int64
	_ [56]byte
}

// stripeIdx picks this goroutine's slot. There is no goroutine-local
// storage in the stdlib, so it hashes the address of a stack variable:
// stable within a goroutine (same frame depth, same address), spread
// across goroutines (distinct stacks), and costs two ALU ops.
func stripeIdx() int {
	var b byte
	return int((uintptr(unsafe.Pointer(&b)) >> 10) & (stripes - 1))
}

// Counter is a monotonically increasing striped atomic counter. The zero
// value is ready to use, but instruments should come from a Registry so
// they appear in snapshots.
type Counter struct {
	s [stripes]stripedInt64
}

// Add increments the counter by n.
func (c *Counter) Add(n int64) { c.s[stripeIdx()].v.Add(n) }

// Inc increments the counter by one.
func (c *Counter) Inc() { c.Add(1) }

// Value reports the current count: the sum of the stripes, each loaded
// atomically (exact once writers quiesce, monotone always).
func (c *Counter) Value() int64 {
	var total int64
	for i := range c.s {
		total += c.s[i].v.Load()
	}
	return total
}

// Gauge is an atomic instantaneous value (cache entries, active
// requests). Unlike a Counter it can go down.
type Gauge struct {
	v atomic.Int64
}

// Set replaces the gauge's value.
func (g *Gauge) Set(n int64) { g.v.Store(n) }

// Add moves the gauge by delta (negative to decrease).
func (g *Gauge) Add(delta int64) { g.v.Add(delta) }

// Value reports the current value.
func (g *Gauge) Value() int64 { return g.v.Load() }

// histBuckets is the number of exponential histogram buckets: bucket i
// counts observations v with 2^(i-1) < v <= 2^i (bucket 0 counts v <= 1),
// and the last bucket absorbs everything larger. With 30 buckets a
// microsecond-latency histogram spans 1µs to ~9min, and a step histogram
// spans 1 to ~5e8 — both comfortably beyond anything the budgets allow.
const histBuckets = 30

// histStripe is one stripe of a histogram: its own count, sum, and
// buckets, 256 bytes total so stripes start on distinct cache lines.
type histStripe struct {
	count   atomic.Int64
	sum     atomic.Int64
	buckets [histBuckets]atomic.Int64
}

// Histogram is a fixed-bucket exponential histogram, striped like
// Counter. Observe is three atomic adds inside this goroutine's stripe;
// there is no lock and no allocation. Negative observations clamp to
// bucket 0.
type Histogram struct {
	s [stripes]histStripe
}

// bucketFor maps an observation to its bucket index.
func bucketFor(v int64) int {
	if v <= 1 {
		return 0
	}
	// bits.Len64(v-1) is ceil(log2(v)) for v >= 2.
	b := bits.Len64(uint64(v - 1))
	if b >= histBuckets {
		return histBuckets - 1
	}
	return b
}

// BucketBound reports the inclusive upper bound of bucket i (the last
// bucket's bound is the largest int64).
func BucketBound(i int) int64 {
	if i >= histBuckets-1 {
		return 1<<63 - 1
	}
	return 1 << uint(i)
}

// Observe records one value.
func (h *Histogram) Observe(v int64) {
	st := &h.s[stripeIdx()]
	st.count.Add(1)
	st.sum.Add(v)
	st.buckets[bucketFor(v)].Add(1)
}

// ObserveDuration records a duration in microseconds, the histogram unit
// every *.latency_us metric uses.
func (h *Histogram) ObserveDuration(d time.Duration) { h.Observe(d.Microseconds()) }

// Count reports the number of observations.
func (h *Histogram) Count() int64 {
	var total int64
	for i := range h.s {
		total += h.s[i].count.Load()
	}
	return total
}

// Sum reports the sum of observed values.
func (h *Histogram) Sum() int64 {
	var total int64
	for i := range h.s {
		total += h.s[i].sum.Load()
	}
	return total
}

// snapshot captures the histogram's atomics, summing the stripes.
func (h *Histogram) snapshot() HistogramSnapshot {
	var s HistogramSnapshot
	var buckets [histBuckets]int64
	for i := range h.s {
		st := &h.s[i]
		s.Count += st.count.Load()
		s.Sum += st.sum.Load()
		for b := range st.buckets {
			buckets[b] += st.buckets[b].Load()
		}
	}
	for b, n := range buckets {
		if n > 0 {
			s.Buckets = append(s.Buckets, BucketCount{Le: BucketBound(b), Count: n})
		}
	}
	return s
}

// Registry holds named instruments. Lookups (Counter/Gauge/Histogram)
// are get-or-create and safe for concurrent use, but they take a lock —
// callers on hot paths resolve instruments once and keep the pointer.
type Registry struct {
	mu         sync.RWMutex
	counters   map[string]*Counter
	gauges     map[string]*Gauge
	histograms map[string]*Histogram
}

// NewRegistry returns an empty registry.
func NewRegistry() *Registry {
	return &Registry{
		counters:   map[string]*Counter{},
		gauges:     map[string]*Gauge{},
		histograms: map[string]*Histogram{},
	}
}

// Default is the process-wide registry every pipeline package registers
// into. Tests assert on deltas between snapshots, so sharing one
// registry across sites in a process is safe.
var Default = NewRegistry()

// Counter returns the named counter, creating it on first use.
func (r *Registry) Counter(name string) *Counter {
	r.mu.RLock()
	c := r.counters[name]
	r.mu.RUnlock()
	if c != nil {
		return c
	}
	r.mu.Lock()
	defer r.mu.Unlock()
	if c := r.counters[name]; c != nil {
		return c
	}
	c = &Counter{}
	r.counters[name] = c
	return c
}

// Gauge returns the named gauge, creating it on first use.
func (r *Registry) Gauge(name string) *Gauge {
	r.mu.RLock()
	g := r.gauges[name]
	r.mu.RUnlock()
	if g != nil {
		return g
	}
	r.mu.Lock()
	defer r.mu.Unlock()
	if g := r.gauges[name]; g != nil {
		return g
	}
	g = &Gauge{}
	r.gauges[name] = g
	return g
}

// Histogram returns the named histogram, creating it on first use.
func (r *Registry) Histogram(name string) *Histogram {
	r.mu.RLock()
	h := r.histograms[name]
	r.mu.RUnlock()
	if h != nil {
		return h
	}
	r.mu.Lock()
	defer r.mu.Unlock()
	if h := r.histograms[name]; h != nil {
		return h
	}
	h = &Histogram{}
	r.histograms[name] = h
	return h
}

// GetCounter returns the named counter or nil, without creating it.
func (r *Registry) GetCounter(name string) *Counter {
	r.mu.RLock()
	defer r.mu.RUnlock()
	return r.counters[name]
}

// Counter, Gauge, and Histogram resolve instruments in the Default
// registry; pipeline packages call these from var initializers.
func GetCounter(name string) *Counter     { return Default.Counter(name) }
func GetGauge(name string) *Gauge         { return Default.Gauge(name) }
func GetHistogram(name string) *Histogram { return Default.Histogram(name) }

// BucketCount is one non-empty histogram bucket: Count observations at
// most Le.
type BucketCount struct {
	Le    int64 `json:"le"`
	Count int64 `json:"count"`
}

// HistogramSnapshot is a histogram's state at snapshot time. Buckets
// holds only non-empty buckets, cumulative nowhere: each bucket's Count
// is that bucket's own.
type HistogramSnapshot struct {
	Count   int64         `json:"count"`
	Sum     int64         `json:"sum"`
	Buckets []BucketCount `json:"buckets,omitempty"`
}

// Quantile estimates the q-quantile (0 < q <= 1) from the bucket
// distribution, reporting the upper bound of the bucket the quantile
// falls in. Zero when the histogram is empty.
func (s HistogramSnapshot) Quantile(q float64) int64 {
	if s.Count == 0 {
		return 0
	}
	rank := int64(q * float64(s.Count))
	if rank < 1 {
		rank = 1
	}
	var seen int64
	for _, b := range s.Buckets {
		seen += b.Count
		if seen >= rank {
			return b.Le
		}
	}
	return s.Buckets[len(s.Buckets)-1].Le
}

// Mean reports the average observed value, zero when empty.
func (s HistogramSnapshot) Mean() float64 {
	if s.Count == 0 {
		return 0
	}
	return float64(s.Sum) / float64(s.Count)
}

// Snapshot is a point-in-time copy of a registry's instruments. Each
// value is read atomically; values are not mutually simultaneous (see
// the package comment).
type Snapshot struct {
	Counters   map[string]int64             `json:"counters"`
	Gauges     map[string]int64             `json:"gauges,omitempty"`
	Histograms map[string]HistogramSnapshot `json:"histograms,omitempty"`
}

// Snapshot captures every instrument's current value.
func (r *Registry) Snapshot() Snapshot {
	r.mu.RLock()
	defer r.mu.RUnlock()
	s := Snapshot{
		Counters:   make(map[string]int64, len(r.counters)),
		Gauges:     make(map[string]int64, len(r.gauges)),
		Histograms: make(map[string]HistogramSnapshot, len(r.histograms)),
	}
	for name, c := range r.counters {
		s.Counters[name] = c.Value()
	}
	for name, g := range r.gauges {
		s.Gauges[name] = g.Value()
	}
	for name, h := range r.histograms {
		s.Histograms[name] = h.snapshot()
	}
	return s
}

// Delta returns the counter and histogram-count changes since prev
// (this minus prev). Gauges are instantaneous, so the newer value is
// kept as-is. Instruments absent from prev count from zero.
func (s Snapshot) Delta(prev Snapshot) Snapshot {
	d := Snapshot{
		Counters:   make(map[string]int64, len(s.Counters)),
		Gauges:     make(map[string]int64, len(s.Gauges)),
		Histograms: make(map[string]HistogramSnapshot, len(s.Histograms)),
	}
	for name, v := range s.Counters {
		d.Counters[name] = v - prev.Counters[name]
	}
	for name, v := range s.Gauges {
		d.Gauges[name] = v
	}
	for name, h := range s.Histograms {
		p := prev.Histograms[name]
		prevCounts := make(map[int64]int64, len(p.Buckets))
		for _, b := range p.Buckets {
			prevCounts[b.Le] = b.Count
		}
		var buckets []BucketCount
		for _, b := range h.Buckets {
			if n := b.Count - prevCounts[b.Le]; n > 0 {
				buckets = append(buckets, BucketCount{Le: b.Le, Count: n})
			}
		}
		d.Histograms[name] = HistogramSnapshot{Count: h.Count - p.Count, Sum: h.Sum - p.Sum, Buckets: buckets}
	}
	return d
}

// Text renders the snapshot as sorted "name value" lines — counters and
// gauges verbatim, histograms as .count/.sum/.p50/.p99 derived lines —
// the format GET /metrics serves by default.
func (s Snapshot) Text() string {
	var lines []string
	for name, v := range s.Counters {
		lines = append(lines, fmt.Sprintf("%s %d", name, v))
	}
	for name, v := range s.Gauges {
		lines = append(lines, fmt.Sprintf("%s %d", name, v))
	}
	for name, h := range s.Histograms {
		lines = append(lines,
			fmt.Sprintf("%s.count %d", name, h.Count),
			fmt.Sprintf("%s.sum %d", name, h.Sum),
			fmt.Sprintf("%s.p50 %d", name, h.Quantile(0.50)),
			fmt.Sprintf("%s.p99 %d", name, h.Quantile(0.99)),
		)
	}
	sort.Strings(lines)
	var b []byte
	for _, l := range lines {
		b = append(b, l...)
		b = append(b, '\n')
	}
	return string(b)
}

// expvarOnce guards the one-time expvar publication: expvar.Publish
// panics on duplicate names, and tests build many servers per process.
var expvarOnce sync.Once

// PublishExpvar exposes the Default registry under the "p3p" expvar,
// so the standard /debug/vars page carries the pipeline's metrics next
// to the runtime's memstats. Safe to call any number of times.
func PublishExpvar() {
	expvarOnce.Do(func() {
		expvar.Publish("p3p", expvar.Func(func() any { return Default.Snapshot() }))
	})
}
