package obs

import (
	"bytes"
	"context"
	"encoding/json"
	"strings"
	"sync"
	"testing"
)

func TestSpanNilSafety(t *testing.T) {
	var s *Span
	s.SetOutcome("ok")
	s.AddSteps(5)
	s.Annotate("k", "v")
	s.End()
	if s.Duration() != 0 || s.Steps() != 0 || s.Outcome() != "" {
		t.Fatal("nil span reported non-zero state")
	}
	if SpanFromContext(context.Background()) != nil {
		t.Fatal("empty context carried a span")
	}
}

func TestSpanTreeAndTraceEmission(t *testing.T) {
	var buf bytes.Buffer
	SetTraceWriter(&buf)
	defer SetTraceWriter(nil)

	ctx, root := StartSpan(context.Background(), "request")
	root.Annotate("engine", "sql")
	_, child := StartSpan(ctx, "match")
	child.AddSteps(42)
	child.SetOutcome("ok")
	child.End()
	root.SetOutcome("ok")

	// A child ending must not emit; only the root does.
	if buf.Len() != 0 {
		t.Fatalf("child End emitted a trace line: %q", buf.String())
	}
	root.End()
	root.End() // idempotent

	lines := strings.Split(strings.TrimSpace(buf.String()), "\n")
	if len(lines) != 1 {
		t.Fatalf("want exactly 1 trace line, got %d: %q", len(lines), buf.String())
	}
	var tl TraceLine
	if err := json.Unmarshal([]byte(lines[0]), &tl); err != nil {
		t.Fatalf("trace line is not JSON: %v", err)
	}
	if tl.Span != "request" || tl.Outcome != "ok" || tl.Attrs["engine"] != "sql" {
		t.Fatalf("root line wrong: %+v", tl)
	}
	if len(tl.Spans) != 1 || tl.Spans[0].Span != "match" || tl.Spans[0].Steps != 42 {
		t.Fatalf("child line wrong: %+v", tl.Spans)
	}
}

func TestTraceDisabledByDefault(t *testing.T) {
	SetTraceWriter(nil)
	if TracingEnabled() {
		t.Fatal("tracing enabled with no writer")
	}
	_, s := StartSpan(context.Background(), "r")
	s.End() // must not panic or emit
}

// TestConcurrentSpanAnnotation mirrors the MatchAll shape: many workers
// annotate children of one request span while the parent waits. Run
// under -race.
func TestConcurrentSpanAnnotation(t *testing.T) {
	var buf bytes.Buffer
	SetTraceWriter(&buf)
	defer SetTraceWriter(nil)

	ctx, root := StartSpan(context.Background(), "batch")
	var wg sync.WaitGroup
	for w := 0; w < 8; w++ {
		wg.Add(1)
		go func() {
			defer wg.Done()
			_, s := StartSpan(ctx, "policy")
			s.AddSteps(1)
			root.AddSteps(1)
			s.End()
		}()
	}
	wg.Wait()
	root.End()
	var tl TraceLine
	if err := json.Unmarshal(bytes.TrimSpace(buf.Bytes()), &tl); err != nil {
		t.Fatalf("trace line is not JSON: %v", err)
	}
	if tl.Steps != 8 || len(tl.Spans) != 8 {
		t.Fatalf("want 8 steps and 8 children, got %d/%d", tl.Steps, len(tl.Spans))
	}
}

// TestConcurrentTraceLinesDoNotInterleave hammers root spans from many
// goroutines; every output line must be valid standalone JSON.
func TestConcurrentTraceLinesDoNotInterleave(t *testing.T) {
	var mu sync.Mutex
	var buf bytes.Buffer
	SetTraceWriter(writerFunc(func(p []byte) (int, error) {
		mu.Lock()
		defer mu.Unlock()
		return buf.Write(p)
	}))
	defer SetTraceWriter(nil)

	var wg sync.WaitGroup
	for w := 0; w < 8; w++ {
		wg.Add(1)
		go func() {
			defer wg.Done()
			for i := 0; i < 50; i++ {
				_, s := StartSpan(context.Background(), "r")
				s.SetOutcome("ok")
				s.End()
			}
		}()
	}
	wg.Wait()
	mu.Lock()
	defer mu.Unlock()
	lines := strings.Split(strings.TrimSpace(buf.String()), "\n")
	if len(lines) != 8*50 {
		t.Fatalf("want 400 lines, got %d", len(lines))
	}
	for _, l := range lines {
		var tl TraceLine
		if err := json.Unmarshal([]byte(l), &tl); err != nil {
			t.Fatalf("interleaved/corrupt line %q: %v", l, err)
		}
	}
}

type writerFunc func([]byte) (int, error)

func (f writerFunc) Write(p []byte) (int, error) { return f(p) }
