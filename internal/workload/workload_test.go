package workload

import (
	"math"
	"reflect"
	"strings"
	"testing"

	"p3pdb/internal/appel"
	"p3pdb/internal/appelengine"
)

func TestPolicyCorpusShape(t *testing.T) {
	d := Generate(42)
	if len(d.Policies) != 29 {
		t.Fatalf("policies = %d, want 29 (Section 6.2)", len(d.Policies))
	}
	totalStatements := 0
	var sizes []int
	minSize, maxSize, sum := math.MaxInt, 0, 0
	for _, p := range d.Policies {
		if err := p.MustValid(); err != nil {
			t.Errorf("policy %s invalid: %v", p.Name, err)
		}
		totalStatements += len(p.Statements)
		n := len(d.PolicyXML[p.Name])
		sizes = append(sizes, n)
		sum += n
		if n < minSize {
			minSize = n
		}
		if n > maxSize {
			maxSize = n
		}
	}
	if totalStatements != 54 {
		t.Errorf("total statements = %d, want 54", totalStatements)
	}
	// Size calibration: min 1.6 KB, max 11.9 KB, avg 4.4 KB (±10%).
	within := func(got, wantKB float64) bool {
		return math.Abs(got-wantKB*1024) < wantKB*1024*0.10
	}
	if !within(float64(minSize), 1.6) {
		t.Errorf("min size = %d bytes, want ~1.6 KB", minSize)
	}
	if !within(float64(maxSize), 11.9) {
		t.Errorf("max size = %d bytes, want ~11.9 KB", maxSize)
	}
	avg := float64(sum) / 29
	if !within(avg, 4.4) {
		t.Errorf("avg size = %.0f bytes, want ~4.4 KB", avg)
	}
}

func TestDeterminism(t *testing.T) {
	a := Generate(7)
	b := Generate(7)
	if !reflect.DeepEqual(a.PolicyXML, b.PolicyXML) {
		t.Error("same seed must generate identical policies")
	}
	c := Generate(8)
	same := true
	for k := range a.PolicyXML {
		if a.PolicyXML[k] != c.PolicyXML[k] {
			same = false
		}
	}
	if same {
		t.Error("different seeds should differ")
	}
}

func TestReferenceFileCoversEveryPolicy(t *testing.T) {
	d := Generate(42)
	if len(d.RefFile.PolicyRefs) != 29 {
		t.Fatalf("policy refs = %d", len(d.RefFile.PolicyRefs))
	}
	for _, p := range d.Policies {
		pr := d.RefFile.PolicyForURI(d.URIFor(p.Name))
		if pr == nil || pr.PolicyName() != p.Name {
			t.Errorf("URI for %s resolves to %v", p.Name, pr)
		}
		// The exclusion carve-out works.
		if d.RefFile.PolicyForURI("/"+p.Name+"/internal/secret.html") != nil {
			t.Errorf("excluded URI for %s should not resolve", p.Name)
		}
	}
}

func TestPreferencesMatchFigure19(t *testing.T) {
	prefs := JRCPreferences()
	if len(prefs) != 5 {
		t.Fatalf("preferences = %d", len(prefs))
	}
	wantRules := []int{10, 7, 4, 2, 1}
	wantKB := []float64{3.1, 2.8, 2.1, 0.9, 0.3}
	totalRules, totalBytes := 0, 0
	for i, p := range prefs {
		if p.Level != Levels[i] {
			t.Errorf("level order: %s", p.Level)
		}
		if got := len(p.Ruleset.Rules); got != wantRules[i] {
			t.Errorf("%s: rules = %d, want %d", p.Level, got, wantRules[i])
		}
		size := len(p.XML)
		if math.Abs(float64(size)-wantKB[i]*1024) > wantKB[i]*1024*0.12 {
			t.Errorf("%s: size = %d bytes, want ~%.1f KB", p.Level, size, wantKB[i])
		}
		if err := p.Ruleset.Validate(); err != nil {
			t.Errorf("%s: %v", p.Level, err)
		}
		// Every level ends with a catch-all.
		last := p.Ruleset.Rules[len(p.Ruleset.Rules)-1]
		if last.Behavior != "request" || len(last.Body) != 0 {
			t.Errorf("%s: missing catch-all", p.Level)
		}
		totalRules += len(p.Ruleset.Rules)
		totalBytes += size
	}
	// Figure 19's averages: 4.8 rules, 1.9 KB.
	if avg := float64(totalRules) / 5; math.Abs(avg-4.8) > 0.01 {
		t.Errorf("avg rules = %.2f, want 4.8", avg)
	}
	if avg := float64(totalBytes) / 5; math.Abs(avg-1.9*1024) > 1.9*1024*0.12 {
		t.Errorf("avg size = %.0f, want ~1.9 KB", avg)
	}
}

func TestOnlyMediumUsesExactConnectives(t *testing.T) {
	// The Medium level reproduces the Figure 21 blank cell via exact
	// connectives; the other levels must stay XTABLE-executable.
	for _, p := range JRCPreferences() {
		usesExact := strings.Contains(p.XML, "or-exact") || strings.Contains(p.XML, "and-exact")
		if (p.Level == "Medium") != usesExact {
			t.Errorf("%s: usesExact = %v", p.Level, usesExact)
		}
	}
}

func TestPreferencesEvaluateAgainstCorpus(t *testing.T) {
	d := Generate(42)
	engine := appelengine.New()
	fired := map[string]map[string]int{}
	for _, pref := range d.Preferences {
		fired[pref.Level] = map[string]int{}
		for _, pol := range d.Policies {
			dec, err := engine.Match(pref.Ruleset, d.PolicyXML[pol.Name])
			if err != nil {
				t.Fatalf("%s vs %s: %v", pref.Level, pol.Name, err)
			}
			fired[pref.Level][dec.Behavior]++
		}
	}
	// Very Low accepts everything.
	if fired["Very Low"]["request"] != 29 {
		t.Errorf("Very Low should request all 29: %v", fired["Very Low"])
	}
	// Stricter levels block at least as much as looser ones.
	if fired["Very High"]["block"] < fired["High"]["block"] ||
		fired["High"]["block"] < fired["Low"]["block"] {
		t.Errorf("strictness ordering violated: %v", fired)
	}
	// The corpus must exercise both outcomes at the top level.
	if fired["Very High"]["block"] == 0 || fired["Very High"]["request"] == 0 {
		t.Errorf("Very High outcomes degenerate: %v", fired["Very High"])
	}
}

func TestPreferenceXMLRoundTrips(t *testing.T) {
	for _, p := range JRCPreferences() {
		rs, err := appel.Parse(p.XML)
		if err != nil {
			t.Fatalf("%s: %v", p.Level, err)
		}
		if len(rs.Rules) != len(p.Ruleset.Rules) {
			t.Errorf("%s: reparse rule count changed", p.Level)
		}
	}
}
