package workload

import (
	"strconv"
	"strings"

	"p3pdb/internal/appel"
)

// Preference is one JRC-style preference level.
type Preference struct {
	// Level is the sensitivity label from Figure 19.
	Level string
	// Ruleset is the parsed preference.
	Ruleset *appel.Ruleset
	// XML is the serialized preference, the form a client submits.
	XML string
}

// Levels lists the five JRC sensitivity levels, strictest first.
var Levels = []string{"Very High", "High", "Medium", "Low", "Very Low"}

// prefSizeTargets reproduces Figure 19's preference sizes in bytes.
var prefSizeTargets = map[string]int{
	"Very High": 3174, // 3.1 KB
	"High":      2867, // 2.8 KB
	"Medium":    2150, // 2.1 KB
	"Low":       922,  // 0.9 KB
	"Very Low":  307,  // 0.3 KB
}

// prefRuleCounts reproduces Figure 19's rule counts.
var prefRuleCounts = map[string]int{
	"Very High": 10, "High": 7, "Medium": 4, "Low": 2, "Very Low": 1,
}

// Block-rule pool. Levels compose progressively stricter subsets; the
// Medium level (and only it) uses the exact-connective rule R5, whose
// XQuery-to-SQL translation through the XML view exceeds the relational
// engine's statement-complexity limit — reproducing the blank Medium cell
// in the paper's Figure 21.
const (
	r1Telemarketing = `<POLICY><STATEMENT><PURPOSE appel:connective="or">
	  <telemarketing/><contact required="always"/>
	</PURPOSE></STATEMENT></POLICY>`

	r2Recipients = `<POLICY><STATEMENT><RECIPIENT appel:connective="or">
	  <unrelated/><public/>
	</RECIPIENT></STATEMENT></POLICY>`

	r3Profiling = `<POLICY><STATEMENT><PURPOSE appel:connective="or">
	  <individual-decision required="always"/><individual-analysis required="always"/>
	</PURPOSE></STATEMENT></POLICY>`

	r4Retention = `<POLICY><STATEMENT><RETENTION appel:connective="or">
	  <indefinitely/>
	</RETENTION></STATEMENT></POLICY>`

	r5ExactAllowList = `<POLICY><STATEMENT>
	  <PURPOSE appel:connective="or-exact">
	    <current/><admin/><develop/><tailoring/><pseudo-analysis/>
	    <pseudo-decision/><individual-analysis required="opt-in"/>
	    <individual-decision required="opt-in"/>
	  </PURPOSE>
	  <RECIPIENT appel:connective="and-exact"><ours/></RECIPIENT>
	  <DATA-GROUP><DATA ref="*">
	    <CATEGORIES appel:connective="non-or">
	      <health/><financial/><political/><government/><location/>
	    </CATEGORIES>
	  </DATA></DATA-GROUP>
	</STATEMENT></POLICY>`

	r6SensitiveCategories = `<POLICY><STATEMENT><DATA-GROUP><DATA ref="*">
	  <CATEGORIES appel:connective="or"><health/><political/><government/></CATEGORIES>
	</DATA></DATA-GROUP></STATEMENT></POLICY>`

	r7FinancialSharing = `<POLICY><STATEMENT>
	  <RECIPIENT appel:connective="or"><same/><delivery/><other-recipient/></RECIPIENT>
	  <DATA-GROUP><DATA ref="*">
	    <CATEGORIES appel:connective="or"><financial/><purchase/></CATEGORIES>
	  </DATA></DATA-GROUP>
	</STATEMENT></POLICY>`

	r8Location = `<POLICY><STATEMENT><DATA-GROUP><DATA ref="*">
	  <CATEGORIES appel:connective="or"><location/></CATEGORIES>
	</DATA></DATA-GROUP></STATEMENT></POLICY>`

	r9Pseudo = `<POLICY><STATEMENT><PURPOSE appel:connective="or">
	  <pseudo-decision required="always"/><pseudo-analysis required="always"/>
	</PURPOSE></STATEMENT></POLICY>`

	r10Identity = `<POLICY><STATEMENT><DATA-GROUP appel:connective="or">
	  <DATA ref="#user.bdate"/><DATA ref="#user.login"/><DATA ref="#user.cert"/>
	</DATA-GROUP></STATEMENT></POLICY>`
)

var levelRules = map[string][]string{
	"Very Low":  {},
	"Low":       {r2Recipients},
	"Medium":    {r1Telemarketing, r2Recipients, r5ExactAllowList},
	"High":      {r1Telemarketing, r2Recipients, r3Profiling, r4Retention, r6SensitiveCategories, r7FinancialSharing},
	"Very High": {r1Telemarketing, r2Recipients, r3Profiling, r4Retention, r6SensitiveCategories, r7FinancialSharing, r8Location, r9Pseudo, r10Identity},
}

var ruleDescriptions = map[string]string{
	r1Telemarketing:       "Block sites that may call or email me for marketing without my consent",
	r2Recipients:          "Block sites that share my data with unrelated companies or post it publicly",
	r3Profiling:           "Block sites that profile me as an identified individual without opt-in",
	r4Retention:           "Block sites that keep my data indefinitely",
	r5ExactAllowList:      "Allow only routine purposes, first-party recipients, and no sensitive categories",
	r6SensitiveCategories: "Block collection of health, political, or government-id information",
	r7FinancialSharing:    "Block sites that pass my financial or purchase records to third parties",
	r8Location:            "Block collection of my precise location",
	r9Pseudo:              "Block pseudonymous profiling without consent",
	r10Identity:           "Block collection of my birth date, login, or certificates",
}

// JRCPreferences builds the five preference levels of Figure 19. The
// construction is deterministic.
func JRCPreferences() []Preference {
	out := make([]Preference, 0, len(Levels))
	for _, level := range Levels {
		out = append(out, buildPreference(level))
	}
	return out
}

// PreferenceByLevel returns one level's preference.
func PreferenceByLevel(level string) (Preference, bool) {
	for _, p := range JRCPreferences() {
		if p.Level == level {
			return p, true
		}
	}
	return Preference{}, false
}

// PreferenceVariants returns n semantically identical copies of one
// level's preference whose serialized texts all differ (a numbered XML
// comment rides inside the ruleset). Caches keyed on preference text —
// the conversion and decision caches — see n distinct keys while every
// engine sees the same rules, which is exactly the shape a cache
// benchmark needs: a controllable universe of distinct keys with
// identical evaluation cost.
func PreferenceVariants(level string, n int) []Preference {
	base, ok := PreferenceByLevel(level)
	if !ok {
		panic("workload: unknown preference level " + level)
	}
	idx := strings.LastIndex(base.XML, "</appel:RULESET>")
	head, tail := base.XML[:idx], base.XML[idx:]
	out := make([]Preference, n)
	for i := range out {
		out[i] = Preference{
			Level:   base.Level,
			Ruleset: base.Ruleset,
			XML:     head + "  <!-- variant " + strconv.Itoa(i) + " -->\n" + tail,
		}
	}
	return out
}

func buildPreference(level string) Preference {
	var b strings.Builder
	b.WriteString(`<appel:RULESET xmlns:appel="http://www.w3.org/2002/01/APPELv1"` + "\n" +
		`    xmlns="http://www.w3.org/2002/01/P3Pv1">` + "\n")
	for _, rule := range levelRules[level] {
		b.WriteString(`  <appel:RULE behavior="block" description="` +
			ruleDescriptions[rule] + `">` + "\n")
		b.WriteString(rule)
		b.WriteString("\n  </appel:RULE>\n")
	}
	b.WriteString(`  <appel:OTHERWISE behavior="request" description="` +
		otherwiseDescription(level) + `"/>` + "\n")
	b.WriteString(`</appel:RULESET>`)
	xml := padPreference(b.String(), prefSizeTargets[level])
	rs, err := appel.Parse(xml)
	if err != nil {
		// The preferences are static; a parse failure is a programming
		// error, not an input error.
		panic("workload: generated preference does not parse: " + err.Error())
	}
	if got := len(rs.Rules); got != prefRuleCounts[level] {
		panic("workload: generated preference has wrong rule count")
	}
	return Preference{Level: level, Ruleset: rs, XML: xml}
}

func otherwiseDescription(level string) string {
	return "Release my data to any site not blocked above (JRC " + level + " profile)"
}

// padPreference grows the ruleset's XML comment padding toward the target
// size; the JRC suite's documents carry extensive prose comments, which is
// what the paper's sizes measure.
func padPreference(xml string, target int) string {
	if len(xml) >= target {
		return xml
	}
	var b strings.Builder
	b.WriteString(xml)
	idx := strings.LastIndex(xml, "</appel:RULESET>")
	head := xml[:idx]
	var pad strings.Builder
	pad.WriteString("  <!-- ")
	for i := 0; head != "" && len(head)+pad.Len() < target-24; i++ {
		pad.WriteString(fillerWords[(i*5)%len(fillerWords)])
		pad.WriteByte(' ')
	}
	pad.WriteString("-->\n")
	b.Reset()
	b.WriteString(head)
	b.WriteString(pad.String())
	b.WriteString("</appel:RULESET>")
	return b.String()
}
