package workload

import (
	"math"
	"testing"

	"p3pdb/internal/compact"
)

// TestMultipleSeedsStayCalibrated checks that the corpus statistics hold
// across seeds, not just the default: any seed must reproduce the
// Section 6.2 aggregates, because the benchmark harness accepts -seed.
func TestMultipleSeedsStayCalibrated(t *testing.T) {
	if testing.Short() {
		t.Skip("multi-seed generation is slow")
	}
	for _, seed := range []int64{1, 7, 1234, 987654321} {
		d := Generate(seed)
		if len(d.Policies) != 29 {
			t.Fatalf("seed %d: %d policies", seed, len(d.Policies))
		}
		statements, sum := 0, 0
		for _, p := range d.Policies {
			if err := p.MustValid(); err != nil {
				t.Errorf("seed %d: %s invalid: %v", seed, p.Name, err)
			}
			statements += len(p.Statements)
			sum += len(d.PolicyXML[p.Name])
		}
		if statements != 54 {
			t.Errorf("seed %d: statements = %d", seed, statements)
		}
		avg := float64(sum) / 29
		if math.Abs(avg-4.4*1024) > 4.4*1024*0.10 {
			t.Errorf("seed %d: avg size %.0f", seed, avg)
		}
	}
}

// TestCorpusCompactRoundTrip encodes every generated policy as a compact
// policy and parses it back: the compact subsystem must cover the whole
// vocabulary the generator draws from.
func TestCorpusCompactRoundTrip(t *testing.T) {
	d := Generate(42)
	for _, pol := range d.Policies {
		cp, err := compact.FromPolicy(pol, nil)
		if err != nil {
			t.Fatalf("%s: %v", pol.Name, err)
		}
		s, err := compact.Parse(cp)
		if err != nil {
			t.Fatalf("%s: parse %q: %v", pol.Name, cp, err)
		}
		synthetic := s.ToPolicy(pol.Name + "-cp")
		if errs := synthetic.Validate(); len(errs) != 0 {
			t.Errorf("%s: synthetic invalid: %v", pol.Name, errs)
		}
		// The compact form must disclose every purpose of the full
		// policy (by value; required attributes may differ only in the
		// always-vs-absent spelling).
		want := map[string]bool{}
		for _, st := range pol.Statements {
			for _, pv := range st.Purposes {
				want[pv.Value] = true
			}
		}
		got := map[string]bool{}
		for _, p := range s.Purposes {
			got[p.Value] = true
		}
		for v := range want {
			if !got[v] {
				t.Errorf("%s: compact form lost purpose %s (cp: %s)", pol.Name, v, cp)
			}
		}
	}
}

// TestPreferenceLevelsAreOrderedByStrictness asserts a structural
// property the analytics example relies on: each level's block rules are
// a superset of the next looser level's (except Medium, which swaps in
// the exact-connective allow-list rule).
func TestPreferenceLevelsAreOrderedByStrictness(t *testing.T) {
	prefs := map[string]Preference{}
	for _, p := range JRCPreferences() {
		prefs[p.Level] = p
	}
	if len(prefs["Very High"].Ruleset.Rules) <= len(prefs["High"].Ruleset.Rules) {
		t.Error("Very High should have more rules than High")
	}
	if len(prefs["High"].Ruleset.Rules) <= len(prefs["Low"].Ruleset.Rules) {
		t.Error("High should have more rules than Low")
	}
}
