// Package workload synthesizes the paper's experimental data set
// (Section 6.2), which we cannot obtain directly: the original 29 P3P
// policies came from a 2002 crawl of Fortune 1000 web sites and the 5
// preferences from the JRC test suite. The generator reproduces the
// aggregate properties the paper reports — 29 policies between 1.6 and
// 11.9 KBytes averaging 4.4 KBytes with 54 statements in total, and five
// preference levels with 10/7/4/2/1 rules sized 3.1/2.8/2.1/0.9/0.3
// KBytes — deterministically from a seed.
package workload

import (
	"fmt"
	"math/rand"
	"strings"

	"p3pdb/internal/p3p"
	"p3pdb/internal/reffile"
)

// companyNames are the 29 synthetic Fortune-1000-style site owners.
var companyNames = []string{
	"Apex Insurance Group", "Borealis Airlines", "Cascade Retail",
	"Dynamo Energy", "Evergreen Bank", "Foundry Steel Works",
	"Granite Telecom", "Horizon Media", "Ironwood Logistics",
	"Juniper Health Systems", "Keystone Motors", "Lakeshore Foods",
	"Meridian Software", "Northgate Pharmacies", "Orchard Electronics",
	"Pinnacle Hotels", "Quarry Mining", "Redwood Publishing",
	"Summit Outfitters", "Tidewater Shipping", "Umbra Apparel",
	"Vanguard Chemicals", "Westbrook Utilities", "Xenon Semiconductors",
	"Yellowstone Travel", "Zephyr Airways", "Atlas Office Supply",
	"Beacon Financial", "Copperfield Books",
}

// policySizeTargetsKB are the per-policy serialized-size targets in
// KBytes. They reproduce the paper's distribution: min 1.6, max 11.9,
// average 4.4 (sum 127.6).
var policySizeTargetsKB = []float64{
	1.6, 1.9, 2.1, 2.3, 2.5, 2.6, 2.8, 2.9, 3.0, 3.2,
	3.3, 3.5, 3.6, 3.8, 3.9, 4.1, 4.2, 4.4, 4.6, 4.8,
	5.0, 4.9, 5.1, 6.0, 6.0, 6.9, 7.2, 9.5, 11.9,
}

// statementCounts assigns statements per policy, ordered to match the
// size targets (bigger policies carry more statements). The total is 54,
// matching the paper's "54 statements (about 2 statements per policy on
// average)".
var statementCounts = []int{
	1, 1, 1, 1, 1, 1, 1, 1, 1, 1,
	1, 1, 1, 1, 2, 2, 2, 2, 2, 2,
	2, 2, 2, 3, 3, 3, 4, 4, 5,
}

// fillerWords build human-plausible CONSEQUENCE text for size padding.
var fillerWords = []string{
	"we", "use", "this", "information", "to", "provide", "improve",
	"our", "services", "and", "ensure", "your", "orders", "are",
	"processed", "promptly", "including", "shipping", "billing",
	"support", "personalization", "of", "content", "offers", "site",
	"analytics", "fraud", "prevention", "legal", "compliance",
}

// purposePool weights the purposes drawn for generated statements; the
// first statement always collects for the current purpose, like real
// commerce policies.
var purposePool = []string{
	"admin", "develop", "tailoring", "pseudo-analysis", "pseudo-decision",
	"individual-analysis", "individual-decision", "contact", "historical",
	"telemarketing", "other-purpose",
}

var recipientPool = []string{"same", "delivery", "other-recipient", "unrelated", "public"}

// dataRefPool is built from the base data schema: a mix of structure refs
// (which augmentation expands) and leaves.
var dataRefPool = []string{
	"#user.name", "#user.bdate", "#user.gender", "#user.employer",
	"#user.jobtitle", "#user.home-info.postal", "#user.home-info.telecom",
	"#user.home-info.online.email", "#user.home-info.online.uri",
	"#user.business-info.postal", "#user.login", "#user.cert",
	"#dynamic.clickstream", "#dynamic.http", "#dynamic.searchtext",
	"#dynamic.interactionrecord", "#thirdparty.name",
	"#user.home-info.postal.postalcode", "#user.home-info.telecom.telephone",
}

var miscCategoryPool = []string{
	"purchase", "financial", "preference", "content", "state",
	"interactive", "demographic",
}

// Dataset is the generated experimental data set.
type Dataset struct {
	// Policies are the 29 site policies, ordered by ascending size.
	Policies []*p3p.Policy
	// PolicyXML maps policy name to its serialized document, the form a
	// client-centric engine receives.
	PolicyXML map[string]string
	// RefFile maps each site's URI space to its policy.
	RefFile *reffile.RefFile
	// Preferences are the five JRC-style preference levels, strictest
	// first (Very High ... Very Low), mirroring Figure 19's order.
	Preferences []Preference
}

// Generate builds the data set from a seed. The same seed yields the same
// data set byte for byte.
func Generate(seed int64) *Dataset {
	rng := rand.New(rand.NewSource(seed))
	d := &Dataset{PolicyXML: map[string]string{}}
	rf := &reffile.RefFile{}
	for i := range companyNames {
		pol := generatePolicy(rng, i)
		padPolicy(pol, int(policySizeTargetsKB[i]*1024))
		d.Policies = append(d.Policies, pol)
		d.PolicyXML[pol.Name] = pol.String()
		rf.PolicyRefs = append(rf.PolicyRefs, &reffile.PolicyRef{
			About:    "/P3P/Policies.xml#" + pol.Name,
			Includes: []string{"/" + pol.Name + "/*"},
			Excludes: []string{"/" + pol.Name + "/internal/*"},
			// Each site's cookies are prefixed with its policy name, so
			// the protocol loop's cookie checks resolve through the
			// reference file like IE6's cookie matching did.
			CookieIncludes: []string{pol.Name + "-*"},
			CookieExcludes: []string{pol.Name + "-internal-*"},
		})
	}
	d.RefFile = rf
	d.Preferences = JRCPreferences()
	return d
}

// URIFor returns a site URI covered by the named policy, for driving the
// reference-file path.
func (d *Dataset) URIFor(policyName string) string {
	return "/" + policyName + "/index.html"
}

// CookieFor returns a cookie name covered by the named policy, for
// driving the reference file's cookie patterns.
func (d *Dataset) CookieFor(policyName string) string {
	return policyName + "-session"
}

// slug converts a company name into a policy name.
func slug(name string) string {
	return strings.ReplaceAll(strings.ToLower(name), " ", "-")
}

func generatePolicy(rng *rand.Rand, idx int) *p3p.Policy {
	name := companyNames[idx]
	s := slug(name)
	pol := &p3p.Policy{
		Name:    s,
		Discuri: "http://www." + s + ".example.com/privacy.html",
		Opturi:  "http://www." + s + ".example.com/opt.html",
		Entity: &p3p.Entity{
			Name:    name,
			Street:  fmt.Sprintf("%d Commerce Way", 100+idx),
			City:    "Armonk",
			Country: "USA",
			Email:   "privacy@" + s + ".example.com",
		},
		Access: p3p.AccessValues[rng.Intn(len(p3p.AccessValues))],
	}
	if rng.Intn(3) == 0 {
		pol.Disputes = append(pol.Disputes, &p3p.Dispute{
			ResolutionType:   "independent",
			Service:          "http://privacyseal.example.org",
			ShortDescription: "Independent privacy seal program",
			Remedies:         []string{"correct"},
		})
	}
	nStatements := statementCounts[idx]
	for si := 0; si < nStatements; si++ {
		pol.Statements = append(pol.Statements, generateStatement(rng, si))
	}
	return pol
}

func generateStatement(rng *rand.Rand, si int) *p3p.Statement {
	st := &p3p.Statement{
		Retention: p3p.Retentions[rng.Intn(len(p3p.Retentions))],
	}
	// Purposes: the first statement is always transactional.
	if si == 0 {
		st.Purposes = append(st.Purposes, p3p.PurposeValue{Value: "current"})
		st.Retention = "stated-purpose"
	}
	seen := map[string]bool{"current": si == 0}
	for n := rng.Intn(3) + 1; n > 0; n-- {
		v := purposePool[rng.Intn(len(purposePool))]
		if seen[v] {
			continue
		}
		seen[v] = true
		pv := p3p.PurposeValue{Value: v}
		switch rng.Intn(4) {
		case 0:
			pv.Required = "opt-in"
		case 1:
			pv.Required = "opt-out"
		}
		st.Purposes = append(st.Purposes, pv)
	}
	if len(st.Purposes) == 0 {
		st.Purposes = append(st.Purposes, p3p.PurposeValue{Value: "current"})
	}
	// Recipients: always ours, sometimes others.
	st.Recipients = append(st.Recipients, p3p.RecipientValue{Value: "ours"})
	if rng.Intn(2) == 0 {
		r := recipientPool[rng.Intn(len(recipientPool))]
		rv := p3p.RecipientValue{Value: r}
		if rng.Intn(3) == 0 {
			rv.Required = "opt-in"
		}
		st.Recipients = append(st.Recipients, rv)
	}
	// Data group.
	dg := &p3p.DataGroup{}
	nData := rng.Intn(4) + 2
	seenRef := map[string]bool{}
	for n := 0; n < nData; n++ {
		ref := dataRefPool[rng.Intn(len(dataRefPool))]
		if seenRef[ref] {
			continue
		}
		seenRef[ref] = true
		dg.Data = append(dg.Data, &p3p.Data{Ref: ref, Optional: rng.Intn(4) == 0})
	}
	// Most statements also collect miscdata with declared categories.
	if rng.Intn(3) != 0 {
		cats := []string{miscCategoryPool[rng.Intn(len(miscCategoryPool))]}
		if rng.Intn(2) == 0 {
			c := miscCategoryPool[rng.Intn(len(miscCategoryPool))]
			if c != cats[0] {
				cats = append(cats, c)
			}
		}
		dg.Data = append(dg.Data, &p3p.Data{Ref: "#dynamic.miscdata", Categories: cats})
	}
	st.DataGroups = append(st.DataGroups, dg)
	return st
}

// padPolicy grows the policy's CONSEQUENCE text until the serialized
// document reaches the target byte size (within one filler sentence).
// Real crawled policies owe most of their size variance to prose, so
// padding prose is the faithful dimension to calibrate on.
func padPolicy(pol *p3p.Policy, targetBytes int) {
	fill := fillerSentence(targetBytes) // deterministic in target
	for i := 0; ; i++ {
		cur := len(pol.String())
		if cur >= targetBytes {
			return
		}
		st := pol.Statements[i%len(pol.Statements)]
		deficit := targetBytes - cur
		chunk := fill
		if deficit < len(fill) {
			chunk = fill[:deficit]
		}
		if st.Consequence == "" {
			st.Consequence = strings.TrimSpace(chunk)
		} else {
			st.Consequence += " " + strings.TrimSpace(chunk)
		}
	}
}

// fillerSentence builds a deterministic run of filler prose roughly 160
// bytes long, varied by the target so policies do not share text.
func fillerSentence(salt int) string {
	var b strings.Builder
	for i := 0; b.Len() < 160; i++ {
		w := fillerWords[(i*7+salt)%len(fillerWords)]
		if b.Len() > 0 {
			b.WriteByte(' ')
		}
		b.WriteString(w)
	}
	return b.String() + "."
}
