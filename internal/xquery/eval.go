package xquery

import (
	"fmt"
	"strings"

	"p3pdb/internal/faultkit"
	"p3pdb/internal/obs"
	"p3pdb/internal/resource"
	"p3pdb/internal/xmldom"
)

// Value is the XPath 1.0-style value union the evaluator works with.
type Value struct {
	kind    valueKind
	nodes   []*xmldom.Node
	strs    []string // attribute-value sets
	str     string
	boolean bool
}

type valueKind uint8

const (
	vNodes valueKind = iota
	vStrs
	vStr
	vBool
)

func nodesVal(ns []*xmldom.Node) Value { return Value{kind: vNodes, nodes: ns} }
func strsVal(ss []string) Value        { return Value{kind: vStrs, strs: ss} }
func strVal(s string) Value            { return Value{kind: vStr, str: s} }
func boolVal(b bool) Value             { return Value{kind: vBool, boolean: b} }

// ebv is the effective boolean value.
func (v Value) ebv() bool {
	switch v.kind {
	case vNodes:
		return len(v.nodes) > 0
	case vStrs:
		return len(v.strs) > 0
	case vStr:
		return v.str != ""
	case vBool:
		return v.boolean
	}
	return false
}

// stringValue flattens the value to a single string (first item of a set,
// per XPath 1.0's string() of a node-set).
func (v Value) stringValue() string {
	switch v.kind {
	case vNodes:
		if len(v.nodes) == 0 {
			return ""
		}
		return v.nodes[0].Text
	case vStrs:
		if len(v.strs) == 0 {
			return ""
		}
		return v.strs[0]
	case vStr:
		return v.str
	case vBool:
		if v.boolean {
			return "true"
		}
		return "false"
	}
	return ""
}

// stringSet renders the value as a set of strings for existential
// comparison.
func (v Value) stringSet() []string {
	switch v.kind {
	case vNodes:
		out := make([]string, len(v.nodes))
		for i, n := range v.nodes {
			out[i] = n.Text
		}
		return out
	case vStrs:
		return v.strs
	case vStr:
		return []string{v.str}
	case vBool:
		return []string{v.stringValue()}
	}
	return nil
}

// Evaluator evaluates generated queries against a document resolver.
type Evaluator struct {
	resolve func(string) (*xmldom.Node, error)
	// meter, when set, is charged one step per node visited by path
	// evaluation, bounding adversarially deep queries and honoring
	// cancellation. Nil means ungoverned.
	meter *resource.Meter
	// visited counts nodes examined by path evaluation locally (an
	// evaluator serves one goroutine); Run flushes the delta to the obs
	// registry, keeping the per-node path free of shared atomics.
	visited int64
}

// Observability counters for the native XQuery engine (obs registry,
// DESIGN.md §8).
var (
	obsQueries      = obs.GetCounter("xquery.queries")
	obsQueryErrors  = obs.GetCounter("xquery.query_errors")
	obsNodesVisited = obs.GetCounter("xquery.nodes_visited")
)

// NewEvaluator wraps a document resolver (typically xmlstore.Resolver).
func NewEvaluator(resolve func(string) (*xmldom.Node, error)) *Evaluator {
	return &Evaluator{resolve: resolve}
}

// WithMeter sets the evaluator's resource meter and returns the
// evaluator, for chaining at construction.
func (ev *Evaluator) WithMeter(m *resource.Meter) *Evaluator {
	ev.meter = m
	return ev
}

// Run evaluates the query and returns the name of the constructed element:
// Then when the condition holds, Else otherwise (empty string means the
// empty sequence, i.e. the rule did not fire).
func (ev *Evaluator) Run(q *Query) (string, error) {
	obsQueries.Inc()
	before := ev.visited
	defer func() { obsNodesVisited.Add(ev.visited - before) }()
	if err := faultkit.Inject(faultkit.PointXQueryEval); err != nil {
		obsQueryErrors.Inc()
		return "", err
	}
	v, err := ev.eval(q.Cond, nil)
	if err != nil {
		obsQueryErrors.Inc()
		return "", err
	}
	if v.ebv() {
		return q.Then, nil
	}
	return q.Else, nil
}

// eval evaluates an expression; ctx is the context node for relative
// paths (nil at the top level, where only absolute paths make sense).
func (ev *Evaluator) eval(e Expr, ctx *xmldom.Node) (Value, error) {
	switch x := e.(type) {
	case *Literal:
		return strVal(x.Value), nil

	case *NotExpr:
		v, err := ev.eval(x.Operand, ctx)
		if err != nil {
			return Value{}, err
		}
		return boolVal(!v.ebv()), nil

	case *BinaryExpr:
		l, err := ev.eval(x.Left, ctx)
		if err != nil {
			return Value{}, err
		}
		switch x.Op {
		case "and":
			if !l.ebv() {
				return boolVal(false), nil
			}
			r, err := ev.eval(x.Right, ctx)
			if err != nil {
				return Value{}, err
			}
			return boolVal(r.ebv()), nil
		case "or":
			if l.ebv() {
				return boolVal(true), nil
			}
			r, err := ev.eval(x.Right, ctx)
			if err != nil {
				return Value{}, err
			}
			return boolVal(r.ebv()), nil
		case "=", "!=":
			r, err := ev.eval(x.Right, ctx)
			if err != nil {
				return Value{}, err
			}
			// Existential comparison over the operand sets.
			found := false
			for _, a := range l.stringSet() {
				for _, b := range r.stringSet() {
					if (x.Op == "=") == (a == b) {
						found = true
						break
					}
				}
				if found {
					break
				}
			}
			return boolVal(found), nil
		}
		return Value{}, fmt.Errorf("xquery: unknown operator %s", x.Op)

	case *FuncExpr:
		args := make([]Value, len(x.Args))
		for i, a := range x.Args {
			v, err := ev.eval(a, ctx)
			if err != nil {
				return Value{}, err
			}
			args[i] = v
		}
		switch x.Name {
		case "starts-with":
			if len(args) != 2 {
				return Value{}, fmt.Errorf("xquery: starts-with expects 2 arguments")
			}
			return boolVal(strings.HasPrefix(args[0].stringValue(), args[1].stringValue())), nil
		case "concat":
			var b strings.Builder
			for _, a := range args {
				b.WriteString(a.stringValue())
			}
			return strVal(b.String()), nil
		}
		return Value{}, fmt.Errorf("xquery: unknown function %s", x.Name)

	case *PathExpr:
		return ev.evalPath(x, ctx)
	}
	return Value{}, fmt.Errorf("xquery: cannot evaluate %T", e)
}

func (ev *Evaluator) evalPath(p *PathExpr, ctx *xmldom.Node) (Value, error) {
	var current []*xmldom.Node
	if p.Document != "" {
		root, err := ev.resolve(p.Document)
		if err != nil {
			return Value{}, err
		}
		// document() yields the document node; the first child step
		// selects the root element by name.
		doc := &xmldom.Node{Name: "#document", Children: []*xmldom.Node{root}}
		current = []*xmldom.Node{doc}
	} else {
		if ctx == nil {
			return Value{}, fmt.Errorf("xquery: relative path outside a predicate")
		}
		current = []*xmldom.Node{ctx}
	}
	for i, st := range p.Steps {
		// Charge the nodes this step will examine; path evaluation is
		// the evaluator's only unbounded loop (predicates recurse back
		// through here), so this one charge point governs everything.
		ev.visited += int64(len(current))
		if err := ev.meter.Step(int64(len(current))); err != nil {
			return Value{}, err
		}
		if st.Axis == AxisAttribute {
			if i != len(p.Steps)-1 {
				return Value{}, fmt.Errorf("xquery: attribute step must be final")
			}
			var vals []string
			for _, n := range current {
				if v, ok := n.Attr(st.Name); ok {
					vals = append(vals, v)
				} else if def, has := attrDefault(n, st.Name); has {
					// P3P attribute defaulting, mirroring the other
					// engines: required defaults to always, optional
					// to no.
					vals = append(vals, def)
				}
			}
			return strsVal(vals), nil
		}
		var next []*xmldom.Node
		for _, n := range current {
			switch st.Axis {
			case AxisSelf:
				if st.Name == "*" || n.Name == st.Name {
					next = append(next, n)
				}
			case AxisChild:
				for _, c := range n.Children {
					if st.Name == "*" || c.Name == st.Name {
						next = append(next, c)
					}
				}
			}
		}
		// Apply predicates.
		for _, pred := range st.Preds {
			var kept []*xmldom.Node
			for _, n := range next {
				v, err := ev.eval(pred, n)
				if err != nil {
					return Value{}, err
				}
				if v.ebv() {
					kept = append(kept, n)
				}
			}
			next = kept
		}
		current = next
		if len(current) == 0 {
			break
		}
	}
	return nodesVal(current), nil
}

// attrDefault supplies P3P attribute defaults so that XQuery matching
// agrees with the APPEL engine and the SQL translations on policies that
// omit defaulted attributes.
func attrDefault(n *xmldom.Node, attr string) (string, bool) {
	switch attr {
	case "required":
		return "always", true
	case "optional":
		if n.Name == "DATA" {
			return "no", true
		}
	}
	return "", false
}
