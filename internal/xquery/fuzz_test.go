package xquery

import (
	"testing"

	"p3pdb/internal/xmldom"
)

// FuzzParse checks the XQuery parser never panics, and that anything it
// accepts also evaluates without panicking against a small document.
func FuzzParse(f *testing.F) {
	seeds := []string{
		`if (document("d")) then <a/> else ()`,
		`if (document("d")[POLICY[STATEMENT[PURPOSE[admin or contact[@required = "always"]]]]]) then <block/> else ()`,
		`if (document("d")/POLICY/STATEMENT/PURPOSE/*[self::current]) then <a/>`,
		`if (document("d")[POLICY[not(STATEMENT)]]) then <a/> else <b/>`,
		`if (starts-with("ab", concat("a", ""))) then <a/> else ()`,
		`if document`, `if (()) then <a/>`, `if (document("d")/@x/@y) then <a/>`,
	}
	for _, s := range seeds {
		f.Add(s)
	}
	doc, err := xmldom.ParseString(
		`<POLICY><STATEMENT><PURPOSE><current/><contact required="opt-in"/></PURPOSE></STATEMENT></POLICY>`)
	if err != nil {
		f.Fatal(err)
	}
	resolve := func(string) (*xmldom.Node, error) { return doc, nil }
	f.Fuzz(func(t *testing.T, src string) {
		q, err := Parse(src)
		if err != nil {
			return
		}
		// Accepted queries must evaluate without panicking; evaluation
		// errors are fine (e.g. relative paths at the top level).
		_, _ = NewEvaluator(resolve).Run(q)
	})
}
