package xquery

import (
	"testing"

	"p3pdb/internal/xmlstore"
)

func storeWith(t *testing.T, name, doc string) *xmlstore.Store {
	t.Helper()
	s := xmlstore.New()
	if err := s.PutXML(name, doc); err != nil {
		t.Fatal(err)
	}
	return s
}

func evalBool(t *testing.T, store *xmlstore.Store, src string) bool {
	t.Helper()
	q, err := Parse(`if (` + src + `) then <yes/> else ()`)
	if err != nil {
		t.Fatalf("Parse(%s): %v", src, err)
	}
	out, err := NewEvaluator(store.Resolver(nil)).Run(q)
	if err != nil {
		t.Fatalf("Run(%s): %v", src, err)
	}
	return out == "yes"
}

func TestNotEquals(t *testing.T) {
	store := storeWith(t, "d", `<POLICY><STATEMENT><PURPOSE><contact required="opt-in"/></PURPOSE></STATEMENT></POLICY>`)
	if !evalBool(t, store, `document("d")/POLICY/STATEMENT/PURPOSE/contact/@required != "always"`) {
		t.Error("!= should hold for opt-in vs always")
	}
	if evalBool(t, store, `document("d")/POLICY/STATEMENT/PURPOSE/contact/@required != "opt-in"`) {
		t.Error("!= should not hold for equal values")
	}
}

func TestMultiStepRelativePathInPredicate(t *testing.T) {
	store := storeWith(t, "d", `<POLICY><STATEMENT><DATA-GROUP><DATA ref="#x"/></DATA-GROUP></STATEMENT></POLICY>`)
	if !evalBool(t, store, `document("d")/POLICY[STATEMENT/DATA-GROUP/DATA]`) {
		t.Error("multi-step relative path should match")
	}
	if evalBool(t, store, `document("d")/POLICY[STATEMENT/PURPOSE/DATA]`) {
		t.Error("broken chain should not match")
	}
}

func TestSelfAxisNameMismatch(t *testing.T) {
	store := storeWith(t, "d", `<POLICY><STATEMENT><PURPOSE><current/></PURPOSE></STATEMENT></POLICY>`)
	if !evalBool(t, store, `document("d")/POLICY/STATEMENT/PURPOSE/*[self::current]`) {
		t.Error("self::current should match the current element")
	}
	if evalBool(t, store, `document("d")/POLICY/STATEMENT/PURPOSE/*[self::admin]`) {
		t.Error("self::admin should not match current")
	}
}

func TestFunctions(t *testing.T) {
	store := storeWith(t, "d", `<POLICY><STATEMENT><DATA-GROUP><DATA ref="#user.name.given"/></DATA-GROUP></STATEMENT></POLICY>`)
	if !evalBool(t, store, `document("d")/POLICY/STATEMENT/DATA-GROUP/DATA[starts-with(@ref, "#user.name")]`) {
		t.Error("starts-with on attribute")
	}
	if !evalBool(t, store, `document("d")/POLICY/STATEMENT/DATA-GROUP/DATA[starts-with("#user.name.given.x", concat(@ref, "."))]`) {
		t.Error("starts-with over concat")
	}
	if evalBool(t, store, `document("d")/POLICY/STATEMENT/DATA-GROUP/DATA[starts-with(@ref, "#user.bdate")]`) {
		t.Error("starts-with false case")
	}
}

func TestNotOfEmptyPath(t *testing.T) {
	store := storeWith(t, "d", `<POLICY><STATEMENT/></POLICY>`)
	if !evalBool(t, store, `document("d")/POLICY[not(STATEMENT/PURPOSE)]`) {
		t.Error("not() of empty node-set should be true")
	}
}

func TestEvalErrors(t *testing.T) {
	store := storeWith(t, "d", `<POLICY/>`)
	bad := []string{
		// concat has no boolean form at the top level... it does: ebv of
		// string; that's legal. Use a genuinely failing one: relative
		// path at the top level has no context.
		`if (POLICY) then <a/> else ()`,
	}
	for _, src := range bad {
		q, err := Parse(src)
		if err != nil {
			continue // parse-time rejection also acceptable
		}
		if _, err := NewEvaluator(store.Resolver(nil)).Run(q); err == nil {
			t.Errorf("Run(%s): expected error", src)
		}
	}
}

func TestStringEBV(t *testing.T) {
	store := storeWith(t, "d", `<POLICY/>`)
	if !evalBool(t, store, `"nonempty"`) {
		t.Error("non-empty string is true")
	}
	if evalBool(t, store, `""`) {
		t.Error("empty string is false")
	}
	if !evalBool(t, store, `concat("", "x")`) {
		t.Error("concat result ebv")
	}
}
