package xquery

import (
	"fmt"
	"strings"
	"unicode"
)

// xqToken kinds.
type xqTokKind uint8

const (
	xtEOF xqTokKind = iota
	xtName
	xtString
	xtSym
)

type xqToken struct {
	kind xqTokKind
	text string
	pos  int
}

func lex(src string) ([]xqToken, error) {
	var out []xqToken
	i := 0
	for i < len(src) {
		c := src[i]
		switch {
		case c == ' ' || c == '\t' || c == '\n' || c == '\r':
			i++
		case c == '"' || c == '\'':
			quote := c
			j := i + 1
			var b strings.Builder
			for j < len(src) && src[j] != quote {
				b.WriteByte(src[j])
				j++
			}
			if j >= len(src) {
				return nil, fmt.Errorf("xquery: unterminated string at %d", i)
			}
			out = append(out, xqToken{xtString, b.String(), i})
			i = j + 1
		case isNameStart(rune(c)):
			j := i
			for j < len(src) && isNameChar(rune(src[j])) {
				j++
			}
			out = append(out, xqToken{xtName, src[i:j], i})
			i = j
		default:
			// Multi-char symbols.
			if strings.HasPrefix(src[i:], "::") || strings.HasPrefix(src[i:], "!=") ||
				strings.HasPrefix(src[i:], "/>") {
				out = append(out, xqToken{xtSym, src[i : i+2], i})
				i += 2
				continue
			}
			switch c {
			case '(', ')', '[', ']', '/', '@', '=', ',', '<', '>', '*':
				out = append(out, xqToken{xtSym, string(c), i})
				i++
			default:
				return nil, fmt.Errorf("xquery: unexpected character %q at %d", c, i)
			}
		}
	}
	out = append(out, xqToken{xtEOF, "", len(src)})
	return out, nil
}

func isNameStart(r rune) bool { return r == '_' || r == '#' || unicode.IsLetter(r) }
func isNameChar(r rune) bool {
	return r == '_' || r == '-' || r == '.' || r == '#' || unicode.IsLetter(r) || unicode.IsDigit(r)
}

type xqParser struct {
	toks []xqToken
	pos  int
	src  string
}

func (p *xqParser) peek() xqToken { return p.toks[p.pos] }
func (p *xqParser) advance() xqToken {
	t := p.toks[p.pos]
	if t.kind != xtEOF {
		p.pos++
	}
	return t
}

func (p *xqParser) errorf(format string, args ...any) error {
	return fmt.Errorf("xquery: %s at offset %d", fmt.Sprintf(format, args...), p.peek().pos)
}

func (p *xqParser) expectSym(s string) error {
	t := p.peek()
	if t.kind == xtSym && t.text == s {
		p.advance()
		return nil
	}
	return p.errorf("expected %q, found %q", s, t.text)
}

func (p *xqParser) acceptSym(s string) bool {
	t := p.peek()
	if t.kind == xtSym && t.text == s {
		p.advance()
		return true
	}
	return false
}

func (p *xqParser) acceptName(name string) bool {
	t := p.peek()
	if t.kind == xtName && t.text == name {
		p.advance()
		return true
	}
	return false
}

// Parse parses one generated query:
//
//	if (EXPR) then <name/> [else (<name/> | ())]
func Parse(src string) (*Query, error) {
	toks, err := lex(src)
	if err != nil {
		return nil, err
	}
	p := &xqParser{toks: toks, src: src}
	if !p.acceptName("if") {
		return nil, p.errorf("query must start with if")
	}
	if err := p.expectSym("("); err != nil {
		return nil, err
	}
	cond, err := p.parseExpr()
	if err != nil {
		return nil, err
	}
	if err := p.expectSym(")"); err != nil {
		return nil, err
	}
	if !p.acceptName("then") {
		return nil, p.errorf("expected then")
	}
	q := &Query{Cond: cond}
	q.Then, err = p.parseConstructor()
	if err != nil {
		return nil, err
	}
	if p.acceptName("else") {
		q.Else, err = p.parseConstructor()
		if err != nil {
			return nil, err
		}
	}
	if p.peek().kind != xtEOF {
		return nil, p.errorf("unexpected %q after query", p.peek().text)
	}
	return q, nil
}

// parseConstructor parses <name/> or the empty sequence ().
func (p *xqParser) parseConstructor() (string, error) {
	if p.acceptSym("(") {
		if err := p.expectSym(")"); err != nil {
			return "", err
		}
		return "", nil
	}
	if err := p.expectSym("<"); err != nil {
		return "", err
	}
	t := p.peek()
	if t.kind != xtName {
		return "", p.errorf("expected element name in constructor")
	}
	p.advance()
	if err := p.expectSym("/>"); err != nil {
		return "", err
	}
	return t.text, nil
}

func (p *xqParser) parseExpr() (Expr, error) { return p.parseOr() }

func (p *xqParser) parseOr() (Expr, error) {
	left, err := p.parseAnd()
	if err != nil {
		return nil, err
	}
	for p.acceptName("or") {
		right, err := p.parseAnd()
		if err != nil {
			return nil, err
		}
		left = &BinaryExpr{Op: "or", Left: left, Right: right}
	}
	return left, nil
}

func (p *xqParser) parseAnd() (Expr, error) {
	left, err := p.parseCmp()
	if err != nil {
		return nil, err
	}
	for p.acceptName("and") {
		right, err := p.parseCmp()
		if err != nil {
			return nil, err
		}
		left = &BinaryExpr{Op: "and", Left: left, Right: right}
	}
	return left, nil
}

func (p *xqParser) parseCmp() (Expr, error) {
	left, err := p.parseUnary()
	if err != nil {
		return nil, err
	}
	t := p.peek()
	if t.kind == xtSym && (t.text == "=" || t.text == "!=") {
		p.advance()
		right, err := p.parseUnary()
		if err != nil {
			return nil, err
		}
		return &BinaryExpr{Op: t.text, Left: left, Right: right}, nil
	}
	return left, nil
}

func (p *xqParser) parseUnary() (Expr, error) {
	t := p.peek()
	switch {
	case t.kind == xtString:
		p.advance()
		return &Literal{Value: t.text}, nil

	case t.kind == xtSym && t.text == "(":
		p.advance()
		e, err := p.parseExpr()
		if err != nil {
			return nil, err
		}
		if err := p.expectSym(")"); err != nil {
			return nil, err
		}
		return e, nil

	case t.kind == xtName && t.text == "not" && p.lookSym(1, "("):
		p.advance()
		p.advance()
		e, err := p.parseExpr()
		if err != nil {
			return nil, err
		}
		if err := p.expectSym(")"); err != nil {
			return nil, err
		}
		return &NotExpr{Operand: e}, nil

	case t.kind == xtName && (t.text == "starts-with" || t.text == "concat") && p.lookSym(1, "("):
		p.advance()
		p.advance()
		fn := &FuncExpr{Name: t.text}
		for {
			a, err := p.parseExpr()
			if err != nil {
				return nil, err
			}
			fn.Args = append(fn.Args, a)
			if !p.acceptSym(",") {
				break
			}
		}
		if err := p.expectSym(")"); err != nil {
			return nil, err
		}
		return fn, nil

	default:
		return p.parsePath()
	}
}

func (p *xqParser) lookSym(ahead int, s string) bool {
	i := p.pos + ahead
	return i < len(p.toks) && p.toks[i].kind == xtSym && p.toks[i].text == s
}

// parsePath parses a location path: document("x")/A[...]/B, a relative
// A[...]/B path, @attr, or a self::name test.
func (p *xqParser) parsePath() (Expr, error) {
	path := &PathExpr{}
	t := p.peek()
	if t.kind == xtName && t.text == "document" && p.lookSym(1, "(") {
		p.advance()
		p.advance()
		arg := p.peek()
		if arg.kind != xtString {
			return nil, p.errorf("document() requires a string literal")
		}
		p.advance()
		if err := p.expectSym(")"); err != nil {
			return nil, err
		}
		path.Document = arg.text
		// Predicates directly on document() (the Figure 18 shape) apply
		// to the document node: model them as a self::* step.
		if p.peek().kind == xtSym && p.peek().text == "[" {
			st := Step{Axis: AxisSelf, Name: "*"}
			for p.acceptSym("[") {
				pred, err := p.parseExpr()
				if err != nil {
					return nil, err
				}
				if err := p.expectSym("]"); err != nil {
					return nil, err
				}
				st.Preds = append(st.Preds, pred)
			}
			path.Steps = append(path.Steps, st)
		}
		// Steps after document() are introduced by '/'.
		for p.acceptSym("/") {
			st, err := p.parseStep()
			if err != nil {
				return nil, err
			}
			path.Steps = append(path.Steps, st)
		}
		return path, validateSteps(path.Steps)
	}
	// Relative path.
	for {
		st, err := p.parseStep()
		if err != nil {
			return nil, err
		}
		path.Steps = append(path.Steps, st)
		if !p.acceptSym("/") {
			break
		}
	}
	return path, validateSteps(path.Steps)
}

// validateSteps rejects paths that continue past an attribute step.
func validateSteps(steps []Step) error {
	for i, st := range steps {
		if st.Axis == AxisAttribute && i != len(steps)-1 {
			return fmt.Errorf("xquery: attribute step must be the final step")
		}
	}
	return nil
}

// parseStep parses one step: [self::]name[pred]*, *[pred]*, or @name.
func (p *xqParser) parseStep() (Step, error) {
	st := Step{Axis: AxisChild}
	if p.acceptSym("@") {
		t := p.peek()
		if t.kind != xtName {
			return st, p.errorf("expected attribute name after @")
		}
		p.advance()
		st.Axis = AxisAttribute
		st.Name = t.text
		return st, nil
	}
	t := p.peek()
	if t.kind == xtName && t.text == "self" && p.lookSym(1, "::") {
		p.advance()
		p.advance()
		st.Axis = AxisSelf
		t = p.peek()
	}
	switch {
	case t.kind == xtName:
		p.advance()
		st.Name = t.text
	case t.kind == xtSym && t.text == "*":
		p.advance()
		st.Name = "*"
	default:
		return st, p.errorf("expected name test, found %q", t.text)
	}
	for p.acceptSym("[") {
		pred, err := p.parseExpr()
		if err != nil {
			return st, err
		}
		if err := p.expectSym("]"); err != nil {
			return st, err
		}
		st.Preds = append(st.Preds, pred)
	}
	return st, nil
}
