// Package xquery implements the XQuery/XPath subset that the APPEL
// translation algorithm of the paper's Section 5.6 (Figure 17) generates:
// an if/then/else whose condition is an XPath over document(), with child
// steps, predicates, attribute comparisons, and/or/not, and the
// starts-with/concat functions used for hierarchical data references.
//
// The package provides a parser, a native evaluator over the xmlstore
// (variation 3 of the paper's architecture), and the AST consumed by the
// xtable package's XQuery-to-SQL translation (variation 2).
package xquery

// Query is the translated form of one APPEL rule:
//
//	if (<cond>) then <behavior/> else ()
type Query struct {
	Cond Expr
	// Then is the element name constructed when the condition holds
	// (the rule behavior); empty means the empty sequence.
	Then string
	// Else is the element name for the else branch; empty means ().
	Else string
}

// Expr is an XPath expression node.
type Expr interface{ isExpr() }

// BinaryExpr applies "and", "or", "=", or "!=".
type BinaryExpr struct {
	Op    string
	Left  Expr
	Right Expr
}

func (*BinaryExpr) isExpr() {}

// NotExpr is the not() function.
type NotExpr struct{ Operand Expr }

func (*NotExpr) isExpr() {}

// FuncExpr is a function call: starts-with or concat.
type FuncExpr struct {
	Name string
	Args []Expr
}

func (*FuncExpr) isExpr() {}

// Literal is a quoted string.
type Literal struct{ Value string }

func (*Literal) isExpr() {}

// PathExpr is a location path, optionally rooted at document("name").
type PathExpr struct {
	// Document is the document() argument; empty for relative paths.
	Document string
	Steps    []Step
}

func (*PathExpr) isExpr() {}

// Axis enumerates the supported XPath axes.
type Axis uint8

// Supported axes.
const (
	AxisChild Axis = iota
	AxisSelf
	AxisAttribute
)

// Step is one location step: an axis, a name test ("*" is the wildcard),
// and zero or more predicates.
type Step struct {
	Axis  Axis
	Name  string
	Preds []Expr
}
