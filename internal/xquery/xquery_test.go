package xquery

import (
	"strings"
	"testing"

	"p3pdb/internal/p3p"
	"p3pdb/internal/xmldom"
	"p3pdb/internal/xmlstore"
)

func storeWithVolga(t testing.TB) *xmlstore.Store {
	t.Helper()
	s := xmlstore.New()
	if err := s.PutXML("applicable-policy", p3p.VolgaPolicyXML); err != nil {
		t.Fatal(err)
	}
	return s
}

func run(t *testing.T, store *xmlstore.Store, src string) string {
	t.Helper()
	q, err := Parse(src)
	if err != nil {
		t.Fatalf("Parse(%s): %v", src, err)
	}
	ev := NewEvaluator(store.Resolver(nil))
	out, err := ev.Run(q)
	if err != nil {
		t.Fatalf("Run(%s): %v", src, err)
	}
	return out
}

func TestFigure18Shape(t *testing.T) {
	// The paper's Figure 18 translation of Jane's simplified rule.
	src := `if (document("applicable-policy")
	  [POLICY
	    [STATEMENT
	      [PURPOSE
	        [admin or
	         contact[@required = "always"]
	      ]]]])
	  then <block/> else ()`
	store := storeWithVolga(t)
	// Volga's contact is opt-in and it has no admin purpose: no block.
	if got := run(t, store, src); got != "" {
		t.Errorf("rule fired with %q, want empty", got)
	}
	// A policy with an always-contact purpose triggers it.
	always := strings.Replace(p3p.VolgaPolicyXML, `<contact required="opt-in"/>`, `<contact/>`, 1)
	store2 := xmlstore.New()
	if err := store2.PutXML("applicable-policy", always); err != nil {
		t.Fatal(err)
	}
	if got := run(t, store2, src); got != "block" {
		t.Errorf("rule should fire, got %q", got)
	}
}

func TestParseShapes(t *testing.T) {
	cases := []string{
		`if (document("d")) then <request/> else ()`,
		`if (document("d")/POLICY[STATEMENT]) then <block/>`,
		`if (document("d")[POLICY[STATEMENT[PURPOSE[admin]]]]) then <block/> else ()`,
		`if (document("d")[POLICY[not(STATEMENT[PURPOSE[telemarketing]])]]) then <request/> else ()`,
		`if (document("d")[POLICY[STATEMENT[PURPOSE[(current and not(*[not(self::current)]))]]]]) then <block/> else ()`,
		`if (document("d")[POLICY[STATEMENT[DATA-GROUP[DATA[(@ref = "#user.name" or starts-with(@ref, "#user.name.") or starts-with("#user.name", concat(@ref, ".")))]]]]]) then <block/> else ()`,
	}
	for _, src := range cases {
		if _, err := Parse(src); err != nil {
			t.Errorf("Parse(%s): %v", src, err)
		}
	}
}

func TestParseErrors(t *testing.T) {
	cases := []string{
		``,
		`select foo`,
		`if (document("d")) then`,
		`if (document("d") then <a/>`,
		`if (document(d)) then <a/>`,
		`if (document("d")[POLICY) then <a/>`,
		`if (document("d")) then <a>`,
		`if (document("d")) then <a/> trailing`,
		`if (document("d")/@x/@y) then <a/>`,
	}
	for _, src := range cases {
		if _, err := Parse(src); err == nil {
			t.Errorf("Parse(%q): expected error", src)
		}
	}
}

func TestAttributeDefaulting(t *testing.T) {
	store := xmlstore.New()
	if err := store.PutXML("applicable-policy",
		`<POLICY><STATEMENT><PURPOSE><contact/></PURPOSE></STATEMENT></POLICY>`); err != nil {
		t.Fatal(err)
	}
	src := `if (document("applicable-policy")[POLICY[STATEMENT[PURPOSE[contact[@required = "always"]]]]]) then <block/> else ()`
	if got := run(t, store, src); got != "block" {
		t.Errorf("defaulted required should match always, got %q", got)
	}
}

func TestSelfAxisAndWildcard(t *testing.T) {
	store := xmlstore.New()
	if err := store.PutXML("applicable-policy",
		`<POLICY><STATEMENT><PURPOSE><current/><admin/></PURPOSE></STATEMENT></POLICY>`); err != nil {
		t.Fatal(err)
	}
	// Exactness: the policy has an element that is neither current nor
	// contact (namely admin), so the not(*[...]) test fails.
	src := `if (document("applicable-policy")[POLICY[STATEMENT[PURPOSE[
	  (current and not(*[not(self::current) and not(self::contact)]))]]]]) then <block/> else ()`
	if got := run(t, store, src); got != "" {
		t.Errorf("exactness should fail, got %q", got)
	}
	// Allowing admin makes it pass.
	src2 := strings.Replace(src, `not(self::contact)`, `not(self::admin)`, 1)
	if got := run(t, store, src2); got != "block" {
		t.Errorf("exactness should pass, got %q", got)
	}
}

func TestElseBranch(t *testing.T) {
	store := storeWithVolga(t)
	src := `if (document("applicable-policy")[POLICY[STATEMENT[PURPOSE[telemarketing]]]]) then <block/> else (<request/>)`
	// Parser does not accept (<request/>); use plain else constructor.
	src = `if (document("applicable-policy")[POLICY[STATEMENT[PURPOSE[telemarketing]]]]) then <block/> else <request/>`
	if got := run(t, store, src); got != "request" {
		t.Errorf("else branch, got %q", got)
	}
}

func TestMissingDocument(t *testing.T) {
	store := xmlstore.New()
	q, err := Parse(`if (document("nope")) then <a/> else ()`)
	if err != nil {
		t.Fatal(err)
	}
	if _, err := NewEvaluator(store.Resolver(nil)).Run(q); err == nil {
		t.Error("missing document should error")
	}
}

func TestResolverAliases(t *testing.T) {
	store := xmlstore.New()
	if err := store.PutXML("policy:volga", `<POLICY><STATEMENT/></POLICY>`); err != nil {
		t.Fatal(err)
	}
	ev := NewEvaluator(store.Resolver(map[string]string{"applicable-policy": "policy:volga"}))
	q, err := Parse(`if (document("applicable-policy")/POLICY/STATEMENT) then <ok/> else ()`)
	if err != nil {
		t.Fatal(err)
	}
	out, err := ev.Run(q)
	if err != nil || out != "ok" {
		t.Errorf("alias resolution: %q %v", out, err)
	}
}

func TestStringComparisonExistential(t *testing.T) {
	store := xmlstore.New()
	if err := store.PutXML("applicable-policy",
		`<POLICY><STATEMENT><PURPOSE><contact required="opt-in"/><admin required="always"/></PURPOSE></STATEMENT></POLICY>`); err != nil {
		t.Fatal(err)
	}
	// PURPOSE/*/@required existential over both values.
	src := `if (document("applicable-policy")[POLICY[STATEMENT[PURPOSE[*[@required = "opt-in"]]]]]) then <hit/> else ()`
	if got := run(t, store, src); got != "hit" {
		t.Errorf("existential attr compare, got %q", got)
	}
}

func TestEvalDirectDOM(t *testing.T) {
	// The evaluator only touches the store through the resolver; a
	// hand-built resolver works too.
	doc, err := xmldom.ParseString(`<POLICY><TEST/></POLICY>`)
	if err != nil {
		t.Fatal(err)
	}
	ev := NewEvaluator(func(name string) (*xmldom.Node, error) { return doc, nil })
	q, err := Parse(`if (document("whatever")/POLICY/TEST) then <t/> else ()`)
	if err != nil {
		t.Fatal(err)
	}
	out, err := ev.Run(q)
	if err != nil || out != "t" {
		t.Errorf("direct DOM: %q %v", out, err)
	}
}
