package xmldom

import (
	"fmt"
	"strconv"
	"strings"
)

// domParser is a small, fast XML scanner building the Node tree directly.
// It resolves namespace prefixes (including default namespaces and
// xmlns:* declarations), concatenates character data, and discards
// comments, processing instructions, and DOCTYPE declarations.
type domParser struct {
	src string
	pos int
}

// nsFrame records the in-scope namespace bindings as a stack of
// (prefix, uri) pairs; lookups scan from the top.
type nsBinding struct {
	prefix string
	uri    string
}

func (p *domParser) errf(format string, args ...any) error {
	line := 1 + strings.Count(p.src[:min(p.pos, len(p.src))], "\n")
	return fmt.Errorf("xmldom: %s at line %d", fmt.Sprintf(format, args...), line)
}

func min(a, b int) int {
	if a < b {
		return a
	}
	return b
}

func (p *domParser) parse() (*Node, error) {
	var root *Node
	var stack []*Node
	var ns []nsBinding
	var nsMarks []int // per open element: ns stack size before it
	var text strings.Builder

	flushText := func() {
		if len(stack) == 0 {
			text.Reset()
			return
		}
		if s := strings.TrimSpace(text.String()); s != "" {
			top := stack[len(stack)-1]
			if top.Text == "" {
				top.Text = s
			} else {
				top.Text += " " + s
			}
		}
		text.Reset()
	}

	for p.pos < len(p.src) {
		c := p.src[p.pos]
		if c != '<' {
			// Character data up to the next tag.
			next := strings.IndexByte(p.src[p.pos:], '<')
			var chunk string
			if next < 0 {
				chunk = p.src[p.pos:]
				p.pos = len(p.src)
			} else {
				chunk = p.src[p.pos : p.pos+next]
				p.pos += next
			}
			if len(stack) > 0 {
				decoded, err := decodeEntities(chunk)
				if err != nil {
					return nil, p.errf("%v", err)
				}
				text.WriteString(decoded)
			} else if strings.TrimSpace(chunk) != "" {
				return nil, p.errf("text outside root element")
			}
			continue
		}
		// A tag of some kind.
		if p.pos+1 >= len(p.src) {
			return nil, p.errf("unexpected end of input")
		}
		switch p.src[p.pos+1] {
		case '?': // processing instruction / XML declaration
			end := strings.Index(p.src[p.pos:], "?>")
			if end < 0 {
				return nil, p.errf("unterminated processing instruction")
			}
			p.pos += end + 2
		case '!':
			if strings.HasPrefix(p.src[p.pos:], "<!--") {
				end := strings.Index(p.src[p.pos+4:], "-->")
				if end < 0 {
					return nil, p.errf("unterminated comment")
				}
				p.pos += 4 + end + 3
			} else if strings.HasPrefix(p.src[p.pos:], "<![CDATA[") {
				end := strings.Index(p.src[p.pos+9:], "]]>")
				if end < 0 {
					return nil, p.errf("unterminated CDATA section")
				}
				if len(stack) > 0 {
					text.WriteString(p.src[p.pos+9 : p.pos+9+end])
				}
				p.pos += 9 + end + 3
			} else if strings.HasPrefix(p.src[p.pos:], "<!DOCTYPE") {
				end := strings.IndexByte(p.src[p.pos:], '>')
				if end < 0 {
					return nil, p.errf("unterminated DOCTYPE")
				}
				p.pos += end + 1
			} else {
				return nil, p.errf("unsupported markup declaration")
			}
		case '/': // end tag
			p.pos += 2
			name, err := p.readName()
			if err != nil {
				return nil, err
			}
			p.skipSpace()
			if p.pos >= len(p.src) || p.src[p.pos] != '>' {
				return nil, p.errf("malformed end tag </%s", name)
			}
			p.pos++
			if len(stack) == 0 {
				return nil, p.errf("unbalanced end element %s", localOf(name))
			}
			top := stack[len(stack)-1]
			_, local := splitQName(name)
			if top.Name != local {
				return nil, p.errf("end tag %s does not close %s", local, top.Name)
			}
			flushText()
			stack = stack[:len(stack)-1]
			ns = ns[:nsMarks[len(nsMarks)-1]]
			nsMarks = nsMarks[:len(nsMarks)-1]
		default: // start tag
			flushText()
			p.pos++
			name, err := p.readName()
			if err != nil {
				return nil, err
			}
			// Collect attributes, splitting off namespace declarations.
			type rawAttr struct {
				qname string
				value string
			}
			var raw []rawAttr
			nsMark := len(ns)
			for {
				p.skipSpace()
				if p.pos >= len(p.src) {
					return nil, p.errf("unexpected end of input in tag %s", name)
				}
				if p.src[p.pos] == '>' || p.src[p.pos] == '/' {
					break
				}
				aname, err := p.readName()
				if err != nil {
					return nil, err
				}
				p.skipSpace()
				if p.pos >= len(p.src) || p.src[p.pos] != '=' {
					return nil, p.errf("attribute %s without value", aname)
				}
				p.pos++
				p.skipSpace()
				aval, err := p.readQuoted()
				if err != nil {
					return nil, err
				}
				switch {
				case aname == "xmlns":
					ns = append(ns, nsBinding{prefix: "", uri: aval})
				case strings.HasPrefix(aname, "xmlns:"):
					ns = append(ns, nsBinding{prefix: aname[6:], uri: aval})
				default:
					raw = append(raw, rawAttr{qname: aname, value: aval})
				}
			}
			selfClose := false
			if p.src[p.pos] == '/' {
				selfClose = true
				p.pos++
				if p.pos >= len(p.src) || p.src[p.pos] != '>' {
					return nil, p.errf("malformed empty-element tag %s", name)
				}
			}
			p.pos++ // consume '>'

			prefix, local := splitQName(name)
			n := &Node{Name: local, Space: lookupNS(ns, prefix, true)}
			if prefix != "" && n.Space == "" {
				return nil, p.errf("undeclared namespace prefix %q", prefix)
			}
			for _, a := range raw {
				ap, al := splitQName(a.qname)
				space := ""
				if ap != "" {
					space = lookupNS(ns, ap, false)
					if space == "" {
						return nil, p.errf("undeclared namespace prefix %q", ap)
					}
				}
				n.Attrs = append(n.Attrs, Attr{Space: space, Name: al, Value: a.value})
			}
			if len(stack) == 0 {
				if root != nil {
					return nil, p.errf("multiple root elements (%s, %s)", root.Name, n.Name)
				}
				root = n
			} else {
				parent := stack[len(stack)-1]
				n.Parent = parent
				parent.Children = append(parent.Children, n)
			}
			if selfClose {
				ns = ns[:nsMark]
			} else {
				stack = append(stack, n)
				nsMarks = append(nsMarks, nsMark)
			}
		}
	}
	if len(stack) != 0 {
		return nil, p.errf("unexpected EOF inside element %s", stack[len(stack)-1].Name)
	}
	if root == nil {
		return nil, p.errf("empty document")
	}
	return root, nil
}

func (p *domParser) skipSpace() {
	for p.pos < len(p.src) {
		switch p.src[p.pos] {
		case ' ', '\t', '\n', '\r':
			p.pos++
		default:
			return
		}
	}
}

func (p *domParser) readName() (string, error) {
	start := p.pos
	for p.pos < len(p.src) {
		c := p.src[p.pos]
		if c == ' ' || c == '\t' || c == '\n' || c == '\r' ||
			c == '=' || c == '>' || c == '/' || c == '<' ||
			c == '"' || c == '\'' {
			break
		}
		p.pos++
	}
	if p.pos == start {
		return "", p.errf("expected name")
	}
	name := p.src[start:p.pos]
	if err := checkQName(name); err != nil {
		return "", p.errf("%v", err)
	}
	return name, nil
}

func (p *domParser) readQuoted() (string, error) {
	if p.pos >= len(p.src) || (p.src[p.pos] != '"' && p.src[p.pos] != '\'') {
		return "", p.errf("expected quoted attribute value")
	}
	quote := p.src[p.pos]
	p.pos++
	end := strings.IndexByte(p.src[p.pos:], quote)
	if end < 0 {
		return "", p.errf("unterminated attribute value")
	}
	val := p.src[p.pos : p.pos+end]
	p.pos += end + 1
	return decodeEntities(val)
}

func splitQName(qname string) (prefix, local string) {
	if i := strings.IndexByte(qname, ':'); i >= 0 {
		return qname[:i], qname[i+1:]
	}
	return "", qname
}

// checkQName rejects malformed qualified names: empty local parts, empty
// prefixes with a colon present, and multiple colons.
func checkQName(qname string) error {
	prefix, local := splitQName(qname)
	if local == "" {
		return fmt.Errorf("empty local name in %q", qname)
	}
	if strings.IndexByte(qname, ':') >= 0 && prefix == "" {
		return fmt.Errorf("empty prefix in %q", qname)
	}
	if strings.IndexByte(local, ':') >= 0 {
		return fmt.Errorf("multiple colons in %q", qname)
	}
	for _, part := range []string{qname, local} {
		if c := part[0]; c >= '0' && c <= '9' || c == '-' || c == '.' {
			return fmt.Errorf("name %q starts with %q", qname, c)
		}
	}
	return nil
}

func localOf(qname string) string {
	_, l := splitQName(qname)
	return l
}

// lookupNS resolves a prefix against the in-scope bindings. Elements with
// no prefix take the default namespace; unprefixed attributes never do.
func lookupNS(ns []nsBinding, prefix string, useDefault bool) string {
	if prefix == "" && !useDefault {
		return ""
	}
	for i := len(ns) - 1; i >= 0; i-- {
		if ns[i].prefix == prefix {
			return ns[i].uri
		}
	}
	return ""
}

// decodeEntities resolves the predefined entities and numeric character
// references. Text without '&' passes through without allocation.
func decodeEntities(s string) (string, error) {
	amp := strings.IndexByte(s, '&')
	if amp < 0 {
		return s, nil
	}
	var b strings.Builder
	b.Grow(len(s))
	b.WriteString(s[:amp])
	i := amp
	for i < len(s) {
		c := s[i]
		if c != '&' {
			b.WriteByte(c)
			i++
			continue
		}
		semi := strings.IndexByte(s[i:], ';')
		if semi < 0 {
			return "", fmt.Errorf("unterminated entity reference")
		}
		ent := s[i+1 : i+semi]
		switch {
		case ent == "amp":
			b.WriteByte('&')
		case ent == "lt":
			b.WriteByte('<')
		case ent == "gt":
			b.WriteByte('>')
		case ent == "quot":
			b.WriteByte('"')
		case ent == "apos":
			b.WriteByte('\'')
		case strings.HasPrefix(ent, "#x") || strings.HasPrefix(ent, "#X"):
			n, err := strconv.ParseUint(ent[2:], 16, 32)
			if err != nil {
				return "", fmt.Errorf("bad character reference &%s;", ent)
			}
			b.WriteRune(rune(n))
		case strings.HasPrefix(ent, "#"):
			n, err := strconv.ParseUint(ent[1:], 10, 32)
			if err != nil {
				return "", fmt.Errorf("bad character reference &%s;", ent)
			}
			b.WriteRune(rune(n))
		default:
			return "", fmt.Errorf("unknown entity &%s;", ent)
		}
		i += semi + 1
	}
	return b.String(), nil
}
