package xmldom

import (
	"encoding/xml"
	"strings"
	"testing"
)

// benchDoc approximates an average crawled policy (~4.4 KB).
var benchDoc = func() string {
	var b strings.Builder
	b.WriteString(`<POLICY xmlns="http://www.w3.org/2002/01/P3Pv1" name="bench" discuri="http://x/privacy">`)
	for i := 0; i < 3; i++ {
		b.WriteString(`<STATEMENT><CONSEQUENCE>we use this data to provide and improve our services
		and to ensure your orders are processed promptly including shipping billing and support</CONSEQUENCE>
		<PURPOSE><current/><admin required="opt-in"/><develop/></PURPOSE>
		<RECIPIENT><ours/><same required="opt-out"/></RECIPIENT>
		<RETENTION><business-practices/></RETENTION>
		<DATA-GROUP>
		  <DATA ref="#user.name"/><DATA ref="#user.home-info.postal"/>
		  <DATA ref="#dynamic.miscdata"><CATEGORIES><purchase/><preference/></CATEGORIES></DATA>
		</DATA-GROUP></STATEMENT>`)
	}
	b.WriteString(`</POLICY>`)
	return b.String()
}()

// BenchmarkParse measures the hand-rolled scanner on a policy-sized
// document. This parse sits on the client-centric hot path and inside
// every engine's conversion step, which is why encoding/xml's token
// interface was replaced (see DESIGN.md).
func BenchmarkParse(b *testing.B) {
	b.SetBytes(int64(len(benchDoc)))
	for i := 0; i < b.N; i++ {
		if _, err := ParseString(benchDoc); err != nil {
			b.Fatal(err)
		}
	}
}

// BenchmarkParseEncodingXML is the stdlib baseline for comparison.
func BenchmarkParseEncodingXML(b *testing.B) {
	b.SetBytes(int64(len(benchDoc)))
	for i := 0; i < b.N; i++ {
		dec := xml.NewDecoder(strings.NewReader(benchDoc))
		for {
			_, err := dec.Token()
			if err != nil {
				break
			}
		}
	}
}

// TestParserAgreesWithEncodingXML cross-checks the hand-rolled scanner
// against encoding/xml on the benchmark document: same element names in
// the same order, same attribute values, same namespaces.
func TestParserAgreesWithEncodingXML(t *testing.T) {
	root, err := ParseString(benchDoc)
	if err != nil {
		t.Fatal(err)
	}
	var ours []string
	root.Walk(func(n *Node) bool {
		ours = append(ours, n.Space+":"+n.Name)
		for _, a := range n.Attrs {
			ours = append(ours, "@"+a.Space+":"+a.Name+"="+a.Value)
		}
		return true
	})

	var std []string
	dec := xml.NewDecoder(strings.NewReader(benchDoc))
	for {
		tok, err := dec.Token()
		if err != nil {
			break
		}
		if se, ok := tok.(xml.StartElement); ok {
			std = append(std, se.Name.Space+":"+se.Name.Local)
			for _, a := range se.Attr {
				if a.Name.Space == "xmlns" || (a.Name.Space == "" && a.Name.Local == "xmlns") {
					continue
				}
				std = append(std, "@"+a.Name.Space+":"+a.Name.Local+"="+a.Value)
			}
		}
	}
	if strings.Join(ours, "\n") != strings.Join(std, "\n") {
		t.Errorf("parser divergence:\nours:\n%s\nstd:\n%s",
			strings.Join(ours, "\n"), strings.Join(std, "\n"))
	}
}
