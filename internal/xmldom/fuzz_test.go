package xmldom

import "testing"

// FuzzParseString checks the parser never panics and that anything it
// accepts serializes and reparses to a structurally identical tree.
func FuzzParseString(f *testing.F) {
	seeds := []string{
		`<A/>`,
		`<A a="1"><B>text</B></A>`,
		`<a:R xmlns:a="urn:x"><a:C/></a:R>`,
		`<A><![CDATA[x<y]]></A>`,
		`<A>&amp;&#65;</A>`,
		`<?xml version="1.0"?><!DOCTYPE r><r/>`,
		`<A><!-- c --></A>`,
		`<A`, `<A><B></A>`, `&`, `<>`, `<A a=/>`,
	}
	for _, s := range seeds {
		f.Add(s)
	}
	f.Fuzz(func(t *testing.T, src string) {
		root, err := ParseString(src)
		if err != nil {
			return
		}
		out := root.String()
		back, err := ParseString(out)
		if err != nil {
			t.Fatalf("accepted input did not round trip: %v\ninput: %q\nserialized: %q", err, src, out)
		}
		if !Equal(root, back) {
			t.Fatalf("round trip changed the tree\ninput: %q", src)
		}
	})
}
