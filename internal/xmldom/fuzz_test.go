package xmldom

import (
	"os"
	"path/filepath"
	"testing"
)

// addCorpus seeds the fuzzer with every file in testdata/corpus — full
// P3P policies, APPEL preferences, and a reference file, so mutation
// starts from documents with realistic nesting and namespace use.
func addCorpus(f *testing.F) {
	entries, err := os.ReadDir(filepath.Join("testdata", "corpus"))
	if err != nil {
		f.Fatalf("seed corpus: %v", err)
	}
	for _, e := range entries {
		data, err := os.ReadFile(filepath.Join("testdata", "corpus", e.Name()))
		if err != nil {
			f.Fatalf("seed corpus %s: %v", e.Name(), err)
		}
		f.Add(string(data))
	}
}

// FuzzParseString checks the parser never panics and that anything it
// accepts serializes and reparses to a structurally identical tree.
func FuzzParseString(f *testing.F) {
	addCorpus(f)
	seeds := []string{
		`<A/>`,
		`<A a="1"><B>text</B></A>`,
		`<a:R xmlns:a="urn:x"><a:C/></a:R>`,
		`<A><![CDATA[x<y]]></A>`,
		`<A>&amp;&#65;</A>`,
		`<?xml version="1.0"?><!DOCTYPE r><r/>`,
		`<A><!-- c --></A>`,
		`<A`, `<A><B></A>`, `&`, `<>`, `<A a=/>`,
	}
	for _, s := range seeds {
		f.Add(s)
	}
	f.Fuzz(func(t *testing.T, src string) {
		root, err := ParseString(src)
		if err != nil {
			return
		}
		out := root.String()
		back, err := ParseString(out)
		if err != nil {
			t.Fatalf("accepted input did not round trip: %v\ninput: %q\nserialized: %q", err, src, out)
		}
		if !Equal(root, back) {
			t.Fatalf("round trip changed the tree\ninput: %q", src)
		}
	})
}
