// Package xmldom provides a small namespace-aware XML element tree used as
// the substrate for parsing P3P policies, APPEL preferences, and reference
// files, for the native APPEL evaluation engine, and for the native XML
// store backing the XQuery engine.
//
// The tree is deliberately minimal: elements, attributes, and character
// data. Processing instructions and comments are discarded during parsing,
// which is sufficient for every document class the P3P ecosystem uses.
package xmldom

import (
	"fmt"
	"io"
	"sort"
	"strings"
)

// Attr is a single attribute on an element. Space holds the namespace URI
// of a prefixed attribute and is empty for unprefixed attributes.
type Attr struct {
	Space string
	Name  string
	Value string
}

// Node is an element in the document tree.
type Node struct {
	// Space is the namespace URI the element name is bound to.
	Space string
	// Name is the local element name without any prefix.
	Name string
	// Attrs are the element's attributes in document order.
	Attrs []Attr
	// Children are the child elements in document order.
	Children []*Node
	// Text is the concatenation of all character data directly inside
	// the element (not inside descendants), with surrounding whitespace
	// trimmed.
	Text string
	// Parent is the enclosing element, or nil for the document root.
	Parent *Node
}

// New returns an element with the given local name and no namespace.
func New(name string) *Node { return &Node{Name: name} }

// NewNS returns an element with the given namespace URI and local name.
func NewNS(space, name string) *Node { return &Node{Space: space, Name: name} }

// SetAttr sets (or replaces) an unprefixed attribute and returns the node
// to allow chaining during tree construction.
func (n *Node) SetAttr(name, value string) *Node {
	return n.SetAttrNS("", name, value)
}

// SetAttrNS sets (or replaces) a namespaced attribute and returns the node.
func (n *Node) SetAttrNS(space, name, value string) *Node {
	for i := range n.Attrs {
		if n.Attrs[i].Name == name && n.Attrs[i].Space == space {
			n.Attrs[i].Value = value
			return n
		}
	}
	n.Attrs = append(n.Attrs, Attr{Space: space, Name: name, Value: value})
	return n
}

// Attr returns the value of the first attribute with the given local name,
// regardless of namespace, and whether it was present.
func (n *Node) Attr(name string) (string, bool) {
	for _, a := range n.Attrs {
		if a.Name == name {
			return a.Value, true
		}
	}
	return "", false
}

// AttrNS returns the value of the attribute with the given namespace URI and
// local name, and whether it was present.
func (n *Node) AttrNS(space, name string) (string, bool) {
	for _, a := range n.Attrs {
		if a.Name == name && a.Space == space {
			return a.Value, true
		}
	}
	return "", false
}

// AttrDefault returns the attribute value, or def when absent.
func (n *Node) AttrDefault(name, def string) string {
	if v, ok := n.Attr(name); ok {
		return v
	}
	return def
}

// Add appends children and returns the node to allow chaining.
func (n *Node) Add(children ...*Node) *Node {
	for _, c := range children {
		c.Parent = n
		n.Children = append(n.Children, c)
	}
	return n
}

// SetText sets the element's character data and returns the node.
func (n *Node) SetText(text string) *Node {
	n.Text = text
	return n
}

// Child returns the first child element with the given local name, or nil.
func (n *Node) Child(name string) *Node {
	for _, c := range n.Children {
		if c.Name == name {
			return c
		}
	}
	return nil
}

// ChildrenNamed returns all child elements with the given local name.
func (n *Node) ChildrenNamed(name string) []*Node {
	var out []*Node
	for _, c := range n.Children {
		if c.Name == name {
			out = append(out, c)
		}
	}
	return out
}

// Descendants appends to dst every descendant element (excluding n itself)
// in document order and returns the result.
func (n *Node) Descendants(dst []*Node) []*Node {
	for _, c := range n.Children {
		dst = append(dst, c)
		dst = c.Descendants(dst)
	}
	return dst
}

// Walk calls fn for n and every descendant in document order. If fn returns
// false for an element, its subtree is skipped.
func (n *Node) Walk(fn func(*Node) bool) {
	if !fn(n) {
		return
	}
	for _, c := range n.Children {
		c.Walk(fn)
	}
}

// Clone returns a deep copy of the subtree rooted at n. The clone's Parent
// is nil.
func (n *Node) Clone() *Node {
	c := &Node{Space: n.Space, Name: n.Name, Text: n.Text}
	if len(n.Attrs) > 0 {
		c.Attrs = make([]Attr, len(n.Attrs))
		copy(c.Attrs, n.Attrs)
	}
	if len(n.Children) > 0 {
		c.Children = make([]*Node, 0, len(n.Children))
		for _, ch := range n.Children {
			cc := ch.Clone()
			cc.Parent = c
			c.Children = append(c.Children, cc)
		}
	}
	return c
}

// Path returns the slash-separated chain of local names from the root down
// to n, e.g. "POLICY/STATEMENT/PURPOSE". It is used in error messages.
func (n *Node) Path() string {
	var parts []string
	for cur := n; cur != nil; cur = cur.Parent {
		parts = append(parts, cur.Name)
	}
	for i, j := 0, len(parts)-1; i < j; i, j = i+1, j-1 {
		parts[i], parts[j] = parts[j], parts[i]
	}
	return strings.Join(parts, "/")
}

// Parse reads a single XML document from r and returns its root element.
func Parse(r io.Reader) (*Node, error) {
	data, err := io.ReadAll(r)
	if err != nil {
		return nil, fmt.Errorf("xmldom: parse: %w", err)
	}
	return ParseString(string(data))
}

// ParseString parses an XML document held in a string, using a scanner
// specialized for the document classes the P3P ecosystem exchanges
// (elements, attributes, character data, comments, processing
// instructions, the five predefined entities, and numeric character
// references). Parsing is on every hot path — the client-centric engine
// parses the policy per match — so this avoids encoding/xml's
// token-interface overhead.
func ParseString(s string) (*Node, error) {
	p := &domParser{src: s}
	return p.parse()
}

// prefixFor chooses a serialization prefix for a namespace URI. The two
// P3P-ecosystem namespaces get their conventional prefixes so that emitted
// documents look like the ones in the paper.
func prefixFor(space string) string {
	switch space {
	case "http://www.w3.org/2002/01/P3Pv1":
		return "" // default namespace in policy documents
	case "http://www.w3.org/2002/01/APPELv1":
		return "appel"
	default:
		return "ns"
	}
}

// WriteXML serializes the subtree rooted at n to w as indented XML.
func (n *Node) WriteXML(w io.Writer) error {
	spaces := map[string]string{}
	collectSpaces(n, spaces)
	var b strings.Builder
	writeNode(&b, n, spaces, 0, true)
	_, err := io.WriteString(w, b.String())
	return err
}

// String returns the indented XML serialization of the subtree.
func (n *Node) String() string {
	var b strings.Builder
	spaces := map[string]string{}
	collectSpaces(n, spaces)
	writeNode(&b, n, spaces, 0, true)
	return b.String()
}

func collectSpaces(n *Node, spaces map[string]string) {
	n.Walk(func(el *Node) bool {
		if el.Space != "" {
			if _, ok := spaces[el.Space]; !ok {
				spaces[el.Space] = prefixFor(el.Space)
			}
		}
		for _, a := range el.Attrs {
			if a.Space != "" {
				if _, ok := spaces[a.Space]; !ok {
					spaces[a.Space] = prefixFor(a.Space)
				}
			}
		}
		return true
	})
	// Resolve prefix collisions deterministically.
	used := map[string]bool{}
	var keys []string
	for k := range spaces {
		keys = append(keys, k)
	}
	sort.Strings(keys)
	for _, k := range keys {
		p := spaces[k]
		for i := 2; used[p]; i++ {
			p = fmt.Sprintf("%s%d", spaces[k], i)
		}
		used[p] = true
		spaces[k] = p
	}
}

func qname(space, name string, spaces map[string]string) string {
	if space == "" {
		return name
	}
	if p := spaces[space]; p != "" {
		return p + ":" + name
	}
	return name
}

func writeNode(b *strings.Builder, n *Node, spaces map[string]string, depth int, root bool) {
	indent := strings.Repeat("  ", depth)
	b.WriteString(indent)
	b.WriteByte('<')
	b.WriteString(qname(n.Space, n.Name, spaces))
	if root {
		var keys []string
		for k := range spaces {
			keys = append(keys, k)
		}
		sort.Strings(keys)
		for _, k := range keys {
			if spaces[k] == "" {
				b.WriteString(` xmlns="` + escapeAttr(k) + `"`)
			} else {
				b.WriteString(` xmlns:` + spaces[k] + `="` + escapeAttr(k) + `"`)
			}
		}
	}
	for _, a := range n.Attrs {
		b.WriteByte(' ')
		b.WriteString(qname(a.Space, a.Name, spaces))
		b.WriteString(`="`)
		b.WriteString(escapeAttr(a.Value))
		b.WriteByte('"')
	}
	if len(n.Children) == 0 && n.Text == "" {
		b.WriteString("/>\n")
		return
	}
	b.WriteByte('>')
	if n.Text != "" {
		b.WriteString(escapeText(n.Text))
		if len(n.Children) == 0 {
			b.WriteString("</" + qname(n.Space, n.Name, spaces) + ">\n")
			return
		}
	}
	b.WriteByte('\n')
	for _, c := range n.Children {
		writeNode(b, c, spaces, depth+1, false)
	}
	b.WriteString(indent)
	b.WriteString("</" + qname(n.Space, n.Name, spaces) + ">\n")
}

var (
	textEscaper = strings.NewReplacer("&", "&amp;", "<", "&lt;", ">", "&gt;")
	attrEscaper = strings.NewReplacer("&", "&amp;", "<", "&lt;", ">", "&gt;", `"`, "&quot;")
)

func escapeText(s string) string { return textEscaper.Replace(s) }

func escapeAttr(s string) string { return attrEscaper.Replace(s) }
