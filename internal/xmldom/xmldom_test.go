package xmldom

import (
	"strings"
	"testing"
	"testing/quick"
)

const p3pNS = "http://www.w3.org/2002/01/P3Pv1"
const appelNS = "http://www.w3.org/2002/01/APPELv1"

func TestParseSimple(t *testing.T) {
	doc := `<POLICY xmlns="http://www.w3.org/2002/01/P3Pv1" name="p1">
	  <STATEMENT>
	    <PURPOSE><current/></PURPOSE>
	  </STATEMENT>
	</POLICY>`
	root, err := ParseString(doc)
	if err != nil {
		t.Fatalf("ParseString: %v", err)
	}
	if root.Name != "POLICY" {
		t.Errorf("root name = %q, want POLICY", root.Name)
	}
	if root.Space != p3pNS {
		t.Errorf("root space = %q, want %q", root.Space, p3pNS)
	}
	if v, ok := root.Attr("name"); !ok || v != "p1" {
		t.Errorf("name attr = %q, %v", v, ok)
	}
	st := root.Child("STATEMENT")
	if st == nil {
		t.Fatal("no STATEMENT child")
	}
	if st.Parent != root {
		t.Error("STATEMENT parent not set")
	}
	p := st.Child("PURPOSE")
	if p == nil || p.Child("current") == nil {
		t.Fatal("PURPOSE/current missing")
	}
}

func TestParseNamespacedAttrs(t *testing.T) {
	doc := `<appel:RULESET xmlns:appel="http://www.w3.org/2002/01/APPELv1"
	   xmlns="http://www.w3.org/2002/01/P3Pv1">
	  <appel:RULE behavior="block">
	    <POLICY><STATEMENT><PURPOSE appel:connective="or"><admin/></PURPOSE></STATEMENT></POLICY>
	  </appel:RULE>
	</appel:RULESET>`
	root, err := ParseString(doc)
	if err != nil {
		t.Fatalf("ParseString: %v", err)
	}
	if root.Space != appelNS || root.Name != "RULESET" {
		t.Fatalf("root = %s:%s", root.Space, root.Name)
	}
	rule := root.Child("RULE")
	if rule == nil {
		t.Fatal("no RULE")
	}
	if v, _ := rule.Attr("behavior"); v != "block" {
		t.Errorf("behavior = %q", v)
	}
	purpose := rule.Child("POLICY").Child("STATEMENT").Child("PURPOSE")
	if v, ok := purpose.AttrNS(appelNS, "connective"); !ok || v != "or" {
		t.Errorf("appel:connective = %q, %v", v, ok)
	}
	// Unqualified lookup also finds it.
	if v, ok := purpose.Attr("connective"); !ok || v != "or" {
		t.Errorf("connective = %q, %v", v, ok)
	}
}

func TestParseText(t *testing.T) {
	root, err := ParseString(`<CONSEQUENCE>  We use your data
	to complete orders.  </CONSEQUENCE>`)
	if err != nil {
		t.Fatal(err)
	}
	if !strings.HasPrefix(root.Text, "We use your data") {
		t.Errorf("text = %q", root.Text)
	}
	if strings.HasPrefix(root.Text, " ") || strings.HasSuffix(root.Text, " ") {
		t.Errorf("text not trimmed: %q", root.Text)
	}
}

func TestParseErrors(t *testing.T) {
	cases := []string{
		"",
		"<A><B></A>",
		"<A></A><B></B>",
		"<A>",
		"not xml at all",
	}
	for _, c := range cases {
		if _, err := ParseString(c); err == nil {
			t.Errorf("ParseString(%q): expected error", c)
		}
	}
}

func TestRoundTrip(t *testing.T) {
	n := NewNS(p3pNS, "POLICY").SetAttr("name", "p").Add(
		NewNS(p3pNS, "STATEMENT").Add(
			NewNS(p3pNS, "PURPOSE").
				SetAttrNS(appelNS, "connective", "or").
				Add(NewNS(p3pNS, "current"), NewNS(p3pNS, "admin").SetAttr("required", "opt-in")),
			NewNS(p3pNS, "CONSEQUENCE").SetText("We deliver & bill you."),
		),
	)
	out := n.String()
	back, err := ParseString(out)
	if err != nil {
		t.Fatalf("reparse: %v\n%s", err, out)
	}
	if !Equal(n, back) {
		t.Errorf("round trip mismatch:\n%s\nvs\n%s", out, back.String())
	}
}

// Equal reports structural equality ignoring Parent pointers.
func Equal(a, b *Node) bool {
	if a.Name != b.Name || a.Space != b.Space || a.Text != b.Text {
		return false
	}
	if len(a.Attrs) != len(b.Attrs) || len(a.Children) != len(b.Children) {
		return false
	}
	for i := range a.Attrs {
		if a.Attrs[i] != b.Attrs[i] {
			return false
		}
	}
	for i := range a.Children {
		if !Equal(a.Children[i], b.Children[i]) {
			return false
		}
	}
	return true
}

func TestClone(t *testing.T) {
	root, err := ParseString(`<A x="1"><B><C y="2">text</C></B><B/></A>`)
	if err != nil {
		t.Fatal(err)
	}
	c := root.Clone()
	if !Equal(root, c) {
		t.Fatal("clone not equal")
	}
	// Mutating the clone must not affect the original.
	c.Children[0].Children[0].SetAttr("y", "3")
	if v, _ := root.Children[0].Children[0].Attr("y"); v != "2" {
		t.Error("clone shares attribute storage with original")
	}
	c.Add(New("D"))
	if len(root.Children) != 2 {
		t.Error("clone shares child slice with original")
	}
	if c.Children[0].Parent != c {
		t.Error("clone parent pointers not rewired")
	}
}

func TestPath(t *testing.T) {
	root, _ := ParseString(`<POLICY><STATEMENT><PURPOSE><current/></PURPOSE></STATEMENT></POLICY>`)
	cur := root.Child("STATEMENT").Child("PURPOSE").Child("current")
	if got := cur.Path(); got != "POLICY/STATEMENT/PURPOSE/current" {
		t.Errorf("Path = %q", got)
	}
}

func TestDescendantsAndWalk(t *testing.T) {
	root, _ := ParseString(`<A><B><C/><D/></B><E/></A>`)
	ds := root.Descendants(nil)
	var names []string
	for _, d := range ds {
		names = append(names, d.Name)
	}
	want := "B C D E"
	if got := strings.Join(names, " "); got != want {
		t.Errorf("Descendants order = %q, want %q", got, want)
	}
	// Walk with pruning: skip B's subtree.
	var visited []string
	root.Walk(func(n *Node) bool {
		visited = append(visited, n.Name)
		return n.Name != "B"
	})
	if got := strings.Join(visited, " "); got != "A B E" {
		t.Errorf("Walk visited %q, want \"A B E\"", got)
	}
}

func TestChildrenNamed(t *testing.T) {
	root, _ := ParseString(`<G><DATA ref="a"/><DATA ref="b"/><OTHER/></G>`)
	ds := root.ChildrenNamed("DATA")
	if len(ds) != 2 {
		t.Fatalf("got %d DATA children", len(ds))
	}
	if v, _ := ds[1].Attr("ref"); v != "b" {
		t.Errorf("second DATA ref = %q", v)
	}
	if root.Child("MISSING") != nil {
		t.Error("Child on missing name should be nil")
	}
}

func TestSetAttrReplaces(t *testing.T) {
	n := New("X").SetAttr("a", "1").SetAttr("a", "2")
	if len(n.Attrs) != 1 || n.Attrs[0].Value != "2" {
		t.Errorf("SetAttr did not replace: %+v", n.Attrs)
	}
	if v := n.AttrDefault("missing", "dflt"); v != "dflt" {
		t.Errorf("AttrDefault = %q", v)
	}
}

func TestEscaping(t *testing.T) {
	n := New("X").SetAttr("a", `<&">`).SetText("a < b & c > d")
	back, err := ParseString(n.String())
	if err != nil {
		t.Fatalf("reparse escaped: %v\n%s", err, n.String())
	}
	if v, _ := back.Attr("a"); v != `<&">` {
		t.Errorf("attr after round trip = %q", v)
	}
	if back.Text != "a < b & c > d" {
		t.Errorf("text after round trip = %q", back.Text)
	}
}

// TestQuickRoundTrip property-tests that serialization followed by parsing
// yields a structurally identical tree for randomly generated trees.
func TestQuickRoundTrip(t *testing.T) {
	names := []string{"POLICY", "STATEMENT", "PURPOSE", "DATA", "current", "admin"}
	var build func(rndBytes []byte, depth int, idx *int) *Node
	build = func(rnd []byte, depth int, idx *int) *Node {
		next := func() byte {
			if *idx >= len(rnd) {
				return 0
			}
			b := rnd[*idx]
			*idx++
			return b
		}
		n := New(names[int(next())%len(names)])
		if next()%2 == 0 {
			n.SetAttr("required", []string{"always", "opt-in", "opt-out"}[int(next())%3])
		}
		if depth < 3 {
			kids := int(next()) % 3
			for i := 0; i < kids; i++ {
				n.Add(build(rnd, depth+1, idx))
			}
		}
		if len(n.Children) == 0 && next()%4 == 0 {
			n.SetText("txt" + string(rune('a'+next()%26)))
		}
		return n
	}
	f := func(rnd []byte) bool {
		idx := 0
		n := build(rnd, 0, &idx)
		back, err := ParseString(n.String())
		if err != nil {
			t.Logf("reparse error: %v", err)
			return false
		}
		return Equal(n, back)
	}
	if err := quick.Check(f, &quick.Config{MaxCount: 200}); err != nil {
		t.Error(err)
	}
}
