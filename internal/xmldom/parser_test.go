package xmldom

import (
	"strings"
	"testing"
)

func TestXMLDeclarationAndDoctype(t *testing.T) {
	root, err := ParseString(`<?xml version="1.0" encoding="UTF-8"?>
	<!DOCTYPE POLICY>
	<POLICY name="p"/>`)
	if err != nil {
		t.Fatal(err)
	}
	if root.Name != "POLICY" {
		t.Errorf("root = %s", root.Name)
	}
}

func TestComments(t *testing.T) {
	root, err := ParseString(`<A><!-- a comment with <tags> and -- dashes --><B/><!-- another --></A>`)
	if err != nil {
		t.Fatal(err)
	}
	if len(root.Children) != 1 || root.Children[0].Name != "B" {
		t.Errorf("children: %+v", root.Children)
	}
}

func TestCDATA(t *testing.T) {
	root, err := ParseString(`<A><![CDATA[x < y & z]]></A>`)
	if err != nil {
		t.Fatal(err)
	}
	if root.Text != "x < y & z" {
		t.Errorf("text = %q", root.Text)
	}
}

func TestEntities(t *testing.T) {
	root, err := ParseString(`<A a="&lt;&gt;&amp;&quot;&apos;">&#65;&#x42;c &amp; d</A>`)
	if err != nil {
		t.Fatal(err)
	}
	if v, _ := root.Attr("a"); v != `<>&"'` {
		t.Errorf("attr = %q", v)
	}
	if root.Text != "ABc & d" {
		t.Errorf("text = %q", root.Text)
	}
}

func TestEntityErrors(t *testing.T) {
	for _, src := range []string{
		`<A>&unknown;</A>`,
		`<A>&unterminated</A>`,
		`<A>&#xZZ;</A>`,
		`<A a="&nope;"/>`,
	} {
		if _, err := ParseString(src); err == nil {
			t.Errorf("ParseString(%q): expected error", src)
		}
	}
}

func TestNamespaceScoping(t *testing.T) {
	src := `<a:R xmlns:a="urn:one">
	  <a:C1/>
	  <inner xmlns:a="urn:two" xmlns="urn:dflt">
	    <a:C2/>
	    <plain/>
	  </inner>
	  <a:C3/>
	</a:R>`
	root, err := ParseString(src)
	if err != nil {
		t.Fatal(err)
	}
	if root.Space != "urn:one" {
		t.Errorf("root space = %q", root.Space)
	}
	inner := root.Child("inner")
	if inner.Space != "urn:dflt" {
		t.Errorf("inner (default ns) space = %q", inner.Space)
	}
	if got := inner.Child("C2").Space; got != "urn:two" {
		t.Errorf("shadowed prefix space = %q", got)
	}
	if got := inner.Child("plain").Space; got != "urn:dflt" {
		t.Errorf("plain child default space = %q", got)
	}
	// The shadowing ends with the element.
	if got := root.Child("C3").Space; got != "urn:one" {
		t.Errorf("after shadowing, space = %q", got)
	}
}

func TestSelfClosingNamespaceScope(t *testing.T) {
	// Declarations on a self-closing element must not leak to siblings.
	src := `<R xmlns:p="urn:outer"><a xmlns:p="urn:inner" q="1"/><p:b/></R>`
	root, err := ParseString(src)
	if err != nil {
		t.Fatal(err)
	}
	if got := root.Child("b").Space; got != "urn:outer" {
		t.Errorf("sibling space = %q", got)
	}
}

func TestUndeclaredPrefix(t *testing.T) {
	for _, src := range []string{
		`<p:A/>`,
		`<A p:x="1"/>`,
	} {
		if _, err := ParseString(src); err == nil {
			t.Errorf("ParseString(%q): expected undeclared-prefix error", src)
		}
	}
}

func TestUnprefixedAttributeHasNoNamespace(t *testing.T) {
	root, err := ParseString(`<A xmlns="urn:x" a="1"/>`)
	if err != nil {
		t.Fatal(err)
	}
	if root.Attrs[0].Space != "" {
		t.Errorf("unprefixed attribute got namespace %q", root.Attrs[0].Space)
	}
}

func TestMalformedInputs(t *testing.T) {
	cases := []string{
		`<A><B></C></A>`,      // mismatched end tag
		`<A b></A>`,           // attribute without value
		`<A b=unquoted/>`,     // unquoted attribute
		`<A b="unterminated>`, // unterminated attribute
		`text outside <A/>`,   // text before root
		`<A/><!-- ok --> tail`,
		`<A`,       // eof in tag
		`<A /`,     // eof in empty tag
		`<!-- -`,   // unterminated comment
		`<![CDATA`, // stray markup declaration
		`<?pi`,     // unterminated PI
	}
	for _, src := range cases {
		if _, err := ParseString(src); err == nil {
			t.Errorf("ParseString(%q): expected error", src)
		}
	}
}

func TestWhitespaceOnlyTextIgnored(t *testing.T) {
	root, err := ParseString("<A>\n\t  <B/>\n</A>")
	if err != nil {
		t.Fatal(err)
	}
	if root.Text != "" {
		t.Errorf("text = %q", root.Text)
	}
}

func TestTextSplitAroundChildren(t *testing.T) {
	root, err := ParseString(`<A>before <B/> after</A>`)
	if err != nil {
		t.Fatal(err)
	}
	// Character data on both sides of a child element is joined.
	if root.Text != "before after" {
		t.Errorf("text = %q", root.Text)
	}
}

func TestAttributesKeepDocumentOrder(t *testing.T) {
	root, err := ParseString(`<A z="1" a="2" m="3"/>`)
	if err != nil {
		t.Fatal(err)
	}
	var names []string
	for _, a := range root.Attrs {
		names = append(names, a.Name)
	}
	if strings.Join(names, ",") != "z,a,m" {
		t.Errorf("order = %v", names)
	}
}

func TestLargeDocument(t *testing.T) {
	var b strings.Builder
	b.WriteString("<R>")
	for i := 0; i < 5000; i++ {
		b.WriteString(`<E n="v">text</E>`)
	}
	b.WriteString("</R>")
	root, err := ParseString(b.String())
	if err != nil {
		t.Fatal(err)
	}
	if len(root.Children) != 5000 {
		t.Errorf("children = %d", len(root.Children))
	}
}
