package durable

import (
	"bytes"
	"errors"
	"io"
	"testing"

	"p3pdb/internal/core"
)

// streamLog builds a clean four-record log image with the real framing
// code: the same shape the leader ships to followers.
func streamLog(t testing.TB) []byte {
	t.Helper()
	records := []Record{
		{LSN: 1, Op: OpInstall, Name: "a", Doc: `<POLICY name="a"/>`},
		{LSN: 2, Op: OpInstall, Name: "b", Doc: `<POLICY name="b"/>`},
		{LSN: 3, Op: OpRemove, Name: "a"},
		{LSN: 4, Op: OpReference, Doc: `<META xmlns="http://www.w3.org/2002/01/P3Pv1"><POLICY-REFERENCES/></META>`},
	}
	var buf bytes.Buffer
	for i := range records {
		frame, err := encodeRecord(&records[i])
		if err != nil {
			t.Fatalf("encode record %d: %v", i, err)
		}
		buf.Write(frame)
	}
	return buf.Bytes()
}

// drainStream reads a stream to its end, returning the records it
// yielded and the terminal error (io.EOF for a clean end).
func drainStream(data []byte) ([]Record, error) {
	sr := NewStreamReader(bytes.NewReader(data))
	var recs []Record
	for {
		rec, err := sr.Next()
		if err != nil {
			return recs, err
		}
		recs = append(recs, *rec)
	}
}

// checkStreamParity asserts the streaming parser classifies an image
// exactly like local recovery: same record prefix, and the same
// torn-vs-corrupt verdict for whatever breaks the tail.
func checkStreamParity(t *testing.T, data []byte) {
	t.Helper()
	recs, serr := drainStream(data)
	res, lerr := scanLog(data)
	if lerr != nil {
		if !errors.Is(lerr, ErrCorrupt) {
			t.Fatalf("scanLog non-typed error: %v", lerr)
		}
		if !errors.Is(serr, ErrCorrupt) {
			t.Fatalf("scanLog says corrupt, stream says %v", serr)
		}
		return
	}
	if res.torn {
		if !errors.Is(serr, ErrStreamTorn) {
			t.Fatalf("scanLog says torn, stream says %v", serr)
		}
	} else if serr != io.EOF {
		t.Fatalf("scanLog says clean, stream says %v", serr)
	}
	if len(recs) != len(res.records) {
		t.Fatalf("stream yielded %d records, scanLog %d", len(recs), len(res.records))
	}
	for i := range recs {
		if recs[i].LSN != res.records[i].LSN || recs[i].Op != res.records[i].Op || recs[i].Name != res.records[i].Name {
			t.Fatalf("record %d diverges: stream %+v vs scan %+v", i, recs[i], res.records[i])
		}
	}
}

// TestStreamKillMatrix truncates a shipped WAL image at every byte
// boundary — every record edge and every mid-frame cut a dying leader
// or dropped connection can produce — and checks the follower's parser
// agrees with local recovery at each one.
func TestStreamKillMatrix(t *testing.T) {
	data := streamLog(t)
	for cut := 0; cut <= len(data); cut++ {
		checkStreamParity(t, data[:cut])
	}
}

// TestStreamCorruptMatrix flips every byte of the image in place: the
// stream parser must call bit rot (valid bytes beyond a broken frame)
// corrupt exactly where local recovery does, and torn where the damage
// reaches the end of what was shipped.
func TestStreamCorruptMatrix(t *testing.T) {
	data := streamLog(t)
	for pos := 0; pos < len(data); pos++ {
		mut := append([]byte(nil), data...)
		mut[pos] ^= 0xff
		checkStreamParity(t, mut)
	}
}

// TestStreamReaderCleanAndEmpty covers the two trivial ends: an empty
// stream is io.EOF with no records, a clean stream yields everything.
func TestStreamReaderCleanAndEmpty(t *testing.T) {
	if recs, err := drainStream(nil); err != io.EOF || len(recs) != 0 {
		t.Fatalf("empty stream: %d records, %v", len(recs), err)
	}
	data := streamLog(t)
	recs, err := drainStream(data)
	if err != io.EOF || len(recs) != 4 {
		t.Fatalf("clean stream: %d records, %v", len(recs), err)
	}
	if recs[3].LSN != 4 || recs[3].Op != OpReference {
		t.Fatalf("last record wrong: %+v", recs[3])
	}
}

// TestStateRecordRoundTrip checks the checkpoint-as-record path the
// leader uses when the log below a follower's cursor was truncated: the
// OpState frame must decode back and apply into an empty site as the
// full snapshot state.
func TestStateRecordRoundTrip(t *testing.T) {
	snap := &Snapshot{
		LSN:   7,
		Order: []string{"b", "a"},
		Policies: map[string]string{
			"a": polDoc("a"),
			"b": polDoc("b"),
		},
	}
	frame, err := EncodeRecord(StateRecord(snap))
	if err != nil {
		t.Fatal(err)
	}
	recs, derr := drainStream(frame)
	if derr != io.EOF || len(recs) != 1 {
		t.Fatalf("state frame: %d records, %v", len(recs), derr)
	}
	rec := recs[0]
	if rec.Op != OpState || rec.LSN != 7 || len(rec.Docs) != 2 {
		t.Fatalf("state record wrong: %+v", rec)
	}
	// Install order must survive: "b" before "a".
	site, err := core.NewSite()
	if err != nil {
		t.Fatal(err)
	}
	if err := ApplyRecord(site, &rec); err != nil {
		t.Fatalf("applying state record: %v", err)
	}
	order := site.ExportState().Order
	if len(order) != 2 || order[0] != "b" || order[1] != "a" {
		t.Fatalf("restored order wrong: %v", order)
	}
}

// FuzzWALStream fuzzes the streaming frame parser against local
// recovery: on arbitrary bytes the two must agree on the record prefix
// and on the torn-vs-corrupt verdict, and the stream reader must never
// panic or mint records local recovery would reject.
func FuzzWALStream(f *testing.F) {
	addCorpus(f)
	f.Add([]byte{})
	f.Add([]byte{0x01})
	var seed []byte
	records := []Record{
		{LSN: 1, Op: OpInstall, Name: "a", Doc: `<POLICY name="a"/>`},
		{LSN: 2, Op: OpState, Docs: []string{`<POLICY name="a"/>`}},
	}
	for i := range records {
		frame, err := encodeRecord(&records[i])
		if err != nil {
			f.Fatal(err)
		}
		seed = append(seed, frame...)
	}
	f.Add(seed)
	f.Fuzz(func(t *testing.T, data []byte) {
		checkStreamParity(t, data)
	})
}

// TestReadFromAndChanged covers the leader-side stream cursor directly:
// full history from zero, cursor skipping, the snapshot handed out once
// a checkpoint truncates the log, the lost-wakeup contract of Changed,
// and ErrClosed after Close.
func TestReadFromAndChanged(t *testing.T) {
	store, err := Open(t.TempDir(), Options{Fsync: FsyncNever, CheckpointEvery: -1})
	if err != nil {
		t.Fatal(err)
	}
	journal, err := store.OpenTenant("x")
	if err != nil {
		t.Fatal(err)
	}
	site, err := core.NewSite()
	if err != nil {
		t.Fatal(err)
	}
	if _, err := journal.InstallPolicyXML(site, polDoc("a")); err != nil {
		t.Fatal(err)
	}

	// Grab the channel, then append: the held channel must close.
	changed := journal.Changed()
	if _, err := journal.InstallPolicyXML(site, polDoc("b")); err != nil {
		t.Fatal(err)
	}
	select {
	case <-changed:
	default:
		t.Fatal("Changed channel not closed by append")
	}

	snap, recs, lsn, err := journal.ReadFrom(0)
	if err != nil || snap != nil || len(recs) != 2 || lsn != 2 {
		t.Fatalf("ReadFrom(0): snap=%v recs=%d lsn=%d err=%v", snap, len(recs), lsn, err)
	}
	_, recs, _, err = journal.ReadFrom(1)
	if err != nil || len(recs) != 1 || recs[0].LSN != 2 {
		t.Fatalf("ReadFrom(1): %+v, %v", recs, err)
	}
	// A caught-up (or future) cursor gets nothing.
	snap, recs, _, err = journal.ReadFrom(99)
	if err != nil || snap != nil || len(recs) != 0 {
		t.Fatalf("ReadFrom(99): snap=%v recs=%d err=%v", snap, len(recs), err)
	}

	// Checkpoint truncates the log: a from-zero cursor now gets the
	// snapshot (records below it no longer exist), a caught-up one not.
	if err := journal.Checkpoint(site); err != nil {
		t.Fatal(err)
	}
	snap, recs, lsn, err = journal.ReadFrom(0)
	if err != nil || snap == nil || len(recs) != 0 || lsn != 2 {
		t.Fatalf("post-checkpoint ReadFrom(0): snap=%v recs=%d lsn=%d err=%v", snap, len(recs), lsn, err)
	}
	if snap.LSN != 2 || len(snap.Policies) != 2 {
		t.Fatalf("snapshot wrong: %+v", snap)
	}
	if snap, recs, _, err = journal.ReadFrom(2); err != nil || snap != nil || len(recs) != 0 {
		t.Fatalf("caught-up post-checkpoint: snap=%v recs=%d err=%v", snap, len(recs), err)
	}

	if err := journal.Close(); err != nil {
		t.Fatal(err)
	}
	if _, _, _, err := journal.ReadFrom(0); !errors.Is(err, ErrClosed) {
		t.Fatalf("ReadFrom after Close: %v, want ErrClosed", err)
	}
}
