package durable

import (
	"encoding/binary"
	"encoding/json"
	"errors"
	"fmt"
	"hash/crc32"
	"os"
	"path/filepath"

	"p3pdb/internal/faultkit"
)

// A snapshot checkpoint is the tenant's full logical state — every
// installed policy document in install order plus the reference file —
// written as one atomically-renamed file:
//
//	[8B magic "P3PSNAP1"][4B CRC32C of body][JSON body]
//
// The body embeds the LSN the snapshot covers; recovery loads the
// snapshot and then replays only log records with a higher LSN, so a
// crash anywhere between snapshot rename and log truncation replays
// into exactly the same state.

// snapMagic identifies (and versions) the snapshot file format.
var snapMagic = []byte("P3PSNAP1")

const (
	snapName = "snapshot.json"
	snapTemp = "snapshot.tmp"
	logName  = "wal.log"
)

// ErrSnapshotCorrupt reports a snapshot file whose magic or checksum
// does not verify. Unlike a torn log tail this is never survivable —
// the log past the snapshot LSN was truncated trusting it.
var ErrSnapshotCorrupt = errors.New("durable: snapshot corrupt")

// Snapshot is the checkpointed logical state of one tenant.
type Snapshot struct {
	// LSN is the last log record the snapshot covers.
	LSN uint64 `json:"lsn"`
	// Order lists policy names in install order; Policies maps each to
	// its rendered XML document.
	Order    []string          `json:"order"`
	Policies map[string]string `json:"policies"`
	// Reference is the reference-file document, empty when none is
	// installed.
	Reference string `json:"reference,omitempty"`
	// Prefs lists the registered preference rulesets in registration
	// order. Absent in pre-preference snapshots, which decode to an
	// empty list — old snapshot files stay readable.
	Prefs []PrefEntry `json:"prefs,omitempty"`
}

// writeSnapshot persists a snapshot with the temp-file + rename + dir
// fsync protocol, so a crash at any step leaves either the old snapshot
// or the new one, never a mix.
func writeSnapshot(dir string, snap *Snapshot) error {
	body, err := json.Marshal(snap)
	if err != nil {
		return err
	}
	buf := make([]byte, 0, len(snapMagic)+4+len(body))
	buf = append(buf, snapMagic...)
	buf = binary.LittleEndian.AppendUint32(buf, crc32.Checksum(body, castagnoli))
	buf = append(buf, body...)

	tmp := filepath.Join(dir, snapTemp)
	f, err := os.OpenFile(tmp, os.O_CREATE|os.O_TRUNC|os.O_WRONLY, 0o644)
	if err != nil {
		return err
	}
	if _, err := f.Write(buf); err != nil {
		f.Close()
		return err
	}
	if err := syncFile(f); err != nil {
		f.Close()
		return err
	}
	if err := f.Close(); err != nil {
		return err
	}
	if err := faultkit.Inject(faultkit.PointDurableRename); err != nil {
		return fmt.Errorf("durable: snapshot rename: %w", err)
	}
	if err := os.Rename(tmp, filepath.Join(dir, snapName)); err != nil {
		return fmt.Errorf("durable: snapshot rename: %w", err)
	}
	return syncDir(dir)
}

// readSnapshot loads a tenant's snapshot; a missing file yields a nil
// snapshot (the tenant checkpoints lazily), a damaged one
// ErrSnapshotCorrupt.
func readSnapshot(dir string) (*Snapshot, error) {
	data, err := readAll(filepath.Join(dir, snapName))
	if err != nil {
		return nil, err
	}
	if data == nil {
		return nil, nil
	}
	if len(data) < len(snapMagic)+4 || string(data[:len(snapMagic)]) != string(snapMagic) {
		return nil, fmt.Errorf("%w: bad header", ErrSnapshotCorrupt)
	}
	stored := binary.LittleEndian.Uint32(data[len(snapMagic) : len(snapMagic)+4])
	body := data[len(snapMagic)+4:]
	if crc32.Checksum(body, castagnoli) != stored {
		return nil, fmt.Errorf("%w: CRC mismatch", ErrSnapshotCorrupt)
	}
	var snap Snapshot
	if err := json.Unmarshal(body, &snap); err != nil {
		return nil, fmt.Errorf("%w: %v", ErrSnapshotCorrupt, err)
	}
	return &snap, nil
}
