// Package durable gives tenant sites database durability: the paper's
// premise is that a site's policies are shredded once and then served
// from a persistent DBMS, so admin mutations must survive a process
// kill, not just a snapshot swap. Each tenant gets an append-only
// write-ahead log of its mutations plus periodic snapshot checkpoints;
// recovery rebuilds the tenant by loading the newest checkpoint and
// replaying the log tail through the same all-or-nothing snapshot-swap
// path every other write uses.
//
// The protocol (DESIGN.md §10):
//
//   - Every mutation appends one CRC32C-framed record before it is
//     acknowledged (fsync per the configured policy: always, interval,
//     or never).
//   - A checkpoint writes the full logical state (policy documents in
//     install order + reference file) to a temp file, fsyncs, renames it
//     over snapshot.json, fsyncs the directory, then truncates the log —
//     records at or below the snapshot's LSN are skipped on replay, so a
//     crash between rename and truncate is harmless.
//   - Recovery tolerates a torn final record (truncate and warn) and
//     refuses mid-log CRC damage with ErrCorrupt: a torn tail is what a
//     crash produces, interior damage means acknowledged mutations would
//     be silently lost.
//
// The Tenant is also the durable mutation front-door: its mutation
// methods run a group-apply pipeline — concurrent mutations register in
// a queue, and whoever wins the journal lock applies everything queued
// as one core.ApplyBatch (one snapshot rebuild), appends the records,
// and shares one fsync. Apply and append happen under one lock, so a
// checkpoint can never capture a site state whose mutations are not yet
// in the log (which would double-apply them on replay).
package durable

import (
	"errors"
	"fmt"
	"os"
	"path/filepath"
	"runtime"
	"sort"
	"sync"
	"time"

	"p3pdb/internal/core"
	"p3pdb/internal/faultkit"
	"p3pdb/internal/obs"
	"p3pdb/internal/p3p"
	"p3pdb/internal/reffile"
)

// Durability observability, surfaced on /metrics as durable.*.
var (
	obsAppends     = obs.GetCounter("durable.records_appended")
	obsBytes       = obs.GetCounter("durable.bytes_appended")
	obsFsyncs      = obs.GetCounter("durable.fsyncs")
	obsCheckpoints = obs.GetCounter("durable.checkpoints")
	obsRecoveries  = obs.GetCounter("durable.recovery_replays")
	obsReplayed    = obs.GetCounter("durable.replayed_records")
	obsTorn        = obs.GetCounter("durable.torn_tail_truncations")
	obsRollbacks   = obs.GetCounter("durable.append_rollbacks")
	obsGroups      = obs.GetCounter("durable.apply_groups")
	obsGroupMuts   = obs.GetCounter("durable.apply_group_mutations")
	obsOpenLogs    = obs.GetGauge("durable.open_logs")
)

// ErrClosed reports a mutation against a closed tenant journal (for
// example after LRU eviction closed it under a stale handler).
var ErrClosed = errors.New("durable: tenant journal closed")

// AppendError marks a failure in the durability layer itself — the
// mutation was valid and (briefly) applied, but could not be made
// durable and was rolled back. Servers map it to a 503 rather than the
// 400 a malformed document earns.
type AppendError struct{ Err error }

func (e *AppendError) Error() string { return e.Err.Error() }
func (e *AppendError) Unwrap() error { return e.Err }

// FsyncPolicy selects when the log reaches stable storage.
type FsyncPolicy int

const (
	// FsyncAlways syncs after every appended record: a 2xx means the
	// mutation survives power loss. The slowest and strongest setting.
	FsyncAlways FsyncPolicy = iota
	// FsyncInterval is true group commit: an acknowledgement waits for
	// the coalesced fsync covering its record, so a 2xx still survives
	// power loss — concurrent mutations share one fsync (and one
	// snapshot rebuild) instead of paying one each. The background
	// timer (Options.FsyncInterval) is a hygiene backstop, not the ack
	// path.
	FsyncInterval
	// FsyncNever leaves syncing to the OS: survives process kills (the
	// page cache persists) but not power loss.
	FsyncNever
)

// String names the policy as the -fsync flag spells it.
func (p FsyncPolicy) String() string {
	switch p {
	case FsyncAlways:
		return "always"
	case FsyncInterval:
		return "interval"
	case FsyncNever:
		return "never"
	}
	return fmt.Sprintf("FsyncPolicy(%d)", int(p))
}

// ParseFsyncPolicy resolves a -fsync flag value.
func ParseFsyncPolicy(s string) (FsyncPolicy, error) {
	switch s {
	case "always":
		return FsyncAlways, nil
	case "interval":
		return FsyncInterval, nil
	case "never":
		return FsyncNever, nil
	}
	return 0, fmt.Errorf("durable: unknown fsync policy %q (want always, interval, or never)", s)
}

// Options configure a Store and every tenant it opens.
type Options struct {
	// Fsync is the log sync policy; the zero value is FsyncAlways.
	Fsync FsyncPolicy
	// FsyncInterval is the hygiene sync period for FsyncInterval (the
	// ack path is the group commit itself); zero means 100ms.
	FsyncInterval time.Duration
	// CheckpointEvery triggers an automatic snapshot checkpoint after
	// this many logged records; zero means 256. Negative disables
	// automatic checkpoints (explicit Checkpoint calls still work).
	CheckpointEvery int
}

func (o Options) withDefaults() Options {
	if o.FsyncInterval == 0 {
		o.FsyncInterval = 100 * time.Millisecond
	}
	if o.CheckpointEvery == 0 {
		o.CheckpointEvery = 256
	}
	return o
}

// Store is the root of the durable layout: one subdirectory per tenant,
// each holding wal.log and snapshot.json.
type Store struct {
	dir  string
	opts Options
}

// Open creates (if needed) and returns the durable store rooted at dir.
func Open(dir string, opts Options) (*Store, error) {
	if err := os.MkdirAll(dir, 0o755); err != nil {
		return nil, fmt.Errorf("durable: %w", err)
	}
	return &Store{dir: dir, opts: opts.withDefaults()}, nil
}

// Dir returns the store's root directory.
func (s *Store) Dir() string { return s.dir }

// HasTenant reports whether the store holds durable state for name.
func (s *Store) HasTenant(name string) bool {
	dir := filepath.Join(s.dir, name)
	for _, f := range []string{logName, snapName} {
		if fi, err := os.Stat(filepath.Join(dir, f)); err == nil && !fi.IsDir() {
			return true
		}
	}
	return false
}

// TenantNames lists every tenant with durable state, sorted.
func (s *Store) TenantNames() []string {
	des, err := os.ReadDir(s.dir)
	if err != nil {
		return nil
	}
	var names []string
	for _, de := range des {
		if de.IsDir() && s.HasTenant(de.Name()) {
			names = append(names, de.Name())
		}
	}
	sort.Strings(names)
	return names
}

// RemoveTenant deletes a tenant's durable state entirely (the admin
// DELETE path: the tenant is durably gone; a sites-dir-backed tenant
// re-bootstraps from its directory on next load).
func (s *Store) RemoveTenant(name string) error {
	return os.RemoveAll(filepath.Join(s.dir, name))
}

// Tenant is one tenant's open journal: the write-ahead log handle, its
// LSN bookkeeping, and the recovered-but-not-yet-replayed state between
// OpenTenant and ReplayInto.
type Tenant struct {
	name string
	dir  string
	opts Options

	mu       sync.Mutex
	f        *os.File
	closed   bool
	lsn      uint64 // last assigned LSN
	snapLSN  uint64 // LSN covered by the newest checkpoint
	logBytes int64
	since    int  // records since the last checkpoint
	torn     bool // recovery truncated a torn tail
	syncErr  error

	// appendSeq counts appended records; syncedSeq the count covered by
	// the last successful fsync. They replace a bare needs-sync flag so
	// a sync that started before later appends never claims to cover
	// them.
	appendSeq uint64
	syncedSeq uint64

	// batch is the open group-commit window (FsyncInterval only): the
	// first group since the last fsync opens it, capturing the
	// rollback point; every group until the batch commits joins it.
	// One fsync acknowledges every mutation in the window, and one
	// failed fsync fails them all.
	batch *commitBatch

	// qmu guards queue, the group-apply registration list: a mutation
	// registers here before contending for mu, so whoever wins the
	// lock applies everything registered so far as one group — one
	// snapshot rebuild and one log pass for N concurrent writers.
	qmu   sync.Mutex
	queue []*mutOp

	// changed is closed and replaced whenever a record is appended, so
	// WAL streamers can long-poll for new records without spinning.
	changed chan struct{}

	// recovered state, consumed by ReplayInto.
	pending         *Snapshot
	pendingRecords  []Record
	pendingConsumed bool

	stopSync chan struct{}
	syncDone chan struct{}
}

// OpenTenant opens (creating if absent) a tenant's journal and scans its
// durable state. A torn final record is truncated away and reported via
// Status and the durable.torn_tail_truncations counter; mid-log CRC
// damage fails with ErrCorrupt, a damaged snapshot with
// ErrSnapshotCorrupt. Call ReplayInto to apply the recovered state to a
// fresh site.
func (s *Store) OpenTenant(name string) (*Tenant, error) {
	dir := filepath.Join(s.dir, name)
	if err := os.MkdirAll(dir, 0o755); err != nil {
		return nil, fmt.Errorf("durable: %w", err)
	}
	snap, err := readSnapshot(dir)
	if err != nil {
		return nil, err
	}
	logPath := filepath.Join(dir, logName)
	data, err := readAll(logPath)
	if err != nil {
		return nil, fmt.Errorf("durable: %w", err)
	}
	res, err := scanLog(data)
	if err != nil {
		return nil, err
	}
	f, err := os.OpenFile(logPath, os.O_CREATE|os.O_RDWR, 0o644)
	if err != nil {
		return nil, fmt.Errorf("durable: %w", err)
	}
	if res.torn {
		// A crash mid-append left a partial frame; drop it so the log is
		// a clean prefix again before anything new is appended after it.
		if err := f.Truncate(res.validLen); err != nil {
			f.Close()
			return nil, fmt.Errorf("durable: truncating torn tail: %w", err)
		}
		obsTorn.Inc()
	}
	if _, err := f.Seek(res.validLen, 0); err != nil {
		f.Close()
		return nil, fmt.Errorf("durable: %w", err)
	}

	t := &Tenant{
		name:           name,
		dir:            dir,
		opts:           s.opts,
		f:              f,
		logBytes:       res.validLen,
		torn:           res.torn,
		changed:        make(chan struct{}),
		pending:        snap,
		pendingRecords: res.records,
	}
	if snap != nil {
		t.snapLSN = snap.LSN
		t.lsn = snap.LSN
	}
	for _, rec := range res.records {
		if rec.LSN > t.lsn {
			t.lsn = rec.LSN
		}
	}
	if s.opts.Fsync == FsyncInterval {
		t.stopSync = make(chan struct{})
		t.syncDone = make(chan struct{})
		go t.syncLoop()
	}
	obsOpenLogs.Add(1)
	return t, nil
}

// commitBatch is one group-commit window: the appends acknowledged by a
// single coalesced fsync. The rollback fields capture the tenant's
// position before the batch's first record, so a failed fsync can
// truncate every record in the window away and roll the site back to
// the last acknowledged state — no waiter gets a 2xx that rides a dead
// fsync, and none keeps state the log does not hold.
type commitBatch struct {
	ops []*mutOp

	site      *core.Site
	prevExp   core.StateExport
	prevBytes int64
	prevLSN   uint64
	prevSince int
}

// mutOp is one durable mutation in flight through the group-apply
// pipeline: its log record, its site edit in batchable form, and the
// channel its writer waits on for the durable outcome.
type mutOp struct {
	site *core.Site
	rec  *Record
	mut  core.Mutation
	err  error
	done chan struct{}
}

// resolve delivers the mutation's final outcome to its waiting writer.
func (o *mutOp) resolve(err error) {
	o.err = err
	close(o.done)
}

// syncLoop is interval mode's hygiene timer: batches are normally
// committed by their leader append, so the ticker only resolves
// anything a leader never got to (and keeps the legacy "flush within
// one interval" property for unsynced bytes).
func (t *Tenant) syncLoop() {
	defer close(t.syncDone)
	ticker := time.NewTicker(t.opts.FsyncInterval)
	defer ticker.Stop()
	for {
		select {
		case <-t.stopSync:
			return
		case <-ticker.C:
		}
		t.mu.Lock()
		if !t.closed {
			_ = t.commitLocked()
		}
		t.mu.Unlock()
	}
}

// needsSyncLocked reports whether records were appended since the last
// successful fsync.
func (t *Tenant) needsSyncLocked() bool { return t.appendSeq != t.syncedSeq }

// commitLocked performs one coalesced fsync and resolves the open
// commit batch. Holding t.mu across the fsync means no append can slip
// into the window after it is judged: appends blocked on the lock open
// the next batch and ride the next fsync. On success every waiter in
// the batch is acknowledged; on failure the whole window is truncated
// from the log, the site rolled back to the batch's first-record
// snapshot, and every waiter fails with the fsync's error. Returns the
// fsync error, if any.
func (t *Tenant) commitLocked() error {
	b := t.batch
	t.batch = nil
	if b == nil {
		// No waiters: hygiene flush for any unsynced bytes (none in
		// steady state, since every interval-mode append waits).
		if !t.needsSyncLocked() || t.opts.Fsync == FsyncNever {
			return nil
		}
		target := t.appendSeq
		if err := syncFile(t.f); err != nil {
			t.syncErr = err
			return err
		}
		t.syncedSeq = target
		t.syncErr = nil
		return nil
	}
	target := t.appendSeq
	err := faultkit.Inject(faultkit.PointDurableGroupCommit)
	if err == nil {
		err = syncFile(t.f)
	}
	if err == nil {
		t.syncedSeq = target
		t.syncErr = nil
		for _, op := range b.ops {
			op.resolve(nil)
		}
		return nil
	}
	t.syncErr = err
	// The coalesced fsync failed: none of the batch's records may stay
	// acknowledged. Truncate the window away so the on-disk log remains
	// a clean prefix of acknowledged records, and roll the site back so
	// memory never runs ahead of the log.
	if terr := t.f.Truncate(b.prevBytes); terr == nil {
		_, _ = t.f.Seek(b.prevBytes, 0)
	} else {
		// The unacknowledged window is stuck on disk; refuse further
		// appends, as in appendLocked.
		t.closed = true
		_ = t.f.Close()
		err = errors.Join(err, terr)
	}
	t.logBytes = b.prevBytes
	t.lsn = b.prevLSN
	t.since = b.prevSince
	t.syncedSeq = t.appendSeq
	if rerr := restore(b.site, b.prevExp); rerr != nil {
		err = errors.Join(err, fmt.Errorf("durable: rollback failed, memory ahead of log: %w", rerr))
	}
	for _, op := range b.ops {
		op.resolve(&AppendError{Err: err})
	}
	return err
}

// Name returns the tenant name the journal was opened under.
func (t *Tenant) Name() string { return t.name }

// Torn reports whether opening the journal truncated a torn tail.
func (t *Tenant) Torn() bool { return t.torn }

// Status is the tenant's durability position, served by the
// /durability endpoint.
type Status struct {
	Tenant                 string `json:"tenant"`
	LSN                    uint64 `json:"lsn"`
	CheckpointLSN          uint64 `json:"checkpointLSN"`
	LogBytes               int64  `json:"logBytes"`
	RecordsSinceCheckpoint int    `json:"recordsSinceCheckpoint"`
	Fsync                  string `json:"fsync"`
	TornTailRecovered      bool   `json:"tornTailRecovered,omitempty"`
	SyncError              string `json:"syncError,omitempty"`
}

// Status reports the journal's current durability position.
func (t *Tenant) Status() Status {
	t.mu.Lock()
	defer t.mu.Unlock()
	st := Status{
		Tenant:                 t.name,
		LSN:                    t.lsn,
		CheckpointLSN:          t.snapLSN,
		LogBytes:               t.logBytes,
		RecordsSinceCheckpoint: t.since,
		Fsync:                  t.opts.Fsync.String(),
		TornTailRecovered:      t.torn,
	}
	if t.syncErr != nil {
		st.SyncError = t.syncErr.Error()
	}
	return st
}

// Close resolves any open commit batch, stops the sync timer, flushes
// the log, and closes the file. Safe to call twice.
func (t *Tenant) Close() error {
	t.mu.Lock()
	if t.closed {
		t.mu.Unlock()
		return nil
	}
	// Resolve the open batch (fsync and acknowledge, or roll back) so
	// no waiter hangs on a closed journal.
	err := t.commitLocked()
	var cerr error
	if !t.closed {
		t.closed = true
		cerr = t.f.Close()
	}
	t.mu.Unlock()
	if t.stopSync != nil {
		close(t.stopSync)
		<-t.syncDone
	}
	obsOpenLogs.Add(-1)
	return errors.Join(err, cerr)
}

// appendLocked frames and writes one record, assigning its LSN and
// honouring the fsync policy. Caller holds t.mu. On a failed write —
// or a failed fsync under FsyncAlways, where the record was never
// acknowledged — the record's bytes are truncated away so the on-disk
// log remains a clean prefix of acknowledged records; otherwise a
// rolled-back mutation would resurrect on replay.
//
// sync=false defers FsyncAlways's per-record fsync to the caller, which
// must issue one covering fsync for the run of appends (the batched
// group path) and roll the whole run back if it fails.
func (t *Tenant) appendLocked(rec *Record, sync bool) error {
	if t.closed {
		return ErrClosed
	}
	rec.LSN = t.lsn + 1
	frame, err := encodeRecord(rec)
	if err != nil {
		return err
	}
	prev := t.logBytes
	n, err := appendFrame(t.f, frame)
	if err == nil && sync && t.opts.Fsync == FsyncAlways {
		err = syncFile(t.f)
	}
	if err != nil {
		if terr := t.f.Truncate(prev); terr == nil {
			_, _ = t.f.Seek(prev, 0)
		} else {
			// The unacknowledged frame is stuck on disk; refuse further
			// appends — recovery handles the tail, but appending after it
			// would turn it into mid-log corruption.
			t.closed = true
			_ = t.f.Close()
			err = errors.Join(err, terr)
		}
		return err
	}
	t.logBytes = prev + n
	t.lsn++
	t.since++
	t.appendSeq++
	if sync && t.opts.Fsync == FsyncAlways {
		// The fsync above covered this append.
		t.syncedSeq = t.appendSeq
	}
	close(t.changed)
	t.changed = make(chan struct{})
	obsAppends.Inc()
	obsBytes.Add(n)
	return nil
}

// restore rolls a site back to a captured export after a log append
// failed, so memory never runs ahead of the acknowledged durable state.
// RestoreState (not ReplacePolicies) because the export may carry a
// reference file with refs left dangling by an earlier RemovePolicy.
func restore(site *core.Site, exp core.StateExport) error {
	obsRollbacks.Inc()
	return site.RestoreState(exp)
}

// parseExport rebuilds parsed policies (in order) and the reference file
// from exported documents.
func parseExport(order []string, docs map[string]string, ref string) ([]*p3p.Policy, *reffile.RefFile, error) {
	var pols []*p3p.Policy
	for _, name := range order {
		ps, err := p3p.ParsePolicies(docs[name])
		if err != nil {
			return nil, nil, fmt.Errorf("durable: policy %s: %w", name, err)
		}
		pols = append(pols, ps...)
	}
	var rf *reffile.RefFile
	if ref != "" {
		var err error
		rf, err = reffile.Parse(ref)
		if err != nil {
			return nil, nil, fmt.Errorf("durable: reference file: %w", err)
		}
	}
	return pols, rf, nil
}

// apply queues one mutation for the group-apply pipeline and waits for
// its durable outcome. A mutation registers in the queue before
// contending for the journal lock, so whoever wins the lock drains
// everything registered so far as one group: the applies collapse into
// a single core.ApplyBatch (one snapshot rebuild for N concurrent
// writers), the records append in queue order, and under FsyncInterval
// the whole group joins the open commit batch, whose coalesced fsync
// resolves every writer with that fsync's real outcome.
//
// The contract is unchanged from the one-mutation-at-a-time design: the
// mutation is durable (per the fsync policy) before apply returns, a
// concurrent Checkpoint can never capture applied-but-unlogged state,
// and on any durability failure the site is rolled back, so an error
// response never leaves memory ahead of the log.
func (t *Tenant) apply(site *core.Site, rec *Record, mut core.Mutation) error {
	op := &mutOp{site: site, rec: rec, mut: mut, done: make(chan struct{})}
	t.qmu.Lock()
	t.queue = append(t.queue, op)
	t.qmu.Unlock()

	// Yield between registering and contending: writers woken together
	// (say, by the previous group's resolution) all register before the
	// first of them wins the lock, so the winner drains them as one
	// group. Without this the wake-up train processes one mutation per
	// lock acquisition and the batch never widens; for a lone writer
	// the yield is a no-op.
	runtime.Gosched()
	t.mu.Lock()
	var created *commitBatch
	select {
	case <-op.done:
		// An earlier lock winner already carried this mutation through
		// its group; nothing left to do under the lock.
	default:
		created = t.processQueueLocked()
	}
	t.mu.Unlock()
	if created != nil {
		// The batch's creator commits it. The yield is the coalescing
		// window: writers already blocked on the lock get scheduled,
		// append, and join the batch before the creator re-acquires it —
		// without it the creator barges back in ahead of the waiters it
		// just woke (acute on one CPU) and every batch holds one group.
		// A lone writer's yield is a no-op, so the serial path stays one
		// append + one fsync with no goroutine handoff. The sync loop's
		// ticker remains as hygiene for anything a creator never got to.
		runtime.Gosched()
		t.mu.Lock()
		if t.batch == created {
			_ = t.commitLocked()
		}
		t.mu.Unlock()
	}
	<-op.done
	return op.err
}

// processQueueLocked drains the registration queue and carries every
// queued mutation through apply + append as one group, resolving each
// writer (or, under FsyncInterval, parking it on the commit batch).
// Returns the commit batch this call opened, if any, so the caller can
// commit it after releasing the lock.
//
// The group takes the batched path — one ApplyBatch, one snapshot
// rebuild — when every mutation targets the same site. If that batch
// fails (it is all-or-nothing, so one bad mutation poisons it), the
// group falls back to per-mutation applies, reproducing exactly the
// outcome of the unbatched design: a bad mutation fails alone with its
// own error, the rest proceed.
func (t *Tenant) processQueueLocked() *commitBatch {
	t.qmu.Lock()
	ops := t.queue
	t.queue = nil
	t.qmu.Unlock()
	if len(ops) == 0 {
		return nil
	}
	if t.closed {
		for _, op := range ops {
			op.resolve(&AppendError{Err: ErrClosed})
		}
		return nil
	}

	obsGroups.Inc()
	obsGroupMuts.Add(int64(len(ops)))

	site := ops[0].site
	prevExp := site.ExportState()
	prevBytes, prevLSN, prevSince := t.logBytes, t.lsn, t.since
	prevSeq := t.appendSeq

	batched := len(ops) > 1
	for _, op := range ops {
		if op.site != site {
			batched = false
			break
		}
	}
	if batched {
		muts := make([]core.Mutation, len(ops))
		for i, op := range ops {
			muts[i] = op.mut
		}
		batched = site.ApplyBatch(muts) == nil
	}

	applied := ops
	if batched {
		// One rebuild covered every mutation; now log them. The group's
		// applies published as one snapshot, so a failure mid-group
		// cannot leave the earlier ones acknowledged: the whole group
		// rolls back — log truncated to the group start, site restored —
		// and every writer in it fails.
		var err error
		for _, op := range ops {
			if err = t.appendLocked(op.rec, false); err != nil {
				break
			}
		}
		if err == nil && t.opts.Fsync == FsyncAlways {
			// One covering fsync acknowledges the whole group — the same
			// guarantee as per-record syncs (no record is acknowledged
			// before it is stable) at a fraction of the cost.
			target := t.appendSeq
			if err = syncFile(t.f); err == nil {
				t.syncedSeq = target
			}
		}
		if err != nil {
			// appendLocked already truncated its own frame (or sealed
			// the journal if it could not); peel back the group's
			// earlier records the same way.
			if !t.closed {
				if terr := t.f.Truncate(prevBytes); terr == nil {
					_, _ = t.f.Seek(prevBytes, 0)
				} else {
					t.closed = true
					_ = t.f.Close()
					err = errors.Join(err, terr)
				}
			}
			t.logBytes = prevBytes
			t.lsn = prevLSN
			t.since = prevSince
			if t.batch == nil {
				// Nothing older is awaiting a sync, so the truncated
				// prefix is fully covered; with an open batch, leave
				// the counters pending for its fsync.
				t.appendSeq = prevSeq
				t.syncedSeq = prevSeq
			}
			if rerr := restore(site, prevExp); rerr != nil {
				err = errors.Join(err, fmt.Errorf("durable: rollback failed, memory ahead of log: %w", rerr))
			}
			for _, o := range ops {
				o.resolve(&AppendError{Err: err})
			}
			return nil
		}
	} else {
		// Serial path: each mutation applies and logs independently, with
		// its own rollback point, so each writer sees exactly the error
		// and side effects the unbatched path produced.
		applied = make([]*mutOp, 0, len(ops))
		for _, op := range ops {
			exp := op.site.ExportState()
			if err := op.site.ApplyBatch([]core.Mutation{op.mut}); err != nil {
				op.resolve(err)
				continue
			}
			if err := t.appendLocked(op.rec, true); err != nil {
				if rerr := restore(op.site, exp); rerr != nil {
					err = errors.Join(err, fmt.Errorf("durable: rollback failed, memory ahead of log: %w", rerr))
				}
				op.resolve(&AppendError{Err: err})
				continue
			}
			applied = append(applied, op)
		}
	}

	if len(applied) == 0 {
		return nil
	}
	if t.opts.Fsync != FsyncInterval {
		// FsyncAlways synced inside appendLocked; FsyncNever leaves
		// syncing to the OS. Either way the group is acknowledged.
		for _, op := range applied {
			op.resolve(nil)
		}
		return nil
	}
	var created *commitBatch
	if t.batch == nil {
		created = &commitBatch{
			site:      site,
			prevExp:   prevExp,
			prevBytes: prevBytes,
			prevLSN:   prevLSN,
			prevSince: prevSince,
		}
		t.batch = created
	}
	t.batch.ops = append(t.batch.ops, applied...)
	return created
}

// InstallPolicyXML durably installs a policy document: applied to the
// site, then logged, before returning. The document is parsed here, so
// a malformed document fails before it ever reaches the pipeline (the
// same unwrapped parse error the site method returns).
func (t *Tenant) InstallPolicyXML(site *core.Site, doc string) ([]string, error) {
	pols, err := p3p.ParsePolicies(doc)
	if err != nil {
		return nil, err
	}
	if err := t.apply(site, &Record{Op: OpInstall, Doc: doc}, core.InstallPoliciesMutation(pols)); err != nil {
		return nil, err
	}
	names := make([]string, len(pols))
	for i, pol := range pols {
		names[i] = pol.Name
	}
	return names, nil
}

// RemovePolicy durably removes a named policy.
func (t *Tenant) RemovePolicy(site *core.Site, name string) error {
	return t.apply(site, &Record{Op: OpRemove, Name: name}, core.RemovePolicyMutation(name))
}

// InstallReferenceFileXML durably installs the reference file.
func (t *Tenant) InstallReferenceFileXML(site *core.Site, doc string) error {
	rf, err := reffile.Parse(doc)
	if err != nil {
		return err
	}
	return t.apply(site, &Record{Op: OpReference, Doc: doc}, core.InstallReferenceFileMutation(rf))
}

// Replace durably replaces the whole policy set (and reference file,
// empty for none) from raw documents — the registry's dir-reload path,
// logged as one record.
func (t *Tenant) Replace(site *core.Site, docs []string, ref string) error {
	pols, rf, err := parseExport(orderOf(docs), docsMap(docs), ref)
	if err != nil {
		return err
	}
	return t.apply(site, &Record{Op: OpReplace, Docs: docs, Ref: ref}, core.ReplacePoliciesMutation(pols, rf))
}

// RegisterPreferenceXML durably registers (or replaces) a preference
// ruleset under a name. The document is parsed, validated, and indexed
// eagerly — a malformed ruleset or unknown engine fails before anything
// reaches the pipeline — and the registration pre-warms the decision
// cache through the same ApplyBatch hook every other mutation uses.
func (t *Tenant) RegisterPreferenceXML(site *core.Site, name, xml string, engines []string) error {
	mut, err := core.RegisterPreferenceMutation(name, xml, engines)
	if err != nil {
		return err
	}
	return t.apply(site, &Record{Op: OpPref, Name: name, Doc: xml, Engines: engines}, mut)
}

// prefEntries and prefExports convert between the durable layer's
// snapshot/record shape and core's export shape.
func prefEntries(prefs []core.PrefExport) []PrefEntry {
	var out []PrefEntry
	for _, p := range prefs {
		out = append(out, PrefEntry{Name: p.Name, Doc: p.XML, Engines: p.Engines})
	}
	return out
}

func prefExports(entries []PrefEntry) []core.PrefExport {
	var out []core.PrefExport
	for _, e := range entries {
		out = append(out, core.PrefExport{Name: e.Name, XML: e.Doc, Engines: e.Engines})
	}
	return out
}

// orderOf and docsMap adapt a bare document list to parseExport's
// (order, map) shape.
func orderOf(docs []string) []string {
	order := make([]string, len(docs))
	for i := range docs {
		order[i] = fmt.Sprintf("%d", i)
	}
	return order
}

func docsMap(docs []string) map[string]string {
	m := make(map[string]string, len(docs))
	for i, d := range docs {
		m[fmt.Sprintf("%d", i)] = d
	}
	return m
}

// Checkpoint writes a snapshot of the site's current state and truncates
// the log. The site export and the covered LSN are read under the
// journal lock, so the snapshot covers exactly the mutations logged so
// far and nothing else.
func (t *Tenant) Checkpoint(site *core.Site) error {
	t.mu.Lock()
	defer t.mu.Unlock()
	return t.checkpointLocked(site)
}

func (t *Tenant) checkpointLocked(site *core.Site) error {
	if t.closed {
		return ErrClosed
	}
	// Resolve any open commit batch first: its waiters are owed the
	// outcome of a real fsync, and a rollback must happen before the
	// snapshot captures the site (the waiters see their own error; the
	// checkpoint then covers whichever state survived).
	_ = t.commitLocked()
	if t.closed {
		// The batch's rollback could not restore a clean log prefix and
		// sealed the journal.
		return ErrClosed
	}
	exp := site.ExportState()
	snap := &Snapshot{
		LSN:       t.lsn,
		Order:     exp.Order,
		Policies:  exp.PolicyXML,
		Reference: exp.ReferenceXML,
		Prefs:     prefEntries(exp.Prefs),
	}
	// The log must be durable before the snapshot claims to cover it:
	// otherwise a crash could leave a snapshot at LSN N with the records
	// up to N lost from an unsynced log (harmless here because the
	// snapshot embeds the state — but the invariant keeps reasoning
	// local).
	if t.needsSyncLocked() && t.opts.Fsync != FsyncNever {
		target := t.appendSeq
		if err := syncFile(t.f); err != nil {
			return err
		}
		t.syncedSeq = target
	}
	if err := writeSnapshot(t.dir, snap); err != nil {
		return err
	}
	if err := t.f.Truncate(0); err != nil {
		return fmt.Errorf("durable: log truncate: %w", err)
	}
	if _, err := t.f.Seek(0, 0); err != nil {
		return fmt.Errorf("durable: %w", err)
	}
	if t.opts.Fsync != FsyncNever {
		if err := syncFile(t.f); err != nil {
			return err
		}
	}
	t.snapLSN = t.lsn
	t.logBytes = 0
	t.since = 0
	obsCheckpoints.Inc()
	return nil
}

// MaybeCheckpoint checkpoints when the record count since the last one
// reached Options.CheckpointEvery.
func (t *Tenant) MaybeCheckpoint(site *core.Site) error {
	t.mu.Lock()
	defer t.mu.Unlock()
	if t.closed || t.opts.CheckpointEvery <= 0 || t.since < t.opts.CheckpointEvery {
		return nil
	}
	return t.checkpointLocked(site)
}

// ReplayInto applies the state recovered at OpenTenant to a fresh site:
// the snapshot first (one all-or-nothing ReplacePolicies swap), then
// every log record past the snapshot's LSN in order. It consumes the
// recovered state; calling it twice is an error.
func (t *Tenant) ReplayInto(site *core.Site) error {
	t.mu.Lock()
	defer t.mu.Unlock()
	if t.pendingConsumed {
		return errors.New("durable: recovered state already replayed")
	}
	t.pendingConsumed = true
	snap, records := t.pending, t.pendingRecords
	t.pending, t.pendingRecords = nil, nil

	// Fast path: translate the snapshot and every live tail record into
	// one mutation batch, so the whole recovery costs a single snapshot
	// rebuild instead of one per record. Any failure — a record that
	// refuses to translate or a batch apply error — falls back to the
	// serial path, which reproduces the pre-batching error formats and
	// prefix-applied semantics exactly. (ApplyBatch is all-or-nothing,
	// so a failed batch leaves the site untouched for the retry.)
	replayed, batchErr := t.replayBatch(site, snap, records)
	if batchErr != nil {
		replayed = 0
		if snap != nil {
			exp := core.StateExport{Order: snap.Order, PolicyXML: snap.Policies, ReferenceXML: snap.Reference, Prefs: prefExports(snap.Prefs)}
			if err := site.RestoreState(exp); err != nil {
				return fmt.Errorf("durable: snapshot replay: %w", err)
			}
		}
		for i := range records {
			rec := &records[i]
			if rec.LSN <= t.snapLSN {
				// Covered by the snapshot: a crash landed between
				// snapshot rename and log truncation.
				continue
			}
			if err := applyRecord(site, rec); err != nil {
				return fmt.Errorf("durable: replaying record %d (%s): %w", rec.LSN, rec.Op, err)
			}
			replayed++
		}
	}
	obsRecoveries.Inc()
	obsReplayed.Add(int64(replayed))
	return nil
}

// replayBatch is ReplayInto's bulk path: snapshot restore plus the log
// tail as one core.ApplyBatch. Returns the number of tail records it
// covered; any error means nothing was applied.
func (t *Tenant) replayBatch(site *core.Site, snap *Snapshot, records []Record) (int, error) {
	muts := make([]core.Mutation, 0, len(records)+1)
	if snap != nil {
		m, err := core.RestoreStateMutation(core.StateExport{Order: snap.Order, PolicyXML: snap.Policies, ReferenceXML: snap.Reference, Prefs: prefExports(snap.Prefs)})
		if err != nil {
			return 0, err
		}
		muts = append(muts, m)
	}
	replayed := 0
	for i := range records {
		rec := &records[i]
		if rec.LSN <= t.snapLSN {
			continue
		}
		m, err := MutationForRecord(rec)
		if err != nil {
			return 0, err
		}
		muts = append(muts, m)
		replayed++
	}
	if err := site.ApplyBatch(muts); err != nil {
		return 0, err
	}
	return replayed, nil
}

// ApplyRecord replays one logged mutation through the site's public
// write path. It is the follower half of replication: each record lands
// as one all-or-nothing snapshot swap, so a follower killed (or a stream
// cut) between records always serves a state some leader acknowledgement
// produced, never a partial one.
func ApplyRecord(site *core.Site, rec *Record) error {
	return applyRecord(site, rec)
}

// MutationForRecord translates one logged mutation into a core.Mutation
// so that many records can land through a single batch apply (one
// snapshot rebuild for the lot). Parsing happens here, eagerly, so a
// malformed record fails before any edit touches a draft.
func MutationForRecord(rec *Record) (core.Mutation, error) {
	switch rec.Op {
	case OpInstall:
		pols, err := p3p.ParsePolicies(rec.Doc)
		if err != nil {
			return core.Mutation{}, err
		}
		return core.InstallPoliciesMutation(pols), nil
	case OpRemove:
		return core.RemovePolicyMutation(rec.Name), nil
	case OpReference:
		rf, err := reffile.Parse(rec.Doc)
		if err != nil {
			return core.Mutation{}, err
		}
		return core.InstallReferenceFileMutation(rf), nil
	case OpReplace:
		pols, rf, err := parseExport(orderOf(rec.Docs), docsMap(rec.Docs), rec.Ref)
		if err != nil {
			return core.Mutation{}, err
		}
		return core.ReplacePoliciesMutation(pols, rf), nil
	case OpState:
		exp := core.StateExport{Order: orderOf(rec.Docs), PolicyXML: docsMap(rec.Docs), ReferenceXML: rec.Ref, Prefs: prefExports(rec.Prefs)}
		return core.RestoreStateMutation(exp)
	case OpPref:
		return core.RegisterPreferenceMutation(rec.Name, rec.Doc, rec.Engines)
	}
	return core.Mutation{}, fmt.Errorf("durable: unknown op %q", rec.Op)
}

// ApplyRecords replays a run of logged mutations through one snapshot
// swap — the follower's batch-drain path. If the batch refuses to
// translate or apply, it falls back to serial per-record apply so
// callers observe the same error and the same applied prefix as the
// one-record path (ApplyBatch is all-or-nothing, so the fallback starts
// from untouched state). Returns how many records were applied.
func ApplyRecords(site *core.Site, recs []*Record) (int, error) {
	if len(recs) == 1 {
		if err := applyRecord(site, recs[0]); err != nil {
			return 0, err
		}
		return 1, nil
	}
	muts := make([]core.Mutation, 0, len(recs))
	batched := true
	for _, rec := range recs {
		m, err := MutationForRecord(rec)
		if err != nil {
			batched = false
			break
		}
		muts = append(muts, m)
	}
	if batched && site.ApplyBatch(muts) == nil {
		return len(recs), nil
	}
	for i, rec := range recs {
		if err := applyRecord(site, rec); err != nil {
			return i, err
		}
	}
	return len(recs), nil
}

// applyRecord replays one logged mutation through the site's public
// write path.
func applyRecord(site *core.Site, rec *Record) error {
	switch rec.Op {
	case OpInstall:
		_, err := site.InstallPolicyXML(rec.Doc)
		return err
	case OpRemove:
		return site.RemovePolicy(rec.Name)
	case OpReference:
		return site.InstallReferenceFileXML(rec.Doc)
	case OpReplace:
		pols, rf, err := parseExport(orderOf(rec.Docs), docsMap(rec.Docs), rec.Ref)
		if err != nil {
			return err
		}
		return site.ReplacePolicies(pols, rf)
	case OpState:
		exp := core.StateExport{Order: orderOf(rec.Docs), PolicyXML: docsMap(rec.Docs), ReferenceXML: rec.Ref, Prefs: prefExports(rec.Prefs)}
		return site.RestoreState(exp)
	case OpPref:
		return site.RegisterPreferenceXML(rec.Name, rec.Doc, rec.Engines)
	}
	return fmt.Errorf("durable: unknown op %q", rec.Op)
}
