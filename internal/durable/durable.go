// Package durable gives tenant sites database durability: the paper's
// premise is that a site's policies are shredded once and then served
// from a persistent DBMS, so admin mutations must survive a process
// kill, not just a snapshot swap. Each tenant gets an append-only
// write-ahead log of its mutations plus periodic snapshot checkpoints;
// recovery rebuilds the tenant by loading the newest checkpoint and
// replaying the log tail through the same all-or-nothing snapshot-swap
// path every other write uses.
//
// The protocol (DESIGN.md §10):
//
//   - Every mutation appends one CRC32C-framed record before it is
//     acknowledged (fsync per the configured policy: always, interval,
//     or never).
//   - A checkpoint writes the full logical state (policy documents in
//     install order + reference file) to a temp file, fsyncs, renames it
//     over snapshot.json, fsyncs the directory, then truncates the log —
//     records at or below the snapshot's LSN are skipped on replay, so a
//     crash between rename and truncate is harmless.
//   - Recovery tolerates a torn final record (truncate and warn) and
//     refuses mid-log CRC damage with ErrCorrupt: a torn tail is what a
//     crash produces, interior damage means acknowledged mutations would
//     be silently lost.
//
// The Tenant is also the durable mutation front-door: its mutation
// methods apply the change to the site and append the record under one
// lock, so a checkpoint can never capture a site state whose mutations
// are not yet in the log (which would double-apply them on replay).
package durable

import (
	"errors"
	"fmt"
	"os"
	"path/filepath"
	"sort"
	"sync"
	"time"

	"p3pdb/internal/core"
	"p3pdb/internal/obs"
	"p3pdb/internal/p3p"
	"p3pdb/internal/reffile"
)

// Durability observability, surfaced on /metrics as durable.*.
var (
	obsAppends     = obs.GetCounter("durable.records_appended")
	obsBytes       = obs.GetCounter("durable.bytes_appended")
	obsFsyncs      = obs.GetCounter("durable.fsyncs")
	obsCheckpoints = obs.GetCounter("durable.checkpoints")
	obsRecoveries  = obs.GetCounter("durable.recovery_replays")
	obsReplayed    = obs.GetCounter("durable.replayed_records")
	obsTorn        = obs.GetCounter("durable.torn_tail_truncations")
	obsRollbacks   = obs.GetCounter("durable.append_rollbacks")
	obsOpenLogs    = obs.GetGauge("durable.open_logs")
)

// ErrClosed reports a mutation against a closed tenant journal (for
// example after LRU eviction closed it under a stale handler).
var ErrClosed = errors.New("durable: tenant journal closed")

// AppendError marks a failure in the durability layer itself — the
// mutation was valid and (briefly) applied, but could not be made
// durable and was rolled back. Servers map it to a 503 rather than the
// 400 a malformed document earns.
type AppendError struct{ Err error }

func (e *AppendError) Error() string { return e.Err.Error() }
func (e *AppendError) Unwrap() error { return e.Err }

// FsyncPolicy selects when the log reaches stable storage.
type FsyncPolicy int

const (
	// FsyncAlways syncs after every appended record: a 2xx means the
	// mutation survives power loss. The slowest and strongest setting.
	FsyncAlways FsyncPolicy = iota
	// FsyncInterval syncs on a background timer (Options.FsyncInterval):
	// a crash can lose at most the last interval's acknowledgements, the
	// classic group-commit trade.
	FsyncInterval
	// FsyncNever leaves syncing to the OS: survives process kills (the
	// page cache persists) but not power loss.
	FsyncNever
)

// String names the policy as the -fsync flag spells it.
func (p FsyncPolicy) String() string {
	switch p {
	case FsyncAlways:
		return "always"
	case FsyncInterval:
		return "interval"
	case FsyncNever:
		return "never"
	}
	return fmt.Sprintf("FsyncPolicy(%d)", int(p))
}

// ParseFsyncPolicy resolves a -fsync flag value.
func ParseFsyncPolicy(s string) (FsyncPolicy, error) {
	switch s {
	case "always":
		return FsyncAlways, nil
	case "interval":
		return FsyncInterval, nil
	case "never":
		return FsyncNever, nil
	}
	return 0, fmt.Errorf("durable: unknown fsync policy %q (want always, interval, or never)", s)
}

// Options configure a Store and every tenant it opens.
type Options struct {
	// Fsync is the log sync policy; the zero value is FsyncAlways.
	Fsync FsyncPolicy
	// FsyncInterval is the background sync period for FsyncInterval;
	// zero means 100ms.
	FsyncInterval time.Duration
	// CheckpointEvery triggers an automatic snapshot checkpoint after
	// this many logged records; zero means 256. Negative disables
	// automatic checkpoints (explicit Checkpoint calls still work).
	CheckpointEvery int
}

func (o Options) withDefaults() Options {
	if o.FsyncInterval == 0 {
		o.FsyncInterval = 100 * time.Millisecond
	}
	if o.CheckpointEvery == 0 {
		o.CheckpointEvery = 256
	}
	return o
}

// Store is the root of the durable layout: one subdirectory per tenant,
// each holding wal.log and snapshot.json.
type Store struct {
	dir  string
	opts Options
}

// Open creates (if needed) and returns the durable store rooted at dir.
func Open(dir string, opts Options) (*Store, error) {
	if err := os.MkdirAll(dir, 0o755); err != nil {
		return nil, fmt.Errorf("durable: %w", err)
	}
	return &Store{dir: dir, opts: opts.withDefaults()}, nil
}

// Dir returns the store's root directory.
func (s *Store) Dir() string { return s.dir }

// HasTenant reports whether the store holds durable state for name.
func (s *Store) HasTenant(name string) bool {
	dir := filepath.Join(s.dir, name)
	for _, f := range []string{logName, snapName} {
		if fi, err := os.Stat(filepath.Join(dir, f)); err == nil && !fi.IsDir() {
			return true
		}
	}
	return false
}

// TenantNames lists every tenant with durable state, sorted.
func (s *Store) TenantNames() []string {
	des, err := os.ReadDir(s.dir)
	if err != nil {
		return nil
	}
	var names []string
	for _, de := range des {
		if de.IsDir() && s.HasTenant(de.Name()) {
			names = append(names, de.Name())
		}
	}
	sort.Strings(names)
	return names
}

// RemoveTenant deletes a tenant's durable state entirely (the admin
// DELETE path: the tenant is durably gone; a sites-dir-backed tenant
// re-bootstraps from its directory on next load).
func (s *Store) RemoveTenant(name string) error {
	return os.RemoveAll(filepath.Join(s.dir, name))
}

// Tenant is one tenant's open journal: the write-ahead log handle, its
// LSN bookkeeping, and the recovered-but-not-yet-replayed state between
// OpenTenant and ReplayInto.
type Tenant struct {
	name string
	dir  string
	opts Options

	mu       sync.Mutex
	f        *os.File
	closed   bool
	lsn      uint64 // last assigned LSN
	snapLSN  uint64 // LSN covered by the newest checkpoint
	logBytes int64
	since    int  // records since the last checkpoint
	torn     bool // recovery truncated a torn tail
	needSync bool // interval mode: bytes appended since last sync
	syncErr  error

	// changed is closed and replaced whenever a record is appended, so
	// WAL streamers can long-poll for new records without spinning.
	changed chan struct{}

	// recovered state, consumed by ReplayInto.
	pending         *Snapshot
	pendingRecords  []Record
	pendingConsumed bool

	stopSync chan struct{}
	syncDone chan struct{}
}

// OpenTenant opens (creating if absent) a tenant's journal and scans its
// durable state. A torn final record is truncated away and reported via
// Status and the durable.torn_tail_truncations counter; mid-log CRC
// damage fails with ErrCorrupt, a damaged snapshot with
// ErrSnapshotCorrupt. Call ReplayInto to apply the recovered state to a
// fresh site.
func (s *Store) OpenTenant(name string) (*Tenant, error) {
	dir := filepath.Join(s.dir, name)
	if err := os.MkdirAll(dir, 0o755); err != nil {
		return nil, fmt.Errorf("durable: %w", err)
	}
	snap, err := readSnapshot(dir)
	if err != nil {
		return nil, err
	}
	logPath := filepath.Join(dir, logName)
	data, err := readAll(logPath)
	if err != nil {
		return nil, fmt.Errorf("durable: %w", err)
	}
	res, err := scanLog(data)
	if err != nil {
		return nil, err
	}
	f, err := os.OpenFile(logPath, os.O_CREATE|os.O_RDWR, 0o644)
	if err != nil {
		return nil, fmt.Errorf("durable: %w", err)
	}
	if res.torn {
		// A crash mid-append left a partial frame; drop it so the log is
		// a clean prefix again before anything new is appended after it.
		if err := f.Truncate(res.validLen); err != nil {
			f.Close()
			return nil, fmt.Errorf("durable: truncating torn tail: %w", err)
		}
		obsTorn.Inc()
	}
	if _, err := f.Seek(res.validLen, 0); err != nil {
		f.Close()
		return nil, fmt.Errorf("durable: %w", err)
	}

	t := &Tenant{
		name:           name,
		dir:            dir,
		opts:           s.opts,
		f:              f,
		logBytes:       res.validLen,
		torn:           res.torn,
		changed:        make(chan struct{}),
		pending:        snap,
		pendingRecords: res.records,
	}
	if snap != nil {
		t.snapLSN = snap.LSN
		t.lsn = snap.LSN
	}
	for _, rec := range res.records {
		if rec.LSN > t.lsn {
			t.lsn = rec.LSN
		}
	}
	if s.opts.Fsync == FsyncInterval {
		t.stopSync = make(chan struct{})
		t.syncDone = make(chan struct{})
		go t.syncLoop()
	}
	obsOpenLogs.Add(1)
	return t, nil
}

// syncLoop is the interval-fsync group-commit timer.
func (t *Tenant) syncLoop() {
	defer close(t.syncDone)
	ticker := time.NewTicker(t.opts.FsyncInterval)
	defer ticker.Stop()
	for {
		select {
		case <-t.stopSync:
			return
		case <-ticker.C:
			t.mu.Lock()
			if !t.closed && t.needSync {
				if err := syncFile(t.f); err != nil {
					t.syncErr = err
				} else {
					t.needSync = false
					t.syncErr = nil
				}
			}
			t.mu.Unlock()
		}
	}
}

// Name returns the tenant name the journal was opened under.
func (t *Tenant) Name() string { return t.name }

// Torn reports whether opening the journal truncated a torn tail.
func (t *Tenant) Torn() bool { return t.torn }

// Status is the tenant's durability position, served by the
// /durability endpoint.
type Status struct {
	Tenant                 string `json:"tenant"`
	LSN                    uint64 `json:"lsn"`
	CheckpointLSN          uint64 `json:"checkpointLSN"`
	LogBytes               int64  `json:"logBytes"`
	RecordsSinceCheckpoint int    `json:"recordsSinceCheckpoint"`
	Fsync                  string `json:"fsync"`
	TornTailRecovered      bool   `json:"tornTailRecovered,omitempty"`
	SyncError              string `json:"syncError,omitempty"`
}

// Status reports the journal's current durability position.
func (t *Tenant) Status() Status {
	t.mu.Lock()
	defer t.mu.Unlock()
	st := Status{
		Tenant:                 t.name,
		LSN:                    t.lsn,
		CheckpointLSN:          t.snapLSN,
		LogBytes:               t.logBytes,
		RecordsSinceCheckpoint: t.since,
		Fsync:                  t.opts.Fsync.String(),
		TornTailRecovered:      t.torn,
	}
	if t.syncErr != nil {
		st.SyncError = t.syncErr.Error()
	}
	return st
}

// Close stops the sync timer, flushes the log, and closes the file.
// Safe to call twice.
func (t *Tenant) Close() error {
	t.mu.Lock()
	if t.closed {
		t.mu.Unlock()
		return nil
	}
	t.closed = true
	var err error
	if t.needSync && t.opts.Fsync != FsyncNever {
		err = syncFile(t.f)
	}
	cerr := t.f.Close()
	t.mu.Unlock()
	if t.stopSync != nil {
		close(t.stopSync)
		<-t.syncDone
	}
	obsOpenLogs.Add(-1)
	return errors.Join(err, cerr)
}

// appendLocked frames and writes one record, assigning its LSN and
// honouring the fsync policy. Caller holds t.mu. On a failed write —
// or a failed fsync under FsyncAlways, where the record was never
// acknowledged — the record's bytes are truncated away so the on-disk
// log remains a clean prefix of acknowledged records; otherwise a
// rolled-back mutation would resurrect on replay.
func (t *Tenant) appendLocked(rec *Record) error {
	if t.closed {
		return ErrClosed
	}
	rec.LSN = t.lsn + 1
	frame, err := encodeRecord(rec)
	if err != nil {
		return err
	}
	prev := t.logBytes
	n, err := appendFrame(t.f, frame)
	if err == nil && t.opts.Fsync == FsyncAlways {
		err = syncFile(t.f)
	}
	if err != nil {
		if terr := t.f.Truncate(prev); terr == nil {
			_, _ = t.f.Seek(prev, 0)
		} else {
			// The unacknowledged frame is stuck on disk; refuse further
			// appends — recovery handles the tail, but appending after it
			// would turn it into mid-log corruption.
			t.closed = true
			_ = t.f.Close()
			err = errors.Join(err, terr)
		}
		return err
	}
	t.logBytes = prev + n
	t.lsn++
	t.since++
	close(t.changed)
	t.changed = make(chan struct{})
	obsAppends.Inc()
	obsBytes.Add(n)
	if t.opts.Fsync == FsyncInterval {
		t.needSync = true
	}
	return nil
}

// restore rolls a site back to a captured export after a log append
// failed, so memory never runs ahead of the acknowledged durable state.
// RestoreState (not ReplacePolicies) because the export may carry a
// reference file with refs left dangling by an earlier RemovePolicy.
func restore(site *core.Site, exp core.StateExport) error {
	obsRollbacks.Inc()
	return site.RestoreState(exp)
}

// parseExport rebuilds parsed policies (in order) and the reference file
// from exported documents.
func parseExport(order []string, docs map[string]string, ref string) ([]*p3p.Policy, *reffile.RefFile, error) {
	var pols []*p3p.Policy
	for _, name := range order {
		ps, err := p3p.ParsePolicies(docs[name])
		if err != nil {
			return nil, nil, fmt.Errorf("durable: policy %s: %w", name, err)
		}
		pols = append(pols, ps...)
	}
	var rf *reffile.RefFile
	if ref != "" {
		var err error
		rf, err = reffile.Parse(ref)
		if err != nil {
			return nil, nil, fmt.Errorf("durable: reference file: %w", err)
		}
	}
	return pols, rf, nil
}

// apply runs one site mutation and logs its record under the journal
// lock: the mutation is durable (per the fsync policy) before apply
// returns, and a concurrent Checkpoint can never capture applied-but-
// unlogged state. If the append fails the site is rolled back to the
// pre-mutation export, so an error response never leaves memory ahead
// of the log.
func (t *Tenant) apply(site *core.Site, rec *Record, mutate func() error) error {
	t.mu.Lock()
	defer t.mu.Unlock()
	if t.closed {
		return &AppendError{Err: ErrClosed}
	}
	exp := site.ExportState()
	if err := mutate(); err != nil {
		return err
	}
	if err := t.appendLocked(rec); err != nil {
		if rerr := restore(site, exp); rerr != nil {
			err = errors.Join(err, fmt.Errorf("durable: rollback failed, memory ahead of log: %w", rerr))
		}
		return &AppendError{Err: err}
	}
	return nil
}

// InstallPolicyXML durably installs a policy document: applied to the
// site, then logged, before returning.
func (t *Tenant) InstallPolicyXML(site *core.Site, doc string) ([]string, error) {
	var names []string
	err := t.apply(site, &Record{Op: OpInstall, Doc: doc}, func() error {
		var err error
		names, err = site.InstallPolicyXML(doc)
		return err
	})
	if err != nil {
		return nil, err
	}
	return names, nil
}

// RemovePolicy durably removes a named policy.
func (t *Tenant) RemovePolicy(site *core.Site, name string) error {
	return t.apply(site, &Record{Op: OpRemove, Name: name}, func() error {
		return site.RemovePolicy(name)
	})
}

// InstallReferenceFileXML durably installs the reference file.
func (t *Tenant) InstallReferenceFileXML(site *core.Site, doc string) error {
	return t.apply(site, &Record{Op: OpReference, Doc: doc}, func() error {
		return site.InstallReferenceFileXML(doc)
	})
}

// Replace durably replaces the whole policy set (and reference file,
// empty for none) from raw documents — the registry's dir-reload path,
// logged as one record.
func (t *Tenant) Replace(site *core.Site, docs []string, ref string) error {
	pols, rf, err := parseExport(orderOf(docs), docsMap(docs), ref)
	if err != nil {
		return err
	}
	return t.apply(site, &Record{Op: OpReplace, Docs: docs, Ref: ref}, func() error {
		return site.ReplacePolicies(pols, rf)
	})
}

// orderOf and docsMap adapt a bare document list to parseExport's
// (order, map) shape.
func orderOf(docs []string) []string {
	order := make([]string, len(docs))
	for i := range docs {
		order[i] = fmt.Sprintf("%d", i)
	}
	return order
}

func docsMap(docs []string) map[string]string {
	m := make(map[string]string, len(docs))
	for i, d := range docs {
		m[fmt.Sprintf("%d", i)] = d
	}
	return m
}

// Checkpoint writes a snapshot of the site's current state and truncates
// the log. The site export and the covered LSN are read under the
// journal lock, so the snapshot covers exactly the mutations logged so
// far and nothing else.
func (t *Tenant) Checkpoint(site *core.Site) error {
	t.mu.Lock()
	defer t.mu.Unlock()
	return t.checkpointLocked(site)
}

func (t *Tenant) checkpointLocked(site *core.Site) error {
	if t.closed {
		return ErrClosed
	}
	exp := site.ExportState()
	snap := &Snapshot{
		LSN:       t.lsn,
		Order:     exp.Order,
		Policies:  exp.PolicyXML,
		Reference: exp.ReferenceXML,
	}
	// The log must be durable before the snapshot claims to cover it:
	// otherwise a crash could leave a snapshot at LSN N with the records
	// up to N lost from an unsynced log (harmless here because the
	// snapshot embeds the state — but the invariant keeps reasoning
	// local).
	if t.needSync && t.opts.Fsync != FsyncNever {
		if err := syncFile(t.f); err != nil {
			return err
		}
		t.needSync = false
	}
	if err := writeSnapshot(t.dir, snap); err != nil {
		return err
	}
	if err := t.f.Truncate(0); err != nil {
		return fmt.Errorf("durable: log truncate: %w", err)
	}
	if _, err := t.f.Seek(0, 0); err != nil {
		return fmt.Errorf("durable: %w", err)
	}
	if t.opts.Fsync != FsyncNever {
		if err := syncFile(t.f); err != nil {
			return err
		}
	}
	t.snapLSN = t.lsn
	t.logBytes = 0
	t.since = 0
	obsCheckpoints.Inc()
	return nil
}

// MaybeCheckpoint checkpoints when the record count since the last one
// reached Options.CheckpointEvery.
func (t *Tenant) MaybeCheckpoint(site *core.Site) error {
	t.mu.Lock()
	defer t.mu.Unlock()
	if t.closed || t.opts.CheckpointEvery <= 0 || t.since < t.opts.CheckpointEvery {
		return nil
	}
	return t.checkpointLocked(site)
}

// ReplayInto applies the state recovered at OpenTenant to a fresh site:
// the snapshot first (one all-or-nothing ReplacePolicies swap), then
// every log record past the snapshot's LSN in order. It consumes the
// recovered state; calling it twice is an error.
func (t *Tenant) ReplayInto(site *core.Site) error {
	t.mu.Lock()
	defer t.mu.Unlock()
	if t.pendingConsumed {
		return errors.New("durable: recovered state already replayed")
	}
	t.pendingConsumed = true
	snap, records := t.pending, t.pendingRecords
	t.pending, t.pendingRecords = nil, nil

	if snap != nil {
		exp := core.StateExport{Order: snap.Order, PolicyXML: snap.Policies, ReferenceXML: snap.Reference}
		if err := site.RestoreState(exp); err != nil {
			return fmt.Errorf("durable: snapshot replay: %w", err)
		}
	}
	replayed := 0
	for _, rec := range records {
		if rec.LSN <= t.snapLSN {
			// Covered by the snapshot: a crash landed between snapshot
			// rename and log truncation.
			continue
		}
		if err := applyRecord(site, &rec); err != nil {
			return fmt.Errorf("durable: replaying record %d (%s): %w", rec.LSN, rec.Op, err)
		}
		replayed++
	}
	obsRecoveries.Inc()
	obsReplayed.Add(int64(replayed))
	return nil
}

// ApplyRecord replays one logged mutation through the site's public
// write path. It is the follower half of replication: each record lands
// as one all-or-nothing snapshot swap, so a follower killed (or a stream
// cut) between records always serves a state some leader acknowledgement
// produced, never a partial one.
func ApplyRecord(site *core.Site, rec *Record) error {
	return applyRecord(site, rec)
}

// applyRecord replays one logged mutation through the site's public
// write path.
func applyRecord(site *core.Site, rec *Record) error {
	switch rec.Op {
	case OpInstall:
		_, err := site.InstallPolicyXML(rec.Doc)
		return err
	case OpRemove:
		return site.RemovePolicy(rec.Name)
	case OpReference:
		return site.InstallReferenceFileXML(rec.Doc)
	case OpReplace:
		pols, rf, err := parseExport(orderOf(rec.Docs), docsMap(rec.Docs), rec.Ref)
		if err != nil {
			return err
		}
		return site.ReplacePolicies(pols, rf)
	case OpState:
		exp := core.StateExport{Order: orderOf(rec.Docs), PolicyXML: docsMap(rec.Docs), ReferenceXML: rec.Ref}
		return site.RestoreState(exp)
	}
	return fmt.Errorf("durable: unknown op %q", rec.Op)
}
