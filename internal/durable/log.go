package durable

import (
	"encoding/binary"
	"encoding/json"
	"errors"
	"fmt"
	"hash/crc32"
	"io"
	"os"

	"p3pdb/internal/faultkit"
)

// The write-ahead log is a headerless sequence of framed records:
//
//	[4B little-endian payload length][4B CRC32C of payload][payload]
//
// The payload is one JSON-encoded Record. Framing carries no pointers
// between records, so a log is valid iff it is a concatenation of valid
// frames — which makes the recovery rule simple: scan frames until the
// first one that fails, and decide whether the failure is a torn tail
// (the broken frame runs into EOF: truncate it away and keep going) or
// mid-log corruption (valid bytes exist past the broken frame: refuse
// the log with ErrCorrupt rather than silently dropping acknowledged
// mutations).

// frameHeaderSize is the fixed per-record overhead.
const frameHeaderSize = 8

// maxRecordSize bounds one record's payload. The server caps request
// bodies at 1 MiB; a full-set replace of a large corpus stays well under
// this, and anything bigger in a length prefix is damage, not data.
const maxRecordSize = 64 << 20

// castagnoli is the CRC32C table (the checksum RocksDB and ext4 use for
// exactly this job: cheap, hardware-assisted, good burst detection).
var castagnoli = crc32.MakeTable(crc32.Castagnoli)

// ErrCorrupt reports a mid-log CRC or framing failure: a record failed
// its checksum while valid data exists beyond it, so the damage cannot
// be explained by a torn final write. Recovery refuses the log rather
// than resurrecting an arbitrary prefix.
var ErrCorrupt = errors.New("durable: log corrupt")

// Log mutation operations.
const (
	// OpInstall installs the policies of one POLICY/POLICIES document
	// (core.Site.InstallPolicyXML).
	OpInstall = "install"
	// OpRemove removes one named policy (core.Site.RemovePolicy).
	OpRemove = "remove"
	// OpReference installs the reference file (InstallReferenceFileXML).
	OpReference = "reffile"
	// OpReplace replaces the whole policy set and reference file in one
	// snapshot swap (core.Site.ReplacePolicies).
	OpReplace = "replace"
	// OpState carries a tenant's full checkpointed state on the
	// replication stream (core.Site.RestoreState). It is never written
	// to a local log — the snapshot file plays that role — but a leader
	// whose checkpoint truncated the log sends one as the stream's first
	// record so a follower starting below the checkpoint LSN can
	// bootstrap. RestoreState (not ReplacePolicies) because a checkpoint
	// may legitimately carry a reference file with dangling POLICY-REFs
	// left by a RemovePolicy.
	OpState = "state"
	// OpPref registers (or replaces) one preference ruleset
	// (core.Site.RegisterPreferenceXML), so registrations survive restart
	// and replicate to followers — a follower that replays one pre-warms
	// its own decision cache through the same ApplyBatch hook.
	OpPref = "pref"
)

// Record is one logged site mutation. LSN is the tenant's monotonic
// log-sequence number; it survives checkpoints (a record whose LSN is
// already covered by the snapshot is skipped on replay, which is what
// makes a crash between snapshot rename and log truncation harmless).
type Record struct {
	LSN  uint64   `json:"lsn"`
	Op   string   `json:"op"`
	Name string   `json:"name,omitempty"` // OpRemove: the policy name; OpPref: the preference name
	Doc  string   `json:"doc,omitempty"`  // OpInstall/OpReference: the XML document; OpPref: the APPEL ruleset
	Docs []string `json:"docs,omitempty"` // OpReplace: every policy document
	Ref  string   `json:"ref,omitempty"`  // OpReplace: the reference file, "" for none
	// Engines lists the pre-warm engines of an OpPref registration.
	Engines []string `json:"engines,omitempty"`
	// Prefs carries the registered preferences of an OpState bootstrap
	// record, mirroring Snapshot.Prefs.
	Prefs []PrefEntry `json:"prefs,omitempty"`
}

// PrefEntry is one registered preference in a snapshot or OpState
// record: name, verbatim APPEL document, and pre-warm engines.
type PrefEntry struct {
	Name    string   `json:"name"`
	Doc     string   `json:"doc"`
	Engines []string `json:"engines,omitempty"`
}

// EncodeRecord frames one record for the wire: the replication stream
// ships the same [length][CRC32C][JSON] frames the on-disk log uses, so
// a follower classifies stream damage with exactly the recovery rules.
func EncodeRecord(rec *Record) ([]byte, error) { return encodeRecord(rec) }

// encodeRecord frames one record.
func encodeRecord(rec *Record) ([]byte, error) {
	payload, err := json.Marshal(rec)
	if err != nil {
		return nil, err
	}
	if len(payload) > maxRecordSize {
		return nil, fmt.Errorf("durable: record of %d bytes exceeds the %d-byte frame bound", len(payload), maxRecordSize)
	}
	frame := make([]byte, frameHeaderSize+len(payload))
	binary.LittleEndian.PutUint32(frame[0:4], uint32(len(payload)))
	binary.LittleEndian.PutUint32(frame[4:8], crc32.Checksum(payload, castagnoli))
	copy(frame[frameHeaderSize:], payload)
	return frame, nil
}

// scanResult is what scanning a log file yields: the decodable records,
// the byte offset the log is valid up to, and whether a torn tail was
// truncated away to get there.
type scanResult struct {
	records  []Record
	validLen int64
	torn     bool
}

// scanLog reads every record of a log file. A broken frame that runs
// into EOF is a torn tail: the scan stops at its start and reports
// torn=true. A broken frame with data beyond it is ErrCorrupt.
func scanLog(data []byte) (scanResult, error) {
	res := scanResult{}
	off := int64(0)
	size := int64(len(data))
	for off < size {
		rest := size - off
		if rest < frameHeaderSize {
			res.torn = true
			break
		}
		n := int64(binary.LittleEndian.Uint32(data[off : off+4]))
		stored := binary.LittleEndian.Uint32(data[off+4 : off+8])
		end := off + frameHeaderSize + n
		if n > maxRecordSize || end > size {
			// The frame claims bytes the file does not have (or an
			// implausible length from a torn header write): torn iff
			// nothing but this broken frame remains — and by
			// construction it extends to or past EOF, so it does.
			res.torn = true
			break
		}
		payload := data[off+frameHeaderSize : end]
		if crc32.Checksum(payload, castagnoli) != stored {
			// A full frame is present but its bytes are wrong. If the
			// frame is the last thing in the file this is still
			// explainable as a torn write (length landed, payload
			// didn't); anywhere else it is unambiguous corruption.
			if end == size {
				res.torn = true
				break
			}
			return res, fmt.Errorf("%w: CRC mismatch in record at byte %d with %d valid bytes beyond it", ErrCorrupt, off, size-end)
		}
		var rec Record
		if err := json.Unmarshal(payload, &rec); err != nil {
			if end == size {
				res.torn = true
				break
			}
			return res, fmt.Errorf("%w: undecodable record at byte %d: %v", ErrCorrupt, off, err)
		}
		res.records = append(res.records, rec)
		off = end
		res.validLen = off
	}
	return res, nil
}

// appendFrame writes one framed record at the end of the log file,
// honouring the faultkit short-write point: an armed durable.write fault
// leaves a torn frame on disk (the first half of the bytes), exactly
// what a crash mid-write produces, then surfaces the injected error.
func appendFrame(f *os.File, frame []byte) (int64, error) {
	if err := faultkit.Inject(faultkit.PointDurableWrite); err != nil {
		_, _ = f.Write(frame[:len(frame)/2])
		return int64(len(frame) / 2), fmt.Errorf("durable: short write: %w", err)
	}
	n, err := f.Write(frame)
	if err != nil {
		return int64(n), fmt.Errorf("durable: log write: %w", err)
	}
	return int64(n), nil
}

// syncFile fsyncs through the faultkit durable.fsync point, so tests can
// drill the "disk lied about durability" failure mode.
func syncFile(f *os.File) error {
	if err := faultkit.Inject(faultkit.PointDurableFsync); err != nil {
		return fmt.Errorf("durable: fsync: %w", err)
	}
	if err := f.Sync(); err != nil {
		return fmt.Errorf("durable: fsync: %w", err)
	}
	obsFsyncs.Inc()
	return nil
}

// readAll reads a whole file, tolerating its absence (an empty log and a
// missing log recover identically).
func readAll(path string) ([]byte, error) {
	data, err := os.ReadFile(path)
	if errors.Is(err, os.ErrNotExist) {
		return nil, nil
	}
	if err != nil {
		return nil, err
	}
	return data, nil
}

// syncDir fsyncs a directory so a just-renamed file's directory entry is
// durable (the step that makes temp-file+rename atomic across power
// loss, not just across crashes).
func syncDir(dir string) error {
	d, err := os.Open(dir)
	if err != nil {
		return err
	}
	defer d.Close()
	if err := d.Sync(); err != nil {
		// Some filesystems refuse directory fsync; data-file fsync
		// already happened, so degrade rather than fail the mutation.
		if errors.Is(err, io.EOF) {
			return nil
		}
		return err
	}
	return nil
}
