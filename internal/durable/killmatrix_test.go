package durable

import (
	"encoding/binary"
	"errors"
	"fmt"
	"os"
	"path/filepath"
	"testing"

	"p3pdb/internal/core"
	"p3pdb/internal/faultkit"
)

// The kill-matrix: simulate a kill -9 at every byte of the write-ahead
// log (and of the post-checkpoint tail) and assert recovery always
// lands on a durable prefix of the acknowledged history — never a torn
// state, never ErrCorrupt, never a mutation the prefix does not
// contain. This is the test the torn-vs-corrupt recovery rule exists
// for: byte-truncation is exactly what a crash produces, so it must
// always classify as a clean prefix plus (at most) a torn tail.

// killHistory is the scripted mutation sequence the matrix replays.
type killStep struct {
	op   string
	name string // OpRemove
	doc  string // OpInstall / OpReference
}

var killHistory = []killStep{
	{op: OpInstall, doc: polDoc("a")},
	{op: OpInstall, doc: polDoc("b")},
	{op: OpReference, doc: refDoc},
	{op: OpRemove, name: "b"},
	{op: OpInstall, doc: polDoc("c")},
}

// applyStep runs one scripted step through the journal.
func applyStep(tn *Tenant, site *core.Site, s killStep) error {
	switch s.op {
	case OpInstall:
		_, err := tn.InstallPolicyXML(site, s.doc)
		return err
	case OpRemove:
		return tn.RemovePolicy(site, s.name)
	case OpReference:
		return tn.InstallReferenceFileXML(site, s.doc)
	}
	return fmt.Errorf("unknown step %q", s.op)
}

// runHistory executes the scripted history against a fresh tenant and
// returns the log image plus the expected site state after each prefix
// of k acknowledged records (expected[0] is the empty site).
func runHistory(t *testing.T, store *Store, name string) (data []byte, expected []core.StateExport) {
	t.Helper()
	site := newSite(t)
	tn := openTenant(t, store, name)
	expected = append(expected, site.ExportState())
	for _, s := range killHistory {
		if err := applyStep(tn, site, s); err != nil {
			t.Fatal(err)
		}
		expected = append(expected, site.ExportState())
	}
	if err := tn.Close(); err != nil {
		t.Fatal(err)
	}
	data, err := os.ReadFile(filepath.Join(store.Dir(), name, logName))
	if err != nil {
		t.Fatal(err)
	}
	return data, expected
}

// frameBoundaries returns the cumulative end offset of each frame.
func frameBoundaries(t *testing.T, data []byte) []int64 {
	t.Helper()
	res, err := scanLog(data)
	if err != nil || res.torn {
		t.Fatalf("history log does not scan clean: %+v, %v", res, err)
	}
	bounds := []int64{0}
	off := int64(0)
	for range res.records {
		n := int64(binary.LittleEndian.Uint32(data[off : off+4]))
		off += frameHeaderSize + n
		bounds = append(bounds, off)
	}
	return bounds
}

// prefixRecords reports how many complete frames fit in b bytes, given
// the frame boundaries.
func prefixRecords(bounds []int64, b int64) int {
	k := 0
	for k+1 < len(bounds) && bounds[k+1] <= b {
		k++
	}
	return k
}

// mustMatchExport asserts a recovered site equals an expected export.
func mustMatchExport(t *testing.T, crashAt int64, want core.StateExport, got *core.Site) {
	t.Helper()
	ge := got.ExportState()
	if len(ge.Order) != len(want.Order) {
		t.Fatalf("crash at byte %d: recovered %v, want %v", crashAt, ge.Order, want.Order)
	}
	for i, name := range want.Order {
		if ge.Order[i] != name || ge.PolicyXML[name] != want.PolicyXML[name] {
			t.Fatalf("crash at byte %d: policy %q diverged", crashAt, name)
		}
	}
	if ge.ReferenceXML != want.ReferenceXML {
		t.Fatalf("crash at byte %d: reference file diverged", crashAt)
	}
}

// permissivePref fires its OTHERWISE rule against any policy.
const permissivePref = `<appel:RULESET xmlns:appel="http://www.w3.org/2002/01/APPELv1" xmlns="http://www.w3.org/2002/01/P3Pv1"><appel:OTHERWISE behavior="request"/></appel:RULESET>`

// assertServesAcrossEngines asserts the recovered site answers match
// requests for exactly the expected policy set on all four engines.
func assertServesAcrossEngines(t *testing.T, crashAt int64, want core.StateExport, got *core.Site) {
	t.Helper()
	for _, engine := range core.Engines {
		for _, name := range want.Order {
			dec, err := got.MatchPolicy(permissivePref, name, engine)
			if err != nil {
				t.Fatalf("crash at byte %d: %v match %s: %v", crashAt, engine, name, err)
			}
			if dec.Behavior != "request" {
				t.Fatalf("crash at byte %d: %v match %s: behavior %q", crashAt, engine, name, dec.Behavior)
			}
		}
		// A policy beyond the durable prefix must not be served.
		if _, err := got.MatchPolicy(permissivePref, "ghost", engine); err == nil {
			t.Fatalf("crash at byte %d: %v served an uninstalled policy", crashAt, engine)
		}
	}
}

// recoverPrefix simulates the crash: a fresh tenant directory holding
// the truncated log (and optionally a snapshot), opened and replayed.
func recoverPrefix(t *testing.T, opts Options, snapshot, logPrefix []byte) (*Tenant, *core.Site) {
	t.Helper()
	store := newStore(t, opts)
	dir := filepath.Join(store.Dir(), "t")
	if err := os.MkdirAll(dir, 0o755); err != nil {
		t.Fatal(err)
	}
	if snapshot != nil {
		if err := os.WriteFile(filepath.Join(dir, snapName), snapshot, 0o644); err != nil {
			t.Fatal(err)
		}
	}
	if err := os.WriteFile(filepath.Join(dir, logName), logPrefix, 0o644); err != nil {
		t.Fatal(err)
	}
	tn, err := store.OpenTenant("t")
	if err != nil {
		t.Fatalf("OpenTenant over %d-byte prefix: %v", len(logPrefix), err)
	}
	t.Cleanup(func() { tn.Close() })
	site := newSite(t)
	if err := tn.ReplayInto(site); err != nil {
		t.Fatalf("replay over %d-byte prefix: %v", len(logPrefix), err)
	}
	return tn, site
}

// TestKillMatrixEveryByte truncates the log at every byte offset and
// asserts recovery reproduces exactly the last durable prefix.
func TestKillMatrixEveryByte(t *testing.T) {
	opts := Options{Fsync: FsyncNever, CheckpointEvery: -1}
	data, expected := runHistory(t, newStore(t, opts), "t")
	bounds := frameBoundaries(t, data)
	if len(bounds) != len(killHistory)+1 {
		t.Fatalf("history produced %d frames, want %d", len(bounds)-1, len(killHistory))
	}

	for b := int64(0); b <= int64(len(data)); b++ {
		k := prefixRecords(bounds, b)
		tn, site := recoverPrefix(t, opts, nil, data[:b])
		mustMatchExport(t, b, expected[k], site)
		atBoundary := b == bounds[k]
		if tn.Torn() == atBoundary {
			t.Fatalf("crash at byte %d: torn=%v, at frame boundary=%v", b, tn.Torn(), atBoundary)
		}
		if got := tn.Status().LSN; got != uint64(k) {
			t.Fatalf("crash at byte %d: recovered LSN %d, want %d", b, got, k)
		}
		// Spot-check actual serving on every frame boundary: the
		// recovered tenant must answer for exactly the durable prefix on
		// all four engines.
		if atBoundary {
			assertServesAcrossEngines(t, b, expected[k], site)
		}
	}
}

// TestKillMatrixSnapshotPlusTail repeats the matrix with a checkpoint in
// the history: recovery is snapshot + truncated tail, and a crash at any
// tail byte lands on snapshot-state + the tail's durable prefix.
func TestKillMatrixSnapshotPlusTail(t *testing.T) {
	opts := Options{Fsync: FsyncNever, CheckpointEvery: -1}
	store := newStore(t, opts)
	site := newSite(t)
	tn := openTenant(t, store, "t")

	const checkpointAfter = 3
	var expected []core.StateExport
	for i, s := range killHistory {
		if err := applyStep(tn, site, s); err != nil {
			t.Fatal(err)
		}
		if i == checkpointAfter-1 {
			if err := tn.Checkpoint(site); err != nil {
				t.Fatal(err)
			}
			expected = append(expected, site.ExportState()) // tail prefix 0
		}
		if i >= checkpointAfter {
			expected = append(expected, site.ExportState())
		}
	}
	if err := tn.Close(); err != nil {
		t.Fatal(err)
	}
	snapshot, err := os.ReadFile(filepath.Join(store.Dir(), "t", snapName))
	if err != nil {
		t.Fatal(err)
	}
	tail, err := os.ReadFile(filepath.Join(store.Dir(), "t", logName))
	if err != nil {
		t.Fatal(err)
	}
	bounds := frameBoundaries(t, tail)
	if len(bounds) != len(killHistory)-checkpointAfter+1 {
		t.Fatalf("tail has %d frames, want %d", len(bounds)-1, len(killHistory)-checkpointAfter)
	}

	for b := int64(0); b <= int64(len(tail)); b++ {
		k := prefixRecords(bounds, b)
		tn2, got := recoverPrefix(t, opts, snapshot, tail[:b])
		mustMatchExport(t, b, expected[k], got)
		if lsn := tn2.Status().LSN; lsn != uint64(checkpointAfter+k) {
			t.Fatalf("crash at tail byte %d: recovered LSN %d, want %d", b, lsn, checkpointAfter+k)
		}
	}
}

// TestKillMatrixWithFaults drives the same history with a short-write or
// fsync fault injected at every step: the faulted mutation rolls back,
// the rest of the history lands, and recovery serves exactly the
// acknowledged set.
func TestKillMatrixWithFaults(t *testing.T) {
	t.Cleanup(faultkit.Reset)
	cases := []struct {
		point string
		opts  Options
	}{
		{faultkit.PointDurableWrite, Options{Fsync: FsyncNever, CheckpointEvery: -1}},
		{faultkit.PointDurableFsync, Options{Fsync: FsyncAlways, CheckpointEvery: -1}},
	}
	for _, tc := range cases {
		for failAt := 0; failAt < len(killHistory); failAt++ {
			t.Run(fmt.Sprintf("%s@%d", tc.point, failAt), func(t *testing.T) {
				faultkit.Reset()
				store := newStore(t, tc.opts)
				site := newSite(t)
				tn := openTenant(t, store, "t")
				if err := faultkit.Enable(fmt.Sprintf("%s:error:after=%d:times=1", tc.point, failAt)); err != nil {
					t.Fatal(err)
				}
				faulted := 0
				for _, s := range killHistory {
					err := applyStep(tn, site, s)
					var ae *AppendError
					if errors.As(err, &ae) {
						faulted++
					} else if err != nil {
						// A rolled-back install can make a later remove a
						// plain request error (the policy never landed);
						// that is correct client-visible behavior.
						continue
					}
				}
				if faulted != 1 {
					t.Fatalf("expected exactly one faulted mutation, got %d", faulted)
				}
				faultkit.Reset()
				if err := tn.Close(); err != nil {
					t.Fatal(err)
				}

				tn2 := openTenant(t, store, "t")
				fresh := newSite(t)
				if err := tn2.ReplayInto(fresh); err != nil {
					t.Fatal(err)
				}
				mustEqualState(t, site, fresh)
				assertServesAcrossEngines(t, int64(failAt), site.ExportState(), fresh)
			})
		}
	}
}
