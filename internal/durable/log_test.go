package durable

import (
	"bytes"
	"encoding/binary"
	"errors"
	"hash/crc32"
	"testing"
)

// buildLog frames a sequence of records as a log image.
func buildLog(t *testing.T, recs ...Record) []byte {
	t.Helper()
	var buf bytes.Buffer
	for i := range recs {
		frame, err := encodeRecord(&recs[i])
		if err != nil {
			t.Fatal(err)
		}
		buf.Write(frame)
	}
	return buf.Bytes()
}

func TestScanLogRoundtrip(t *testing.T) {
	recs := []Record{
		{LSN: 1, Op: OpInstall, Doc: "<POLICY name=\"a\"/>"},
		{LSN: 2, Op: OpRemove, Name: "a"},
		{LSN: 3, Op: OpReplace, Docs: []string{"<POLICY name=\"b\"/>"}, Ref: "<META/>"},
	}
	data := buildLog(t, recs...)
	res, err := scanLog(data)
	if err != nil {
		t.Fatal(err)
	}
	if res.torn || res.validLen != int64(len(data)) {
		t.Fatalf("clean log scanned torn=%v validLen=%d (want %d)", res.torn, res.validLen, len(data))
	}
	if len(res.records) != len(recs) {
		t.Fatalf("decoded %d records, want %d", len(res.records), len(recs))
	}
	for i := range recs {
		if res.records[i].LSN != recs[i].LSN || res.records[i].Op != recs[i].Op {
			t.Fatalf("record %d: got %+v, want %+v", i, res.records[i], recs[i])
		}
	}
}

func TestScanLogEmpty(t *testing.T) {
	res, err := scanLog(nil)
	if err != nil || res.torn || len(res.records) != 0 || res.validLen != 0 {
		t.Fatalf("empty log: %+v, %v", res, err)
	}
}

// TestScanLogTornTail truncates the final frame at several depths: the
// scan keeps the prefix and flags torn, never erroring.
func TestScanLogTornTail(t *testing.T) {
	recs := []Record{
		{LSN: 1, Op: OpInstall, Doc: "<POLICY name=\"a\"/>"},
		{LSN: 2, Op: OpRemove, Name: "a"},
	}
	data := buildLog(t, recs...)
	first, err := encodeRecord(&recs[0])
	if err != nil {
		t.Fatal(err)
	}
	prefix := int64(len(first))
	for _, cut := range []int64{prefix + 1, prefix + 4, prefix + frameHeaderSize, int64(len(data)) - 1} {
		res, err := scanLog(data[:cut])
		if err != nil {
			t.Fatalf("cut at %d: %v", cut, err)
		}
		if !res.torn {
			t.Fatalf("cut at %d: not flagged torn", cut)
		}
		if res.validLen != prefix || len(res.records) != 1 {
			t.Fatalf("cut at %d: validLen=%d records=%d, want %d/1", cut, res.validLen, len(res.records), prefix)
		}
	}
}

// TestScanLogLastFrameCRCTorn treats a checksum failure in the final
// frame as a torn write (length landed, payload didn't).
func TestScanLogLastFrameCRCTorn(t *testing.T) {
	data := buildLog(t,
		Record{LSN: 1, Op: OpInstall, Doc: "<POLICY name=\"a\"/>"},
		Record{LSN: 2, Op: OpRemove, Name: "a"},
	)
	data[len(data)-1] ^= 0xFF
	res, err := scanLog(data)
	if err != nil {
		t.Fatal(err)
	}
	if !res.torn || len(res.records) != 1 {
		t.Fatalf("damaged final frame: torn=%v records=%d", res.torn, len(res.records))
	}
}

// TestScanLogMidCorruption damages an interior frame: valid data exists
// beyond it, so the scan must refuse with ErrCorrupt.
func TestScanLogMidCorruption(t *testing.T) {
	data := buildLog(t,
		Record{LSN: 1, Op: OpInstall, Doc: "<POLICY name=\"a\"/>"},
		Record{LSN: 2, Op: OpRemove, Name: "a"},
	)
	data[frameHeaderSize+2] ^= 0xFF // first record's payload
	if _, err := scanLog(data); !errors.Is(err, ErrCorrupt) {
		t.Fatalf("mid-log damage: %v", err)
	}
}

// TestScanLogUndecodablePayload forges a frame whose CRC is valid but
// whose payload is not a Record: torn at the tail, corrupt mid-log.
func TestScanLogUndecodablePayload(t *testing.T) {
	payload := []byte("not json at all")
	frame := make([]byte, frameHeaderSize+len(payload))
	binary.LittleEndian.PutUint32(frame[0:4], uint32(len(payload)))
	binary.LittleEndian.PutUint32(frame[4:8], crc32.Checksum(payload, castagnoli))
	copy(frame[frameHeaderSize:], payload)

	res, err := scanLog(frame)
	if err != nil || !res.torn || len(res.records) != 0 {
		t.Fatalf("undecodable tail frame: %+v, %v", res, err)
	}

	valid := buildLog(t, Record{LSN: 1, Op: OpRemove, Name: "a"})
	if _, err := scanLog(append(append([]byte{}, frame...), valid...)); !errors.Is(err, ErrCorrupt) {
		t.Fatalf("undecodable mid-log frame: %v", err)
	}
}

// TestScanLogImplausibleLength treats a length prefix beyond the frame
// bound or the file size as a torn header write.
func TestScanLogImplausibleLength(t *testing.T) {
	frame := make([]byte, frameHeaderSize+4)
	binary.LittleEndian.PutUint32(frame[0:4], uint32(maxRecordSize+1))
	res, err := scanLog(frame)
	if err != nil || !res.torn {
		t.Fatalf("oversized length: %+v, %v", res, err)
	}

	binary.LittleEndian.PutUint32(frame[0:4], 1000) // claims bytes the file lacks
	res, err = scanLog(frame)
	if err != nil || !res.torn {
		t.Fatalf("overlong length: %+v, %v", res, err)
	}
}

// TestEncodeRecordBound rejects records beyond the frame bound before
// they reach the file.
func TestEncodeRecordBound(t *testing.T) {
	doc := make([]byte, maxRecordSize+1)
	for i := range doc {
		doc[i] = 'a' // printable, so JSON marshalling is a straight copy
	}
	huge := Record{Op: OpInstall, Doc: string(doc)}
	if _, err := encodeRecord(&huge); err == nil {
		t.Fatal("oversized record should fail to encode")
	}
}
