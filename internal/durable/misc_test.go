package durable

import (
	"errors"
	"testing"
)

func TestAppendErrorWraps(t *testing.T) {
	inner := errors.New("disk on fire")
	ae := &AppendError{Err: inner}
	if ae.Error() != "disk on fire" {
		t.Errorf("Error() = %q", ae.Error())
	}
	if !errors.Is(ae, inner) {
		t.Error("AppendError does not unwrap to its cause")
	}
}

func TestTenantName(t *testing.T) {
	store := newStore(t, Options{Fsync: FsyncNever})
	journal := openTenant(t, store, "acme")
	if journal.Name() != "acme" {
		t.Errorf("Name() = %q", journal.Name())
	}
	if journal.Torn() {
		t.Error("fresh journal reports a torn tail")
	}
}
