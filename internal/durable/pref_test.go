package durable

import (
	"errors"
	"reflect"
	"testing"

	"p3pdb/internal/core"
	"p3pdb/internal/faultkit"
)

// prefRuleset is a minimal valid APPEL document: one indexed block rule
// keyed on telemarketing plus a trivial request fallback, so it both
// exercises the predicate index and decides every policy.
const prefRuleset = `<appel:RULESET xmlns:appel="http://www.w3.org/2002/04/APPELv1" xmlns:p3p="http://www.w3.org/2002/01/P3Pv1">` +
	`<appel:RULE behavior="block"><p3p:POLICY><p3p:STATEMENT><p3p:PURPOSE><p3p:telemarketing/></p3p:PURPOSE></p3p:STATEMENT></p3p:POLICY></appel:RULE>` +
	`<appel:RULE behavior="request"></appel:RULE>` +
	`</appel:RULESET>`

// mustEqualPrefs asserts two sites hold the same registered preferences.
func mustEqualPrefs(t *testing.T, want, got *core.Site) {
	t.Helper()
	wp, gp := want.ExportState().Prefs, got.ExportState().Prefs
	if !reflect.DeepEqual(wp, gp) {
		t.Fatalf("preferences diverged:\nwant %+v\ngot  %+v", wp, gp)
	}
}

// TestPrefSurvivesRestart: a registered preference is a logged mutation
// like any other — it must replay after close/reopen, and the replayed
// site must pre-warm with it on the next policy publish.
func TestPrefSurvivesRestart(t *testing.T) {
	store := newStore(t, Options{Fsync: FsyncNever, CheckpointEvery: -1})
	site := newSite(t)
	tn := openTenant(t, store, "t")

	if _, err := tn.InstallPolicyXML(site, polDoc("a")); err != nil {
		t.Fatal(err)
	}
	if err := tn.RegisterPreferenceXML(site, "mine", prefRuleset, []string{"sql", "native"}); err != nil {
		t.Fatal(err)
	}
	if err := tn.Close(); err != nil {
		t.Fatal(err)
	}

	tn2 := openTenant(t, store, "t")
	fresh := newSite(t)
	if err := tn2.ReplayInto(fresh); err != nil {
		t.Fatal(err)
	}
	mustEqualState(t, site, fresh)
	mustEqualPrefs(t, site, fresh)
	regs := fresh.RegisteredPreferences()
	if len(regs) != 1 || regs[0].Name != "mine" || !reflect.DeepEqual(regs[0].Engines, []string{"sql", "native"}) {
		t.Fatalf("replayed registrations wrong: %+v", regs)
	}
	// The replayed registration is live, not just recorded: the next
	// publish pre-warms through it.
	if _, err := tn2.InstallPolicyXML(fresh, polDoc("b")); err != nil {
		t.Fatal(err)
	}
	if _, last := fresh.PrewarmStats(); last.Evaluated == 0 {
		t.Fatalf("post-replay publish did not pre-warm: %+v", last)
	}
}

// TestPrefSurvivesCheckpoint: a checkpoint truncates the log, so the
// registration must ride the snapshot — and an OpPref record landing
// after the checkpoint must still replay on top of it.
func TestPrefSurvivesCheckpoint(t *testing.T) {
	store := newStore(t, Options{Fsync: FsyncNever, CheckpointEvery: -1})
	site := newSite(t)
	tn := openTenant(t, store, "t")

	if _, err := tn.InstallPolicyXML(site, polDoc("a")); err != nil {
		t.Fatal(err)
	}
	if err := tn.RegisterPreferenceXML(site, "snapped", prefRuleset, nil); err != nil {
		t.Fatal(err)
	}
	if err := tn.Checkpoint(site); err != nil {
		t.Fatal(err)
	}
	if tn.Status().LogBytes != 0 {
		t.Fatal("checkpoint did not truncate the log")
	}
	if err := tn.RegisterPreferenceXML(site, "tailed", prefRuleset, []string{"xquery"}); err != nil {
		t.Fatal(err)
	}
	if err := tn.Close(); err != nil {
		t.Fatal(err)
	}

	tn2 := openTenant(t, store, "t")
	fresh := newSite(t)
	if err := tn2.ReplayInto(fresh); err != nil {
		t.Fatal(err)
	}
	mustEqualState(t, site, fresh)
	mustEqualPrefs(t, site, fresh)
	regs := fresh.RegisteredPreferences()
	if len(regs) != 2 || regs[0].Name != "snapped" || regs[1].Name != "tailed" {
		t.Fatalf("snapshot+tail replay lost a registration: %+v", regs)
	}
}

// TestPrefReplicates drives the follower paths directly: an OpPref
// record through ApplyRecord/ApplyRecords, and an OpState bootstrap
// record minted from a snapshot that carries preferences.
func TestPrefReplicates(t *testing.T) {
	leaderStore := newStore(t, Options{Fsync: FsyncNever, CheckpointEvery: -1})
	leader := newSite(t)
	tn := openTenant(t, leaderStore, "t")
	if _, err := tn.InstallPolicyXML(leader, polDoc("a")); err != nil {
		t.Fatal(err)
	}
	if err := tn.RegisterPreferenceXML(leader, "shipped", prefRuleset, []string{"sql"}); err != nil {
		t.Fatal(err)
	}

	// Log shipping: the follower replays the leader's records verbatim.
	_, recs, _, err := tn.ReadFrom(0)
	if err != nil {
		t.Fatal(err)
	}
	if len(recs) != 2 || recs[1].Op != OpPref {
		t.Fatalf("leader log wrong: %+v", recs)
	}
	follower := newSite(t)
	ptrs := make([]*Record, len(recs))
	for i := range recs {
		ptrs[i] = &recs[i]
	}
	if n, err := ApplyRecords(follower, ptrs); err != nil || n != len(ptrs) {
		t.Fatalf("ApplyRecords: n=%d err=%v", n, err)
	}
	mustEqualState(t, leader, follower)
	mustEqualPrefs(t, leader, follower)
	// The replicated registration pre-warms the follower's own cache.
	if _, err := follower.InstallPolicyXML(polDoc("b")); err != nil {
		t.Fatal(err)
	}
	if _, last := follower.PrewarmStats(); last.Evaluated == 0 {
		t.Fatalf("follower publish did not pre-warm: %+v", last)
	}

	// Snapshot bootstrap: a follower below the checkpoint LSN gets an
	// OpState record, which must carry the registrations too.
	if err := tn.Checkpoint(leader); err != nil {
		t.Fatal(err)
	}
	snap, _, _, err := tn.ReadFrom(0)
	if err != nil {
		t.Fatal(err)
	}
	if snap == nil || len(snap.Prefs) != 1 {
		t.Fatalf("checkpoint snapshot lost the registration: %+v", snap)
	}
	boot := newSite(t)
	if err := ApplyRecord(boot, StateRecord(snap)); err != nil {
		t.Fatal(err)
	}
	mustEqualState(t, leader, boot)
	mustEqualPrefs(t, leader, boot)
}

// TestPrefRollbackPreservesPrefs: a policy append that fails after a
// preference is registered rolls the site back through RestoreState —
// which must restore the registration, not just the policy set. And a
// failed preference append must itself leave no registration residue.
func TestPrefRollbackPreservesPrefs(t *testing.T) {
	t.Cleanup(faultkit.Reset)
	store := newStore(t, Options{Fsync: FsyncNever, CheckpointEvery: -1})
	site := newSite(t)
	tn := openTenant(t, store, "t")

	if _, err := tn.InstallPolicyXML(site, polDoc("a")); err != nil {
		t.Fatal(err)
	}
	if err := tn.RegisterPreferenceXML(site, "kept", prefRuleset, []string{"sql"}); err != nil {
		t.Fatal(err)
	}

	if err := faultkit.Enable(faultkit.PointDurableWrite + ":error:times=1"); err != nil {
		t.Fatal(err)
	}
	var ae *AppendError
	if _, err := tn.InstallPolicyXML(site, polDoc("b")); !errors.As(err, &ae) {
		t.Fatalf("short write surfaced as %v", err)
	}
	regs := site.RegisteredPreferences()
	if len(regs) != 1 || regs[0].Name != "kept" {
		t.Fatalf("rollback dropped the registration: %+v", regs)
	}

	if err := faultkit.Enable(faultkit.PointDurableWrite + ":error:times=1"); err != nil {
		t.Fatal(err)
	}
	if err := tn.RegisterPreferenceXML(site, "torn", prefRuleset, nil); !errors.As(err, &ae) {
		t.Fatalf("short pref write surfaced as %v", err)
	}
	regs = site.RegisteredPreferences()
	if len(regs) != 1 || regs[0].Name != "kept" {
		t.Fatalf("failed registration left residue: %+v", regs)
	}

	// The journal still recovers to exactly the acknowledged state.
	if err := tn.Close(); err != nil {
		t.Fatal(err)
	}
	tn2 := openTenant(t, store, "t")
	fresh := newSite(t)
	if err := tn2.ReplayInto(fresh); err != nil {
		t.Fatal(err)
	}
	mustEqualState(t, site, fresh)
	mustEqualPrefs(t, site, fresh)
}
