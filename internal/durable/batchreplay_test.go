package durable

// Batched-replay equivalence: recovery now lands the snapshot plus the
// whole log tail through one core.ApplyBatch. These tests pin the
// refactor's contract — the batched path produces a site
// indistinguishable from the pre-batching serial replay (same exports,
// same compact-policy headers, same decisions on every engine), and
// when the batch cannot apply, the serial fallback reproduces the exact
// per-record error and applied prefix. The kill matrix
// (killmatrix_test.go) runs on the batched path too, so torn-vs-corrupt
// classification parity is covered byte-by-byte there.

import (
	"os"
	"path/filepath"
	"strings"
	"testing"

	"p3pdb/internal/core"
)

// replaySerially reproduces the pre-batching recovery algorithm using a
// tenant's recovered-but-unconsumed state: snapshot restore, then one
// applyRecord per live tail record.
func replaySerially(t *testing.T, tn *Tenant, site *core.Site) {
	t.Helper()
	snap, records := tn.pending, tn.pendingRecords
	if snap != nil {
		exp := core.StateExport{Order: snap.Order, PolicyXML: snap.Policies, ReferenceXML: snap.Reference}
		if err := site.RestoreState(exp); err != nil {
			t.Fatal(err)
		}
	}
	for i := range records {
		rec := &records[i]
		if rec.LSN <= tn.snapLSN {
			continue
		}
		if err := applyRecord(site, rec); err != nil {
			t.Fatal(err)
		}
	}
}

// TestBatchedReplayMatchesSerial recovers the same journal twice — once
// through the batched ReplayInto, once through the serial per-record
// algorithm — and asserts the two sites are byte-identical: exports,
// CP headers, and decisions across all engines.
func TestBatchedReplayMatchesSerial(t *testing.T) {
	store := newStore(t, Options{Fsync: FsyncNever, CheckpointEvery: -1})
	site := newSite(t)
	tn := openTenant(t, store, "t")
	// Snapshot mid-history so recovery exercises checkpoint + tail.
	for _, s := range killHistory[:2] {
		if err := applyStep(tn, site, s); err != nil {
			t.Fatal(err)
		}
	}
	if err := tn.Checkpoint(site); err != nil {
		t.Fatal(err)
	}
	for _, s := range killHistory[2:] {
		if err := applyStep(tn, site, s); err != nil {
			t.Fatal(err)
		}
	}
	if err := tn.Close(); err != nil {
		t.Fatal(err)
	}

	tnBatch := openTenant(t, store, "t")
	siteBatch := newSite(t)
	if err := tnBatch.ReplayInto(siteBatch); err != nil {
		t.Fatal(err)
	}

	tnSerial := openTenant(t, store, "t")
	siteSerial := newSite(t)
	replaySerially(t, tnSerial, siteSerial)

	mustEqualState(t, siteSerial, siteBatch)
	mustEqualState(t, site, siteBatch)
	for _, name := range siteSerial.PolicyNames() {
		cpSerial, err := siteSerial.CompactPolicy(name)
		if err != nil {
			t.Fatal(err)
		}
		cpBatch, err := siteBatch.CompactPolicy(name)
		if err != nil {
			t.Fatal(err)
		}
		if cpSerial != cpBatch {
			t.Fatalf("policy %q: CP header diverged:\nserial  %s\nbatched %s", name, cpSerial, cpBatch)
		}
		for _, engine := range core.Engines {
			decSerial, err := siteSerial.MatchPolicy(permissivePref, name, engine)
			if err != nil {
				t.Fatalf("%v match %s (serial): %v", engine, name, err)
			}
			decBatch, err := siteBatch.MatchPolicy(permissivePref, name, engine)
			if err != nil {
				t.Fatalf("%v match %s (batched): %v", engine, name, err)
			}
			if decSerial.Behavior != decBatch.Behavior {
				t.Fatalf("%v match %s: serial %q vs batched %q", engine, name, decSerial.Behavior, decBatch.Behavior)
			}
		}
	}
}

// TestBatchedReplayFallbackPreservesErrors hand-writes a log whose
// second record cannot apply (removing a policy that was never
// installed) and asserts the batched recovery reports the pre-batching
// per-record error — with its LSN and op — and leaves exactly the
// applied prefix on the site.
func TestBatchedReplayFallbackPreservesErrors(t *testing.T) {
	store := newStore(t, Options{Fsync: FsyncNever, CheckpointEvery: -1})
	dir := filepath.Join(store.Dir(), "t")
	if err := os.MkdirAll(dir, 0o755); err != nil {
		t.Fatal(err)
	}
	var log []byte
	for _, rec := range []*Record{
		{LSN: 1, Op: OpInstall, Doc: polDoc("a")},
		{LSN: 2, Op: OpRemove, Name: "ghost"},
	} {
		frame, err := encodeRecord(rec)
		if err != nil {
			t.Fatal(err)
		}
		log = append(log, frame...)
	}
	if err := os.WriteFile(filepath.Join(dir, logName), log, 0o644); err != nil {
		t.Fatal(err)
	}
	tn, err := store.OpenTenant("t")
	if err != nil {
		t.Fatal(err)
	}
	defer tn.Close()
	site := newSite(t)
	replayErr := tn.ReplayInto(site)
	if replayErr == nil {
		t.Fatal("replay of an unappliable record succeeded")
	}
	if !strings.Contains(replayErr.Error(), "durable: replaying record 2 (remove):") {
		t.Fatalf("fallback lost the per-record error format: %v", replayErr)
	}
	if names := site.PolicyNames(); len(names) != 1 || names[0] != "a" {
		t.Fatalf("fallback did not leave the applied prefix: %v", names)
	}
}
