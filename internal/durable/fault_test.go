package durable

import (
	"errors"
	"fmt"
	"sync"
	"testing"
	"time"

	"p3pdb/internal/faultkit"
)

// TestShortWriteRollsBack arms the durable.write point: the append tears
// mid-frame, the mutation reports AppendError, the site rolls back, and
// the log remains a clean prefix that later appends extend safely.
func TestShortWriteRollsBack(t *testing.T) {
	t.Cleanup(faultkit.Reset)
	store := newStore(t, Options{Fsync: FsyncNever, CheckpointEvery: -1})
	site := newSite(t)
	tn := openTenant(t, store, "t")
	if _, err := tn.InstallPolicyXML(site, polDoc("a")); err != nil {
		t.Fatal(err)
	}

	if err := faultkit.Enable(faultkit.PointDurableWrite + ":error:times=1"); err != nil {
		t.Fatal(err)
	}
	_, err := tn.InstallPolicyXML(site, polDoc("b"))
	var ae *AppendError
	if !errors.As(err, &ae) || !errors.Is(err, faultkit.ErrInjected) {
		t.Fatalf("short write surfaced as %v", err)
	}
	if names := site.PolicyNames(); len(names) != 1 || names[0] != "a" {
		t.Fatalf("site not rolled back: %v", names)
	}
	if st := tn.Status(); st.LSN != 1 {
		t.Fatalf("failed append advanced the LSN: %+v", st)
	}

	// The torn bytes were truncated away, so the journal keeps working
	// and recovery sees only acknowledged records.
	if _, err := tn.InstallPolicyXML(site, polDoc("b")); err != nil {
		t.Fatal(err)
	}
	if err := tn.Close(); err != nil {
		t.Fatal(err)
	}
	tn2 := openTenant(t, store, "t")
	if tn2.Torn() {
		t.Fatal("recovery saw a torn tail after rollback truncation")
	}
	fresh := newSite(t)
	if err := tn2.ReplayInto(fresh); err != nil {
		t.Fatal(err)
	}
	mustEqualState(t, site, fresh)
}

// TestFsyncFaultAlwaysRollsBack: under FsyncAlways an append whose sync
// fails was never acknowledged, so it must not survive into the log.
func TestFsyncFaultAlwaysRollsBack(t *testing.T) {
	t.Cleanup(faultkit.Reset)
	store := newStore(t, Options{Fsync: FsyncAlways, CheckpointEvery: -1})
	site := newSite(t)
	tn := openTenant(t, store, "t")
	if _, err := tn.InstallPolicyXML(site, polDoc("a")); err != nil {
		t.Fatal(err)
	}
	before := tn.Status()

	if err := faultkit.Enable(faultkit.PointDurableFsync + ":error:times=1"); err != nil {
		t.Fatal(err)
	}
	_, err := tn.InstallPolicyXML(site, polDoc("b"))
	var ae *AppendError
	if !errors.As(err, &ae) {
		t.Fatalf("fsync failure surfaced as %v", err)
	}
	if names := site.PolicyNames(); len(names) != 1 {
		t.Fatalf("site not rolled back: %v", names)
	}
	if st := tn.Status(); st.LSN != before.LSN || st.LogBytes != before.LogBytes {
		t.Fatalf("unacknowledged record left in the log: %+v vs %+v", st, before)
	}

	// A retry after the fault clears must succeed and recover cleanly —
	// the regression this guards: if the failed record had stayed in the
	// log, this retry would double-install on replay.
	if _, err := tn.InstallPolicyXML(site, polDoc("b")); err != nil {
		t.Fatal(err)
	}
	if err := tn.Close(); err != nil {
		t.Fatal(err)
	}
	tn2 := openTenant(t, store, "t")
	fresh := newSite(t)
	if err := tn2.ReplayInto(fresh); err != nil {
		t.Fatal(err)
	}
	mustEqualState(t, site, fresh)
}

// TestRenameFaultFailsCheckpoint: a failed snapshot rename leaves the old
// checkpoint and the intact log, so nothing is lost.
func TestRenameFaultFailsCheckpoint(t *testing.T) {
	t.Cleanup(faultkit.Reset)
	store := newStore(t, Options{Fsync: FsyncNever, CheckpointEvery: -1})
	site := newSite(t)
	tn := openTenant(t, store, "t")
	if _, err := tn.InstallPolicyXML(site, polDoc("a")); err != nil {
		t.Fatal(err)
	}
	before := tn.Status()

	if err := faultkit.Enable(faultkit.PointDurableRename + ":error:times=1"); err != nil {
		t.Fatal(err)
	}
	if err := tn.Checkpoint(site); !errors.Is(err, faultkit.ErrInjected) {
		t.Fatalf("checkpoint under rename fault: %v", err)
	}
	if st := tn.Status(); st.CheckpointLSN != before.CheckpointLSN || st.LogBytes != before.LogBytes {
		t.Fatalf("failed checkpoint mutated durable state: %+v vs %+v", st, before)
	}

	// Recovery ignores the leftover temp file and replays the log.
	if err := tn.Close(); err != nil {
		t.Fatal(err)
	}
	faultkit.Reset()
	tn2 := openTenant(t, store, "t")
	fresh := newSite(t)
	if err := tn2.ReplayInto(fresh); err != nil {
		t.Fatal(err)
	}
	mustEqualState(t, site, fresh)
}

// TestFsyncFaultIntervalSurfacesInStatus: a failing group-commit sync
// fails the waiting append — no acknowledgement rides a dead fsync —
// and is reported on /durability rather than swallowed.
func TestFsyncFaultIntervalSurfacesInStatus(t *testing.T) {
	t.Cleanup(faultkit.Reset)
	store := newStore(t, Options{Fsync: FsyncInterval, FsyncInterval: 5 * time.Millisecond, CheckpointEvery: -1})
	site := newSite(t)
	tn := openTenant(t, store, "t")
	if err := faultkit.Enable(faultkit.PointDurableFsync + ":error"); err != nil {
		t.Fatal(err)
	}
	var appendErr *AppendError
	if _, err := tn.InstallPolicyXML(site, polDoc("a")); !errors.As(err, &appendErr) {
		t.Fatalf("install under fsync fault: %v", err)
	}
	if tn.Status().SyncError == "" {
		t.Fatal("sync error not surfaced in Status")
	}
	if got := site.PolicyNames(); len(got) != 0 {
		t.Fatalf("failed append left state applied: %v", got)
	}

	// Once the fault clears the next append commits and clears the error.
	faultkit.Reset()
	if _, err := tn.InstallPolicyXML(site, polDoc("a")); err != nil {
		t.Fatal(err)
	}
	if st := tn.Status(); st.SyncError != "" {
		t.Fatalf("sync error not cleared after recovery: %q", st.SyncError)
	}
}

// TestGroupCommitFaultFailsEveryWaiter arms the durable.groupcommit
// point: one dead coalesced fsync must fail every append riding the
// batch with a typed AppendError — no acknowledgement may outlive its
// fsync — and must roll the site and the log back to the batch's start.
func TestGroupCommitFaultFailsEveryWaiter(t *testing.T) {
	t.Cleanup(faultkit.Reset)
	store := newStore(t, Options{Fsync: FsyncInterval, FsyncInterval: time.Hour, CheckpointEvery: -1})
	site := newSite(t)
	tn := openTenant(t, store, "t")
	if err := faultkit.Enable(faultkit.PointDurableGroupCommit + ":error"); err != nil {
		t.Fatal(err)
	}
	const writers = 8
	errs := make([]error, writers)
	var wg sync.WaitGroup
	for i := 0; i < writers; i++ {
		wg.Add(1)
		go func(i int) {
			defer wg.Done()
			_, errs[i] = tn.InstallPolicyXML(site, polDoc(fmt.Sprintf("p%d", i)))
		}(i)
	}
	wg.Wait()
	for i, err := range errs {
		var ae *AppendError
		if !errors.As(err, &ae) {
			t.Fatalf("writer %d: want AppendError, got %v", i, err)
		}
		if !errors.Is(err, faultkit.ErrInjected) {
			t.Fatalf("writer %d: injected fault not surfaced: %v", i, err)
		}
	}
	if got := site.PolicyNames(); len(got) != 0 {
		t.Fatalf("failed group commits left state applied: %v", got)
	}
	st := tn.Status()
	if st.LogBytes != 0 {
		t.Fatalf("failed group commits left %d log bytes", st.LogBytes)
	}
	if st.SyncError == "" {
		t.Fatal("group-commit failure not surfaced in Status")
	}

	// The journal survives a failed batch: with the fault cleared, the
	// next append commits, clears the sync error, and recovery replays
	// exactly the acknowledged state.
	faultkit.Reset()
	if _, err := tn.InstallPolicyXML(site, polDoc("ok")); err != nil {
		t.Fatal(err)
	}
	if st := tn.Status(); st.SyncError != "" {
		t.Fatalf("sync error not cleared: %q", st.SyncError)
	}
	if err := tn.Close(); err != nil {
		t.Fatal(err)
	}
	tn2 := openTenant(t, store, "t")
	fresh := newSite(t)
	if err := tn2.ReplayInto(fresh); err != nil {
		t.Fatal(err)
	}
	mustEqualState(t, site, fresh)
}
