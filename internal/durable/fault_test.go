package durable

import (
	"errors"
	"testing"
	"time"

	"p3pdb/internal/faultkit"
)

// TestShortWriteRollsBack arms the durable.write point: the append tears
// mid-frame, the mutation reports AppendError, the site rolls back, and
// the log remains a clean prefix that later appends extend safely.
func TestShortWriteRollsBack(t *testing.T) {
	t.Cleanup(faultkit.Reset)
	store := newStore(t, Options{Fsync: FsyncNever, CheckpointEvery: -1})
	site := newSite(t)
	tn := openTenant(t, store, "t")
	if _, err := tn.InstallPolicyXML(site, polDoc("a")); err != nil {
		t.Fatal(err)
	}

	if err := faultkit.Enable(faultkit.PointDurableWrite + ":error:times=1"); err != nil {
		t.Fatal(err)
	}
	_, err := tn.InstallPolicyXML(site, polDoc("b"))
	var ae *AppendError
	if !errors.As(err, &ae) || !errors.Is(err, faultkit.ErrInjected) {
		t.Fatalf("short write surfaced as %v", err)
	}
	if names := site.PolicyNames(); len(names) != 1 || names[0] != "a" {
		t.Fatalf("site not rolled back: %v", names)
	}
	if st := tn.Status(); st.LSN != 1 {
		t.Fatalf("failed append advanced the LSN: %+v", st)
	}

	// The torn bytes were truncated away, so the journal keeps working
	// and recovery sees only acknowledged records.
	if _, err := tn.InstallPolicyXML(site, polDoc("b")); err != nil {
		t.Fatal(err)
	}
	if err := tn.Close(); err != nil {
		t.Fatal(err)
	}
	tn2 := openTenant(t, store, "t")
	if tn2.Torn() {
		t.Fatal("recovery saw a torn tail after rollback truncation")
	}
	fresh := newSite(t)
	if err := tn2.ReplayInto(fresh); err != nil {
		t.Fatal(err)
	}
	mustEqualState(t, site, fresh)
}

// TestFsyncFaultAlwaysRollsBack: under FsyncAlways an append whose sync
// fails was never acknowledged, so it must not survive into the log.
func TestFsyncFaultAlwaysRollsBack(t *testing.T) {
	t.Cleanup(faultkit.Reset)
	store := newStore(t, Options{Fsync: FsyncAlways, CheckpointEvery: -1})
	site := newSite(t)
	tn := openTenant(t, store, "t")
	if _, err := tn.InstallPolicyXML(site, polDoc("a")); err != nil {
		t.Fatal(err)
	}
	before := tn.Status()

	if err := faultkit.Enable(faultkit.PointDurableFsync + ":error:times=1"); err != nil {
		t.Fatal(err)
	}
	_, err := tn.InstallPolicyXML(site, polDoc("b"))
	var ae *AppendError
	if !errors.As(err, &ae) {
		t.Fatalf("fsync failure surfaced as %v", err)
	}
	if names := site.PolicyNames(); len(names) != 1 {
		t.Fatalf("site not rolled back: %v", names)
	}
	if st := tn.Status(); st.LSN != before.LSN || st.LogBytes != before.LogBytes {
		t.Fatalf("unacknowledged record left in the log: %+v vs %+v", st, before)
	}

	// A retry after the fault clears must succeed and recover cleanly —
	// the regression this guards: if the failed record had stayed in the
	// log, this retry would double-install on replay.
	if _, err := tn.InstallPolicyXML(site, polDoc("b")); err != nil {
		t.Fatal(err)
	}
	if err := tn.Close(); err != nil {
		t.Fatal(err)
	}
	tn2 := openTenant(t, store, "t")
	fresh := newSite(t)
	if err := tn2.ReplayInto(fresh); err != nil {
		t.Fatal(err)
	}
	mustEqualState(t, site, fresh)
}

// TestRenameFaultFailsCheckpoint: a failed snapshot rename leaves the old
// checkpoint and the intact log, so nothing is lost.
func TestRenameFaultFailsCheckpoint(t *testing.T) {
	t.Cleanup(faultkit.Reset)
	store := newStore(t, Options{Fsync: FsyncNever, CheckpointEvery: -1})
	site := newSite(t)
	tn := openTenant(t, store, "t")
	if _, err := tn.InstallPolicyXML(site, polDoc("a")); err != nil {
		t.Fatal(err)
	}
	before := tn.Status()

	if err := faultkit.Enable(faultkit.PointDurableRename + ":error:times=1"); err != nil {
		t.Fatal(err)
	}
	if err := tn.Checkpoint(site); !errors.Is(err, faultkit.ErrInjected) {
		t.Fatalf("checkpoint under rename fault: %v", err)
	}
	if st := tn.Status(); st.CheckpointLSN != before.CheckpointLSN || st.LogBytes != before.LogBytes {
		t.Fatalf("failed checkpoint mutated durable state: %+v vs %+v", st, before)
	}

	// Recovery ignores the leftover temp file and replays the log.
	if err := tn.Close(); err != nil {
		t.Fatal(err)
	}
	faultkit.Reset()
	tn2 := openTenant(t, store, "t")
	fresh := newSite(t)
	if err := tn2.ReplayInto(fresh); err != nil {
		t.Fatal(err)
	}
	mustEqualState(t, site, fresh)
}

// TestFsyncFaultIntervalSurfacesInStatus: a failing group-commit sync is
// reported on /durability rather than swallowed.
func TestFsyncFaultIntervalSurfacesInStatus(t *testing.T) {
	t.Cleanup(faultkit.Reset)
	store := newStore(t, Options{Fsync: FsyncInterval, FsyncInterval: 5 * time.Millisecond, CheckpointEvery: -1})
	site := newSite(t)
	tn := openTenant(t, store, "t")
	if err := faultkit.Enable(faultkit.PointDurableFsync + ":error"); err != nil {
		t.Fatal(err)
	}
	if _, err := tn.InstallPolicyXML(site, polDoc("a")); err != nil {
		t.Fatal(err)
	}
	deadline := time.Now().Add(2 * time.Second)
	for tn.Status().SyncError == "" {
		if time.Now().After(deadline) {
			t.Fatal("sync error never surfaced in Status")
		}
		time.Sleep(2 * time.Millisecond)
	}

	// Once the fault clears the next tick flushes and clears the error.
	faultkit.Reset()
	deadline = time.Now().Add(2 * time.Second)
	for tn.Status().SyncError != "" {
		if time.Now().After(deadline) {
			t.Fatal("sync error never cleared after recovery")
		}
		time.Sleep(2 * time.Millisecond)
	}
}
