package durable

import (
	"errors"
	"fmt"
	"os"
	"path/filepath"
	"reflect"
	"testing"
	"time"

	"p3pdb/internal/core"
)

// polDoc builds a minimal valid policy document.
func polDoc(name string) string {
	return fmt.Sprintf(`<POLICY name=%q><STATEMENT><NON-IDENTIFIABLE/></STATEMENT></POLICY>`, name)
}

// refDoc covers /a/* with policy a.
const refDoc = `<META><POLICY-REFERENCES><POLICY-REF about="#a"><INCLUDE>/a/*</INCLUDE></POLICY-REF></POLICY-REFERENCES></META>`

func newStore(t *testing.T, opts Options) *Store {
	t.Helper()
	s, err := Open(t.TempDir(), opts)
	if err != nil {
		t.Fatal(err)
	}
	return s
}

func openTenant(t *testing.T, s *Store, name string) *Tenant {
	t.Helper()
	tn, err := s.OpenTenant(name)
	if err != nil {
		t.Fatal(err)
	}
	t.Cleanup(func() { tn.Close() })
	return tn
}

func newSite(t *testing.T) *core.Site {
	t.Helper()
	site, err := core.NewSite()
	if err != nil {
		t.Fatal(err)
	}
	return site
}

// mustEqualState asserts two sites expose the same logical state.
func mustEqualState(t *testing.T, want, got *core.Site) {
	t.Helper()
	we, ge := want.ExportState(), got.ExportState()
	if !reflect.DeepEqual(we.Order, ge.Order) {
		t.Fatalf("order: want %v, got %v", we.Order, ge.Order)
	}
	if !reflect.DeepEqual(we.PolicyXML, ge.PolicyXML) {
		t.Fatalf("policy XML diverged:\nwant %v\ngot  %v", we.PolicyXML, ge.PolicyXML)
	}
	if we.ReferenceXML != ge.ReferenceXML {
		t.Fatalf("reference: want %q, got %q", we.ReferenceXML, ge.ReferenceXML)
	}
}

// TestMutateCloseReopenReplay is the core durability contract: every
// acknowledged mutation survives a close/reopen cycle.
func TestMutateCloseReopenReplay(t *testing.T) {
	store := newStore(t, Options{Fsync: FsyncNever, CheckpointEvery: -1})
	site := newSite(t)
	tn := openTenant(t, store, "a.example")

	if _, err := tn.InstallPolicyXML(site, polDoc("a")); err != nil {
		t.Fatal(err)
	}
	if _, err := tn.InstallPolicyXML(site, polDoc("b")); err != nil {
		t.Fatal(err)
	}
	if err := tn.InstallReferenceFileXML(site, refDoc); err != nil {
		t.Fatal(err)
	}
	if err := tn.RemovePolicy(site, "b"); err != nil {
		t.Fatal(err)
	}
	st := tn.Status()
	if st.LSN != 4 || st.RecordsSinceCheckpoint != 4 || st.LogBytes == 0 {
		t.Fatalf("status after 4 mutations: %+v", st)
	}
	if err := tn.Close(); err != nil {
		t.Fatal(err)
	}
	if err := tn.Close(); err != nil {
		t.Fatalf("second Close: %v", err)
	}

	tn2 := openTenant(t, store, "a.example")
	if got := tn2.Status().LSN; got != 4 {
		t.Fatalf("recovered LSN = %d, want 4", got)
	}
	fresh := newSite(t)
	if err := tn2.ReplayInto(fresh); err != nil {
		t.Fatal(err)
	}
	mustEqualState(t, site, fresh)
	if err := tn2.ReplayInto(fresh); err == nil {
		t.Fatal("second ReplayInto should fail")
	}
}

// TestCheckpointTruncatesLog verifies checkpoint resets the log and that
// recovery from snapshot + tail reproduces the full state.
func TestCheckpointTruncatesLog(t *testing.T) {
	store := newStore(t, Options{Fsync: FsyncAlways, CheckpointEvery: -1})
	site := newSite(t)
	tn := openTenant(t, store, "t")

	if _, err := tn.InstallPolicyXML(site, polDoc("a")); err != nil {
		t.Fatal(err)
	}
	if _, err := tn.InstallPolicyXML(site, polDoc("b")); err != nil {
		t.Fatal(err)
	}
	if err := tn.Checkpoint(site); err != nil {
		t.Fatal(err)
	}
	st := tn.Status()
	if st.LogBytes != 0 || st.RecordsSinceCheckpoint != 0 || st.CheckpointLSN != 2 || st.LSN != 2 {
		t.Fatalf("status after checkpoint: %+v", st)
	}

	// Mutations past the checkpoint land in the fresh log.
	if err := tn.RemovePolicy(site, "a"); err != nil {
		t.Fatal(err)
	}
	if tn.Status().LogBytes == 0 {
		t.Fatal("post-checkpoint mutation did not grow the log")
	}
	if err := tn.Close(); err != nil {
		t.Fatal(err)
	}

	tn2 := openTenant(t, store, "t")
	fresh := newSite(t)
	if err := tn2.ReplayInto(fresh); err != nil {
		t.Fatal(err)
	}
	mustEqualState(t, site, fresh)
	if got := tn2.Status().LSN; got != 3 {
		t.Fatalf("recovered LSN = %d, want 3", got)
	}
}

// TestDanglingReferenceSurvivesCheckpoint: removing a policy the
// reference file names is legal (the ref dangles, resolution reports it
// per lookup) — so a checkpoint of that state must replay verbatim
// instead of failing reference validation.
func TestDanglingReferenceSurvivesCheckpoint(t *testing.T) {
	store := newStore(t, Options{Fsync: FsyncNever, CheckpointEvery: -1})
	site := newSite(t)
	tn := openTenant(t, store, "t")
	if _, err := tn.InstallPolicyXML(site, polDoc("a")); err != nil {
		t.Fatal(err)
	}
	if err := tn.InstallReferenceFileXML(site, refDoc); err != nil {
		t.Fatal(err)
	}
	if err := tn.RemovePolicy(site, "a"); err != nil {
		t.Fatal(err)
	}
	if err := tn.Checkpoint(site); err != nil {
		t.Fatal(err)
	}
	if err := tn.Close(); err != nil {
		t.Fatal(err)
	}
	tn2 := openTenant(t, store, "t")
	fresh := newSite(t)
	if err := tn2.ReplayInto(fresh); err != nil {
		t.Fatalf("dangling-ref snapshot refused: %v", err)
	}
	mustEqualState(t, site, fresh)
}

// TestMaybeCheckpoint triggers the automatic checkpoint threshold.
func TestMaybeCheckpoint(t *testing.T) {
	store := newStore(t, Options{Fsync: FsyncNever, CheckpointEvery: 3})
	site := newSite(t)
	tn := openTenant(t, store, "t")
	for i, name := range []string{"a", "b", "c"} {
		if _, err := tn.InstallPolicyXML(site, polDoc(name)); err != nil {
			t.Fatal(err)
		}
		if err := tn.MaybeCheckpoint(site); err != nil {
			t.Fatal(err)
		}
		st := tn.Status()
		if i < 2 && st.CheckpointLSN != 0 {
			t.Fatalf("checkpoint fired early at mutation %d: %+v", i+1, st)
		}
		if i == 2 && (st.CheckpointLSN != 3 || st.LogBytes != 0) {
			t.Fatalf("checkpoint did not fire at threshold: %+v", st)
		}
	}
}

// TestReplace logs a whole-set replacement as one record.
func TestReplace(t *testing.T) {
	store := newStore(t, Options{Fsync: FsyncNever, CheckpointEvery: -1})
	site := newSite(t)
	tn := openTenant(t, store, "t")
	if _, err := tn.InstallPolicyXML(site, polDoc("old")); err != nil {
		t.Fatal(err)
	}
	if err := tn.Replace(site, []string{polDoc("a"), polDoc("b")}, ""); err != nil {
		t.Fatal(err)
	}
	if names := site.PolicyNames(); len(names) != 2 {
		t.Fatalf("after replace: %v", names)
	}
	if err := tn.Close(); err != nil {
		t.Fatal(err)
	}
	tn2 := openTenant(t, store, "t")
	fresh := newSite(t)
	if err := tn2.ReplayInto(fresh); err != nil {
		t.Fatal(err)
	}
	mustEqualState(t, site, fresh)

	// A malformed document in the new set fails before anything is
	// applied or logged.
	if err := tn2.Replace(fresh, []string{"<not-a-policy/>"}, ""); err == nil {
		t.Fatal("Replace with garbage should fail")
	}
	mustEqualState(t, site, fresh)
}

// TestClosedJournal maps mutations after Close to AppendError(ErrClosed).
func TestClosedJournal(t *testing.T) {
	store := newStore(t, Options{Fsync: FsyncNever})
	site := newSite(t)
	tn := openTenant(t, store, "t")
	if err := tn.Close(); err != nil {
		t.Fatal(err)
	}
	_, err := tn.InstallPolicyXML(site, polDoc("a"))
	var ae *AppendError
	if !errors.As(err, &ae) || !errors.Is(err, ErrClosed) {
		t.Fatalf("mutation on closed journal: %v", err)
	}
	if err := tn.Checkpoint(site); !errors.Is(err, ErrClosed) {
		t.Fatalf("checkpoint on closed journal: %v", err)
	}
}

// TestRequestErrorsAreNotAppendErrors keeps the 400/503 split typed: a
// bad document or missing policy is the caller's fault, not the log's.
func TestRequestErrorsAreNotAppendErrors(t *testing.T) {
	store := newStore(t, Options{Fsync: FsyncNever})
	site := newSite(t)
	tn := openTenant(t, store, "t")
	var ae *AppendError
	if _, err := tn.InstallPolicyXML(site, "<garbage"); err == nil || errors.As(err, &ae) {
		t.Fatalf("bad document: %v", err)
	}
	if err := tn.RemovePolicy(site, "ghost"); err == nil || errors.As(err, &ae) {
		t.Fatalf("missing policy: %v", err)
	}
	if st := tn.Status(); st.LSN != 0 || st.LogBytes != 0 {
		t.Fatalf("failed mutations reached the log: %+v", st)
	}
}

// TestMidLogCorruptionRefused flips a byte inside an interior record and
// expects ErrCorrupt, not silent prefix recovery.
func TestMidLogCorruptionRefused(t *testing.T) {
	store := newStore(t, Options{Fsync: FsyncNever, CheckpointEvery: -1})
	site := newSite(t)
	tn := openTenant(t, store, "t")
	for _, name := range []string{"a", "b", "c"} {
		if _, err := tn.InstallPolicyXML(site, polDoc(name)); err != nil {
			t.Fatal(err)
		}
	}
	if err := tn.Close(); err != nil {
		t.Fatal(err)
	}
	logPath := filepath.Join(store.Dir(), "t", logName)
	data, err := os.ReadFile(logPath)
	if err != nil {
		t.Fatal(err)
	}
	data[20] ^= 0xFF // inside the first record's payload
	if err := os.WriteFile(logPath, data, 0o644); err != nil {
		t.Fatal(err)
	}
	if _, err := store.OpenTenant("t"); !errors.Is(err, ErrCorrupt) {
		t.Fatalf("OpenTenant over mid-log damage: %v", err)
	}
}

// TestSnapshotCorruptionRefused damages the checkpoint file.
func TestSnapshotCorruptionRefused(t *testing.T) {
	store := newStore(t, Options{Fsync: FsyncNever, CheckpointEvery: -1})
	site := newSite(t)
	tn := openTenant(t, store, "t")
	if _, err := tn.InstallPolicyXML(site, polDoc("a")); err != nil {
		t.Fatal(err)
	}
	if err := tn.Checkpoint(site); err != nil {
		t.Fatal(err)
	}
	if err := tn.Close(); err != nil {
		t.Fatal(err)
	}
	snapPath := filepath.Join(store.Dir(), "t", snapName)
	data, err := os.ReadFile(snapPath)
	if err != nil {
		t.Fatal(err)
	}
	data[len(data)-2] ^= 0xFF
	if err := os.WriteFile(snapPath, data, 0o644); err != nil {
		t.Fatal(err)
	}
	if _, err := store.OpenTenant("t"); !errors.Is(err, ErrSnapshotCorrupt) {
		t.Fatalf("OpenTenant over damaged snapshot: %v", err)
	}
}

// TestIntervalFsyncFlushes exercises the group-commit timer path.
func TestIntervalFsyncFlushes(t *testing.T) {
	store := newStore(t, Options{Fsync: FsyncInterval, FsyncInterval: 5 * time.Millisecond, CheckpointEvery: -1})
	site := newSite(t)
	tn := openTenant(t, store, "t")
	if _, err := tn.InstallPolicyXML(site, polDoc("a")); err != nil {
		t.Fatal(err)
	}
	deadline := time.Now().Add(2 * time.Second)
	for {
		tn.mu.Lock()
		flushed := !tn.needsSyncLocked()
		tn.mu.Unlock()
		if flushed {
			break
		}
		if time.Now().After(deadline) {
			t.Fatal("interval fsync never flushed")
		}
		time.Sleep(2 * time.Millisecond)
	}
	if err := tn.Close(); err != nil {
		t.Fatal(err)
	}
}

// TestStoreTenantDirectory covers HasTenant, TenantNames, RemoveTenant.
func TestStoreTenantDirectory(t *testing.T) {
	store := newStore(t, Options{Fsync: FsyncNever})
	if store.HasTenant("a") {
		t.Fatal("HasTenant before any state")
	}
	site := newSite(t)
	for _, name := range []string{"b.example", "a.example"} {
		tn := openTenant(t, store, name)
		if _, err := tn.InstallPolicyXML(site, polDoc("p")); err != nil {
			t.Fatal(err)
		}
		if err := tn.RemovePolicy(site, "p"); err != nil {
			t.Fatal(err)
		}
		if err := tn.Close(); err != nil {
			t.Fatal(err)
		}
	}
	if got := store.TenantNames(); !reflect.DeepEqual(got, []string{"a.example", "b.example"}) {
		t.Fatalf("TenantNames = %v", got)
	}
	if !store.HasTenant("a.example") {
		t.Fatal("HasTenant after mutations")
	}
	if err := store.RemoveTenant("a.example"); err != nil {
		t.Fatal(err)
	}
	if store.HasTenant("a.example") {
		t.Fatal("HasTenant after RemoveTenant")
	}
	if got := store.TenantNames(); !reflect.DeepEqual(got, []string{"b.example"}) {
		t.Fatalf("TenantNames after remove = %v", got)
	}
}

// TestParseFsyncPolicy round-trips the flag spelling.
func TestParseFsyncPolicy(t *testing.T) {
	for _, p := range []FsyncPolicy{FsyncAlways, FsyncInterval, FsyncNever} {
		got, err := ParseFsyncPolicy(p.String())
		if err != nil || got != p {
			t.Fatalf("ParseFsyncPolicy(%q) = %v, %v", p.String(), got, err)
		}
	}
	if _, err := ParseFsyncPolicy("sometimes"); err == nil {
		t.Fatal("ParseFsyncPolicy should reject unknown spellings")
	}
	if s := FsyncPolicy(99).String(); s != "FsyncPolicy(99)" {
		t.Fatalf("String() for invalid policy: %q", s)
	}
}
