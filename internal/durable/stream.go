package durable

import (
	"bufio"
	"encoding/binary"
	"encoding/json"
	"errors"
	"fmt"
	"hash/crc32"
	"io"
	"path/filepath"
)

// WAL shipping (DESIGN.md §12): a leader serves a tenant's log as a
// stream of the same CRC32C frames the on-disk log holds, prefixed with
// one OpState record when the requested LSN predates the newest
// checkpoint (checkpoints truncate the log, so the records below the
// checkpoint LSN no longer exist to ship — the snapshot stands in for
// them). The follower parses the stream with StreamReader, whose
// torn-vs-corrupt classification mirrors scanLog exactly: a broken frame
// at the end of the stream is a torn (cut) stream to be retried, a
// broken frame with data beyond it is corruption to be counted and
// refused.

// ErrStreamTorn reports a replication stream that ended inside a frame:
// the connection (or the leader) went away mid-record. Like a torn log
// tail it is not damage — the follower simply reconnects from its last
// applied LSN.
var ErrStreamTorn = errors.New("durable: stream torn")

// StreamReader incrementally parses a stream of framed records.
type StreamReader struct {
	br *bufio.Reader
}

// NewStreamReader wraps a WAL stream body.
func NewStreamReader(r io.Reader) *StreamReader {
	return &StreamReader{br: bufio.NewReader(r)}
}

// atEnd reports whether the stream has no bytes beyond the current
// position — the discriminator between a torn tail and mid-stream
// corruption, same as scanLog's end == size test.
func (sr *StreamReader) atEnd() bool {
	_, err := sr.br.Peek(1)
	return err != nil
}

// Next returns the next record, io.EOF at a clean frame boundary,
// ErrStreamTorn when the stream ends inside a frame, and ErrCorrupt when
// a frame fails its checksum (or decode) with data beyond it.
func (sr *StreamReader) Next() (*Record, error) {
	var hdr [frameHeaderSize]byte
	if _, err := io.ReadFull(sr.br, hdr[:1]); err != nil {
		if err == io.EOF {
			return nil, io.EOF
		}
		return nil, fmt.Errorf("%w: %v", ErrStreamTorn, err)
	}
	if _, err := io.ReadFull(sr.br, hdr[1:]); err != nil {
		return nil, fmt.Errorf("%w: stream ended inside a frame header", ErrStreamTorn)
	}
	n := int64(binary.LittleEndian.Uint32(hdr[0:4]))
	stored := binary.LittleEndian.Uint32(hdr[4:8])
	if n > maxRecordSize {
		// Mirrors scanLog: an implausible length is a torn header write,
		// not decodable damage.
		return nil, fmt.Errorf("%w: implausible frame length %d", ErrStreamTorn, n)
	}
	payload := make([]byte, n)
	if _, err := io.ReadFull(sr.br, payload); err != nil {
		return nil, fmt.Errorf("%w: stream ended inside a %d-byte payload", ErrStreamTorn, n)
	}
	if crc32.Checksum(payload, castagnoli) != stored {
		if sr.atEnd() {
			return nil, fmt.Errorf("%w: CRC mismatch in final frame", ErrStreamTorn)
		}
		return nil, fmt.Errorf("%w: CRC mismatch with data beyond the frame", ErrCorrupt)
	}
	var rec Record
	if err := json.Unmarshal(payload, &rec); err != nil {
		if sr.atEnd() {
			return nil, fmt.Errorf("%w: undecodable final frame: %v", ErrStreamTorn, err)
		}
		return nil, fmt.Errorf("%w: undecodable record: %v", ErrCorrupt, err)
	}
	return &rec, nil
}

// StateRecord converts a checkpoint snapshot into the OpState record the
// WAL stream ships in its place.
func StateRecord(snap *Snapshot) *Record {
	docs := make([]string, 0, len(snap.Order))
	for _, name := range snap.Order {
		docs = append(docs, snap.Policies[name])
	}
	return &Record{LSN: snap.LSN, Op: OpState, Docs: docs, Ref: snap.Reference, Prefs: snap.Prefs}
}

// ReadFrom returns what a follower at LSN from still needs: the
// checkpoint snapshot iff from predates it (the log below the checkpoint
// LSN has been truncated away), every log record with a higher LSN, and
// the tenant's current LSN. The log is re-read from disk under the
// journal lock, so the slice is a consistent acknowledged prefix.
func (t *Tenant) ReadFrom(from uint64) (*Snapshot, []Record, uint64, error) {
	t.mu.Lock()
	defer t.mu.Unlock()
	if t.closed {
		return nil, nil, 0, ErrClosed
	}
	var snap *Snapshot
	if from < t.snapLSN {
		s, err := readSnapshot(t.dir)
		if err != nil {
			return nil, nil, 0, err
		}
		if s == nil {
			return nil, nil, 0, fmt.Errorf("durable: checkpoint at LSN %d but no snapshot on disk", t.snapLSN)
		}
		snap = s
		from = s.LSN
	}
	var recs []Record
	if t.lsn > from {
		data, err := readAll(filepath.Join(t.dir, logName))
		if err != nil {
			return nil, nil, 0, err
		}
		res, err := scanLog(data)
		if err != nil {
			return nil, nil, 0, err
		}
		for _, rec := range res.records {
			if rec.LSN > from {
				recs = append(recs, rec)
			}
		}
	}
	return snap, recs, t.lsn, nil
}

// Changed returns a channel closed on the next record append, for
// long-polling WAL streamers. Each append rotates the channel, so grab
// it before ReadFrom: a record landing between the two shows up in
// ReadFrom's result, and one landing after closes the channel you hold.
func (t *Tenant) Changed() <-chan struct{} {
	t.mu.Lock()
	defer t.mu.Unlock()
	return t.changed
}
