package appel

import (
	"reflect"
	"strings"
	"testing"
)

func TestParseJane(t *testing.T) {
	rs, err := Parse(JanePreferenceXML)
	if err != nil {
		t.Fatalf("Parse: %v", err)
	}
	if len(rs.Rules) != 3 {
		t.Fatalf("rules = %d, want 3", len(rs.Rules))
	}
	r1 := rs.Rules[0]
	if r1.Behavior != "block" {
		t.Errorf("rule1 behavior = %q", r1.Behavior)
	}
	if len(r1.Body) != 1 || r1.Body[0].Name != "POLICY" {
		t.Fatalf("rule1 body: %+v", r1.Body)
	}
	purpose := r1.Body[0].Children[0].Children[0]
	if purpose.Name != "PURPOSE" {
		t.Fatalf("expected PURPOSE, got %s", purpose.Name)
	}
	if purpose.EffectiveConnective() != ConnOr {
		t.Errorf("purpose connective = %q", purpose.EffectiveConnective())
	}
	if len(purpose.Children) != 11 {
		t.Errorf("purpose children = %d, want 11", len(purpose.Children))
	}
	// The required attribute is a pattern attr, not an appel attr.
	var contact *Expr
	for _, c := range purpose.Children {
		if c.Name == "contact" {
			contact = c
		}
	}
	if contact == nil {
		t.Fatal("no contact expression")
	}
	if v, ok := contact.Attr("required"); !ok || v != "always" {
		t.Errorf("contact required = %q, %v", v, ok)
	}
	// Default connective is and.
	if r1.Body[0].EffectiveConnective() != ConnAnd {
		t.Errorf("POLICY connective = %q", r1.Body[0].EffectiveConnective())
	}
	// Final rule is the catch-all with empty body.
	r3 := rs.Rules[2]
	if r3.Behavior != "request" || len(r3.Body) != 0 {
		t.Errorf("otherwise rule: %+v", r3)
	}
}

func TestRoundTrip(t *testing.T) {
	rs, err := Parse(JanePreferenceXML)
	if err != nil {
		t.Fatal(err)
	}
	out := rs.String()
	rs2, err := Parse(out)
	if err != nil {
		t.Fatalf("reparse: %v\n%s", err, out)
	}
	if !reflect.DeepEqual(rs, rs2) {
		t.Errorf("round trip mismatch:\n%#v\nvs\n%#v", rs, rs2)
	}
}

func TestParseErrors(t *testing.T) {
	cases := []string{
		`<NOTARULESET/>`,
		`<appel:RULESET xmlns:appel="http://www.w3.org/2002/01/APPELv1"></appel:RULESET>`,
		`<appel:RULESET xmlns:appel="http://www.w3.org/2002/01/APPELv1"><appel:RULE/></appel:RULESET>`,
		`<appel:RULESET xmlns:appel="http://www.w3.org/2002/01/APPELv1"><BOGUS/></appel:RULESET>`,
		`<appel:RULESET xmlns:appel="http://www.w3.org/2002/01/APPELv1">
			<appel:RULE behavior="block" appel:connective="nope"/></appel:RULESET>`,
		`<appel:RULESET xmlns:appel="http://www.w3.org/2002/01/APPELv1">
			<appel:RULE behavior="block"><P appel:connective="nope"/></appel:RULE></appel:RULESET>`,
	}
	for _, c := range cases {
		if _, err := Parse(c); err == nil {
			t.Errorf("Parse(%.60q): expected error", c)
		}
	}
}

func TestConnectiveValues(t *testing.T) {
	for _, c := range Connectives {
		if !IsConnective(c) {
			t.Errorf("IsConnective(%q) = false", c)
		}
	}
	if IsConnective("xor") {
		t.Error("xor should not be a connective")
	}
	if len(Connectives) != 6 {
		t.Errorf("APPEL defines 6 connectives, have %d", len(Connectives))
	}
}

func TestValidate(t *testing.T) {
	rs, err := Parse(JanePreferenceXML)
	if err != nil {
		t.Fatal(err)
	}
	if err := rs.Validate(); err != nil {
		t.Errorf("Jane should validate: %v", err)
	}
	bad := &Ruleset{Rules: []*Rule{{Behavior: "explode"}}}
	if err := bad.Validate(); err == nil || !strings.Contains(err.Error(), "behavior") {
		t.Errorf("bad behavior not caught: %v", err)
	}
	bad2 := &Ruleset{Rules: []*Rule{{
		Behavior: "block",
		Body:     []*Expr{{Name: "POLICY", Children: []*Expr{{Name: "X", Connective: "maybe"}}}},
	}}}
	if err := bad2.Validate(); err == nil || !strings.Contains(err.Error(), "connective") {
		t.Errorf("bad nested connective not caught: %v", err)
	}
}

func TestConnectiveParsing(t *testing.T) {
	doc := `<appel:RULESET xmlns:appel="http://www.w3.org/2002/01/APPELv1">
	  <appel:RULE behavior="block" appel:connective="or">
	    <POLICY><STATEMENT>
	      <PURPOSE appel:connective="and-exact"><current/></PURPOSE>
	      <RECIPIENT appel:connective="non-or"><public/></RECIPIENT>
	    </STATEMENT></POLICY>
	  </appel:RULE>
	</appel:RULESET>`
	rs, err := Parse(doc)
	if err != nil {
		t.Fatal(err)
	}
	r := rs.Rules[0]
	if r.EffectiveConnective() != ConnOr {
		t.Errorf("rule connective = %q", r.EffectiveConnective())
	}
	st := r.Body[0].Children[0]
	if st.Children[0].EffectiveConnective() != ConnAndExact {
		t.Errorf("purpose connective = %q", st.Children[0].EffectiveConnective())
	}
	if st.Children[1].EffectiveConnective() != ConnNonOr {
		t.Errorf("recipient connective = %q", st.Children[1].EffectiveConnective())
	}
}

func TestPromptAndDescription(t *testing.T) {
	doc := `<appel:RULESET xmlns:appel="http://www.w3.org/2002/01/APPELv1">
	  <appel:RULE behavior="limited" prompt="yes" description="warn me"/>
	</appel:RULESET>`
	rs, err := Parse(doc)
	if err != nil {
		t.Fatal(err)
	}
	r := rs.Rules[0]
	if !r.Prompt || r.Description != "warn me" || r.Behavior != "limited" {
		t.Errorf("rule: %+v", r)
	}
}

func TestEmptyBodyRuleMatchesAll(t *testing.T) {
	// An empty RULE body is the catch-all shape used by the paper's
	// Figure 2 final rule; ToDOM renders a final empty-body rule as
	// OTHERWISE and a reparse preserves semantics.
	rs := &Ruleset{Rules: []*Rule{
		{Behavior: "block", Body: []*Expr{{Name: "POLICY"}}},
		{Behavior: "request"},
	}}
	out := rs.String()
	if !strings.Contains(out, "OTHERWISE") {
		t.Errorf("final empty rule should serialize as OTHERWISE:\n%s", out)
	}
	rs2, err := Parse(out)
	if err != nil {
		t.Fatal(err)
	}
	if len(rs2.Rules) != 2 || rs2.Rules[1].Behavior != "request" || len(rs2.Rules[1].Body) != 0 {
		t.Errorf("reparsed: %+v", rs2.Rules)
	}
}
