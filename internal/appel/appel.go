// Package appel models the A P3P Preference Exchange Language (APPEL 1.0,
// W3C Working Draft): rulesets of ordered rules whose bodies are patterns
// matched against a P3P policy, with the six APPEL connectives (and, or,
// non-and, non-or, and-exact, or-exact).
//
// The package provides parsing from and serialization to the APPEL XML
// format. Rule evaluation lives in package appelengine (the client-centric
// baseline); packages sqlgen and xqgen translate rules to SQL and XQuery
// (the paper's server-centric alternatives).
package appel

import (
	"fmt"

	"p3pdb/internal/xmldom"
)

// NS is the APPEL 1.0 namespace URI.
const NS = "http://www.w3.org/2002/01/APPELv1"

// Behaviors defined by APPEL 1.0. A rule that fires returns its behavior;
// "request" releases data, "block" withholds it, "limited" releases with
// restrictions.
var Behaviors = []string{"request", "limited", "block"}

// Connectives defined by APPEL 1.0. The zero value of a connective is
// interpreted as ConnAnd.
const (
	ConnAnd      = "and"
	ConnOr       = "or"
	ConnNonAnd   = "non-and"
	ConnNonOr    = "non-or"
	ConnAndExact = "and-exact"
	ConnOrExact  = "or-exact"
)

// Connectives lists every legal connective value.
var Connectives = []string{ConnAnd, ConnOr, ConnNonAnd, ConnNonOr, ConnAndExact, ConnOrExact}

// IsConnective reports whether v is a legal connective.
func IsConnective(v string) bool {
	for _, c := range Connectives {
		if c == v {
			return true
		}
	}
	return false
}

// IsBehavior reports whether v is a predefined behavior.
func IsBehavior(v string) bool {
	for _, b := range Behaviors {
		if b == v {
			return true
		}
	}
	return false
}

// Ruleset is an ordered list of rules. Rules are evaluated in order; the
// first rule whose pattern matches the policy determines the outcome.
type Ruleset struct {
	Rules []*Rule
}

// Rule is one appel:RULE (or appel:OTHERWISE, which is modeled as a rule
// with an empty body: an empty body matches any evidence).
type Rule struct {
	// Behavior is the action taken when the rule fires.
	Behavior string
	// Prompt, when true, asks the user agent to prompt before acting.
	Prompt bool
	// Description is the human-readable explanation of the rule.
	Description string
	// Connective combines the rule's top-level expressions; default and.
	Connective string
	// Body holds the rule's pattern expressions (typically a single
	// POLICY expression). An empty body matches unconditionally.
	Body []*Expr
}

// EffectiveConnective returns the connective with defaulting applied.
func (r *Rule) EffectiveConnective() string {
	if r.Connective == "" {
		return ConnAnd
	}
	return r.Connective
}

// Attr is one attribute pattern on an expression: the policy element must
// carry the attribute with exactly this value (after P3P defaulting).
type Attr struct {
	Name  string
	Value string
}

// Expr is one APPEL expression: a pattern that matches policy elements of
// the same name whose attributes and subelements satisfy the pattern.
type Expr struct {
	// Name is the element name to match, e.g. "STATEMENT" or "contact".
	Name string
	// Attrs are the attribute patterns.
	Attrs []Attr
	// Connective combines the subexpression matches; default and.
	Connective string
	// Children are the subexpressions.
	Children []*Expr
}

// EffectiveConnective returns the connective with defaulting applied.
func (e *Expr) EffectiveConnective() string {
	if e.Connective == "" {
		return ConnAnd
	}
	return e.Connective
}

// Attr returns the value of the named attribute pattern and whether it is
// present.
func (e *Expr) Attr(name string) (string, bool) {
	for _, a := range e.Attrs {
		if a.Name == name {
			return a.Value, true
		}
	}
	return "", false
}

// Parse parses an APPEL ruleset document.
func Parse(src string) (*Ruleset, error) {
	root, err := xmldom.ParseString(src)
	if err != nil {
		return nil, err
	}
	return FromDOM(root)
}

// FromDOM converts a parsed appel:RULESET element into a Ruleset.
func FromDOM(root *xmldom.Node) (*Ruleset, error) {
	if root.Name != "RULESET" {
		return nil, fmt.Errorf("appel: expected RULESET root, got %s", root.Name)
	}
	rs := &Ruleset{}
	for _, c := range root.Children {
		switch c.Name {
		case "RULE":
			r, err := ruleFromDOM(c)
			if err != nil {
				return nil, err
			}
			rs.Rules = append(rs.Rules, r)
		case "OTHERWISE":
			// OTHERWISE is a catch-all: a rule with an empty body.
			rs.Rules = append(rs.Rules, &Rule{
				Behavior:    c.AttrDefault("behavior", "request"),
				Description: c.AttrDefault("description", ""),
			})
		default:
			return nil, fmt.Errorf("appel: unexpected element %s in RULESET", c.Name)
		}
	}
	if len(rs.Rules) == 0 {
		return nil, fmt.Errorf("appel: ruleset has no rules")
	}
	return rs, nil
}

func ruleFromDOM(el *xmldom.Node) (*Rule, error) {
	behavior, ok := el.Attr("behavior")
	if !ok {
		return nil, fmt.Errorf("appel: RULE without behavior attribute")
	}
	r := &Rule{
		Behavior:    behavior,
		Prompt:      el.AttrDefault("prompt", "no") == "yes",
		Description: el.AttrDefault("description", ""),
	}
	// The connective attribute steers matching wherever it appears; the
	// P3P vocabulary defines no attribute of that name, so any namespace
	// (or none) means the APPEL one.
	if conn, ok := el.Attr("connective"); ok {
		if !IsConnective(conn) {
			return nil, fmt.Errorf("appel: bad connective %q on RULE", conn)
		}
		r.Connective = conn
	}
	for _, c := range el.Children {
		e, err := exprFromDOM(c)
		if err != nil {
			return nil, err
		}
		r.Body = append(r.Body, e)
	}
	return r, nil
}

func exprFromDOM(el *xmldom.Node) (*Expr, error) {
	e := &Expr{Name: el.Name}
	for _, a := range el.Attrs {
		if a.Space == NS || a.Name == "connective" {
			// appel:connective steers matching; it is not a pattern.
			// Other appel-namespace attributes (prompt, persona) do not
			// pattern against the policy either.
			if a.Name == "connective" {
				if !IsConnective(a.Value) {
					return nil, fmt.Errorf("appel: bad connective %q on %s", a.Value, el.Name)
				}
				e.Connective = a.Value
			}
			continue
		}
		e.Attrs = append(e.Attrs, Attr{Name: a.Name, Value: a.Value})
	}
	for _, c := range el.Children {
		ce, err := exprFromDOM(c)
		if err != nil {
			return nil, err
		}
		e.Children = append(e.Children, ce)
	}
	return e, nil
}

// ToDOM renders the ruleset back to an appel:RULESET element. Rules with
// empty bodies render as appel:OTHERWISE when they are the final rule and
// as empty appel:RULE elements otherwise.
func (rs *Ruleset) ToDOM() *xmldom.Node {
	root := xmldom.NewNS(NS, "RULESET")
	for i, r := range rs.Rules {
		if len(r.Body) == 0 && i == len(rs.Rules)-1 {
			o := xmldom.NewNS(NS, "OTHERWISE").SetAttr("behavior", r.Behavior)
			if r.Description != "" {
				o.SetAttr("description", r.Description)
			}
			root.Add(o)
			continue
		}
		root.Add(r.toDOM())
	}
	return root
}

// String renders the ruleset as an XML document.
func (rs *Ruleset) String() string { return rs.ToDOM().String() }

func (r *Rule) toDOM() *xmldom.Node {
	el := xmldom.NewNS(NS, "RULE").SetAttr("behavior", r.Behavior)
	if r.Prompt {
		el.SetAttr("prompt", "yes")
	}
	if r.Description != "" {
		el.SetAttr("description", r.Description)
	}
	if r.Connective != "" {
		el.SetAttrNS(NS, "connective", r.Connective)
	}
	for _, e := range r.Body {
		el.Add(e.toDOM())
	}
	return el
}

func (e *Expr) toDOM() *xmldom.Node {
	// Pattern elements live in the P3P namespace, matching the documents
	// the paper shows (Figure 2).
	el := xmldom.NewNS("http://www.w3.org/2002/01/P3Pv1", e.Name)
	if e.Connective != "" {
		el.SetAttrNS(NS, "connective", e.Connective)
	}
	for _, a := range e.Attrs {
		el.SetAttr(a.Name, a.Value)
	}
	for _, c := range e.Children {
		el.Add(c.toDOM())
	}
	return el
}

// Validate checks behaviors and connectives throughout the ruleset.
func (rs *Ruleset) Validate() error {
	for i, r := range rs.Rules {
		if !IsBehavior(r.Behavior) {
			return fmt.Errorf("appel: rule %d: unknown behavior %q", i+1, r.Behavior)
		}
		if r.Connective != "" && !IsConnective(r.Connective) {
			return fmt.Errorf("appel: rule %d: unknown connective %q", i+1, r.Connective)
		}
		var walk func(*Expr) error
		walk = func(e *Expr) error {
			if e.Connective != "" && !IsConnective(e.Connective) {
				return fmt.Errorf("appel: rule %d: unknown connective %q on %s", i+1, e.Connective, e.Name)
			}
			for _, c := range e.Children {
				if err := walk(c); err != nil {
					return err
				}
			}
			return nil
		}
		for _, e := range r.Body {
			if err := walk(e); err != nil {
				return err
			}
		}
	}
	return nil
}
