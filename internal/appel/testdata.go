package appel

// JanePreferenceXML is the example preference from the paper (Figure 2):
// Jane blocks every purpose other than "current" — except that she accepts
// individual-decision and contact when the site offers opt-in/opt-out — and
// blocks recipients beyond the retailer and its same-practice agents.
const JanePreferenceXML = `<appel:RULESET
    xmlns:appel="http://www.w3.org/2002/01/APPELv1"
    xmlns="http://www.w3.org/2002/01/P3Pv1">
  <appel:RULE behavior="block">
    <POLICY>
      <STATEMENT>
        <PURPOSE appel:connective="or">
          <admin/><develop/><tailoring/>
          <pseudo-analysis/><pseudo-decision/>
          <individual-analysis/>
          <individual-decision required="always"/>
          <contact required="always"/>
          <historical/><telemarketing/>
          <other-purpose/>
        </PURPOSE>
      </STATEMENT>
    </POLICY>
  </appel:RULE>
  <appel:RULE behavior="block">
    <POLICY>
      <STATEMENT>
        <RECIPIENT appel:connective="or">
          <delivery/><other-recipient/>
          <unrelated/><public/>
        </RECIPIENT>
      </STATEMENT>
    </POLICY>
  </appel:RULE>
  <appel:OTHERWISE behavior="request"/>
</appel:RULESET>`

// JaneSimplifiedRuleXML is the simplified first rule used in the paper's
// translation examples (Figure 12).
const JaneSimplifiedRuleXML = `<appel:RULESET
    xmlns:appel="http://www.w3.org/2002/01/APPELv1"
    xmlns="http://www.w3.org/2002/01/P3Pv1">
  <appel:RULE behavior="block">
    <POLICY>
      <STATEMENT>
        <PURPOSE appel:connective="or">
          <admin/>
          <contact required="always"/>
        </PURPOSE>
      </STATEMENT>
    </POLICY>
  </appel:RULE>
  <appel:OTHERWISE behavior="request"/>
</appel:RULESET>`
