package appel

import "testing"

// FuzzParse checks the APPEL parser never panics and that accepted
// rulesets serialize and reparse.
func FuzzParse(f *testing.F) {
	f.Add(JanePreferenceXML)
	f.Add(JaneSimplifiedRuleXML)
	f.Add(`<appel:RULESET xmlns:appel="http://www.w3.org/2002/01/APPELv1"><appel:OTHERWISE/></appel:RULESET>`)
	f.Add(`<appel:RULESET xmlns:appel="http://www.w3.org/2002/01/APPELv1"><appel:RULE behavior="block" appel:connective="or"><POLICY/></appel:RULE></appel:RULESET>`)
	f.Add(`<bogus/>`)
	f.Fuzz(func(t *testing.T, src string) {
		rs, err := Parse(src)
		if err != nil {
			return
		}
		back, err := Parse(rs.String())
		if err != nil {
			t.Fatalf("accepted ruleset did not round trip: %v\n%s", err, rs.String())
		}
		if len(back.Rules) != len(rs.Rules) {
			t.Fatalf("rule count changed across round trip")
		}
	})
}
