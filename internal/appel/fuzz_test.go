package appel

import (
	"os"
	"path/filepath"
	"testing"
)

// addCorpus seeds the fuzzer with every file in testdata/corpus —
// realistic preference documents (the Jane examples, the workload
// generator's three levels) that exercise nested connectives and
// namespaced expressions.
func addCorpus(f *testing.F) {
	entries, err := os.ReadDir(filepath.Join("testdata", "corpus"))
	if err != nil {
		f.Fatalf("seed corpus: %v", err)
	}
	for _, e := range entries {
		data, err := os.ReadFile(filepath.Join("testdata", "corpus", e.Name()))
		if err != nil {
			f.Fatalf("seed corpus %s: %v", e.Name(), err)
		}
		f.Add(string(data))
	}
}

// FuzzParse checks the APPEL parser never panics and that accepted
// rulesets serialize and reparse.
func FuzzParse(f *testing.F) {
	addCorpus(f)
	f.Add(JanePreferenceXML)
	f.Add(JaneSimplifiedRuleXML)
	f.Add(`<appel:RULESET xmlns:appel="http://www.w3.org/2002/01/APPELv1"><appel:OTHERWISE/></appel:RULESET>`)
	f.Add(`<appel:RULESET xmlns:appel="http://www.w3.org/2002/01/APPELv1"><appel:RULE behavior="block" appel:connective="or"><POLICY/></appel:RULE></appel:RULESET>`)
	f.Add(`<bogus/>`)
	f.Fuzz(func(t *testing.T, src string) {
		rs, err := Parse(src)
		if err != nil {
			return
		}
		back, err := Parse(rs.String())
		if err != nil {
			t.Fatalf("accepted ruleset did not round trip: %v\n%s", err, rs.String())
		}
		if len(back.Rules) != len(rs.Rules) {
			t.Fatalf("rule count changed across round trip")
		}
	})
}
