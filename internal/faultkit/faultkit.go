// Package faultkit is a deterministic fault-injection layer for testing
// the matching pipeline's degraded modes. Production code registers
// *injection points* by calling Inject (or Latency) with a well-known
// name at places where a real deployment could fail — query execution,
// cache fills, request handling. With no faults enabled those calls are
// a single atomic load, so the hooks cost nothing in normal operation.
//
// Tests (and operators, via the P3P_FAULTS environment variable or the
// server's -faults flag) enable faults with a spec string:
//
//	point:mode[:arg][:after=N][:times=M][,point2:mode...]
//
// Modes:
//
//	error             Inject returns ErrInjected
//	budget            Inject returns resource.ErrBudgetExceeded
//	canceled          Inject returns resource.ErrCanceled
//	latency:DURATION  Inject sleeps DURATION, then returns nil
//
// after=N arms the fault on its (N+1)th hit — so "reldb.query:error:after=2"
// lets two statements through and fails the third, deterministically.
// times=M disarms the fault after M firings (0 = forever). Injection
// points that are not named in the spec never fire.
//
// The registry is process-global (the points live inside engine code
// that has no test-configuration path) and safe for concurrent use;
// tests serialize via Reset.
package faultkit

import (
	"errors"
	"fmt"
	"sort"
	"strconv"
	"strings"
	"sync"
	"sync/atomic"
	"time"

	"p3pdb/internal/obs"
	"p3pdb/internal/resource"
)

// obsInjections counts fault firings process-wide; per-point counts are
// registered dynamically as "faultkit.injections.<point>" (firings are
// rare, so the registry lookup is off any hot path).
var obsInjections = obs.GetCounter("faultkit.injections")

// ErrInjected is the error returned by an "error"-mode fault. Tests
// assert on it with errors.Is to prove an injected failure surfaced as a
// typed error rather than a partial result.
var ErrInjected = errors.New("faultkit: injected fault")

// Well-known injection points wired into the pipeline. Enabling a name
// not listed here is not an error — the fault simply never fires — but
// tests should prefer these constants.
const (
	PointRelDBQuery    = "reldb.query"     // reldb statement execution (Query/QueryExists/Exec)
	PointConvFill      = "core.convfill"   // conversion-cache fill (parse/translate/prepare)
	PointXQueryEval    = "xquery.eval"     // native XQuery evaluation
	PointAppelMatch    = "appel.match"     // native APPEL engine evaluation
	PointServerMatch   = "server.match"    // HTTP single-match handlers
	PointServerLoadAll = "server.matchall" // HTTP batch-match handler
	PointDurableWrite  = "durable.write"   // WAL append: fires as a short (torn) write
	PointDurableFsync  = "durable.fsync"   // WAL/snapshot fsync failure
	PointDurableRename = "durable.rename"  // snapshot temp-file rename failure
	// PointDurableGroupCommit guards the coalesced fsync of the
	// interval-mode group-commit path: an armed fault fails one whole
	// commit batch, which must fail every append waiting on it — no
	// acknowledgement may ride a dead fsync.
	PointDurableGroupCommit = "durable.groupcommit"
	// PointDecisionLookup guards the decision-cache probe. An armed fault
	// does not fail the match: it forces a cache miss, so drills can prove
	// the engine fallback path stays correct when the cache is cold,
	// degraded, or lying about its availability.
	PointDecisionLookup = "decision.lookup"
	// PointFastpathSummary guards the compact-summary pre-decision in
	// Site.Check. An armed fault does not fail the check: it forces the
	// fallback to the full engine, the drill that proves fast-path
	// outages degrade to correct (slower) matching.
	PointFastpathSummary = "fastpath.summary"
	// PointReplicaStream guards the leader's WAL stream endpoint: an
	// armed fault cuts the response mid-frame (a torn stream), the
	// failure a dying leader or dropped connection produces.
	PointReplicaStream = "replica.stream"
	// PointReplicaApply guards the follower's record apply: an armed
	// fault aborts the sync round before the record lands, so drills can
	// prove a stuck follower never advances its applied LSN or serves
	// partial state.
	PointReplicaApply = "replica.apply"
	// PointPrefindexSelect guards the preference index's selection step:
	// an armed fault never fails the publish — it forces residual-bucket
	// mode (every rule of every registered preference selected), the
	// drill that proves bypassing the index changes pre-warm cost, never
	// decisions.
	PointPrefindexSelect = "prefindex.select"
)

// fault is one armed injection point.
type fault struct {
	mode    string        // "error", "budget", "canceled", "latency"
	sleep   time.Duration // for latency mode
	after   int64         // skip the first N hits
	times   int64         // fire at most M times; 0 = forever
	hits    atomic.Int64  // total Inject calls seen
	firings atomic.Int64  // times actually fired
}

var (
	// enabled is the fast-path gate: Inject bails on one atomic load
	// when no fault is armed anywhere.
	enabled atomic.Bool

	mu     sync.RWMutex
	faults map[string]*fault
)

// Enable arms the faults described by spec, replacing any current set.
// An empty spec disables everything.
func Enable(spec string) error {
	parsed, err := parseSpec(spec)
	if err != nil {
		return err
	}
	mu.Lock()
	faults = parsed
	mu.Unlock()
	enabled.Store(len(parsed) > 0)
	return nil
}

// Reset disarms every fault. Tests defer this.
func Reset() {
	mu.Lock()
	faults = nil
	mu.Unlock()
	enabled.Store(false)
}

// EnableFromEnv arms faults from the P3P_FAULTS environment variable
// value, if set. The caller passes the value so command wiring stays
// explicit and testable.
func EnableFromEnv(value string) error {
	if value == "" {
		return nil
	}
	return Enable(value)
}

// Active reports the armed fault points, sorted, for logging at startup.
func Active() []string {
	mu.RLock()
	defer mu.RUnlock()
	out := make([]string, 0, len(faults))
	for name := range faults {
		out = append(out, name)
	}
	sort.Strings(out)
	return out
}

// Inject is the hook production code places at a failure point. It
// returns nil (after an injected delay, for latency faults) unless a
// fault is armed for name and due to fire, in which case it returns the
// fault's typed error.
func Inject(name string) error {
	if !enabled.Load() {
		return nil
	}
	mu.RLock()
	f := faults[name]
	mu.RUnlock()
	if f == nil {
		return nil
	}
	hit := f.hits.Add(1)
	if hit <= f.after {
		return nil
	}
	if f.times > 0 && f.firings.Load() >= f.times {
		return nil
	}
	f.firings.Add(1)
	obsInjections.Inc()
	obs.GetCounter("faultkit.injections." + name).Inc()
	switch f.mode {
	case "latency":
		time.Sleep(f.sleep)
		return nil
	case "budget":
		return fmt.Errorf("%w (injected at %s)", resource.ErrBudgetExceeded, name)
	case "canceled":
		return fmt.Errorf("%w (injected at %s)", resource.ErrCanceled, name)
	default: // "error"
		return fmt.Errorf("%w at %s", ErrInjected, name)
	}
}

// Firings reports how many times the named fault has fired, for tests
// asserting determinism.
func Firings(name string) int64 {
	mu.RLock()
	f := faults[name]
	mu.RUnlock()
	if f == nil {
		return 0
	}
	return f.firings.Load()
}

func parseSpec(spec string) (map[string]*fault, error) {
	out := map[string]*fault{}
	for _, item := range strings.Split(spec, ",") {
		item = strings.TrimSpace(item)
		if item == "" {
			continue
		}
		parts := strings.Split(item, ":")
		if len(parts) < 2 {
			return nil, fmt.Errorf("faultkit: %q: want point:mode[:arg][:after=N][:times=M]", item)
		}
		name := parts[0]
		f := &fault{mode: parts[1]}
		rest := parts[2:]
		switch f.mode {
		case "latency":
			if len(rest) == 0 {
				return nil, fmt.Errorf("faultkit: %q: latency needs a duration", item)
			}
			d, err := time.ParseDuration(rest[0])
			if err != nil {
				return nil, fmt.Errorf("faultkit: %q: %w", item, err)
			}
			f.sleep = d
			rest = rest[1:]
		case "error", "budget", "canceled":
		default:
			return nil, fmt.Errorf("faultkit: %q: unknown mode %q", item, f.mode)
		}
		for _, opt := range rest {
			k, v, ok := strings.Cut(opt, "=")
			if !ok {
				return nil, fmt.Errorf("faultkit: %q: bad option %q", item, opt)
			}
			n, err := strconv.ParseInt(v, 10, 64)
			if err != nil || n < 0 {
				return nil, fmt.Errorf("faultkit: %q: bad option value %q", item, opt)
			}
			switch k {
			case "after":
				f.after = n
			case "times":
				f.times = n
			default:
				return nil, fmt.Errorf("faultkit: %q: unknown option %q", item, k)
			}
		}
		if _, dup := out[name]; dup {
			return nil, fmt.Errorf("faultkit: point %q armed twice", name)
		}
		out[name] = f
	}
	return out, nil
}
