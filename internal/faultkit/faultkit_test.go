package faultkit

import (
	"errors"
	"testing"
	"time"

	"p3pdb/internal/resource"
)

func TestDisabledByDefault(t *testing.T) {
	Reset()
	if err := Inject("reldb.query"); err != nil {
		t.Fatalf("no faults armed, got %v", err)
	}
}

func TestErrorMode(t *testing.T) {
	t.Cleanup(Reset)
	if err := Enable("reldb.query:error"); err != nil {
		t.Fatal(err)
	}
	err := Inject("reldb.query")
	if !errors.Is(err, ErrInjected) {
		t.Fatalf("got %v, want ErrInjected", err)
	}
	if err := Inject("other.point"); err != nil {
		t.Fatalf("unarmed point fired: %v", err)
	}
}

func TestBudgetAndCanceledModes(t *testing.T) {
	t.Cleanup(Reset)
	if err := Enable("a:budget,b:canceled"); err != nil {
		t.Fatal(err)
	}
	if err := Inject("a"); !errors.Is(err, resource.ErrBudgetExceeded) {
		t.Fatalf("budget mode: got %v", err)
	}
	if err := Inject("b"); !errors.Is(err, resource.ErrCanceled) {
		t.Fatalf("canceled mode: got %v", err)
	}
}

func TestAfterIsDeterministic(t *testing.T) {
	t.Cleanup(Reset)
	if err := Enable("p:error:after=2"); err != nil {
		t.Fatal(err)
	}
	for i := 0; i < 2; i++ {
		if err := Inject("p"); err != nil {
			t.Fatalf("hit %d should pass, got %v", i+1, err)
		}
	}
	if err := Inject("p"); !errors.Is(err, ErrInjected) {
		t.Fatalf("3rd hit should fire, got %v", err)
	}
	if Firings("p") != 1 {
		t.Fatalf("firings = %d, want 1", Firings("p"))
	}
}

func TestTimesDisarms(t *testing.T) {
	t.Cleanup(Reset)
	if err := Enable("p:error:times=2"); err != nil {
		t.Fatal(err)
	}
	for i := 0; i < 2; i++ {
		if err := Inject("p"); !errors.Is(err, ErrInjected) {
			t.Fatalf("firing %d: got %v", i+1, err)
		}
	}
	if err := Inject("p"); err != nil {
		t.Fatalf("after times=2 the fault should be spent, got %v", err)
	}
}

func TestLatencyMode(t *testing.T) {
	t.Cleanup(Reset)
	if err := Enable("p:latency:20ms"); err != nil {
		t.Fatal(err)
	}
	start := time.Now()
	if err := Inject("p"); err != nil {
		t.Fatalf("latency mode returned error: %v", err)
	}
	if d := time.Since(start); d < 15*time.Millisecond {
		t.Fatalf("latency fault slept only %v", d)
	}
}

func TestSpecErrors(t *testing.T) {
	t.Cleanup(Reset)
	for _, bad := range []string{
		"justapoint",
		"p:wobble",
		"p:latency",
		"p:latency:notaduration",
		"p:error:after=x",
		"p:error:bogus=1",
		"p:error,p:budget",
	} {
		if err := Enable(bad); err == nil {
			t.Errorf("Enable(%q) accepted a bad spec", bad)
		}
	}
	if err := Enable(""); err != nil {
		t.Fatalf("empty spec should disable cleanly: %v", err)
	}
	if err := EnableFromEnv(""); err != nil {
		t.Fatalf("empty env should be a no-op: %v", err)
	}
}

func TestActiveLists(t *testing.T) {
	t.Cleanup(Reset)
	if err := Enable("b:error,a:latency:1ms"); err != nil {
		t.Fatal(err)
	}
	got := Active()
	if len(got) != 2 || got[0] != "a" || got[1] != "b" {
		t.Fatalf("Active() = %v, want [a b]", got)
	}
}
