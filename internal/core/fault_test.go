package core

import (
	"errors"
	"testing"

	"p3pdb/internal/appel"
	"p3pdb/internal/faultkit"
	"p3pdb/internal/workload"
)

// corpusSite installs the full generated corpus, for batch tests.
func corpusSite(t testing.TB, opts Options) (*Site, *workload.Dataset) {
	t.Helper()
	d := workload.Generate(42)
	s, err := NewSiteWithOptions(opts)
	if err != nil {
		t.Fatal(err)
	}
	for _, pol := range d.Policies {
		if err := s.InstallPolicy(pol); err != nil {
			t.Fatal(err)
		}
	}
	if err := s.InstallReferenceFile(d.RefFile); err != nil {
		t.Fatal(err)
	}
	return s, d
}

// TestInjectedFaultsSurfaceAsTypedErrors arms, per engine, a fault at the
// point that engine's evaluation flows through, and asserts the match
// fails with the typed injected error — never a decision built from
// partial evaluation.
func TestInjectedFaultsSurfaceAsTypedErrors(t *testing.T) {
	cases := []struct {
		engine Engine
		point  string
	}{
		{EngineNative, faultkit.PointAppelMatch},
		{EngineSQL, faultkit.PointRelDBQuery},
		{EngineXTable, faultkit.PointRelDBQuery},
		{EngineXQuery, faultkit.PointXQueryEval},
		// The conversion-cache fill precedes every engine's evaluation.
		{EngineNative, faultkit.PointConvFill},
		{EngineSQL, faultkit.PointConvFill},
		{EngineXTable, faultkit.PointConvFill},
		{EngineXQuery, faultkit.PointConvFill},
	}
	for _, c := range cases {
		t.Run(c.engine.ShortName()+"/"+c.point, func(t *testing.T) {
			t.Cleanup(faultkit.Reset)
			s := siteWithVolga(t) // build before arming: installs use reldb too
			if err := faultkit.Enable(c.point + ":error"); err != nil {
				t.Fatal(err)
			}
			d, err := s.MatchPolicy(appel.JanePreferenceXML, "volga", c.engine)
			if err == nil {
				t.Fatalf("fault at %s: got decision %+v, want error", c.point, d)
			}
			if !errors.Is(err, faultkit.ErrInjected) {
				t.Fatalf("fault at %s: error not typed ErrInjected: %v", c.point, err)
			}
			if d.Behavior != "" {
				t.Fatalf("fault at %s: partial decision alongside error: %+v", c.point, d)
			}

			// The fault disarmed, the same match must succeed — the Site
			// carries no residue from the failed attempt.
			faultkit.Reset()
			d, err = s.MatchPolicy(appel.JanePreferenceXML, "volga", c.engine)
			if err != nil || d.Behavior != "request" {
				t.Fatalf("after reset: %+v, %v", d, err)
			}
		})
	}
}

// TestMatchAllAggregatesFailures: a fault that fails some per-policy
// matches must not drop the decisions that succeeded, and the joined
// error must identify each failed policy.
func TestMatchAllAggregatesFailures(t *testing.T) {
	t.Cleanup(faultkit.Reset)
	s, d := corpusSite(t, Options{})
	pref, _ := workload.PreferenceByLevel("High")

	// XTable converts once per policy, so the conversion-fill point is
	// hit exactly len(policies) times; times=3 makes exactly three
	// policies fail, whichever workers reach the point first.
	if err := faultkit.Enable(faultkit.PointConvFill + ":error:times=3"); err != nil {
		t.Fatal(err)
	}
	decisions, err := s.MatchAll(pref.XML, EngineXTable)
	if err == nil {
		t.Fatal("want aggregated error, got nil")
	}
	if !errors.Is(err, faultkit.ErrInjected) {
		t.Fatalf("aggregate not typed: %v", err)
	}
	want := len(d.Policies) - 3
	if len(decisions) != want {
		t.Fatalf("got %d decisions, want %d (failures must not drop successes)", len(decisions), want)
	}
	var perPolicy []*PolicyError
	for _, e := range unwrapJoined(err) {
		var pe *PolicyError
		if errors.As(e, &pe) {
			perPolicy = append(perPolicy, pe)
		}
	}
	if len(perPolicy) != 3 {
		t.Fatalf("want 3 PolicyErrors, got %d in %v", len(perPolicy), err)
	}
	failed := map[string]bool{}
	for _, pe := range perPolicy {
		failed[pe.Policy] = true
	}
	for _, dec := range decisions {
		if failed[dec.PolicyName] {
			t.Fatalf("policy %s reported both a decision and a failure", dec.PolicyName)
		}
	}

	// Disarmed, the full batch succeeds.
	faultkit.Reset()
	decisions, err = s.MatchAll(pref.XML, EngineXTable)
	if err != nil {
		t.Fatalf("after reset: %v", err)
	}
	if len(decisions) != len(d.Policies) {
		t.Fatalf("after reset: %d decisions, want %d", len(decisions), len(d.Policies))
	}
}

func unwrapJoined(err error) []error {
	if joined, ok := err.(interface{ Unwrap() []error }); ok {
		return joined.Unwrap()
	}
	return []error{err}
}

// TestFaultAfterIsDeterministic: after=N lets exactly N hits through, so
// a drill can target "the third statement of the match" repeatably.
func TestFaultAfterIsDeterministic(t *testing.T) {
	t.Cleanup(faultkit.Reset)
	s := siteWithVolga(t)
	// Two preferences convert fine, the third fails.
	if err := faultkit.Enable(faultkit.PointConvFill + ":error:after=2"); err != nil {
		t.Fatal(err)
	}
	prefs := []string{
		appel.JanePreferenceXML,
		"<appel:RULESET xmlns:appel=\"http://www.w3.org/2002/01/APPELv1\" xmlns=\"http://www.w3.org/2002/01/P3Pv1\"><appel:OTHERWISE behavior=\"request\"/></appel:RULESET>",
		"<appel:RULESET xmlns:appel=\"http://www.w3.org/2002/01/APPELv1\" xmlns=\"http://www.w3.org/2002/01/P3Pv1\"><appel:OTHERWISE behavior=\"block\"/></appel:RULESET>",
	}
	for i, pref := range prefs {
		_, err := s.MatchPolicy(pref, "volga", EngineSQL)
		if i < 2 && err != nil {
			t.Fatalf("pref %d should pass: %v", i, err)
		}
		if i == 2 && !errors.Is(err, faultkit.ErrInjected) {
			t.Fatalf("pref 2 should hit the armed fault, got %v", err)
		}
	}
	if got := faultkit.Firings(faultkit.PointConvFill); got != 1 {
		t.Fatalf("fault fired %d times, want 1", got)
	}
}
