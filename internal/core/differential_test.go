package core

import (
	"errors"
	"fmt"
	"math/rand"
	"strings"
	"testing"
	"time"

	"p3pdb/internal/p3p"
	"p3pdb/internal/reldb"
	"p3pdb/internal/resource"
	"p3pdb/internal/workload"
)

// randomRuleset builds a random APPEL ruleset over the vocabulary every
// translator supports. General-level expressions draw from the four
// non-exact connectives (the optimized translator rejects exact there, by
// design); value-level expressions draw from all six.
func randomRuleset(r *rand.Rand) string {
	var b strings.Builder
	b.WriteString(`<appel:RULESET xmlns:appel="http://www.w3.org/2002/01/APPELv1"` + "\n" +
		` xmlns="http://www.w3.org/2002/01/P3Pv1">` + "\n")
	for i, n := 0, 1+r.Intn(3); i < n; i++ {
		behavior := []string{"block", "limited"}[r.Intn(2)]
		conn := ""
		if r.Intn(4) == 0 {
			conn = connAttr(generalConnective(r))
		}
		body := randomPolicyExpr(r)
		if r.Intn(5) == 0 {
			body += randomPolicyExpr(r) // multi-expression rule body
		}
		fmt.Fprintf(&b, `<appel:RULE behavior="%s"%s>%s</appel:RULE>`+"\n",
			behavior, conn, body)
	}
	b.WriteString(`<appel:OTHERWISE behavior="request"/>` + "\n</appel:RULESET>")
	return b.String()
}

func generalConnective(r *rand.Rand) string {
	return []string{"", "and", "or", "non-and", "non-or"}[r.Intn(5)]
}

func valueConnective(r *rand.Rand) string {
	// Exact connectives appear with low weight: they are rare in real
	// preferences and their generic-schema expansion trips the
	// complexity limit, which would starve the XTable comparison.
	if r.Intn(10) == 0 {
		return []string{"and-exact", "or-exact"}[r.Intn(2)]
	}
	return []string{"", "and", "or", "non-and", "non-or"}[r.Intn(5)]
}

func connAttr(c string) string {
	if c == "" {
		return ""
	}
	return ` appel:connective="` + c + `"`
}

func randomPolicyExpr(r *rand.Rand) string {
	n := 1 + r.Intn(2)
	var kids []string
	for i := 0; i < n; i++ {
		kids = append(kids, randomStatementExpr(r))
	}
	return "<POLICY" + connAttr(generalConnective(r)) + ">" + strings.Join(kids, "") + "</POLICY>"
}

func randomStatementExpr(r *rand.Rand) string {
	var kids []string
	if r.Intn(2) == 0 {
		kids = append(kids, randomValueList(r, "PURPOSE", []string{
			"current", "admin", "develop", "contact", "telemarketing",
			"individual-decision", "individual-analysis", "pseudo-analysis",
		}, true))
	}
	if r.Intn(3) == 0 {
		kids = append(kids, randomValueList(r, "RECIPIENT", []string{
			"ours", "same", "delivery", "unrelated", "public", "other-recipient",
		}, true))
	}
	if r.Intn(3) == 0 {
		kids = append(kids, randomValueList(r, "RETENTION", []string{
			"no-retention", "stated-purpose", "business-practices", "indefinitely",
		}, false))
	}
	if r.Intn(3) == 0 || len(kids) == 0 {
		kids = append(kids, randomDataGroupExpr(r))
	}
	if r.Intn(6) == 0 {
		kids = append(kids, "<CONSEQUENCE/>")
	}
	return "<STATEMENT" + connAttr(generalConnective(r)) + ">" + strings.Join(kids, "") + "</STATEMENT>"
}

func randomValueList(r *rand.Rand, parent string, values []string, withRequired bool) string {
	n := 1 + r.Intn(3)
	seen := map[string]bool{}
	var kids []string
	for i := 0; i < n; i++ {
		v := values[r.Intn(len(values))]
		if seen[v] {
			continue
		}
		seen[v] = true
		attr := ""
		if withRequired {
			switch r.Intn(5) {
			case 0:
				attr = ` required="always"`
			case 1:
				attr = ` required="opt-in"`
			case 2:
				attr = ` required="opt-out"`
			case 3:
				attr = ` required="*"`
			}
		}
		kids = append(kids, "<"+v+attr+"/>")
	}
	return "<" + parent + connAttr(valueConnective(r)) + ">" + strings.Join(kids, "") + "</" + parent + ">"
}

func randomDataGroupExpr(r *rand.Rand) string {
	refs := []string{
		"#user.name", "#user.name.given", "#user.home-info",
		"#user.home-info.postal", "#user.home-info.online.email",
		"#user.bdate", "#user.login", "#dynamic.miscdata",
		"#dynamic.clickstream", "#dynamic.searchtext", "*",
	}
	cats := []string{"physical", "online", "purchase", "financial", "demographic", "health", "uniqueid"}
	n := 1 + r.Intn(2)
	var kids []string
	for i := 0; i < n; i++ {
		ref := refs[r.Intn(len(refs))]
		inner := ""
		if r.Intn(2) == 0 {
			m := 1 + r.Intn(2)
			seen := map[string]bool{}
			var cvs []string
			for j := 0; j < m; j++ {
				c := cats[r.Intn(len(cats))]
				if seen[c] {
					continue
				}
				seen[c] = true
				cvs = append(cvs, "<"+c+"/>")
			}
			inner = "<CATEGORIES" + connAttr(valueConnective(r)) + ">" + strings.Join(cvs, "") + "</CATEGORIES>"
		}
		if inner == "" {
			kids = append(kids, `<DATA ref="`+ref+`"/>`)
		} else {
			kids = append(kids, `<DATA ref="`+ref+`">`+inner+`</DATA>`)
		}
	}
	return "<DATA-GROUP" + connAttr(generalConnective(r)) + ">" + strings.Join(kids, "") + "</DATA-GROUP>"
}

// adversarialPreference builds a wide, deeply structured ruleset: many
// rules, each nesting POLICY→STATEMENT→PURPOSE/DATA-GROUP/CATEGORIES
// expressions with mixed connectives. Every translation multiplies it —
// nested EXISTS chains in SQL, XML-view reconstructions per rule in
// XTABLE, long path walks in XQuery — so evaluating it is expensive on
// every engine, while each individual rule stays under the complexity
// limits the XTABLE path enforces.
func adversarialPreference(rules int) string {
	var b strings.Builder
	b.WriteString(`<appel:RULESET xmlns:appel="http://www.w3.org/2002/01/APPELv1"` + "\n" +
		` xmlns="http://www.w3.org/2002/01/P3Pv1">` + "\n")
	purposes := []string{"current", "admin", "develop", "contact", "telemarketing", "individual-decision"}
	for i := 0; i < rules; i++ {
		req := []string{"always", "opt-in", "opt-out"}[i%3]
		var pv strings.Builder
		for _, p := range purposes {
			fmt.Fprintf(&pv, `<%s required="%s"/>`, p, req)
		}
		conn := []string{"and", "or", "non-and", "non-or"}[i%4]
		fmt.Fprintf(&b,
			`<appel:RULE behavior="block"><POLICY><STATEMENT appel:connective="%s">`+
				`<PURPOSE appel:connective="and">%s</PURPOSE>`+
				`<DATA-GROUP><DATA ref="#user.home-info.postal"><CATEGORIES appel:connective="or">`+
				`<physical/><demographic/></CATEGORIES></DATA>`+
				`<DATA ref="#dynamic.miscdata"><CATEGORIES><uniqueid/></CATEGORIES></DATA>`+
				`</DATA-GROUP></STATEMENT></POLICY></appel:RULE>`+"\n",
			conn, pv.String())
	}
	b.WriteString(`<appel:OTHERWISE behavior="request"/>` + "\n</appel:RULESET>")
	return b.String()
}

// TestAdversarialDifferential: with no fault active, all engines agree
// with the native baseline on the adversarial preference across a corpus
// cross-section.
func TestAdversarialDifferential(t *testing.T) {
	d := workload.Generate(42)
	s, err := NewSite()
	if err != nil {
		t.Fatal(err)
	}
	policies := []*p3p.Policy{d.Policies[0], d.Policies[14], d.Policies[28]}
	for _, pol := range policies {
		if err := s.InstallPolicy(pol); err != nil {
			t.Fatal(err)
		}
	}
	for _, rules := range []int{1, 8, 24} {
		pref := adversarialPreference(rules)
		for _, pol := range policies {
			base, err := s.MatchPolicy(pref, pol.Name, EngineNative)
			if err != nil {
				t.Fatalf("%d rules, native vs %s: %v", rules, pol.Name, err)
			}
			for _, engine := range []Engine{EngineSQL, EngineXTable, EngineXQuery} {
				got, err := s.MatchPolicy(pref, pol.Name, engine)
				if err != nil {
					if engine == EngineXTable && errors.Is(err, reldb.ErrTooComplex) {
						continue
					}
					t.Fatalf("%d rules, %v vs %s: %v", rules, engine, pol.Name, err)
				}
				if got.Behavior != base.Behavior || got.RuleIndex != base.RuleIndex {
					t.Fatalf("%d rules: %v disagrees with native on %s: %s/%d vs %s/%d",
						rules, engine, pol.Name, got.Behavior, got.RuleIndex, base.Behavior, base.RuleIndex)
				}
			}
		}
	}
}

// TestAdversarialPreferenceBudgetAborts is the acceptance gate for the
// resource governor: the adversarial preference, matched under a small
// budget, must abort with ErrBudgetExceeded — on the SQL, XTABLE, and
// XQuery engines and the native baseline alike — and do so in bounded
// time, proving the budget cuts evaluation off rather than letting it
// run to completion. The same site without a budget completes the match,
// so the abort is attributable to governance, not the preference.
func TestAdversarialPreferenceBudgetAborts(t *testing.T) {
	d := workload.Generate(42)
	pref := adversarialPreference(40)
	pol := d.Policies[28] // largest policy: most rows, widest documents

	free, err := NewSite()
	if err != nil {
		t.Fatal(err)
	}
	capped, err := NewSiteWithOptions(Options{MatchBudget: 50})
	if err != nil {
		t.Fatal(err)
	}
	for _, s := range []*Site{free, capped} {
		if err := s.InstallPolicy(pol); err != nil {
			t.Fatal(err)
		}
	}

	for _, engine := range []Engine{EngineSQL, EngineXTable, EngineXQuery, EngineNative} {
		if _, err := free.MatchPolicy(pref, pol.Name, engine); err != nil {
			if engine == EngineXTable && errors.Is(err, reldb.ErrTooComplex) {
				continue // then the budget test below is moot for XTable
			}
			t.Fatalf("%v ungoverned: %v", engine, err)
		}
		start := time.Now()
		_, err := capped.MatchPolicy(pref, pol.Name, engine)
		elapsed := time.Since(start)
		if !errors.Is(err, resource.ErrBudgetExceeded) {
			t.Fatalf("%v: want ErrBudgetExceeded under budget 50, got %v", engine, err)
		}
		// Bounded: the budget trips within the first handful of steps;
		// anything near a second means evaluation ran on unmetered.
		if elapsed > 5*time.Second {
			t.Fatalf("%v: budget abort took %v, not bounded", engine, elapsed)
		}
	}
}

// TestRandomizedFiveWayDifferential matches randomized rulesets against
// the generated corpus on every engine and requires identical decisions.
// The XTable path may reject exact-heavy rulesets with the complexity
// error, mirroring the Medium blank cell; any other divergence fails.
func TestRandomizedFiveWayDifferential(t *testing.T) {
	if testing.Short() {
		t.Skip("randomized differential is slow")
	}
	d := workload.Generate(42)
	s, err := NewSite()
	if err != nil {
		t.Fatal(err)
	}
	// A subset of the corpus keeps the matrix fast while covering the
	// size range (smallest, median, largest, plus variety).
	policies := []*p3p.Policy{
		d.Policies[0], d.Policies[4], d.Policies[7], d.Policies[14],
		d.Policies[21], d.Policies[25], d.Policies[28],
	}
	for _, pol := range policies {
		if err := s.InstallPolicy(pol); err != nil {
			t.Fatal(err)
		}
	}

	r := rand.New(rand.NewSource(99))
	const rounds = 60
	tooComplex := 0
	for round := 0; round < rounds; round++ {
		prefXML := randomRuleset(r)
		for _, pol := range policies {
			base, err := s.MatchPolicy(prefXML, pol.Name, EngineNative)
			if err != nil {
				t.Fatalf("round %d native vs %s: %v\nruleset:\n%s", round, pol.Name, err, prefXML)
			}
			for _, engine := range []Engine{EngineSQL, EngineXTable, EngineXQuery} {
				got, err := s.MatchPolicy(prefXML, pol.Name, engine)
				if err != nil {
					if engine == EngineXTable && errors.Is(err, reldb.ErrTooComplex) {
						tooComplex++
						continue
					}
					t.Fatalf("round %d %v vs %s: %v\nruleset:\n%s", round, engine, pol.Name, err, prefXML)
				}
				if got.Behavior != base.Behavior || got.RuleIndex != base.RuleIndex {
					t.Fatalf("round %d: %v disagrees with native on %s:\n got %s/rule %d, want %s/rule %d\nruleset:\n%s",
						round, engine, pol.Name,
						got.Behavior, got.RuleIndex, base.Behavior, base.RuleIndex, prefXML)
				}
			}
		}
	}
	t.Logf("%d rounds, %d XTable too-complex rejections", rounds, tooComplex)
}
