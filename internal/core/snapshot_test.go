package core

import (
	"fmt"
	"strings"
	"sync"
	"sync/atomic"
	"testing"

	"p3pdb/internal/appel"
	"p3pdb/internal/p3p"
)

// The snapshot tests pin the refactor's two guarantees: writes are
// all-or-nothing (a failing install publishes nothing), and every read
// sees exactly one published snapshot even while writers churn.

// blockingPolicyXML declares telemarketing, which Jane's first rule
// blocks; benignPolicyXML declares only current, which falls through to
// her otherwise-request rule. Swapping one for the other under the same
// name flips the decision, making torn reads observable.
func blockingPolicyXML(name string) string { return variantPolicyXML(name, "<telemarketing/>") }
func benignPolicyXML(name string) string   { return variantPolicyXML(name, "") }

func variantPolicyXML(name, extraPurpose string) string {
	return fmt.Sprintf(`<POLICY xmlns="http://www.w3.org/2002/01/P3Pv1"
    name=%q discuri="http://%s.example.com/privacy.html">
  <ENTITY>
    <DATA-GROUP><DATA ref="#business.name">%s</DATA></DATA-GROUP>
  </ENTITY>
  <ACCESS><none/></ACCESS>
  <STATEMENT>
    <PURPOSE><current/>%s</PURPOSE>
    <RECIPIENT><ours/></RECIPIENT>
    <RETENTION><stated-purpose/></RETENTION>
    <DATA-GROUP><DATA ref="#user.name"/></DATA-GROUP>
  </STATEMENT>
</POLICY>`, name, name, name, extraPurpose)
}

func mustParseOne(t testing.TB, xml string) *p3p.Policy {
	t.Helper()
	pols, err := p3p.ParsePolicies(xml)
	if err != nil || len(pols) != 1 {
		t.Fatalf("parse: %v", err)
	}
	return pols[0]
}

func TestInstallPolicyXMLAllOrNothing(t *testing.T) {
	s := siteWithVolga(t)
	before := s.state.Load()
	beforeXML, err := s.PolicyXML("volga")
	if err != nil {
		t.Fatal(err)
	}

	// A POLICIES document whose first policy is fine and whose second
	// collides with the installed name: the whole document must be
	// rejected with nothing published.
	doc := `<POLICIES xmlns="http://www.w3.org/2002/01/P3Pv1">` +
		benignPolicyXML("fresh") + benignPolicyXML("volga") + `</POLICIES>`
	names, err := s.InstallPolicyXML(doc)
	if err == nil {
		t.Fatal("duplicate inside POLICIES doc must fail the install")
	}
	if names != nil {
		t.Errorf("failed install returned names %v", names)
	}

	// The failure published nothing: same snapshot pointer, so every
	// piece of state — policies, ids, databases — is untouched.
	if after := s.state.Load(); after != before {
		t.Error("failed install swapped the snapshot")
	}
	if got := s.PolicyNames(); len(got) != 1 || got[0] != "volga" {
		t.Errorf("policy names after failed install = %v", got)
	}
	if _, err := s.PolicyXML("fresh"); err == nil {
		t.Error("first policy of the failing document leaked in")
	}
	afterXML, err := s.PolicyXML("volga")
	if err != nil || afterXML != beforeXML {
		t.Errorf("volga document changed across failed install: %v", err)
	}
}

func TestRemoveInstallKeepsUnrelatedSnapshot(t *testing.T) {
	s := siteWithVolga(t)
	if _, err := s.InstallPolicyXML(benignPolicyXML("acme")); err != nil {
		t.Fatal(err)
	}
	// A failing remove must not publish either.
	before := s.state.Load()
	if err := s.RemovePolicy("ghost"); err == nil {
		t.Fatal("removing an uninstalled policy must fail")
	}
	if s.state.Load() != before {
		t.Error("failed remove swapped the snapshot")
	}
	// A successful remove publishes a state where only the removed
	// policy is gone.
	if err := s.RemovePolicy("acme"); err != nil {
		t.Fatal(err)
	}
	d, err := s.MatchPolicy(appel.JanePreferenceXML, "volga", EngineSQL)
	if err != nil || d.Behavior != "request" {
		t.Errorf("volga after removing acme: %+v %v", d, err)
	}
}

// TestXTableCacheInvalidatesOnReinstall pins the policy-id staleness
// hazard: the XTABLE translation embeds the policy id, so a cached
// entry must not be served once the name maps to a different policy.
func TestXTableCacheInvalidatesOnReinstall(t *testing.T) {
	s, err := NewSite()
	if err != nil {
		t.Fatal(err)
	}
	install := func(xml string) {
		t.Helper()
		if _, err := s.InstallPolicyXML(xml); err != nil {
			t.Fatal(err)
		}
	}
	match := func() string {
		t.Helper()
		d, err := s.MatchPolicy(appel.JanePreferenceXML, "acme", EngineXTable)
		if err != nil {
			t.Fatal(err)
		}
		return d.Behavior
	}
	install(blockingPolicyXML("acme"))
	if got := match(); got != "block" {
		t.Fatalf("blocking variant: %q", got)
	}
	// Re-install a different policy under the same name: the cached
	// translation (keyed by preference and policy name) now carries a
	// stale id and must be rebuilt, not served.
	if err := s.RemovePolicy("acme"); err != nil {
		t.Fatal(err)
	}
	install(benignPolicyXML("acme"))
	if got := match(); got != "request" {
		t.Fatalf("benign variant after reinstall: %q (stale cached translation?)", got)
	}
	if err := s.RemovePolicy("acme"); err != nil {
		t.Fatal(err)
	}
	install(blockingPolicyXML("acme"))
	if got := match(); got != "block" {
		t.Fatalf("blocking variant after second reinstall: %q", got)
	}
}

// TestMatchWhileReplacePolicies races matches against bulk policy-set
// swaps (run under -race): every decision must come from one published
// variant — block from the telemarketing set, request from the benign
// set — never an error, never a torn state.
func TestMatchWhileReplacePolicies(t *testing.T) {
	s, err := NewSite()
	if err != nil {
		t.Fatal(err)
	}
	setA := []*p3p.Policy{
		mustParseOne(t, blockingPolicyXML("acme1")),
		mustParseOne(t, blockingPolicyXML("acme2")),
	}
	setB := []*p3p.Policy{
		mustParseOne(t, benignPolicyXML("acme1")),
		mustParseOne(t, benignPolicyXML("acme2")),
	}
	if err := s.ReplacePolicies(setA, nil); err != nil {
		t.Fatal(err)
	}

	swaps := 40
	readers := 4
	if testing.Short() {
		swaps, readers = 10, 2
	}
	var stop atomic.Bool
	errc := make(chan error, readers+1)
	var wg sync.WaitGroup

	wg.Add(1)
	go func() {
		defer wg.Done()
		defer stop.Store(true)
		for i := 0; i < swaps; i++ {
			set := setA
			if i%2 == 0 {
				set = setB
			}
			if err := s.ReplacePolicies(set, nil); err != nil {
				errc <- err
				return
			}
		}
	}()

	for r := 0; r < readers; r++ {
		engine := Engines[r%len(Engines)]
		wg.Add(1)
		go func(engine Engine) {
			defer wg.Done()
			for !stop.Load() {
				d, err := s.MatchPolicy(appel.JanePreferenceXML, "acme1", engine)
				if err != nil {
					errc <- fmt.Errorf("%v: %w", engine, err)
					return
				}
				if d.Behavior != "block" && d.Behavior != "request" {
					errc <- fmt.Errorf("%v: impossible behavior %q", engine, d.Behavior)
					return
				}
			}
		}(engine)
	}
	wg.Wait()
	close(errc)
	for err := range errc {
		t.Error(err)
	}
}

// TestMatchAllSeesOneSnapshot pins the batch guarantee: MatchAll loads
// the snapshot once, so even while a writer flips the whole policy set
// between the blocking and benign variants, a batch's decisions are all
// from one variant — two blocks or two requests, never one of each.
func TestMatchAllSeesOneSnapshot(t *testing.T) {
	s, err := NewSite()
	if err != nil {
		t.Fatal(err)
	}
	setA := []*p3p.Policy{
		mustParseOne(t, blockingPolicyXML("acme1")),
		mustParseOne(t, blockingPolicyXML("acme2")),
	}
	setB := []*p3p.Policy{
		mustParseOne(t, benignPolicyXML("acme1")),
		mustParseOne(t, benignPolicyXML("acme2")),
	}
	if err := s.ReplacePolicies(setA, nil); err != nil {
		t.Fatal(err)
	}

	swaps := 30
	if testing.Short() {
		swaps = 8
	}
	var stop atomic.Bool
	errc := make(chan error, 2)
	var wg sync.WaitGroup

	wg.Add(1)
	go func() {
		defer wg.Done()
		defer stop.Store(true)
		for i := 0; i < swaps; i++ {
			set := setA
			if i%2 == 0 {
				set = setB
			}
			if err := s.ReplacePolicies(set, nil); err != nil {
				errc <- err
				return
			}
		}
	}()

	wg.Add(1)
	go func() {
		defer wg.Done()
		for !stop.Load() {
			ds, err := s.MatchAll(appel.JanePreferenceXML, EngineSQL)
			if err != nil {
				errc <- err
				return
			}
			if len(ds) != 2 {
				errc <- fmt.Errorf("matchall returned %d decisions, want 2", len(ds))
				return
			}
			if ds[0].Behavior != ds[1].Behavior {
				errc <- fmt.Errorf("torn batch: %s=%q, %s=%q — two snapshots in one MatchAll",
					ds[0].PolicyName, ds[0].Behavior, ds[1].PolicyName, ds[1].Behavior)
				return
			}
		}
	}()
	wg.Wait()
	close(errc)
	for err := range errc {
		t.Error(err)
	}
}

// TestMatchWhileRemoveInstall races matches against remove/reinstall
// churn of a single name. A reader either matches a published variant or
// sees a clean "not installed" from the window between remove and
// reinstall — never a stale or torn decision.
func TestMatchWhileRemoveInstall(t *testing.T) {
	s, err := NewSite()
	if err != nil {
		t.Fatal(err)
	}
	polA := mustParseOne(t, blockingPolicyXML("acme"))
	polB := mustParseOne(t, benignPolicyXML("acme"))
	if err := s.InstallPolicy(polA); err != nil {
		t.Fatal(err)
	}

	cycles := 30
	readers := 3
	if testing.Short() {
		cycles, readers = 8, 2
	}
	var stop atomic.Bool
	errc := make(chan error, readers+1)
	var wg sync.WaitGroup

	wg.Add(1)
	go func() {
		defer wg.Done()
		defer stop.Store(true)
		for i := 0; i < cycles; i++ {
			if err := s.RemovePolicy("acme"); err != nil {
				errc <- err
				return
			}
			pol := polA
			if i%2 == 0 {
				pol = polB
			}
			if err := s.InstallPolicy(pol); err != nil {
				errc <- err
				return
			}
		}
	}()

	for r := 0; r < readers; r++ {
		engine := []Engine{EngineSQL, EngineXTable, EngineNative}[r%3]
		wg.Add(1)
		go func(engine Engine) {
			defer wg.Done()
			for !stop.Load() {
				d, err := s.MatchPolicy(appel.JanePreferenceXML, "acme", engine)
				if err != nil {
					if strings.Contains(err.Error(), "not installed") {
						continue // the snapshot between remove and reinstall
					}
					errc <- fmt.Errorf("%v: %w", engine, err)
					return
				}
				if d.Behavior != "block" && d.Behavior != "request" {
					errc <- fmt.Errorf("%v: impossible behavior %q", engine, d.Behavior)
					return
				}
			}
		}(engine)
	}
	wg.Wait()
	close(errc)
	for err := range errc {
		t.Error(err)
	}
}

// TestReplacePoliciesValidatesRefFile: a bulk replace whose reference
// file names an uninstalled policy must fail without publishing.
func TestReplacePoliciesValidatesRefFile(t *testing.T) {
	s := siteWithVolga(t)
	before := s.state.Load()
	rf := before.refFile
	if rf == nil {
		t.Fatal("fixture has no reference file")
	}
	pols := []*p3p.Policy{mustParseOne(t, benignPolicyXML("acme"))}
	// The volga reference file points at #volga, which the new set lacks.
	if err := s.ReplacePolicies(pols, rf); err == nil {
		t.Fatal("replace with dangling reference must fail")
	}
	if s.state.Load() != before {
		t.Error("failed replace swapped the snapshot")
	}
	if d, err := s.MatchURI(appel.JanePreferenceXML, "/books/1", EngineSQL); err != nil || d.PolicyName != "volga" {
		t.Errorf("site changed after failed replace: %+v %v", d, err)
	}
}

func TestReplacePoliciesRejectsDuplicates(t *testing.T) {
	s, err := NewSite()
	if err != nil {
		t.Fatal(err)
	}
	pols := []*p3p.Policy{
		mustParseOne(t, benignPolicyXML("acme")),
		mustParseOne(t, blockingPolicyXML("acme")),
	}
	if err := s.ReplacePolicies(pols, nil); err == nil {
		t.Fatal("duplicate names in one replace must fail")
	}
	if got := s.PolicyNames(); len(got) != 0 {
		t.Errorf("failed replace left policies %v", got)
	}
}
