package core

import (
	"reflect"
	"sync"
	"testing"
	"time"

	"p3pdb/internal/obs"
	"p3pdb/internal/workload"
)

// newCacheTestSite installs a small corpus into a site built with opts.
func newCacheTestSite(t *testing.T, opts Options) *Site {
	t.Helper()
	s, err := NewSiteWithOptions(opts)
	if err != nil {
		t.Fatal(err)
	}
	d := workload.Generate(42)
	for _, pol := range d.Policies[:4] {
		if err := s.InstallPolicy(pol); err != nil {
			t.Fatal(err)
		}
	}
	return s
}

// TestConversionCacheHitConvertNearZero asserts the §6.3.2 claim the cache
// implements: on a repeat match the conversion phase collapses to a cache
// lookup, so Decision.Convert is effectively zero while the first match
// paid the full translate-and-prepare cost.
func TestConversionCacheHitConvertNearZero(t *testing.T) {
	// The decision cache would serve the repeat match before the engines
	// (and the conversion cache) ever run; disable it so the repeat
	// exercises the conversion layer this test is about.
	s := newCacheTestSite(t, Options{DisableDecisionCache: true})
	pref, _ := workload.PreferenceByLevel("High")
	name := s.PolicyNames()[0]

	for _, engine := range []Engine{EngineSQL, EngineXTable, EngineXQuery} {
		t.Run(engine.ShortName(), func(t *testing.T) {
			if _, err := s.MatchPolicy(pref.XML, name, engine); err != nil {
				t.Fatal(err)
			}
			hitsBefore, _, _ := s.ConversionCacheStats()
			dec, err := s.MatchPolicy(pref.XML, name, engine)
			if err != nil {
				t.Fatal(err)
			}
			hitsAfter, _, _ := s.ConversionCacheStats()
			if hitsAfter <= hitsBefore {
				t.Errorf("cache hits did not increase: %d -> %d", hitsBefore, hitsAfter)
			}
			// A hit's Convert is one map lookup. 5ms is orders of magnitude
			// above that even under the race detector, and orders of
			// magnitude below an actual translate-and-prepare.
			if dec.Convert > 5*time.Millisecond {
				t.Errorf("cache-hit Convert = %v, want ~zero", dec.Convert)
			}
		})
	}
}

// TestCachedDecisionsMatchUncached asserts the cache is semantically
// invisible: decisions served from cached conversions are identical,
// field for field, to a cache-disabled site's (timings excluded).
func TestCachedDecisionsMatchUncached(t *testing.T) {
	cached := newCacheTestSite(t, Options{DisableDecisionCache: true})
	uncached := newCacheTestSite(t, Options{
		DisableConversionCache: true,
		DisableDecisionCache:   true,
	})
	if _, _, size := uncached.ConversionCacheStats(); size != 0 {
		t.Fatalf("disabled cache reports size %d", size)
	}

	for _, level := range []string{"High", "Low"} {
		pref, ok := workload.PreferenceByLevel(level)
		if !ok {
			t.Fatalf("no level %s", level)
		}
		for _, engine := range Engines {
			for _, name := range cached.PolicyNames() {
				// Match twice on the cached site so the compared decision
				// is definitely served from the cache.
				if _, err := cached.MatchPolicy(pref.XML, name, engine); err != nil {
					t.Fatal(err)
				}
				got, err := cached.MatchPolicy(pref.XML, name, engine)
				if err != nil {
					t.Fatal(err)
				}
				want, err := uncached.MatchPolicy(pref.XML, name, engine)
				if err != nil {
					t.Fatal(err)
				}
				got.Convert, got.Query = 0, 0
				want.Convert, want.Query = 0, 0
				if !reflect.DeepEqual(got, want) {
					t.Errorf("%s/%s vs %s: cached %+v != uncached %+v",
						engine.ShortName(), level, name, got, want)
				}
			}
		}
	}
}

// TestConversionCachePurgeOnRemove asserts policy-bound (XTABLE) entries
// are dropped with their policy while policy-independent entries survive.
func TestConversionCachePurgeOnRemove(t *testing.T) {
	s := newCacheTestSite(t, Options{})
	pref, _ := workload.PreferenceByLevel("High")
	names := s.PolicyNames()

	for _, name := range names {
		if _, err := s.MatchPolicy(pref.XML, name, EngineXTable); err != nil {
			t.Fatal(err)
		}
	}
	if _, err := s.MatchPolicy(pref.XML, names[0], EngineSQL); err != nil {
		t.Fatal(err)
	}
	_, _, before := s.ConversionCacheStats()

	if err := s.RemovePolicy(names[0]); err != nil {
		t.Fatal(err)
	}
	_, _, after := s.ConversionCacheStats()
	if after != before-1 {
		t.Errorf("size after removing one policy: %d, want %d", after, before-1)
	}

	// The policy-independent SQL entry must still serve the others.
	hitsBefore, _, _ := s.ConversionCacheStats()
	if _, err := s.MatchPolicy(pref.XML, names[1], EngineSQL); err != nil {
		t.Fatal(err)
	}
	hitsAfter, _, _ := s.ConversionCacheStats()
	if hitsAfter <= hitsBefore {
		t.Error("SQL conversion was not served from cache after unrelated purge")
	}
}

// TestConversionCacheBounded asserts the FIFO bound holds.
func TestConversionCacheBounded(t *testing.T) {
	s := newCacheTestSite(t, Options{ConversionCacheSize: 2})
	name := s.PolicyNames()[0]
	for _, level := range []string{"Very High", "High", "Medium", "Low", "Very Low"} {
		pref, ok := workload.PreferenceByLevel(level)
		if !ok {
			t.Fatalf("no level %s", level)
		}
		if _, err := s.MatchPolicy(pref.XML, name, EngineSQL); err != nil {
			t.Fatal(err)
		}
	}
	if _, _, size := s.ConversionCacheStats(); size > 2 {
		t.Errorf("cache size %d exceeds bound 2", size)
	}
}

// TestConversionCacheObsExport asserts the registry view of the cache
// (core.convcache.* in the obs registry, what GET /metrics serves) stays
// in lockstep with the Site's own counters: hit and miss deltas match
// ConversionCacheStats exactly, the entries gauge grows with fills, and
// a policy removal purges the policy-bound entries back out of the
// gauge. The gauge is process-global (it sums every Site's cache), so
// all assertions are on deltas around operations on this one site.
func TestConversionCacheObsExport(t *testing.T) {
	hitsC := obs.GetCounter("core.convcache.hits")
	missesC := obs.GetCounter("core.convcache.misses")
	entriesG := obs.GetGauge("core.convcache.entries")

	h0, m0, e0 := hitsC.Value(), missesC.Value(), entriesG.Value()
	s := newCacheTestSite(t, Options{})
	pref, _ := workload.PreferenceByLevel("High")
	names := s.PolicyNames()

	// One XTable match per policy (policy-bound entries) plus a repeated
	// SQL match (one policy-independent entry, then hits).
	for _, name := range names {
		if _, err := s.MatchPolicy(pref.XML, name, EngineXTable); err != nil {
			t.Fatal(err)
		}
	}
	for i := 0; i < 3; i++ {
		if _, err := s.MatchPolicy(pref.XML, names[0], EngineSQL); err != nil {
			t.Fatal(err)
		}
	}

	siteHits, siteMisses, siteSize := s.ConversionCacheStats()
	if got := hitsC.Value() - h0; got != siteHits {
		t.Errorf("obs hits delta = %d, site counter = %d", got, siteHits)
	}
	if got := missesC.Value() - m0; got != siteMisses {
		t.Errorf("obs misses delta = %d, site counter = %d", got, siteMisses)
	}
	if got := entriesG.Value() - e0; got != int64(siteSize) {
		t.Errorf("obs entries delta = %d, site size = %d", got, siteSize)
	}

	// Removing a policy purges its policy-bound entry; the gauge must
	// follow the site's size down, not drift.
	if err := s.RemovePolicy(names[0]); err != nil {
		t.Fatal(err)
	}
	_, _, sizeAfter := s.ConversionCacheStats()
	if sizeAfter != siteSize-1 {
		t.Fatalf("site size after purge = %d, want %d", sizeAfter, siteSize-1)
	}
	if got := entriesG.Value() - e0; got != int64(sizeAfter) {
		t.Errorf("obs entries delta after purge = %d, site size = %d", got, sizeAfter)
	}
}

// TestConversionCacheObsGaugeExactSharded churns the sharded cache —
// concurrent fills, per-shard FIFO evictions, and a mid-churn policy
// purge — and asserts the core.convcache.entries gauge still equals the
// site's entry count exactly. Every gauge move happens under the owning
// shard's lock, so fills and evictions racing across shards must never
// make it drift.
func TestConversionCacheObsGaugeExactSharded(t *testing.T) {
	entriesG := obs.GetGauge("core.convcache.entries")
	e0 := entriesG.Value()

	const bound = 32 // 16 shards x 2 entries: churn forces per-shard evictions
	s, err := NewSiteWithOptions(Options{
		ConversionCacheSize: bound,
		// Distinct preference texts would mostly bypass the decision cache
		// anyway, but disable it so repeats also exercise the conversion
		// layer under test.
		DisableDecisionCache: true,
	})
	if err != nil {
		t.Fatal(err)
	}
	d := workload.Generate(42)
	for _, pol := range d.Policies[:6] {
		if err := s.InstallPolicy(pol); err != nil {
			t.Fatal(err)
		}
	}
	prefs := workload.PreferenceVariants("High", 48)

	// Seed a policy-bound entry for the policy the writer will purge.
	if _, err := s.MatchPolicy(prefs[0].XML, d.Policies[0].Name, EngineXTable); err != nil {
		t.Fatal(err)
	}

	var wg sync.WaitGroup
	for w := 0; w < 4; w++ {
		wg.Add(1)
		go func(w int) {
			defer wg.Done()
			for i, pref := range prefs {
				// Policies [1:6] only: the writer is removing policy 0.
				name := d.Policies[1+(i+w)%5].Name
				engine := EngineSQL
				if i%2 == 1 {
					engine = EngineXTable
				}
				if _, err := s.MatchPolicy(pref.XML, name, engine); err != nil {
					t.Errorf("worker %d: %v", w, err)
					return
				}
			}
		}(w)
	}
	wg.Add(1)
	go func() {
		defer wg.Done()
		if err := s.RemovePolicy(d.Policies[0].Name); err != nil {
			t.Errorf("remove: %v", err)
		}
	}()
	wg.Wait()

	_, _, size := s.ConversionCacheStats()
	if size > bound {
		t.Errorf("cache size %d exceeds bound %d", size, bound)
	}
	if got := entriesG.Value() - e0; got != int64(size) {
		t.Errorf("obs entries delta = %d after churn, site size = %d (gauge drift)", got, size)
	}
}
