package core

import (
	"fmt"
	"sync"
	"sync/atomic"

	"p3pdb/internal/appel"
	"p3pdb/internal/faultkit"
	"p3pdb/internal/obs"
	"p3pdb/internal/reldb"
	"p3pdb/internal/sqlgen"
	"p3pdb/internal/xqgen"
	"p3pdb/internal/xquery"
	"p3pdb/internal/xtable"
)

// The conversion cache realizes the paper's §6.3.2 "compiled preferences"
// deployment transparently: the first time a preference text is matched
// with an engine, the parse/translate/prepare work is done once and the
// artifacts are kept, so a returning user's visit pays only query
// execution. Figures 20/21 attribute the bulk of SQL matching time to
// conversion, which is exactly what a hit removes.
//
// Keys are (engine, preference text) — the schema is fixed per Site — plus
// the policy name for the XTABLE path, whose view-reconstruction SQL
// embeds the policy id. Policy-independent entries survive policy churn;
// policy-bound entries are purged when their policy is removed.

// convKey identifies one cached conversion.
type convKey struct {
	engine Engine
	pref   string
	policy string // empty for policy-independent conversions
}

// defaultConvCacheSize bounds the cache when Options leave it unset.
const defaultConvCacheSize = 256

// Conversion-cache observability (obs registry, DESIGN.md §8). Hits and
// misses are counters; entries is a gauge moved by put/evict/purge
// deltas, so it totals live entries across every Site in the process.
var (
	obsConvHits    = obs.GetCounter("core.convcache.hits")
	obsConvMisses  = obs.GetCounter("core.convcache.misses")
	obsConvEntries = obs.GetGauge("core.convcache.entries")
)

// maxConvShards caps the shard count: past ~16 ways the contention win
// flattens while the fixed per-shard overhead keeps growing.
const maxConvShards = 16

// convCache is a bounded FIFO cache of conversion artifacts, sharded by
// key hash so concurrent matchers contend only when their preferences
// land on the same shard. Under one worker it behaves exactly like the
// old single-mutex cache; under N workers the lock a lookup takes is
// 1/shards as hot. Each shard keeps its own FIFO order and its own slice
// of the global bound, so the total entry count never exceeds max and
// eviction stays oldest-first within a shard.
type convCache struct {
	shards []convShard
	hits   atomic.Int64
	misses atomic.Int64
}

// convShard is one lock's worth of the cache: a bounded FIFO map,
// exactly the old whole-cache structure at 1/shards scale.
type convShard struct {
	mu    sync.Mutex
	max   int
	m     map[convKey]any
	order []convKey
}

func newConvCache(max int) *convCache {
	if max <= 0 {
		max = defaultConvCacheSize
	}
	n := maxConvShards
	if n > max {
		n = max // never let shard quotas round down to zero
	}
	perShard := max / n
	if perShard < 1 {
		perShard = 1
	}
	c := &convCache{shards: make([]convShard, n)}
	for i := range c.shards {
		c.shards[i] = convShard{max: perShard, m: map[convKey]any{}}
	}
	return c
}

// shard picks the home shard for a key. FNV-1a over every key field:
// cheap, deterministic, and spreads the (engine, pref, policy) triples
// that differ only in one field.
func (c *convCache) shard(k convKey) *convShard {
	h := uint32(2166136261)
	for _, s := range [2]string{k.pref, k.policy} {
		for i := 0; i < len(s); i++ {
			h ^= uint32(s[i])
			h *= 16777619
		}
	}
	h ^= uint32(k.engine)
	h *= 16777619
	return &c.shards[h%uint32(len(c.shards))]
}

func (c *convCache) get(k convKey) (any, bool) {
	if c == nil {
		return nil, false
	}
	sh := c.shard(k)
	sh.mu.Lock()
	v, ok := sh.m[k]
	sh.mu.Unlock()
	if ok {
		c.hits.Add(1)
		obsConvHits.Inc()
	} else {
		c.misses.Add(1)
		obsConvMisses.Inc()
	}
	return v, ok
}

func (c *convCache) put(k convKey, v any) {
	if c == nil {
		return
	}
	sh := c.shard(k)
	sh.mu.Lock()
	defer sh.mu.Unlock()
	if _, exists := sh.m[k]; !exists {
		if len(sh.order) >= sh.max {
			oldest := sh.order[0]
			sh.order = sh.order[1:]
			delete(sh.m, oldest)
			obsConvEntries.Add(-1)
		}
		sh.order = append(sh.order, k)
		obsConvEntries.Add(1)
	}
	sh.m[k] = v
}

// purgePolicy drops every entry bound to the named policy, called when
// the policy is removed (its ids would otherwise go stale).
func (c *convCache) purgePolicy(name string) {
	c.purgeIf(func(k convKey) bool { return k.policy == name })
}

// purgePolicyBound drops every policy-bound entry (the XTABLE
// translations), called when a bulk replace reassigns every policy id.
// Policy-independent entries — the bulk of the cache — survive the swap.
func (c *convCache) purgePolicyBound() {
	c.purgeIf(func(k convKey) bool { return k.policy != "" })
}

func (c *convCache) purgeIf(drop func(convKey) bool) {
	if c == nil {
		return
	}
	for i := range c.shards {
		sh := &c.shards[i]
		sh.mu.Lock()
		kept := sh.order[:0]
		purged := int64(0)
		for _, k := range sh.order {
			if drop(k) {
				delete(sh.m, k)
				purged++
				continue
			}
			kept = append(kept, k)
		}
		sh.order = kept
		// The gauge delta is applied under this shard's lock, so the
		// process-wide entries gauge tracks live entries exactly even
		// while other shards churn.
		obsConvEntries.Add(-purged)
		sh.mu.Unlock()
	}
}

func (c *convCache) size() int {
	if c == nil {
		return 0
	}
	n := 0
	for i := range c.shards {
		sh := &c.shards[i]
		sh.mu.Lock()
		n += len(sh.m)
		sh.mu.Unlock()
	}
	return n
}

// ConversionCacheStats reports the Site's conversion-cache hit/miss
// counters and current entry count. All zeros when the cache is disabled.
func (s *Site) ConversionCacheStats() (hits, misses int64, size int) {
	if s.conv == nil {
		return 0, 0, 0
	}
	return s.conv.hits.Load(), s.conv.misses.Load(), s.conv.size()
}

// nativeConv caches the parsed APPEL ruleset for the native engine. The
// baseline's defining cost — parsing and augmenting the *policy* per
// match — is deliberately not cached; only the preference parse is.
type nativeConv struct {
	rs *appel.Ruleset
}

// sqlConv caches the optimized-schema translation with the policy id left
// as a parameter, so one entry serves every policy on the site.
type sqlConv struct {
	rs    *appel.Ruleset
	rules []compiledRule
}

// xtableConv caches the XQuery→SQL view-reconstruction translation. The
// generated SQL embeds the policy id, so entries are per policy and
// record the id they were generated against: a hit whose id no longer
// matches the snapshot's (the policy was re-installed under a new id) is
// rebuilt instead of served.
type xtableConv struct {
	rs    *appel.Ruleset
	rules []xtableRule
	genID int
}

type xtableRule struct {
	stmt     reldb.Statement
	behavior string
	prompt   bool
}

// xqueryConv caches the APPEL→XQuery translation and the parsed queries;
// the policy is bound at evaluation time through the document resolver.
type xqueryConv struct {
	rs    *appel.Ruleset
	rules []xqueryRule
}

type xqueryRule struct {
	query  *xquery.Query
	prompt bool
}

// nativeConversion returns the parsed ruleset for a preference,
// through the cache.
func (s *Site) nativeConversion(prefXML string) (*nativeConv, error) {
	k := convKey{engine: EngineNative, pref: prefXML}
	if v, ok := s.conv.get(k); ok {
		return v.(*nativeConv), nil
	}
	if err := faultkit.Inject(faultkit.PointConvFill); err != nil {
		return nil, err
	}
	rs, err := appel.Parse(prefXML)
	if err != nil {
		return nil, err
	}
	e := &nativeConv{rs: rs}
	s.conv.put(k, e)
	return e, nil
}

// sqlConversion translates and prepares a preference against the
// optimized schema, through the cache. The prepared statements are plain
// parsed ASTs with the policy id as a parameter, bound to no database
// instance, so entries stay valid across snapshot swaps.
func (s *Site) sqlConversion(st *siteState, prefXML string) (*sqlConv, error) {
	k := convKey{engine: EngineSQL, pref: prefXML}
	if v, ok := s.conv.get(k); ok {
		return v.(*sqlConv), nil
	}
	if err := faultkit.Inject(faultkit.PointConvFill); err != nil {
		return nil, err
	}
	rs, err := appel.Parse(prefXML)
	if err != nil {
		return nil, err
	}
	rules, err := compileRules(st.optDB, rs)
	if err != nil {
		return nil, err
	}
	e := &sqlConv{rs: rs, rules: rules}
	s.conv.put(k, e)
	return e, nil
}

// xtableConversion translates a preference to SQL over the generic schema
// through the XML-view layer for one policy, through the cache. A cached
// entry is only served when its embedded policy id still matches the
// snapshot's — re-installation under a new id invalidates it in place.
func (s *Site) xtableConversion(st *siteState, prefXML, policyName string) (*xtableConv, error) {
	k := convKey{engine: EngineXTable, pref: prefXML, policy: policyName}
	policyID := st.ids[policyName]
	if v, ok := s.conv.get(k); ok {
		if e := v.(*xtableConv); e.genID == policyID {
			return e, nil
		}
	}
	if err := faultkit.Inject(faultkit.PointConvFill); err != nil {
		return nil, err
	}
	rs, err := appel.Parse(prefXML)
	if err != nil {
		return nil, err
	}
	xqs, err := xqgen.TranslateRuleset(rs)
	if err != nil {
		return nil, err
	}
	// The whole preference is prepared before any rule runs; a rule
	// whose view-reconstructed SQL exceeds the engine's complexity
	// limits fails here, the way XTABLE's Medium translation failed at
	// DB2 prepare time in the paper's experiments.
	e := &xtableConv{rs: rs, genID: policyID}
	for i, xq := range xqs {
		q, err := xtable.TranslateXQuery(xq.XQuery, sqlgen.FixedPolicySubquery(policyID), xtable.Options{})
		if err != nil {
			return nil, err
		}
		stmt, err := st.genDB.Prepare(q.SQL)
		if err != nil {
			return nil, fmt.Errorf("core: preparing rule %d: %w", i+1, err)
		}
		e.rules = append(e.rules, xtableRule{stmt: stmt, behavior: q.Behavior, prompt: xq.Prompt})
	}
	s.conv.put(k, e)
	return e, nil
}

// xqueryConversion translates a preference to parsed XQuery, through the
// cache.
func (s *Site) xqueryConversion(prefXML string) (*xqueryConv, error) {
	k := convKey{engine: EngineXQuery, pref: prefXML}
	if v, ok := s.conv.get(k); ok {
		return v.(*xqueryConv), nil
	}
	if err := faultkit.Inject(faultkit.PointConvFill); err != nil {
		return nil, err
	}
	rs, err := appel.Parse(prefXML)
	if err != nil {
		return nil, err
	}
	xqs, err := xqgen.TranslateRuleset(rs)
	if err != nil {
		return nil, err
	}
	e := &xqueryConv{rs: rs}
	for _, xq := range xqs {
		parsed, err := xquery.Parse(xq.XQuery)
		if err != nil {
			return nil, err
		}
		e.rules = append(e.rules, xqueryRule{query: parsed, prompt: xq.Prompt})
	}
	s.conv.put(k, e)
	return e, nil
}
