package core

import (
	"runtime"
	"sync"
	"sync/atomic"
)

// MatchAll fans one preference across every installed policy with a
// bounded worker pool and returns the decisions ordered by policy name.
// It is the batch face of the parallel read path: each worker matches
// under the Site's shared lock, so throughput scales with cores, and the
// conversion cache guarantees the preference is translated at most once
// for the whole batch. Site owners use it to answer "which of my policies
// would this preference block?" in one call (the Section 4.2 analytics
// direction).
func (s *Site) MatchAll(prefXML string, engine Engine) ([]Decision, error) {
	names := s.PolicyNames()
	if len(names) == 0 {
		return nil, nil
	}
	decisions := make([]Decision, len(names))
	errs := make([]error, len(names))

	workers := runtime.GOMAXPROCS(0)
	if workers > len(names) {
		workers = len(names)
	}
	var next atomic.Int64
	var wg sync.WaitGroup
	for w := 0; w < workers; w++ {
		wg.Add(1)
		go func() {
			defer wg.Done()
			for {
				i := int(next.Add(1)) - 1
				if i >= len(names) {
					return
				}
				decisions[i], errs[i] = s.MatchPolicy(prefXML, names[i], engine)
			}
		}()
	}
	wg.Wait()
	for _, err := range errs {
		if err != nil {
			return nil, err
		}
	}
	return decisions, nil
}
