package core

import (
	"context"
	"errors"
	"fmt"
	"runtime"
	"sort"
	"sync"
	"sync/atomic"
	"time"

	"p3pdb/internal/obs"
)

// Worker-pool observability (obs registry, DESIGN.md §8): batches run,
// per-policy matches fanned out, queue wait (batch start → worker claims
// the policy, the time an item spent waiting for a worker slot), and
// early stops (policies never attempted because the batch context ended).
var (
	obsBatches    = obs.GetCounter("core.matchall.batches")
	obsBatchItems = obs.GetCounter("core.matchall.policies")
	obsEarlyStops = obs.GetCounter("core.matchall.early_stops")
	obsQueueWait  = obs.GetHistogram("core.matchall.queue_wait_us")
)

// PolicyError records one policy's failure inside a batch match, so
// callers can tell which policies failed without losing the ones that
// succeeded. It unwraps to the underlying cause, so errors.Is sees
// through it (e.g. to resource.ErrBudgetExceeded).
type PolicyError struct {
	Policy string
	Err    error
}

func (e *PolicyError) Error() string { return fmt.Sprintf("policy %s: %v", e.Policy, e.Err) }
func (e *PolicyError) Unwrap() error { return e.Err }

// MatchAll fans one preference across every installed policy with a
// bounded worker pool and returns the decisions ordered by policy name.
// It is the batch face of the parallel read path: the batch loads the
// site snapshot once and every worker matches lock-free against it —
// the whole batch reflects exactly one policy set even when installs
// land mid-batch — and the conversion cache guarantees the preference
// is translated at most once for the whole batch. Site owners use it to
// answer "which of my policies would this preference block?" in one
// call (the Section 4.2 analytics direction).
func (s *Site) MatchAll(prefXML string, engine Engine) ([]Decision, error) {
	return s.MatchAllCtx(context.Background(), prefXML, engine)
}

// MatchAllCtx is MatchAll governed by a context. Cancellation stops the
// fan-out early: workers stop claiming policies as soon as the context
// ends, and in-flight matches abort at their next meter poll. Each
// per-policy match additionally runs under Options.PerPolicyTimeout (if
// set) and the Site's match budget, so one pathological policy cannot
// starve the batch.
//
// Per-policy failures are aggregated, not fatal: the returned decisions
// hold every successful match (still ordered by policy name), and the
// returned error joins one *PolicyError per failure (plus the context's
// error if it ended early). Both can be non-empty at once — callers that
// want the old all-or-nothing behavior check err first.
func (s *Site) MatchAllCtx(ctx context.Context, prefXML string, engine Engine) ([]Decision, error) {
	// One snapshot for the whole batch: a concurrent install/remove/
	// replace publishes a successor state, which this batch deliberately
	// does not see — no torn mix of old and new policies.
	st := s.state.Load()
	names := make([]string, 0, len(st.policyXML))
	for n := range st.policyXML {
		names = append(names, n)
	}
	sort.Strings(names)
	if len(names) == 0 {
		return nil, nil
	}
	obsBatches.Inc()
	decisions := make([]Decision, len(names))
	errs := make([]error, len(names))
	attempted := make([]bool, len(names))

	workers := runtime.GOMAXPROCS(0)
	if workers > len(names) {
		workers = len(names)
	}
	// tracing gates the per-policy child spans: a span is a small
	// allocation per policy, worth paying only when someone is reading
	// the trace. Metrics (queue wait, counters) are always on.
	tracing := obs.TracingEnabled()
	batchStart := time.Now()
	var next atomic.Int64
	var wg sync.WaitGroup
	for w := 0; w < workers; w++ {
		wg.Add(1)
		go func() {
			defer wg.Done()
			for ctx.Err() == nil {
				i := int(next.Add(1)) - 1
				if i >= len(names) {
					return
				}
				attempted[i] = true
				obsBatchItems.Inc()
				obsQueueWait.ObserveDuration(time.Since(batchStart))
				pctx := ctx
				var ps *obs.Span
				if tracing {
					pctx, ps = obs.StartSpan(pctx, "matchall.policy")
				}
				if s.perPolicyTimeout > 0 {
					var cancel context.CancelFunc
					pctx, cancel = context.WithTimeout(pctx, s.perPolicyTimeout)
					decisions[i], errs[i] = s.matchPolicyState(pctx, st, prefXML, names[i], engine)
					cancel()
				} else {
					decisions[i], errs[i] = s.matchPolicyState(pctx, st, prefXML, names[i], engine)
				}
				if ps != nil {
					if errs[i] != nil {
						ps.SetOutcome("error")
					} else {
						ps.SetOutcome("ok")
					}
					ps.End()
				}
			}
		}()
	}
	wg.Wait()

	out := decisions[:0]
	var failures []error
	for i, name := range names {
		switch {
		case !attempted[i]:
			// The batch context ended before a worker reached this
			// policy; ctx.Err() below reports why.
			obsEarlyStops.Inc()
		case errs[i] != nil:
			failures = append(failures, &PolicyError{Policy: name, Err: errs[i]})
		default:
			out = append(out, decisions[i])
		}
	}
	if err := ctx.Err(); err != nil {
		failures = append(failures, err)
	}
	return out, errors.Join(failures...)
}
