package core

import (
	"fmt"
	"testing"

	"p3pdb/internal/faultkit"
	"p3pdb/internal/obs"
	"p3pdb/internal/workload"
)

// prewarmOracle pairs a warm site (decision cache on, preferences
// registered) with an oracle site (no decision cache) holding the same
// policies: the oracle always computes decisions exhaustively through
// the engines, so any warm/oracle divergence is a pre-warm bug.
func prewarmSites(t *testing.T) (warm, oracle *Site) {
	t.Helper()
	var err error
	if warm, err = NewSiteWithOptions(Options{ConversionCacheSize: 2048}); err != nil {
		t.Fatal(err)
	}
	if oracle, err = NewSiteWithOptions(Options{DisableDecisionCache: true, ConversionCacheSize: 2048}); err != nil {
		t.Fatal(err)
	}
	return warm, oracle
}

var prewarmEngines = []string{"native", "sql", "xtable", "xquery"}

// TestPrewarmDifferentialConformance is the tentpole's correctness bar:
// across the conformance corpus, all four engines, faults armed or not,
// every decision the pre-warm pass seeds must be byte-identical to what
// exhaustive engine evaluation produces — and every pair the oracle can
// decide must actually be seeded (over-selection allowed, under-selection
// never).
func TestPrewarmDifferentialConformance(t *testing.T) {
	for _, armed := range []bool{false, true} {
		name := "index"
		if armed {
			name = "residual-forced"
		}
		t.Run(name, func(t *testing.T) {
			faultkit.Reset()
			defer faultkit.Reset()
			if armed {
				if err := faultkit.Enable(faultkit.PointPrefindexSelect + ":error"); err != nil {
					t.Fatal(err)
				}
			}
			warm, oracle := prewarmSites(t)
			preferences := readConformanceDir(t, "preferences")
			for stem, prefXML := range preferences {
				if err := warm.RegisterPreferenceXML(stem, prefXML, prewarmEngines); err != nil {
					t.Fatalf("register %s: %v", stem, err)
				}
			}
			// Installing after registration makes every policy "changed",
			// so each install pre-warms it against every registered
			// preference before the swap publishes.
			var policyNames []string
			for stem, xml := range readConformanceDir(t, "policies") {
				names, err := warm.InstallPolicyXML(xml)
				if err != nil {
					t.Fatalf("install %s: %v", stem, err)
				}
				if _, err := oracle.InstallPolicyXML(xml); err != nil {
					t.Fatalf("oracle install %s: %v", stem, err)
				}
				policyNames = append(policyNames, names...)
			}
			for prefStem, prefXML := range preferences {
				for _, polName := range policyNames {
					for _, en := range prewarmEngines {
						eng, _ := ParseEngine(en)
						want, wantErr := oracle.MatchPolicy(prefXML, polName, eng)
						got, gotErr := warm.MatchPolicy(prefXML, polName, eng)
						if (wantErr == nil) != (gotErr == nil) {
							t.Fatalf("%s vs %s [%s]: oracle err=%v, warm err=%v",
								prefStem, polName, en, wantErr, gotErr)
						}
						if wantErr != nil {
							continue
						}
						if !got.Cached {
							t.Errorf("%s vs %s [%s]: decidable pair was not pre-warmed",
								prefStem, polName, en)
						}
						if got.Behavior != want.Behavior || got.RuleIndex != want.RuleIndex ||
							got.RuleDescription != want.RuleDescription || got.Prompt != want.Prompt {
							t.Errorf("%s vs %s [%s]: warm %s/rule %d (%q, prompt=%v) != oracle %s/rule %d (%q, prompt=%v)",
								prefStem, polName, en,
								got.Behavior, got.RuleIndex, got.RuleDescription, got.Prompt,
								want.Behavior, want.RuleIndex, want.RuleDescription, want.Prompt)
						}
					}
				}
			}
		})
	}
}

// TestPrewarmDifferentialWorkload runs the same invariant over the
// generated workload corpus with a bulk replace: after swapping every
// policy's content, the registered preferences' decisions against the
// new generation must be pre-seeded and identical to the oracle's.
func TestPrewarmDifferentialWorkload(t *testing.T) {
	warm, oracle := prewarmSites(t)
	d1 := workload.Generate(41)
	if err := warm.ReplacePolicies(d1.Policies, d1.RefFile); err != nil {
		t.Fatal(err)
	}
	for i, p := range d1.Preferences {
		if err := warm.RegisterPreferenceXML(fmt.Sprintf("level-%s", p.Level), p.XML, prewarmEngines); err != nil {
			t.Fatalf("register %d: %v", i, err)
		}
	}
	// Same policy names, different content: the carry-forward cannot
	// cover the swap, so every seeded decision below came from
	// index-selected evaluation.
	d2 := workload.Generate(42)
	if err := warm.ReplacePolicies(d2.Policies, d2.RefFile); err != nil {
		t.Fatal(err)
	}
	if err := oracle.ReplacePolicies(d2.Policies, d2.RefFile); err != nil {
		t.Fatal(err)
	}
	_, last := warm.PrewarmStats()
	if last.Evaluated == 0 {
		t.Fatalf("replace evaluated nothing: %+v", last)
	}
	if last.SelectedRules >= last.TotalRules {
		t.Errorf("index selected every rule (%d/%d): no selectivity", last.SelectedRules, last.TotalRules)
	}
	for _, p := range d1.Preferences {
		for _, pol := range d2.Policies {
			for _, en := range prewarmEngines {
				eng, _ := ParseEngine(en)
				want, wantErr := oracle.MatchPolicy(p.XML, pol.Name, eng)
				got, gotErr := warm.MatchPolicy(p.XML, pol.Name, eng)
				if (wantErr == nil) != (gotErr == nil) {
					t.Fatalf("%s vs %s [%s]: oracle err=%v, warm err=%v", p.Level, pol.Name, en, wantErr, gotErr)
				}
				if wantErr != nil {
					continue
				}
				if !got.Cached {
					t.Errorf("%s vs %s [%s]: not pre-warmed after replace", p.Level, pol.Name, en)
				}
				if got.Behavior != want.Behavior || got.RuleIndex != want.RuleIndex ||
					got.RuleDescription != want.RuleDescription || got.Prompt != want.Prompt {
					t.Errorf("%s vs %s [%s]: warm %+v != oracle %+v", p.Level, pol.Name, en, got, want)
				}
			}
		}
	}
}

// TestPrewarmCarryForward: organic decisions for unregistered
// preferences must survive a preference registration (which bumps the
// generation without touching any policy document).
func TestPrewarmCarryForward(t *testing.T) {
	s, err := NewSite()
	if err != nil {
		t.Fatal(err)
	}
	ds := workload.Generate(7)
	if err := s.ReplacePolicies(ds.Policies, ds.RefFile); err != nil {
		t.Fatal(err)
	}
	pref := ds.Preferences[0]
	pol := ds.Policies[0].Name
	if _, err := s.MatchPolicy(pref.XML, pol, EngineSQL); err != nil {
		t.Fatal(err)
	}
	// Registration publishes a new generation; the organic decision
	// above must ride across as a carried pre-seed.
	other := ds.Preferences[1]
	if err := s.RegisterPreferenceXML("reg", other.XML, nil); err != nil {
		t.Fatal(err)
	}
	_, last := s.PrewarmStats()
	if last.Carried == 0 {
		t.Fatalf("registration carried nothing forward: %+v", last)
	}
	d, err := s.MatchPolicy(pref.XML, pol, EngineSQL)
	if err != nil {
		t.Fatal(err)
	}
	if !d.Cached {
		t.Fatal("organic decision was lost across the registration swap")
	}
}

// TestPrewarmDoesNotMoveMatchCounters: the pass bypasses match(), so the
// per-engine core.match.* totals — reconciled against server request
// counts by the metrics invariant tests — must not move.
func TestPrewarmDoesNotMoveMatchCounters(t *testing.T) {
	before := make([]int64, len(Engines))
	for i, e := range Engines {
		before[i] = obs.GetCounter("core.match." + e.ShortName() + ".total").Value()
	}
	s, err := NewSite()
	if err != nil {
		t.Fatal(err)
	}
	ds := workload.Generate(11)
	if err := s.RegisterPreferenceXML("p", ds.Preferences[0].XML, prewarmEngines); err != nil {
		t.Fatal(err)
	}
	if err := s.ReplacePolicies(ds.Policies, ds.RefFile); err != nil {
		t.Fatal(err)
	}
	if _, last := s.PrewarmStats(); last.Evaluated == 0 {
		t.Fatalf("nothing evaluated: %+v", last)
	}
	for i, e := range Engines {
		if after := obs.GetCounter("core.match." + e.ShortName() + ".total").Value(); after != before[i] {
			t.Errorf("pre-warm moved core.match.%s.total by %d", e.ShortName(), after-before[i])
		}
	}
}

// TestForcedMissAccounting: an armed decision.lookup fault must count as
// a forced miss, not a natural one — the honesty bar for the warm-rate
// metric.
func TestForcedMissAccounting(t *testing.T) {
	faultkit.Reset()
	defer faultkit.Reset()
	s, err := NewSite()
	if err != nil {
		t.Fatal(err)
	}
	ds := workload.Generate(13)
	if err := s.ReplacePolicies(ds.Policies, ds.RefFile); err != nil {
		t.Fatal(err)
	}
	pref, pol := ds.Preferences[0].XML, ds.Policies[0].Name
	if _, err := s.MatchPolicy(pref, pol, EngineSQL); err != nil {
		t.Fatal(err)
	}
	base := s.DecisionCacheDetail()
	if err := faultkit.Enable(faultkit.PointDecisionLookup + ":error"); err != nil {
		t.Fatal(err)
	}
	if _, err := s.MatchPolicy(pref, pol, EngineSQL); err != nil {
		t.Fatal(err)
	}
	det := s.DecisionCacheDetail()
	if det.ForcedMisses != base.ForcedMisses+1 {
		t.Errorf("forced misses %d -> %d, want +1", base.ForcedMisses, det.ForcedMisses)
	}
	if det.Misses != base.Misses {
		t.Errorf("a forced miss leaked into natural misses: %d -> %d", base.Misses, det.Misses)
	}
}

// TestRegisterPreferenceValidation: malformed documents and unknown
// engines must fail registration without publishing anything.
func TestRegisterPreferenceValidation(t *testing.T) {
	s, err := NewSite()
	if err != nil {
		t.Fatal(err)
	}
	if err := s.RegisterPreferenceXML("bad", "<not-appel/>", nil); err == nil {
		t.Error("malformed ruleset registered")
	}
	ds := workload.Generate(3)
	if err := s.RegisterPreferenceXML("p", ds.Preferences[0].XML, []string{"warp-drive"}); err == nil {
		t.Error("unknown engine accepted")
	}
	if got := s.RegisteredPreferences(); len(got) != 0 {
		t.Errorf("failed registrations left residue: %+v", got)
	}
	if err := s.RegisterPreferenceXML("p", ds.Preferences[0].XML, nil); err != nil {
		t.Fatal(err)
	}
	got := s.RegisteredPreferences()
	if len(got) != 1 || got[0].Name != "p" || len(got[0].Engines) != 1 || got[0].Engines[0] != "sql" {
		t.Errorf("default registration wrong: %+v", got)
	}
}

// TestRestoreStatePreservesPrefs: the durability layer's rollback path
// rebuilds sites from exports; registrations must round-trip.
func TestRestoreStatePreservesPrefs(t *testing.T) {
	s, err := NewSite()
	if err != nil {
		t.Fatal(err)
	}
	ds := workload.Generate(5)
	if err := s.ReplacePolicies(ds.Policies, ds.RefFile); err != nil {
		t.Fatal(err)
	}
	if err := s.RegisterPreferenceXML("keep", ds.Preferences[2].XML, []string{"sql", "native"}); err != nil {
		t.Fatal(err)
	}
	exp := s.ExportState()
	if len(exp.Prefs) != 1 || exp.Prefs[0].Name != "keep" {
		t.Fatalf("export lost prefs: %+v", exp.Prefs)
	}
	restored, err := NewSite()
	if err != nil {
		t.Fatal(err)
	}
	if err := restored.RestoreState(exp); err != nil {
		t.Fatal(err)
	}
	got := restored.RegisteredPreferences()
	if len(got) != 1 || got[0].Name != "keep" || len(got[0].Engines) != 2 {
		t.Fatalf("restore lost prefs: %+v", got)
	}
	// The restored registration must pre-warm on the next policy write.
	d2 := workload.Generate(6)
	if err := restored.ReplacePolicies(d2.Policies, d2.RefFile); err != nil {
		t.Fatal(err)
	}
	if _, last := restored.PrewarmStats(); last.Evaluated == 0 {
		t.Fatalf("restored prefs did not pre-warm: %+v", last)
	}
}
