package core

// Pre-warm: incremental policy evaluation over the registered preference
// rulesets, run inside ApplyBatch between materializing the successor
// snapshot and publishing it. Every decision produced here is keyed by
// the successor's generation, which no reader can observe until the
// atomic swap — so the cache a visitor sees the instant the new snapshot
// publishes is already warm, instead of the whole hot set faulting
// through the engines at once (the post-publication miss storm).
//
// Two mechanisms fill the cache:
//
//   - Carry-forward: every decision cached against the previous
//     generation whose policy document is byte-identical in the
//     successor is re-keyed as-is. A decision is a pure function of
//     (preference text, policy text, engine), so unchanged text means an
//     unchanged decision — this covers organic (unregistered) traffic
//     across registrations and no-op republishes for free.
//
//   - Index-selected evaluation: for registered preferences, the
//     prefindex predicate index selects, per changed policy, the rules
//     that could possibly fire, and only those are evaluated — through
//     the same conversion cache and engine code paths an organic match
//     uses, so a pre-warmed decision is byte-identical to the one the
//     engine would compute after the swap. Pairs whose conversion or
//     evaluation errors are skipped, never cached: the organic path
//     would surface the same error, uncached, and keeping the cache free
//     of them preserves that.
//
// The pass deliberately bypasses match(): per-engine core.match.*
// counters and conflict analytics move only for real visitor traffic,
// which the metrics reconciliation invariants (server tests) depend on.
// Pre-warm work is accounted under core.prewarm.* instead.

import (
	"context"
	"fmt"

	"p3pdb/internal/appel"
	"p3pdb/internal/appelengine"
	"p3pdb/internal/decision"
	"p3pdb/internal/obs"
	"p3pdb/internal/prefindex"
	"p3pdb/internal/reldb"
	"p3pdb/internal/resource"
	"p3pdb/internal/sqlgen"
	"p3pdb/internal/xquery"
)

var (
	obsPrewarmPublishes = obs.GetCounter("core.prewarm.publishes")
	obsPrewarmCarried   = obs.GetCounter("core.prewarm.carried")
	obsPrewarmEvaluated = obs.GetCounter("core.prewarm.evaluated")
	obsPrewarmStatic    = obs.GetCounter("core.prewarm.static")
	obsPrewarmSkipped   = obs.GetCounter("core.prewarm.skipped")
	obsPrewarmSelected  = obs.GetCounter("core.prewarm.selected_rules")
	obsPrewarmTotal     = obs.GetCounter("core.prewarm.total_rules")
)

// PrewarmStats tallies the pre-warm pass: decisions carried forward,
// decisions produced by index-selected evaluation, and the selectivity
// evidence (selected vs. total rules across evaluated pairs).
type PrewarmStats struct {
	// Publishes counts snapshot publications that ran the pass.
	Publishes int64 `json:"publishes"`
	// Carried counts decisions re-keyed from the previous generation
	// because their policy document was unchanged.
	Carried int64 `json:"carried"`
	// Evaluated counts decisions produced by index-selected evaluation.
	Evaluated int64 `json:"evaluated"`
	// Static counts evaluated decisions whose selection the index proved
	// static (first selectable rule fires unconditionally).
	Static int64 `json:"static"`
	// Residual counts evaluated decisions forced exhaustive by an armed
	// prefindex.select fault.
	Residual int64 `json:"residual"`
	// NoRule counts (preference, policy) pairs the index proved fire no
	// rule at all; nothing is cached for them, matching the engines'
	// uncached no-rule-fired error.
	NoRule int64 `json:"noRule"`
	// Skipped counts (preference, policy, engine) evaluations abandoned
	// on a conversion or evaluation error.
	Skipped int64 `json:"skipped"`
	// SelectedRules and TotalRules accumulate, over evaluated pairs, how
	// many rules the index selected vs. how many the rulesets hold — the
	// selectivity ratio the bench table reports.
	SelectedRules int64 `json:"selectedRules"`
	TotalRules    int64 `json:"totalRules"`
}

// PrewarmStats reports the cumulative pre-warm tallies and those of the
// most recent snapshot publication.
func (s *Site) PrewarmStats() (cumulative, last PrewarmStats) {
	s.prewarmMu.Lock()
	defer s.prewarmMu.Unlock()
	return s.prewarmCum, s.prewarmLast
}

// RegisterPreferenceMutation registers (or replaces) a preference
// ruleset under a name, in batchable form. The APPEL document is parsed,
// validated, and witness-indexed here, so malformed registrations fail
// before anything joins a batch. engines lists the engines to pre-warm
// under by short name; empty defaults to "sql" (the paper's deployment
// engine).
func RegisterPreferenceMutation(name, xml string, engines []string) (Mutation, error) {
	if len(engines) == 0 {
		engines = []string{"sql"}
	}
	norm := make([]string, 0, len(engines))
	seen := map[string]bool{}
	for _, e := range engines {
		eng, err := ParseEngine(e)
		if err != nil {
			return Mutation{}, err
		}
		if sn := eng.ShortName(); !seen[sn] {
			seen[sn] = true
			norm = append(norm, sn)
		}
	}
	p, err := prefindex.Compile(name, xml, norm)
	if err != nil {
		return Mutation{}, fmt.Errorf("core: register preference %q: %w", name, err)
	}
	return Mutation{edit: func(d *stateDraft) error {
		d.prefs = d.prefs.With(p)
		return nil
	}}, nil
}

// RegisterPreferenceXML registers (or replaces) a preference ruleset and
// publishes a successor snapshot, pre-warming the new preference against
// every installed policy before the swap.
func (s *Site) RegisterPreferenceXML(name, xml string, engines []string) error {
	m, err := RegisterPreferenceMutation(name, xml, engines)
	if err != nil {
		return err
	}
	return s.ApplyBatch([]Mutation{m})
}

// RegisteredPreference describes one registered preference for listings.
type RegisteredPreference struct {
	Name    string   `json:"name"`
	Engines []string `json:"engines"`
	Rules   int      `json:"rules"`
}

// RegisteredPreferences lists the registered preferences in registration
// order.
func (s *Site) RegisteredPreferences() []RegisteredPreference {
	var out []RegisteredPreference
	for _, p := range s.state.Load().prefs.Prefs() {
		out = append(out, RegisteredPreference{
			Name:    p.Name,
			Engines: append([]string(nil), p.Engines...),
			Rules:   len(p.Rules.Rules),
		})
	}
	return out
}

// prewarm fills the decision cache for the not-yet-published successor
// snapshot. Called from ApplyBatch under writeMu, after materialize and
// before the atomic publish; next's generation is invisible to readers
// throughout, so every Preseed lands before the first post-swap lookup
// can probe for it.
func (s *Site) prewarm(prev, next *siteState) {
	if s.decisions == nil {
		return
	}
	var t PrewarmStats
	t.Publishes = 1
	// Carry forward every previous-generation decision whose policy
	// document is unchanged: same preference text, same policy text,
	// same engine — same decision, by construction.
	for _, e := range s.decisions.EntriesAt(prev.gen) {
		xml, ok := next.policyXML[e.Key.Policy]
		if !ok || xml != prev.policyXML[e.Key.Policy] {
			continue
		}
		k := e.Key
		k.Gen = next.gen
		s.decisions.Preseed(k, e.Out)
		t.Carried++
	}
	// Index-selected evaluation over the registered preferences. Work is
	// limited to (every preference x changed policies) plus (newly
	// registered preferences x all policies); everything else was either
	// carried forward or was never cached before.
	if set := next.prefs; set.Len() > 0 {
		newPref := map[string]bool{}
		for _, p := range set.Prefs() {
			if old, ok := prev.prefs.Get(p.Name); !ok || old != p {
				newPref[p.Name] = true
			}
		}
		for _, polName := range next.order {
			changed := prev.policyXML[polName] != next.policyXML[polName]
			if !changed && len(newPref) == 0 {
				continue
			}
			art := s.artifacts[next.policies[polName]]
			if art.terms == nil {
				art.terms = prefindex.PolicyTerms(art.augmented)
			}
			for _, sel := range set.Select(art.terms) {
				if !changed && !newPref[sel.Pref.Name] {
					continue
				}
				s.prewarmPair(next, polName, sel, &t)
			}
		}
	}
	obsPrewarmPublishes.Inc()
	obsPrewarmCarried.Add(t.Carried)
	obsPrewarmEvaluated.Add(t.Evaluated)
	obsPrewarmStatic.Add(t.Static)
	obsPrewarmSkipped.Add(t.Skipped)
	obsPrewarmSelected.Add(t.SelectedRules)
	obsPrewarmTotal.Add(t.TotalRules)
	s.prewarmMu.Lock()
	s.prewarmCum.Publishes += t.Publishes
	s.prewarmCum.Carried += t.Carried
	s.prewarmCum.Evaluated += t.Evaluated
	s.prewarmCum.Static += t.Static
	s.prewarmCum.Residual += t.Residual
	s.prewarmCum.NoRule += t.NoRule
	s.prewarmCum.Skipped += t.Skipped
	s.prewarmCum.SelectedRules += t.SelectedRules
	s.prewarmCum.TotalRules += t.TotalRules
	s.prewarmLast = t
	s.prewarmMu.Unlock()
}

// prewarmPair evaluates one (preference, policy) selection under each of
// the preference's engines and preseeds the outcomes.
func (s *Site) prewarmPair(st *siteState, policy string, sel prefindex.Selection, t *PrewarmStats) {
	if sel.NoRule {
		// Every rule provably cannot fire. The organic match would
		// return the engine's no-rule-fired error, which is never
		// cached — so there is nothing to warm, and skipping keeps the
		// cache's contents identical to what organic traffic builds.
		t.NoRule++
		return
	}
	for _, en := range sel.Pref.Engines {
		eng, err := ParseEngine(en)
		if err != nil {
			continue
		}
		k := decision.Key{Gen: st.gen, Engine: uint8(eng), Policy: policy, Pref: sel.Pref.XML}
		if _, ok := s.decisions.Peek(k); ok {
			continue // already carried forward
		}
		out, err := s.prewarmEval(st, sel, policy, eng)
		if err != nil {
			// Conversion or evaluation failed — including the engine's
			// own no-rule-fired. The organic path surfaces the same
			// outcome uncached; caching nothing preserves that exactly.
			t.Skipped++
			continue
		}
		s.decisions.Preseed(k, out)
		t.Evaluated++
		if sel.Static {
			t.Static++
		}
		if sel.Residual {
			t.Residual++
		}
		t.SelectedRules += int64(sel.Selected)
		t.TotalRules += int64(len(sel.Mask))
	}
}

// prewarmEval runs one masked evaluation through the selected engine's
// organic code path: same conversion cache, same statement execution,
// same decision fields. The mask only skips rules the index proved
// cannot fire, and engines return the first firing rule in order, so the
// masked decision is identical to the exhaustive one.
func (s *Site) prewarmEval(st *siteState, sel prefindex.Selection, policy string, engine Engine) (decision.Outcome, error) {
	m := resource.NewMeter(context.Background(), s.matchBudget)
	switch engine {
	case EngineNative:
		return s.prewarmNative(st, sel.Pref, policy, sel.Mask, m)
	case EngineSQL:
		return s.prewarmSQL(st, sel.Pref, policy, sel.Mask, m)
	case EngineXTable:
		return s.prewarmXTable(st, sel.Pref, policy, sel.Mask, m)
	case EngineXQuery:
		return s.prewarmXQuery(st, sel.Pref, policy, sel.Mask, m)
	}
	return decision.Outcome{}, fmt.Errorf("core: unknown engine %d", engine)
}

// maskFor guards against a conversion whose rule count disagrees with
// the index's (it cannot happen — both parse the same document — but a
// silent mismatch must degrade to exhaustive evaluation, never to
// skipping the wrong rule).
func maskFor(mask []bool, n int) []bool {
	if len(mask) != n {
		return nil
	}
	return mask
}

func (s *Site) prewarmNative(st *siteState, p *prefindex.Pref, policy string, mask []bool, m *resource.Meter) (decision.Outcome, error) {
	conv, err := s.nativeConversion(p.XML)
	if err != nil {
		return decision.Outcome{}, err
	}
	rs := conv.rs
	var remap []int
	if mask = maskFor(mask, len(rs.Rules)); mask != nil {
		sub := &appel.Ruleset{}
		for i, on := range mask {
			if on {
				sub.Rules = append(sub.Rules, rs.Rules[i])
				remap = append(remap, i)
			}
		}
		rs = sub
	}
	dec, err := s.native.MatchMeter(rs, st.policyXML[policy], m)
	if err != nil {
		return decision.Outcome{}, err
	}
	idx := dec.RuleIndex
	if remap != nil {
		idx = remap[dec.RuleIndex]
	}
	return decision.Outcome{
		Behavior:        dec.Behavior,
		RuleIndex:       idx,
		RuleDescription: ruleDescription(conv.rs, idx),
		Prompt:          dec.Prompt,
	}, nil
}

func (s *Site) prewarmSQL(st *siteState, p *prefindex.Pref, policy string, mask []bool, m *resource.Meter) (decision.Outcome, error) {
	conv, err := s.sqlConversion(st, p.XML)
	if err != nil {
		return decision.Outcome{}, err
	}
	mask = maskFor(mask, len(conv.rules))
	ctx := resource.WithMeter(context.Background(), m)
	id := int64(st.ids[policy])
	for i, rule := range conv.rules {
		if mask != nil && !mask[i] {
			continue
		}
		fired, err := st.optDB.QueryExistsStmtCtx(ctx, rule.stmt, reldb.Int(id))
		if err != nil {
			return decision.Outcome{}, err
		}
		if fired {
			return decision.Outcome{
				Behavior:        rule.behavior,
				RuleIndex:       i,
				RuleDescription: rule.ruleDescription,
				Prompt:          rule.prompt,
			}, nil
		}
	}
	return decision.Outcome{}, sqlgen.ErrNoRuleFired
}

func (s *Site) prewarmXTable(st *siteState, p *prefindex.Pref, policy string, mask []bool, m *resource.Meter) (decision.Outcome, error) {
	conv, err := s.xtableConversion(st, p.XML, policy)
	if err != nil {
		return decision.Outcome{}, err
	}
	mask = maskFor(mask, len(conv.rules))
	ctx := resource.WithMeter(context.Background(), m)
	for i, rule := range conv.rules {
		if mask != nil && !mask[i] {
			continue
		}
		fired, err := st.genDB.QueryExistsStmtCtx(ctx, rule.stmt)
		if err != nil {
			return decision.Outcome{}, err
		}
		if fired {
			return decision.Outcome{
				Behavior:        rule.behavior,
				RuleIndex:       i,
				RuleDescription: ruleDescription(conv.rs, i),
				Prompt:          rule.prompt,
			}, nil
		}
	}
	return decision.Outcome{}, appelengine.ErrNoRuleFired
}

func (s *Site) prewarmXQuery(st *siteState, p *prefindex.Pref, policy string, mask []bool, m *resource.Meter) (decision.Outcome, error) {
	conv, err := s.xqueryConversion(p.XML)
	if err != nil {
		return decision.Outcome{}, err
	}
	mask = maskFor(mask, len(conv.rules))
	ev := xquery.NewEvaluator(st.resolvers[policy]).WithMeter(m)
	for i, rule := range conv.rules {
		if mask != nil && !mask[i] {
			continue
		}
		out, err := ev.Run(rule.query)
		if err != nil {
			return decision.Outcome{}, err
		}
		if out != "" {
			return decision.Outcome{
				Behavior:        out,
				RuleIndex:       i,
				RuleDescription: ruleDescription(conv.rs, i),
				Prompt:          rule.prompt,
			}, nil
		}
	}
	return decision.Outcome{}, appelengine.ErrNoRuleFired
}
