// Package core is the library's public face: the server-centric P3P
// architecture the paper proposes. A Site owns a web site's privacy
// metadata — its policies shredded into relational tables (both schemas),
// stored natively as augmented XML, and its reference file — and matches
// incoming APPEL preferences against them with any of the paper's four
// engine variants:
//
//   - EngineNative: the client-centric baseline (JRC-style APPEL engine,
//     parsing and augmenting the policy on every match).
//   - EngineSQL: APPEL translated to SQL over the optimized schema
//     (Figure 14/15) and run on the relational engine.
//   - EngineXTable: APPEL translated to XQuery (Figure 17), then to SQL
//     over the generic schema through the XML-view reconstruction layer
//     (the XTABLE path of the experiments).
//   - EngineXQuery: APPEL translated to XQuery and evaluated natively
//     against the XML store (the variation the paper could not test).
//
// Decisions report conversion and query time separately, the split
// Figures 20 and 21 use.
package core

import (
	"context"
	"fmt"
	"hash/fnv"
	"sort"
	"strings"
	"sync"
	"sync/atomic"
	"time"

	"p3pdb/internal/appel"
	"p3pdb/internal/appelengine"
	"p3pdb/internal/decision"
	"p3pdb/internal/faultkit"
	"p3pdb/internal/obs"
	"p3pdb/internal/p3p"
	"p3pdb/internal/reffile"
	"p3pdb/internal/reldb"
	"p3pdb/internal/resource"
	"p3pdb/internal/sqlgen"
	"p3pdb/internal/xquery"
)

// Engine selects the preference-matching implementation.
type Engine int

// The four matching engines of the experiments.
const (
	EngineNative Engine = iota
	EngineSQL
	EngineXTable
	EngineXQuery
)

// String names the engine as the paper's figures do.
func (e Engine) String() string {
	switch e {
	case EngineNative:
		return "APPEL Engine"
	case EngineSQL:
		return "SQL"
	case EngineXTable:
		return "XQuery"
	case EngineXQuery:
		return "XQuery (native store)"
	}
	return fmt.Sprintf("Engine(%d)", int(e))
}

// Engines lists all engines in display order.
var Engines = []Engine{EngineNative, EngineSQL, EngineXTable, EngineXQuery}

// ParseEngine resolves an engine from its short command-line name.
func ParseEngine(name string) (Engine, error) {
	switch strings.ToLower(name) {
	case "native", "appel":
		return EngineNative, nil
	case "sql":
		return EngineSQL, nil
	case "xtable", "xquery-sql":
		return EngineXTable, nil
	case "xquery", "xquery-native":
		return EngineXQuery, nil
	}
	return 0, fmt.Errorf("core: unknown engine %q (want native, sql, xtable, or xquery)", name)
}

// ShortName is the command-line name for the engine.
func (e Engine) ShortName() string {
	switch e {
	case EngineNative:
		return "native"
	case EngineSQL:
		return "sql"
	case EngineXTable:
		return "xtable"
	case EngineXQuery:
		return "xquery"
	}
	return "unknown"
}

// Options configure a Site.
type Options struct {
	// DB passes options to the relational engine (ablations).
	DB reldb.Options
	// SkipAugmentationInNative disables category augmentation in the
	// native engine (the §6.3.2 profiling ablation).
	SkipAugmentationInNative bool
	// DisableConversionCache turns off the per-Site compiled-preference
	// cache, forcing the full parse/translate/prepare pipeline on every
	// match (ablations and the uncached baseline).
	DisableConversionCache bool
	// ConversionCacheSize bounds the conversion cache; zero means the
	// engine default (256 entries).
	ConversionCacheSize int
	// DisableDecisionCache turns off the per-Site decision cache, so
	// every match — repeat or not — runs through an engine. The engines
	// stay the source of truth for ablations, differential tests, and
	// deployments that want per-match step accounting.
	DisableDecisionCache bool
	// DecisionCacheSize bounds the decision cache in slots (rounded up
	// to a power of two); zero means the engine default
	// (decision.DefaultSlots).
	DecisionCacheSize int
	// MatchBudget bounds the work one preference match may perform,
	// counted in evaluator steps (rows visited by the relational
	// engines, nodes walked by the XQuery evaluator, element
	// comparisons in the native engine). One budget spans all of a
	// match's rule evaluations; exceeding it aborts the match with
	// resource.ErrBudgetExceeded. Zero means unlimited. This is the
	// worst-case bound a production deployment needs: an adversarial or
	// merely deep APPEL rule otherwise translates into nested-EXISTS
	// evaluation of unbounded cost on the page-access hot path.
	MatchBudget int64
	// PerPolicyTimeout bounds each per-policy match inside MatchAllCtx;
	// zero means no per-policy deadline beyond the batch context's.
	PerPolicyTimeout time.Duration
}

// Decision is the outcome of matching a preference against a policy.
type Decision struct {
	// Behavior is the fired rule's behavior: request, limited, or block.
	Behavior string
	// RuleIndex is the zero-based index of the rule that fired.
	RuleIndex int
	// RuleDescription is the fired rule's description attribute.
	RuleDescription string
	// Prompt mirrors the fired rule's prompt attribute.
	Prompt bool
	// PolicyName names the policy that was matched.
	PolicyName string
	// Engine is the implementation that produced the decision.
	Engine Engine
	// Convert is the time spent translating the preference (parsing the
	// APPEL document and generating SQL/XQuery). Zero conversion happens
	// for the native engine, which interprets APPEL directly.
	Convert time.Duration
	// Query is the time spent evaluating the translated (or native)
	// preference against the policy.
	Query time.Duration
	// Cached reports that the decision was served from the decision
	// cache: the engines never ran, and Convert and Query are zero.
	Cached bool
}

// Blocked reports whether the site should withhold the page.
func (d Decision) Blocked() bool { return d.Behavior == "block" }

// ConflictStat is one row of the site-owner analytics the server-centric
// architecture enables (Section 4.2): how often a given preference rule
// blocked a given policy.
type ConflictStat struct {
	PolicyName      string
	RuleDescription string
	Count           int
}

// Site is a web site's installed privacy metadata plus the matching
// engines.
//
// Concurrency: the installed metadata lives in an immutable siteState
// published through an atomic pointer. Matches load the pointer once and
// run lock-free against that snapshot; installs, removes, and bulk
// replaces build the successor state aside (state.go) and swap it in,
// so hot policy reload never blocks the read path. The conflict
// analytics — which matches write to — live under their own mutex, and
// the conversion cache synchronizes itself and survives swaps.
type Site struct {
	state   atomic.Pointer[siteState]
	writeMu sync.Mutex

	// opts is retained to construct each snapshot's backends with the
	// same engine options.
	opts   Options
	native *appelengine.Engine

	// conv caches conversion artifacts per (engine, preference text);
	// nil when Options.DisableConversionCache is set.
	conv *convCache

	// artifacts caches per-policy materialization products (shred
	// fragments, augmented DOM, compact summary) across snapshot
	// rebuilds, keyed by the immutable parsed-policy pointer. Guarded
	// by writeMu; swept after each publish to the policies the new
	// snapshot holds. See policyArtifacts in state.go.
	artifacts map[*p3p.Policy]*policyArtifacts

	// decisions caches whole match outcomes per (preference, policy,
	// engine, snapshot generation); nil when
	// Options.DisableDecisionCache is set. A hit skips the engines
	// entirely; the generation key invalidates every entry the moment a
	// policy write publishes a new snapshot.
	decisions *decision.Cache

	// matchBudget and perPolicyTimeout are the resource-governance
	// knobs from Options, immutable after construction.
	matchBudget      int64
	perPolicyTimeout time.Duration

	// decForcedMisses counts this Site's decision-cache lookups skipped
	// by an armed decision.lookup fault. Kept apart from the cache's own
	// miss counter so the warm-rate metric only reflects natural misses.
	decForcedMisses atomic.Int64

	// prewarmMu guards the pre-warm tallies (prewarm.go); writes happen
	// under writeMu, reads come from metrics handlers.
	prewarmMu   sync.Mutex
	prewarmCum  PrewarmStats
	prewarmLast PrewarmStats

	// conflicts is the site-owner analytics tally (policy -> rule
	// description -> blocks), sharded by policy so that a worst-case
	// all-blocking workload does not serialize the otherwise lock-free
	// read path on one analytics mutex.
	conflicts [conflictShards]conflictShard
}

// conflictShards spreads the analytics tally; blocks on distinct
// policies land on distinct mutexes.
const conflictShards = 8

type conflictShard struct {
	mu sync.Mutex
	m  map[string]map[string]int
}

func conflictShardFor(policy string) int {
	h := fnv.New32a()
	h.Write([]byte(policy))
	return int(h.Sum32() % conflictShards)
}

// NewSite returns an empty site with default options.
func NewSite() (*Site, error) { return NewSiteWithOptions(Options{}) }

// NewSiteWithOptions returns an empty site.
func NewSiteWithOptions(opts Options) (*Site, error) {
	s := &Site{
		opts:             opts,
		native:           appelengine.NewWithOptions(appelengine.Options{SkipAugmentation: opts.SkipAugmentationInNative}),
		matchBudget:      opts.MatchBudget,
		perPolicyTimeout: opts.PerPolicyTimeout,
	}
	for i := range s.conflicts {
		s.conflicts[i].m = map[string]map[string]int{}
	}
	if !opts.DisableConversionCache {
		s.conv = newConvCache(opts.ConversionCacheSize)
	}
	if !opts.DisableDecisionCache {
		s.decisions = decision.New(opts.DecisionCacheSize)
	}
	st, err := s.materialize(newDraft())
	if err != nil {
		return nil, err
	}
	s.state.Store(st)
	return s, nil
}

// InstallPolicy installs one parsed policy into every backend: shredded
// into both relational schemas (with install-time augmentation), stored as
// augmented XML in the native store, and kept as raw text for the
// client-centric baseline. This is the Figure 5 step, performed as a
// snapshot swap: in-flight matches keep the previous state.
func (s *Site) InstallPolicy(pol *p3p.Policy) error {
	return s.ApplyBatch([]Mutation{InstallPolicyMutation(pol)})
}

// InstallPolicyXML parses a policy document (POLICY or POLICIES) and
// installs every policy in it, returning their names. The install is
// all-or-nothing: a failure anywhere in the document leaves the site
// state untouched, because the new snapshot is only published after
// every policy installed cleanly.
func (s *Site) InstallPolicyXML(doc string) ([]string, error) {
	pols, err := p3p.ParsePolicies(doc)
	if err != nil {
		return nil, err
	}
	if err := s.ApplyBatch([]Mutation{InstallPoliciesMutation(pols)}); err != nil {
		return nil, err
	}
	names := make([]string, len(pols))
	for i, pol := range pols {
		names[i] = pol.Name
	}
	return names, nil
}

// RemovePolicy removes a policy version from every backend, enabling the
// policy versioning the paper lists among the architecture's advantages.
func (s *Site) RemovePolicy(name string) error {
	// The mutation carries a conversion-cache purge for this policy:
	// cached XTABLE translations embed its id, and a reinstall under the
	// same name must not serve stale queries. (Ids are never reused, and
	// xtable cache hits re-validate the id, so this is hygiene rather
	// than a correctness requirement.)
	return s.ApplyBatch([]Mutation{RemovePolicyMutation(name)})
}

// ReplacePolicies atomically replaces the site's entire installed policy
// set — and its reference file — in one snapshot swap: the hot-reload
// primitive a multi-tenant host uses when a site's deployed policy
// directory changes. Matches running during the call complete against
// the old set; matches starting after it see only the new set. A nil rf
// leaves the site without a reference file. On any failure the previous
// state is kept in full.
func (s *Site) ReplacePolicies(pols []*p3p.Policy, rf *reffile.RefFile) error {
	// The mutation purges every id-bound XTABLE entry after the publish:
	// each policy id was reassigned. Policy-independent entries stay.
	return s.ApplyBatch([]Mutation{ReplacePoliciesMutation(pols, rf)})
}

// InstallReferenceFile installs the site's reference file, resolving every
// POLICY-REF against the installed policies.
func (s *Site) InstallReferenceFile(rf *reffile.RefFile) error {
	return s.mutate(func(d *stateDraft) error { return d.setRefFile(rf) })
}

// InstallReferenceFileXML parses and installs a reference file document.
func (s *Site) InstallReferenceFileXML(doc string) error {
	rf, err := reffile.Parse(doc)
	if err != nil {
		return err
	}
	return s.InstallReferenceFile(rf)
}

// PolicyNames returns the installed policy names, sorted.
func (s *Site) PolicyNames() []string {
	st := s.state.Load()
	names := make([]string, 0, len(st.policyXML))
	for n := range st.policyXML {
		names = append(names, n)
	}
	sort.Strings(names)
	return names
}

// PolicyXML returns the raw text of an installed policy (what a
// client-centric agent would fetch).
func (s *Site) PolicyXML(name string) (string, error) {
	st := s.state.Load()
	xml, ok := st.policyXML[name]
	if !ok {
		return "", fmt.Errorf("core: policy %q not installed", name)
	}
	return xml, nil
}

// CompactPolicy returns the compact (CP-header) form of an installed
// policy, the token summary IE6-era agents evaluated for cookie decisions
// (Section 3.2 of the paper).
// The form is computed once at snapshot publication (state.go) and
// stored on the immutable siteState, so serving the P3P header is a map
// read, not a per-request conversion.
func (s *Site) CompactPolicy(name string) (string, error) {
	st := s.state.Load()
	cs, ok := st.compact[name]
	if !ok {
		return "", fmt.Errorf("core: policy %q not installed", name)
	}
	if cs.cp == "" && cs.err != nil {
		return "", cs.err
	}
	return cs.cp, nil
}

// ReferenceFileXML returns the installed reference file document, which
// the hybrid architecture's clients cache so that URI resolution happens
// client-side while matching stays on the server (Section 4.2).
func (s *Site) ReferenceFileXML() (string, error) {
	st := s.state.Load()
	if st.refFile == nil {
		return "", fmt.Errorf("core: no reference file installed")
	}
	return st.refFile.String(), nil
}

// StateExport is a consistent copy of a site's installed documents —
// every policy's rendered XML in install order plus the reference file —
// read from one snapshot. The durability layer checkpoints it and
// rebuilds sites from it; install order is preserved so a recovered
// site assigns policy ids in the same sequence.
type StateExport struct {
	// Order lists policy names in install order.
	Order []string
	// PolicyXML maps each installed policy name to its document.
	PolicyXML map[string]string
	// ReferenceXML is the reference-file document, empty when none is
	// installed.
	ReferenceXML string
	// Prefs lists the registered preference rulesets in registration
	// order; restores rebuild the preference index from them.
	Prefs []PrefExport
}

// PrefExport is one registered preference in an export: its name, the
// verbatim APPEL document, and the engines it pre-warms under.
type PrefExport struct {
	Name    string
	XML     string
	Engines []string
}

// ExportState captures the site's current logical state from a single
// snapshot load: policies and reference file are mutually consistent
// even under concurrent writers.
func (s *Site) ExportState() StateExport {
	st := s.state.Load()
	exp := StateExport{
		Order:     append([]string(nil), st.order...),
		PolicyXML: make(map[string]string, len(st.policyXML)),
	}
	for n, xml := range st.policyXML {
		exp.PolicyXML[n] = xml
	}
	if st.refFile != nil {
		exp.ReferenceXML = st.refFile.String()
	}
	for _, p := range st.prefs.Prefs() {
		exp.Prefs = append(exp.Prefs, PrefExport{
			Name: p.Name, XML: p.XML, Engines: append([]string(nil), p.Engines...),
		})
	}
	return exp
}

// RestoreState rebuilds the site's entire state from an export captured
// by ExportState, in one all-or-nothing snapshot swap. Unlike
// ReplacePolicies it does not re-validate the reference file against the
// policy set: RemovePolicy legitimately leaves POLICY-REFs dangling
// (resolution reports them per lookup), so any state ExportState could
// observe must restore verbatim — the durability layer's checkpoints and
// rollbacks depend on that.
func (s *Site) RestoreState(exp StateExport) error {
	m, err := RestoreStateMutation(exp)
	if err != nil {
		return err
	}
	// The mutation purges every id-bound conversion-cache entry, as in
	// ReplacePolicies.
	return s.ApplyBatch([]Mutation{m})
}

// DB exposes the optimized-schema database of the current snapshot for
// inspection and the analytics example. The returned database is frozen:
// later policy writes publish a new snapshot with a new database rather
// than mutating this one.
func (s *Site) DB() *reldb.DB { return s.state.Load().optDB }

// GenericDB exposes the generic-schema database of the current snapshot.
func (s *Site) GenericDB() *reldb.DB { return s.state.Load().genDB }

func policyDoc(name string) string { return "policy:" + name }

// PolicyForURI resolves which policy governs a URI, via the reference
// file.
func (s *Site) PolicyForURI(uri string) (string, error) {
	return s.state.Load().policyForURI(uri)
}

// MatchURI matches a preference against the policy covering a URI,
// using the selected engine. This is the Figure 6 step.
func (s *Site) MatchURI(prefXML, uri string, engine Engine) (Decision, error) {
	return s.MatchURICtx(context.Background(), prefXML, uri, engine)
}

// MatchURICtx is MatchURI governed by a context: cancellation or
// deadline expiry aborts evaluation with a resource.ErrCanceled-wrapping
// error, and the Site's match budget (Options.MatchBudget) aborts
// runaway preferences with resource.ErrBudgetExceeded.
func (s *Site) MatchURICtx(ctx context.Context, prefXML, uri string, engine Engine) (Decision, error) {
	st := s.state.Load()
	name, err := st.policyForURI(uri)
	if err != nil {
		return Decision{}, err
	}
	return s.match(ctx, st, prefXML, name, engine)
}

// PolicyForCookie resolves which policy governs a cookie by name, via the
// reference file's COOKIE-INCLUDE/COOKIE-EXCLUDE patterns.
func (s *Site) PolicyForCookie(cookieName string) (string, error) {
	return s.state.Load().policyForCookie(cookieName)
}

// MatchCookie matches a preference against the policy covering a cookie:
// the server-centric counterpart of IE6's cookie checking (Section 3.2 of
// the paper), driven by the reference file's cookie patterns instead of
// compact-policy headers.
func (s *Site) MatchCookie(prefXML, cookieName string, engine Engine) (Decision, error) {
	return s.MatchCookieCtx(context.Background(), prefXML, cookieName, engine)
}

// MatchCookieCtx is MatchCookie governed by a context (see MatchURICtx).
func (s *Site) MatchCookieCtx(ctx context.Context, prefXML, cookieName string, engine Engine) (Decision, error) {
	st := s.state.Load()
	name, err := st.policyForCookie(cookieName)
	if err != nil {
		return Decision{}, err
	}
	return s.match(ctx, st, prefXML, name, engine)
}

// MatchPolicy matches a preference directly against a named policy.
func (s *Site) MatchPolicy(prefXML, policyName string, engine Engine) (Decision, error) {
	return s.MatchPolicyCtx(context.Background(), prefXML, policyName, engine)
}

// MatchPolicyCtx is MatchPolicy governed by a context (see MatchURICtx).
func (s *Site) MatchPolicyCtx(ctx context.Context, prefXML, policyName string, engine Engine) (Decision, error) {
	return s.matchPolicyState(ctx, s.state.Load(), prefXML, policyName, engine)
}

// matchPolicyState is MatchPolicyCtx against a caller-chosen snapshot,
// so a batch (MatchAllCtx) evaluates every policy against the same one.
func (s *Site) matchPolicyState(ctx context.Context, st *siteState, prefXML, policyName string, engine Engine) (Decision, error) {
	if _, ok := st.policyXML[policyName]; !ok {
		return Decision{}, fmt.Errorf("core: policy %q not installed", policyName)
	}
	return s.match(ctx, st, prefXML, policyName, engine)
}

// engineObs is one engine's observability instrument set, resolved once
// at init so match only touches atomics.
type engineObs struct {
	total   *obs.Counter   // matches attempted
	errs    *obs.Counter   // matches that returned an error
	steps   *obs.Counter   // evaluator steps charged (governed matches)
	latency *obs.Histogram // whole-match wall time, µs
	convert *obs.Histogram // translation time, µs (successful matches)
	query   *obs.Histogram // evaluation time, µs (successful matches)
}

// matchObs holds per-engine instruments, indexed by Engine. The names
// ("core.match.sql.total", ...) are the reconciliation anchor: the
// per-engine totals must add up to the server's request counts, which
// the metrics invariant tests assert.
var matchObs = func() [4]engineObs {
	var a [4]engineObs
	for _, e := range Engines {
		n := "core.match." + e.ShortName()
		a[e] = engineObs{
			total:   obs.GetCounter(n + ".total"),
			errs:    obs.GetCounter(n + ".errors"),
			steps:   obs.GetCounter(n + ".steps"),
			latency: obs.GetHistogram(n + ".latency_us"),
			convert: obs.GetHistogram(n + ".convert_us"),
			query:   obs.GetHistogram(n + ".query_us"),
		}
	}
	return a
}()

// obsDecForcedMiss counts decision-cache lookups skipped by an armed
// decision.lookup fault (the forced-miss drill).
var obsDecForcedMiss = obs.GetCounter("decision.forced_misses")

// decisionLookup probes the decision cache for a completed match against
// this exact snapshot. On a hit it performs the same per-engine
// observability accounting as an engine match — totals and latency move,
// convert and query record zero — so the metrics reconciliation
// invariants hold whether or not the engines ran. An armed
// decision.lookup fault forces a miss instead of failing the match,
// proving the engine fallback stays correct when the cache degrades.
func (s *Site) decisionLookup(ctx context.Context, st *siteState, prefXML, policyName string, engine Engine) (Decision, bool) {
	if s.decisions == nil {
		return Decision{}, false
	}
	if err := faultkit.Inject(faultkit.PointDecisionLookup); err != nil {
		obsDecForcedMiss.Inc()
		s.decForcedMisses.Add(1)
		return Decision{}, false
	}
	start := time.Now()
	out, ok := s.decisions.Get(decision.Key{
		Gen: st.gen, Engine: uint8(engine), Policy: policyName, Pref: prefXML,
	})
	if !ok {
		return Decision{}, false
	}
	d := Decision{
		Behavior:        out.Behavior,
		RuleIndex:       out.RuleIndex,
		RuleDescription: out.RuleDescription,
		Prompt:          out.Prompt,
		PolicyName:      policyName,
		Engine:          engine,
		Cached:          true,
	}
	io := &matchObs[engine]
	io.total.Inc()
	io.latency.ObserveDuration(time.Since(start))
	io.convert.Observe(0)
	io.query.Observe(0)
	span := obs.SpanFromContext(ctx)
	span.Annotate("engine", engine.ShortName())
	span.Annotate("policy", policyName)
	span.Annotate("decision_cache", "hit")
	s.recordConflict(d)
	return d, true
}

// decisionStore publishes a successful engine decision for future
// lookups against the same snapshot.
func (s *Site) decisionStore(st *siteState, prefXML, policyName string, engine Engine, d Decision) {
	if s.decisions == nil {
		return
	}
	s.decisions.Put(decision.Key{
		Gen: st.gen, Engine: uint8(engine), Policy: policyName, Pref: prefXML,
	}, decision.Outcome{
		Behavior:        d.Behavior,
		RuleIndex:       d.RuleIndex,
		RuleDescription: d.RuleDescription,
		Prompt:          d.Prompt,
	})
}

// DecisionCacheStats reports the Site's decision-cache hit/miss/store
// counters and current live-entry count. All zeros when the cache is
// disabled.
func (s *Site) DecisionCacheStats() (hits, misses, stores int64, size int) {
	if s.decisions == nil {
		return 0, 0, 0, 0
	}
	hits, misses, stores = s.decisions.Stats()
	return hits, misses, stores, s.decisions.Len()
}

// DecisionCacheDetail is the honest breakdown of the Site's
// decision-cache traffic: Misses counts only natural misses (a lookup
// that probed the cache and found nothing), ForcedMisses the lookups an
// armed decision.lookup fault skipped, and Preseeds the entries the
// pre-warm pass stored ahead of a snapshot swap. Warm-rate metrics must
// use Misses, not Misses+ForcedMisses — a drill that forces misses would
// otherwise slander the pre-warm pass.
type DecisionCacheDetail struct {
	Hits         int64 `json:"hits"`
	Misses       int64 `json:"misses"`
	ForcedMisses int64 `json:"forcedMisses"`
	Stores       int64 `json:"stores"`
	Preseeds     int64 `json:"preseeds"`
	Size         int   `json:"size"`
}

// DecisionCacheDetail reports the decision-cache breakdown; zero when
// the cache is disabled.
func (s *Site) DecisionCacheDetail() DecisionCacheDetail {
	if s.decisions == nil {
		return DecisionCacheDetail{}
	}
	hits, misses, stores := s.decisions.Stats()
	return DecisionCacheDetail{
		Hits:         hits,
		Misses:       misses,
		ForcedMisses: s.decForcedMisses.Load(),
		Stores:       stores,
		Preseeds:     s.decisions.Preseeds(),
		Size:         s.decisions.Len(),
	}
}

// match runs one preference match against one snapshot. This is the hot
// path: it acquires no site-level lock — everything it reads hangs off
// the immutable st. Repeat matches are answered by the decision cache
// without touching an engine; only the first occurrence of a
// (preference, policy, engine) triple per snapshot pays for evaluation.
func (s *Site) match(ctx context.Context, st *siteState, prefXML, policyName string, engine Engine) (Decision, error) {
	if d, ok := s.decisionLookup(ctx, st, prefXML, policyName, engine); ok {
		return d, nil
	}
	// One meter spans all of this match's rule evaluations, whatever the
	// engine, so the budget bounds the whole preference rather than one
	// statement. Nil (free) when there is neither a budget nor a
	// cancellable context.
	m := resource.NewMeter(ctx, s.matchBudget)
	start := time.Now()
	var d Decision
	var err error
	switch engine {
	case EngineNative:
		d, err = s.matchNative(st, prefXML, policyName, m)
	case EngineSQL:
		d, err = s.matchSQL(ctx, st, prefXML, policyName, m)
	case EngineXTable:
		d, err = s.matchXTable(ctx, st, prefXML, policyName, m)
	case EngineXQuery:
		d, err = s.matchXQueryNative(st, prefXML, policyName, m)
	default:
		return Decision{}, fmt.Errorf("core: unknown engine %d", engine)
	}
	io := &matchObs[engine]
	io.total.Inc()
	io.steps.Add(m.Steps())
	io.latency.ObserveDuration(time.Since(start))
	// Annotate the request span (if the caller started one): all Span
	// methods are nil-safe, so unobserved matches pay nothing here.
	span := obs.SpanFromContext(ctx)
	span.Annotate("engine", engine.ShortName())
	span.Annotate("policy", policyName)
	span.AddSteps(m.Steps())
	if err != nil {
		io.errs.Inc()
		return Decision{}, err
	}
	io.convert.ObserveDuration(d.Convert)
	io.query.ObserveDuration(d.Query)
	d.PolicyName = policyName
	d.Engine = engine
	s.recordConflict(d)
	s.decisionStore(st, prefXML, policyName, engine, d)
	return d, nil
}

// matchNative runs the client-centric baseline: the preference is
// interpreted directly and the policy is fetched as text, parsed, and
// augmented per match. Only the preference parse goes through the
// conversion cache; the per-match policy processing — the baseline's
// defining cost — is kept faithful to the paper.
func (s *Site) matchNative(st *siteState, prefXML, policyName string, m *resource.Meter) (Decision, error) {
	start := time.Now()
	conv, err := s.nativeConversion(prefXML)
	if err != nil {
		return Decision{}, err
	}
	dec, err := s.native.MatchMeter(conv.rs, st.policyXML[policyName], m)
	if err != nil {
		return Decision{}, err
	}
	return Decision{
		Behavior:        dec.Behavior,
		RuleIndex:       dec.RuleIndex,
		RuleDescription: ruleDescription(conv.rs, dec.RuleIndex),
		Prompt:          dec.Prompt,
		Query:           time.Since(start),
	}, nil
}

// matchSQL runs the preference as SQL over the optimized schema. The
// translation is fetched from the conversion cache (prepared once with
// the policy id as a parameter, serving every policy); a cache hit
// reports near-zero Convert, leaving only query execution on the
// per-visit path — the §6.3.2 compiled-preferences deployment.
func (s *Site) matchSQL(ctx context.Context, st *siteState, prefXML, policyName string, m *resource.Meter) (Decision, error) {
	convertStart := time.Now()
	conv, err := s.sqlConversion(st, prefXML)
	if err != nil {
		return Decision{}, err
	}
	convert := time.Since(convertStart)

	// The match meter rides the context into the relational engine, so
	// one budget spans every rule statement.
	ctx = resource.WithMeter(ctx, m)
	id := int64(st.ids[policyName])
	queryStart := time.Now()
	for i, rule := range conv.rules {
		fired, err := st.optDB.QueryExistsStmtCtx(ctx, rule.stmt, reldb.Int(id))
		if err != nil {
			return Decision{}, fmt.Errorf("core: rule %d: %w", i+1, err)
		}
		if fired {
			return Decision{
				Behavior:        rule.behavior,
				RuleIndex:       i,
				RuleDescription: rule.ruleDescription,
				Prompt:          rule.prompt,
				Convert:         convert,
				Query:           time.Since(queryStart),
			}, nil
		}
	}
	return Decision{}, sqlgen.ErrNoRuleFired
}

// matchXTable runs the preference as XQuery translated to SQL over the
// generic schema through the XML-view layer. The translation embeds the
// policy id, so its cache entries are per (preference, policy) and
// re-validated against the snapshot's id on every hit.
func (s *Site) matchXTable(ctx context.Context, st *siteState, prefXML, policyName string, m *resource.Meter) (Decision, error) {
	convertStart := time.Now()
	conv, err := s.xtableConversion(st, prefXML, policyName)
	if err != nil {
		return Decision{}, err
	}
	convert := time.Since(convertStart)

	ctx = resource.WithMeter(ctx, m)
	queryStart := time.Now()
	for i, rule := range conv.rules {
		ok, err := st.genDB.QueryExistsStmtCtx(ctx, rule.stmt)
		if err != nil {
			return Decision{}, fmt.Errorf("core: rule %d: %w", i+1, err)
		}
		if ok {
			return Decision{
				Behavior:        rule.behavior,
				RuleIndex:       i,
				RuleDescription: ruleDescription(conv.rs, i),
				Prompt:          rule.prompt,
				Convert:         convert,
				Query:           time.Since(queryStart),
			}, nil
		}
	}
	return Decision{}, appelengine.ErrNoRuleFired
}

// matchXQueryNative evaluates the preference's XQuery translation against
// the native XML store. Translation and query parsing go through the
// conversion cache; the policy is bound per match via the resolver alias.
func (s *Site) matchXQueryNative(st *siteState, prefXML, policyName string, m *resource.Meter) (Decision, error) {
	convertStart := time.Now()
	conv, err := s.xqueryConversion(prefXML)
	if err != nil {
		return Decision{}, err
	}
	convert := time.Since(convertStart)

	queryStart := time.Now()
	// The per-policy resolver was prebuilt at snapshot materialization,
	// so binding the policy costs a map lookup instead of an alias map
	// and closure allocation per match.
	ev := xquery.NewEvaluator(st.resolvers[policyName]).WithMeter(m)
	for i, rule := range conv.rules {
		out, err := ev.Run(rule.query)
		if err != nil {
			return Decision{}, err
		}
		if out != "" {
			return Decision{
				Behavior:        out,
				RuleIndex:       i,
				RuleDescription: ruleDescription(conv.rs, i),
				Prompt:          rule.prompt,
				Convert:         convert,
				Query:           time.Since(queryStart),
			}, nil
		}
	}
	return Decision{}, appelengine.ErrNoRuleFired
}

func ruleDescription(rs *appel.Ruleset, idx int) string {
	if idx < 0 || idx >= len(rs.Rules) {
		return ""
	}
	return rs.Rules[idx].Description
}

// recordConflict feeds the site-owner analytics: block decisions are
// tallied per policy and rule. The tally is sharded by policy, so
// concurrent blocked matches on distinct policies take distinct mutexes
// and the lock-free read path stays parallel even when every decision
// blocks.
func (s *Site) recordConflict(d Decision) {
	if !d.Blocked() {
		return
	}
	sh := &s.conflicts[conflictShardFor(d.PolicyName)]
	sh.mu.Lock()
	defer sh.mu.Unlock()
	m, ok := sh.m[d.PolicyName]
	if !ok {
		m = map[string]int{}
		sh.m[d.PolicyName] = m
	}
	desc := d.RuleDescription
	if desc == "" {
		desc = fmt.Sprintf("rule %d", d.RuleIndex+1)
	}
	m[desc]++
}

// Analytics returns the conflict statistics, most-blocked first: which
// policies conflict with which user preference rules — the information the
// client-centric architecture cannot give site owners (Section 4.2).
func (s *Site) Analytics() []ConflictStat {
	var out []ConflictStat
	for i := range s.conflicts {
		sh := &s.conflicts[i]
		sh.mu.Lock()
		for pol, rules := range sh.m {
			for desc, n := range rules {
				out = append(out, ConflictStat{PolicyName: pol, RuleDescription: desc, Count: n})
			}
		}
		sh.mu.Unlock()
	}
	sort.Slice(out, func(i, j int) bool {
		if out[i].Count != out[j].Count {
			return out[i].Count > out[j].Count
		}
		if out[i].PolicyName != out[j].PolicyName {
			return out[i].PolicyName < out[j].PolicyName
		}
		return out[i].RuleDescription < out[j].RuleDescription
	})
	return out
}

// ResetAnalytics clears the conflict statistics.
func (s *Site) ResetAnalytics() {
	for i := range s.conflicts {
		sh := &s.conflicts[i]
		sh.mu.Lock()
		sh.m = map[string]map[string]int{}
		sh.mu.Unlock()
	}
}
