package core

import (
	"fmt"
	"sync"
	"testing"

	"p3pdb/internal/workload"
)

// TestConcurrentMatching exercises the Site under concurrent matching on
// every engine while policies are being added and removed: the run must
// be race-free (go test -race) and every decision must be one of the
// legal behaviors.
func TestConcurrentMatching(t *testing.T) {
	// In -short mode the test still runs — CI's race build depends on it —
	// but with fewer iterations per goroutine.
	iters := 30
	if testing.Short() {
		iters = 5
	}
	d := workload.Generate(42)
	s, err := NewSite()
	if err != nil {
		t.Fatal(err)
	}
	for _, pol := range d.Policies[:8] {
		if err := s.InstallPolicy(pol); err != nil {
			t.Fatal(err)
		}
	}
	stable := make([]string, 8)
	for i, pol := range d.Policies[:8] {
		stable[i] = pol.Name
	}
	pref, _ := workload.PreferenceByLevel("High")
	compiled, err := s.CompilePreference(pref.XML)
	if err != nil {
		t.Fatal(err)
	}

	var wg sync.WaitGroup
	errs := make(chan error, 64)

	// Matchers on all engines.
	for _, engine := range Engines {
		engine := engine
		wg.Add(1)
		go func() {
			defer wg.Done()
			for i := 0; i < iters; i++ {
				name := stable[i%len(stable)]
				dec, err := s.MatchPolicy(pref.XML, name, engine)
				if err != nil {
					errs <- fmt.Errorf("%v: %w", engine, err)
					return
				}
				switch dec.Behavior {
				case "request", "limited", "block":
				default:
					errs <- fmt.Errorf("%v: bad behavior %q", engine, dec.Behavior)
					return
				}
			}
		}()
	}

	// Compiled matcher.
	wg.Add(1)
	go func() {
		defer wg.Done()
		for i := 0; i < 2*iters; i++ {
			if _, err := s.MatchCompiled(compiled, stable[i%len(stable)]); err != nil {
				errs <- fmt.Errorf("compiled: %w", err)
				return
			}
		}
	}()

	// Churn: install and remove extra policies throughout.
	wg.Add(1)
	go func() {
		defer wg.Done()
		for i := 0; i < iters/3+1; i++ {
			pol := d.Policies[10+(i%10)].Clone()
			pol.Name = fmt.Sprintf("churn-%d", i)
			if err := s.InstallPolicy(pol); err != nil {
				errs <- fmt.Errorf("install: %w", err)
				return
			}
			if _, err := s.MatchPolicy(pref.XML, pol.Name, EngineSQL); err != nil {
				errs <- fmt.Errorf("match churn: %w", err)
				return
			}
			if err := s.RemovePolicy(pol.Name); err != nil {
				errs <- fmt.Errorf("remove: %w", err)
				return
			}
		}
	}()

	// Analytics readers.
	wg.Add(1)
	go func() {
		defer wg.Done()
		for i := 0; i < 2*iters; i++ {
			_ = s.Analytics()
			_, _ = s.PolicyXML(stable[0])
		}
	}()

	wg.Wait()
	close(errs)
	for err := range errs {
		t.Error(err)
	}
}
