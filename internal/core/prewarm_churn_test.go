package core

import (
	"fmt"
	"sync"
	"sync/atomic"
	"testing"

	"p3pdb/internal/workload"
)

// TestPrewarmChurnDrill interleaves preference registration, bulk policy
// replacement (each triggering a pre-warm), and concurrent match traffic
// under -race. Two policy universes with the same names but different
// content alternate; every decision served during the churn must be
// exactly the decision one of the two universes produces, and once the
// churn quiesces on universe 2, every decision must be universe 2's —
// a stale-generation decision surviving a swap would surface here as a
// universe-1 ruling after the final publish.
func TestPrewarmChurnDrill(t *testing.T) {
	d1 := workload.Generate(101)
	d2 := workload.Generate(102)

	oracle := func(ds *workload.Dataset) *Site {
		s, err := NewSiteWithOptions(Options{DisableDecisionCache: true})
		if err != nil {
			t.Fatal(err)
		}
		if err := s.ReplacePolicies(ds.Policies, ds.RefFile); err != nil {
			t.Fatal(err)
		}
		return s
	}
	o1, o2 := oracle(d1), oracle(d2)

	// Pick a (preference, policy) pair whose ruling differs between the
	// universes, so serving a stale decision is detectable.
	var prefXML, polName string
	var dec1, dec2 Decision
	for _, p := range d1.Preferences {
		for _, pol := range d1.Policies {
			a, errA := o1.MatchPolicy(p.XML, pol.Name, EngineSQL)
			b, errB := o2.MatchPolicy(p.XML, pol.Name, EngineSQL)
			if errA == nil && errB == nil && (a.Behavior != b.Behavior || a.RuleIndex != b.RuleIndex) {
				prefXML, polName, dec1, dec2 = p.XML, pol.Name, a, b
				break
			}
		}
		if polName != "" {
			break
		}
	}
	if polName == "" {
		t.Fatal("no (preference, policy) pair distinguishes the two universes")
	}

	s, err := NewSiteWithOptions(Options{ConversionCacheSize: 1024})
	if err != nil {
		t.Fatal(err)
	}
	if err := s.ReplacePolicies(d1.Policies, d1.RefFile); err != nil {
		t.Fatal(err)
	}
	if err := s.RegisterPreferenceXML("churn-pref", prefXML, []string{"sql"}); err != nil {
		t.Fatal(err)
	}

	same := func(d Decision, want Decision) bool {
		return d.Behavior == want.Behavior && d.RuleIndex == want.RuleIndex
	}

	rounds := 14
	if testing.Short() {
		rounds = 4
	}
	var stop atomic.Bool
	var wg sync.WaitGroup

	// Writer: alternate the universes and keep registering fresh
	// preference variants, so registration-driven and replace-driven
	// pre-warms interleave with the readers.
	wg.Add(1)
	go func() {
		defer wg.Done()
		defer stop.Store(true)
		variants := workload.PreferenceVariants(d1.Preferences[0].Level, rounds)
		for i := 0; i < rounds; i++ {
			ds := d1
			if i%2 == 0 {
				ds = d2
			}
			if err := s.ReplacePolicies(ds.Policies, ds.RefFile); err != nil {
				t.Errorf("replace round %d: %v", i, err)
				return
			}
			if err := s.RegisterPreferenceXML(fmt.Sprintf("v%d", i), variants[i].XML, []string{"sql"}); err != nil {
				t.Errorf("register round %d: %v", i, err)
				return
			}
		}
	}()

	for g := 0; g < 4; g++ {
		wg.Add(1)
		go func() {
			defer wg.Done()
			for !stop.Load() {
				d, err := s.MatchPolicy(prefXML, polName, EngineSQL)
				if err != nil {
					t.Errorf("match during churn: %v", err)
					return
				}
				if !same(d, dec1) && !same(d, dec2) {
					t.Errorf("churn served a decision from no universe: %+v (want %+v or %+v)", d, dec1, dec2)
					return
				}
			}
		}()
	}
	wg.Wait()
	if t.Failed() {
		return
	}

	// Quiesce on universe 2: from here on only its ruling may be served,
	// and the pre-warm must have seeded it before the swap published.
	if err := s.ReplacePolicies(d2.Policies, d2.RefFile); err != nil {
		t.Fatal(err)
	}
	for i := 0; i < 50; i++ {
		d, err := s.MatchPolicy(prefXML, polName, EngineSQL)
		if err != nil {
			t.Fatal(err)
		}
		if !same(d, dec2) {
			t.Fatalf("stale decision after quiesce: %+v, want %+v", d, dec2)
		}
	}
	d, err := s.MatchPolicy(prefXML, polName, EngineSQL)
	if err != nil {
		t.Fatal(err)
	}
	if !d.Cached {
		t.Fatal("post-quiesce decision was not served from the pre-warmed cache")
	}
}
