package core

import (
	"strings"
	"sync"
	"testing"

	"p3pdb/internal/appel"
	"p3pdb/internal/faultkit"
	"p3pdb/internal/p3p"
	"p3pdb/internal/workload"
)

// volgaBlockXML reinstalls under the name "volga" a policy that Jane's
// preference blocks (telemarketing to the public, kept indefinitely),
// where the real Volga policy yields "request". The behavior flip makes
// stale decision-cache entries observable: any cached "request" served
// after this version is published is a correctness bug, not a perf bug.
const volgaBlockXML = `<POLICY name="volga" discuri="http://volga.example.com/privacy.html">
  <STATEMENT>
    <PURPOSE><telemarketing/></PURPOSE>
    <RECIPIENT><public/></RECIPIENT>
    <RETENTION><indefinitely/></RETENTION>
    <DATA-GROUP><DATA ref="#user.name"/></DATA-GROUP>
  </STATEMENT>
</POLICY>`

// TestDecisionCacheHitSkipsEngines matches the same (preference, policy,
// engine) twice and asserts the repeat is served from the decision
// cache: Cached is set, the conversion cache sees no traffic (the
// engines never ran), and every decision field the caller acts on is
// identical to the engine-computed original.
func TestDecisionCacheHitSkipsEngines(t *testing.T) {
	s, d := corpusSite(t, Options{})
	pref, ok := workload.PreferenceByLevel("High")
	if !ok {
		t.Fatal("no High preference in workload")
	}
	policy := d.Policies[0].Name

	for _, engine := range []Engine{EngineNative, EngineSQL, EngineXTable, EngineXQuery} {
		first, err := s.MatchPolicy(pref.XML, policy, engine)
		if err != nil {
			t.Fatalf("%v: first match: %v", engine, err)
		}
		if first.Cached {
			t.Fatalf("%v: first match claims Cached", engine)
		}

		convHits, convMisses, _ := s.ConversionCacheStats()
		second, err := s.MatchPolicy(pref.XML, policy, engine)
		if err != nil {
			t.Fatalf("%v: second match: %v", engine, err)
		}
		if !second.Cached {
			t.Fatalf("%v: repeat match not served from decision cache", engine)
		}
		if second.Convert != 0 || second.Query != 0 {
			t.Errorf("%v: cached decision has nonzero times: convert=%v query=%v",
				engine, second.Convert, second.Query)
		}
		if h, m, _ := s.ConversionCacheStats(); h != convHits || m != convMisses {
			t.Errorf("%v: cache hit still touched the conversion cache: hits %d->%d misses %d->%d",
				engine, convHits, h, convMisses, m)
		}
		if second.Behavior != first.Behavior || second.RuleIndex != first.RuleIndex ||
			second.RuleDescription != first.RuleDescription || second.Prompt != first.Prompt ||
			second.PolicyName != first.PolicyName || second.Engine != first.Engine {
			t.Errorf("%v: cached decision differs from engine decision:\n  engine: %+v\n  cached: %+v",
				engine, first, second)
		}
	}

	hits, misses, stores, size := s.DecisionCacheStats()
	if hits < 4 {
		t.Errorf("decision-cache hits = %d, want >= 4 (one per engine)", hits)
	}
	if misses < 4 || stores < 4 || size < 4 {
		t.Errorf("decision-cache misses=%d stores=%d size=%d, want >= 4 each", misses, stores, size)
	}
}

// TestDecisionCacheInvalidatedByPolicyWrite is the staleness drill: a
// decision cached against snapshot N must never be served once a policy
// write publishes snapshot N+1. The policy is replaced by a same-named
// version with the opposite behavior, so a stale entry is directly
// visible as the wrong answer.
func TestDecisionCacheInvalidatedByPolicyWrite(t *testing.T) {
	s := siteWithVolga(t)

	d, err := s.MatchPolicy(appel.JanePreferenceXML, "volga", EngineSQL)
	if err != nil {
		t.Fatal(err)
	}
	if d.Behavior != "request" {
		t.Fatalf("volga v1 behavior = %q, want request", d.Behavior)
	}
	if d, err = s.MatchPolicy(appel.JanePreferenceXML, "volga", EngineSQL); err != nil {
		t.Fatal(err)
	} else if !d.Cached {
		t.Fatal("repeat match against v1 not cached")
	}

	// Remove + reinstall under the same name: two generation bumps.
	if err := s.RemovePolicy("volga"); err != nil {
		t.Fatal(err)
	}
	if _, err := s.InstallPolicyXML(volgaBlockXML); err != nil {
		t.Fatal(err)
	}

	d, err = s.MatchPolicy(appel.JanePreferenceXML, "volga", EngineSQL)
	if err != nil {
		t.Fatal(err)
	}
	if d.Cached {
		t.Error("first match after policy write served from cache (stale generation)")
	}
	if d.Behavior != "block" {
		t.Errorf("volga v2 behavior = %q, want block (stale v1 decision served?)", d.Behavior)
	}

	// ReplacePolicies is the atomic-swap write path (hot reload); it must
	// invalidate just the same.
	pols, err := p3p.ParsePolicies(p3p.VolgaPolicyXML)
	if err != nil {
		t.Fatal(err)
	}
	if err := s.ReplacePolicies(pols, nil); err != nil {
		t.Fatal(err)
	}
	d, err = s.MatchPolicy(appel.JanePreferenceXML, "volga", EngineSQL)
	if err != nil {
		t.Fatal(err)
	}
	if d.Cached {
		t.Error("first match after ReplacePolicies served from cache")
	}
	if d.Behavior != "request" {
		t.Errorf("behavior after swap back = %q, want request", d.Behavior)
	}
}

// TestDecisionCacheWriteWhileReadChurn alternates two same-named policy
// versions with opposite behaviors while reader goroutines hammer the
// match path. Run under -race this exercises the lock-free cache's
// publish/lookup concurrency; the writer's assertion after every swap
// catches any stale decision crossing a generation boundary.
func TestDecisionCacheWriteWhileReadChurn(t *testing.T) {
	s := siteWithVolga(t)
	volgaV1, err := p3p.ParsePolicies(p3p.VolgaPolicyXML)
	if err != nil {
		t.Fatal(err)
	}
	volgaV2, err := p3p.ParsePolicies(volgaBlockXML)
	if err != nil {
		t.Fatal(err)
	}

	stop := make(chan struct{})
	var wg sync.WaitGroup
	for r := 0; r < 4; r++ {
		wg.Add(1)
		go func() {
			defer wg.Done()
			for {
				select {
				case <-stop:
					return
				default:
				}
				d, err := s.MatchPolicy(appel.JanePreferenceXML, "volga", EngineSQL)
				if err != nil {
					t.Errorf("reader: %v", err)
					return
				}
				// Readers race the swap, so either version's answer is
				// legal — but nothing else is.
				if d.Behavior != "request" && d.Behavior != "block" {
					t.Errorf("reader: behavior %q is neither version's answer", d.Behavior)
					return
				}
			}
		}()
	}

	for i := 0; i < 25; i++ {
		pols, want := volgaV1, "request"
		if i%2 == 0 {
			pols, want = volgaV2, "block"
		}
		if err := s.ReplacePolicies(pols, nil); err != nil {
			t.Fatal(err)
		}
		// After the swap returns, the new snapshot is published: the
		// writer's own match must see the new version, never a cached
		// decision from the old generation.
		d, err := s.MatchPolicy(appel.JanePreferenceXML, "volga", EngineSQL)
		if err != nil {
			t.Fatal(err)
		}
		if d.Behavior != want {
			t.Fatalf("swap %d: behavior = %q, want %q (stale cached decision)", i, d.Behavior, want)
		}
	}
	close(stop)
	wg.Wait()
}

// TestDecisionCacheForcedMissFallback arms the decision.lookup fault
// point and asserts the cache degrades to the engine path instead of
// failing: repeats are recomputed (not Cached), still correct, and the
// forced misses are counted. Disarming restores cache hits.
func TestDecisionCacheForcedMissFallback(t *testing.T) {
	faultkit.Reset()
	t.Cleanup(faultkit.Reset)
	s := siteWithVolga(t)

	if _, err := s.MatchPolicy(appel.JanePreferenceXML, "volga", EngineNative); err != nil {
		t.Fatal(err)
	}
	if d, err := s.MatchPolicy(appel.JanePreferenceXML, "volga", EngineNative); err != nil {
		t.Fatal(err)
	} else if !d.Cached {
		t.Fatal("repeat match not cached before fault armed")
	}

	if err := faultkit.Enable(faultkit.PointDecisionLookup + ":error"); err != nil {
		t.Fatal(err)
	}
	d, err := s.MatchPolicy(appel.JanePreferenceXML, "volga", EngineNative)
	if err != nil {
		t.Fatalf("armed decision.lookup fault failed the match: %v", err)
	}
	if d.Cached {
		t.Error("armed decision.lookup fault did not force a miss")
	}
	if d.Behavior != "request" {
		t.Errorf("engine fallback behavior = %q, want request", d.Behavior)
	}
	if n := faultkit.Firings(faultkit.PointDecisionLookup); n == 0 {
		t.Error("decision.lookup fault never fired")
	}

	faultkit.Reset()
	if d, err := s.MatchPolicy(appel.JanePreferenceXML, "volga", EngineNative); err != nil {
		t.Fatal(err)
	} else if !d.Cached {
		t.Error("cache hits did not resume after fault disarmed")
	}
}

// TestDecisionCacheDisabled asserts DisableDecisionCache really turns
// the cache off: repeats recompute and the stats stay zero.
func TestDecisionCacheDisabled(t *testing.T) {
	s, d := corpusSite(t, Options{DisableDecisionCache: true})
	pref, ok := workload.PreferenceByLevel("Low")
	if !ok {
		t.Fatal("no Low preference in workload")
	}
	for i := 0; i < 3; i++ {
		dec, err := s.MatchPolicy(pref.XML, d.Policies[0].Name, EngineSQL)
		if err != nil {
			t.Fatal(err)
		}
		if dec.Cached {
			t.Fatal("disabled decision cache served a hit")
		}
	}
	if hits, misses, stores, size := s.DecisionCacheStats(); hits != 0 || misses != 0 || stores != 0 || size != 0 {
		t.Errorf("disabled cache stats = %d/%d/%d/%d, want all zero", hits, misses, stores, size)
	}
}

// TestDecisionCacheErrorsNotCached matches a preference that fails to
// parse and asserts the error repeats (never replaced by a cached
// decision) and nothing was stored.
func TestDecisionCacheErrorsNotCached(t *testing.T) {
	s := siteWithVolga(t)
	_, _, stores0, _ := s.DecisionCacheStats()
	for i := 0; i < 2; i++ {
		if _, err := s.MatchPolicy("<not appel>", "volga", EngineNative); err == nil {
			t.Fatal("malformed preference matched")
		}
	}
	if _, _, stores, _ := s.DecisionCacheStats(); stores != stores0 {
		t.Errorf("failed matches stored %d decisions", stores-stores0)
	}
	if !strings.Contains(volgaBlockXML, `name="volga"`) {
		t.Fatal("fixture lost its policy name") // guards the flip fixture above
	}
}
