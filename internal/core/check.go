package core

import (
	"context"
	"errors"
	"fmt"

	"p3pdb/internal/appelengine"
	"p3pdb/internal/compact"
	"p3pdb/internal/faultkit"
	"p3pdb/internal/obs"
)

// This file is the server side of the user-agent protocol loop
// (DESIGN.md §11): reference-file lookup picks the applicable policy,
// a compact-summary pre-decision tries to prove the request safe, and
// only an inconclusive summary falls back to the full engine (and its
// decision cache).
//
// The fast path's contract is conservatism: it may return "allowed"
// only when full evaluation provably cannot block. The proof has two
// halves, both in internal/compact: SummarySafe admits only preference
// rulesets whose block rules sit in a monotone pattern fragment, and
// ToEvidence builds an evidence document that over-approximates every
// statement of the original policy under that fragment. A safe block
// rule that matches the original policy therefore also matches the
// evidence — so when no block rule fires on the evidence, no block
// rule fires in full evaluation either, and the first-match semantics
// guarantee the full decision is a non-block behavior.

// summaryEngine evaluates block rules against the pre-augmented
// evidence documents; augmentation already happened at snapshot
// publication, so per-check cost is rule evaluation alone.
var summaryEngine = appelengine.NewWithOptions(appelengine.Options{SkipAugmentation: true})

// Fast-path observability: checks attempted, summary-proved allows,
// fallbacks to the full engine, and faultkit-forced fallbacks (the
// drill's marker, mirroring decision.forced_misses).
var (
	obsFastChecks    = obs.GetCounter("fastpath.checks")
	obsFastHits      = obs.GetCounter("fastpath.hits")
	obsFastFallbacks = obs.GetCounter("fastpath.fallbacks")
	obsFastForced    = obs.GetCounter("fastpath.forced_fallbacks")
)

// CheckResult is the outcome of one protocol-loop check.
type CheckResult struct {
	// Allowed reports whether the site may serve the request: true on
	// the fast path, and Behavior != "block" on the fallback.
	Allowed bool
	// FastPath reports that the compact summary proved the decision
	// without running a full engine.
	FastPath bool
	// FallbackReason says why the fast path was inconclusive: one of
	// "no-summary", "forced", "preference-error", "unsafe-preference",
	// "summary-block", or "summary-error". Empty on the fast path.
	FallbackReason string
	// PolicyName is the applicable policy the reference file selected.
	PolicyName string
	// CP is the policy's compact form (the P3P header value); empty
	// when the policy has no compact form.
	CP string
	// Generation is the snapshot generation the check ran against.
	Generation uint64
	// Decision is the full engine's decision when the fallback ran,
	// nil on the fast path.
	Decision *Decision
}

// CheckURI runs the protocol loop for a page request: reference-file
// lookup, compact fast path, full-match fallback.
func (s *Site) CheckURI(prefXML, uri string, engine Engine) (CheckResult, error) {
	return s.CheckURICtx(context.Background(), prefXML, uri, engine)
}

// CheckURICtx is CheckURI governed by a context (see MatchURICtx).
func (s *Site) CheckURICtx(ctx context.Context, prefXML, uri string, engine Engine) (CheckResult, error) {
	st := s.state.Load()
	name, err := st.policyForURI(uri)
	if err != nil {
		return CheckResult{}, err
	}
	return s.check(ctx, st, prefXML, name, engine)
}

// CheckCookie runs the protocol loop for a cookie, resolved through the
// reference file's COOKIE-INCLUDE/COOKIE-EXCLUDE patterns.
func (s *Site) CheckCookie(prefXML, cookieName string, engine Engine) (CheckResult, error) {
	return s.CheckCookieCtx(context.Background(), prefXML, cookieName, engine)
}

// CheckCookieCtx is CheckCookie governed by a context.
func (s *Site) CheckCookieCtx(ctx context.Context, prefXML, cookieName string, engine Engine) (CheckResult, error) {
	st := s.state.Load()
	name, err := st.policyForCookie(cookieName)
	if err != nil {
		return CheckResult{}, err
	}
	return s.check(ctx, st, prefXML, name, engine)
}

// CheckPolicy runs the fast path and fallback directly against a named
// policy: the hybrid deployment's entry point, where the client already
// resolved the reference file itself.
func (s *Site) CheckPolicy(prefXML, policyName string, engine Engine) (CheckResult, error) {
	return s.CheckPolicyCtx(context.Background(), prefXML, policyName, engine)
}

// CheckPolicyCtx is CheckPolicy governed by a context.
func (s *Site) CheckPolicyCtx(ctx context.Context, prefXML, policyName string, engine Engine) (CheckResult, error) {
	st := s.state.Load()
	if _, ok := st.policyXML[policyName]; !ok {
		return CheckResult{}, fmt.Errorf("core: policy %q not installed", policyName)
	}
	return s.check(ctx, st, prefXML, policyName, engine)
}

// check tries the compact pre-decision and falls back to the full match
// pipeline (decision cache included) when it is inconclusive. Both
// halves run against the same snapshot, so a concurrent policy write
// cannot split the check across generations.
func (s *Site) check(ctx context.Context, st *siteState, prefXML, policyName string, engine Engine) (CheckResult, error) {
	res := CheckResult{PolicyName: policyName, Generation: st.gen}
	cs := st.compact[policyName]
	if cs != nil {
		res.CP = cs.cp
	}
	obsFastChecks.Inc()
	reason := s.fastAllow(prefXML, cs)
	span := obs.SpanFromContext(ctx)
	span.Annotate("policy", policyName)
	if reason == "" {
		obsFastHits.Inc()
		span.Annotate("fastpath", "hit")
		res.Allowed = true
		res.FastPath = true
		return res, nil
	}
	obsFastFallbacks.Inc()
	span.Annotate("fastpath", reason)
	res.FallbackReason = reason
	d, err := s.match(ctx, st, prefXML, policyName, engine)
	if err != nil {
		return CheckResult{}, err
	}
	res.Allowed = !d.Blocked()
	res.Decision = &d
	return res, nil
}

// fastAllow returns "" when the summary proves full matching cannot
// block, or the fallback reason otherwise. It never errors: every
// failure mode degrades to the full engine.
func (s *Site) fastAllow(prefXML string, cs *compactSummary) string {
	if cs == nil || cs.evidence == nil {
		return "no-summary"
	}
	if err := faultkit.Inject(faultkit.PointFastpathSummary); err != nil {
		obsFastForced.Inc()
		return "forced"
	}
	conv, err := s.nativeConversion(prefXML)
	if err != nil {
		// The fallback engine will surface the same conversion error.
		return "preference-error"
	}
	if !compact.SummarySafe(conv.rs) {
		return "unsafe-preference"
	}
	blocks := compact.BlockRules(conv.rs)
	if len(blocks.Rules) == 0 {
		// Nothing can block; the catch-all SummarySafe requires makes
		// full evaluation fire a non-block rule.
		return ""
	}
	_, err = summaryEngine.MatchDOM(blocks, cs.evidence)
	switch {
	case errors.Is(err, appelengine.ErrNoRuleFired):
		// No block rule fires on the over-approximating evidence, so
		// none fires on the real policy: full matching cannot block.
		return ""
	case err == nil:
		// A block rule fired on the evidence. The evidence over-fires
		// by design, so this is not a block decision — just a request
		// the summary cannot prove safe.
		return "summary-block"
	default:
		return "summary-error"
	}
}
