package core

import (
	"fmt"
	"time"

	"p3pdb/internal/appel"
	"p3pdb/internal/reldb"
	"p3pdb/internal/sqlgen"
)

// CompiledPreference is a preference translated to SQL once and prepared
// against the site's database, with the policy id left as a parameter.
// It realizes the deployment the paper sketches in Section 6.3.2: "it is
// not unreasonable to think of a P3P deployment in which the preference
// generation GUI tool produces preferences as a set of SQL statements" —
// returning users then skip both APPEL parsing and SQL translation on
// every visit.
type CompiledPreference struct {
	rules []compiledRule
	// Compile is the one-time cost that per-match conversion would
	// otherwise pay on every visit.
	Compile time.Duration
}

type compiledRule struct {
	stmt            reldb.Statement
	behavior        string
	prompt          bool
	ruleDescription string
}

// compileRules translates rs against the optimized schema with the
// policy id left as a parameter — so one compilation serves every policy
// on the site — and prepares every rule statement on db.
func compileRules(db *reldb.DB, rs *appel.Ruleset) ([]compiledRule, error) {
	queries, err := sqlgen.TranslateRulesetOptimized(rs, "SELECT ? AS policy_id")
	if err != nil {
		return nil, err
	}
	rules := make([]compiledRule, 0, len(queries))
	for i, q := range queries {
		stmt, err := db.Prepare(q.SQL)
		if err != nil {
			return nil, fmt.Errorf("core: preparing rule %d: %w", i+1, err)
		}
		rules = append(rules, compiledRule{
			stmt:            stmt,
			behavior:        q.Behavior,
			prompt:          q.Prompt,
			ruleDescription: rs.Rules[i].Description,
		})
	}
	return rules, nil
}

// CompilePreference translates and prepares a preference against the
// optimized schema. The result is bound to this site's database but not
// to any policy.
func (s *Site) CompilePreference(prefXML string) (*CompiledPreference, error) {
	start := time.Now()
	rs, err := appel.Parse(prefXML)
	if err != nil {
		return nil, err
	}
	rules, err := compileRules(s.state.Load().optDB, rs)
	if err != nil {
		return nil, err
	}
	return &CompiledPreference{rules: rules, Compile: time.Since(start)}, nil
}

// MatchCompiled evaluates a compiled preference against a named policy.
// Only query execution remains on the per-visit path. Compiled matches
// run lock-free against the current snapshot, concurrently with each
// other, with every other match, and with policy writes: the prepared
// statements are database-independent ASTs, so a compilation outlives
// the snapshot it was made against.
func (s *Site) MatchCompiled(c *CompiledPreference, policyName string) (Decision, error) {
	st := s.state.Load()
	id, ok := st.ids[policyName]
	if !ok {
		return Decision{}, fmt.Errorf("core: policy %q not installed", policyName)
	}
	start := time.Now()
	for i, rule := range c.rules {
		fired, err := st.optDB.QueryExistsStmt(rule.stmt, reldb.Int(int64(id)))
		if err != nil {
			return Decision{}, fmt.Errorf("core: rule %d: %w", i+1, err)
		}
		if fired {
			d := Decision{
				Behavior:        rule.behavior,
				RuleIndex:       i,
				RuleDescription: rule.ruleDescription,
				Prompt:          rule.prompt,
				PolicyName:      policyName,
				Engine:          EngineSQL,
				Query:           time.Since(start),
			}
			s.recordConflict(d)
			return d, nil
		}
	}
	return Decision{}, fmt.Errorf("core: %w", errNoRuleFired)
}

// MatchCompiledURI resolves the URI through the reference file and
// evaluates the compiled preference against the covering policy.
func (s *Site) MatchCompiledURI(c *CompiledPreference, uri string) (Decision, error) {
	name, err := s.PolicyForURI(uri)
	if err != nil {
		return Decision{}, err
	}
	return s.MatchCompiled(c, name)
}

var errNoRuleFired = fmt.Errorf("no rule fired; ruleset lacks a catch-all")
