package core

import (
	"errors"
	"strings"
	"testing"

	"p3pdb/internal/appel"
	"p3pdb/internal/p3p"
	"p3pdb/internal/reldb"
	"p3pdb/internal/workload"
)

func siteWithVolga(t testing.TB) *Site {
	t.Helper()
	s, err := NewSite()
	if err != nil {
		t.Fatal(err)
	}
	if _, err := s.InstallPolicyXML(p3p.VolgaPolicyXML); err != nil {
		t.Fatal(err)
	}
	if err := s.InstallReferenceFileXML(`<META xmlns="http://www.w3.org/2002/01/P3Pv1">
	  <POLICY-REFERENCES>
	    <POLICY-REF about="/P3P/Policies.xml#volga"><INCLUDE>/*</INCLUDE></POLICY-REF>
	  </POLICY-REFERENCES></META>`); err != nil {
		t.Fatal(err)
	}
	return s
}

func TestInstallAndNames(t *testing.T) {
	s := siteWithVolga(t)
	names := s.PolicyNames()
	if len(names) != 1 || names[0] != "volga" {
		t.Errorf("names = %v", names)
	}
	xml, err := s.PolicyXML("volga")
	if err != nil || !strings.Contains(xml, "POLICY") {
		t.Errorf("PolicyXML: %v", err)
	}
	if _, err := s.PolicyXML("nope"); err == nil {
		t.Error("missing policy should error")
	}
	if _, err := s.InstallPolicyXML(p3p.VolgaPolicyXML); err == nil {
		t.Error("duplicate install should error")
	}
}

func TestMatchAllEnginesAgreeOnPaperExample(t *testing.T) {
	s := siteWithVolga(t)
	for _, engine := range Engines {
		d, err := s.MatchURI(appel.JanePreferenceXML, "/books/1", engine)
		if err != nil {
			t.Fatalf("%v: %v", engine, err)
		}
		if d.Behavior != "request" || d.RuleIndex != 2 {
			t.Errorf("%v: %+v, want request via rule 3", engine, d)
		}
		if d.PolicyName != "volga" {
			t.Errorf("%v: policy %q", engine, d.PolicyName)
		}
		if d.Query <= 0 {
			t.Errorf("%v: query time not measured", engine)
		}
		if engine != EngineNative && d.Convert <= 0 {
			t.Errorf("%v: convert time not measured", engine)
		}
		if engine == EngineNative && d.Convert != 0 {
			t.Errorf("native engine has no conversion step: %v", d.Convert)
		}
	}
}

func TestMatchPolicyDirect(t *testing.T) {
	s := siteWithVolga(t)
	d, err := s.MatchPolicy(appel.JanePreferenceXML, "volga", EngineSQL)
	if err != nil || d.Behavior != "request" {
		t.Errorf("direct match: %+v %v", d, err)
	}
	if _, err := s.MatchPolicy(appel.JanePreferenceXML, "missing", EngineSQL); err == nil {
		t.Error("missing policy should error")
	}
}

func TestMatchURIErrors(t *testing.T) {
	s, err := NewSite()
	if err != nil {
		t.Fatal(err)
	}
	if _, err := s.MatchURI(appel.JanePreferenceXML, "/x", EngineSQL); err == nil {
		t.Error("no reference file should error")
	}
	if _, err := s.InstallPolicyXML(p3p.VolgaPolicyXML); err != nil {
		t.Fatal(err)
	}
	if err := s.InstallReferenceFileXML(`<META><POLICY-REFERENCES>
		<POLICY-REF about="#volga"><INCLUDE>/covered/*</INCLUDE></POLICY-REF>
	  </POLICY-REFERENCES></META>`); err != nil {
		t.Fatal(err)
	}
	if _, err := s.MatchURI(appel.JanePreferenceXML, "/uncovered", EngineSQL); err == nil {
		t.Error("uncovered URI should error")
	}
	if _, err := s.MatchURI("not xml", "/covered/x", EngineSQL); err == nil {
		t.Error("bad preference should error")
	}
}

func TestReferenceFileRejectsUnknownPolicy(t *testing.T) {
	s, err := NewSite()
	if err != nil {
		t.Fatal(err)
	}
	err = s.InstallReferenceFileXML(`<META><POLICY-REFERENCES>
		<POLICY-REF about="#ghost"><INCLUDE>/*</INCLUDE></POLICY-REF>
	  </POLICY-REFERENCES></META>`)
	if err == nil {
		t.Error("reference to uninstalled policy should fail")
	}
}

func TestRemovePolicyAndVersioning(t *testing.T) {
	s := siteWithVolga(t)
	if err := s.RemovePolicy("volga"); err != nil {
		t.Fatal(err)
	}
	if len(s.PolicyNames()) != 0 {
		t.Error("policy still listed")
	}
	// Install version 2 with a stricter statement; matching reflects it.
	v2 := strings.Replace(p3p.VolgaPolicyXML,
		`<RECIPIENT><ours/><same/></RECIPIENT>`, `<RECIPIENT><ours/><unrelated/></RECIPIENT>`, 1)
	if _, err := s.InstallPolicyXML(v2); err != nil {
		t.Fatal(err)
	}
	for _, engine := range Engines {
		d, err := s.MatchPolicy(appel.JanePreferenceXML, "volga", engine)
		if err != nil {
			t.Fatalf("%v: %v", engine, err)
		}
		if d.Behavior != "block" {
			t.Errorf("%v: v2 should block, got %+v", engine, d)
		}
	}
	if err := s.RemovePolicy("volga"); err != nil {
		t.Fatal(err)
	}
	if err := s.RemovePolicy("volga"); err == nil {
		t.Error("double remove should error")
	}
}

func TestAnalytics(t *testing.T) {
	s := siteWithVolga(t)
	strict := `<appel:RULESET xmlns:appel="http://www.w3.org/2002/01/APPELv1">
	  <appel:RULE behavior="block" description="no email recommendations">
	    <POLICY><STATEMENT><PURPOSE appel:connective="or"><contact required="*"/></PURPOSE></STATEMENT></POLICY>
	  </appel:RULE>
	  <appel:OTHERWISE behavior="request"/>
	</appel:RULESET>`
	for i := 0; i < 3; i++ {
		if _, err := s.MatchPolicy(strict, "volga", EngineSQL); err != nil {
			t.Fatal(err)
		}
	}
	if _, err := s.MatchPolicy(appel.JanePreferenceXML, "volga", EngineSQL); err != nil {
		t.Fatal(err)
	}
	stats := s.Analytics()
	if len(stats) != 1 {
		t.Fatalf("stats = %+v", stats)
	}
	if stats[0].PolicyName != "volga" || stats[0].Count != 3 ||
		stats[0].RuleDescription != "no email recommendations" {
		t.Errorf("stats[0] = %+v", stats[0])
	}
	s.ResetAnalytics()
	if len(s.Analytics()) != 0 {
		t.Error("reset did not clear analytics")
	}
}

// TestFourEngineDifferential is the repository's strongest correctness
// instrument: every preference level of the generated workload, matched
// against every generated policy, must produce the same decision on all
// four engines — except the Medium/XTable combination, which must fail
// with the engine's complexity error (the Figure 21 blank cell).
func TestFourEngineDifferential(t *testing.T) {
	if testing.Short() {
		t.Skip("differential matrix is slow")
	}
	d := workload.Generate(42)
	s, err := NewSite()
	if err != nil {
		t.Fatal(err)
	}
	for _, pol := range d.Policies {
		if err := s.InstallPolicy(pol); err != nil {
			t.Fatal(err)
		}
	}
	for _, pref := range d.Preferences {
		for _, pol := range d.Policies {
			base, err := s.MatchPolicy(pref.XML, pol.Name, EngineNative)
			if err != nil {
				t.Fatalf("native %s vs %s: %v", pref.Level, pol.Name, err)
			}
			for _, engine := range []Engine{EngineSQL, EngineXTable, EngineXQuery} {
				got, err := s.MatchPolicy(pref.XML, pol.Name, engine)
				if engine == EngineXTable && pref.Level == "Medium" {
					if err == nil {
						t.Fatalf("Medium via XTable should be too complex, got %+v", got)
					}
					if !errors.Is(err, reldb.ErrTooComplex) {
						t.Fatalf("Medium via XTable: expected ErrTooComplex, got %v", err)
					}
					continue
				}
				if err != nil {
					t.Fatalf("%v %s vs %s: %v", engine, pref.Level, pol.Name, err)
				}
				if got.Behavior != base.Behavior || got.RuleIndex != base.RuleIndex {
					t.Errorf("%v disagrees with native on %s vs %s: %s/%d vs %s/%d",
						engine, pref.Level, pol.Name,
						got.Behavior, got.RuleIndex, base.Behavior, base.RuleIndex)
				}
			}
		}
	}
}
