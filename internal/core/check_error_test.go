package core

import (
	"strings"
	"testing"

	"p3pdb/internal/workload"
)

// TestCheckErrorPaths pins the protocol loop's failure surface: targets
// the reference file cannot resolve, unknown policies, and preferences
// the fallback engine rejects all error instead of fabricating verdicts.
func TestCheckErrorPaths(t *testing.T) {
	site, err := NewSite()
	if err != nil {
		t.Fatal(err)
	}
	d := workload.Generate(17)
	if err := site.ReplacePolicies(d.Policies, d.RefFile); err != nil {
		t.Fatal(err)
	}
	pref, ok := workload.PreferenceByLevel("Low")
	if !ok {
		t.Fatal("no Low preference")
	}

	if _, err := site.CheckURI(pref.XML, "/no-such-site/index.html", EngineSQL); err == nil {
		t.Error("unresolvable URI: want error")
	}
	if _, err := site.CheckPolicy(pref.XML, "ghost-industries", EngineSQL); err == nil {
		t.Error("unknown policy: want error")
	}
	// A preference that fails conversion takes the "preference-error"
	// fallback, and the full engine must surface the same failure.
	pol := d.Policies[0].Name
	if _, err := site.CheckPolicy("<appel:RULESET", pol, EngineSQL); err == nil {
		t.Error("malformed preference: want error from the fallback engine")
	}
	// A preference with no catch-all can leave full matching with no
	// fired rule; the check must propagate that, never invent an allow.
	noOtherwise := `<appel:RULESET xmlns:appel="http://www.w3.org/2002/01/APPELv1"
	    xmlns="http://www.w3.org/2002/01/P3Pv1">
	  <appel:RULE behavior="block"><POLICY><STATEMENT>
	    <PURPOSE appel:connective="or"><telemarketing/></PURPOSE>
	  </STATEMENT></POLICY></appel:RULE>
	</appel:RULESET>`
	allErrored := true
	for _, p := range d.Policies {
		res, err := site.CheckPolicy(noOtherwise, p.Name, EngineSQL)
		if err != nil {
			if !strings.Contains(err.Error(), "no rule fired") {
				t.Fatalf("%s: unexpected error %v", p.Name, err)
			}
			continue
		}
		allErrored = false
		// When a rule did fire it can only be the block rule.
		if res.FastPath || res.Allowed {
			t.Errorf("%s: catch-all-free preference produced an allow: %+v", p.Name, res)
		}
	}
	if allErrored {
		t.Error("no policy triggered the telemarketing block; corpus too tame for the test")
	}
}
