package core

import (
	"fmt"

	"p3pdb/internal/p3p"
	"p3pdb/internal/reldb"
)

// UseDecision is the answer to "may this site use this data item for this
// purpose under its own installed policy?" — the enforcement direction
// the paper points at (Section 4.2: "the privacy data tables built for
// checking preferences against policies may serve as meta data for
// ensuring that policies are followed", developed further in the authors'
// Hippocratic databases work).
type UseDecision struct {
	// Allowed reports whether some statement of the policy covers the
	// data reference for the purpose.
	Allowed bool
	// Required is the consent level the covering statement attached to
	// the purpose: always, opt-in, or opt-out. Callers gate opt-in uses
	// on recorded consent. Empty when Allowed is false.
	Required string
	// Retention is the covering statement's retention disclosure, which
	// an enforcement layer would turn into a deletion schedule.
	Retention string
}

// AuthorizeUse checks a proposed internal data use against the installed
// policy's own disclosures, by querying the shredded privacy tables: the
// use is allowed when some statement both declares the purpose and
// collects the data reference (hierarchically, as in preference
// matching). This is a query over the same Figure 14 tables preference
// matching uses — the dual the paper highlights as the architecture's
// path to enforcement.
func (s *Site) AuthorizeUse(policyName, purpose, dataRef string) (UseDecision, error) {
	if !p3p.IsPurpose(purpose) {
		return UseDecision{}, fmt.Errorf("core: unknown purpose %q", purpose)
	}
	st := s.state.Load()
	id, ok := st.ids[policyName]
	if !ok {
		return UseDecision{}, fmt.Errorf("core: policy %q not installed", policyName)
	}
	ref := dataRef
	if len(ref) == 0 || ref[0] != '#' {
		ref = "#" + ref
	}
	rows, err := st.optDB.Query(`
		SELECT p.required, s.retention
		FROM Statement s, Purpose p
		WHERE s.policy_id = ? AND p.policy_id = s.policy_id
		  AND p.statement_id = s.statement_id AND p.purpose = ?
		  AND EXISTS (
		    SELECT * FROM Data d
		    WHERE d.policy_id = s.policy_id AND d.statement_id = s.statement_id
		      AND (d.ref = ? OR d.ref LIKE ? OR ? LIKE d.ref || '.%'))
		ORDER BY CASE WHEN p.required = 'always' THEN 0
		              WHEN p.required = 'opt-out' THEN 1
		              ELSE 2 END`,
		reldb.Int(int64(id)), reldb.Str(purpose),
		reldb.Str(ref), reldb.Str(reldb.EscapeLike(ref)+".%"), reldb.Str(ref))
	if err != nil {
		return UseDecision{}, err
	}
	if len(rows.Data) == 0 {
		return UseDecision{}, nil
	}
	// Several statements may cover the use; the ORDER BY ranks rows by
	// standing permission (always, then opt-out, then opt-in), so the
	// first row is the strongest permission the policy grants.
	return UseDecision{
		Allowed:   true,
		Required:  rows.Data[0][0].AsString(),
		Retention: rows.Data[0][1].AsString(),
	}, nil
}
