package core

import (
	"context"
	"errors"
	"testing"
	"time"

	"p3pdb/internal/appel"
	"p3pdb/internal/faultkit"
	"p3pdb/internal/resource"
	"p3pdb/internal/workload"
)

// TestMatchAllCancellationStopsPromptly: canceling the batch context
// aborts a slow MatchAll long before it would finish, and the error
// reports the cancellation.
func TestMatchAllCancellationStopsPromptly(t *testing.T) {
	t.Cleanup(faultkit.Reset)
	s, d := corpusSite(t, Options{})
	pref, _ := workload.PreferenceByLevel("High")

	// Slow every per-policy conversion so the serial batch would take
	// len(policies) * 40ms — far longer than the cancellation point.
	if err := faultkit.Enable(faultkit.PointConvFill + ":latency:40ms"); err != nil {
		t.Fatal(err)
	}
	ctx, cancel := context.WithCancel(context.Background())
	time.AfterFunc(30*time.Millisecond, cancel)
	start := time.Now()
	decisions, err := s.MatchAllCtx(ctx, pref.XML, EngineXTable)
	elapsed := time.Since(start)

	if err == nil {
		t.Fatal("canceled MatchAll returned no error")
	}
	if !errors.Is(err, context.Canceled) {
		t.Fatalf("error does not report cancellation: %v", err)
	}
	// Bound: in-flight per-policy matches may finish their injected
	// sleep, but the pool must not start the remaining ~29 policies.
	// Serial completion would need > 1s; allow generous slack for CI.
	if full := time.Duration(len(d.Policies)) * 40 * time.Millisecond; elapsed >= full {
		t.Fatalf("cancellation did not stop fan-out early: took %v (full batch ~%v)", elapsed, full)
	}
	if len(decisions) >= len(d.Policies) {
		t.Fatalf("all %d policies completed despite cancellation", len(decisions))
	}

	// The Site remains fully usable after an aborted batch.
	faultkit.Reset()
	if _, err := s.MatchPolicy(pref.XML, d.Policies[0].Name, EngineSQL); err != nil {
		t.Fatalf("site unusable after canceled batch: %v", err)
	}
	if all, err := s.MatchAll(pref.XML, EngineSQL); err != nil || len(all) != len(d.Policies) {
		t.Fatalf("full batch after cancellation: %d decisions, %v", len(all), err)
	}
}

// TestMatchCtxCancellationTyped: an already-canceled context aborts a
// single match with the typed cancellation error, still unwrappable to
// the context cause.
func TestMatchCtxCancellationTyped(t *testing.T) {
	s := siteWithVolga(t)
	ctx, cancel := context.WithCancel(context.Background())
	cancel()
	for _, engine := range []Engine{EngineSQL, EngineXTable, EngineXQuery, EngineNative} {
		_, err := s.MatchPolicyCtx(ctx, appel.JanePreferenceXML, "volga", engine)
		if !errors.Is(err, resource.ErrCanceled) {
			t.Fatalf("%v: want ErrCanceled, got %v", engine, err)
		}
		if !errors.Is(err, context.Canceled) {
			t.Fatalf("%v: cause not context.Canceled: %v", engine, err)
		}
	}
}

// TestPerPolicyDeadline: a per-policy timeout shorter than an injected
// per-policy latency fails each policy individually with a
// deadline-exceeded error while the batch itself keeps going.
func TestPerPolicyDeadline(t *testing.T) {
	t.Cleanup(faultkit.Reset)
	// The decision cache would serve the warmed repeat batch without ever
	// reaching the injected evaluation latency; disable it so the second
	// MatchAll actually evaluates under the deadline.
	s, d := corpusSite(t, Options{
		PerPolicyTimeout:     5 * time.Millisecond,
		DisableDecisionCache: true,
	})
	pref, _ := workload.PreferenceByLevel("High")

	// Warm the conversion caches so only evaluation remains, then slow
	// evaluation itself: the xquery.eval point sits inside each rule
	// evaluation, after the per-policy deadline starts ticking.
	if _, err := s.MatchAll(pref.XML, EngineXQuery); err != nil {
		t.Fatal(err)
	}
	if err := faultkit.Enable(faultkit.PointXQueryEval + ":latency:30ms"); err != nil {
		t.Fatal(err)
	}
	decisions, err := s.MatchAll(pref.XML, EngineXQuery)
	if err == nil {
		t.Fatal("want per-policy deadline failures, got none")
	}
	if !errors.Is(err, context.DeadlineExceeded) {
		t.Fatalf("aggregate does not unwrap to DeadlineExceeded: %v", err)
	}
	var pe *PolicyError
	if !errors.As(err, &pe) {
		t.Fatalf("aggregate lacks PolicyError detail: %v", err)
	}
	if len(decisions) >= len(d.Policies) {
		t.Fatal("every policy succeeded despite the deadline")
	}
}

// TestBudgetEquivalence is the governance property test: a budget large
// enough to never trip must not change any decision. ∞ (zero) and 2^40
// budgets are matched over every workload preference level, a corpus
// cross-section, and every engine.
func TestBudgetEquivalence(t *testing.T) {
	if testing.Short() {
		t.Skip("property sweep is slow")
	}
	free, d := corpusSite(t, Options{})
	capped, _ := corpusSite(t, Options{MatchBudget: 1 << 40})
	policies := []string{
		d.Policies[0].Name, d.Policies[7].Name, d.Policies[14].Name,
		d.Policies[21].Name, d.Policies[28].Name,
	}
	for _, pref := range workload.JRCPreferences() {
		for _, name := range policies {
			for _, engine := range []Engine{EngineNative, EngineSQL, EngineXTable, EngineXQuery} {
				a, errA := free.MatchPolicy(pref.XML, name, engine)
				b, errB := capped.MatchPolicy(pref.XML, name, engine)
				if (errA == nil) != (errB == nil) {
					t.Fatalf("%s/%s/%v: error divergence: %v vs %v", pref.Level, name, engine, errA, errB)
				}
				if errA != nil {
					continue // both fail identically (e.g. XTable too-complex)
				}
				if a.Behavior != b.Behavior || a.RuleIndex != b.RuleIndex {
					t.Fatalf("%s/%s/%v: budget changed the decision: %s/%d vs %s/%d",
						pref.Level, name, engine, a.Behavior, a.RuleIndex, b.Behavior, b.RuleIndex)
				}
			}
		}
	}
}

// TestCanceledBatchKeepsCompletedDecisions: cancellation mid-batch still
// returns the decisions that completed before the cut.
func TestCanceledBatchKeepsCompletedDecisions(t *testing.T) {
	t.Cleanup(faultkit.Reset)
	s, _ := corpusSite(t, Options{})
	pref, _ := workload.PreferenceByLevel("Low")

	// Let a handful of conversions through fast, then slow the rest so
	// the cancellation lands while stragglers are still converting.
	if err := faultkit.Enable(faultkit.PointConvFill + ":latency:40ms:after=4"); err != nil {
		t.Fatal(err)
	}
	ctx, cancel := context.WithCancel(context.Background())
	time.AfterFunc(20*time.Millisecond, cancel)
	decisions, err := s.MatchAllCtx(ctx, pref.XML, EngineXTable)
	if err == nil {
		t.Fatal("want cancellation error")
	}
	if len(decisions) == 0 {
		t.Fatal("cancellation dropped the decisions that had completed")
	}
	for _, d := range decisions {
		if d.Behavior == "" {
			t.Fatalf("empty decision survived aggregation: %+v", d)
		}
	}
}
