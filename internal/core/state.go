package core

import (
	"fmt"
	"sync/atomic"

	"p3pdb/internal/compact"
	"p3pdb/internal/p3p"
	"p3pdb/internal/p3p/basedata"
	"p3pdb/internal/prefindex"
	"p3pdb/internal/reffile"
	"p3pdb/internal/reldb"
	"p3pdb/internal/shred"
	"p3pdb/internal/xmldom"
	"p3pdb/internal/xmlstore"
	"p3pdb/internal/xqgen"
)

// stateGen issues snapshot generation numbers, unique process-wide and
// monotonic per Site. The generation is the decision cache's snapshot
// identity: entries embed the generation they were computed against, so
// publishing a successor snapshot invalidates every prior entry without
// touching the cache.
var stateGen atomic.Uint64

// siteState is the immutable interior of a Site: every backend the
// matching engines read, bundled into one snapshot. A state is built
// aside, fully populated, and then published through the Site's atomic
// pointer; after publication it is never mutated, so matches that loaded
// it keep a consistent view for their whole evaluation — installs,
// removes, and bulk replaces swap in a successor state without blocking
// them. This is the same published-snapshot discipline an XML content
// store uses for hot deploys, applied to the paper's three policy
// representations at once.
type siteState struct {
	optDB    *reldb.DB
	optStore *shred.OptimizedStore
	genDB    *reldb.DB
	genStore *shred.GenericStore
	refStore *reffile.Store
	xml      *xmlstore.Store

	refFile *reffile.RefFile

	// policies holds the parsed policies (shared across snapshots — they
	// are not mutated after install), policyXML their rendered documents,
	// ids the policy id used by both relational schemas, and order the
	// install order, which rebuilds preserve so ids stay stable.
	policies  map[string]*p3p.Policy
	policyXML map[string]string
	ids       map[string]int
	order     []string
	// nextID continues across snapshots and removals, so a policy id is
	// never reused: a stale id-bound artifact can miss, never alias.
	nextID int

	// compact holds each policy's compact (CP-header) form and the
	// pre-augmented evidence document the fast path evaluates block
	// rules against, both computed once at snapshot publication so the
	// per-request path only reads them.
	compact map[string]*compactSummary

	// prefs is the immutable set of registered preference rulesets plus
	// the predicate index over them (internal/prefindex). Snapshots share
	// the set; registration publishes a successor snapshot holding a
	// copy-on-write successor set.
	prefs *prefindex.Set

	// gen is this snapshot's generation number (stateGen), the decision
	// cache's snapshot identity.
	gen uint64

	// resolvers holds one prebuilt XQuery document resolver per policy,
	// so the native-XQuery match path binds its policy without allocating
	// an alias map and closure per match.
	resolvers map[string]func(string) (*xmldom.Node, error)
}

// policyForURI resolves which policy governs a URI within this snapshot.
func (st *siteState) policyForURI(uri string) (string, error) {
	if st.refFile == nil {
		return "", fmt.Errorf("core: no reference file installed")
	}
	pr := st.refFile.PolicyForURI(uri)
	if pr == nil {
		return "", fmt.Errorf("core: no policy covers %q", uri)
	}
	name := pr.PolicyName()
	if _, ok := st.policyXML[name]; !ok {
		return "", fmt.Errorf("core: reference file names uninstalled policy %q", name)
	}
	return name, nil
}

// policyForCookie resolves which policy governs a cookie by name within
// this snapshot.
func (st *siteState) policyForCookie(cookieName string) (string, error) {
	if st.refFile == nil {
		return "", fmt.Errorf("core: no reference file installed")
	}
	pr := st.refFile.PolicyForCookie(cookieName)
	if pr == nil {
		return "", fmt.Errorf("core: no policy covers cookie %q", cookieName)
	}
	name := pr.PolicyName()
	if _, ok := st.policyXML[name]; !ok {
		return "", fmt.Errorf("core: reference file names uninstalled policy %q", name)
	}
	return name, nil
}

// compactSummary is one policy's compact-policy material: the CP header
// value, the augmented evidence document derived from it (what the fast
// path evaluates block rules against — see compact.ToEvidence), and the
// reason either is unavailable. A nil evidence disables the fast path
// for the policy; a non-empty cp still serves the header.
type compactSummary struct {
	cp       string
	evidence *xmldom.Node
	err      error
}

// policyArtifacts caches one policy's materialization products across
// snapshot rebuilds. Policies are immutable after parse, so everything
// derived from the policy alone — its shred fragments, augmented DOM,
// rendered document, and compact summary — is identical in every
// snapshot the policy appears in; rebuilding them per publish is what
// made each write O(installed policies × shred cost). Keyed by the
// parsed policy pointer in Site.artifacts; the fragments also embed the
// policy id and are rebuilt if a bulk replace reassigns it. Guarded by
// Site.writeMu: only materialize reads or writes the cache.
type policyArtifacts struct {
	optFrag   *shred.Fragment
	genFrag   *shred.Fragment
	augmented *xmldom.Node
	xmlStr    string
	compact   *compactSummary
	// terms is the policy's witness-term universe for the preference
	// index, derived from the augmented DOM. Computed lazily by the
	// pre-warm pass (under writeMu), so sites with no registered
	// preferences never pay for it.
	terms map[string]struct{}
}

// stateDraft is the mutable sketch a writer edits before the next
// snapshot is materialized. It carries only the logical content (parsed
// policies, ids, the reference file); the physical backends are rebuilt
// from it by materialize.
type stateDraft struct {
	policies map[string]*p3p.Policy
	ids      map[string]int
	order    []string
	refFile  *reffile.RefFile
	nextID   int
	// prefs rides through policy edits untouched (the Set is immutable;
	// registration replaces the pointer with a successor set).
	prefs *prefindex.Set
}

func newDraft() *stateDraft {
	return &stateDraft{
		policies: map[string]*p3p.Policy{},
		ids:      map[string]int{},
		nextID:   1,
		prefs:    prefindex.NewSet(),
	}
}

// draft copies the snapshot's logical content into an editable sketch.
func (st *siteState) draft() *stateDraft {
	d := &stateDraft{
		policies: make(map[string]*p3p.Policy, len(st.policies)),
		ids:      make(map[string]int, len(st.ids)),
		order:    append([]string(nil), st.order...),
		refFile:  st.refFile,
		nextID:   st.nextID,
		prefs:    st.prefs,
	}
	for n, p := range st.policies {
		d.policies[n] = p
	}
	for n, id := range st.ids {
		d.ids[n] = id
	}
	return d
}

func (d *stateDraft) addPolicy(pol *p3p.Policy) error {
	if err := pol.MustValid(); err != nil {
		return fmt.Errorf("core: %w", err)
	}
	if _, dup := d.policies[pol.Name]; dup {
		return fmt.Errorf("core: policy %q already installed", pol.Name)
	}
	d.policies[pol.Name] = pol
	d.ids[pol.Name] = d.nextID
	d.nextID++
	d.order = append(d.order, pol.Name)
	return nil
}

func (d *stateDraft) removePolicy(name string) error {
	if _, ok := d.policies[name]; !ok {
		return fmt.Errorf("core: policy %q not installed", name)
	}
	delete(d.policies, name)
	delete(d.ids, name)
	for i, n := range d.order {
		if n == name {
			d.order = append(d.order[:i], d.order[i+1:]...)
			break
		}
	}
	return nil
}

func (d *stateDraft) setRefFile(rf *reffile.RefFile) error {
	for _, pr := range rf.PolicyRefs {
		if _, ok := d.policies[pr.PolicyName()]; !ok {
			return fmt.Errorf("core: reference file names uninstalled policy %q", pr.PolicyName())
		}
	}
	d.refFile = rf
	return nil
}

// materialize builds a fresh, fully-populated siteState from a draft:
// new relational databases for both schemas, new XML store, every policy
// re-shredded under its preserved id, and the reference file mirrored
// into the Figure 16 tables. The current snapshot is never touched, so a
// failure anywhere leaves the site exactly as it was — the all-or-nothing
// guarantee — and a success is published with a single atomic store.
//
// The cost is O(installed policies) per write. Policy writes are the
// cold administrative path; what the rebuild buys is a read path that
// never takes a site-level lock and never observes a half-applied
// change.
func (s *Site) materialize(d *stateDraft) (*siteState, error) {
	optDB := reldb.NewWithOptions(s.opts.DB)
	genDB := reldb.NewWithOptions(s.opts.DB)
	optStore, err := shred.NewOptimized(optDB)
	if err != nil {
		return nil, err
	}
	genStore, err := shred.NewGeneric(genDB)
	if err != nil {
		return nil, err
	}
	refStore, err := reffile.NewStore(optDB)
	if err != nil {
		return nil, err
	}
	st := &siteState{
		optDB:     optDB,
		optStore:  optStore,
		genDB:     genDB,
		genStore:  genStore,
		refStore:  refStore,
		xml:       xmlstore.New(),
		refFile:   d.refFile,
		policies:  d.policies,
		policyXML: make(map[string]string, len(d.policies)),
		ids:       d.ids,
		order:     d.order,
		nextID:    d.nextID,
		compact:   make(map[string]*compactSummary, len(d.policies)),
		prefs:     d.prefs,
		gen:       stateGen.Add(1),
		resolvers: make(map[string]func(string) (*xmldom.Node, error), len(d.policies)),
	}
	if s.artifacts == nil {
		s.artifacts = map[*p3p.Policy]*policyArtifacts{}
	}
	for _, name := range d.order {
		pol := d.policies[name]
		id := d.ids[name]
		// Reuse (or build once) everything derived from the policy
		// alone. Parsed policies are immutable and the engines treat
		// published DOM nodes as read-only — concurrent matches already
		// share them within one snapshot — so sharing the augmented DOM
		// and compact evidence across snapshots is safe.
		art := s.artifacts[pol]
		if art == nil {
			dom := pol.ToDOM()
			art = &policyArtifacts{
				augmented: s.native.Augment(dom),
				xmlStr:    dom.String(),
				compact:   s.compactSummaryFor(pol),
			}
			s.artifacts[pol] = art
		}
		if art.optFrag == nil || art.optFrag.PolicyID() != id {
			var err error
			if art.optFrag, err = shred.BuildOptimizedFragment(basedata.Default(), pol, id); err != nil {
				return nil, err
			}
			if art.genFrag, err = shred.BuildGenericFragment(basedata.Default(), pol, id); err != nil {
				return nil, err
			}
		}
		if _, err := optStore.InstallFragment(art.optFrag); err != nil {
			return nil, err
		}
		if _, err := genStore.InstallFragment(art.genFrag); err != nil {
			return nil, err
		}
		st.xml.Put(policyDoc(name), art.augmented)
		st.policyXML[name] = art.xmlStr
		st.resolvers[name] = st.xml.Resolver(map[string]string{
			xqgen.ApplicableDocument: policyDoc(name),
		})
		st.compact[name] = art.compact
	}
	if d.refFile != nil {
		// The relational mirror only stores refs that resolve; the
		// in-memory RefFile keeps the full document. A POLICY-REF can
		// dangle after its policy is removed — resolution reports that
		// per lookup, as it always has.
		inst := &reffile.RefFile{}
		for _, pr := range d.refFile.PolicyRefs {
			if _, ok := d.ids[pr.PolicyName()]; ok {
				inst.PolicyRefs = append(inst.PolicyRefs, pr)
			}
		}
		if len(inst.PolicyRefs) > 0 {
			if _, err := refStore.Install(inst, optStore); err != nil {
				return nil, err
			}
		}
	}
	// The snapshot is fully populated and about to be published
	// read-only. Freezing its databases lets every subsequent SELECT
	// skip the shared lock: matching takes no lock at all against a
	// published snapshot, which is what lets throughput scale with
	// cores instead of serializing on one RWMutex cache line.
	optDB.Freeze()
	genDB.Freeze()
	return st, nil
}

// compactSummaryFor computes a policy's compact form and fast-path
// evidence at snapshot-publication time. Failures are recorded, not
// fatal: a policy whose vocabulary the compact token tables cannot
// express still installs and matches normally — it just has no CP
// header and never takes the fast path.
func (s *Site) compactSummaryFor(pol *p3p.Policy) *compactSummary {
	cs := &compactSummary{}
	cp, err := compact.FromPolicy(pol, nil)
	if err != nil {
		cs.err = err
		return cs
	}
	cs.cp = cp
	sum, err := compact.Parse(cp)
	if err != nil {
		cs.err = err
		return cs
	}
	// Pre-augment the evidence once: the fast path evaluates block rules
	// with augmentation skipped, so per-check cost is rule evaluation
	// alone.
	cs.evidence = s.native.Augment(sum.ToEvidence(pol.Name).ToDOM())
	return cs
}

// mutate is the single-edit write path: a one-element batch through
// ApplyBatch (batch.go), which serializes writers, drafts from the
// current snapshot, applies the edit, materializes the successor aside,
// and publishes it atomically. Matches in flight keep whatever snapshot
// they loaded; new matches see the successor.
func (s *Site) mutate(edit func(*stateDraft) error) error {
	return s.ApplyBatch([]Mutation{{edit: edit}})
}
