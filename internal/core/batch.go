package core

import (
	"fmt"

	"p3pdb/internal/p3p"
	"p3pdb/internal/prefindex"
	"p3pdb/internal/reffile"
)

// Mutation is one logical site edit — install, remove, reference-file
// swap, bulk replace, or state restore — in a form that can be batched.
// ApplyBatch applies any number of them onto a single draft and
// publishes one successor snapshot, so replaying N logged records costs
// one backend rebuild instead of N. The existing single-write methods
// are one-element batches of these same values.
type Mutation struct {
	edit func(*stateDraft) error
	// purgeNames lists policies whose id-bound conversion-cache entries
	// must drop after a successful publish (removes: a reinstall under
	// the same name must not serve stale translations).
	purgeNames []string
	// purgeBound drops every id-bound entry after a successful publish
	// (replace/restore reassign every policy id).
	purgeBound bool
}

// InstallPolicyMutation installs one parsed policy.
func InstallPolicyMutation(pol *p3p.Policy) Mutation {
	return Mutation{edit: func(d *stateDraft) error { return d.addPolicy(pol) }}
}

// InstallPoliciesMutation installs several parsed policies as one edit
// (the shape of one logged install record, whose document may hold a
// POLICIES list).
func InstallPoliciesMutation(pols []*p3p.Policy) Mutation {
	return Mutation{edit: func(d *stateDraft) error {
		for _, pol := range pols {
			if err := d.addPolicy(pol); err != nil {
				return err
			}
		}
		return nil
	}}
}

// RemovePolicyMutation removes one named policy.
func RemovePolicyMutation(name string) Mutation {
	return Mutation{
		edit:       func(d *stateDraft) error { return d.removePolicy(name) },
		purgeNames: []string{name},
	}
}

// InstallReferenceFileMutation installs the site's reference file.
func InstallReferenceFileMutation(rf *reffile.RefFile) Mutation {
	return Mutation{edit: func(d *stateDraft) error { return d.setRefFile(rf) }}
}

// ReplacePoliciesMutation replaces the entire policy set and reference
// file (nil rf leaves the site without one). Reference-file validation
// runs against the new set, as in ReplacePolicies.
func ReplacePoliciesMutation(pols []*p3p.Policy, rf *reffile.RefFile) Mutation {
	return Mutation{
		edit: func(d *stateDraft) error {
			d.policies = map[string]*p3p.Policy{}
			d.ids = map[string]int{}
			d.order = nil
			d.refFile = nil
			for _, pol := range pols {
				if err := d.addPolicy(pol); err != nil {
					return err
				}
			}
			if rf != nil {
				return d.setRefFile(rf)
			}
			return nil
		},
		purgeBound: true,
	}
}

// RestoreStateMutation rebuilds the whole state from an export, without
// re-validating the reference file against the policy set (RemovePolicy
// legitimately leaves POLICY-REFs dangling; see RestoreState). Parse
// failures surface here, before anything joins a batch.
func RestoreStateMutation(exp StateExport) (Mutation, error) {
	var pols []*p3p.Policy
	for _, name := range exp.Order {
		ps, err := p3p.ParsePolicies(exp.PolicyXML[name])
		if err != nil {
			return Mutation{}, fmt.Errorf("core: restore policy %s: %w", name, err)
		}
		pols = append(pols, ps...)
	}
	var rf *reffile.RefFile
	if exp.ReferenceXML != "" {
		var err error
		rf, err = reffile.Parse(exp.ReferenceXML)
		if err != nil {
			return Mutation{}, fmt.Errorf("core: restore reference file: %w", err)
		}
	}
	// Registered preferences restore explicitly: the durability layer's
	// rollback path rebuilds a site from an export, and silently dropping
	// registrations there would un-register preferences on an unrelated
	// failed policy write.
	prefs := prefindex.NewSet()
	for _, pe := range exp.Prefs {
		p, err := prefindex.Compile(pe.Name, pe.XML, pe.Engines)
		if err != nil {
			return Mutation{}, fmt.Errorf("core: restore preference %s: %w", pe.Name, err)
		}
		prefs = prefs.With(p)
	}
	return Mutation{
		edit: func(d *stateDraft) error {
			d.policies = map[string]*p3p.Policy{}
			d.ids = map[string]int{}
			d.order = nil
			for _, pol := range pols {
				if err := d.addPolicy(pol); err != nil {
					return err
				}
			}
			d.refFile = rf
			d.prefs = prefs
			return nil
		},
		purgeBound: true,
	}, nil
}

// ApplyBatch applies the mutations in order onto one draft of the
// current snapshot, materializes once, and publishes once. All-or-
// nothing across the whole batch: an edit error or rebuild failure
// leaves the site exactly as it was and the error names the offending
// mutation. This is the bulk half of the write path — recovery replay
// and follower apply feed whole log tails through it, paying one
// backend rebuild for N records.
func (s *Site) ApplyBatch(muts []Mutation) error {
	if len(muts) == 0 {
		return nil
	}
	s.writeMu.Lock()
	defer s.writeMu.Unlock()
	prev := s.state.Load()
	d := prev.draft()
	for i := range muts {
		if err := muts[i].edit(d); err != nil {
			if len(muts) > 1 {
				return fmt.Errorf("core: batch mutation %d of %d: %w", i+1, len(muts), err)
			}
			return err
		}
	}
	next, err := s.materialize(d)
	if err != nil {
		return err
	}
	// Pre-warm the decision cache against the successor snapshot before
	// it is published: carried-forward and index-selected decisions are
	// keyed by next's generation, which no reader can observe yet, so
	// the first visitor after the swap lands on a warm cache instead of
	// a miss storm (prewarm.go).
	s.prewarm(prev, next)
	s.state.Store(next)
	// Sweep artifact-cache entries for policies the new snapshot no
	// longer holds, so removed or replaced policies don't pin their
	// fragments and DOMs forever. materialize guarantees every policy
	// in next has an entry, so a size match means nothing is stale.
	if len(s.artifacts) > len(next.policies) {
		live := make(map[*p3p.Policy]struct{}, len(next.policies))
		for _, p := range next.policies {
			live[p] = struct{}{}
		}
		for p := range s.artifacts {
			if _, ok := live[p]; !ok {
				delete(s.artifacts, p)
			}
		}
	}
	for i := range muts {
		if muts[i].purgeBound {
			s.conv.purgePolicyBound()
		}
		for _, name := range muts[i].purgeNames {
			s.conv.purgePolicy(name)
		}
	}
	return nil
}
