package core

import (
	"strings"
	"testing"

	"p3pdb/internal/appel"
)

func TestEngineNames(t *testing.T) {
	cases := map[string]Engine{
		"native": EngineNative, "APPEL": EngineNative,
		"sql":    EngineSQL,
		"xtable": EngineXTable, "xquery-sql": EngineXTable,
		"xquery": EngineXQuery, "XQUERY-NATIVE": EngineXQuery,
	}
	for name, want := range cases {
		got, err := ParseEngine(name)
		if err != nil || got != want {
			t.Errorf("ParseEngine(%q) = %v, %v", name, got, err)
		}
	}
	if _, err := ParseEngine("warp"); err == nil {
		t.Error("unknown engine should error")
	}
	for _, e := range Engines {
		if e.String() == "" || strings.HasPrefix(e.String(), "Engine(") {
			t.Errorf("String for %d: %q", int(e), e.String())
		}
		back, err := ParseEngine(e.ShortName())
		if err != nil || back != e {
			t.Errorf("ShortName round trip for %v: %v %v", e, back, err)
		}
	}
	if Engine(99).String() == "" || Engine(99).ShortName() != "unknown" {
		t.Error("out-of-range engine formatting")
	}
}

func TestUnknownEngineRejected(t *testing.T) {
	s := siteWithVolga(t)
	if _, err := s.MatchPolicy(appel.JanePreferenceXML, "volga", Engine(99)); err == nil {
		t.Error("unknown engine should error")
	}
}

func TestCompactAndReferenceAccessors(t *testing.T) {
	s := siteWithVolga(t)
	cp, err := s.CompactPolicy("volga")
	if err != nil {
		t.Fatal(err)
	}
	for _, want := range []string{"CUR", "CONi", "STP"} {
		if !strings.Contains(cp, want) {
			t.Errorf("compact missing %q: %s", want, cp)
		}
	}
	if _, err := s.CompactPolicy("ghost"); err == nil {
		t.Error("missing policy compact should error")
	}
	ref, err := s.ReferenceFileXML()
	if err != nil || !strings.Contains(ref, "POLICY-REF") {
		t.Errorf("reference: %v", err)
	}
	empty, err := NewSite()
	if err != nil {
		t.Fatal(err)
	}
	if _, err := empty.ReferenceFileXML(); err == nil {
		t.Error("no reference file should error")
	}
	if s.DB() == nil || s.GenericDB() == nil {
		t.Error("database accessors returned nil")
	}
}

func TestMatchCookieThroughCore(t *testing.T) {
	s, err := NewSite()
	if err != nil {
		t.Fatal(err)
	}
	if _, err := s.InstallPolicyXML(`<POLICY name="cookies"><STATEMENT>
	  <PURPOSE><telemarketing/></PURPOSE><RECIPIENT><unrelated/></RECIPIENT>
	  <RETENTION><indefinitely/></RETENTION>
	  <DATA-GROUP><DATA ref="#dynamic.cookies"><CATEGORIES><uniqueid/></CATEGORIES></DATA></DATA-GROUP>
	</STATEMENT></POLICY>`); err != nil {
		t.Fatal(err)
	}
	// Cookie matching before a reference file is installed fails.
	if _, err := s.MatchCookie(appel.JanePreferenceXML, "uid", EngineSQL); err == nil {
		t.Error("no reference file should error")
	}
	if err := s.InstallReferenceFileXML(`<META><POLICY-REFERENCES>
	  <POLICY-REF about="#cookies"><INCLUDE>/*</INCLUDE><COOKIE-INCLUDE name="uid*"/></POLICY-REF>
	</POLICY-REFERENCES></META>`); err != nil {
		t.Fatal(err)
	}
	for _, engine := range Engines {
		d, err := s.MatchCookie(appel.JanePreferenceXML, "uid_1", engine)
		if err != nil {
			t.Fatalf("%v: %v", engine, err)
		}
		if d.Behavior != "block" || d.PolicyName != "cookies" {
			t.Errorf("%v: %+v", engine, d)
		}
	}
	if _, err := s.MatchCookie(appel.JanePreferenceXML, "other", EngineSQL); err == nil {
		t.Error("uncovered cookie should error")
	}
	name, err := s.PolicyForCookie("uid_9")
	if err != nil || name != "cookies" {
		t.Errorf("PolicyForCookie: %q %v", name, err)
	}
}

func TestReferenceFileNamingUninstalledPolicyCookie(t *testing.T) {
	s := siteWithVolga(t)
	// Volga's reference file has no cookie patterns.
	if _, err := s.PolicyForCookie("any"); err == nil {
		t.Error("cookie without patterns should error")
	}
}
