package core

import (
	"errors"
	"os"
	"path/filepath"
	"strings"
	"testing"

	"p3pdb/internal/reldb"
)

// readConformanceDir loads every XML file of one side of the conformance
// corpus, keyed by file stem.
func readConformanceDir(t *testing.T, side string) map[string]string {
	t.Helper()
	dir := filepath.Join("testdata", "conformance", side)
	entries, err := os.ReadDir(dir)
	if err != nil {
		t.Fatalf("conformance corpus: %v", err)
	}
	out := make(map[string]string, len(entries))
	for _, e := range entries {
		data, err := os.ReadFile(filepath.Join(dir, e.Name()))
		if err != nil {
			t.Fatalf("conformance corpus %s: %v", e.Name(), err)
		}
		out[strings.TrimSuffix(e.Name(), ".xml")] = string(data)
	}
	if len(out) == 0 {
		t.Fatalf("conformance corpus %s is empty", dir)
	}
	return out
}

// TestConformanceCorpus is the differential conformance gate: every
// (policy, preference) pair in testdata/conformance runs through all
// four engines, and every engine must reach the native baseline's ruling
// (behavior and fired rule). The corpus is curated edge cases — empty
// DATA-GROUPs, connective corners, non-matching namespaces — where a
// translation shortcut would diverge silently; unlike the randomized
// differential, these pairs are stable, named, and run in -short mode.
// The XTable path may reject a pair with reldb.ErrTooComplex (the
// paper's blank Figure 21 cell); any other divergence fails.
func TestConformanceCorpus(t *testing.T) {
	policies := readConformanceDir(t, "policies")
	preferences := readConformanceDir(t, "preferences")

	s, err := NewSite()
	if err != nil {
		t.Fatal(err)
	}
	policyNames := make([]string, 0, len(policies))
	for stem, xml := range policies {
		names, err := s.InstallPolicyXML(xml)
		if err != nil {
			t.Fatalf("install %s: %v", stem, err)
		}
		policyNames = append(policyNames, names...)
	}

	for prefStem, prefXML := range preferences {
		for _, polName := range policyNames {
			t.Run(prefStem+"/"+polName, func(t *testing.T) {
				base, err := s.MatchPolicy(prefXML, polName, EngineNative)
				if err != nil {
					t.Fatalf("native baseline: %v", err)
				}
				for _, engine := range []Engine{EngineSQL, EngineXTable, EngineXQuery} {
					got, err := s.MatchPolicy(prefXML, polName, engine)
					if err != nil {
						if engine == EngineXTable && errors.Is(err, reldb.ErrTooComplex) {
							t.Logf("xtable rejected (too complex), tolerated")
							continue
						}
						t.Errorf("%v: %v", engine, err)
						continue
					}
					if got.Behavior != base.Behavior || got.RuleIndex != base.RuleIndex {
						t.Errorf("%v disagrees with native: got %s/rule %d, want %s/rule %d",
							engine, got.Behavior, got.RuleIndex, base.Behavior, base.RuleIndex)
					}
				}
			})
		}
	}
}
