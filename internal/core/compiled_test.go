package core

import (
	"testing"

	"p3pdb/internal/appel"
	"p3pdb/internal/workload"
)

func TestCompiledPreferenceAgreesWithSQL(t *testing.T) {
	d := workload.Generate(42)
	s, err := NewSite()
	if err != nil {
		t.Fatal(err)
	}
	for _, pol := range d.Policies[:10] {
		if err := s.InstallPolicy(pol); err != nil {
			t.Fatal(err)
		}
	}
	for _, pref := range d.Preferences {
		c, err := s.CompilePreference(pref.XML)
		if err != nil {
			t.Fatalf("%s: %v", pref.Level, err)
		}
		if c.Compile <= 0 {
			t.Errorf("%s: compile time not measured", pref.Level)
		}
		for _, pol := range d.Policies[:10] {
			want, err := s.MatchPolicy(pref.XML, pol.Name, EngineSQL)
			if err != nil {
				t.Fatal(err)
			}
			got, err := s.MatchCompiled(c, pol.Name)
			if err != nil {
				t.Fatal(err)
			}
			if got.Behavior != want.Behavior || got.RuleIndex != want.RuleIndex {
				t.Errorf("%s vs %s: compiled %s/%d, direct %s/%d",
					pref.Level, pol.Name, got.Behavior, got.RuleIndex, want.Behavior, want.RuleIndex)
			}
			if got.Convert != 0 {
				t.Errorf("compiled match should have no conversion time")
			}
		}
	}
}

func TestCompiledSurvivesPolicyInstalls(t *testing.T) {
	s := siteWithVolga(t)
	c, err := s.CompilePreference(appel.JanePreferenceXML)
	if err != nil {
		t.Fatal(err)
	}
	d, err := s.MatchCompiled(c, "volga")
	if err != nil || d.Behavior != "request" {
		t.Fatalf("before: %+v %v", d, err)
	}
	// A policy installed after compilation is still matchable: the
	// compiled form parameterizes the policy id.
	v2 := `<POLICY name="other"><STATEMENT>
	  <PURPOSE><telemarketing/></PURPOSE><RECIPIENT><public/></RECIPIENT>
	  <RETENTION><indefinitely/></RETENTION>
	  <DATA-GROUP><DATA ref="#user.name"/></DATA-GROUP>
	</STATEMENT></POLICY>`
	if _, err := s.InstallPolicyXML(v2); err != nil {
		t.Fatal(err)
	}
	d, err = s.MatchCompiled(c, "other")
	if err != nil || d.Behavior != "block" {
		t.Fatalf("after install: %+v %v", d, err)
	}
}

func TestCompiledErrors(t *testing.T) {
	s := siteWithVolga(t)
	if _, err := s.CompilePreference("not xml"); err == nil {
		t.Error("bad preference should fail to compile")
	}
	c, err := s.CompilePreference(appel.JanePreferenceXML)
	if err != nil {
		t.Fatal(err)
	}
	if _, err := s.MatchCompiled(c, "ghost"); err == nil {
		t.Error("unknown policy should fail")
	}
	if _, err := s.MatchCompiledURI(c, "/books/1"); err != nil {
		t.Errorf("URI path: %v", err)
	}
	// Without a catch-all, no rule may fire.
	noCatchAll := `<appel:RULESET xmlns:appel="http://www.w3.org/2002/01/APPELv1">
	  <appel:RULE behavior="block"><POLICY><STATEMENT><PURPOSE appel:connective="or"><telemarketing/></PURPOSE></STATEMENT></POLICY></appel:RULE>
	</appel:RULESET>`
	c2, err := s.CompilePreference(noCatchAll)
	if err != nil {
		t.Fatal(err)
	}
	if _, err := s.MatchCompiled(c2, "volga"); err == nil {
		t.Error("no-rule-fired should error")
	}
}

func TestCompiledFasterThanFullPipeline(t *testing.T) {
	if testing.Short() {
		t.Skip("timing comparison")
	}
	d := workload.Generate(42)
	// Disable both caches: with the conversion cache on, MatchPolicy
	// skips per-match conversion, and with the decision cache on, repeat
	// matches skip the engines entirely — either way the two paths tie
	// (see TestCachedDecisionsMatchUncached). This test pins the
	// *uncached* pipeline as the thing compilation beats.
	s, err := NewSiteWithOptions(Options{
		DisableConversionCache: true,
		DisableDecisionCache:   true,
	})
	if err != nil {
		t.Fatal(err)
	}
	for _, pol := range d.Policies {
		if err := s.InstallPolicy(pol); err != nil {
			t.Fatal(err)
		}
	}
	pref, _ := workload.PreferenceByLevel("High")
	c, err := s.CompilePreference(pref.XML)
	if err != nil {
		t.Fatal(err)
	}
	var fullTotal, compiledTotal int64
	for round := 0; round < 5; round++ {
		for _, pol := range d.Policies {
			full, err := s.MatchPolicy(pref.XML, pol.Name, EngineSQL)
			if err != nil {
				t.Fatal(err)
			}
			fullTotal += int64(full.Convert + full.Query)
			comp, err := s.MatchCompiled(c, pol.Name)
			if err != nil {
				t.Fatal(err)
			}
			compiledTotal += int64(comp.Query)
		}
	}
	if compiledTotal >= fullTotal {
		t.Errorf("compiled (%d) should beat full pipeline (%d)", compiledTotal, fullTotal)
	}
}
