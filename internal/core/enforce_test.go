package core

import "testing"

func TestAuthorizeUse(t *testing.T) {
	s := siteWithVolga(t)

	// Statement 1 collects user.name for the current purpose.
	d, err := s.AuthorizeUse("volga", "current", "#user.name")
	if err != nil {
		t.Fatal(err)
	}
	if !d.Allowed || d.Required != "always" || d.Retention != "stated-purpose" {
		t.Errorf("current/user.name: %+v", d)
	}

	// Leaf references under a collected struct are covered.
	d, err = s.AuthorizeUse("volga", "current", "#user.home-info.postal.street")
	if err != nil {
		t.Fatal(err)
	}
	if !d.Allowed {
		t.Errorf("leaf under collected struct: %+v", d)
	}

	// Statement 2 uses email for contact — but only opt-in.
	d, err = s.AuthorizeUse("volga", "contact", "#user.home-info.online.email")
	if err != nil {
		t.Fatal(err)
	}
	if !d.Allowed || d.Required != "opt-in" || d.Retention != "business-practices" {
		t.Errorf("contact/email: %+v", d)
	}

	// Telemarketing is disclosed nowhere: not allowed.
	d, err = s.AuthorizeUse("volga", "telemarketing", "#user.home-info.telecom.telephone")
	if err != nil {
		t.Fatal(err)
	}
	if d.Allowed {
		t.Errorf("undisclosed use allowed: %+v", d)
	}

	// The purpose exists but not for this data item.
	d, err = s.AuthorizeUse("volga", "contact", "#user.name")
	if err != nil {
		t.Fatal(err)
	}
	if d.Allowed {
		t.Errorf("contact/user.name should not be covered: %+v", d)
	}

	// Errors.
	if _, err := s.AuthorizeUse("volga", "world-domination", "#user.name"); err == nil {
		t.Error("unknown purpose should error")
	}
	if _, err := s.AuthorizeUse("ghost", "current", "#user.name"); err == nil {
		t.Error("unknown policy should error")
	}
}

func TestAuthorizeUseStrongestPermissionWins(t *testing.T) {
	s, err := NewSite()
	if err != nil {
		t.Fatal(err)
	}
	// Two statements cover the same (purpose, data): one opt-in, one
	// unconditional. The standing permission is the unconditional one.
	if _, err := s.InstallPolicyXML(`<POLICY name="dual">
	  <STATEMENT>
	    <PURPOSE><admin required="opt-in"/></PURPOSE>
	    <RECIPIENT><ours/></RECIPIENT><RETENTION><indefinitely/></RETENTION>
	    <DATA-GROUP><DATA ref="#dynamic.clickstream"/></DATA-GROUP>
	  </STATEMENT>
	  <STATEMENT>
	    <PURPOSE><admin/></PURPOSE>
	    <RECIPIENT><ours/></RECIPIENT><RETENTION><stated-purpose/></RETENTION>
	    <DATA-GROUP><DATA ref="#dynamic.clickstream"/></DATA-GROUP>
	  </STATEMENT>
	</POLICY>`); err != nil {
		t.Fatal(err)
	}
	d, err := s.AuthorizeUse("dual", "admin", "#dynamic.clickstream")
	if err != nil {
		t.Fatal(err)
	}
	if !d.Allowed || d.Required != "always" {
		t.Errorf("dual coverage: %+v", d)
	}
}

func TestAuthorizeUseOptOutBeatsOptIn(t *testing.T) {
	s, err := NewSite()
	if err != nil {
		t.Fatal(err)
	}
	if _, err := s.InstallPolicyXML(`<POLICY name="consents">
	  <STATEMENT>
	    <PURPOSE><develop required="opt-in"/></PURPOSE>
	    <RECIPIENT><ours/></RECIPIENT><RETENTION><no-retention/></RETENTION>
	    <DATA-GROUP><DATA ref="#dynamic.searchtext"/></DATA-GROUP>
	  </STATEMENT>
	  <STATEMENT>
	    <PURPOSE><develop required="opt-out"/></PURPOSE>
	    <RECIPIENT><ours/></RECIPIENT><RETENTION><no-retention/></RETENTION>
	    <DATA-GROUP><DATA ref="#dynamic.searchtext"/></DATA-GROUP>
	  </STATEMENT>
	</POLICY>`); err != nil {
		t.Fatal(err)
	}
	d, err := s.AuthorizeUse("consents", "develop", "#dynamic.searchtext")
	if err != nil {
		t.Fatal(err)
	}
	// Opt-out (use allowed unless the user objected) is stronger
	// standing permission than opt-in (use forbidden until consent).
	if !d.Allowed || d.Required != "opt-out" {
		t.Errorf("opt-out should rank above opt-in: %+v", d)
	}
}
