package core

import (
	"errors"
	"strings"
	"testing"

	"p3pdb/internal/appel"
	"p3pdb/internal/compact"
	"p3pdb/internal/faultkit"
	"p3pdb/internal/reldb"
	"p3pdb/internal/workload"
)

// checkCorpus builds the conservatism corpus: every conformance policy
// plus the full generated workload set on one site, and every
// conformance preference plus the five JRC levels.
func checkCorpus(t *testing.T) (*Site, []string, map[string]string) {
	t.Helper()
	s, err := NewSite()
	if err != nil {
		t.Fatal(err)
	}
	var policyNames []string
	for stem, xml := range readConformanceDir(t, "policies") {
		names, err := s.InstallPolicyXML(xml)
		if err != nil {
			t.Fatalf("install %s: %v", stem, err)
		}
		policyNames = append(policyNames, names...)
	}
	d := workload.Generate(7)
	for _, pol := range d.Policies {
		if err := s.InstallPolicy(pol); err != nil {
			t.Fatalf("install workload policy %s: %v", pol.Name, err)
		}
		policyNames = append(policyNames, pol.Name)
	}
	prefs := readConformanceDir(t, "preferences")
	for _, p := range d.Preferences {
		prefs["jrc-"+strings.ReplaceAll(strings.ToLower(p.Level), " ", "-")] = p.XML
	}
	return s, policyNames, prefs
}

// TestCheckConservatism is the fast path's safety gate: across the
// conformance corpus, the generated workload policies, and every
// preference (conformance edge cases plus all five JRC levels), a
// fast-path "allow" must never contradict any of the four full engines —
// none may block where the summary claimed safety. Where the fallback
// ran instead, its verdict must equal the full decision's.
func TestCheckConservatism(t *testing.T) {
	if testing.Short() {
		t.Skip("full differential in -short mode")
	}
	s, policyNames, prefs := checkCorpus(t)
	fastPaths := 0
	for prefStem, prefXML := range prefs {
		for _, polName := range policyNames {
			res, err := s.CheckPolicy(prefXML, polName, EngineSQL)
			if err != nil {
				// The check surfaces the full engine's errors (a
				// preference with no catch-all, for example); it must
				// never have claimed a fast-path allow first.
				continue
			}
			if !res.FastPath {
				if res.Decision == nil {
					t.Errorf("%s/%s: fallback without a decision", prefStem, polName)
				} else if res.Allowed == res.Decision.Blocked() {
					t.Errorf("%s/%s: allowed=%v contradicts decision %q",
						prefStem, polName, res.Allowed, res.Decision.Behavior)
				}
				continue
			}
			fastPaths++
			if !res.Allowed {
				t.Errorf("%s/%s: fast path produced a deny; it may only prove allows", prefStem, polName)
			}
			for _, engine := range Engines {
				got, err := s.MatchPolicy(prefXML, polName, engine)
				if err != nil {
					if engine == EngineXTable && errors.Is(err, reldb.ErrTooComplex) {
						continue
					}
					t.Errorf("%s/%s: %v after fast allow: %v", prefStem, polName, engine, err)
					continue
				}
				if got.Blocked() {
					t.Errorf("%s/%s: fast path allowed but %v blocks (rule %d %q)",
						prefStem, polName, engine, got.RuleIndex, got.RuleDescription)
				}
			}
		}
	}
	if fastPaths == 0 {
		t.Fatal("no pair took the fast path; the corpus no longer exercises it")
	}
}

// TestCheckFastPathByLevel pins which JRC levels are fast-path eligible:
// the monotone levels (Very Low, Low, High) may short-circuit, while
// Medium (exact connectives) and Very High (specific data refs) must
// always fall back as unsafe preferences.
func TestCheckFastPathByLevel(t *testing.T) {
	s, err := NewSite()
	if err != nil {
		t.Fatal(err)
	}
	d := workload.Generate(11)
	if err := s.ReplacePolicies(d.Policies, d.RefFile); err != nil {
		t.Fatal(err)
	}
	eligible := map[string]bool{"Very Low": true, "Low": true, "High": true}
	for _, p := range d.Preferences {
		sawFast := false
		for _, pol := range d.Policies {
			res, err := s.CheckURI(p.XML, d.URIFor(pol.Name), EngineSQL)
			if err != nil {
				t.Fatalf("%s/%s: %v", p.Level, pol.Name, err)
			}
			if res.FastPath {
				sawFast = true
			} else if !eligible[p.Level] && res.FallbackReason != "unsafe-preference" {
				t.Errorf("%s/%s: want unsafe-preference fallback, got %q",
					p.Level, pol.Name, res.FallbackReason)
			}
			if res.CP == "" {
				t.Errorf("%s/%s: check carried no compact policy", p.Level, pol.Name)
			}
		}
		if eligible[p.Level] && !sawFast {
			t.Errorf("%s: no policy took the fast path", p.Level)
		}
		if !eligible[p.Level] && sawFast {
			t.Errorf("%s: took the fast path despite unsafe rules", p.Level)
		}
	}
	// Very Low has no block rules at all: every check must short-circuit.
	vl, _ := workload.PreferenceByLevel("Very Low")
	for _, pol := range d.Policies {
		res, err := s.CheckURI(vl.XML, d.URIFor(pol.Name), EngineSQL)
		if err != nil {
			t.Fatal(err)
		}
		if !res.FastPath || !res.Allowed {
			t.Errorf("Very Low on %s: want fast allow, got %+v", pol.Name, res)
		}
	}
}

// TestCheckCookiePath drives the cookie half of the loop through the
// workload reference file's cookie patterns.
func TestCheckCookiePath(t *testing.T) {
	s, err := NewSite()
	if err != nil {
		t.Fatal(err)
	}
	d := workload.Generate(3)
	if err := s.ReplacePolicies(d.Policies, d.RefFile); err != nil {
		t.Fatal(err)
	}
	pol := d.Policies[0].Name
	pref, _ := workload.PreferenceByLevel("Very Low")
	res, err := s.CheckCookie(pref.XML, d.CookieFor(pol), EngineSQL)
	if err != nil {
		t.Fatal(err)
	}
	if res.PolicyName != pol || !res.FastPath {
		t.Errorf("cookie check: %+v", res)
	}
	if _, err := s.CheckCookie(pref.XML, "unmatched-cookie", EngineSQL); err == nil {
		t.Error("unmatched cookie name: want resolution error")
	}
}

// TestCheckForcedFallback is the fast-path outage drill: with the
// fastpath.summary fault armed, every check must fall back to the full
// engine and still agree with it — the conservatism obligation survives
// a broken summary layer.
func TestCheckForcedFallback(t *testing.T) {
	faultkit.Reset()
	t.Cleanup(faultkit.Reset)
	s, err := NewSite()
	if err != nil {
		t.Fatal(err)
	}
	d := workload.Generate(5)
	if err := s.ReplacePolicies(d.Policies, d.RefFile); err != nil {
		t.Fatal(err)
	}
	if err := faultkit.Enable(faultkit.PointFastpathSummary + ":error"); err != nil {
		t.Fatal(err)
	}
	pref, _ := workload.PreferenceByLevel("Very Low")
	for _, pol := range d.Policies[:5] {
		res, err := s.CheckURI(pref.XML, d.URIFor(pol.Name), EngineSQL)
		if err != nil {
			t.Fatalf("%s: %v", pol.Name, err)
		}
		if res.FastPath {
			t.Errorf("%s: fast path taken under an armed fastpath.summary fault", pol.Name)
		}
		if res.FallbackReason != "forced" {
			t.Errorf("%s: fallback reason %q, want forced", pol.Name, res.FallbackReason)
		}
		full, err := s.MatchURI(pref.XML, d.URIFor(pol.Name), EngineSQL)
		if err != nil {
			t.Fatal(err)
		}
		if res.Allowed == full.Blocked() {
			t.Errorf("%s: forced fallback disagrees with full match", pol.Name)
		}
	}
	if faultkit.Firings(faultkit.PointFastpathSummary) == 0 {
		t.Error("fault never fired")
	}
}

// TestCompactPolicyPrecomputed asserts the CP form rides the snapshot:
// available immediately after install, gone after removal, and refreshed
// by replacement.
func TestCompactPolicyPrecomputed(t *testing.T) {
	s, err := NewSite()
	if err != nil {
		t.Fatal(err)
	}
	d := workload.Generate(9)
	pol := d.Policies[0]
	if err := s.InstallPolicy(pol); err != nil {
		t.Fatal(err)
	}
	cp, err := s.CompactPolicy(pol.Name)
	if err != nil || cp == "" {
		t.Fatalf("CompactPolicy: %q, %v", cp, err)
	}
	if _, err := compact.Parse(cp); err != nil {
		t.Fatalf("CP form does not re-parse: %v", err)
	}
	if err := s.RemovePolicy(pol.Name); err != nil {
		t.Fatal(err)
	}
	if _, err := s.CompactPolicy(pol.Name); err == nil {
		t.Error("CompactPolicy after removal: want error")
	}
}

// TestSummarySafeFragment pins the analyzer's fence posts on the shapes
// the JRC levels and the conformance corpus rely on.
func TestSummarySafeFragment(t *testing.T) {
	parse := func(t *testing.T, xml string) *appel.Ruleset {
		t.Helper()
		rs, err := appel.Parse(xml)
		if err != nil {
			t.Fatal(err)
		}
		return rs
	}
	const head = `<appel:RULESET xmlns:appel="http://www.w3.org/2002/01/APPELv1" xmlns="http://www.w3.org/2002/01/P3Pv1">`
	const otherwise = `<appel:OTHERWISE behavior="request"/></appel:RULESET>`
	for _, tc := range []struct {
		name string
		xml  string
		want bool
	}{
		{"otherwise only", head + otherwise, true},
		{"safe or-connective", head +
			`<appel:RULE behavior="block"><POLICY><STATEMENT><RECIPIENT appel:connective="or"><unrelated/><public/></RECIPIENT></STATEMENT></POLICY></appel:RULE>` +
			otherwise, true},
		{"wildcard data ref", head +
			`<appel:RULE behavior="block"><POLICY><STATEMENT><DATA-GROUP><DATA ref="*"><CATEGORIES appel:connective="or"><health/></CATEGORIES></DATA></DATA-GROUP></STATEMENT></POLICY></appel:RULE>` +
			otherwise, true},
		{"no catch-all", head +
			`<appel:RULE behavior="block"><POLICY/></appel:RULE></appel:RULESET>`, false},
		{"exact connective", head +
			`<appel:RULE behavior="block"><POLICY><STATEMENT><PURPOSE appel:connective="or-exact"><current/></PURPOSE></STATEMENT></POLICY></appel:RULE>` +
			otherwise, false},
		{"negated connective", head +
			`<appel:RULE behavior="block"><POLICY><STATEMENT appel:connective="non-or"><PURPOSE/></STATEMENT></POLICY></appel:RULE>` +
			otherwise, false},
		{"specific data ref", head +
			`<appel:RULE behavior="block"><POLICY><STATEMENT><DATA-GROUP><DATA ref="#user.bdate"/></DATA-GROUP></STATEMENT></POLICY></appel:RULE>` +
			otherwise, false},
		{"opt-in required pattern", head +
			`<appel:RULE behavior="block"><POLICY><STATEMENT><PURPOSE><contact required="opt-in"/></PURPOSE></STATEMENT></POLICY></appel:RULE>` +
			otherwise, false},
		{"non-vocabulary element", head +
			`<appel:RULE behavior="block"><POLICY><ENTITY/></POLICY></appel:RULE>` +
			otherwise, false},
		{"unsafe shapes allowed outside block rules", head +
			`<appel:RULE behavior="request"><POLICY><STATEMENT><PURPOSE appel:connective="or-exact"><current/></PURPOSE></STATEMENT></POLICY></appel:RULE>` +
			otherwise, true},
	} {
		t.Run(tc.name, func(t *testing.T) {
			if got := compact.SummarySafe(parse(t, tc.xml)); got != tc.want {
				t.Errorf("SummarySafe = %v, want %v", got, tc.want)
			}
		})
	}
	// The JRC levels: monotone levels safe, Medium/Very High not.
	for level, want := range map[string]bool{
		"Very Low": true, "Low": true, "High": true,
		"Medium": false, "Very High": false,
	} {
		p, ok := workload.PreferenceByLevel(level)
		if !ok {
			t.Fatalf("unknown level %s", level)
		}
		if got := compact.SummarySafe(p.Ruleset); got != want {
			t.Errorf("SummarySafe(%s) = %v, want %v", level, got, want)
		}
	}
}
