package replica

import (
	"bytes"
	"context"
	"encoding/json"
	"errors"
	"fmt"
	"io"
	"net/http"
	"net/http/httptest"
	"strings"
	"sync"
	"testing"
	"time"

	"p3pdb/internal/durable"
	"p3pdb/internal/faultkit"
	"p3pdb/internal/registry"
	"p3pdb/internal/server"
)

// polDoc builds a minimal valid policy document.
func polDoc(name string) string {
	return fmt.Sprintf(`<POLICY name=%q><STATEMENT><NON-IDENTIFIABLE/></STATEMENT></POLICY>`, name)
}

// refDocFor covers /{name}/* with each named policy.
func refDocFor(names ...string) string {
	var b strings.Builder
	b.WriteString(`<META><POLICY-REFERENCES>`)
	for _, n := range names {
		fmt.Fprintf(&b, `<POLICY-REF about="#%s"><INCLUDE>/%s/*</INCLUDE></POLICY-REF>`, n, n)
	}
	b.WriteString(`</POLICY-REFERENCES></META>`)
	return b.String()
}

// newLeader stands up a durable multi-tenant leader over real HTTP.
func newLeader(t *testing.T) (*registry.Registry, *httptest.Server) {
	t.Helper()
	store, err := durable.Open(t.TempDir(), durable.Options{Fsync: durable.FsyncNever, CheckpointEvery: -1})
	if err != nil {
		t.Fatal(err)
	}
	reg, err := registry.New(registry.Options{Durable: store})
	if err != nil {
		t.Fatal(err)
	}
	ts := httptest.NewServer(server.NewMulti(reg))
	t.Cleanup(func() {
		ts.Close()
		reg.Close()
	})
	return reg, ts
}

// seedTenant creates a tenant on the leader and installs policies and a
// reference file through the admin API so everything rides the journal.
func seedTenant(t *testing.T, base, name string, policies ...string) {
	t.Helper()
	if err := server.NewClient(base).CreateSite(name); err != nil {
		t.Fatal(err)
	}
	c := server.NewClient(base + "/sites/" + name)
	for _, p := range policies {
		if _, err := c.InstallPolicies(polDoc(p)); err != nil {
			t.Fatal(err)
		}
	}
	if err := c.InstallReferenceFile(refDocFor(policies...)); err != nil {
		t.Fatal(err)
	}
}

// syncedNode builds a follower for the named tenants and runs one
// catch-up round.
func syncedNode(t *testing.T, leader string, tenants ...string) *Node {
	t.Helper()
	node, err := New(Options{Leader: leader, Tenants: tenants})
	if err != nil {
		t.Fatal(err)
	}
	ctx, cancel := context.WithTimeout(context.Background(), 30*time.Second)
	defer cancel()
	if err := node.Sync(ctx); err != nil {
		t.Fatal(err)
	}
	t.Cleanup(node.Stop)
	return node
}

// get fetches a URL and returns status and body.
func get(t *testing.T, url string) (int, []byte) {
	t.Helper()
	resp, err := http.Get(url)
	if err != nil {
		t.Fatal(err)
	}
	defer resp.Body.Close()
	body, err := io.ReadAll(resp.Body)
	if err != nil {
		t.Fatal(err)
	}
	return resp.StatusCode, body
}

// TestFollowerTailsLeader is the basic protocol loop: a follower syncs
// a journaled tenant, serves the same policy list read-only, and picks
// up later writes on the next round.
func TestFollowerTailsLeader(t *testing.T) {
	_, leader := newLeader(t)
	seedTenant(t, leader.URL, "a.example", "p1", "p2")

	node := syncedNode(t, leader.URL, "a.example")
	fs := httptest.NewServer(node)
	defer fs.Close()

	status, body := get(t, fs.URL+"/sites/a.example/policies")
	if status != http.StatusOK {
		t.Fatalf("follower /policies: %d %s", status, body)
	}
	_, want := get(t, leader.URL+"/sites/a.example/policies")
	if !bytes.Equal(body, want) {
		t.Fatalf("policy lists diverge: follower %s leader %s", body, want)
	}

	// A later write reaches the follower on its next sync round.
	c := server.NewClient(leader.URL + "/sites/a.example")
	if _, err := c.InstallPolicies(polDoc("p3")); err != nil {
		t.Fatal(err)
	}
	ctx, cancel := context.WithTimeout(context.Background(), 10*time.Second)
	defer cancel()
	if err := node.Sync(ctx); err != nil {
		t.Fatal(err)
	}
	status, body = get(t, fs.URL+"/sites/a.example/policies")
	if status != http.StatusOK || !strings.Contains(string(body), "p3") {
		t.Fatalf("follower missed p3: %d %s", status, body)
	}

	// Decisions come from local state: a check on the follower answers
	// without the leader (closed below to prove it).
	leader.Close()
	fc := server.NewClient(fs.URL + "/sites/a.example")
	res, cp, err := fc.Check(server.CheckRequest{URL: "/p1/index.html", Level: "mild"})
	if err != nil {
		t.Fatalf("follower check after leader death: %v", err)
	}
	if res.URL == nil || res.URL.PolicyName != "p1" || cp == "" {
		t.Fatalf("follower check resolved wrong: %+v (cp %q)", res, cp)
	}
}

// TestFollowerRejectsWrites checks the typed 403: every mutation on a
// follower is refused with a machine-readable reason and the leader's
// URL, for both the tenant API and tenant admin.
func TestFollowerRejectsWrites(t *testing.T) {
	_, leader := newLeader(t)
	seedTenant(t, leader.URL, "a.example", "p1")
	node := syncedNode(t, leader.URL, "a.example")
	fs := httptest.NewServer(node)
	defer fs.Close()

	assertReadOnly := func(method, path, body string) {
		t.Helper()
		req, err := http.NewRequest(method, fs.URL+path, strings.NewReader(body))
		if err != nil {
			t.Fatal(err)
		}
		resp, err := http.DefaultClient.Do(req)
		if err != nil {
			t.Fatal(err)
		}
		defer resp.Body.Close()
		if resp.StatusCode != http.StatusForbidden {
			t.Fatalf("%s %s: status %d, want 403", method, path, resp.StatusCode)
		}
		var e struct {
			Reason string `json:"reason"`
			Leader string `json:"leader"`
		}
		if err := json.NewDecoder(resp.Body).Decode(&e); err != nil {
			t.Fatal(err)
		}
		if e.Reason != "read-only-replica" {
			t.Fatalf("%s %s: reason %q", method, path, e.Reason)
		}
		if e.Leader != leader.URL {
			t.Fatalf("%s %s: leader %q, want %q", method, path, e.Leader, leader.URL)
		}
	}
	assertReadOnly(http.MethodPost, "/sites/a.example/policies", polDoc("p9"))
	assertReadOnly(http.MethodDelete, "/sites/a.example/policies/p1", "")
	assertReadOnly(http.MethodPost, "/sites/a.example/reference", refDocFor("p1"))
	assertReadOnly(http.MethodPut, "/sites/new.example", "")
	assertReadOnly(http.MethodDelete, "/sites/a.example", "")

	// Reads still answer.
	if status, body := get(t, fs.URL+"/sites/a.example/policies"); status != http.StatusOK {
		t.Fatalf("read after rejected writes: %d %s", status, body)
	}
}

// TestFollowerStateBootstrap covers the checkpoint-truncated log: a
// fresh follower whose cursor predates the snapshot receives the state
// as one OpState record and lands on the exact LSN.
func TestFollowerStateBootstrap(t *testing.T) {
	reg, leader := newLeader(t)
	seedTenant(t, leader.URL, "a.example", "p1", "p2", "p3")
	if err := reg.CheckpointAll(); err != nil {
		t.Fatal(err)
	}
	// The checkpoint truncated the log: records 1..N no longer exist to
	// ship, so the follower must bootstrap from the shipped snapshot.
	node := syncedNode(t, leader.URL, "a.example")
	st := node.Status()
	if len(st) != 1 || !st[0].Synced {
		t.Fatalf("follower not synced: %+v", st)
	}
	want := reg.Journal("a.example").Status().LSN
	if st[0].AppliedLSN != want {
		t.Fatalf("applied %d, want leader LSN %d", st[0].AppliedLSN, want)
	}
	fs := httptest.NewServer(node)
	defer fs.Close()
	status, body := get(t, fs.URL+"/sites/a.example/policies")
	if status != http.StatusOK {
		t.Fatalf("bootstrap read: %d %s", status, body)
	}
	for _, p := range []string{"p1", "p2", "p3"} {
		if !strings.Contains(string(body), p) {
			t.Fatalf("bootstrap missing %s: %s", p, body)
		}
	}
}

// TestFollowerReadyzLagGate checks readiness gating: a follower that
// has not completed a catch-up round reports 503, and flips ready once
// synced.
func TestFollowerReadyzLagGate(t *testing.T) {
	_, leader := newLeader(t)
	seedTenant(t, leader.URL, "a.example", "p1")
	node, err := New(Options{Leader: leader.URL, Tenants: []string{"a.example"}})
	if err != nil {
		t.Fatal(err)
	}
	defer node.Stop()
	fs := httptest.NewServer(node)
	defer fs.Close()

	status, body := get(t, fs.URL+"/readyz")
	if status != http.StatusServiceUnavailable || !strings.Contains(string(body), "replica-lagging") {
		t.Fatalf("unsynced follower readyz: %d %s", status, body)
	}
	ctx, cancel := context.WithTimeout(context.Background(), 30*time.Second)
	defer cancel()
	if err := node.Sync(ctx); err != nil {
		t.Fatal(err)
	}
	if status, body = get(t, fs.URL+"/readyz"); status != http.StatusOK {
		t.Fatalf("synced follower readyz: %d %s", status, body)
	}

	// /replication/status reports the follower role and position.
	var rs server.ReplicationStatus
	_, body = get(t, fs.URL+"/replication/status")
	if err := json.Unmarshal(body, &rs); err != nil {
		t.Fatal(err)
	}
	if rs.Role != "follower" || !rs.Ready || rs.Tenants["a.example"].Lag != 0 {
		t.Fatalf("replication status wrong: %s", body)
	}
}

// fakeLeader serves a crafted WAL image for one tenant, byte-exact, so
// the kill matrix can hand the follower every truncation and corruption
// a dying leader can produce.
func fakeLeader(t *testing.T, image []byte, lsn uint64) *httptest.Server {
	t.Helper()
	mux := http.NewServeMux()
	mux.HandleFunc("/sites/x.example/wal", func(w http.ResponseWriter, r *http.Request) {
		w.Header().Set("Content-Type", "application/octet-stream")
		w.Header().Set("X-WAL-LSN", fmt.Sprint(lsn))
		_, _ = w.Write(image)
	})
	ts := httptest.NewServer(mux)
	t.Cleanup(ts.Close)
	return ts
}

// TestFollowerKillMatrix feeds the follower a shipped stream truncated
// at every byte boundary and corrupted at every frame: the follower
// must classify torn vs corrupt exactly like local recovery, apply
// whole records only, and never advance its cursor past what it
// verifiably applied.
func TestFollowerKillMatrix(t *testing.T) {
	recs := []durable.Record{
		{LSN: 1, Op: durable.OpInstall, Name: "p1", Doc: polDoc("p1")},
		{LSN: 2, Op: durable.OpInstall, Name: "p2", Doc: polDoc("p2")},
		{LSN: 3, Op: durable.OpReference, Doc: refDocFor("p1", "p2")},
	}
	var image []byte
	var edges []int // byte offset where each record's frame ends
	for i := range recs {
		frame, err := durable.EncodeRecord(&recs[i])
		if err != nil {
			t.Fatal(err)
		}
		image = append(image, frame...)
		edges = append(edges, len(image))
	}
	wholeAt := func(cut int) uint64 {
		var n uint64
		for _, e := range edges {
			if cut >= e {
				n++
			}
		}
		return n
	}

	for cut := 0; cut <= len(image); cut++ {
		ts := fakeLeader(t, image[:cut], 3)
		node, err := New(Options{Leader: ts.URL, Tenants: []string{"x.example"}})
		if err != nil {
			t.Fatal(err)
		}
		ctx, cancel := context.WithTimeout(context.Background(), 10*time.Second)
		err = node.Sync(ctx)
		cancel()
		want := wholeAt(cut)
		atEdge := want == 3 || (cut == 0)
		if cut == 0 || want == 3 {
			// Nothing shipped or everything shipped: both are clean ends.
			if cut == len(image) && err != nil {
				t.Fatalf("cut %d: clean stream errored: %v", cut, err)
			}
		}
		if !atEdge {
			for _, e := range edges {
				if cut == e {
					atEdge = true
					break
				}
			}
		}
		if !atEdge && !errors.Is(err, durable.ErrStreamTorn) {
			t.Fatalf("cut %d: want torn, got %v", cut, err)
		}
		st := node.Status()[0]
		if st.AppliedLSN != want {
			t.Fatalf("cut %d: applied %d, want %d", cut, st.AppliedLSN, want)
		}
		// The follower's state is a consistent prefix: exactly the whole
		// records, nothing partial.
		names := node.Registry()
		site, gerr := names.Get("x.example")
		if gerr != nil {
			t.Fatal(gerr)
		}
		got := site.PolicyNames()
		if uint64(len(got)) != min(want, 2) {
			t.Fatalf("cut %d: %d policies for %d applied records", cut, len(got), want)
		}
		node.Stop()
	}

	// Corruption: flip a byte inside frame 1 with valid frames beyond —
	// the follower must call it corrupt (bit rot), not torn, and apply
	// nothing.
	mut := append([]byte(nil), image...)
	mut[edges[0]/2] ^= 0xff
	ts := fakeLeader(t, mut, 3)
	node, err := New(Options{Leader: ts.URL, Tenants: []string{"x.example"}})
	if err != nil {
		t.Fatal(err)
	}
	defer node.Stop()
	ctx, cancel := context.WithTimeout(context.Background(), 10*time.Second)
	defer cancel()
	err = node.Sync(ctx)
	if !errors.Is(err, durable.ErrCorrupt) {
		t.Fatalf("corrupt stream: want ErrCorrupt, got %v", err)
	}
	if st := node.Status()[0]; st.AppliedLSN != 0 || st.Synced {
		t.Fatalf("corrupt stream advanced the cursor: %+v", st)
	}
}

// TestFollowerStreamFaults arms the stream-drop and apply-failure
// points: the follower must ride through injected failures — each round
// classifies the cut stream as torn, retries from its cursor — and
// still converge to the leader's exact position.
func TestFollowerStreamFaults(t *testing.T) {
	faultkit.Reset()
	t.Cleanup(faultkit.Reset)
	_, leader := newLeader(t)
	seedTenant(t, leader.URL, "a.example", "p1", "p2")

	if err := faultkit.Enable(faultkit.PointReplicaStream + ":error:times=2"); err != nil {
		t.Fatal(err)
	}
	if err := faultkit.Enable(faultkit.PointReplicaApply + ":error:after=1:times=1"); err != nil {
		t.Fatal(err)
	}
	node, err := New(Options{Leader: leader.URL, Tenants: []string{"a.example"}, PollInterval: 5 * time.Millisecond})
	if err != nil {
		t.Fatal(err)
	}
	if err := node.Start(); err != nil {
		t.Fatal(err)
	}
	defer node.Stop()

	deadline := time.Now().Add(30 * time.Second)
	for {
		st := node.Status()
		if len(st) == 1 && st[0].Synced && st[0].Lag == 0 && st[0].AppliedLSN > 0 {
			break
		}
		if time.Now().After(deadline) {
			t.Fatalf("follower never converged through faults: %+v", st)
		}
		time.Sleep(5 * time.Millisecond)
	}
}

// TestFollowerChurnRace is the -race drill: the leader replaces
// policies while the follower tails and concurrent readers hit its
// matching and status endpoints.
func TestFollowerChurnRace(t *testing.T) {
	_, leader := newLeader(t)
	seedTenant(t, leader.URL, "a.example", "p1")
	node, err := New(Options{Leader: leader.URL, Tenants: []string{"a.example"}, PollInterval: time.Millisecond, Wait: 100 * time.Millisecond})
	if err != nil {
		t.Fatal(err)
	}
	if err := node.Start(); err != nil {
		t.Fatal(err)
	}
	defer node.Stop()
	fs := httptest.NewServer(node)
	defer fs.Close()

	const writes = 30
	var wg sync.WaitGroup
	wg.Add(1)
	go func() {
		defer wg.Done()
		c := server.NewClient(leader.URL + "/sites/a.example")
		for i := 0; i < writes; i++ {
			name := fmt.Sprintf("churn-%d", i%5)
			if i%3 == 2 {
				req, _ := http.NewRequest(http.MethodDelete, leader.URL+"/sites/a.example/policies/"+name, nil)
				resp, err := http.DefaultClient.Do(req)
				if err == nil {
					resp.Body.Close()
				}
				continue
			}
			_, _ = c.InstallPolicies(polDoc(name))
		}
	}()
	for r := 0; r < 3; r++ {
		wg.Add(1)
		go func() {
			defer wg.Done()
			c := server.NewClient(fs.URL + "/sites/a.example")
			for i := 0; i < 50; i++ {
				// Reads race the tail loop's snapshot swaps; any decision
				// is fine, data races are what the drill hunts.
				_, _, _ = c.Check(server.CheckRequest{URL: "/p1/index.html", Level: "mild"})
				if resp, err := http.Get(fs.URL + "/replication/status"); err == nil {
					resp.Body.Close()
				}
			}
		}()
	}
	wg.Wait()

	// After the churn settles, the follower converges to the leader.
	deadline := time.Now().Add(30 * time.Second)
	for {
		st := node.Status()
		if len(st) == 1 && st[0].Synced && st[0].Lag == 0 {
			break
		}
		if time.Now().After(deadline) {
			t.Fatalf("follower never converged after churn: %+v", st)
		}
		time.Sleep(5 * time.Millisecond)
	}
}

// TestDiscoverTenants starts a follower with no pinned tenant list:
// Discover must pull the leader's tenant set and track every name.
func TestDiscoverTenants(t *testing.T) {
	_, leader := newLeader(t)
	for _, name := range []string{"a.example", "b.example"} {
		seedTenant(t, leader.URL, name, "p1")
	}
	node, err := New(Options{Leader: leader.URL})
	if err != nil {
		t.Fatal(err)
	}
	t.Cleanup(node.Stop)
	if err := node.Discover(); err != nil {
		t.Fatal(err)
	}
	ctx, cancel := context.WithTimeout(context.Background(), 30*time.Second)
	defer cancel()
	if err := node.Sync(ctx); err != nil {
		t.Fatal(err)
	}
	st := node.Status()
	if len(st) != 2 {
		t.Fatalf("discovered tenants: %+v", st)
	}
	for _, ts := range st {
		if !ts.Synced || ts.AppliedLSN == 0 {
			t.Fatalf("tenant %s not caught up: %+v", ts.Tenant, ts)
		}
	}
	if srv := node.HTTPServer(":0"); srv.Handler == nil || srv.Addr != ":0" {
		t.Fatalf("HTTPServer wrapper wrong: %+v", srv)
	}
}
